/// Domain scenario 2 — Algorithm 1 in action on dynamic batch sizes.
/// MoE training sees a wide, recurring range of token counts per step
/// (Tutel-style dynamic batching). The demo replays a bucketed batch-size
/// trace through an adaptive GPT-XL-like layer on a 64-GPU simulated pod,
/// showing how the granularity search amortises: full searches only for
/// novel sizes, range/cache hits after that, and the final range set
/// mapping batch intervals to their optimal partition count.

#include <cstdio>

#include "common/units.h"
#include "core/moe_layer.h"
#include "runtime/workload.h"

int main() {
  using namespace mpipe;

  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  core::MoELayerOptions o;
  o.d_model = 2048;
  o.d_hidden = 8192;
  o.num_experts = 64;
  o.num_partitions = 0;  // adaptive (Algorithm 1)
  o.memory_reuse = false;
  o.mode = core::ExecutionMode::kTimingOnly;

  // Measured calibration curves, when the committed sweeps cover this
  // trace's probe ranges (4k–30k tokens probes panels past the committed
  // GEMM sweep, so the demo usually reports the analytic fallback).
  const auto status = core::install_calibration(cluster, o, 4096, 30720);
  std::printf("calibration: %s\n", status.detail.c_str());
  core::MoELayer layer(cluster, o);

  // 40 steps over 6 recurring bucket sizes in [4k, 30k].
  const auto trace = runtime::batch_size_trace(4096, 30720, 40, 6, 7);

  std::printf("=== adaptive pipeline granularity on a dynamic batch trace "
              "===\n");
  std::printf("%-6s %-8s %-4s %-12s %s\n", "step", "B", "n", "step(ms)",
              "search stats (full/range/cache)");
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto report = layer.step_timing(trace[i]);
    const auto& stats = layer.searcher().stats();
    std::printf("%-6zu %-8lld %-4d %-12.2f %zu/%zu/%zu\n", i,
                static_cast<long long>(trace[i]), report.n_partitions,
                to_ms(report.step_seconds()), stats.full_searches,
                stats.range_hits, stats.cache_hits);
  }
  std::printf("\nfinal range set: %s\n",
              layer.searcher().ranges().to_string().c_str());
  std::printf("total trial measurements: %zu (vs %zu steps x %zu candidate "
              "n values = %zu without Algorithm 1)\n",
              layer.searcher().stats().trials, trace.size(),
              layer.options().candidate_partitions.size(),
              trace.size() * layer.options().candidate_partitions.size());
  return 0;
}
