/// Quickstart: build a simulated 8-GPU node, create the MPipeMoE layer with
/// adaptive pipelining + memory reuse (the paper's Python snippet, in C++),
/// run one real training step, and print the timing/memory report.

#include <cstdio>

#include "common/units.h"
#include "core/moe_layer.h"
#include "runtime/trainer.h"
#include "sim/trace.h"

int main() {
  using namespace mpipe;

  // An 8-GPU DGX-A100-class node.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(/*nodes=*/1,
                                                    /*gpus_per_node=*/8);

  // The paper's API:
  //   moe_layer = pmoe.MoELayer(d_model=1024, d_hidden=4096, top_k=1,
  //                             num_experts=64, pipeline=True,
  //                             memory_reuse=True)
  core::MoELayerOptions options;
  options.d_model = 64;      // scaled down so the functional step is quick
  options.d_hidden = 256;
  options.num_experts = 8;   // one expert per simulated GPU
  options.top_k = 1;
  options.pipeline = true;    // adaptive granularity (Algorithm 1)
  options.memory_reuse = true;  // adaptive strategy (Eq 10)
  options.parallel_execution = true;  // concurrent op-graph executor
  core::MoELayer layer(cluster, options);

  runtime::TrainerOptions topt;
  topt.workload.d_model = options.d_model;
  topt.workload.tokens_per_device = 128;
  topt.workload.num_devices = cluster.num_devices();
  topt.steps = 5;
  // The trainer installs the committed measured calibration curves when
  // they cover this workload's probe ranges (falls back to the analytic
  // cost model otherwise).
  // Online measured-vs-modeled loop: profile the first two steps' per-op
  // wall clock, fit compute/comm/memcpy correction factors, and let the
  // adaptive selectors re-rank the remaining steps with corrected costs.
  topt.profile_warmup_steps = 2;
  runtime::Trainer trainer(layer, topt);
  std::printf("calibration: %s\n",
              trainer.calibration_status().detail.c_str());
  trainer.run();
  const auto& corr = trainer.corrections();
  std::printf("fitted corrections (measured/modeled): compute x%.2f, "
              "comm x%.2f, memcpy x%.2f\n",
              corr.compute, corr.comm, corr.memcpy);

  const auto& report = layer.last_report();
  std::printf("=== MPipeMoE quickstart ===\n");
  std::printf("%s\n", trainer.metrics().summary().c_str());
  std::printf("chosen partitions n = %d, strategy = %s\n",
              report.n_partitions, core::to_string(report.strategy).c_str());
  std::printf("simulated step time: fwd %.3f ms + bwd %.3f ms\n",
              to_ms(report.forward_seconds), to_ms(report.backward_seconds));
  std::printf("peak memory (busiest GPU): %.1f MiB  [states %.1f | act %.1f "
              "| temp %.1f]\n",
              mib(static_cast<double>(report.memory.total_peak)),
              mib(static_cast<double>(report.memory.model_states)),
              mib(static_cast<double>(report.memory.activations)),
              mib(static_cast<double>(report.memory.temp_buffers)));
  std::printf("mean GPU utilization: %.1f%%\n",
              report.mean_gpu_utilization * 100.0);

  // Paper-scale timing-only step (GPT-XL-like layer on 64 GPUs).
  sim::Cluster pod = sim::Cluster::dgx_a100_pod(8, 8);
  core::MoELayerOptions big;
  big.d_model = 2048;
  big.d_hidden = 8192;
  big.num_experts = 64;
  big.mode = core::ExecutionMode::kTimingOnly;
  // Same calibration attempt at paper scale: the committed sweeps do not
  // reach 8k-token panels, so this typically reports the analytic
  // fallback — by design, not silently.
  const auto pod_status = core::install_calibration(pod, big, 8192, 8192);
  std::printf("\npod calibration: %s\n", pod_status.detail.c_str());
  core::MoELayer big_layer(pod, big);
  const auto big_report = big_layer.step_timing(/*tokens_per_device=*/8192);
  std::printf("\nGPT-XL-like layer, 64 GPUs, B=8k (timing-only):\n");
  std::printf("  step %.2f ms with n=%d, strategy %s, peak %.0f MiB/GPU\n",
              to_ms(big_report.step_seconds()), big_report.n_partitions,
              core::to_string(big_report.strategy).c_str(),
              mib(static_cast<double>(big_report.memory.total_peak)));
  return 0;
}
