/// Domain scenario 3 — fitting a bigger batch under a fixed memory budget.
/// The paper's motivation for memory reuse: larger batches drive GPU
/// utilisation up, but activations + temp buffers blow past device memory.
/// This demo sweeps the batch size on a GPT-XL-like layer under a hard
/// per-GPU capacity and shows the largest batch each system can run —
/// MPipeMoE's ring-buffer reuse fits markedly more tokens.

#include <cstdio>

#include "common/units.h"
#include "core/moe_layer.h"
#include "mem/device_allocator.h"

namespace {

using namespace mpipe;

constexpr std::int64_t kMinBatch = 1024;
constexpr std::int64_t kMaxBatch = 262144;

/// The GPT-XL-like layer both systems sweep; the same options feed the
/// calibration coverage check so its probe ranges cannot drift from the
/// workload they describe.
core::MoELayerOptions budget_options(bool reuse, std::uint64_t capacity) {
  core::MoELayerOptions o;
  o.d_model = 2048;
  o.d_hidden = 8192;
  o.num_experts = 64;
  o.num_partitions = 8;
  o.memory_reuse = reuse;
  if (reuse) o.strategy = core::ReuseStrategy::kS3;
  o.device_capacity_bytes = capacity;
  o.mode = core::ExecutionMode::kTimingOnly;
  return o;
}

/// Installs the committed measured calibration curves when they cover the
/// batch sweep's probe ranges; otherwise the analytic cost model stays in
/// effect and the fallback is reported.
void load_calibration(sim::Cluster& cluster, bool print_status) {
  const auto status = core::install_calibration(
      cluster, budget_options(false, 0), kMinBatch, kMaxBatch);
  if (print_status) {
    std::printf("calibration: %s\n\n", status.detail.c_str());
  }
}

/// Largest power-of-two batch that fits under the capacity.
std::int64_t max_batch(sim::Cluster& cluster, bool reuse,
                       std::uint64_t capacity) {
  std::int64_t best = 0;
  for (std::int64_t b = kMinBatch; b <= kMaxBatch; b *= 2) {
    core::MoELayer layer(cluster, budget_options(reuse, capacity));
    try {
      layer.step_timing(b);
      best = b;
    } catch (const mem::OutOfMemoryError&) {
      break;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== batch scaling under a fixed per-GPU memory budget ===\n");
  std::printf("(GPT-XL-like layer, 64 simulated GPUs, n = 8)\n\n");
  {
    // Report the calibration outcome once, before the table.
    sim::Cluster probe = sim::Cluster::dgx_a100_pod(8, 8);
    load_calibration(probe, /*print_status=*/true);
  }
  std::printf("%-10s %-22s %-22s\n", "budget", "PipeMoE max batch",
              "MPipeMoE max batch");
  for (std::uint64_t budget_gib : {2, 4, 8}) {
    sim::Cluster c1 = sim::Cluster::dgx_a100_pod(8, 8);
    sim::Cluster c2 = sim::Cluster::dgx_a100_pod(8, 8);
    load_calibration(c1, false);
    load_calibration(c2, false);
    const std::uint64_t capacity = budget_gib * GiB;
    const auto without = max_batch(c1, false, capacity);
    const auto with_reuse = max_batch(c2, true, capacity);
    std::printf("%llu GiB      %-22lld %-22lld\n",
                static_cast<unsigned long long>(budget_gib),
                static_cast<long long>(without),
                static_cast<long long>(with_reuse));
  }
  std::printf("\nHigher batch -> higher GPU utilisation (paper Fig 2); the "
              "reuse strategies buy that headroom.\n");
  return 0;
}
