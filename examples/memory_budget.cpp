/// Domain scenario 3 — fitting a bigger batch under a fixed memory budget.
/// The paper's motivation for memory reuse: larger batches drive GPU
/// utilisation up, but activations + temp buffers blow past device memory.
/// This demo sweeps the batch size on a GPT-XL-like layer under a hard
/// per-GPU capacity and shows the largest batch each system can run —
/// MPipeMoE's ring-buffer reuse fits markedly more tokens.

#include <cstdio>

#include "common/units.h"
#include "core/moe_layer.h"
#include "mem/device_allocator.h"

namespace {

using namespace mpipe;

/// Largest power-of-two batch that fits under the capacity.
std::int64_t max_batch(sim::Cluster& cluster, bool reuse,
                       std::uint64_t capacity) {
  std::int64_t best = 0;
  for (std::int64_t b = 1024; b <= 262144; b *= 2) {
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.num_partitions = 8;
    o.memory_reuse = reuse;
    if (reuse) o.strategy = core::ReuseStrategy::kS3;
    o.device_capacity_bytes = capacity;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    try {
      layer.step_timing(b);
      best = b;
    } catch (const mem::OutOfMemoryError&) {
      break;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== batch scaling under a fixed per-GPU memory budget ===\n");
  std::printf("(GPT-XL-like layer, 64 simulated GPUs, n = 8)\n\n");
  std::printf("%-10s %-22s %-22s\n", "budget", "PipeMoE max batch",
              "MPipeMoE max batch");
  for (std::uint64_t budget_gib : {2, 4, 8}) {
    sim::Cluster c1 = sim::Cluster::dgx_a100_pod(8, 8);
    sim::Cluster c2 = sim::Cluster::dgx_a100_pod(8, 8);
    const std::uint64_t capacity = budget_gib * GiB;
    const auto without = max_batch(c1, false, capacity);
    const auto with_reuse = max_batch(c2, true, capacity);
    std::printf("%llu GiB      %-22lld %-22lld\n",
                static_cast<unsigned long long>(budget_gib),
                static_cast<long long>(without),
                static_cast<long long>(with_reuse));
  }
  std::printf("\nHigher batch -> higher GPU utilisation (paper Fig 2); the "
              "reuse strategies buy that headroom.\n");
  return 0;
}
