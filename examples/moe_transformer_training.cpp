/// Domain scenario 1 — pre-training a GPT-style MoE transformer block.
/// The attention half runs data-parallel (real multi-head attention with
/// manual backward); the FFN half is the distributed MPipeMoE layer. One
/// synthetic-corpus regression objective, full fwd/bwd/Adam loop, exactly
/// the per-block structure of Switch-Transformer-style models the paper's
/// introduction motivates.

#include <cstdio>
#include <fstream>

#include "common/units.h"
#include "core/moe_layer.h"
#include "moe/moe_block.h"
#include "runtime/adam.h"
#include "runtime/workload.h"
#include "tensor/ops.h"

int main() {
  using namespace mpipe;

  constexpr int kDevices = 4;
  constexpr std::int64_t kModel = 32;
  constexpr std::int64_t kHidden = 128;
  constexpr std::int64_t kTokens = 64;  // per device ("sequence length")

  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, kDevices);

  // Distributed MoE FFN: one expert per simulated GPU.
  core::MoELayerOptions mo;
  mo.d_model = kModel;
  mo.d_hidden = kHidden;
  mo.num_experts = 8;
  mo.memory_reuse = true;
  mo.num_partitions = 2;
  mo.parallel_execution = true;  // concurrent op-graph executor
  mo.profile_execution = true;   // per-op wall-clock vs simulated timeline

  // Measured calibration curves, when the committed sweeps cover the
  // fixed n = 2 probe ranges of this tiny block (analytic fallback
  // otherwise).
  const auto status =
      core::install_calibration(cluster, mo, kTokens, kTokens);
  std::printf("calibration: %s\n", status.detail.c_str());
  core::MoELayer moe_ffn(cluster, mo);

  // Data-parallel attention scaffolding (one replica per device).
  Rng rng(11);
  std::vector<moe::TransformerBlockPieces> blocks;
  for (int d = 0; d < kDevices; ++d) {
    Rng block_rng = rng;  // identical replicas, data-parallel style
    blocks.emplace_back(kModel, /*heads=*/4, /*causal=*/true, block_rng);
  }

  runtime::WorkloadOptions wo;
  wo.d_model = kModel;
  wo.tokens_per_device = kTokens;
  wo.num_devices = kDevices;
  runtime::WorkloadGenerator workload(wo);

  // Optimizer over everything: MoE params + per-replica attention params.
  std::vector<Tensor*> params = moe_ffn.parameters();
  std::vector<Tensor*> grads = moe_ffn.gradients();
  for (auto& block : blocks) {
    for (Tensor* p : block.attention().parameters()) params.push_back(p);
    for (Tensor* g : block.attention().gradients()) grads.push_back(g);
    params.push_back(&block.ln1().gamma());
    grads.push_back(&block.ln1().gamma_grad());
    params.push_back(&block.ln2().gamma());
    grads.push_back(&block.ln2().gamma_grad());
  }
  runtime::AdamOptions ao;
  ao.lr = 2e-3f;
  runtime::Adam adam(params, grads, ao);

  std::printf("=== MoE transformer block training (4 simulated GPUs) ===\n");
  constexpr int kSteps = 8;
  for (int step = 0; step < kSteps; ++step) {
    // Only the step whose trace is dumped below pays the JSON
    // serialisation; the per-step model-error lines need just the diffs.
    if (step == kSteps - 1) moe_ffn.set_trace_execution(true);
    auto batch = workload.next_batch();
    auto targets = workload.targets_for(batch);

    // Forward: attention (per device) -> distributed MoE FFN -> residual.
    std::vector<moe::BlockForward> fwd(kDevices);
    std::vector<Tensor> ffn_inputs;
    for (int d = 0; d < kDevices; ++d) {
      fwd[d] = blocks[d].forward_pre_ffn(batch[d]);
      ffn_inputs.push_back(fwd[d].ffn_input);
    }
    auto ffn_out = moe_ffn.forward(ffn_inputs);
    std::vector<Tensor> outputs;
    for (int d = 0; d < kDevices; ++d) {
      outputs.push_back(
          moe::TransformerBlockPieces::finish_forward(fwd[d], ffn_out[d]));
    }

    // Loss + backward.
    double loss = 0.0;
    std::vector<Tensor> dy;
    for (int d = 0; d < kDevices; ++d) {
      loss += mse_loss(outputs[d], targets[d]);
      dy.push_back(mse_loss_grad(outputs[d], targets[d]));
    }
    loss /= kDevices;

    moe_ffn.zero_grad();
    for (auto& block : blocks) block.zero_grad();
    auto d_ffn_in = moe_ffn.backward(dy);
    for (int d = 0; d < kDevices; ++d) {
      blocks[d].backward(dy[d], d_ffn_in[d], batch[d], fwd[d]);
    }
    adam.step();

    const auto& rep = moe_ffn.last_report();
    std::printf("step %d  loss %.4f  sim-step %.3f ms (n=%d, %s)\n", step,
                loss, to_ms(rep.step_seconds()), rep.n_partitions,
                core::to_string(rep.strategy).c_str());
    std::printf("        measured vs modeled: %s\n",
                rep.model_error_summary().c_str());
  }

  // The profiled timelines are chrome://tracing JSON — dump the last
  // step's for inspection (measured tracks next to the simulated ones).
  const auto& rep = moe_ffn.last_report();
  std::ofstream("moe_step_trace.fwd.json") << rep.forward_trace_json;
  std::printf("wrote moe_step_trace.fwd.json (open in chrome://tracing)\n");
  return 0;
}
