// Algorithm 1: the RangeSet semantics and the GranularitySearcher's
// cache / range / trial behaviour, including monotonicity enforcement.

#include <gtest/gtest.h>

#include "common/check.h"

#include "core/granularity_search.h"

namespace mpipe::core {
namespace {

using mpipe::CheckError;

TEST(RangeSet, FindOnEmptyReturnsNothing) {
  RangeSet s;
  EXPECT_FALSE(s.find(100).has_value());
}

TEST(RangeSet, PointInsertAndLookup) {
  RangeSet s;
  s.record(100, 2);
  EXPECT_EQ(s.find(100).value(), 2);
  EXPECT_FALSE(s.find(99).has_value());
  EXPECT_FALSE(s.find(101).has_value());
}

TEST(RangeSet, ExtensionMergesBatchSizes) {
  RangeSet s;
  s.record(100, 2);
  s.record(300, 2);
  EXPECT_EQ(s.find(200).value(), 2);  // interior of the widened range
  const auto range = s.range_of(2).value();
  EXPECT_EQ(range.lower, 100);
  EXPECT_EQ(range.upper, 300);
}

TEST(RangeSet, DisjointRangesForDifferentN) {
  RangeSet s;
  s.record(100, 2);
  s.record(1000, 4);
  s.record(5000, 8);
  EXPECT_EQ(s.find(100).value(), 2);
  EXPECT_EQ(s.find(1000).value(), 4);
  EXPECT_EQ(s.find(5000).value(), 8);
  EXPECT_FALSE(s.find(400).has_value());
  EXPECT_EQ(s.size(), 3u);
}

TEST(RangeSet, RecordInsideExistingRangeMustAgree) {
  RangeSet s;
  s.record(100, 2);
  s.record(300, 2);
  EXPECT_NO_THROW(s.record(200, 2));
  EXPECT_THROW(s.record(200, 4), CheckError);
}

TEST(RangeSet, MonotonicityViolationDetected) {
  RangeSet s;
  s.record(100, 2);
  s.record(500, 4);
  // Extending n=2 to 600 would swallow n=4's range.
  EXPECT_THROW(s.record(600, 2), CheckError);
}

TEST(Searcher, FullSearchPicksArgmin) {
  // Trial cost: minimised at n = 4 for every B.
  int trials = 0;
  GranularitySearcher searcher({1, 2, 4, 8}, [&](std::int64_t, int n) {
    ++trials;
    return std::abs(n - 4) + 1.0;
  });
  EXPECT_EQ(searcher.configure(1000), 4);
  EXPECT_EQ(trials, 4);
  EXPECT_EQ(searcher.stats().full_searches, 1u);
}

TEST(Searcher, CacheHitOnRepeatedB) {
  int trials = 0;
  GranularitySearcher searcher({1, 2}, [&](std::int64_t, int) {
    ++trials;
    return 1.0;
  });
  searcher.configure(64);
  const int before = trials;
  searcher.configure(64);
  EXPECT_EQ(trials, before);
  EXPECT_EQ(searcher.stats().cache_hits, 1u);
}

TEST(Searcher, RangeHitAvoidsTrialsForInteriorB) {
  // Optimal n follows a step function of B (monotone).
  auto oracle = [](std::int64_t b) { return b < 1000 ? 1 : 2; };
  int trials = 0;
  GranularitySearcher searcher({1, 2}, [&](std::int64_t b, int n) {
    ++trials;
    return n == oracle(b) ? 1.0 : 2.0;
  });
  searcher.configure(100);
  searcher.configure(900);
  const int before = trials;
  EXPECT_EQ(searcher.configure(500), 1);  // inside [100, 900]
  EXPECT_EQ(trials, before);
  EXPECT_EQ(searcher.stats().range_hits, 1u);
}

TEST(Searcher, SkipsPartitionsLargerThanBatch) {
  std::vector<int> tried;
  GranularitySearcher searcher({1, 2, 8}, [&](std::int64_t, int n) {
    tried.push_back(n);
    return static_cast<double>(n);
  });
  searcher.configure(4);
  EXPECT_EQ(tried, (std::vector<int>{1, 2}));  // n=8 > B=4 skipped
}

TEST(Searcher, RejectsDegenerateInputs) {
  EXPECT_THROW(
      GranularitySearcher({}, [](std::int64_t, int) { return 1.0; }),
      CheckError);
  EXPECT_THROW(GranularitySearcher({0}, [](std::int64_t, int) {
                 return 1.0;
               }),
               CheckError);
  GranularitySearcher ok({1}, [](std::int64_t, int) { return 1.0; });
  EXPECT_THROW(ok.configure(0), CheckError);
}

TEST(Searcher, MonotoneTraceBuildsCompactRangeSet) {
  auto oracle = [](std::int64_t b) {
    if (b < 8000) return 2;
    if (b < 22000) return 4;
    return 8;
  };
  GranularitySearcher searcher({1, 2, 4, 8},
                               [&](std::int64_t b, int n) {
                                 return n == oracle(b) ? 1.0 : 2.0;
                               });
  for (std::int64_t b = 4000; b <= 31000; b += 1000) {
    EXPECT_EQ(searcher.configure(b), oracle(b)) << "B=" << b;
  }
  EXPECT_EQ(searcher.ranges().size(), 3u);
  // Re-sweeping costs zero trials (all cache hits).
  const auto trials_before = searcher.stats().trials;
  for (std::int64_t b = 4000; b <= 31000; b += 1000) {
    searcher.configure(b);
  }
  EXPECT_EQ(searcher.stats().trials, trials_before);
}

TEST(Searcher, RowRangeMatchesChunkExtremes) {
  // Chunks are floor(B/n)/floor(B/n)+1 (Dispatcher::chunk_sizes): the
  // smallest probed panel is the floor chunk at the largest n, the
  // largest the ceil chunk at the smallest n.
  const auto r = GranularitySearcher::row_range(10, 10, {4});
  EXPECT_EQ(r.first, 2);   // chunks {3, 3, 2, 2}: floor(10/4)
  EXPECT_EQ(r.second, 3);  // ceil(10/4)
  const auto wide = GranularitySearcher::row_range(64, 1024, {1, 2, 4, 8});
  EXPECT_EQ(wide.first, 8);      // floor(64/8)
  EXPECT_EQ(wide.second, 1024);  // ceil(1024/1)
  // Degenerate: batch smaller than the largest n still probes >= 1 row.
  EXPECT_EQ(GranularitySearcher::row_range(3, 3, {8}).first, 1);
  EXPECT_THROW(GranularitySearcher::row_range(0, 1, {2}), CheckError);
  EXPECT_THROW(GranularitySearcher::row_range(1, 2, {}), CheckError);
}

TEST(Searcher, ExpertPanelRangeDividesLowerBoundOnly) {
  // The schedule feeds gemm_efficiency per-expert panels (received rows
  // split across local experts); the upper bound keeps whole-micro-batch
  // headroom for routing skew.
  const auto r = GranularitySearcher::expert_panel_range(1024, 1024,
                                                         {1, 2, 4, 8}, 2);
  EXPECT_EQ(r.first, 64);     // floor(1024/8) / 2
  EXPECT_EQ(r.second, 1024);  // ceil(1024/1), undivided
  // Clamped at one row even when experts outnumber the smallest chunk.
  EXPECT_EQ(GranularitySearcher::expert_panel_range(8, 8, {8}, 4).first, 1);
  EXPECT_THROW(GranularitySearcher::expert_panel_range(8, 8, {8}, 0),
               CheckError);
}

TEST(Searcher, AllToAllPayloadRangeTracksRowRange) {
  // d_model = 256 -> 1 KiB rows; balanced exchange of the smallest floor
  // chunk below, full skew of the largest chunk above.
  const auto p = GranularitySearcher::alltoall_payload_range(
      1024, 16384, {1, 2, 4, 8}, 256, 8);
  EXPECT_EQ(p.first, 128u * 1024 * 7 / 8);  // floor(1024/8) rows, (P-1)/P
  EXPECT_EQ(p.second, 16384u * 1024);       // every row leaves the device
  EXPECT_THROW(GranularitySearcher::alltoall_payload_range(8, 8, {2}, 256, 1),
               CheckError);
  EXPECT_THROW(GranularitySearcher::alltoall_payload_range(8, 8, {2}, 0, 4),
               CheckError);
}

}  // namespace
}  // namespace mpipe::core
