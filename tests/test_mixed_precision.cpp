// Mixed-precision expert path (bf16 / int8 storage, fp32 accumulation):
// codec round trips, the pack-time-dequant GEMM's exactness contract
// (quantized entry == plain GEMM on the dequantized weights, bitwise),
// tolerance-bounded numerics of the reduced-dtype expert forward/backward
// against fp32, simulated-wire payload rounding with corruption-scan
// interplay, byte-accounting reductions, and the fp32 bitwise pins that
// guarantee the default path is untouched.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "comm/all_to_all.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "core/moe_layer.h"
#include "mem/host_staging.h"
#include "moe/expert.h"
#include "serve/slo_policy.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

float bitwise(float v) { return v; }  // readability: EXPECT_EQ is bitwise
                                      // for non-NaN floats

std::uint32_t bits_of(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// ---- codecs -----------------------------------------------------------------

TEST(Bf16Codec, ExactlyRepresentableValuesRoundTrip) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1.5f, -3.25f,
                  65536.0f, 1.0f / 256.0f}) {
    EXPECT_EQ(bits_of(bf16_round(v)), bits_of(v)) << v;
  }
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_round(inf), inf);
  EXPECT_EQ(bf16_round(-inf), -inf);
}

TEST(Bf16Codec, RoundsToNearestEven) {
  // bf16 ULP at 1.0 is 2^-7; 1.0 + 2^-8 sits exactly between the
  // neighbours 1.0 (even mantissa) and 1.0+2^-7; ties-to-even picks 1.0.
  EXPECT_EQ(bf16_round(1.0f + std::ldexp(1.0f, -8)), 1.0f);
  // Just above the tie rounds up.
  EXPECT_EQ(bf16_round(1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -12)),
            1.0f + std::ldexp(1.0f, -7));
  // 1.0 + 3*2^-8 ties between 1+2^-7 (odd) and 1+2^-6 (even): picks even.
  EXPECT_EQ(bf16_round(1.0f + 3 * std::ldexp(1.0f, -8)),
            1.0f + std::ldexp(1.0f, -6));
}

TEST(Bf16Codec, NanStaysNanNeverBecomesInf) {
  // A signalling-style NaN whose payload lives only in the low mantissa
  // bits: plain truncation would clear the mantissa and fabricate an Inf.
  std::uint32_t u = 0x7f800001u;
  float snan;
  std::memcpy(&snan, &u, sizeof(snan));
  const float out = bf16_round(snan);
  EXPECT_TRUE(std::isnan(out));
  EXPECT_TRUE(std::isnan(bf16_round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(I8Rounding, ZeroAndNonFiniteRowsAreExactOrUntouched) {
  Tensor t(Shape{3, 4});
  // row 0: all zero — must stay exactly zero.
  // row 1: contains a NaN — must be left untouched (corruption stays
  // detectable by downstream scans).
  // row 2: ordinary values — each moves by at most absmax/127/2.
  for (std::int64_t c = 0; c < 4; ++c) t.at(0, c) = 0.0f;
  t.at(1, 0) = 1.0f;
  t.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  t.at(1, 2) = 2.0f;
  t.at(1, 3) = -1.0f;
  t.at(2, 0) = 0.1f;
  t.at(2, 1) = -2.54f;
  t.at(2, 2) = 1.27f;
  t.at(2, 3) = 0.005f;
  Tensor orig = t.clone();
  round_through_i8_rows(t.data(), 3, 4);
  for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(bits_of(t.at(0, c)), 0u);
  EXPECT_EQ(bitwise(t.at(1, 0)), 1.0f);
  EXPECT_TRUE(std::isnan(t.at(1, 1)));
  EXPECT_EQ(bitwise(t.at(1, 2)), 2.0f);
  const float step = 2.54f / 127.0f;
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(t.at(2, c), orig.at(2, c), step / 2 + 1e-6f) << c;
  }
}

TEST(QuantizeMatrix, DequantizeMatchesInPlaceRounding) {
  Rng rng(11);
  Tensor w(Shape{7, 13});
  init_normal(w, rng, 1.0f);
  for (DType dt : {DType::kBF16, DType::kI8}) {
    QuantizedMatrix q = quantize_matrix(w, dt);
    EXPECT_TRUE(q.defined());
    Tensor back = dequantize_matrix(q);
    Tensor rounded = w.clone();
    round_through_dtype(rounded.data(), 7, 13, dt);
    for (std::int64_t i = 0; i < 7; ++i) {
      for (std::int64_t j = 0; j < 13; ++j) {
        EXPECT_EQ(bits_of(back.at(i, j)), bits_of(rounded.at(i, j)))
            << to_string(dt) << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(QuantizeMatrix, NonFiniteRowPoisonsInt8Scale) {
  Tensor w(Shape{2, 3});
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = std::numeric_limits<float>::infinity();
  w.at(0, 2) = -1.0f;
  w.at(1, 0) = 0.5f;
  w.at(1, 1) = -0.25f;
  w.at(1, 2) = 0.125f;
  QuantizedMatrix q = quantize_matrix(w, DType::kI8);
  Tensor back = dequantize_matrix(q);
  // The corrupted row dequantizes non-finite everywhere — a numerics
  // guard downstream must still fire; the clean row is unaffected.
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(std::isfinite(back.at(0, c))) << c;
    EXPECT_TRUE(std::isfinite(back.at(1, c))) << c;
  }
}

TEST(QuantizeMatrix, ByteAccounting) {
  Tensor w(Shape{8, 16});
  Rng rng(3);
  init_normal(w, rng, 1.0f);
  EXPECT_EQ(quantize_matrix(w, DType::kF32).nbytes(), 0u);
  EXPECT_EQ(quantize_matrix(w, DType::kBF16).nbytes(), 8u * 16 * 2);
  EXPECT_EQ(quantize_matrix(w, DType::kI8).nbytes(), 8u * 16 * 1 + 8u * 4);
  EXPECT_EQ(quantized_bytes(8, 16, DType::kF32), 8u * 16 * 4);
}

// ---- quantized GEMM: exactness + tolerance ---------------------------------

QuantView qview(const QuantizedMatrix& q) {
  QuantView v;
  v.dtype = q.dtype;
  v.rows = q.rows;
  v.cols = q.cols;
  v.data = q.dtype == DType::kBF16 ? static_cast<const void*>(q.bf16.data())
                                   : static_cast<const void*>(q.i8.data());
  v.row_scales = q.dtype == DType::kI8 ? q.scales.data() : nullptr;
  return v;
}

struct QuantGemmCase {
  std::int64_t m, k, n;
};

class QuantGemmSweep : public testing::TestWithParam<QuantGemmCase> {};

TEST_P(QuantGemmSweep, PackTimeDequantIsBitwiseExact) {
  // The contract that keeps one compute core for every dtype: the
  // quantized entry point must produce *bitwise* the result of the plain
  // packed GEMM on the dequantized weights — same fp32 panel values, same
  // accumulation order.
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  Tensor a(Shape{m, k}), w(Shape{k, n}), bias(Shape{n});
  init_normal(a, rng, 1.0f);
  init_normal(w, rng, 0.5f);
  init_normal(bias, rng, 0.1f);
  for (DType dt : {DType::kBF16, DType::kI8}) {
    QuantizedMatrix q = quantize_matrix(w, dt);
    Tensor wd = dequantize_matrix(q);
    for (GemmEpilogue ep : {GemmEpilogue::kBias, GemmEpilogue::kBiasReLU,
                            GemmEpilogue::kBiasGELU}) {
      Tensor want(Shape{m, n}), got(Shape{m, n});
      gemm_bias_act(a, wd, bias, ep, want);
      gemm_bias_act_q(a, qview(q), bias, ep, got);
      for (std::int64_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
            << to_string(dt) << " ep " << static_cast<int>(ep) << " i " << i;
      }
    }
    // nt variant: B stored transposed (n x k), per-stored-row scales.
    Tensor wt(Shape{n, k});
    init_normal(wt, rng, 0.5f);
    QuantizedMatrix qt = quantize_matrix(wt, dt);
    Tensor wtd = dequantize_matrix(qt);
    Tensor want(Shape{m, n}), got(Shape{m, n});
    gemm_nt(a, wtd, want);
    gemm_nt_q(a, qview(qt), got);
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
          << to_string(dt) << " nt i " << i;
    }
  }
}

TEST_P(QuantGemmSweep, ToleranceVsF32) {
  // Reduced-dtype weights against the exact fp32 product: bounded by the
  // per-element quantization step times the reduction depth (fp32
  // accumulation adds nothing on top).
  const auto [m, k, n] = GetParam();
  if (m == 0) return;  // relative bound needs at least one output row
  Rng rng(m * 7 + k * 3 + n);
  Tensor a(Shape{m, k}), w(Shape{k, n}), bias(Shape{n});
  init_normal(a, rng, 1.0f);
  init_normal(w, rng, 0.5f);
  init_normal(bias, rng, 0.1f);
  Tensor ref(Shape{m, n});
  gemm_bias_act(a, w, bias, GemmEpilogue::kBias, ref);
  float ref_absmax = 0.0f;
  for (std::int64_t i = 0; i < m * n; ++i) {
    ref_absmax = std::max(ref_absmax, std::fabs(ref.data()[i]));
  }
  for (DType dt : {DType::kBF16, DType::kI8}) {
    QuantizedMatrix q = quantize_matrix(w, dt);
    Tensor got(Shape{m, n});
    gemm_bias_act_q(a, qview(q), bias, GemmEpilogue::kBias, got);
    // bf16: 2^-9 relative weight error; i8: absmax/254 per weight. Both
    // accumulate at most linearly in k against |a| ~ N(0,1).
    const double step = dt == DType::kBF16 ? std::ldexp(1.0, -9) : 1.0 / 254;
    const double tol =
        4.0 * step * static_cast<double>(k) * 0.5 + 1e-5;  // 0.5 = |w| scale
    EXPECT_LT(max_abs_diff(got, ref),
              std::max<double>(tol, 0.05 * ref_absmax))
        << to_string(dt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantGemmSweep,
    testing::Values(QuantGemmCase{0, 16, 16},   // rows=0 panel
                    QuantGemmCase{1, 16, 16},   // rows=1 panel
                    QuantGemmCase{5, 19, 23},   // ragged everywhere
                    QuantGemmCase{8, 16, 16},   // exact register block
                    QuantGemmCase{64, 48, 32},  // multiple tiles
                    QuantGemmCase{97, 33, 129}  // ragged multi-tile
                    ));

TEST(QuantGemmF32Pin, F32QuantViewIsBitwiseThePlainPath) {
  // The fp32 pin at the kernel level: a kF32 QuantView must route through
  // packing code bitwise identical to the fp32 entry points.
  Rng rng(5);
  Tensor a(Shape{21, 35}), w(Shape{35, 27}), bias(Shape{27});
  init_normal(a, rng, 1.0f);
  init_normal(w, rng, 1.0f);
  init_normal(bias, rng, 1.0f);
  QuantView v;
  v.dtype = DType::kF32;
  v.data = w.data();
  v.rows = w.dim(0);
  v.cols = w.dim(1);
  Tensor want(Shape{21, 27}), got(Shape{21, 27});
  gemm_bias_act(a, w, bias, GemmEpilogue::kBiasReLU, want);
  gemm_bias_act_q(a, v, bias, GemmEpilogue::kBiasReLU, got);
  for (std::int64_t i = 0; i < 21 * 27; ++i) {
    ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i])) << i;
  }
}

// ---- expert forward/backward under reduced dtype ----------------------------

class ExpertDtypeSweep : public testing::TestWithParam<DType> {};

TEST_P(ExpertDtypeSweep, ForwardAndBackwardWithinTolerance) {
  const DType dt = GetParam();
  const std::int64_t M = 24, H = 56, B = 17;
  Rng rng_a(42), rng_b(42);  // identical weights
  moe::ExpertFFN ref(M, H, moe::ActivationKind::kGELU, rng_a);
  moe::ExpertFFN quant(M, H, moe::ActivationKind::kGELU, rng_b);
  quant.set_compute_dtype(dt);
  EXPECT_EQ(quant.compute_dtype(), dt);

  Rng data_rng(7);
  Tensor x(Shape{B, M});
  init_normal(x, data_rng, 1.0f);
  Tensor mid_ref, mid_q;
  Tensor y_ref = ref.forward(x, mid_ref);
  Tensor y_q = quant.forward(x, mid_q);
  float y_absmax = 0.0f;
  for (std::int64_t i = 0; i < B * M; ++i) {
    y_absmax = std::max(y_absmax, std::fabs(y_ref.data()[i]));
  }
  const float fwd_tol = 0.08f * std::max(y_absmax, 1.0f);
  EXPECT_LT(max_abs_diff(y_q, y_ref), fwd_tol) << to_string(dt);

  Tensor dy(Shape{B, M});
  init_normal(dy, data_rng, 1.0f);
  Tensor dx_ref = ref.backward(dy, x, mid_ref);
  Tensor dx_q = quant.backward(dy, x, mid_q);
  float dx_absmax = 0.0f;
  for (std::int64_t i = 0; i < B * M; ++i) {
    dx_absmax = std::max(dx_absmax, std::fabs(dx_ref.data()[i]));
  }
  EXPECT_LT(max_abs_diff(dx_q, dx_ref), 0.1f * std::max(dx_absmax, 1.0f))
      << to_string(dt);
  // Weight gradients are fp32-master-path GEMMs fed by slightly different
  // activations; they must stay finite and close.
  auto g_ref = ref.gradients();
  auto g_q = quant.gradients();
  ASSERT_EQ(g_ref.size(), g_q.size());
  for (std::size_t i = 0; i < g_ref.size(); ++i) {
    EXPECT_TRUE(all_finite(*g_q[i])) << i;
  }
}

TEST_P(ExpertDtypeSweep, QuantizedBytesAndRefresh) {
  const DType dt = GetParam();
  const std::int64_t M = 16, H = 32;
  Rng rng(1);
  moe::ExpertFFN e(M, H, moe::ActivationKind::kReLU, rng);
  EXPECT_EQ(e.quantized_weight_bytes(), 0u);
  e.set_compute_dtype(dt);
  const std::uint64_t expect =
      quantized_bytes(M, H, dt) + quantized_bytes(H, M, dt);
  EXPECT_EQ(e.quantized_weight_bytes(), expect);

  // Stale-cache hazard: mutate the master weights, then refresh — the
  // forward must track the new masters.
  Tensor x(Shape{4, M});
  init_normal(x, rng, 1.0f);
  Tensor mid0;
  Tensor y0 = e.forward(x, mid0);
  for (Tensor* p : e.parameters()) scale_(*p, 0.5f);
  e.refresh_quantized();
  Tensor mid1;
  Tensor y1 = e.forward(x, mid1);
  EXPECT_GT(max_abs_diff(y1, y0), 0.0f);  // the halved weights took effect

  // Back to f32: caches dropped, bitwise the legacy path again.
  e.set_compute_dtype(DType::kF32);
  EXPECT_EQ(e.quantized_weight_bytes(), 0u);
}

TEST(ExpertDtypeF32Pin, RoundTripThroughBf16AndBackIsBitwiseClean) {
  // Switching a layer to bf16 and back must restore the exact legacy
  // fp32 path — not an approximation of it.
  const std::int64_t M = 16, H = 32, B = 9;
  Rng rng_a(3), rng_b(3);
  moe::ExpertFFN pin(M, H, moe::ActivationKind::kReLU, rng_a);
  moe::ExpertFFN toggled(M, H, moe::ActivationKind::kReLU, rng_b);
  toggled.set_compute_dtype(DType::kBF16);
  toggled.set_compute_dtype(DType::kF32);
  Rng data_rng(5);
  Tensor x(Shape{B, M});
  init_normal(x, data_rng, 1.0f);
  Tensor mid_a, mid_b;
  Tensor ya = pin.forward(x, mid_a);
  Tensor yb = toggled.forward(x, mid_b);
  for (std::int64_t i = 0; i < B * M; ++i) {
    ASSERT_EQ(bits_of(ya.data()[i]), bits_of(yb.data()[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Dtypes, ExpertDtypeSweep,
                         testing::Values(DType::kBF16, DType::kI8),
                         [](const testing::TestParamInfo<DType>& info) {
                           return std::string(to_string(info.param));
                         });

// ---- simulated wire payloads ------------------------------------------------

TEST(PayloadRounding, ApplySegmentsRoundsThroughWireFormat) {
  Tensor src(Shape{4, 8}), dst(Shape{4, 8});
  Rng rng(9);
  init_normal(src, rng, 1.0f);
  comm::RowSegment seg;
  seg.src = &src;
  seg.dst = &dst;
  seg.rows = 4;
  seg.src_device = 0;
  seg.dst_device = 1;
  comm::apply_segments({seg}, DType::kBF16);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(bits_of(dst.at(i, j)), bits_of(bf16_round(src.at(i, j))));
    }
  }
  // f32 stays a byte-exact copy.
  Tensor dst32(Shape{4, 8});
  seg.dst = &dst32;
  comm::apply_segments({seg});
  for (std::int64_t i = 0; i < 4 * 8; ++i) {
    EXPECT_EQ(bits_of(dst32.data()[i]), bits_of(src.data()[i]));
  }
}

TEST(PayloadRounding, MaxBytesSentCountsWireFormat) {
  Tensor src(Shape{10, 16}), dst(Shape{10, 16});
  comm::RowSegment cross;
  cross.src = &src;
  cross.dst = &dst;
  cross.rows = 10;
  cross.src_device = 0;
  cross.dst_device = 1;
  EXPECT_EQ(comm::max_bytes_sent({cross}), 10u * 16 * 4);
  EXPECT_EQ(comm::max_bytes_sent({cross}, DType::kBF16), 10u * 16 * 2);
  EXPECT_EQ(comm::max_bytes_sent({cross}, DType::kI8), 10u * 16 + 10u * 4);
}

TEST(PayloadRounding, CorruptionSurvivesRoundingAndScanFires) {
  // A NaN in the payload must ride through bf16 and int8 rounding so the
  // per-dtype wire keeps scan_payloads' detection guarantee.
  for (DType dt : {DType::kBF16, DType::kI8}) {
    Tensor src(Shape{2, 4}), dst(Shape{2, 4});
    Rng rng(4);
    init_normal(src, rng, 1.0f);
    src.at(1, 2) = std::numeric_limits<float>::quiet_NaN();
    comm::RowSegment seg;
    seg.src = &src;
    seg.dst = &dst;
    seg.rows = 2;
    seg.src_device = 0;
    seg.dst_device = 1;

    FaultInjectionConfig cfg;
    cfg.scan_payloads = true;
    FaultInjector injector(cfg);
    EXPECT_THROW(
        comm::apply_segments_guarded({seg}, &injector, 0, "S0", dt),
        TransientError)
        << to_string(dt);
    EXPECT_FALSE(std::isfinite(dst.at(1, 2))) << to_string(dt);
  }
}

TEST(HostStagingDtype, StoresRoundedCopyWithQuantizedAccounting) {
  mem::HostStaging staging;
  Tensor t(Shape{6, 10});
  Rng rng(2);
  init_normal(t, rng, 1.0f);
  staging.store(0, "a", t, false, DType::kBF16);
  EXPECT_EQ(staging.bytes_stored(), 6u * 10 * 2);
  Tensor back = staging.load(0, "a");
  for (std::int64_t i = 0; i < 6 * 10; ++i) {
    EXPECT_EQ(bits_of(back.data()[i]), bits_of(bf16_round(t.data()[i])));
  }
  staging.store(1, "b", t, false, DType::kI8);
  EXPECT_EQ(staging.bytes_stored(), 6u * 10 * 2 + (6u * 10 + 6u * 4));
  staging.clear();
  // Default stays the byte-exact fp32 deep copy.
  staging.store(0, "c", t);
  EXPECT_EQ(staging.bytes_stored(), 6u * 10 * 4);
  Tensor exact = staging.load(0, "c");
  for (std::int64_t i = 0; i < 6 * 10; ++i) {
    EXPECT_EQ(bits_of(exact.data()[i]), bits_of(t.data()[i]));
  }
}

// ---- end-to-end layer: numerics + byte reductions ---------------------------

core::MoELayerOptions mixed_options(DType dt) {
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 48;
  o.num_experts = 4;
  o.num_partitions = 2;
  o.memory_reuse = true;
  o.strategy = core::ReuseStrategy::kS1;  // offloads exercise staging dtype
  o.seed = 7;
  o.compute_dtype = dt;
  return o;
}

std::vector<Tensor> layer_inputs(int devices, std::int64_t tokens,
                                 std::int64_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (int d = 0; d < devices; ++d) {
    inputs.push_back(random_tokens(tokens, d_model, rng));
  }
  return inputs;
}

TEST(MixedPrecisionLayer, ForwardBackwardToleranceAndCounters) {
  sim::Cluster c32 = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer f32(c32, mixed_options(DType::kF32));
  auto inputs = layer_inputs(4, 32, 16, 99);
  auto ref_out = f32.forward(inputs);
  std::vector<Tensor> grads;
  Rng grng(13);
  for (auto& out : ref_out) {
    Tensor g(out.shape());
    init_normal(g, grng, 1.0f);
    grads.push_back(g);
  }
  auto ref_dx = f32.backward(grads);
  const core::StepReport f32_report = f32.last_report();
  EXPECT_EQ(f32_report.compute_dtype, DType::kF32);
  EXPECT_EQ(f32_report.expert_weight_bytes, 0u);
  EXPECT_GT(f32_report.alltoall_payload_bytes, 0u);

  for (DType dt : {DType::kBF16, DType::kI8}) {
    sim::Cluster cq = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayer q(cq, mixed_options(dt));
    auto out = q.forward(inputs);
    ASSERT_EQ(out.size(), ref_out.size());
    for (std::size_t d = 0; d < out.size(); ++d) {
      float absmax = 0.0f;
      for (std::int64_t i = 0; i < out[d].numel(); ++i) {
        absmax = std::max(absmax, std::fabs(ref_out[d].data()[i]));
      }
      EXPECT_LT(max_abs_diff(out[d], ref_out[d]),
                0.1f * std::max(absmax, 1.0f))
          << to_string(dt) << " device " << d;
    }
    auto dx = q.backward(grads);
    for (std::size_t d = 0; d < dx.size(); ++d) {
      EXPECT_TRUE(all_finite(dx[d])) << to_string(dt) << " device " << d;
    }
    const core::StepReport& report = q.last_report();
    EXPECT_EQ(report.compute_dtype, dt);

    // Fig-10 payload axis: bf16 halves the alltoall bytes exactly; int8
    // pays one fp32 scale per row on top of the 4x element shrink.
    if (dt == DType::kBF16) {
      EXPECT_EQ(report.alltoall_payload_bytes,
                f32_report.alltoall_payload_bytes / 2);
    } else {
      EXPECT_LT(report.alltoall_payload_bytes,
                f32_report.alltoall_payload_bytes / 2);
      EXPECT_GT(report.alltoall_payload_bytes,
                f32_report.alltoall_payload_bytes / 8);
    }

    // Fig-9 weight axis: quantized copies of W1+W2 per local expert.
    const std::uint64_t per_expert =
        quantized_bytes(16, 48, dt) + quantized_bytes(48, 16, dt);
    EXPECT_EQ(report.expert_weight_bytes, per_expert * 1);  // 4 experts / 4

    // Payload rings + staging shrink: the busiest device's activation
    // peak must drop vs fp32 (T_DI/T_DO rings accounted in wire format).
    EXPECT_LT(report.memory.activations, f32_report.memory.activations)
        << to_string(dt);
  }
}

TEST(MixedPrecisionLayer, F32DefaultBitwisePin) {
  // A layer that never mentions compute_dtype and one that pins kF32
  // explicitly must produce bitwise identical outputs — the dtype plumbing
  // may not perturb the default trajectory.
  sim::Cluster ca = sim::Cluster::dgx_a100_pod(1, 2);
  sim::Cluster cb = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions oa;
  oa.d_model = 16;
  oa.d_hidden = 48;
  oa.num_experts = 4;
  oa.num_partitions = 2;
  oa.seed = 21;
  core::MoELayerOptions ob = oa;
  ob.compute_dtype = DType::kF32;
  core::MoELayer a(ca, oa), b(cb, ob);
  auto inputs = layer_inputs(2, 24, 16, 17);
  auto ya = a.forward(inputs);
  auto yb = b.forward(inputs);
  ASSERT_EQ(ya.size(), yb.size());
  for (std::size_t d = 0; d < ya.size(); ++d) {
    for (std::int64_t i = 0; i < ya[d].numel(); ++i) {
      ASSERT_EQ(bits_of(ya[d].data()[i]), bits_of(yb[d].data()[i]))
          << "device " << d << " i " << i;
    }
  }
  std::vector<Tensor> grads;
  for (auto& out : ya) grads.push_back(Tensor(out.shape()));
  a.backward(grads);
  b.backward(grads);
}

TEST(MixedPrecisionLayer, ServePlanReportsDtypeAndCurves) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o = mixed_options(DType::kBF16);
  o.num_experts = 2;
  core::MoELayer layer(cluster, o);
  serve::SloPolicyOptions so;
  so.max_tokens_per_device = 16;
  serve::SloSelector selector(layer, so);
  const serve::ServePlan plan = selector.plan();
  EXPECT_EQ(plan.compute_dtype, DType::kBF16);
  EXPECT_NE(plan.curve_provenance.find("gemm"), std::string::npos);
  EXPECT_NE(plan.summary().find("bf16"), std::string::npos);
}

}  // namespace
}  // namespace mpipe
