// Gating / expert / LayerNorm / attention numerics, including
// finite-difference gradient checks and row-indexed vs dense equivalence.

#include <gtest/gtest.h>

#include "common/check.h"

#include "moe/attention.h"
#include "moe/expert.h"
#include "moe/gating.h"
#include "moe/layer_norm.h"
#include "moe/moe_block.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe::moe {
namespace {

using mpipe::CheckError;

TEST(Gating, ProbabilitiesAndArgmaxConsistent) {
  Rng rng(2);
  GatingNetwork gate(16, 8, rng);
  Tensor x = random_tokens(12, 16, rng);
  const auto fwd = gate.forward(x);
  ASSERT_EQ(fwd.expert_of.size(), 12u);
  for (std::int64_t t = 0; t < 12; ++t) {
    double sum = 0.0;
    float mx = 0.0f;
    for (int e = 0; e < 8; ++e) {
      sum += fwd.probs.at(t, e);
      mx = std::max(mx, fwd.probs.at(t, e));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_FLOAT_EQ(fwd.gate[static_cast<std::size_t>(t)], mx);
    EXPECT_GE(fwd.gate[static_cast<std::size_t>(t)], 1.0f / 8.0f - 1e-6f);
  }
}

TEST(Gating, BackwardFiniteDifference) {
  Rng rng(6);
  GatingNetwork gate(6, 4, rng);
  Tensor x = random_tokens(5, 6, rng);
  auto fwd = gate.forward(x);
  std::vector<float> dgate(5, 1.0f);
  Tensor dx = gate.backward(x, fwd, dgate);

  // Perturb one input coordinate; loss = sum of winning gate values.
  // (Perturbations small enough not to flip the argmax.)
  const float h = 1e-4f;
  auto loss = [&](const Tensor& input) {
    auto f = gate.forward(input);
    double acc = 0.0;
    for (std::int64_t t = 0; t < 5; ++t) {
      // Use the ORIGINAL winner so the objective stays differentiable.
      acc += f.probs.at(t, fwd.expert_of[static_cast<std::size_t>(t)]);
    }
    return acc;
  };
  for (std::int64_t idx : {0, 7, 19}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    const double numeric = (loss(xp) - loss(xm)) / (2 * h);
    EXPECT_NEAR(dx.at(idx), numeric, 1e-2) << "idx " << idx;
  }
}

TEST(Gating, LoadBalanceLossBoundsAndSkewSensitivity) {
  Rng rng(7);
  GatingNetwork gate(8, 4, rng);
  // Balanced: loss ~ 1; worst case (all to one expert): approaches E.
  GatingForward balanced;
  balanced.probs = Tensor::full(Shape{8, 4}, 0.25f);
  balanced.expert_of = {0, 1, 2, 3, 0, 1, 2, 3};
  balanced.gate.assign(8, 0.25f);
  EXPECT_NEAR(gate.load_balance_loss(balanced), 1.0, 1e-5);

  GatingForward skewed;
  skewed.probs = Tensor(Shape{8, 4});
  for (std::int64_t t = 0; t < 8; ++t) skewed.probs.at(t, 0) = 1.0f;
  skewed.expert_of.assign(8, 0);
  skewed.gate.assign(8, 1.0f);
  EXPECT_NEAR(gate.load_balance_loss(skewed), 4.0, 1e-5);
}

TEST(Expert, ForwardMatchesManualMath) {
  Rng rng(3);
  ExpertFFN expert(4, 6, ActivationKind::kReLU, rng);
  Tensor x = random_tokens(3, 4, rng);
  Tensor mid;
  Tensor y = expert.forward(x, mid);
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
  EXPECT_EQ(mid.shape(), (Shape{3, 6}));
  // Middle is post-ReLU: non-negative.
  for (std::int64_t i = 0; i < mid.numel(); ++i) {
    EXPECT_GE(mid.at(i), 0.0f);
  }
}

TEST(Expert, BackwardFiniteDifference) {
  Rng rng(12);
  ExpertFFN expert(5, 7, ActivationKind::kReLU, rng);
  Tensor x = random_tokens(4, 5, rng);
  Tensor mid;
  Tensor y = expert.forward(x, mid);
  Tensor dy = Tensor::full(y.shape(), 1.0f);
  expert.zero_grad();
  Tensor dx = expert.backward(dy, x, mid);

  auto loss = [&](const Tensor& input) {
    Tensor m;
    return expert.forward(input, m).sum();
  };
  const float h = 1e-3f;
  for (std::int64_t idx : {0, 9, 19}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    const double numeric = (loss(xp) - loss(xm)) / (2 * h);
    EXPECT_NEAR(dx.at(idx), numeric, 2e-2) << "idx " << idx;
  }
}

TEST(Expert, WeightGradFiniteDifference) {
  Rng rng(13);
  ExpertFFN expert(4, 5, ActivationKind::kReLU, rng);
  Tensor x = random_tokens(3, 4, rng);
  Tensor mid;
  Tensor y = expert.forward(x, mid);
  expert.zero_grad();
  expert.backward(Tensor::full(y.shape(), 1.0f), x, mid);
  Tensor* w1 = expert.parameters()[0];
  Tensor* gw1 = expert.gradients()[0];
  const float h = 1e-3f;
  for (std::int64_t idx : {0, 11}) {
    const float saved = w1->at(idx);
    w1->at(idx) = saved + h;
    Tensor m1;
    const double lp = expert.forward(x, m1).sum();
    w1->at(idx) = saved - h;
    Tensor m2;
    const double lm = expert.forward(x, m2).sum();
    w1->at(idx) = saved;
    EXPECT_NEAR(gw1->at(idx), (lp - lm) / (2 * h), 2e-2) << "idx " << idx;
  }
}

TEST(Expert, SpanIndexedMatchesDense) {
  Rng rng(20);
  ExpertFFN expert(4, 8, ActivationKind::kReLU, rng);
  Tensor buf = random_tokens(6, 4, rng);
  Tensor mid_buf(Shape{6, 8});
  Tensor out_buf(Shape{6, 4});
  // Rows 1 and 3..4, as two contiguous spans.
  const RowSpanList spans = {{1, 1}, {3, 2}};
  const std::vector<std::int64_t> rows = {1, 3, 4};
  expert.forward_rows(buf, spans, mid_buf, out_buf);

  Tensor dense_in(Shape{3, 4});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    dense_in.copy_into_rows(static_cast<std::int64_t>(i),
                            buf.slice_rows(rows[i], rows[i] + 1));
  }
  Tensor dense_mid;
  Tensor dense_out = expert.forward(dense_in, dense_mid);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_LT(max_abs_diff(
                  out_buf.slice_rows(rows[i], rows[i] + 1),
                  dense_out.slice_rows(static_cast<std::int64_t>(i),
                                       static_cast<std::int64_t>(i) + 1)),
              1e-6f);
  }
  // Untouched rows stay zero.
  EXPECT_FLOAT_EQ(out_buf.slice_rows(0, 1).abs_max(), 0.0f);
  EXPECT_FLOAT_EQ(out_buf.slice_rows(2, 3).abs_max(), 0.0f);
  EXPECT_FLOAT_EQ(out_buf.slice_rows(5, 6).abs_max(), 0.0f);

  // Recompute reproduces the stored middle rows exactly.
  Tensor mid_recomputed(Shape{6, 8});
  expert.recompute_mid_rows(buf, spans, mid_recomputed);
  EXPECT_FLOAT_EQ(max_abs_diff(mid_recomputed, mid_buf), 0.0f);
  // And FFN2-only matches the fused output.
  Tensor out2(Shape{6, 4});
  expert.forward_out_rows(mid_buf, spans, out2);
  EXPECT_LT(max_abs_diff(out2, out_buf), 1e-6f);
}

TEST(LayerNorm, NormalisesRows) {
  Rng rng(4);
  LayerNorm ln(8);
  Tensor x = random_tokens(5, 8, rng);
  const auto fwd = ln.forward(x);
  for (std::int64_t r = 0; r < 5; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 8; ++c) mean += fwd.normalized.at(r, c);
    mean /= 8.0;
    for (std::int64_t c = 0; c < 8; ++c) {
      const double d = fwd.normalized.at(r, c) - mean;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, BackwardFiniteDifference) {
  Rng rng(14);
  LayerNorm ln(6);
  init_normal(ln.gamma(), rng, 1.0f);
  Tensor x = random_tokens(3, 6, rng);
  auto fwd = ln.forward(x);
  Tensor dy(fwd.output.shape());
  init_normal(dy, rng, 1.0f);
  ln.zero_grad();
  Tensor dx = ln.backward(dy, fwd);
  const float h = 1e-3f;
  auto loss = [&](const Tensor& input) {
    auto f = ln.forward(input);
    double acc = 0.0;
    for (std::int64_t i = 0; i < f.output.numel(); ++i) {
      acc += static_cast<double>(dy.at(i)) * f.output.at(i);
    }
    return acc;
  };
  for (std::int64_t idx : {0, 10, 17}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    EXPECT_NEAR(dx.at(idx), (loss(xp) - loss(xm)) / (2 * h), 2e-2);
  }
}

class AttentionGrad : public testing::TestWithParam<bool> {};

TEST_P(AttentionGrad, BackwardFiniteDifference) {
  const bool causal = GetParam();
  Rng rng(15);
  MultiHeadAttention attn(8, 2, causal, rng);
  Tensor x = random_tokens(5, 8, rng);
  auto fwd = attn.forward(x);
  Tensor dy(fwd.output.shape());
  init_normal(dy, rng, 1.0f);
  attn.zero_grad();
  Tensor dx = attn.backward(dy, x, fwd);
  auto loss = [&](const Tensor& input) {
    auto f = attn.forward(input);
    double acc = 0.0;
    for (std::int64_t i = 0; i < f.output.numel(); ++i) {
      acc += static_cast<double>(dy.at(i)) * f.output.at(i);
    }
    return acc;
  };
  const float h = 1e-3f;
  for (std::int64_t idx : {0, 13, 37}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    EXPECT_NEAR(dx.at(idx), (loss(xp) - loss(xm)) / (2 * h), 3e-2)
        << "causal=" << causal << " idx " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Both, AttentionGrad, testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "causal" : "bidirectional";
                         });

TEST(Attention, CausalMaskBlocksFuture) {
  Rng rng(16);
  MultiHeadAttention attn(4, 1, /*causal=*/true, rng);
  Tensor x = random_tokens(4, 4, rng);
  auto fwd = attn.forward(x);
  // scores rows are post-softmax; upper triangle must be ~0.
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = r + 1; c < 4; ++c) {
      EXPECT_NEAR(fwd.scores.at(r, c), 0.0f, 1e-6f);
    }
  }
}

TEST(TransformerBlock, EndToEndGradCheck) {
  Rng rng(17);
  TransformerBlockPieces block(6, 2, false, rng);
  ExpertFFN ffn(6, 12, ActivationKind::kReLU, rng);
  Tensor x = random_tokens(4, 6, rng);

  auto run = [&](const Tensor& input, BlockForward* save_fwd,
                 Tensor* save_mid) {
    auto fwd = block.forward_pre_ffn(input);
    Tensor mid;
    Tensor ffn_out = ffn.forward(fwd.ffn_input, mid);
    Tensor y = TransformerBlockPieces::finish_forward(fwd, ffn_out);
    if (save_fwd != nullptr) *save_fwd = fwd;
    if (save_mid != nullptr) *save_mid = mid;
    return y;
  };

  BlockForward fwd;
  Tensor mid;
  Tensor y = run(x, &fwd, &mid);
  Tensor dy(y.shape());
  init_normal(dy, rng, 1.0f);
  block.zero_grad();
  ffn.zero_grad();
  Tensor d_ffn_in = ffn.backward(dy, fwd.ffn_input, mid);
  Tensor dx = block.backward(dy, d_ffn_in, x, fwd);

  auto loss = [&](const Tensor& input) {
    Tensor out = run(input, nullptr, nullptr);
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      acc += static_cast<double>(dy.at(i)) * out.at(i);
    }
    return acc;
  };
  const float h = 1e-3f;
  for (std::int64_t idx : {0, 11, 23}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    EXPECT_NEAR(dx.at(idx), (loss(xp) - loss(xm)) / (2 * h), 5e-2)
        << "idx " << idx;
  }
}

}  // namespace
}  // namespace mpipe::moe
