// Equations 1–6 (memory theory), Table II workloads, the Eq-10 cost model
// and the adaptive strategy selector's qualitative behaviour.

#include <gtest/gtest.h>

#include "common/check.h"

#include "core/perf_model.h"
#include "core/strategy_selector.h"
#include "core/theory.h"

namespace mpipe::core {
namespace {

using mpipe::CheckError;

MemoryTheoryParams bert_like(std::int64_t b, int n) {
  MemoryTheoryParams p;
  p.d_model = 1024;
  p.d_hidden = 4096;
  p.num_experts = 64;
  p.experts_per_device = 1;
  p.tokens_per_device = b;
  p.n_partitions = n;
  return p;
}

TEST(MemoryTheory, Equation1ModelStates) {
  MemoryTheory t(bert_like(4096, 1));
  // 4 * (E*M + 2*H*M [+ small biases]) * 4 bytes.
  const std::uint64_t without_bias =
      4ull * (64 * 1024 + 2ull * 4096 * 1024) * 4;
  EXPECT_GE(t.model_states(), without_bias);
  EXPECT_LT(t.model_states(), without_bias + 4ull * (4096 + 1024) * 4 + 1);
}

TEST(MemoryTheory, Equations2And3Activations) {
  MemoryTheory t(bert_like(4096, 1));
  EXPECT_EQ(t.activations(),
            (4ull * 4096 * 1024 + 4096ull * 4096) * 4);
  EXPECT_EQ(t.temp_buffers(), (4096ull * 1024 + 4096ull * 4096) * 4);
  // Eq 4: pipeline temp = activations.
  EXPECT_EQ(t.pipeline_temp_buffers(), t.pipeline_activations());
}

TEST(MemoryTheory, Equation5SavingGrowsWithN) {
  const auto s2 = MemoryTheory(bert_like(4096, 2)).reuse_saving();
  const auto s4 = MemoryTheory(bert_like(4096, 4)).reuse_saving();
  const auto s8 = MemoryTheory(bert_like(4096, 8)).reuse_saving();
  EXPECT_LT(s2, s4);
  EXPECT_LT(s4, s8);
  EXPECT_EQ(MemoryTheory(bert_like(4096, 1)).reuse_saving(), 0u);
  // n=2: only the T_M term (H*(n-1)/n) survives.
  EXPECT_EQ(s2, static_cast<std::uint64_t>(4096.0 * 4096.0 / 2.0 * 4));
}

TEST(MemoryTheory, Equation6RatioInUnitIntervalAndMonotonicInB) {
  const double r_small = MemoryTheory(bert_like(1024, 4)).saving_ratio();
  const double r_large = MemoryTheory(bert_like(32768, 4)).saving_ratio();
  EXPECT_GT(r_small, 0.0);
  EXPECT_LT(r_large, 1.0);
  // Larger B makes activations dominate, so the ratio grows.
  EXPECT_GT(r_large, r_small);
}

TEST(TableII, WorkloadsMatchThePaper) {
  const auto none = workload_of(ReuseStrategy::kNone, 4);
  EXPECT_EQ(none.forward, (std::array<int, 3>{2, 2, 0}));
  EXPECT_EQ(none.backward, (std::array<int, 3>{4, 2, 0}));
  const auto s1 = workload_of(ReuseStrategy::kS1, 4);
  EXPECT_EQ(s1.forward, (std::array<int, 3>{2, 2, 5}));
  EXPECT_EQ(s1.backward, (std::array<int, 3>{4, 2, 5}));
  const auto s2 = workload_of(ReuseStrategy::kS2, 4);
  EXPECT_EQ(s2.forward, (std::array<int, 3>{2, 2, 4}));
  EXPECT_EQ(s2.backward, (std::array<int, 3>{4, 3, 4}));
  const auto s3 = workload_of(ReuseStrategy::kS3, 4);
  EXPECT_EQ(s3.forward, (std::array<int, 3>{2, 2, 1}));
  EXPECT_EQ(s3.backward, (std::array<int, 3>{5, 2, 1}));
  const auto s4 = workload_of(ReuseStrategy::kS4, 4);
  EXPECT_EQ(s4.forward, (std::array<int, 3>{2, 2, 0}));
  EXPECT_EQ(s4.backward, (std::array<int, 3>{5, 3, 0}));
}

TEST(TableII, InterferenceColumns) {
  PerfModelParams p;
  p.mu_comp = 0.72;
  p.mu_all = 0.71;
  p.eta_all = 0.71;
  PerfModel model(p);
  // Offload strategies see the all-streams factors; none/S4 the lighter.
  EXPECT_DOUBLE_EQ(model.factors(ReuseStrategy::kS1).mu, 0.71);
  EXPECT_DOUBLE_EQ(model.factors(ReuseStrategy::kS1).eta, 0.71);
  EXPECT_DOUBLE_EQ(model.factors(ReuseStrategy::kS4).mu, 0.72);
  EXPECT_DOUBLE_EQ(model.factors(ReuseStrategy::kS4).eta, 1.0);
  EXPECT_DOUBLE_EQ(model.factors(ReuseStrategy::kNone).mu, 0.72);
}

TEST(PerfModel, ComputeBoundFavoursOffload) {
  // Very slow compute, fast PCIe: the extra recompute GEMMs of S3/S4 are
  // the bottleneck, so S1 (all offload) must win.
  PerfModelParams p;
  p.w_comp = 1e12;
  p.w_comm = 1e12;
  p.w_mem = 1e12;
  StrategySelector selector(p);
  const auto choice = selector.select(4096, 1024, 4096);
  EXPECT_EQ(choice.strategy, ReuseStrategy::kS1);
}

TEST(PerfModel, MemBoundFavoursRecompute) {
  // Glacial PCIe: any offload strategy is mem-bound; S4 avoids the mem
  // stream entirely.
  PerfModelParams p;
  p.w_comp = 1e14;
  p.w_comm = 1e11;
  p.w_mem = 1e8;
  StrategySelector selector(p);
  const auto choice = selector.select(4096, 1024, 4096);
  EXPECT_EQ(choice.strategy, ReuseStrategy::kS4);
}

TEST(PerfModel, CommBoundPenalisesReCommunication) {
  // Very slow network: S2/S4's extra AllToAll dominates; between S1 and S3
  // both keep comm at 2 ops — the model must not pick S2 or S4.
  PerfModelParams p;
  p.w_comp = 1e14;
  p.w_comm = 1e9;
  p.w_mem = 1e11;
  StrategySelector selector(p);
  const auto choice = selector.select(4096, 1024, 4096);
  EXPECT_TRUE(choice.strategy == ReuseStrategy::kS1 ||
              choice.strategy == ReuseStrategy::kS3);
}

TEST(PerfModel, CostsScaleLinearlyInBatch) {
  PerfModelParams p;
  p.w_comp = 1e13;
  p.w_comm = 1e10;
  p.w_mem = 1e10;
  PerfModel model(p);
  const double c1 = model.step_cost(ReuseStrategy::kS3, 1024, 1024, 4096);
  const double c2 = model.step_cost(ReuseStrategy::kS3, 2048, 1024, 4096);
  EXPECT_NEAR(c2 / c1, 2.0, 1e-9);
}

TEST(PerfModel, CandidateCostsExposedForAllFour) {
  PerfModelParams p;
  StrategySelector selector(p);
  const auto choice = selector.select(128, 64, 256);
  ASSERT_EQ(choice.candidate_costs.size(), 4u);
  double best = choice.candidate_costs[0];
  for (double c : choice.candidate_costs) best = std::min(best, c);
  EXPECT_DOUBLE_EQ(best, choice.predicted_seconds);
}

TEST(PerfModel, MeasureFromClusterIsConsistent) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(2, 4);
  const auto p = StrategySelector::measure(cluster, 1024, 1024);
  EXPECT_GT(p.w_comp, 0.0);
  EXPECT_GT(p.w_comm, 0.0);
  EXPECT_GT(p.w_mem, 0.0);
  EXPECT_NEAR(p.mu_comp, 0.72, 1e-9);
  EXPECT_NEAR(p.mu_all, 0.71, 1e-9);
  EXPECT_NEAR(p.eta_all, 0.71, 1e-9);
  // Larger micro-batches run GEMMs more efficiently.
  const auto p_small = StrategySelector::measure(cluster, 64, 1024);
  EXPECT_LT(p_small.w_comp, p.w_comp);
}

TEST(ReuseStrategyTraits, RestorePredicates) {
  EXPECT_FALSE(restores_tdi_by_comm(ReuseStrategy::kS1));
  EXPECT_TRUE(restores_tdi_by_comm(ReuseStrategy::kS2));
  EXPECT_FALSE(restores_tdi_by_comm(ReuseStrategy::kS3));
  EXPECT_TRUE(restores_tdi_by_comm(ReuseStrategy::kS4));
  EXPECT_FALSE(restores_tm_by_recompute(ReuseStrategy::kS1));
  EXPECT_FALSE(restores_tm_by_recompute(ReuseStrategy::kS2));
  EXPECT_TRUE(restores_tm_by_recompute(ReuseStrategy::kS3));
  EXPECT_TRUE(restores_tm_by_recompute(ReuseStrategy::kS4));
  EXPECT_TRUE(uses_offload(ReuseStrategy::kS1));
  EXPECT_TRUE(uses_offload(ReuseStrategy::kS2));
  EXPECT_TRUE(uses_offload(ReuseStrategy::kS3));
  EXPECT_FALSE(uses_offload(ReuseStrategy::kS4));
  EXPECT_EQ(to_string(ReuseStrategy::kS3), "S3");
}

}  // namespace
}  // namespace mpipe::core
