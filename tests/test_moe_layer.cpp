// Core correctness of the MPipeMoE layer: the pipelined, memory-reused
// execution must be numerically identical to a direct (unpipelined)
// reference evaluation of the same gating + experts, for every partition
// count and every restore strategy.

#include <gtest/gtest.h>

#include "core/moe_layer.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

struct LayerCase {
  int devices;
  int experts;
  int partitions;          // 0 = adaptive
  core::ReuseStrategy strategy;
  bool memory_reuse;
};

std::string case_name(const testing::TestParamInfo<LayerCase>& info) {
  const LayerCase& c = info.param;
  return "P" + std::to_string(c.devices) + "E" + std::to_string(c.experts) +
         "n" + std::to_string(c.partitions) +
         (c.memory_reuse ? core::to_string(c.strategy) : std::string("raw"));
}

core::MoELayerOptions small_options(const LayerCase& c) {
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 48;
  o.num_experts = c.experts;
  o.num_partitions = c.partitions;
  o.pipeline = true;
  o.memory_reuse = c.memory_reuse;
  if (c.memory_reuse) o.strategy = c.strategy;
  o.seed = 7;
  return o;
}

std::vector<Tensor> make_inputs(int devices, std::int64_t tokens,
                                std::int64_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (int d = 0; d < devices; ++d) {
    inputs.push_back(random_tokens(tokens, d_model, rng));
  }
  return inputs;
}

/// Direct evaluation: per token, run the routed expert's FFN and scale by
/// the gate — no dispatch, no pipeline, no reuse.
std::vector<Tensor> reference_forward(core::MoELayer& layer,
                                      const std::vector<Tensor>& inputs) {
  const int epd = layer.experts_per_device();
  std::vector<Tensor> outputs;
  for (int d = 0; d < layer.num_devices(); ++d) {
    const Tensor& x = inputs[static_cast<std::size_t>(d)];
    const auto gating = layer.gate(d).forward(x);
    Tensor out(x.shape());
    for (std::int64_t t = 0; t < x.dim(0); ++t) {
      const std::int64_t e = gating.expert_of[static_cast<std::size_t>(t)];
      const int holder = static_cast<int>(e / epd);
      const int local = static_cast<int>(e % epd);
      Tensor row = x.slice_rows(t, t + 1);
      Tensor mid;
      Tensor y = layer.expert(holder, local).forward(row, mid);
      scale_(y, gating.gate[static_cast<std::size_t>(t)]);
      out.copy_into_rows(t, y);
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

class MoELayerParity : public testing::TestWithParam<LayerCase> {};

TEST_P(MoELayerParity, ForwardMatchesReference) {
  const LayerCase c = GetParam();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, c.devices);
  core::MoELayer layer(cluster, small_options(c));
  auto inputs = make_inputs(c.devices, 33, 16, 99);
  auto expected = reference_forward(layer, inputs);
  auto outputs = layer.forward(inputs);
  ASSERT_EQ(outputs.size(), expected.size());
  for (std::size_t d = 0; d < outputs.size(); ++d) {
    EXPECT_LT(max_abs_diff(outputs[d], expected[d]), 2e-5f)
        << "device " << d;
  }
  // Consume the step so the next test starts clean.
  std::vector<Tensor> grads;
  for (auto& out : outputs) grads.push_back(Tensor(out.shape()));
  layer.backward(grads);
}

TEST_P(MoELayerParity, StrategyReportsMatchConfiguration) {
  const LayerCase c = GetParam();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, c.devices);
  core::MoELayer layer(cluster, small_options(c));
  auto inputs = make_inputs(c.devices, 32, 16, 5);
  auto outputs = layer.forward(inputs);
  std::vector<Tensor> grads;
  for (auto& out : outputs) grads.push_back(Tensor(out.shape()));
  layer.backward(grads);
  const auto& report = layer.last_report();
  if (c.partitions > 0) {
    EXPECT_EQ(report.n_partitions, c.partitions);
  }
  if (!c.memory_reuse || report.n_partitions <= 1) {
    EXPECT_EQ(report.strategy, core::ReuseStrategy::kNone);
  } else {
    EXPECT_EQ(report.strategy, c.strategy);
  }
  EXPECT_GT(report.forward_seconds, 0.0);
  EXPECT_GT(report.backward_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, MoELayerParity,
    testing::Values(
        LayerCase{2, 2, 1, core::ReuseStrategy::kNone, false},
        LayerCase{2, 4, 2, core::ReuseStrategy::kS1, true},
        LayerCase{4, 4, 1, core::ReuseStrategy::kNone, false},
        LayerCase{4, 4, 2, core::ReuseStrategy::kNone, false},
        LayerCase{4, 4, 4, core::ReuseStrategy::kNone, false},
        LayerCase{4, 4, 2, core::ReuseStrategy::kS1, true},
        LayerCase{4, 4, 4, core::ReuseStrategy::kS1, true},
        LayerCase{4, 4, 4, core::ReuseStrategy::kS2, true},
        LayerCase{4, 4, 4, core::ReuseStrategy::kS3, true},
        LayerCase{4, 4, 4, core::ReuseStrategy::kS4, true},
        LayerCase{4, 8, 3, core::ReuseStrategy::kS2, true},
        LayerCase{4, 8, 4, core::ReuseStrategy::kS3, true},
        LayerCase{8, 8, 4, core::ReuseStrategy::kS4, true},
        LayerCase{8, 16, 2, core::ReuseStrategy::kS1, true},
        LayerCase{3, 6, 3, core::ReuseStrategy::kS4, true}),
    case_name);

/// Every restore strategy must produce bit-identical gradients: the reuse
/// machinery may never change the math.
class StrategyGradientParity
    : public testing::TestWithParam<core::ReuseStrategy> {};

struct GradDump {
  std::vector<Tensor> dx;
  std::vector<Tensor> param_grads;
};

GradDump run_step(core::ReuseStrategy strategy, bool reuse, int partitions) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions o;
  o.d_model = 12;
  o.d_hidden = 36;
  o.num_experts = 8;
  o.num_partitions = partitions;
  o.memory_reuse = reuse;
  if (reuse) o.strategy = strategy;
  o.seed = 21;
  core::MoELayer layer(cluster, o);
  auto inputs = make_inputs(4, 25, 12, 1234);
  auto outputs = layer.forward(inputs);
  std::vector<Tensor> grads;
  Rng rng(77);
  for (auto& out : outputs) {
    Tensor g(out.shape());
    init_normal(g, rng, 1.0f);
    grads.push_back(g);
  }
  GradDump dump;
  dump.dx = layer.backward(grads);
  for (Tensor* g : layer.gradients()) dump.param_grads.push_back(g->clone());
  return dump;
}

TEST_P(StrategyGradientParity, MatchesNoReuseBaseline) {
  const auto baseline = run_step(core::ReuseStrategy::kNone, false, 4);
  const auto with_reuse = run_step(GetParam(), true, 4);
  ASSERT_EQ(baseline.dx.size(), with_reuse.dx.size());
  for (std::size_t d = 0; d < baseline.dx.size(); ++d) {
    EXPECT_LT(max_abs_diff(baseline.dx[d], with_reuse.dx[d]), 1e-5f)
        << "dx mismatch on device " << d;
  }
  ASSERT_EQ(baseline.param_grads.size(), with_reuse.param_grads.size());
  for (std::size_t i = 0; i < baseline.param_grads.size(); ++i) {
    EXPECT_LT(
        max_abs_diff(baseline.param_grads[i], with_reuse.param_grads[i]),
        1e-5f)
        << "param grad " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyGradientParity,
                         testing::Values(core::ReuseStrategy::kS1,
                                         core::ReuseStrategy::kS2,
                                         core::ReuseStrategy::kS3,
                                         core::ReuseStrategy::kS4),
                         [](const auto& info) {
                           return core::to_string(info.param);
                         });

/// Finite-difference check of the full distributed layer: perturb one
/// input element, compare (loss(x+h)-loss(x-h))/2h against dx.
TEST(MoELayerGradCheck, InputGradientFiniteDifference) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o;
  o.d_model = 8;
  o.d_hidden = 16;
  o.num_experts = 4;
  o.num_partitions = 2;
  o.memory_reuse = true;
  o.strategy = core::ReuseStrategy::kS4;
  o.seed = 3;

  auto loss_of = [&](const std::vector<Tensor>& inputs) {
    core::MoELayer layer(cluster, o);
    auto outputs = layer.forward(inputs);
    double loss = 0.0;
    for (auto& out : outputs) {
      for (std::int64_t i = 0; i < out.numel(); ++i) {
        loss += 0.5 * out.at(i) * out.at(i);
      }
    }
    std::vector<Tensor> grads;
    for (auto& out : outputs) grads.push_back(out.clone());
    layer.backward(grads);
    return loss;
  };

  auto inputs = make_inputs(2, 9, 8, 2024);
  // Analytic gradient.
  core::MoELayer layer(cluster, o);
  auto outputs = layer.forward(inputs);
  std::vector<Tensor> grads;
  for (auto& out : outputs) grads.push_back(out.clone());
  auto dx = layer.backward(grads);

  // Probe a handful of coordinates on each device.
  const float h = 1e-3f;
  for (int d = 0; d < 2; ++d) {
    for (std::int64_t idx : {std::int64_t(0), std::int64_t(13),
                             std::int64_t(40)}) {
      auto plus = inputs;
      plus[static_cast<std::size_t>(d)] =
          inputs[static_cast<std::size_t>(d)].clone();
      plus[static_cast<std::size_t>(d)].at(idx) += h;
      auto minus = inputs;
      minus[static_cast<std::size_t>(d)] =
          inputs[static_cast<std::size_t>(d)].clone();
      minus[static_cast<std::size_t>(d)].at(idx) -= h;
      const double numeric =
          (loss_of(plus) - loss_of(minus)) / (2.0 * h);
      const double analytic = dx[static_cast<std::size_t>(d)].at(idx);
      EXPECT_NEAR(numeric, analytic,
                  5e-2 * std::max(1.0, std::abs(numeric)))
          << "device " << d << " idx " << idx;
    }
  }
}

TEST(MoELayerMemory, ReuseNeverExceedsNoReuse) {
  for (int n : {2, 4}) {
    auto run = [&](bool reuse) {
      sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
      core::MoELayerOptions o;
      o.d_model = 16;
      o.d_hidden = 64;
      o.num_experts = 4;
      o.num_partitions = n;
      o.memory_reuse = reuse;
      if (reuse) o.strategy = core::ReuseStrategy::kS1;
      core::MoELayer layer(cluster, o);
      auto inputs = make_inputs(4, 64, 16, 8);
      auto outputs = layer.forward(inputs);
      std::vector<Tensor> grads;
      for (auto& out : outputs) grads.push_back(Tensor(out.shape()));
      layer.backward(grads);
      return layer.last_report().memory.total_peak;
    };
    const auto with_reuse = run(true);
    const auto without = run(false);
    EXPECT_LT(with_reuse, without) << "n=" << n;
  }
}

TEST(MoELayerMemory, OffloadStrategiesStageToHost) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o;
  o.d_model = 8;
  o.d_hidden = 16;
  o.num_experts = 2;
  o.num_partitions = 2;
  o.memory_reuse = true;
  o.strategy = core::ReuseStrategy::kS1;
  core::MoELayer layer(cluster, o);
  auto inputs = make_inputs(2, 16, 8, 11);
  layer.forward(inputs);
  // After forward, S1 has offloaded T_DI and T_M partitions to the host.
  EXPECT_GT(layer.staging().entries(), 0u);
  EXPECT_GT(layer.staging().bytes_stored(), 0u);
  std::vector<Tensor> grads;
  for (int d = 0; d < 2; ++d) grads.push_back(Tensor(Shape{16, 8}));
  layer.backward(grads);
  // Backward prefetched and dropped everything.
  EXPECT_EQ(layer.staging().entries(), 0u);
}

TEST(MoELayerTiming, TimingOnlyModeMatchesPaperScaleWithoutStorage) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  core::MoELayerOptions o;
  o.d_model = 2048;
  o.d_hidden = 8192;
  o.num_experts = 64;
  o.num_partitions = 4;
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);
  const auto report = layer.step_timing(16384);
  EXPECT_GT(report.step_seconds(), 0.0);
  // 16k tokens * 2048 dims * 4 bytes * ~10 tensors would be gigabytes; the
  // accounting must see it even though no storage was touched.
  EXPECT_GT(report.memory.total_peak, 500ull * 1024 * 1024);
}

TEST(MoELayerTiming, PipelineBeatsSequentialOnLargeBatches) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  auto time_with_n = [&](int n) {
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.num_partitions = n;
    o.memory_reuse = false;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    return layer.step_timing(16384).step_seconds();
  };
  EXPECT_LT(time_with_n(4), time_with_n(1));
}

}  // namespace
}  // namespace mpipe
