// Extension and edge-case coverage: the GELU expert path end to end,
// device-capacity OOM surfaced through the layer, API misuse errors,
// shadowing's traffic effect, trace/CSV/table/logging utilities.

#include <gtest/gtest.h>

#include "common/check.h"

#include <cstdio>
#include <fstream>

#include "baselines/fastermoe.h"
#include "comm/all_to_all.h"
#include "comm/collectives.h"
#include "common/units.h"
#include "common/csv_writer.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "core/moe_layer.h"
#include "runtime/trainer.h"
#include "sim/trace.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

TEST(GeluExpert, FiniteDifferenceThroughStashConvention) {
  // GELU stashes the pre-activation in T_M; the fused fwd/bwd must still
  // be exact.
  Rng rng(41);
  moe::ExpertFFN expert(5, 9, moe::ActivationKind::kGELU, rng);
  Tensor x = random_tokens(4, 5, rng);
  Tensor mid;
  Tensor y = expert.forward(x, mid);
  expert.zero_grad();
  Tensor dx = expert.backward(Tensor::full(y.shape(), 1.0f), x, mid);
  auto loss = [&](const Tensor& input) {
    Tensor m;
    return expert.forward(input, m).sum();
  };
  const float h = 1e-3f;
  for (std::int64_t idx : {0, 8, 19}) {
    Tensor xp = x.clone();
    xp.at(idx) += h;
    Tensor xm = x.clone();
    xm.at(idx) -= h;
    EXPECT_NEAR(dx.at(idx), (loss(xp) - loss(xm)) / (2 * h), 2e-2)
        << "idx " << idx;
  }
}

TEST(GeluExpert, SplitStagesMatchFusedForward) {
  Rng rng(42);
  moe::ExpertFFN expert(4, 8, moe::ActivationKind::kGELU, rng);
  Tensor buf = random_tokens(5, 4, rng);
  const moe::RowSpanList spans = {{0, 1}, {2, 1}, {4, 1}};
  Tensor mid_buf(Shape{5, 8}), out_split(Shape{5, 4}), out_fused(Shape{5, 4});
  expert.forward_mid_rows(buf, spans, mid_buf);  // C1
  expert.forward_out_rows(mid_buf, spans, out_split);  // C2
  Tensor mid2(Shape{5, 8});
  expert.forward_rows(buf, spans, mid2, out_fused);
  EXPECT_LT(max_abs_diff(out_split, out_fused), 1e-5f);
  // Recompute (S3/S4 restore path) reproduces the stash exactly.
  Tensor mid3(Shape{5, 8});
  expert.recompute_mid_rows(buf, spans, mid3);
  EXPECT_FLOAT_EQ(max_abs_diff(mid3, mid_buf), 0.0f);
}

TEST(GeluExpert, DistributedLayerTrainsWithGelu) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o;
  o.d_model = 12;
  o.d_hidden = 24;
  o.num_experts = 4;
  o.num_partitions = 2;
  o.memory_reuse = true;
  o.strategy = core::ReuseStrategy::kS3;  // exercises GELU recompute
  o.activation = moe::ActivationKind::kGELU;
  core::MoELayer layer(cluster, o);
  runtime::TrainerOptions topt;
  topt.workload.d_model = 12;
  topt.workload.tokens_per_device = 24;
  topt.workload.num_devices = 2;
  topt.adam.lr = 3e-3f;
  topt.steps = 10;
  topt.load_calibration = false;  // hermetic: no cwd-dependent curves
  runtime::Trainer trainer(layer, topt);
  const auto& metrics = trainer.run();
  EXPECT_LT(metrics.last_loss(), metrics.first_loss());
}

TEST(MoELayerErrors, MisuseIsRejectedEagerly) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions o;
  o.d_model = 8;
  o.d_hidden = 16;
  o.num_experts = 6;  // not a multiple of 4 devices
  EXPECT_THROW(core::MoELayer(cluster, o), CheckError);

  o.num_experts = 4;
  o.top_k = 2;
  EXPECT_THROW(core::MoELayer(cluster, o), CheckError);

  o.top_k = 1;
  core::MoELayer layer(cluster, o);
  // backward before forward
  EXPECT_THROW(layer.backward({}), CheckError);
  // wrong number of inputs
  EXPECT_THROW(layer.forward({Tensor(Shape{4, 8})}), CheckError);
  // wrong input width
  std::vector<Tensor> bad;
  for (int d = 0; d < 4; ++d) bad.push_back(Tensor(Shape{4, 9}));
  EXPECT_THROW(layer.forward(bad), CheckError);
}

TEST(MoELayerErrors, TimingOnlyLayerRefusesFunctionalCalls) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o;
  o.d_model = 8;
  o.d_hidden = 16;
  o.num_experts = 2;
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);
  std::vector<Tensor> inputs(2, Tensor(Shape{4, 8}));
  EXPECT_THROW(layer.forward(inputs), CheckError);
  EXPECT_THROW(layer.gate(0), CheckError);
}

TEST(MoELayerCapacity, OomSurfacesWithContext) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  core::MoELayerOptions o;
  o.d_model = 64;
  o.d_hidden = 256;
  o.num_experts = 2;
  o.num_partitions = 2;
  o.memory_reuse = false;
  o.device_capacity_bytes = 600 * 1024;  // fits weights, not a big step
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);
  EXPECT_NO_THROW(layer.step_timing(16));
  EXPECT_THROW(layer.step_timing(4096), mem::OutOfMemoryError);
}

TEST(Shadowing, ReducesFasterMoECommUnderHotExpert) {
  sim::Cluster c1 = sim::Cluster::dgx_a100_pod(2, 4);
  sim::Cluster c2 = sim::Cluster::dgx_a100_pod(2, 4);
  baselines::FasterMoEOptions with;
  with.d_model = 1024;
  with.d_hidden = 4096;
  with.num_experts = 64;
  with.mode = core::ExecutionMode::kTimingOnly;
  with.shadowing.enabled = true;
  with.shadowing.threshold = 1.3;
  baselines::FasterMoEOptions without = with;
  without.shadowing.enabled = false;

  baselines::FasterMoELayer shadowed(c1, with);
  baselines::FasterMoELayer plain(c2, without);
  // Heavy skew: device 0 is hot; shadowing keeps its traffic local.
  const auto t_shadowed = shadowed.step_timing(16384, 0.3);
  const auto t_plain = plain.step_timing(16384, 0.3);
  EXPECT_LT(t_shadowed.step_seconds(), t_plain.step_seconds());
  EXPECT_GT(t_shadowed.memory.model_states, t_plain.memory.model_states);
}

TEST(TraceExport, WritesReadableJsonFile) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  sim::OpGraph g;
  g.add("work", sim::OpCategory::kGemm, sim::StreamKind::kCompute, {0}, 0.1,
        {});
  const auto timing = cluster.time_only(g);
  const std::string path = "/tmp/mpipe_trace_test.json";
  ASSERT_TRUE(sim::write_chrome_trace(path, g, timing));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"work\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TablePrinter, AlignsAndValidates) {
  TablePrinter table({"a", "long-header"});
  table.add_row({"1", "2"});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/mpipe_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.row({"1", CsvWriter::num(2.5)});
    EXPECT_THROW(csv.row({"too", "many", "cells"}), CheckError);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(Logging, LevelFilteringAndParsing) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
  auto& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  MPIPE_LOG_ERROR << "suppressed";  // must not crash, writes nothing
  logger.set_level(saved);
}

TEST(HierarchicalAllToAll, PhasesChainAndBandwidthCrossoverHolds) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(2, 8);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  sim::OpGraph g;
  const auto phases =
      comm::hierarchical_alltoall_timed(g, world, 8 * MiB, "h", {});
  ASSERT_EQ(phases.size(), 3u);
  const auto t = cluster.time_only(g);
  // Phases execute strictly in order.
  EXPECT_GE(t.op_times[1].start, t.op_times[0].end - 1e-12);
  EXPECT_GE(t.op_times[2].start, t.op_times[1].end - 1e-12);
  // With 2 nodes, only half the payload crosses the fabric — hierarchical
  // must beat flat at a bandwidth-bound payload.
  sim::OpGraph flat;
  comm::alltoall_timed(flat, world, 8 * MiB, "flat", {});
  EXPECT_LT(t.makespan, cluster.time_only(flat).makespan);
}

TEST(AsciiTimeline, ShowsOverlapStructure) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 1);
  sim::OpGraph g;
  g.add("Compute", sim::OpCategory::kGemm, sim::StreamKind::kCompute, {0},
        1.0, {});
  g.add("Xfer", sim::OpCategory::kAllToAll, sim::StreamKind::kComm, {0},
        1.0, {});
  const auto timing = cluster.time_only(g);
  const std::string art = sim::ascii_timeline(g, timing, 30);
  EXPECT_NE(art.find('C'), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
}

}  // namespace
}  // namespace mpipe
