// Baseline correctness and the qualitative orderings the paper reports:
// FastMoE and FasterMoE produce the same numbers as MPipeMoE (same seed →
// same parameters), PipeMoE beats both in simulated time, FasterMoE uses
// more memory than FastMoE once shadowing replicates experts.

#include <gtest/gtest.h>

#include "baselines/fastermoe.h"
#include "baselines/fastmoe.h"
#include "core/moe_layer.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

std::vector<Tensor> make_inputs(int devices, std::int64_t tokens,
                                std::int64_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (int d = 0; d < devices; ++d) {
    inputs.push_back(random_tokens(tokens, d_model, rng));
  }
  return inputs;
}

TEST(Baselines, FastMoEMatchesMPipeMoEForward) {
  sim::Cluster c1 = sim::Cluster::dgx_a100_pod(1, 4);
  sim::Cluster c2 = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions mo;
  mo.d_model = 12;
  mo.d_hidden = 24;
  mo.num_experts = 8;
  mo.num_partitions = 4;
  mo.memory_reuse = true;
  mo.strategy = core::ReuseStrategy::kS3;
  mo.seed = 5;
  core::MoELayer mpipe_layer(c1, mo);

  baselines::FastMoEOptions fo;
  fo.d_model = 12;
  fo.d_hidden = 24;
  fo.num_experts = 8;
  fo.seed = 5;
  baselines::FastMoELayer fast(c2, fo);

  auto inputs = make_inputs(4, 21, 12, 31);
  auto a = mpipe_layer.forward(inputs);
  auto b = fast.forward(inputs);
  for (std::size_t d = 0; d < a.size(); ++d) {
    EXPECT_LT(max_abs_diff(a[d], b[d]), 2e-5f) << "device " << d;
  }
}

TEST(Baselines, FasterMoEMatchesMPipeMoEForwardAndBackward) {
  sim::Cluster c1 = sim::Cluster::dgx_a100_pod(1, 4);
  sim::Cluster c2 = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions mo;
  mo.d_model = 12;
  mo.d_hidden = 24;
  mo.num_experts = 8;
  mo.num_partitions = 2;
  mo.memory_reuse = false;
  mo.seed = 5;
  core::MoELayer mpipe_layer(c1, mo);

  baselines::FasterMoEOptions fo;
  fo.d_model = 12;
  fo.d_hidden = 24;
  fo.num_experts = 8;
  fo.seed = 5;
  baselines::FasterMoELayer faster(c2, fo);

  auto inputs = make_inputs(4, 19, 12, 77);
  auto a = mpipe_layer.forward(inputs);
  auto b = faster.forward(inputs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    EXPECT_LT(max_abs_diff(a[d], b[d]), 2e-5f) << "fwd device " << d;
  }
  std::vector<Tensor> grads;
  Rng rng(9);
  for (auto& out : a) {
    Tensor g(out.shape());
    init_normal(g, rng, 1.0f);
    grads.push_back(g);
  }
  auto da = mpipe_layer.backward(grads);
  auto db = faster.backward(grads);
  for (std::size_t d = 0; d < da.size(); ++d) {
    EXPECT_LT(max_abs_diff(da[d], db[d]), 1e-5f) << "bwd device " << d;
  }
}

TEST(Baselines, FasterMoEParallelExecutionMatchesSerialBitwise) {
  // The P2P-fragmented baseline graphs run on the concurrent executor too
  // (their send/recv ops self-annotate from segment tables); parallel
  // execution must reproduce the serial reference bit for bit.
  auto run = [](bool parallel) {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    baselines::FasterMoEOptions fo;
    fo.d_model = 12;
    fo.d_hidden = 24;
    fo.num_experts = 8;
    fo.parallel_execution = parallel;
    fo.seed = 5;
    baselines::FasterMoELayer faster(cluster, fo);
    auto inputs = make_inputs(4, 19, 12, 77);
    auto outs = faster.forward(inputs);
    std::vector<Tensor> grads;
    Rng rng(9);
    for (auto& out : outs) {
      Tensor g(out.shape());
      init_normal(g, rng, 1.0f);
      grads.push_back(g);
    }
    auto dx = faster.backward(grads);
    std::vector<float> flat;
    for (const Tensor& t : outs) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    for (const Tensor& t : dx) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    return flat;
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

TEST(Baselines, PipeMoEFasterThanBaselinesAtPaperScale) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  core::MoELayerOptions po;
  po.d_model = 2048;
  po.d_hidden = 8192;
  po.num_experts = 64;
  po.num_partitions = 0;  // adaptive
  po.memory_reuse = false;
  po.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer pipemoe(cluster, po);

  baselines::FastMoEOptions fo;
  fo.d_model = 2048;
  fo.d_hidden = 8192;
  fo.num_experts = 64;
  fo.mode = core::ExecutionMode::kTimingOnly;
  baselines::FastMoELayer fastmoe(cluster, fo);

  baselines::FasterMoEOptions ro;
  ro.d_model = 2048;
  ro.d_hidden = 8192;
  ro.num_experts = 64;
  ro.mode = core::ExecutionMode::kTimingOnly;
  baselines::FasterMoELayer fastermoe(cluster, ro);

  const std::int64_t b = 8192;
  const double t_pipe = pipemoe.step_timing(b).step_seconds();
  const double t_fast = fastmoe.step_timing(b).step_seconds();
  const double t_faster = fastermoe.step_timing(b).step_seconds();
  EXPECT_LT(t_pipe, t_faster);
  EXPECT_LT(t_faster, t_fast);  // FasterMoE's pipeline beats FastMoE
}

TEST(Baselines, FasterMoEShadowingUsesMoreMemoryThanFastMoE) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(2, 4);
  baselines::FastMoEOptions fo;
  fo.d_model = 1024;
  fo.d_hidden = 4096;
  fo.num_experts = 64;
  fo.mode = core::ExecutionMode::kTimingOnly;
  baselines::FastMoELayer fastmoe(cluster, fo);

  baselines::FasterMoEOptions ro;
  ro.d_model = 1024;
  ro.d_hidden = 4096;
  ro.num_experts = 64;
  ro.mode = core::ExecutionMode::kTimingOnly;
  ro.shadowing.enabled = true;
  ro.shadowing.threshold = 1.2;
  baselines::FasterMoELayer fastermoe(cluster, ro);

  // Skewed routing makes device 0 hot, triggering shadowing.
  const auto fast_mem = fastmoe.step_timing(4096, 0.4).memory.total_peak;
  const auto faster_mem = fastermoe.step_timing(4096, 0.4).memory.total_peak;
  EXPECT_GT(faster_mem, fast_mem);
}

TEST(Shadowing, SelectsHotDestinationsOnly) {
  baselines::ShadowingConfig cfg;
  cfg.threshold = 1.5;
  const auto none =
      baselines::select_shadowed({100, 100, 100, 100}, cfg);
  EXPECT_TRUE(none.shadowed.empty());

  const auto one = baselines::select_shadowed({400, 100, 100, 100}, cfg);
  ASSERT_EQ(one.shadowed.size(), 1u);
  EXPECT_EQ(one.shadowed[0], 0);
  EXPECT_TRUE(one.is_shadowed(0));
  EXPECT_FALSE(one.is_shadowed(1));
}

TEST(Shadowing, RespectsMaxShadowedAndDisabled) {
  baselines::ShadowingConfig cfg;
  cfg.threshold = 1.01;
  cfg.max_shadowed = 2;
  const auto capped =
      baselines::select_shadowed({500, 400, 300, 1, 1, 1}, cfg);
  EXPECT_LE(capped.shadowed.size(), 2u);

  cfg.enabled = false;
  const auto off = baselines::select_shadowed({500, 400, 300, 1}, cfg);
  EXPECT_TRUE(off.shadowed.empty());
}

TEST(Shadowing, BytesScaleWithExpertSize) {
  const auto small = baselines::shadow_bytes_per_destination(256, 1024, 1);
  const auto big = baselines::shadow_bytes_per_destination(512, 2048, 1);
  EXPECT_EQ(big, small * 4);
  const auto two = baselines::shadow_bytes_per_destination(256, 1024, 2);
  EXPECT_EQ(two, small * 2);
}

TEST(Baselines, HeterogeneousBandwidthHurtsFasterMoEMore) {
  // §III-B: FasterMoE's per-partition synchronisation wastes the fast
  // workers' bandwidth when links are heterogeneous; the fused AllToAll
  // pays the bottleneck once.
  sim::ClusterConfig slow_cfg;
  slow_cfg.topology.num_devices = 8;
  slow_cfg.topology.devices_per_node = 8;
  slow_cfg.topology.device_bw_scale = {1.0, 1.0, 1.0, 1.0,
                                       1.0, 1.0, 1.0, 0.4};
  sim::Cluster hetero(slow_cfg);
  sim::Cluster homo = sim::Cluster::dgx_a100_pod(1, 8);

  auto pipe_time = [&](sim::Cluster& cluster) {
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.num_partitions = 4;
    o.memory_reuse = false;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    return layer.step_timing(8192).step_seconds();
  };
  auto faster_time = [&](sim::Cluster& cluster) {
    baselines::FasterMoEOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.mode = core::ExecutionMode::kTimingOnly;
    o.shadowing.enabled = false;
    baselines::FasterMoELayer layer(cluster, o);
    return layer.step_timing(8192).step_seconds();
  };
  const double pipe_slowdown = pipe_time(hetero) / pipe_time(homo);
  const double faster_slowdown = faster_time(hetero) / faster_time(homo);
  EXPECT_GT(faster_slowdown, pipe_slowdown * 0.99);
}

}  // namespace
}  // namespace mpipe
