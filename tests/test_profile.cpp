// The measured-vs-modeled loop (sim/profile.h): timeline reconstruction
// from raw samples, the op-by-op schedule diff and its per-class model
// error, correction-factor fitting, and the feedback path — corrections
// re-rank the strategy selector and the granularity search (and are an
// exact no-op at identity), profiled MoELayer steps surface both the
// simulated and the measured makespan, and runtime::Trainer's warmup fit
// installs the factors without perturbing the numerics.

#include <gtest/gtest.h>

#include "common/check.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/moe_layer.h"
#include "tensor/random_init.h"
#include "core/strategy_selector.h"
#include "runtime/trainer.h"
#include "sim/cluster.h"
#include "sim/graph_executor.h"
#include "sim/profile.h"
#include "sim/trace.h"

namespace mpipe::sim {
namespace {

/// Three-op timed chain (compute -> comm -> memcpy on device 0/1) whose
/// simulated durations are exact: base_seconds with no overlap.
OpGraph three_class_chain() {
  OpGraph g;
  g.add("gemm", OpCategory::kGemm, StreamKind::kCompute, {0}, 1e-3, {});
  g.add("a2a", OpCategory::kAllToAll, StreamKind::kComm, {0, 1}, 2e-3, {0});
  g.add("d2h", OpCategory::kMemcpyD2H, StreamKind::kMem, {1}, 3e-3, {1});
  return g;
}

/// Hand-built profile with exact nanosecond samples for the chain above.
ExecutionProfile handmade_profile(std::int64_t comp_ns, std::int64_t comm_ns,
                                  std::int64_t mem_ns) {
  ExecutionProfile p;
  p.begin(3);
  const std::int64_t origin = ExecutionProfile::now_ns();
  p.record(0, 0, origin, origin + comp_ns);
  p.record(1, 1, origin + comp_ns, origin + comp_ns + comm_ns);
  p.record(2, 0, origin + comp_ns + comm_ns,
           origin + comp_ns + comm_ns + mem_ns);
  return p;
}

TEST(MeasuredTimeline, ReconstructsMakespanCriticalPathAndOccupancy) {
  OpGraph g = three_class_chain();
  // 1ms compute, 2ms comm, 3ms memcpy, back to back.
  ExecutionProfile p = handmade_profile(1'000'000, 2'000'000, 3'000'000);
  const MeasuredTimeline tl = build_timeline(g, p, 2);

  EXPECT_NEAR(tl.makespan, 6e-3, 1e-12);
  ASSERT_EQ(tl.ops.size(), 3u);
  EXPECT_NEAR(tl.ops[0].seconds(), 1e-3, 1e-12);
  EXPECT_NEAR(tl.ops[1].seconds(), 2e-3, 1e-12);
  EXPECT_NEAR(tl.ops[2].seconds(), 3e-3, 1e-12);
  EXPECT_EQ(tl.ops[1].worker, 1);

  // The chain is the critical path, in order.
  EXPECT_EQ(tl.critical_path, (std::vector<int>{0, 1, 2}));
  EXPECT_NEAR(tl.critical_path_seconds, 6e-3, 1e-12);

  // Occupancy: device 0 ran compute 1ms + comm 2ms of the 6ms span;
  // device 1 ran comm 2ms + memcpy 3ms.
  EXPECT_NEAR(tl.stream_occupancy(0, StreamKind::kCompute), 1.0 / 6.0, 1e-9);
  EXPECT_NEAR(tl.stream_occupancy(0, StreamKind::kComm), 2.0 / 6.0, 1e-9);
  EXPECT_NEAR(tl.stream_occupancy(1, StreamKind::kMem), 3.0 / 6.0, 1e-9);
  EXPECT_NEAR(tl.stream_occupancy(0, StreamKind::kMem), 0.0, 1e-12);
}

TEST(ScheduleDiff, PerClassRatiosAndMakespanError) {
  OpGraph g = three_class_chain();
  Cluster cluster = Cluster::dgx_a100_pod(1, 2);
  const TimingResult sim = cluster.time_only(g);
  // Measured: compute 2x the modeled 1ms, comm exactly the modeled 2ms,
  // memcpy half the modeled 3ms.
  ExecutionProfile p = handmade_profile(2'000'000, 2'000'000, 1'500'000);
  const MeasuredTimeline tl = build_timeline(g, p, 2);
  const ScheduleDiff diff = diff_schedules(g, sim, tl);

  ASSERT_EQ(diff.ops.size(), 3u);
  EXPECT_NEAR(diff.simulated_makespan, 6e-3, 1e-9);
  EXPECT_NEAR(diff.measured_makespan, 5.5e-3, 1e-9);
  EXPECT_NEAR(diff.class_ratio(OpClass::kCompute), 2.0, 1e-6);
  EXPECT_NEAR(diff.class_ratio(OpClass::kComm), 1.0, 1e-6);
  EXPECT_NEAR(diff.class_ratio(OpClass::kMemcpy), 0.5, 1e-6);
  // No host ops ran: no evidence, identity ratio.
  EXPECT_EQ(diff.class_ratio(OpClass::kHost), 1.0);
  EXPECT_NEAR(diff.makespan_error(), (5.5 - 6.0) / 6.0, 1e-6);
  EXPECT_NE(diff.summary().find("compute"), std::string::npos);
}

TEST(CorrectionFit, FitsRatiosAndKeepsIdentityWithoutEvidence) {
  OpGraph g = three_class_chain();
  Cluster cluster = Cluster::dgx_a100_pod(1, 2);
  const TimingResult sim = cluster.time_only(g);

  CorrectionFit fit;
  // Two profiled steps with consistent 2x compute / 1x comm / 0.5x memcpy.
  for (int step = 0; step < 2; ++step) {
    ExecutionProfile p = handmade_profile(2'000'000, 2'000'000, 1'500'000);
    fit.add(diff_schedules(g, sim, build_timeline(g, p, 2)));
  }
  EXPECT_EQ(fit.steps(), 2);
  const OpClassCorrections c = fit.fit();
  EXPECT_NEAR(c.compute, 2.0, 1e-6);
  EXPECT_NEAR(c.comm, 1.0, 1e-6);
  EXPECT_NEAR(c.memcpy, 0.5, 1e-6);
  EXPECT_FALSE(c.identity());

  // A perfectly modeled step fits the identity.
  CorrectionFit exact;
  ExecutionProfile p = handmade_profile(1'000'000, 2'000'000, 3'000'000);
  exact.add(diff_schedules(g, sim, build_timeline(g, p, 2)));
  const OpClassCorrections id = exact.fit();
  EXPECT_NEAR(id.compute, 1.0, 1e-6);
  EXPECT_NEAR(id.comm, 1.0, 1e-6);
  EXPECT_NEAR(id.memcpy, 1.0, 1e-6);

  // An empty fit (no profiled steps at all) is the identity by definition.
  EXPECT_TRUE(CorrectionFit{}.fit().identity());
}

TEST(Corrections, ApplyScalesOpCostsByClassAndIdentityIsExactNoop) {
  OpGraph g = three_class_chain();
  g.add("router", OpCategory::kHostCompute, StreamKind::kCompute, {0}, 5e-4,
        {});
  OpClassCorrections c;
  c.compute = 2.0;
  c.comm = 3.0;
  c.memcpy = 0.5;
  apply_corrections(g, c);
  EXPECT_NEAR(g.op(0).base_seconds, 2e-3, 1e-12);   // gemm x2
  EXPECT_NEAR(g.op(1).base_seconds, 6e-3, 1e-12);   // alltoall x3
  EXPECT_NEAR(g.op(2).base_seconds, 1.5e-3, 1e-12); // memcpy x0.5
  EXPECT_NEAR(g.op(3).base_seconds, 5e-4, 1e-12);   // host: never corrected

  OpGraph untouched = three_class_chain();
  apply_corrections(untouched, OpClassCorrections{});
  for (int id = 0; id < untouched.size(); ++id) {
    EXPECT_EQ(untouched.op(id).base_seconds,
              three_class_chain().op(id).base_seconds);
  }

  OpClassCorrections bad;
  bad.comm = 0.0;
  OpGraph g2 = three_class_chain();
  EXPECT_THROW(apply_corrections(g2, bad), CheckError);
}

TEST(Corrections, ChromeTraceCarriesMeasuredAndSimulatedTracks) {
  OpGraph g = three_class_chain();
  Cluster cluster = Cluster::dgx_a100_pod(1, 2);
  const TimingResult sim = cluster.time_only(g);
  ExecutionProfile p = handmade_profile(1'000'000, 2'000'000, 3'000'000);
  const MeasuredTimeline tl = build_timeline(g, p, 2);
  const std::string json = to_chrome_trace(g, sim, tl);
  EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sim:gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace mpipe::sim

namespace mpipe::core {
namespace {

/// Speeds that make the offload strategy S1 win under the raw model: fast
/// compute and memcpy, so keeping T_DI/T_M in host memory costs less than
/// S4's extra recompute GEMM + extra AllToAll.
PerfModelParams s1_friendly_params() {
  PerfModelParams p;
  p.w_comp = 1e13;
  p.w_comm = 1e11;
  p.w_mem = 1e11;
  return p;
}

TEST(SelectorCorrections, IdentityCorrectionsAreAnExactNoop) {
  StrategySelector plain(s1_friendly_params());
  StrategySelector corrected(s1_friendly_params(), sim::OpClassCorrections{});
  const auto a = plain.select(4096, 1024, 4096);
  const auto b = corrected.select(4096, 1024, 4096);
  EXPECT_EQ(a.strategy, b.strategy);
  ASSERT_EQ(a.candidate_costs.size(), b.candidate_costs.size());
  for (std::size_t i = 0; i < a.candidate_costs.size(); ++i) {
    // Bitwise: the identity path must not even reorder the arithmetic.
    EXPECT_EQ(a.candidate_costs[i], b.candidate_costs[i]);
  }
}

TEST(SelectorCorrections, MisModeledMemcpyFlipsTheRankingToRecompute) {
  // Synthetic mis-modeled workload: the model thinks PCIe is fast (S1
  // offloading wins), but profiled steps measured memcpy 100x slower than
  // modeled. With the correction installed the mem stream becomes the
  // bottleneck for every offload strategy and the selector must flip to
  // S4 (recompute + re-communicate, mem stream idle).
  StrategySelector uncorrected(s1_friendly_params());
  const auto before = uncorrected.select(4096, 1024, 4096);
  EXPECT_EQ(before.strategy, ReuseStrategy::kS1);

  sim::OpClassCorrections measured;
  measured.memcpy = 100.0;
  StrategySelector corrected(s1_friendly_params(), measured);
  const auto after = corrected.select(4096, 1024, 4096);
  EXPECT_EQ(after.strategy, ReuseStrategy::kS4);
  // The re-ranking happened because the offload candidates got costlier,
  // not because S4 got cheaper.
  EXPECT_GT(after.candidate_costs[0], before.candidate_costs[0]);  // S1
  EXPECT_EQ(after.candidate_costs[3], before.candidate_costs[3]);  // S4
}

TEST(SearcherCorrections, InvalidateDropsCachedVerdicts) {
  int trials = 0;
  GranularitySearcher searcher({1, 2}, [&](std::int64_t, int) {
    ++trials;
    return 1.0;
  });
  searcher.configure(64);
  const int before = trials;
  searcher.configure(64);
  EXPECT_EQ(trials, before);  // cache hit
  searcher.invalidate();
  EXPECT_EQ(searcher.stats().invalidations, 1u);
  searcher.configure(64);
  EXPECT_GT(trials, before);  // re-measured after the flush
}

core::MoELayerOptions small_layer_options() {
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 32;
  o.num_experts = 4;
  o.num_partitions = 2;
  o.memory_reuse = true;
  o.strategy = ReuseStrategy::kS1;
  o.seed = 7;
  return o;
}

std::vector<Tensor> device_batches(int devices, std::int64_t b,
                                   std::int64_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> batches;
  for (int d = 0; d < devices; ++d) {
    batches.push_back(random_tokens(b, m, rng));
  }
  return batches;
}

TEST(LayerProfiling, StepReportCarriesBothMakespansAndTheirDiff) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  options.profile_execution = true;
  options.trace_execution = true;
  core::MoELayer layer(cluster, options);

  auto inputs = device_batches(2, 32, options.d_model, 21);
  auto outputs = layer.forward(inputs);
  auto grads = device_batches(2, 32, options.d_model, 22);
  layer.backward(grads);

  const StepReport& rep = layer.last_report();
  EXPECT_TRUE(rep.profiled);
  EXPECT_GT(rep.step_seconds(), 0.0);                // modeled
  EXPECT_GT(rep.measured_step_seconds(), 0.0);       // measured
  EXPECT_FALSE(rep.forward_diff.ops.empty());
  EXPECT_FALSE(rep.backward_diff.ops.empty());
  const sim::OpClassCorrections err = rep.model_error();
  EXPECT_GT(err.compute, 0.0);
  EXPECT_NE(rep.model_error_summary().find("measured/modeled"),
            std::string::npos);
  EXPECT_NE(rep.forward_trace_json.find("sim:"), std::string::npos);
  EXPECT_NE(rep.backward_trace_json.find("traceEvents"), std::string::npos);
}

TEST(LayerProfiling, TraceJsonIsGatedOnTraceExecution) {
  // Profiling fills timelines and diffs; the chrome-trace strings are
  // inspection output and stay empty unless trace_execution is also set.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  options.profile_execution = true;  // trace_execution stays false
  core::MoELayer layer(cluster, options);
  auto inputs = device_batches(2, 32, options.d_model, 41);
  layer.forward(inputs);
  auto grads = device_batches(2, 32, options.d_model, 42);
  layer.backward(grads);
  const StepReport& rep = layer.last_report();
  EXPECT_TRUE(rep.profiled);
  EXPECT_FALSE(rep.forward_diff.ops.empty());
  EXPECT_TRUE(rep.forward_trace_json.empty());
  EXPECT_TRUE(rep.backward_trace_json.empty());
}

TEST(LayerProfiling, ProfilingDoesNotChangeTheMath) {
  auto run = [](bool profile) {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
    auto options = small_layer_options();
    options.profile_execution = profile;
    core::MoELayer layer(cluster, options);
    auto inputs = device_batches(2, 32, options.d_model, 31);
    auto outputs = layer.forward(inputs);
    auto grads = device_batches(2, 32, options.d_model, 32);
    auto dx = layer.backward(grads);
    std::vector<float> flat;
    for (const Tensor& t : outputs) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    for (const Tensor& t : dx) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    return flat;
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i], on[i]) << "value " << i;  // bitwise
  }
}

TEST(LayerProfiling, SetCorrectionsFlushesTheSearcherOnlyOnChange) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  options.num_partitions = 0;  // adaptive: the searcher is live
  options.candidate_partitions = {1, 2, 4};
  options.mode = ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, options);
  layer.step_timing(64);
  EXPECT_EQ(layer.searcher().stats().invalidations, 0u);

  layer.set_corrections(layer.corrections());  // unchanged: no flush
  EXPECT_EQ(layer.searcher().stats().invalidations, 0u);

  sim::OpClassCorrections c;
  c.compute = 1.5;
  layer.set_corrections(c);
  EXPECT_EQ(layer.searcher().stats().invalidations, 1u);
  EXPECT_EQ(layer.corrections().compute, 1.5);

  sim::OpClassCorrections bad;
  bad.memcpy = -1.0;
  EXPECT_THROW(layer.set_corrections(bad), CheckError);
}

TEST(TrainerCorrections, WarmupFitsInstallsAndRestoresProfiling) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  core::MoELayer layer(cluster, options);

  runtime::TrainerOptions topt;
  topt.workload.d_model = options.d_model;
  topt.workload.tokens_per_device = 32;
  topt.workload.num_devices = 2;
  topt.steps = 4;
  topt.load_calibration = false;  // hermetic: no cwd CSV dependence
  topt.profile_warmup_steps = 2;
  runtime::Trainer trainer(layer, topt);

  EXPECT_FALSE(trainer.corrections_installed());
  trainer.run();
  EXPECT_TRUE(trainer.corrections_installed());
  const sim::OpClassCorrections& c = trainer.corrections();
  EXPECT_GT(c.compute, 0.0);
  EXPECT_GT(c.comm, 0.0);
  EXPECT_GT(c.memcpy, 0.0);
  // The fitted factors were handed to the layer verbatim.
  EXPECT_EQ(layer.corrections().compute, c.compute);
  EXPECT_EQ(layer.corrections().comm, c.comm);
  EXPECT_EQ(layer.corrections().memcpy, c.memcpy);
  // Warmup profiling is an override: the layer's own option was off, so
  // post-warmup steps run unprofiled again.
  EXPECT_FALSE(layer.options().profile_execution);
  EXPECT_EQ(trainer.metrics().measured_step_seconds().size(), 2u);
  EXPECT_GT(trainer.metrics().mean_measured_step_seconds(), 0.0);
}

TEST(TrainerCorrections, StoppingShortOfWarmupRestoresProfilingOverride) {
  // run() with fewer steps than profile_warmup_steps must not leave the
  // layer stuck in profiling mode: the override is restored after every
  // warmup step, and the (incomplete) fit is simply not installed.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  core::MoELayer layer(cluster, options);
  runtime::TrainerOptions topt;
  topt.workload.d_model = options.d_model;
  topt.workload.tokens_per_device = 32;
  topt.workload.num_devices = 2;
  topt.steps = 1;
  topt.load_calibration = false;
  topt.profile_warmup_steps = 3;
  runtime::Trainer trainer(layer, topt);
  trainer.run();
  EXPECT_FALSE(trainer.corrections_installed());
  EXPECT_TRUE(trainer.corrections().identity());
  EXPECT_FALSE(layer.options().profile_execution);
  EXPECT_FALSE(layer.options().trace_execution);
  // Resuming later still completes the warmup contract.
  trainer.train_step();
  trainer.train_step();
  EXPECT_TRUE(trainer.corrections_installed());
  EXPECT_FALSE(layer.options().profile_execution);
}

TEST(TrainerCorrections, WarmupLeavesFixedConfigurationNumericsBitwise) {
  // Corrections feed only the selectors; with n and the strategy pinned
  // the loss trajectory must be bitwise identical with and without the
  // warmup fit.
  auto losses = [](int warmup_steps) {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
    auto options = small_layer_options();
    core::MoELayer layer(cluster, options);
    runtime::TrainerOptions topt;
    topt.workload.d_model = options.d_model;
    topt.workload.tokens_per_device = 32;
    topt.workload.num_devices = 2;
    topt.workload.seed = 5;
    topt.steps = 4;
    topt.load_calibration = false;
    topt.profile_warmup_steps = warmup_steps;
    runtime::Trainer trainer(layer, topt);
    trainer.run();
    return trainer.metrics().losses();
  };
  const auto without = losses(0);
  const auto with = losses(2);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    ASSERT_EQ(without[i], with[i]) << "step " << i;  // bitwise
  }
}

TEST(TrainerCorrections, AdaptiveLayerReRanksAfterWarmup) {
  // On an adaptive layer the installed corrections flush the granularity
  // cache, so the post-warmup step re-measures instead of replaying the
  // uncorrected verdicts.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  auto options = small_layer_options();
  options.num_partitions = 0;
  options.candidate_partitions = {1, 2, 4};
  core::MoELayer layer(cluster, options);

  runtime::TrainerOptions topt;
  topt.workload.d_model = options.d_model;
  topt.workload.tokens_per_device = 32;
  topt.workload.num_devices = 2;
  topt.steps = 3;
  topt.load_calibration = false;
  topt.profile_warmup_steps = 2;
  runtime::Trainer trainer(layer, topt);
  trainer.run();
  EXPECT_TRUE(trainer.corrections_installed());
  // One flush from installing the fitted factors (unless the measured
  // factors happened to be exactly identity, which wall-clock noise makes
  // effectively impossible — but tolerate it rather than flake).
  if (!trainer.corrections().identity()) {
    EXPECT_EQ(layer.searcher().stats().invalidations, 1u);
  }
}

}  // namespace
}  // namespace mpipe::core
