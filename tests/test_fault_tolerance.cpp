// The fault-tolerant training runtime: deterministic injection replay,
// comm retry semantics, the TransientError/CheckError split, allocation-
// failure cleanup, checkpoint/restore bitwise resume, the numerics-guard
// degradation ladder, and the chaos property — a run peppered with
// transient comm failures, one NaN-corrupted payload and one injected
// straggler must converge to bitwise-identical losses vs the fault-free
// run. The chaos seed is randomized by CI (MPIPE_CHAOS_SEED) and logged,
// so any failure replays locally from the printed seed.

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/fault_injection.h"
#include "mem/buffer_pool.h"
#include "mem/device_allocator.h"
#include "runtime/checkpoint.h"
#include "runtime/trainer.h"
#include "sim/cluster.h"

namespace mpipe {
namespace {

// ---- injector decision layer ----------------------------------------------

TEST(FaultInjector, DecisionsReplayBitExactFromSeed) {
  FaultInjectionConfig cfg;
  cfg.seed = 99;
  cfg.comm_failure_prob = 0.5;
  cfg.straggler_prob = 0.3;
  cfg.straggler_delay_seconds = 0.0;  // decisions only, no sleeping
  cfg.alloc_failure_prob = 0.25;
  cfg.corrupt_payload_prob = 0.5;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (std::uint64_t key = 0; key < 64; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.should_fail_comm(key, attempt),
                b.should_fail_comm(key, attempt))
          << "key " << key << " attempt " << attempt;
    }
    EXPECT_EQ(a.straggler_delay(key), b.straggler_delay(key)) << key;
    EXPECT_EQ(a.should_fail_alloc(key), b.should_fail_alloc(key)) << key;
    EXPECT_EQ(a.corrupt_index(key, 1000, "A2A"),
              b.corrupt_index(key, 1000, "A2A"))
        << key;
  }
  EXPECT_GT(a.stats().total_faults(), 0u);
  EXPECT_EQ(a.stats().total_faults(), b.stats().total_faults());
}

TEST(FaultInjector, BudgetsCapFiredFaultsExactly) {
  FaultInjectionConfig cfg;
  cfg.comm_failure_prob = 1.0;
  cfg.max_comm_failures = 3;
  FaultInjector inj(cfg);
  int fired = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (inj.should_fail_comm(k, 0)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.stats().comm_failures, 3u);
}

TEST(FaultInjector, ZeroProbabilityNeverFires) {
  FaultInjector inj(FaultInjectionConfig{});  // all-default: everything off
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_FALSE(inj.should_fail_comm(k, 0));
    EXPECT_EQ(inj.straggler_delay(k), 0.0);
    EXPECT_FALSE(inj.should_fail_alloc(k));
    EXPECT_EQ(inj.corrupt_index(k, 64, "A2A"), -1);
  }
  EXPECT_EQ(inj.stats().total_faults(), 0u);
}

// ---- comm retry semantics --------------------------------------------------

TEST(FaultInjector, CorruptLabelFilterGatesEligibility) {
  FaultInjectionConfig cfg;
  cfg.corrupt_payload_prob = 1.0;
  cfg.max_corruptions = -1;
  cfg.corrupt_label_filter = "R";
  FaultInjector inj(cfg);
  // Dispatch / gradient-dispatch ops never match; combines always do.
  EXPECT_EQ(inj.corrupt_index(0, 64, "S0"), -1);
  EXPECT_EQ(inj.corrupt_index(1, 64, "S'1"), -1);
  EXPECT_EQ(inj.corrupt_index(2, 64, "Sr0"), -1);
  EXPECT_GE(inj.corrupt_index(3, 64, "R0"), 0);
  EXPECT_GE(inj.corrupt_index(4, 64, "R'1"), 0);
  EXPECT_EQ(inj.stats().corruptions, 2u) << "filtered ops spend no budget";
}

TEST(FaultInjection, GuardedCommRetriesInjectedTransient) {
  FaultInjectionConfig cfg;
  cfg.comm_failure_prob = 1.0;
  cfg.max_comm_failures = 1;  // first attempt fails, retry must succeed
  cfg.retry.backoff_seconds = 1e-6;
  FaultInjector inj(cfg);
  int runs = 0;
  run_comm_guarded(&inj, inj.reserve_key(), [&] { ++runs; });
  EXPECT_EQ(runs, 1) << "body must run exactly once after the retry";
  EXPECT_EQ(inj.stats().comm_failures, 1u);
  EXPECT_EQ(inj.stats().comm_retries, 1u);
  EXPECT_EQ(inj.stats().comm_gave_up, 0u);
}

TEST(FaultInjection, GuardedCommGivesUpAfterRetryBudget) {
  FaultInjectionConfig cfg;
  cfg.comm_failure_prob = 1.0;  // unlimited budget: every attempt fails
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_seconds = 1e-6;
  FaultInjector inj(cfg);
  int runs = 0;
  EXPECT_THROW(run_comm_guarded(&inj, 0, [&] { ++runs; }), TransientError);
  EXPECT_EQ(runs, 0) << "injected failures fire before the body";
  EXPECT_EQ(inj.stats().comm_failures, 3u);
  EXPECT_EQ(inj.stats().comm_gave_up, 1u);
}

TEST(FaultInjection, GuardedCommNeverRetriesInvariantViolations) {
  FaultInjectionConfig cfg;
  cfg.retry.max_attempts = 4;
  FaultInjector inj(cfg);
  int attempts = 0;
  EXPECT_THROW(run_comm_guarded(&inj, 0,
                                [&] {
                                  ++attempts;
                                  MPIPE_CHECK(false, "planted invariant");
                                }),
               CheckError);
  EXPECT_EQ(attempts, 1) << "CheckError must propagate on the first throw";
}

TEST(FaultInjection, BackoffIsDeterministicAndExponential) {
  RetryPolicy retry;
  retry.backoff_seconds = 10e-6;
  retry.backoff_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(retry.delay_seconds(1), 10e-6);
  EXPECT_DOUBLE_EQ(retry.delay_seconds(2), 20e-6);
  EXPECT_DOUBLE_EQ(retry.delay_seconds(3), 40e-6);
}

TEST(Errors, TransientAndCheckHierarchiesAreDisjoint) {
  static_assert(!std::is_base_of_v<CheckError, TransientError>,
                "retry catch must not see CheckError");
  static_assert(!std::is_base_of_v<TransientError, CheckError>,
                "check catch must not see TransientError");
  // And at run time: a retry-style catch cannot mask an invariant.
  bool masked = false;
  try {
    try {
      throw CheckError("planted invariant");
    } catch (const TransientError&) {
      masked = true;
    }
  } catch (const CheckError&) {
  }
  EXPECT_FALSE(masked);
}

// ---- allocation-failure paths ----------------------------------------------

TEST(BufferPoolRecovery, MidAcquisitionFailureReleasesPartialSlots) {
  // Capacity fits exactly 2 slots of 8x4 floats; a depth-4 pool must throw
  // while acquiring slot 3 and must NOT leak the 2 slots it already held.
  const std::uint64_t slot_bytes = 8 * 4 * sizeof(float);
  mem::DeviceAllocator alloc(0, 2 * slot_bytes);
  EXPECT_THROW(
      mem::BufferPool(alloc, "t", Shape{8, 4}, 4, mem::Category::kActivation),
      mem::OutOfMemoryError);
  EXPECT_EQ(alloc.tracker().current_total(), 0u)
      << "partially-acquired slots leaked";
  // The freed capacity still serves a fitting pool afterwards.
  mem::BufferPool ok(alloc, "t", Shape{8, 4}, 2, mem::Category::kActivation);
  EXPECT_EQ(ok.depth(), 2);
  EXPECT_EQ(alloc.tracker().current_total(), 2 * slot_bytes);
}

TEST(DeviceAllocatorFault, InjectedFailureThrowsOomAndBalances) {
  mem::DeviceAllocator alloc(0);
  FaultInjectionConfig cfg;
  cfg.alloc_failure_prob = 1.0;
  cfg.max_alloc_failures = 1;
  alloc.set_fault_injector(std::make_shared<const FaultInjector>(cfg));
  EXPECT_THROW(alloc.allocate(mem::Category::kActivation, 64),
               mem::OutOfMemoryError);
  EXPECT_EQ(alloc.tracker().current_total(), 0u);
  // Budget spent: the next allocation succeeds and accounting balances.
  {
    mem::Allocation a = alloc.allocate(mem::Category::kActivation, 64);
    EXPECT_EQ(alloc.tracker().current_total(), 64u);
  }
  EXPECT_EQ(alloc.tracker().current_total(), 0u);
}

// ---- trainer-level fixtures ------------------------------------------------

core::MoELayerOptions small_layer_options() {
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 32;
  o.num_experts = 4;
  o.num_partitions = 2;
  o.seed = 31;
  return o;
}

runtime::TrainerOptions small_trainer_options() {
  runtime::TrainerOptions topt;
  topt.workload.d_model = 16;
  topt.workload.tokens_per_device = 32;
  topt.workload.num_devices = 4;
  topt.workload.seed = 5;
  topt.adam.lr = 3e-3f;
  topt.load_calibration = false;  // hermetic: no cwd-dependent curves
  return topt;
}

/// One training run; returns the per-call losses (committed steps only —
/// the ladder replays faulted steps inside train_step).
std::vector<double> run_losses(int steps,
                               const runtime::FaultToleranceOptions* ft,
                               const FaultInjectionConfig* inject,
                               runtime::TrainingMetrics* out_metrics) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  if (inject != nullptr) cluster.set_fault_injection(*inject);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::TrainerOptions topt = small_trainer_options();
  topt.steps = steps;
  if (ft != nullptr) topt.fault_tolerance = *ft;
  runtime::Trainer trainer(layer, topt);
  std::vector<double> losses;
  for (int i = 0; i < steps; ++i) losses.push_back(trainer.train_step());
  if (out_metrics != nullptr) *out_metrics = trainer.metrics();
  return losses;
}

// ---- no-fault equivalence --------------------------------------------------

TEST(FaultTolerantTrainer, LadderIsExactNoOpOnFaultFreeRuns) {
  // Numerics guard + per-2-step checkpoints, but nothing injected: every
  // committed loss must be bitwise identical to the unguarded run, and no
  // recovery action may fire.
  const auto plain = run_losses(6, nullptr, nullptr, nullptr);
  runtime::FaultToleranceOptions ft;
  ft.numerics_guard = true;
  ft.checkpoint_interval = 2;
  runtime::TrainingMetrics m;
  const auto guarded = run_losses(6, &ft, nullptr, &m);
  ASSERT_EQ(plain.size(), guarded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Bitwise, not approximate: EXPECT_EQ on doubles.
    EXPECT_EQ(plain[i], guarded[i]) << "step " << i;
  }
  EXPECT_FALSE(m.recovery().any_recovery());
  EXPECT_GT(m.recovery().checkpoints_taken, 0u);
  EXPECT_EQ(m.recovery().comm_failures_injected, 0u);
}

// ---- checkpoint/restore ----------------------------------------------------

TEST(Checkpoint, MidTrainingRestoreResumesBitwiseIdentically) {
  // Adaptive granularity search + jittered batches, so the checkpoint must
  // carry the searcher's cache/ranges and the workload RNG stream — the
  // history-dependent state that makes a naive weights-only resume diverge.
  auto make_options = [] {
    core::MoELayerOptions o = small_layer_options();
    o.num_partitions = 0;  // adaptive: Algorithm 1 drives n per step
    o.candidate_partitions = {1, 2, 4};
    return o;
  };
  auto make_trainer_options = [] {
    runtime::TrainerOptions topt = small_trainer_options();
    topt.workload.batch_jitter = 0.4;
    return topt;
  };

  std::vector<double> reference;
  {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayer layer(cluster, make_options());
    runtime::Trainer trainer(layer, make_trainer_options());
    for (int i = 0; i < 10; ++i) reference.push_back(trainer.train_step());
  }

  std::vector<std::uint8_t> bytes;
  {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayer layer(cluster, make_options());
    runtime::Trainer trainer(layer, make_trainer_options());
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(reference[static_cast<std::size_t>(i)], trainer.train_step())
          << "pre-checkpoint step " << i;
    }
    bytes = trainer.checkpoint_bytes();
  }

  {
    // A *fresh* process-equivalent: new cluster, layer, trainer — only the
    // checkpoint image crosses over.
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayer layer(cluster, make_options());
    runtime::Trainer trainer(layer, make_trainer_options());
    trainer.restore_from_bytes(bytes);
    EXPECT_EQ(trainer.steps_run(), 5);
    for (int i = 5; i < 10; ++i) {
      // Bitwise: the resumed stream must be indistinguishable.
      EXPECT_EQ(reference[static_cast<std::size_t>(i)], trainer.train_step())
          << "resumed step " << i;
    }
  }
}

TEST(Checkpoint, FileRoundTripPreservesTheImage) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::TrainerOptions topt = small_trainer_options();
  runtime::Trainer trainer(layer, topt);
  for (int i = 0; i < 2; ++i) trainer.train_step();
  const std::string path = ::testing::TempDir() + "mpipe_ckpt_test.bin";
  trainer.save_checkpoint(path);
  const auto bytes = trainer.checkpoint_bytes();
  EXPECT_EQ(runtime::read_checkpoint_file(path), bytes);
  EXPECT_NO_THROW(trainer.restore_checkpoint(path));
  EXPECT_EQ(trainer.steps_run(), 2);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptImagesAreRejectedWithoutTouchingState) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::Trainer trainer(layer, small_trainer_options());
  for (int i = 0; i < 2; ++i) trainer.train_step();
  const auto good = trainer.checkpoint_bytes();

  // One flipped payload byte: the checksum must catch it.
  auto flipped = good;
  flipped[flipped.size() - 1] ^= 0x40;
  EXPECT_THROW(trainer.restore_from_bytes(flipped), CheckError);

  // Truncation: the frame-length check must catch it.
  auto truncated = good;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(trainer.restore_from_bytes(truncated), CheckError);

  // Foreign magic and unsupported version.
  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(trainer.restore_from_bytes(bad_magic), CheckError);
  auto bad_version = good;
  bad_version[8] ^= 0x02;  // u32 version follows the u64 magic
  EXPECT_THROW(trainer.restore_from_bytes(bad_version), CheckError);

  // The rejected restores left training state intact: the good image still
  // applies and the trainer keeps stepping from it.
  EXPECT_NO_THROW(trainer.restore_from_bytes(good));
  EXPECT_EQ(trainer.steps_run(), 2);
  EXPECT_TRUE(std::isfinite(trainer.train_step()));
}

TEST(Checkpoint, ChecksumIsFnv1a64Reference) {
  // Pin the checksum primitive to its published constants so the on-disk
  // format cannot silently drift: FNV-1a 64 of "a" is a known vector.
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(runtime::fnv1a64(a, 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(runtime::fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
}

// ---- the degradation ladder under injected faults --------------------------

TEST(FaultTolerantTrainer, InjectedOomIsFatalToTheStepButTheLayerRecovers) {
  // OOM — injected or real — is never retried: the step throws. But the
  // layer must unwind its step context cleanly, so the next step (budget
  // exhausted) trains normally.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  FaultInjectionConfig inject;
  inject.alloc_failure_prob = 1.0;
  inject.max_alloc_failures = 1;
  cluster.set_fault_injection(inject);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::TrainerOptions topt = small_trainer_options();
  runtime::Trainer trainer(layer, topt);
  EXPECT_THROW(trainer.train_step(), mem::OutOfMemoryError);
  const double loss = trainer.train_step();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(trainer.metrics().steps(), 1u);
  EXPECT_EQ(trainer.metrics().recovery().alloc_failures_injected, 1u);
}

TEST(StragglerWatchdog, InjectedDelayIsFlaggedAndMathUnchanged) {
  // One injected 2ms straggler on a profiled run: the watchdog (threshold
  // 3x the class-median measured/modeled ratio) must flag at least one op,
  // and the injected delay must not perturb a single committed loss bit.
  const auto clean = run_losses(3, nullptr, nullptr, nullptr);

  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  FaultInjectionConfig inject;
  inject.straggler_prob = 1.0;
  inject.max_stragglers = 1;
  inject.straggler_delay_seconds = 2e-3;
  cluster.set_fault_injection(inject);
  core::MoELayerOptions o = small_layer_options();
  o.profile_execution = true;
  o.straggler_threshold = 3.0;
  core::MoELayer layer(cluster, o);
  runtime::TrainerOptions topt = small_trainer_options();
  topt.steps = 3;
  runtime::Trainer trainer(layer, topt);
  std::vector<double> losses;
  for (int i = 0; i < 3; ++i) losses.push_back(trainer.train_step());

  ASSERT_EQ(clean.size(), losses.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i], losses[i]) << "step " << i;
  }
  EXPECT_EQ(trainer.metrics().recovery().stragglers_injected, 1u);
  EXPECT_GE(trainer.metrics().recovery().straggler_flags, 1u)
      << "watchdog missed a 2ms delay on a microsecond-scale op";
}

TEST(FaultTolerantTrainer, ChaosRunConvergesBitwiseIdenticalToCleanRun) {
  // The acceptance chaos scenario: transient comm failures erased by the
  // comm-level retry, one payload float NaN-corrupted (numerics guard →
  // rollback → clean replay), one injected straggler (wall-clock only) —
  // and the committed loss trajectory must stay bitwise identical to the
  // fault-free run. The seed randomizes *where* comm faults land; the
  // property must hold for every seed, and the log line replays failures.
  const char* env_seed = std::getenv("MPIPE_CHAOS_SEED");
  const std::uint64_t seed =
      env_seed != nullptr ? std::strtoull(env_seed, nullptr, 10) : 2024ull;
  std::cout << "[ CHAOS  ] MPIPE_CHAOS_SEED=" << seed << std::endl;
  RecordProperty("chaos_seed", static_cast<int>(seed));

  const int kSteps = 8;
  const auto clean = run_losses(kSteps, nullptr, nullptr, nullptr);

  FaultInjectionConfig inject;
  inject.seed = seed;
  inject.comm_failure_prob = 0.2;  // frequent, but budget-capped below the
  inject.max_comm_failures = 3;    // retry depth — comm always recovers
  inject.straggler_prob = 1.0;
  inject.max_stragglers = 1;
  inject.straggler_delay_seconds = 1e-3;
  inject.corrupt_payload_prob = 1.0;
  inject.max_corruptions = 1;
  // Aim the one NaN at a combine destination ("R*"), which feeds the loss
  // directly so the numerics guard sees it. A NaN below the expert ReLU
  // would be flushed to zero by the max and needs the boundary scan
  // instead (scan_payloads — exercised by the PayloadScan tests below).
  inject.corrupt_label_filter = "R";
  inject.retry.backoff_seconds = 1e-6;

  runtime::FaultToleranceOptions ft;
  ft.numerics_guard = true;
  ft.checkpoint_interval = 1;
  ft.rollback_after = 1;  // any poisoned step rolls back immediately
  ft.max_rollbacks = 8;

  runtime::TrainingMetrics m;
  const auto chaos = run_losses(kSteps, &ft, &inject, &m);

  ASSERT_EQ(clean.size(), chaos.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    // Bitwise: recovery must fully erase every injected fault.
    EXPECT_EQ(clean[i], chaos[i]) << "step " << i << " (seed " << seed << ")";
  }
  EXPECT_EQ(m.steps(), static_cast<std::size_t>(kSteps));
  // The faults really happened — and the ladder really ran.
  EXPECT_EQ(m.recovery().corruptions_injected, 1u);
  EXPECT_EQ(m.recovery().stragglers_injected, 1u);
  EXPECT_GE(m.recovery().comm_failures_injected, 1u);
  EXPECT_GE(m.recovery().comm_retries, 1u);
  EXPECT_GE(m.recovery().non_finite_steps, 1u);
  EXPECT_GE(m.recovery().rollbacks, 1u);
  EXPECT_GE(m.recovery().checkpoints_taken, 1u);
  EXPECT_TRUE(m.recovery().any_recovery());
}

TEST(PayloadScan, DetectsBelowReluCorruptionAndReplaysBitwiseClean) {
  // The SDC hole the scan closes: a NaN injected into a dispatch
  // destination ("S*" — the expert's input) is flushed to zero by the
  // ReLU, so neither the numerics guard nor the loss ever sees it. With
  // scan_payloads on, the boundary scan raises a TransientError at the
  // comm op itself; the step-replay ladder replays the step (the one-shot
  // corruption budget is spent), and the committed losses must be bitwise
  // identical to a fault-free run.
  const int kSteps = 2;
  const auto clean = run_losses(kSteps, nullptr, nullptr, nullptr);

  FaultInjectionConfig inject;
  inject.corrupt_payload_prob = 1.0;
  inject.max_corruptions = 1;
  inject.corrupt_label_filter = "S";  // dispatch: below the expert ReLU
  inject.scan_payloads = true;
  inject.retry.backoff_seconds = 1e-6;
  runtime::TrainingMetrics m;
  const auto scanned = run_losses(kSteps, nullptr, &inject, &m);

  ASSERT_EQ(clean.size(), scanned.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i], scanned[i]) << "step " << i;
  }
  EXPECT_EQ(m.recovery().corruptions_injected, 1u);
  EXPECT_GE(m.recovery().corruptions_detected, 1u);
  EXPECT_GE(m.recovery().transient_step_retries, 1u);
}

TEST(PayloadScan, OffByDefaultTheSameCorruptionIsSilent) {
  // Control for the test above: identical injection with the scan off.
  // The run completes with finite losses and zero detections — the
  // corruption was absorbed by the ReLU flush, which is exactly the
  // silent-data-corruption mode the scan exists to surface.
  const int kSteps = 2;
  const auto clean = run_losses(kSteps, nullptr, nullptr, nullptr);

  FaultInjectionConfig inject;
  inject.corrupt_payload_prob = 1.0;
  inject.max_corruptions = 1;
  inject.corrupt_label_filter = "S";
  runtime::TrainingMetrics m;
  const auto silent = run_losses(kSteps, nullptr, &inject, &m);

  EXPECT_EQ(m.recovery().corruptions_injected, 1u);
  EXPECT_EQ(m.recovery().corruptions_detected, 0u);
  EXPECT_EQ(m.recovery().transient_step_retries, 0u);
  for (const double loss : silent) EXPECT_TRUE(std::isfinite(loss));
  // The math silently diverged from the clean run — nobody noticed.
  EXPECT_NE(clean[0], silent[0]);
}

TEST(FaultTolerantTrainer, ExhaustedRollbackBudgetAbortsWithDiagnostics) {
  // Unlimited corruption with a rollback budget of 1: the first poisoned
  // step rolls back, the replay is poisoned again (probability 1, no
  // budget cap), and the second rollback attempt must abort loudly with
  // the recovery counters in the message — ladder rung 3.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  FaultInjectionConfig inject;
  inject.corrupt_payload_prob = 1.0;  // every guarded segment copy poisons
  cluster.set_fault_injection(inject);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::TrainerOptions topt = small_trainer_options();
  topt.fault_tolerance.numerics_guard = true;
  topt.fault_tolerance.checkpoint_interval = 1;
  topt.fault_tolerance.rollback_after = 1;
  topt.fault_tolerance.max_rollbacks = 1;
  runtime::Trainer trainer(layer, topt);
  try {
    for (int i = 0; i < 4; ++i) trainer.train_step();
    FAIL() << "persistent corruption must exhaust the ladder";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rollback budget exhausted"), std::string::npos);
    EXPECT_NE(what.find("corruptions"), std::string::npos) << what;
  }
  EXPECT_EQ(trainer.metrics().recovery().rollbacks, 1u);
  EXPECT_GE(trainer.metrics().recovery().non_finite_steps, 2u);
}

TEST(FaultTolerantTrainer, GuardWithoutCheckpointSkipsThenAborts) {
  // Numerics guard on, checkpointing off: rung 1 (skip the update) is the
  // only recovery available; once the skip tolerance is exceeded the
  // trainer must abort rather than train on poison forever.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  FaultInjectionConfig inject;
  inject.corrupt_payload_prob = 1.0;
  cluster.set_fault_injection(inject);
  core::MoELayer layer(cluster, small_layer_options());
  runtime::TrainerOptions topt = small_trainer_options();
  topt.fault_tolerance.numerics_guard = true;
  topt.fault_tolerance.rollback_after = 2;
  runtime::Trainer trainer(layer, topt);
  // First poisoned step: the update is skipped, the call still returns.
  EXPECT_TRUE(std::isnan(trainer.train_step()));
  EXPECT_EQ(trainer.metrics().recovery().optimizer_steps_skipped, 1u);
  EXPECT_EQ(trainer.metrics().steps(), 0u) << "skipped steps must not commit";
  // Second consecutive poisoned step: no checkpoint to roll back to.
  try {
    trainer.train_step();
    FAIL() << "skip tolerance exceeded with no checkpoint must abort";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("no checkpoint"), std::string::npos);
  }
}

}  // namespace
}  // namespace mpipe
