// Smoke test: one full functional training step of MPipeMoE end to end.

#include <gtest/gtest.h>

#include "core/moe_layer.h"
#include "runtime/trainer.h"

namespace mpipe {
namespace {

TEST(Smoke, OneTrainingStepRuns) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions options;
  options.d_model = 16;
  options.d_hidden = 32;
  options.num_experts = 4;
  options.num_partitions = 2;
  core::MoELayer layer(cluster, options);

  runtime::TrainerOptions topt;
  topt.workload.d_model = 16;
  topt.workload.tokens_per_device = 24;
  topt.workload.num_devices = 4;
  topt.steps = 1;
  topt.load_calibration = false;  // hermetic: no cwd-dependent curves
  runtime::Trainer trainer(layer, topt);
  const double loss = trainer.train_step();
  EXPECT_GT(loss, 0.0);
  EXPECT_GT(layer.last_report().step_seconds(), 0.0);
}

}  // namespace
}  // namespace mpipe
