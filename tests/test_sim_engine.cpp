// Discrete-event engine semantics: FIFO streams, dependency ordering,
// collective synchrony, interference integration, busy accounting,
// determinism, topology/cost-model arithmetic, trace export.

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/units.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace mpipe::sim {
namespace {

using mpipe::CheckError;
using mpipe::MiB;

Cluster ideal_cluster(int devices) {
  ClusterConfig cfg;
  cfg.topology.num_devices = devices;
  cfg.topology.devices_per_node = devices;
  cfg.interference = InterferenceModel::ideal();
  return Cluster(cfg);
}

TEST(EventQueue, PopsInKeyThenInsertionOrder) {
  EventQueue<int> q;
  q.push(2.0, 1);
  q.push(1.0, 2);
  q.push(1.0, 3);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);  // same key: earlier insertion first
  EXPECT_EQ(q.pop(), 1);
}

TEST(OpGraph, RejectsForwardDepsAndBadDevices) {
  OpGraph g;
  Op op;
  op.devices = {0};
  op.deps = {5};
  EXPECT_THROW(g.add(op), CheckError);

  OpGraph g2;
  g2.add("x", OpCategory::kGemm, StreamKind::kCompute, {3}, 1.0, {});
  EXPECT_THROW(g2.validate(2), CheckError);
}

TEST(OpGraph, DetectsFifoDependencyCycle) {
  // Op A enqueued before B on the same stream, but A depends on B via a
  // cross-stream chain: A(comp,0) deps C(comm,0); C deps B(comp,0).
  // Stream order comp: A then B, but B must run before C before A.
  OpGraph g;
  Op a;
  a.label = "A";
  a.stream = StreamKind::kCompute;
  a.devices = {0};
  a.base_seconds = 1.0;
  const int ida = g.add(a);
  Op c;
  c.label = "C";
  c.stream = StreamKind::kComm;
  c.devices = {0};
  c.base_seconds = 1.0;
  const int idc = g.add(c);
  Op b;
  b.label = "B";
  b.stream = StreamKind::kCompute;
  b.devices = {0};
  b.base_seconds = 1.0;
  const int idb = g.add(b);
  g.op(ida).deps = {idc};
  g.op(idc).deps = {idb};
  EXPECT_THROW(g.topo_order(), CheckError);
}

TEST(TimingEngine, SerialChainSumsDurations) {
  Cluster cluster = ideal_cluster(1);
  OpGraph g;
  int prev = g.add("a", OpCategory::kGemm, StreamKind::kCompute, {0}, 1.0,
                   {});
  prev = g.add("b", OpCategory::kGemm, StreamKind::kCompute, {0}, 2.0,
               {prev});
  g.add("c", OpCategory::kGemm, StreamKind::kCompute, {0}, 3.0, {prev});
  const auto t = cluster.time_only(g);
  EXPECT_DOUBLE_EQ(t.makespan, 6.0);
  EXPECT_DOUBLE_EQ(t.stream_busy(0, StreamKind::kCompute), 6.0);
}

TEST(TimingEngine, IndependentStreamsOverlapWithoutInterference) {
  Cluster cluster = ideal_cluster(1);
  OpGraph g;
  g.add("comp", OpCategory::kGemm, StreamKind::kCompute, {0}, 2.0, {});
  g.add("comm", OpCategory::kAllToAll, StreamKind::kComm, {0}, 2.0, {});
  g.add("mem", OpCategory::kMemcpyD2H, StreamKind::kMem, {0}, 2.0, {});
  const auto t = cluster.time_only(g);
  EXPECT_NEAR(t.makespan, 2.0, 1e-12);
}

TEST(TimingEngine, InterferenceSlowsOverlappedComm) {
  ClusterConfig cfg;
  cfg.topology.num_devices = 1;
  cfg.topology.devices_per_node = 1;
  cfg.interference = InterferenceModel::dgx_a100();
  Cluster cluster(cfg);
  OpGraph g;
  g.add("comm", OpCategory::kAllToAll, StreamKind::kComm, {0}, 1.0, {});
  g.add("comp", OpCategory::kGemm, StreamKind::kCompute, {0}, 10.0, {});
  const auto t = cluster.time_only(g);
  // Comm runs fully under compute interference: 1.0 / 0.72.
  const auto& comm_time = t.op_times[0];
  EXPECT_NEAR(comm_time.end - comm_time.start, 1.0 / 0.72, 1e-9);
}

TEST(TimingEngine, InterferenceIntegratesPiecewise) {
  ClusterConfig cfg;
  cfg.topology.num_devices = 1;
  cfg.topology.devices_per_node = 1;
  cfg.interference = InterferenceModel::dgx_a100();
  Cluster cluster(cfg);
  OpGraph g;
  g.add("comm", OpCategory::kAllToAll, StreamKind::kComm, {0}, 1.0, {});
  g.add("comp", OpCategory::kGemm, StreamKind::kCompute, {0}, 0.36, {});
  // Compute ends at 0.36/0.96 = 0.375 (slowed by comm). Comm does
  // 0.375*0.72 = 0.27 of its work by then, then runs alone:
  // total = 0.375 + 0.73 = 1.105.
  const auto t = cluster.time_only(g);
  const auto& comm_time = t.op_times[0];
  EXPECT_NEAR(comm_time.end, 0.36 / 0.96 + (1.0 - (0.36 / 0.96) * 0.72),
              1e-9);
}

TEST(TimingEngine, CollectiveOccupiesAllParticipants) {
  Cluster cluster = ideal_cluster(4);
  OpGraph g;
  g.add("blocker", OpCategory::kGemm, StreamKind::kComm, {2}, 5.0, {});
  g.add("a2a", OpCategory::kAllToAll, StreamKind::kComm, {0, 1, 2, 3}, 1.0,
        {});
  const auto t = cluster.time_only(g);
  // The collective is queued behind the blocker on device 2's comm stream,
  // so it starts only at t=5 even though devices 0/1/3 are idle.
  EXPECT_NEAR(t.op_times[1].start, 5.0, 1e-12);
  EXPECT_NEAR(t.makespan, 6.0, 1e-12);
}

TEST(TimingEngine, DeterministicAcrossRuns) {
  Cluster cluster = Cluster::dgx_a100_pod(1, 4);
  auto build = [] {
    OpGraph g;
    for (int i = 0; i < 20; ++i) {
      g.add("op" + std::to_string(i), OpCategory::kGemm,
            static_cast<StreamKind>(i % 3), {i % 4},
            0.001 * (i + 1), i > 2 ? std::vector<int>{i - 3}
                                   : std::vector<int>{});
    }
    return g;
  };
  OpGraph g1 = build(), g2 = build();
  const auto t1 = Cluster::dgx_a100_pod(1, 4).time_only(g1);
  const auto t2 = Cluster::dgx_a100_pod(1, 4).time_only(g2);
  ASSERT_EQ(t1.op_times.size(), t2.op_times.size());
  for (std::size_t i = 0; i < t1.op_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.op_times[i].start, t2.op_times[i].start);
    EXPECT_DOUBLE_EQ(t1.op_times[i].end, t2.op_times[i].end);
  }
}

TEST(TimingEngine, UtilizationWeightsEfficiency) {
  Cluster cluster = ideal_cluster(1);
  OpGraph g;
  Op op;
  op.label = "gemm";
  op.stream = StreamKind::kCompute;
  op.devices = {0};
  op.base_seconds = 1.0;
  op.compute_efficiency = 0.5;
  g.add(op);
  const auto t = cluster.time_only(g);
  EXPECT_NEAR(t.compute_utilization(0), 0.5, 1e-12);
}

TEST(FunctionalExecution, RunsClosuresInTopoOrder) {
  Cluster cluster = ideal_cluster(2);
  std::vector<int> order;
  OpGraph g;
  const int a = g.add("a", OpCategory::kGemm, StreamKind::kCompute, {0},
                      0.1, {}, [&] { order.push_back(0); });
  const int b = g.add("b", OpCategory::kGemm, StreamKind::kCompute, {1},
                      0.1, {a}, [&] { order.push_back(1); });
  g.add("c", OpCategory::kGemm, StreamKind::kCompute, {0}, 0.1, {b},
        [&] { order.push_back(2); });
  cluster.run_functional(g);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Topology, NodesAndBandwidths) {
  Topology topo = Topology::multi_node(2, 4);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_TRUE(topo.same_node(0, 3));
  EXPECT_FALSE(topo.same_node(3, 4));
  EXPECT_GT(topo.p2p_bandwidth(0, 1), topo.p2p_bandwidth(0, 5));
  // A group spanning nodes bottlenecks at the inter-node class.
  EXPECT_LT(topo.alltoall_bandwidth({0, 1, 4}),
            topo.alltoall_bandwidth({0, 1, 2}));
}

TEST(Topology, HeterogeneousScalesApply) {
  TopologyConfig cfg;
  cfg.num_devices = 4;
  cfg.devices_per_node = 4;
  cfg.device_bw_scale = {1.0, 1.0, 1.0, 0.5};
  Topology topo(cfg);
  EXPECT_DOUBLE_EQ(topo.p2p_bandwidth(0, 3), topo.p2p_bandwidth(0, 1) * 0.5);
  EXPECT_DOUBLE_EQ(topo.alltoall_bandwidth({0, 1, 2, 3}),
                   topo.alltoall_bandwidth({0, 1}) * 0.5);
}

TEST(CostModel, GemmEfficiencyMonotonic) {
  Topology topo = Topology::single_node(1);
  CostModel cost(CostModelConfig{}, topo);
  EXPECT_LT(cost.gemm_efficiency(64), cost.gemm_efficiency(1024));
  EXPECT_LT(cost.gemm_efficiency(1024), cost.gemm_efficiency(16384));
  EXPECT_LE(cost.gemm_efficiency(1 << 24),
            CostModelConfig{}.gemm_max_efficiency);
  // More FLOPs or fewer rows -> strictly more time.
  EXPECT_LT(cost.gemm_seconds(1e9, 1024), cost.gemm_seconds(2e9, 1024));
  EXPECT_LT(cost.gemm_seconds(1e9, 1024), cost.gemm_seconds(1e9, 64));
}

TEST(CostModel, CollectiveCostsScaleWithBytesAndGroup) {
  Topology topo = Topology::multi_node(2, 4);
  CostModel cost(CostModelConfig{}, topo);
  const auto all = std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_LT(cost.alltoall_seconds(1 * MiB, all),
            cost.alltoall_seconds(16 * MiB, all));
  EXPECT_LT(cost.alltoall_seconds(16 * MiB, {0, 1}),
            cost.alltoall_seconds(16 * MiB, all));
  EXPECT_GT(cost.allreduce_seconds(16 * MiB, all),
            cost.alltoall_seconds(16 * MiB, all));
  EXPECT_GT(cost.memcpy_seconds(16 * MiB, 0), 0.0);
}

TEST(Trace, ChromeTraceAndAsciiTimeline) {
  Cluster cluster = ideal_cluster(2);
  OpGraph g;
  const int a = g.add("Alpha", OpCategory::kGemm, StreamKind::kCompute, {0},
                      0.5, {});
  g.add("Beta", OpCategory::kAllToAll, StreamKind::kComm, {0, 1}, 0.5, {a});
  const auto t = cluster.time_only(g);
  const std::string json = to_chrome_trace(g, t);
  EXPECT_NE(json.find("\"Alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"Beta\""), std::string::npos);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  const std::string ascii = ascii_timeline(g, t, 40);
  EXPECT_NE(ascii.find("dev0 comp"), std::string::npos);
  EXPECT_NE(ascii.find("dev1 comm"), std::string::npos);
}

}  // namespace
}  // namespace mpipe::sim
