// Randomized property tests of the discrete-event engine: for arbitrary
// valid DAGs over arbitrary clusters, core invariants must hold — complete
// execution, dependency and FIFO ordering in simulated time, busy-time
// bounds, critical-path lower bound, interference never speeding things
// up, and replay determinism.

#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "sim/cluster.h"

namespace mpipe::sim {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int devices;
  int ops;
};

OpGraph random_graph(const FuzzCase& c, Rng& rng) {
  OpGraph g;
  for (int i = 0; i < c.ops; ++i) {
    Op op;
    op.label = "op" + std::to_string(i);
    op.stream = static_cast<StreamKind>(rng.uniform_index(3));
    op.base_seconds = rng.uniform(1e-5, 1e-3);
    if (op.stream == StreamKind::kComm && rng.uniform() < 0.3 &&
        c.devices >= 2) {
      // Collective over a random contiguous device group.
      const int lo = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(c.devices - 1)));
      const int hi =
          lo + 1 +
          static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(c.devices - lo - 1)));
      for (int d = lo; d <= hi; ++d) op.devices.push_back(d);
      op.category = OpCategory::kAllToAll;
    } else {
      op.devices = {static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(c.devices)))};
      op.category = op.stream == StreamKind::kCompute
                        ? OpCategory::kGemm
                        : OpCategory::kMemcpyD2H;
      op.compute_efficiency = rng.uniform(0.2, 1.0);
    }
    // Backward-only deps keep the explicit-dependency graph acyclic; the
    // combined (deps + FIFO) graph is then acyclic too because FIFO edges
    // also point forward in insertion order.
    const int max_deps = std::min(i, 3);
    for (int k = 0; k < max_deps; ++k) {
      if (rng.uniform() < 0.3) {
        op.deps.push_back(static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(i))));
      }
    }
    std::sort(op.deps.begin(), op.deps.end());
    op.deps.erase(std::unique(op.deps.begin(), op.deps.end()),
                  op.deps.end());
    g.add(std::move(op));
  }
  return g;
}

class EngineFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzz, InvariantsHoldOnRandomGraphs) {
  const FuzzCase c = GetParam();
  Rng rng(c.seed);
  OpGraph g = random_graph(c, rng);
  Cluster cluster = Cluster::dgx_a100_pod(
      std::max(1, c.devices / 4), std::min(4, c.devices));
  const TimingResult t = cluster.time_only(g);

  // 1. Everything ran, with non-negative durations.
  double sum_durations = 0.0;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    ASSERT_TRUE(ot.started()) << op.label;
    ASSERT_GE(ot.end, ot.start);
    // Interference can only slow ops down, never below base duration.
    EXPECT_GE(ot.end - ot.start, op.base_seconds - 1e-12) << op.label;
    sum_durations += ot.end - ot.start;
    EXPECT_LE(ot.end, t.makespan + 1e-12);
  }

  // 2. Dependencies respected in simulated time.
  for (const Op& op : g.ops()) {
    for (int dep : op.deps) {
      EXPECT_GE(t.op_times[static_cast<std::size_t>(op.id)].start,
                t.op_times[static_cast<std::size_t>(dep)].end - 1e-12)
          << op.label << " started before dep " << dep << " finished";
    }
  }

  // 3. Stream FIFO: per (device, kind), ops execute in insertion order
  //    without overlap.
  std::map<std::pair<int, int>, double> last_end;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    for (int d : op.devices) {
      auto key = std::make_pair(d, static_cast<int>(op.stream));
      auto it = last_end.find(key);
      if (it != last_end.end()) {
        EXPECT_GE(ot.start, it->second - 1e-12)
            << "FIFO violated on device " << d;
      }
      last_end[key] = ot.end;
    }
  }

  // 4. Busy-time accounting: per stream, busy <= makespan; total busy
  //    equals the sum of op durations over their devices.
  double total_busy = 0.0;
  for (int d = 0; d < cluster.num_devices(); ++d) {
    for (int k = 0; k < kNumStreamKinds; ++k) {
      const double busy = t.stream_busy(d, static_cast<StreamKind>(k));
      EXPECT_GE(busy, -1e-12);
      EXPECT_LE(busy, t.makespan + 1e-9);
      total_busy += busy;
    }
    EXPECT_GE(t.compute_utilization(d), 0.0);
    EXPECT_LE(t.compute_utilization(d), 1.0 + 1e-9);
  }
  double expected_busy = 0.0;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    expected_busy += (ot.end - ot.start) *
                     static_cast<double>(op.devices.size());
  }
  EXPECT_NEAR(total_busy, expected_busy, 1e-6 * std::max(1.0, expected_busy));

  // 5. Makespan bounds: at least the longest single op, at most the sum
  //    of all durations (full serialization).
  double longest = 0.0;
  for (const Op& op : g.ops()) longest = std::max(longest, op.base_seconds);
  EXPECT_GE(t.makespan, longest - 1e-12);
  EXPECT_LE(t.makespan, sum_durations + 1e-9);

  // 6. Determinism: replay gives bit-identical timings.
  Rng rng2(c.seed);
  OpGraph g2 = random_graph(c, rng2);
  const TimingResult t2 = cluster.time_only(g2);
  ASSERT_EQ(t.op_times.size(), t2.op_times.size());
  for (std::size_t i = 0; i < t.op_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.op_times[i].start, t2.op_times[i].start);
    EXPECT_DOUBLE_EQ(t.op_times[i].end, t2.op_times[i].end);
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1000;
  for (int devices : {1, 2, 4, 8}) {
    for (int ops : {5, 30, 120}) {
      cases.push_back({seed++, devices, ops});
      cases.push_back({seed++, devices, ops});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, EngineFuzz, testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.seed) +
                                  "d" + std::to_string(info.param.devices) +
                                  "o" + std::to_string(info.param.ops);
                         });

}  // namespace
}  // namespace mpipe::sim
