// Randomized property tests of the engine and its inputs: for arbitrary
// valid DAGs over arbitrary clusters, core invariants must hold — complete
// execution, dependency and FIFO ordering in simulated time, busy-time
// bounds, critical-path lower bound, interference never speeding things
// up, and replay determinism. Plus kernel-level sweeps: the calibrated
// cost model (GEMM efficiency and AllToAll bandwidth curves) against
// direct measured-table interpolation, and the SIMD layer-norm/softmax/
// gather-scatter kernels against scalar references.

#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "moe/expert.h"
#include "moe/layer_norm.h"
#include "sim/calibration.h"
#include "sim/cluster.h"
#include "sim/graph_executor.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe::sim {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int devices;
  int ops;
};

OpGraph random_graph(const FuzzCase& c, Rng& rng) {
  OpGraph g;
  for (int i = 0; i < c.ops; ++i) {
    Op op;
    op.label = "op" + std::to_string(i);
    op.stream = static_cast<StreamKind>(rng.uniform_index(3));
    op.base_seconds = rng.uniform(1e-5, 1e-3);
    if (op.stream == StreamKind::kComm && rng.uniform() < 0.3 &&
        c.devices >= 2) {
      // Collective over a random contiguous device group.
      const int lo = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(c.devices - 1)));
      const int hi =
          lo + 1 +
          static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(c.devices - lo - 1)));
      for (int d = lo; d <= hi; ++d) op.devices.push_back(d);
      op.category = OpCategory::kAllToAll;
    } else {
      op.devices = {static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(c.devices)))};
      op.category = op.stream == StreamKind::kCompute
                        ? OpCategory::kGemm
                        : OpCategory::kMemcpyD2H;
      op.compute_efficiency = rng.uniform(0.2, 1.0);
    }
    // Backward-only deps keep the explicit-dependency graph acyclic; the
    // combined (deps + FIFO) graph is then acyclic too because FIFO edges
    // also point forward in insertion order.
    const int max_deps = std::min(i, 3);
    for (int k = 0; k < max_deps; ++k) {
      if (rng.uniform() < 0.3) {
        op.deps.push_back(static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(i))));
      }
    }
    std::sort(op.deps.begin(), op.deps.end());
    op.deps.erase(std::unique(op.deps.begin(), op.deps.end()),
                  op.deps.end());
    g.add(std::move(op));
  }
  return g;
}

class EngineFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzz, InvariantsHoldOnRandomGraphs) {
  const FuzzCase c = GetParam();
  Rng rng(c.seed);
  OpGraph g = random_graph(c, rng);
  Cluster cluster = Cluster::dgx_a100_pod(
      std::max(1, c.devices / 4), std::min(4, c.devices));
  const TimingResult t = cluster.time_only(g);

  // 1. Everything ran, with non-negative durations.
  double sum_durations = 0.0;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    ASSERT_TRUE(ot.started()) << op.label;
    ASSERT_GE(ot.end, ot.start);
    // Interference can only slow ops down, never below base duration.
    EXPECT_GE(ot.end - ot.start, op.base_seconds - 1e-12) << op.label;
    sum_durations += ot.end - ot.start;
    EXPECT_LE(ot.end, t.makespan + 1e-12);
  }

  // 2. Dependencies respected in simulated time.
  for (const Op& op : g.ops()) {
    for (int dep : op.deps) {
      EXPECT_GE(t.op_times[static_cast<std::size_t>(op.id)].start,
                t.op_times[static_cast<std::size_t>(dep)].end - 1e-12)
          << op.label << " started before dep " << dep << " finished";
    }
  }

  // 3. Stream FIFO: per (device, kind), ops execute in insertion order
  //    without overlap.
  std::map<std::pair<int, int>, double> last_end;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    for (int d : op.devices) {
      auto key = std::make_pair(d, static_cast<int>(op.stream));
      auto it = last_end.find(key);
      if (it != last_end.end()) {
        EXPECT_GE(ot.start, it->second - 1e-12)
            << "FIFO violated on device " << d;
      }
      last_end[key] = ot.end;
    }
  }

  // 4. Busy-time accounting: per stream, busy <= makespan; total busy
  //    equals the sum of op durations over their devices.
  double total_busy = 0.0;
  for (int d = 0; d < cluster.num_devices(); ++d) {
    for (int k = 0; k < kNumStreamKinds; ++k) {
      const double busy = t.stream_busy(d, static_cast<StreamKind>(k));
      EXPECT_GE(busy, -1e-12);
      EXPECT_LE(busy, t.makespan + 1e-9);
      total_busy += busy;
    }
    EXPECT_GE(t.compute_utilization(d), 0.0);
    EXPECT_LE(t.compute_utilization(d), 1.0 + 1e-9);
  }
  double expected_busy = 0.0;
  for (const Op& op : g.ops()) {
    const auto& ot = t.op_times[static_cast<std::size_t>(op.id)];
    expected_busy += (ot.end - ot.start) *
                     static_cast<double>(op.devices.size());
  }
  EXPECT_NEAR(total_busy, expected_busy, 1e-6 * std::max(1.0, expected_busy));

  // 5. Makespan bounds: at least the longest single op, at most the sum
  //    of all durations (full serialization).
  double longest = 0.0;
  for (const Op& op : g.ops()) longest = std::max(longest, op.base_seconds);
  EXPECT_GE(t.makespan, longest - 1e-12);
  EXPECT_LE(t.makespan, sum_durations + 1e-9);

  // 6. Determinism: replay gives bit-identical timings.
  Rng rng2(c.seed);
  OpGraph g2 = random_graph(c, rng2);
  const TimingResult t2 = cluster.time_only(g2);
  ASSERT_EQ(t.op_times.size(), t2.op_times.size());
  for (std::size_t i = 0; i < t.op_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.op_times[i].start, t2.op_times[i].start);
    EXPECT_DOUBLE_EQ(t.op_times[i].end, t2.op_times[i].end);
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1000;
  for (int devices : {1, 2, 4, 8}) {
    for (int ops : {5, 30, 120}) {
      cases.push_back({seed++, devices, ops});
      cases.push_back({seed++, devices, ops});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, EngineFuzz, testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.seed) +
                                  "d" + std::to_string(info.param.devices) +
                                  "o" + std::to_string(info.param.ops);
                         });

// ---- calibrated cost model vs measured-table interpolation ----------------

/// Linear interpolation of measured seconds at `r`, rescaled to `flops`
/// (the table stores flops-proportional runs, so seconds/flops at r is
/// the table's implied rate). Clamped like the curve.
double table_seconds(const std::vector<GemmSample>& t, std::int64_t r,
                     double flops) {
  auto per_flop = [&](std::size_t i) {
    return t[i].seconds / static_cast<double>(t[i].flops);
  };
  if (r <= t.front().rows) return flops * per_flop(0);
  if (r >= t.back().rows) return flops * per_flop(t.size() - 1);
  std::size_t hi = 1;
  while (t[hi].rows < r) ++hi;
  const std::size_t lo = hi - 1;
  const double u = static_cast<double>(r - t[lo].rows) /
                   static_cast<double>(t[hi].rows - t[lo].rows);
  // seconds at r for a flops-proportional op, interpolated in seconds.
  const double s_lo = per_flop(lo) * flops;
  const double s_hi = per_flop(hi) * flops;
  return s_lo + u * (s_hi - s_lo);
}

TEST(CostModelCalibrationFuzz, TracksMeasuredTableAndStaysMonotone) {
  Rng rng(4242);
  for (int iter = 0; iter < 300; ++iter) {
    // Synthetic measured table: ascending rows with bounded spacing,
    // physically-consistent seconds (non-decreasing in rows, efficiency
    // moves at most 3x per knot) — what a real, conditioned sweep emits.
    const int npts = 3 + static_cast<int>(rng.uniform_index(8));
    const double flops_per_row = rng.uniform(1e6, 1e9);
    std::vector<GemmSample> table;
    std::int64_t r = 1 + static_cast<std::int64_t>(rng.uniform_index(16));
    double seconds = rng.uniform(1e-5, 1e-3);
    for (int i = 0; i < npts; ++i) {
      GemmSample s;
      s.rows = r;
      s.flops = static_cast<std::uint64_t>(flops_per_row *
                                           static_cast<double>(r));
      s.seconds = seconds;
      table.push_back(s);
      const std::int64_t next =
          r + 1 + static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(3 * r)));
      // seconds grow at least proportionally to eff drop cap (<= 3x) and
      // never shrink: eff_next/eff = (r_next/r) * (s/s_next) in [1/3, 1].
      const double ratio = static_cast<double>(next) / static_cast<double>(r);
      seconds *= ratio * rng.uniform(1.0, 3.0);
      r = next;
    }

    CostModelConfig config;
    config.compute_launch_latency = 0.0;  // isolate the efficiency curve
    GemmEfficiencyCurve curve =
        fit_efficiency_curve(table, config.gemm_max_efficiency);
    config = apply_calibration(config, curve, table.front().rows,
                               table.back().rows);
    CostModel model(config, Topology(TopologyConfig{}));

    // Host peak implied by the fit: best sample maps to max_efficiency.
    double peak_rate = 0.0;
    for (const auto& s : table) {
      peak_rate = std::max(peak_rate,
                           static_cast<double>(s.flops) / s.seconds);
    }
    const double scale =
        peak_rate / (config.peak_flops * config.gemm_max_efficiency);

    const std::int64_t lo = table.front().rows, hi = table.back().rows;
    double prev_seconds = -1.0;
    for (int probe = 0; probe < 64; ++probe) {
      const std::int64_t rr =
          lo + static_cast<std::int64_t>(
                   rng.uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
      const double eff = model.gemm_efficiency(rr);
      ASSERT_GT(eff, 0.0);
      ASSERT_LE(eff, config.gemm_max_efficiency + 1e-12);
      const double flops = flops_per_row * static_cast<double>(rr);
      const double pred =
          model.gemm_seconds(static_cast<std::uint64_t>(flops), rr) / scale;
      const double meas = table_seconds(table, rr, flops);
      // The curve interpolates efficiency, the table interpolates
      // seconds: identical at knots, boundedly apart between them.
      EXPECT_NEAR(pred / meas, 1.0, 0.5)
          << "iter " << iter << " rows " << rr;
      (void)prev_seconds;
    }
    // Exactness at the knots.
    for (const auto& s : table) {
      const double pred = model.gemm_seconds(s.flops, s.rows) / scale;
      EXPECT_NEAR(pred / s.seconds, 1.0, 1e-6) << "knot rows " << s.rows;
    }
    // Monotonicity: proportionally bigger GEMMs never get cheaper.
    std::vector<std::int64_t> probes;
    for (int i = 0; i < 32; ++i) {
      probes.push_back(lo + static_cast<std::int64_t>(rng.uniform_index(
                                static_cast<std::uint64_t>(hi - lo + 1))));
    }
    std::sort(probes.begin(), probes.end());
    double last = -1.0;
    for (std::int64_t rr : probes) {
      const double flops = flops_per_row * static_cast<double>(rr);
      const double t =
          model.gemm_seconds(static_cast<std::uint64_t>(flops), rr);
      EXPECT_GE(t, last * (1.0 - 1e-9)) << "rows " << rr;
      last = t;
    }
  }
}

TEST(CostModelCalibration, CoverageAndStructureErrorsAreLoud) {
  GemmEfficiencyCurve curve;
  curve.rows = {8, 64, 512};
  curve.efficiency = {0.2, 0.6, 0.9};
  CostModelConfig config;
  // Probing below/above the calibrated sweep must throw at load time.
  EXPECT_THROW(apply_calibration(config, curve, 1, 512), CheckError);
  EXPECT_THROW(apply_calibration(config, curve, 8, 1024), CheckError);
  EXPECT_NO_THROW(apply_calibration(config, curve, 8, 512));
  // An empty curve cannot satisfy any required range.
  EXPECT_THROW(GemmEfficiencyCurve{}.validate_covers(1, 2), CheckError);
  // Superlinear efficiency growth (bigger GEMM predicted faster) rejected.
  GemmEfficiencyCurve bad;
  bad.rows = {8, 16};
  bad.efficiency = {0.1, 0.9};  // 9x eff on 2x rows
  EXPECT_THROW(bad.validate(), CheckError);
}

// ---- calibrated comm model vs measured-table interpolation ----------------

/// Linear interpolation of measured exchange seconds at payload `b`,
/// clamped to the table ends — the direct reading of the measurements the
/// CommBandwidthCurve must reproduce.
double comm_table_seconds(const std::vector<CommSample>& t, std::uint64_t b) {
  if (b <= t.front().bytes) return t.front().seconds;
  if (b >= t.back().bytes) return t.back().seconds;
  std::size_t hi = 1;
  while (t[hi].bytes < b) ++hi;
  const std::size_t lo = hi - 1;
  const double u = static_cast<double>(b - t[lo].bytes) /
                   static_cast<double>(t[hi].bytes - t[lo].bytes);
  return t[lo].seconds + u * (t[hi].seconds - t[lo].seconds);
}

TEST(CommCalibrationFuzz, TracksMeasuredTableAndStaysMonotone) {
  Rng rng(5353);
  for (int iter = 0; iter < 300; ++iter) {
    // Synthetic measured table: ascending payloads with bounded spacing,
    // physically-consistent seconds (a bigger exchange never faster) —
    // what a real, conditioned sweep emits.
    const int npts = 3 + static_cast<int>(rng.uniform_index(8));
    std::vector<CommSample> table;
    std::uint64_t b = 1 + rng.uniform_index(4096);
    double seconds = rng.uniform(1e-6, 1e-3);
    for (int i = 0; i < npts; ++i) {
      table.push_back({b, seconds});
      b += 1 + rng.uniform_index(3 * b);
      seconds *= rng.uniform(1.0, 4.0);
    }

    CostModelConfig config;
    config.comm_launch_latency = 0.0;  // isolate the bandwidth curve
    CommBandwidthCurve curve = fit_comm_curve(table);
    config = apply_comm_calibration(config, curve, table.front().bytes,
                                    table.back().bytes);
    Topology topo(TopologyConfig{});
    CostModel model(config, topo);
    const std::vector<int> pair = {0, 1};
    // Group {0, 1}: payload is exactly bytes_per_device / 2, so probing
    // payload b means passing 2b. The model predicts
    // eval(b) * peak_rate / link_bw; divide the scale back out.
    const double scale = curve.peak_rate() / topo.alltoall_bandwidth(pair);

    const std::uint64_t lo = table.front().bytes;
    const std::uint64_t hi = table.back().bytes;
    // Exactness at the knots.
    for (const auto& s : table) {
      const double pred = model.alltoall_seconds(2 * s.bytes, pair) / scale;
      EXPECT_NEAR(pred / s.seconds, 1.0, 1e-9) << "knot bytes " << s.bytes;
    }
    // Between knots the curve interpolates seconds linearly in bytes —
    // identical to reading the table directly.
    for (int probe = 0; probe < 64; ++probe) {
      const std::uint64_t bb = lo + rng.uniform_index(hi - lo + 1);
      const double pred = model.alltoall_seconds(2 * bb, pair) / scale;
      const double meas = comm_table_seconds(table, bb);
      EXPECT_NEAR(pred / meas, 1.0, 1e-6) << "iter " << iter << " bytes "
                                          << bb;
      const double eff = config.comm_curve.efficiency_at(bb);
      ASSERT_GT(eff, 0.0);
      ASSERT_LE(eff, 1.0);
    }
    // Monotonicity: bigger exchanges never get cheaper, including past the
    // calibrated sweep where the curve extrapolates at the back knot's
    // average rate.
    std::vector<std::uint64_t> probes;
    for (int i = 0; i < 32; ++i) {
      probes.push_back(lo + rng.uniform_index(2 * (hi - lo) + 1));
    }
    std::sort(probes.begin(), probes.end());
    double last = -1.0;
    for (std::uint64_t bb : probes) {
      const double t = model.alltoall_seconds(2 * bb, pair);
      EXPECT_GE(t, last * (1.0 - 1e-9)) << "bytes " << bb;
      last = t;
    }
  }
}

TEST(CommCalibration, CoverageAndStructureErrorsAreLoud) {
  CommBandwidthCurve curve;
  curve.bytes = {4096, 65536, 1048576};
  curve.seconds = {2e-6, 2e-5, 3e-4};
  CostModelConfig config;
  // Probing below/above the calibrated sweep must throw at load time.
  EXPECT_THROW(apply_comm_calibration(config, curve, 1024, 1048576),
               CheckError);
  EXPECT_THROW(apply_comm_calibration(config, curve, 4096, 4194304),
               CheckError);
  EXPECT_NO_THROW(apply_comm_calibration(config, curve, 4096, 1048576));
  // An empty curve cannot satisfy any required range.
  EXPECT_THROW(CommBandwidthCurve{}.validate_covers(1, 2), CheckError);
  // Seconds shrinking with payload (bigger exchange predicted faster).
  CommBandwidthCurve shrinking;
  shrinking.bytes = {4096, 8192};
  shrinking.seconds = {1e-4, 5e-5};
  EXPECT_THROW(shrinking.validate(), CheckError);
  // Non-ascending payloads.
  CommBandwidthCurve unsorted;
  unsorted.bytes = {8192, 4096};
  unsorted.seconds = {1e-5, 1e-4};
  EXPECT_THROW(unsorted.validate(), CheckError);
  // One knot is not a curve.
  CommBandwidthCurve lone;
  lone.bytes = {4096};
  lone.seconds = {1e-5};
  EXPECT_THROW(lone.validate(), CheckError);
}

TEST(CommCalibration, FitKeepsFastestDuplicateAndClampsJitter) {
  // Duplicate payloads keep the fastest run; an inversion (bigger payload
  // measured faster) is clamped to monotone, not propagated.
  std::vector<CommSample> samples = {
      {100, 2e-5}, {100, 1e-5}, {200, 8e-6}, {400, 4e-5}};
  CommBandwidthCurve curve = fit_comm_curve(samples);
  ASSERT_EQ(curve.bytes.size(), 3u);
  EXPECT_EQ(curve.bytes[0], 100u);
  EXPECT_DOUBLE_EQ(curve.seconds[0], 1e-5);   // fastest duplicate
  EXPECT_DOUBLE_EQ(curve.seconds[1], 1e-5);   // clamped up to monotone
  EXPECT_DOUBLE_EQ(curve.seconds[2], 4e-5);
}

// ---- SIMD kernels vs scalar fp64 references -------------------------------

TEST(SimdEquivalenceFuzz, GatherScatterSpansMatchScalarReference) {
  // The vectorized (and, above the size threshold, pool-parallel) span
  // copies must move bytes exactly like a per-element scalar loop, on
  // ragged span lists including 0-row and 1-row spans. Late iterations use
  // buffers big enough to cross the parallel fan-out threshold.
  Rng rng(1212);
  for (int iter = 0; iter < 100; ++iter) {
    const std::int64_t rows =
        1 + static_cast<std::int64_t>(rng.uniform_index(iter < 80 ? 48 : 600));
    const std::int64_t cols =
        1 + static_cast<std::int64_t>(rng.uniform_index(200));
    Tensor buf(Shape{rows, cols});
    init_normal(buf, rng);

    // Disjoint ascending spans with gaps; 0- and 1-row spans occur often.
    moe::RowSpanList spans;
    std::int64_t off = 0;
    while (off < rows) {
      const std::int64_t count = std::min<std::int64_t>(
          static_cast<std::int64_t>(rng.uniform_index(5)), rows - off);
      spans.push_back({off, count});
      off += count + 1 + static_cast<std::int64_t>(rng.uniform_index(3));
    }
    if (spans.empty()) spans.push_back({0, 0});

    const Tensor packed = moe::gather_spans(buf, spans);
    ASSERT_EQ(packed.dim(0), moe::span_rows(spans));
    std::int64_t prow = 0;
    for (const moe::RowSpan& s : spans) {
      for (std::int64_t r = 0; r < s.count; ++r, ++prow) {
        for (std::int64_t c = 0; c < cols; ++c) {
          ASSERT_EQ(packed.at(prow, c), buf.at(s.offset + r, c))
              << "iter " << iter << " span row " << r;
        }
      }
    }

    Tensor src(Shape{moe::span_rows(spans), cols});
    init_normal(src, rng);
    Tensor out(Shape{rows, cols});
    out.fill(-7.0f);
    moe::scatter_spans(src, out, spans);
    prow = 0;
    std::vector<bool> covered(static_cast<std::size_t>(rows), false);
    for (const moe::RowSpan& s : spans) {
      for (std::int64_t r = 0; r < s.count; ++r, ++prow) {
        covered[static_cast<std::size_t>(s.offset + r)] = true;
        for (std::int64_t c = 0; c < cols; ++c) {
          ASSERT_EQ(out.at(s.offset + r, c), src.at(prow, c));
        }
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      if (covered[static_cast<std::size_t>(r)]) continue;
      // Rows outside every span stay untouched.
      for (std::int64_t c = 0; c < cols; ++c) {
        ASSERT_EQ(out.at(r, c), -7.0f);
      }
    }
  }

  // Overlapping destination spans would race under the parallel fan-out;
  // scatter rejects them loudly (gather tolerates overlapping reads).
  Tensor buf(Shape{8, 4});
  Tensor src(Shape{8, 4});
  const moe::RowSpanList overlapping = {{0, 4}, {2, 4}};
  EXPECT_THROW(moe::scatter_spans(src, buf, overlapping), CheckError);
  EXPECT_NO_THROW(moe::gather_spans(buf, overlapping));
  // Zero-count spans move nothing: legal at any offset, even inside
  // another span's range.
  const moe::RowSpanList with_empty = {{0, 4}, {2, 0}, {4, 4}};
  EXPECT_NO_THROW(moe::scatter_spans(src, buf, with_empty));
}

TEST(SimdEquivalenceFuzz, SoftmaxMatchesScalarReference) {
  Rng rng(777);
  for (int iter = 0; iter < 120; ++iter) {
    const std::int64_t rows = static_cast<std::int64_t>(rng.uniform_index(24));
    const std::int64_t cols =
        1 + static_cast<std::int64_t>(rng.uniform_index(130));
    const float sc = std::pow(10.0f, rng.uniform(-2.0, 2.0));
    Tensor x(Shape{rows, cols});
    init_normal(x, rng, sc);
    Tensor y = softmax_rows(x);
    Tensor dy(x.shape());
    init_normal(dy, rng);
    Tensor dx = softmax_rows_backward(dy, y);
    for (std::int64_t rr = 0; rr < rows; ++rr) {
      double mx = x.at(rr, 0);
      for (std::int64_t c = 1; c < cols; ++c) {
        mx = std::max(mx, static_cast<double>(x.at(rr, c)));
      }
      double denom = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        denom += std::exp(static_cast<double>(x.at(rr, c)) - mx);
      }
      double dot = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        const double ref = std::exp(static_cast<double>(x.at(rr, c)) - mx) /
                           denom;
        EXPECT_NEAR(y.at(rr, c), ref, 1e-5)
            << "rows=" << rows << " cols=" << cols;
        dot += static_cast<double>(dy.at(rr, c)) * ref;
      }
      for (std::int64_t c = 0; c < cols; ++c) {
        const double ref =
            static_cast<double>(y.at(rr, c)) * (dy.at(rr, c) - dot);
        EXPECT_NEAR(dx.at(rr, c), ref, 1e-4)
            << "rows=" << rows << " cols=" << cols;
      }
    }
  }
}

TEST(SimdEquivalenceFuzz, LayerNormMatchesScalarReference) {
  Rng rng(888);
  for (int iter = 0; iter < 60; ++iter) {
    const std::int64_t rows =
        1 + static_cast<std::int64_t>(rng.uniform_index(20));
    const std::int64_t dim =
        1 + static_cast<std::int64_t>(rng.uniform_index(200));
    moe::LayerNorm ln(dim);
    init_normal(ln.gamma(), rng, 1.0f);
    init_normal(ln.beta(), rng, 0.5f);
    Tensor x(Shape{rows, dim});
    init_normal(x, rng, std::pow(10.0f, rng.uniform(-1.0, 1.0)));
    const auto fwd = ln.forward(x);
    Tensor dy(x.shape());
    init_normal(dy, rng);
    ln.zero_grad();
    Tensor dx = ln.backward(dy, fwd);

    std::vector<double> gg(static_cast<std::size_t>(dim), 0.0);
    std::vector<double> bg(static_cast<std::size_t>(dim), 0.0);
    for (std::int64_t rr = 0; rr < rows; ++rr) {
      double mean = 0.0, var = 0.0;
      for (std::int64_t c = 0; c < dim; ++c) mean += x.at(rr, c);
      mean /= static_cast<double>(dim);
      for (std::int64_t c = 0; c < dim; ++c) {
        const double d = x.at(rr, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(dim);
      const double inv = 1.0 / std::sqrt(var + 1e-5);
      double sum_dn = 0.0, sum_dn_n = 0.0;
      for (std::int64_t c = 0; c < dim; ++c) {
        const double n = (x.at(rr, c) - mean) * inv;
        const double out = n * ln.gamma().at(c) + ln.beta().at(c);
        EXPECT_NEAR(fwd.normalized.at(rr, c), n, 2e-4)
            << "rows=" << rows << " dim=" << dim;
        EXPECT_NEAR(fwd.output.at(rr, c), out, 2e-3)
            << "rows=" << rows << " dim=" << dim;
        const double dn = static_cast<double>(dy.at(rr, c)) *
                          ln.gamma().at(c);
        sum_dn += dn;
        sum_dn_n += dn * n;
        gg[static_cast<std::size_t>(c)] +=
            static_cast<double>(dy.at(rr, c)) * n;
        bg[static_cast<std::size_t>(c)] += dy.at(rr, c);
      }
      const double invc = 1.0 / static_cast<double>(dim);
      for (std::int64_t c = 0; c < dim; ++c) {
        const double n = (x.at(rr, c) - mean) * inv;
        const double dn = static_cast<double>(dy.at(rr, c)) *
                          ln.gamma().at(c);
        const double ref =
            inv * (dn - sum_dn * invc - n * sum_dn_n * invc);
        EXPECT_NEAR(dx.at(rr, c), ref, 5e-3)
            << "rows=" << rows << " dim=" << dim;
      }
    }
    for (std::int64_t c = 0; c < dim; ++c) {
      EXPECT_NEAR(ln.gamma_grad().at(c), gg[static_cast<std::size_t>(c)],
                  5e-3);
      EXPECT_NEAR(ln.beta_grad().at(c), bg[static_cast<std::size_t>(c)],
                  5e-3);
    }
  }
}

// ---- concurrent executor fuzz ----------------------------------------------

struct ExecFuzzCase {
  std::uint64_t seed;
  int ops;
  int devices;
  int slots;  ///< shared ring slots carrying WAR chains (0 = none)
};

struct ExecFuzzBuffers {
  std::vector<float> cells;  ///< one private result cell per op
  std::vector<float> slots;  ///< shared, reused across ops (ring-style)
};

/// Random DAG whose closures do real float math: every op writes its own
/// cell from its deps' cells; ring ops additionally read-modify-write a
/// shared slot, chained to the slot's previous user by an explicit WAR/
/// serialisation edge (the chain edge is exactly what the planted-missing-
/// edge test below removes). All accesses are declared, so the graphs are
/// validator-clean by construction.
OpGraph random_exec_graph(const ExecFuzzCase& c, ExecFuzzBuffers& buf) {
  Rng rng(c.seed);
  buf.cells.assign(static_cast<std::size_t>(std::max(c.ops, 1)), 0.0f);
  buf.slots.assign(static_cast<std::size_t>(std::max(c.slots, 1)), 0.0f);
  float* cells = buf.cells.data();
  float* slots = buf.slots.data();
  std::vector<int> last_slot_user(static_cast<std::size_t>(c.slots), -1);

  OpGraph g;
  for (int i = 0; i < c.ops; ++i) {
    Op op;
    op.label = "op" + std::to_string(i);
    op.stream = static_cast<StreamKind>(rng.uniform_index(3));
    op.devices = {static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(c.devices)))};
    op.base_seconds = 1e-6;

    std::vector<int> deps;
    for (int k = 0; k < 3 && i > 0; ++k) {
      if (rng.uniform() < 0.3) {
        const int dep = static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(i)));
        if (std::find(deps.begin(), deps.end(), dep) == deps.end()) {
          deps.push_back(dep);
        }
      }
    }

    int slot = -1;
    if (c.slots > 0 && rng.uniform() < 0.4) {
      slot = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(c.slots)));
      const int prev = last_slot_user[static_cast<std::size_t>(slot)];
      if (prev >= 0 &&
          std::find(deps.begin(), deps.end(), prev) == deps.end()) {
        deps.push_back(prev);  // the WAR/serialisation chain edge
      }
      last_slot_user[static_cast<std::size_t>(slot)] = i;
    }

    op.deps = deps;
    op.fn = [cells, slots, deps, i, slot] {
      float acc = static_cast<float>(i + 1);
      for (int dep : deps) acc += cells[dep] * 1.25f;
      if (slot >= 0) {
        slots[slot] = slots[slot] * 0.75f + acc;
        acc += slots[slot] * 0.5f;
      }
      cells[i] = acc;
    };
    for (int dep : deps) op.reads.push_back(access_floats(cells, dep, 1));
    if (slot >= 0) {
      op.reads.push_back(access_floats(slots, slot, 1));
      op.writes.push_back(access_floats(slots, slot, 1));
    }
    op.writes.push_back(access_floats(cells, i, 1));
    g.add(std::move(op));
  }
  return g;
}

TEST(GraphExecutorFuzz, RandomDagsMatchSerialBitwiseAcrossPoolSizes) {
  // Includes the degenerate shapes the executor must not trip on: the
  // zero-op and single-op graphs, single-device graphs (everything FIFO-
  // serialised), and dense multi-slot WAR chains.
  const std::vector<ExecFuzzCase> cases = {
      {101, 0, 1, 0},  {102, 1, 1, 0},  {103, 1, 4, 2},  {104, 7, 1, 0},
      {105, 16, 2, 1}, {106, 33, 4, 3}, {107, 60, 4, 5}, {108, 45, 8, 2},
      {109, 24, 3, 4}, {110, 80, 6, 6},
  };
  for (const auto& c : cases) {
    Cluster cluster = Cluster::dgx_a100_pod(1, std::max(c.devices, 2));
    ExecFuzzBuffers reference;
    OpGraph serial_graph = random_exec_graph(c, reference);
    cluster.run_functional(serial_graph, ExecutionPolicy::kSerial);

    for (std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool::reset_shared(threads);
      ExecFuzzBuffers observed;
      OpGraph parallel_graph = random_exec_graph(c, observed);
      cluster.run_functional(parallel_graph, ExecutionPolicy::kParallel);
      ASSERT_EQ(reference.cells.size(), observed.cells.size());
      for (std::size_t i = 0; i < reference.cells.size(); ++i) {
        // Bitwise: identical observable writes, any pool size.
        ASSERT_EQ(reference.cells[i], observed.cells[i])
            << "seed " << c.seed << " cell " << i << " threads " << threads;
      }
      for (std::size_t s = 0; s < reference.slots.size(); ++s) {
        ASSERT_EQ(reference.slots[s], observed.slots[s])
            << "seed " << c.seed << " slot " << s << " threads " << threads;
      }
    }
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutorFuzz, ProfiledTracesAreWellFormedAcrossPoolSizes) {
  // Trace well-formedness under profiling: every op is recorded exactly
  // once (its own slot, no duplicates possible — so: recorded at all),
  // start <= end, the executing worker id names a real drain loop for the
  // pool size, and the profiled run still matches the serial reference
  // bitwise. Across the same shapes the bitwise fuzz uses.
  const std::vector<ExecFuzzCase> cases = {
      {301, 0, 1, 0},  {302, 1, 1, 0},  {303, 16, 2, 1},
      {304, 33, 4, 3}, {305, 60, 4, 5}, {306, 45, 8, 2},
  };
  for (const auto& c : cases) {
    ExecFuzzBuffers reference;
    OpGraph serial_graph = random_exec_graph(c, reference);
    run_graph_serial(serial_graph);

    for (std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool::reset_shared(threads);
      ExecFuzzBuffers observed;
      OpGraph g = random_exec_graph(c, observed);
      ExecutionProfile profile;
      run_graph_parallel(g, ThreadPool::shared(), &profile);

      ASSERT_EQ(profile.size(), g.size());
      // Drain loops: the caller (0) plus at most min(pool, ops-1) helpers.
      const int max_worker = static_cast<int>(
          std::min(threads, static_cast<std::size_t>(
                                std::max(g.size() - 1, 0))));
      for (int id = 0; id < g.size(); ++id) {
        const OpSample& s = profile.sample(id);
        ASSERT_TRUE(s.recorded())
            << "seed " << c.seed << " op " << id << " never recorded";
        EXPECT_LE(s.start_ns, s.end_ns) << "seed " << c.seed << " op " << id;
        EXPECT_GE(s.worker, 0) << "seed " << c.seed << " op " << id;
        EXPECT_LE(s.worker, max_worker)
            << "seed " << c.seed << " op " << id << " threads " << threads;
      }
      for (std::size_t i = 0; i < reference.cells.size(); ++i) {
        ASSERT_EQ(reference.cells[i], observed.cells[i])
            << "seed " << c.seed << " cell " << i << " threads " << threads;
      }
      // The reconstructed timeline is internally consistent too: ids
      // echo the slot, durations non-negative, makespan covers them.
      const MeasuredTimeline tl =
          build_timeline(g, profile, std::max(c.devices, 1));
      for (int id = 0; id < g.size(); ++id) {
        const MeasuredOp& m = tl.ops[static_cast<std::size_t>(id)];
        ASSERT_EQ(m.id, id);
        EXPECT_GE(m.seconds(), 0.0);
        EXPECT_LE(m.end, tl.makespan + 1e-12);
      }
    }
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutorFuzz, ConcurrentRandomFailuresTerminateAcrossPoolSizes) {
  // Random DAGs with several ops replaced by throwers: whatever the shape
  // and pool size, the run must rethrow one of the planted errors (never a
  // mangled or foreign one), never hang, leave no stray enqueued tasks
  // behind, and leave the pool fully reusable. Seeds cover sparse and
  // dense graphs, and failer counts from 1 to 5.
  const std::vector<ExecFuzzCase> cases = {
      {401, 12, 2, 1}, {402, 33, 4, 3}, {403, 60, 4, 5},
      {404, 45, 8, 2}, {405, 80, 6, 6},
  };
  for (const auto& c : cases) {
    const int failers = 1 + static_cast<int>(c.seed % 5);
    for (std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool::reset_shared(threads);
      ExecFuzzBuffers buf;
      OpGraph g = random_exec_graph(c, buf);
      Rng rng(c.seed * 7919);
      for (int k = 0; k < failers; ++k) {
        const int victim = static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(g.size())));
        g.op(victim).fn = [victim] {
          throw TransientError("fuzz planted " + std::to_string(victim));
        };
      }
      const std::uint64_t before = ThreadPool::shared().tasks_enqueued();
      try {
        run_graph_parallel(g, ThreadPool::shared());
        FAIL() << "seed " << c.seed << " threads " << threads
               << ": planted failures did not surface";
      } catch (const TransientError& e) {
        EXPECT_NE(std::string(e.what()).find("fuzz planted"),
                  std::string::npos)
            << "seed " << c.seed;
      }
      EXPECT_LE(ThreadPool::shared().tasks_enqueued() - before,
                static_cast<std::uint64_t>(g.size()))
          << "seed " << c.seed << " threads " << threads;

      ExecFuzzBuffers clean_buf;
      OpGraph clean = random_exec_graph(c, clean_buf);
      EXPECT_NO_THROW(run_graph_parallel(clean, ThreadPool::shared()))
          << "pool unusable after failure, seed " << c.seed;
    }
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutorFuzz, PlantedMissingWarEdgeIsRejectedLoudly) {
  // Take a validator-clean random graph and append two writers of a fresh
  // shared slot on different devices with no ordering edge between them —
  // the exact shape of a forgotten WAR edge. The validator must reject
  // every such graph; re-adding the chain edge must make it pass again.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ExecFuzzCase c{200 + seed, static_cast<int>(seed % 12), 4, 2};
    ExecFuzzBuffers buf;
    OpGraph g = random_exec_graph(c, buf);
    static float shared_slot = 0.0f;

    Op first;
    first.label = "war_first";
    first.stream = static_cast<StreamKind>(seed % 3);
    first.devices = {0};
    first.fn = [] { shared_slot += 1.0f; };
    first.reads.push_back(access_floats(&shared_slot, 0, 1));
    first.writes.push_back(access_floats(&shared_slot, 0, 1));
    const int first_id = g.add(std::move(first));

    Op second;
    second.label = "war_second";
    second.stream = static_cast<StreamKind>((seed + 1) % 3);
    second.devices = {1 + static_cast<int>(seed % 3)};
    second.fn = [] { shared_slot *= 2.0f; };
    second.reads.push_back(access_floats(&shared_slot, 0, 1));
    second.writes.push_back(access_floats(&shared_slot, 0, 1));
    const int second_id = g.add(std::move(second));

    EXPECT_THROW(validate_hazards(g), CheckError) << "seed " << seed;
    g.op(second_id).deps.push_back(first_id);
    EXPECT_NO_THROW(validate_hazards(g)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mpipe::sim
