// The concurrent op-graph executor and its hazard validator: parallel
// execution must match the serial reference bitwise for any pool size,
// respect explicit deps and per-stream FIFO edges, reject graphs whose
// unordered ops touch overlapping memory (a planted missing WAR edge), and
// terminate + rethrow when a closure fails. Plus the probe contract:
// granularity-search probes are timing-shape-only and never touch the
// thread pool.

#include <gtest/gtest.h>

#include "common/check.h"

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/moe_layer.h"
#include "sim/cluster.h"
#include "sim/graph_executor.h"

namespace mpipe::sim {
namespace {

/// A pipeline-shaped DAG over a flat float buffer: op i sums its deps'
/// cells (+ its id) into cell i. Every op declares its accesses, so the
/// graph is validator-clean, and the final buffer contents are a complete
/// witness of execution order correctness.
struct CellGraph {
  OpGraph graph;
  std::vector<float> cells;

  int add_op(const std::string& label, StreamKind stream,
             std::vector<int> devices, std::vector<int> deps) {
    const int my_id = graph.size();
    Op op;
    op.label = label;
    op.stream = stream;
    op.devices = std::move(devices);
    op.base_seconds = 1e-6;
    op.deps = deps;
    float* base = cells.data();
    op.fn = [base, my_id, deps] {
      float acc = static_cast<float>(my_id + 1);
      for (int dep : deps) acc += base[dep] * 1.25f;
      base[my_id] = acc;
    };
    for (int dep : deps) {
      op.reads.push_back(access_floats(base, dep, 1));
    }
    op.writes.push_back(access_floats(base, my_id, 1));
    return graph.add(std::move(op));
  }
};

/// Builds a 3-device, 3-stream pipeline-ish DAG with cross-device joins.
CellGraph build_cell_graph() {
  CellGraph cg;
  cg.cells.assign(64, 0.0f);
  std::vector<int> layer_prev;
  for (int d = 0; d < 3; ++d) {
    layer_prev.push_back(cg.add_op("src" + std::to_string(d),
                                   StreamKind::kCompute, {d}, {}));
  }
  for (int step = 0; step < 4; ++step) {
    std::vector<int> layer;
    for (int d = 0; d < 3; ++d) {
      // Comm op joining this device's previous op with a neighbour's.
      const int join = cg.add_op(
          "x" + std::to_string(step) + "." + std::to_string(d),
          StreamKind::kComm, {d},
          {layer_prev[static_cast<std::size_t>(d)],
           layer_prev[static_cast<std::size_t>((d + 1) % 3)]});
      // Compute op consuming the join, plus a mem-stream op alongside.
      const int comp =
          cg.add_op("c" + std::to_string(step) + "." + std::to_string(d),
                    StreamKind::kCompute, {d}, {join});
      cg.add_op("m" + std::to_string(step) + "." + std::to_string(d),
                StreamKind::kMem, {d}, {join});
      layer.push_back(comp);
    }
    layer_prev = layer;
  }
  return cg;
}

TEST(GraphExecutor, ParallelMatchesSerialBitwiseAcrossPoolSizes) {
  Cluster cluster = Cluster::dgx_a100_pod(1, 3);
  CellGraph reference = build_cell_graph();
  cluster.run_functional(reference.graph, ExecutionPolicy::kSerial);

  for (std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool::reset_shared(threads);
    CellGraph parallel = build_cell_graph();
    cluster.run_functional(parallel.graph, ExecutionPolicy::kParallel);
    ASSERT_EQ(reference.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < reference.cells.size(); ++i) {
      // Bitwise, not approximate: EXPECT_EQ on floats.
      ASSERT_EQ(reference.cells[i], parallel.cells[i])
          << "cell " << i << " under " << threads << " workers";
    }
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutor, ZeroAndSingleOpGraphsRunUnderBothPolicies) {
  Cluster cluster = Cluster::dgx_a100_pod(1, 2);
  OpGraph empty;
  EXPECT_NO_THROW(cluster.run_functional(empty, ExecutionPolicy::kSerial));
  EXPECT_NO_THROW(cluster.run_functional(empty, ExecutionPolicy::kParallel));

  int runs = 0;
  OpGraph single;
  Op op;
  op.label = "only";
  op.devices = {0};
  op.fn = [&runs] { ++runs; };
  single.add(std::move(op));
  cluster.run_functional(single, ExecutionPolicy::kSerial);
  cluster.run_functional(single, ExecutionPolicy::kParallel);
  EXPECT_EQ(runs, 2);
}

TEST(GraphExecutor, StreamFifoEdgesOrderOpsWithoutExplicitDeps) {
  // Two closures on the same (device, stream) with no explicit dep: the
  // implicit FIFO edge must serialise them in enqueue order, every run.
  for (int round = 0; round < 20; ++round) {
    std::vector<int> sequence;
    std::mutex mu;
    OpGraph g;
    for (int i = 0; i < 6; ++i) {
      Op op;
      op.label = "f" + std::to_string(i);
      op.stream = StreamKind::kCompute;
      op.devices = {0};
      op.fn = [&sequence, &mu, i] {
        std::lock_guard<std::mutex> lock(mu);
        sequence.push_back(i);
      };
      // All ops write the shared sequence: the FIFO edges are what makes
      // that legal, and the validator must agree.
      op.reads.push_back(access_token(&sequence));
      op.writes.push_back(access_token(&sequence));
      g.add(std::move(op));
    }
    run_graph_parallel(g, ThreadPool::shared());
    ASSERT_EQ(sequence.size(), 6u);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(sequence[i], i);
  }
}

TEST(GraphExecutor, ValidatorRejectsMissingWarEdge) {
  // reader (dep on writer1) and writer2 reuse the same slot; without the
  // WAR edge reader -> writer2 the pair is unordered and must be rejected.
  float slot = 0.0f;
  auto build = [&slot](bool with_war_edge) {
    OpGraph g;
    Op w1;
    w1.label = "writer1";
    w1.stream = StreamKind::kComm;
    w1.devices = {0, 1};
    w1.fn = [&slot] { slot = 1.0f; };
    w1.writes.push_back(access_floats(&slot, 0, 1));
    const int w1_id = g.add(std::move(w1));

    Op r;
    r.label = "reader";
    r.stream = StreamKind::kCompute;
    r.devices = {0};
    r.deps = {w1_id};
    r.fn = [&slot] { (void)slot; };
    r.reads.push_back(access_floats(&slot, 0, 1));
    const int r_id = g.add(std::move(r));

    Op w2;
    w2.label = "writer2";
    w2.stream = StreamKind::kMem;
    w2.devices = {1};
    w2.deps = {w1_id};
    if (with_war_edge) w2.deps.push_back(r_id);
    w2.fn = [&slot] { slot = 2.0f; };
    w2.writes.push_back(access_floats(&slot, 0, 1));
    g.add(std::move(w2));
    return g;
  };

  EXPECT_NO_THROW(validate_hazards(build(/*with_war_edge=*/true)));
  try {
    validate_hazards(build(/*with_war_edge=*/false));
    FAIL() << "missing WAR edge must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("reader"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("writer2"), std::string::npos);
  }
}

TEST(GraphExecutor, ValidatorRejectsUndeclaredConcurrentClosure) {
  OpGraph g;
  int x = 0;
  for (int d = 0; d < 2; ++d) {
    Op op;
    op.label = "undeclared" + std::to_string(d);
    op.stream = StreamKind::kCompute;
    op.devices = {d};
    op.fn = [&x] { ++x; };  // no declared accesses
    g.add(std::move(op));
  }
  EXPECT_THROW(validate_hazards(g), CheckError);
}

TEST(GraphExecutor, ValidatorAcceptsDisjointConcurrentWrites) {
  OpGraph g;
  float cells[2] = {0.0f, 0.0f};
  for (int d = 0; d < 2; ++d) {
    Op op;
    op.label = "w" + std::to_string(d);
    op.stream = StreamKind::kCompute;
    op.devices = {d};
    op.fn = [&cells, d] { cells[d] = 1.0f; };
    op.writes.push_back(access_floats(cells, d, 1));
    g.add(std::move(op));
  }
  EXPECT_NO_THROW(validate_hazards(g));
}

TEST(GraphExecutor, ClosureExceptionPropagatesAndRunTerminates) {
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool::reset_shared(threads);
    OpGraph g;
    std::atomic<int> later_ran{0};
    Op boom;
    boom.label = "boom";
    boom.devices = {0};
    boom.fn = [] { throw std::runtime_error("op failed"); };
    const int boom_id = g.add(std::move(boom));
    // A long tail behind the failing op: the executor must still drain it
    // (closures skipped after cancellation) instead of hanging.
    int prev = boom_id;
    for (int i = 0; i < 10; ++i) {
      Op tail;
      tail.label = "tail" + std::to_string(i);
      tail.devices = {1};
      tail.deps = {prev};
      tail.fn = [&later_ran] { later_ran.fetch_add(1); };
      prev = g.add(std::move(tail));
    }
    EXPECT_THROW(run_graph_parallel(g, ThreadPool::shared()),
                 std::runtime_error);
    EXPECT_EQ(later_ran.load(), 0);
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutor, ConcurrentMultiOpFailureRethrowsExactlyOne) {
  // Several independent ops fail *simultaneously* (they rendezvous on an
  // atomic before throwing, so under multi-worker pools the failures race):
  // the executor must rethrow exactly one of the planted errors, never
  // hang, never run dependent ops, and leave the pool reusable. The
  // tasks_enqueued delta is checked against the op count so no cancelled
  // straggler task is left enqueued behind the run.
  for (std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool::reset_shared(threads);
    constexpr int kFailers = 3;
    OpGraph g;
    std::atomic<int> at_barrier{0};
    std::atomic<int> downstream_ran{0};
    std::vector<int> failer_ids;
    for (int i = 0; i < kFailers; ++i) {
      Op op;
      op.label = "fail" + std::to_string(i);
      op.devices = {i};
      op.fn = [&at_barrier, i] {
        at_barrier.fetch_add(1);
        // Rendezvous so the throws overlap when workers allow; bounded
        // spin so a single-worker pool (where ops run serially and the
        // count can never reach kFailers in op 0) still terminates.
        const std::int64_t until = ExecutionProfile::now_ns() + 10'000'000;
        while (at_barrier.load() < kFailers &&
               ExecutionProfile::now_ns() < until) {
        }
        throw TransientError("planted failure " + std::to_string(i));
      };
      failer_ids.push_back(g.add(std::move(op)));
    }
    for (int i = 0; i < kFailers; ++i) {
      Op tail;
      tail.label = "after" + std::to_string(i);
      tail.devices = {i};
      tail.deps = {failer_ids[static_cast<std::size_t>(i)]};
      tail.fn = [&downstream_ran] { downstream_ran.fetch_add(1); };
      g.add(std::move(tail));
    }

    const std::uint64_t before = ThreadPool::shared().tasks_enqueued();
    try {
      run_graph_parallel(g, ThreadPool::shared());
      FAIL() << "multi-failure graph must throw (threads=" << threads << ")";
    } catch (const TransientError& e) {
      // Exactly one of the planted errors, verbatim.
      EXPECT_NE(std::string(e.what()).find("planted failure"),
                std::string::npos);
    }
    const std::uint64_t enqueued =
        ThreadPool::shared().tasks_enqueued() - before;
    EXPECT_LE(enqueued, static_cast<std::uint64_t>(g.size()))
        << "cancelled run left stray tasks enqueued (threads=" << threads
        << ")";
    EXPECT_EQ(downstream_ran.load(), 0)
        << "dependent op ran after its producer failed";

    // The pool and executor must be fully functional after the failure.
    std::atomic<int> ok{0};
    OpGraph clean;
    Op op;
    op.label = "clean";
    op.devices = {0};
    op.fn = [&ok] { ok.fetch_add(1); };
    clean.add(std::move(op));
    EXPECT_NO_THROW(run_graph_parallel(clean, ThreadPool::shared()));
    EXPECT_EQ(ok.load(), 1);
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutorProfile, SerialProfiledTimelineIsGapFreeAndStreamOrdered) {
  // A profiled serial run executes ops back-to-back on one thread, so the
  // recorded intervals must be non-overlapping in recording order, every
  // op must land on worker 0, and each (device, stream) pair must see its
  // ops in the FIFO order the serial reference executes.
  CellGraph cg = build_cell_graph();
  ExecutionProfile profile;
  run_graph_serial(cg.graph, &profile);

  ASSERT_EQ(profile.size(), cg.graph.size());
  const std::vector<int> order = cg.graph.topo_order();
  std::int64_t prev_end = std::numeric_limits<std::int64_t>::min();
  for (int id : order) {
    const OpSample& s = profile.sample(id);
    ASSERT_TRUE(s.recorded()) << "op " << id;
    EXPECT_EQ(s.worker, 0) << "op " << id;
    EXPECT_LE(s.start_ns, s.end_ns) << "op " << id;
    // Gap-free single-thread execution: the next op's start is stamped
    // after the previous op's end.
    EXPECT_GE(s.start_ns, prev_end) << "op " << id;
    prev_end = s.end_ns;
  }

  const MeasuredTimeline tl = build_timeline(cg.graph, profile, 3);
  // Per-stream ordering: within one (device, stream) the measured starts
  // follow the FIFO enqueue order.
  std::map<std::pair<int, int>, double> last_start;
  for (const Op& op : cg.graph.ops()) {
    const MeasuredOp& m = tl.ops[static_cast<std::size_t>(op.id)];
    for (int device : op.devices) {
      auto key = std::make_pair(device, static_cast<int>(op.stream));
      auto it = last_start.find(key);
      if (it != last_start.end()) {
        EXPECT_GE(m.start, it->second)
            << "stream FIFO order violated for op " << op.label;
      }
      last_start[key] = m.start;
    }
  }
}

TEST(GraphExecutorProfile, MeasuredDurationsAccountForTheMakespan) {
  // With op bodies that dwarf the recording overhead (100us spins), the
  // serial timeline's per-op durations must sum to at least the lion's
  // share of the measured makespan, the critical path cannot exceed that
  // sum, and per-stream occupancy stays within [0, 1].
  auto spin = [] {
    const std::int64_t until = ExecutionProfile::now_ns() + 100'000;
    while (ExecutionProfile::now_ns() < until) {
    }
  };
  OpGraph g;
  float sink[4] = {};
  for (int i = 0; i < 4; ++i) {
    Op op;
    op.label = "spin" + std::to_string(i);
    op.stream = static_cast<StreamKind>(i % kNumStreamKinds);
    op.devices = {i % 2};
    op.fn = [spin, &sink, i] {
      spin();
      sink[i] = 1.0f;
    };
    op.writes.push_back(access_floats(sink, i, 1));
    g.add(std::move(op));
  }
  ExecutionProfile profile;
  run_graph_serial(g, &profile);
  const MeasuredTimeline tl = build_timeline(g, profile, 2);

  double duration_sum = 0.0;
  for (const MeasuredOp& m : tl.ops) duration_sum += m.seconds();
  EXPECT_GT(tl.makespan, 0.0);
  EXPECT_LE(duration_sum, tl.makespan * (1.0 + 1e-9));
  EXPECT_GE(duration_sum, tl.makespan * 0.9)
      << "recording gaps ate the timeline";
  EXPECT_LE(tl.critical_path_seconds, duration_sum * (1.0 + 1e-9));
  EXPECT_FALSE(tl.critical_path.empty());
  double busy_sum = 0.0;
  for (int d = 0; d < 2; ++d) {
    for (int k = 0; k < kNumStreamKinds; ++k) {
      const double occ = tl.stream_occupancy(d, static_cast<StreamKind>(k));
      EXPECT_GE(occ, 0.0);
      EXPECT_LE(occ, 1.0 + 1e-9);
      busy_sum += tl.busy(d, static_cast<StreamKind>(k));
    }
  }
  // Single-device ops: busy seconds partition the duration sum exactly.
  EXPECT_NEAR(busy_sum, duration_sum, duration_sum * 1e-9);
}

TEST(GraphExecutorProfile, ProfilingOffKeepsOutputsAndTaskCountsIdentical) {
  // The PR-4 contract with profiling off: bitwise identical results and
  // exactly the same pool-task footprint as a profiled run — recording
  // never enqueues work, and not recording never changes execution.
  ThreadPool::reset_shared(4);
  CellGraph reference = build_cell_graph();
  const std::uint64_t before_plain = ThreadPool::shared().tasks_enqueued();
  run_graph_parallel(reference.graph, ThreadPool::shared());
  const std::uint64_t plain_tasks =
      ThreadPool::shared().tasks_enqueued() - before_plain;

  CellGraph profiled = build_cell_graph();
  ExecutionProfile profile;
  const std::uint64_t before_prof = ThreadPool::shared().tasks_enqueued();
  run_graph_parallel(profiled.graph, ThreadPool::shared(), &profile);
  const std::uint64_t prof_tasks =
      ThreadPool::shared().tasks_enqueued() - before_prof;

  EXPECT_EQ(plain_tasks, prof_tasks);
  for (std::size_t i = 0; i < reference.cells.size(); ++i) {
    ASSERT_EQ(reference.cells[i], profiled.cells[i]) << "cell " << i;
  }
  for (int id = 0; id < profiled.graph.size(); ++id) {
    EXPECT_TRUE(profile.sample(id).recorded()) << "op " << id;
  }
  ThreadPool::reset_shared(0);
}

TEST(GraphExecutor, ProbePathsStayThreadAndAllocationQuiet) {
  // Granularity-search probes are timing-shape-only: even on a layer
  // configured for parallel execution they must never enqueue pool work
  // or materialise buffers. probe_step_seconds asserts the graphs carry
  // no closures; here we watch the pool's task counter across a full
  // adaptive search.
  Cluster cluster = Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions o;
  o.d_model = 64;
  o.d_hidden = 256;
  o.num_experts = 4;
  o.num_partitions = 0;  // adaptive: step_timing triggers probe trials
  o.candidate_partitions = {1, 2, 4};
  o.memory_reuse = false;
  o.parallel_execution = true;
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);

  const std::uint64_t before = ThreadPool::shared().tasks_enqueued();
  layer.step_timing(/*tokens_per_device=*/256);
  const std::uint64_t after = ThreadPool::shared().tasks_enqueued();
  EXPECT_EQ(before, after)
      << "probe/timing path enqueued work on the shared pool";
  EXPECT_GT(layer.searcher().stats().trials, 0u);
}

}  // namespace
}  // namespace mpipe::sim
