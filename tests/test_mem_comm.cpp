// Memory subsystem (tracker, allocator RAII, OOM, ring pools, staging) and
// the functional collectives (byte-exact movement, reductions).

#include <gtest/gtest.h>

#include "common/check.h"

#include "comm/all_to_all.h"
#include "comm/collectives.h"
#include "comm/p2p.h"
#include "common/units.h"
#include "mem/buffer_pool.h"
#include "mem/device_allocator.h"
#include "mem/host_staging.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

using mem::Category;

TEST(MemoryTracker, PeaksTrackConcurrentTotals) {
  mem::MemoryTracker t;
  t.allocate(Category::kActivation, 100);
  t.allocate(Category::kTempBuffer, 50);
  EXPECT_EQ(t.peak_total(), 150u);
  t.release(Category::kActivation, 100);
  t.allocate(Category::kTempBuffer, 60);
  // Peak of the sum (150) != sum of category peaks (100 + 110).
  EXPECT_EQ(t.peak_total(), 150u);
  EXPECT_EQ(t.peak(Category::kTempBuffer), 110u);
  EXPECT_EQ(t.current_total(), 110u);
}

TEST(MemoryTracker, UnderflowThrows) {
  mem::MemoryTracker t;
  t.allocate(Category::kComm, 10);
  EXPECT_THROW(t.release(Category::kComm, 20), CheckError);
  EXPECT_THROW(t.release(Category::kActivation, 1), CheckError);
}

TEST(MemoryTracker, ResetPeaksKeepsCurrent) {
  mem::MemoryTracker t;
  t.allocate(Category::kActivation, 100);
  t.release(Category::kActivation, 60);
  t.reset_peaks();
  EXPECT_EQ(t.peak(Category::kActivation), 40u);
  EXPECT_EQ(t.current(Category::kActivation), 40u);
}

TEST(DeviceAllocator, RaiiReleasesOnDestruction) {
  mem::DeviceAllocator alloc(0);
  {
    auto a = alloc.allocate(Category::kActivation, 100);
    EXPECT_EQ(alloc.tracker().current_total(), 100u);
    auto moved = std::move(a);
    EXPECT_EQ(alloc.tracker().current_total(), 100u);
  }
  EXPECT_EQ(alloc.tracker().current_total(), 0u);
  EXPECT_EQ(alloc.tracker().peak_total(), 100u);
}

TEST(DeviceAllocator, CapacityEnforced) {
  mem::DeviceAllocator alloc(0, 1000);
  auto a = alloc.allocate(Category::kActivation, 800);
  EXPECT_THROW(alloc.allocate(Category::kActivation, 300),
               mem::OutOfMemoryError);
  a.release();
  EXPECT_NO_THROW(alloc.allocate(Category::kActivation, 300));
}

TEST(DeviceAllocator, VirtualTensorsAccountWithoutStorage) {
  mem::DeviceAllocator alloc(0);
  auto t = alloc.alloc_tensor(Shape{1024, 1024}, Category::kActivation,
                              /*materialize=*/false);
  EXPECT_FALSE(t.tensor.defined());
  EXPECT_EQ(alloc.tracker().current_total(), 4u * 1024 * 1024);
}

TEST(BufferPool, SlotAliasingFollowsDepth) {
  mem::DeviceAllocator alloc(0);
  mem::BufferPool pool(alloc, "tdi", Shape{8, 4}, 2, Category::kActivation);
  EXPECT_TRUE(pool.aliases(0, 2));
  EXPECT_TRUE(pool.aliases(1, 3));
  EXPECT_FALSE(pool.aliases(0, 1));
  pool.slot(0).fill(7.0f);
  EXPECT_FLOAT_EQ(pool.slot(2).at(0, 0), 7.0f);  // same physical slot
  EXPECT_FLOAT_EQ(pool.slot(1).at(0, 0), 0.0f);
  EXPECT_EQ(pool.bytes(), 2u * 8 * 4 * 4);
}

TEST(BufferPool, AccountingOnlyPoolRefusesSlotAccess) {
  mem::DeviceAllocator alloc(0);
  mem::BufferPool pool(alloc, "d_tm", Shape{8, 4}, 1, Category::kTempBuffer,
                       /*materialize=*/false);
  EXPECT_EQ(alloc.tracker().current(Category::kTempBuffer), 8u * 4 * 4);
  EXPECT_THROW(pool.slot(0), CheckError);
}

TEST(HostStaging, RoundTripIsByteExact) {
  mem::HostStaging staging;
  Rng rng(4);
  Tensor t(Shape{5, 3});
  init_normal(t, rng, 1.0f);
  staging.store(1, "tdi:p0", t);
  EXPECT_TRUE(staging.contains(1, "tdi:p0"));
  EXPECT_FALSE(staging.contains(0, "tdi:p0"));
  Tensor back = staging.load(1, "tdi:p0");
  EXPECT_FLOAT_EQ(max_abs_diff(t, back), 0.0f);
  staging.drop(1, "tdi:p0");
  EXPECT_THROW(staging.load(1, "tdi:p0"), CheckError);
  EXPECT_EQ(staging.bytes_stored(), 0u);
}

TEST(HostStaging, CollisionThrowsUnlessOverwriteAllowed) {
  mem::HostStaging staging;
  staging.store(0, "k", Tensor(Shape{10}));
  // A silent overwrite used to mask double-stash bugs; a collision is now
  // loud unless the caller says replacement is deliberate.
  EXPECT_THROW(staging.store(0, "k", Tensor(Shape{20})), CheckError);
  EXPECT_EQ(staging.bytes_stored(), 40u);  // original entry untouched
  staging.store(0, "k", Tensor(Shape{20}), /*allow_overwrite=*/true);
  EXPECT_EQ(staging.bytes_stored(), 80u);  // byte accounting follows
  // Distinct keys and devices never collide.
  staging.store(0, "k2", Tensor(Shape{5}));
  staging.store(1, "k", Tensor(Shape{5}));
  EXPECT_EQ(staging.entries(), 3u);
  staging.clear();
  EXPECT_EQ(staging.entries(), 0u);
}

// ---- collectives -----------------------------------------------------------

TEST(CommAllToAll, SegmentsMoveBytesExactly) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  Rng rng(1);
  Tensor src0(Shape{4, 2}), src1(Shape{4, 2});
  init_normal(src0, rng, 1.0f);
  init_normal(src1, rng, 1.0f);
  Tensor dst0(Shape{4, 2}), dst1(Shape{4, 2});

  std::vector<comm::RowSegment> segs;
  // Device 0 keeps rows 0-1, sends rows 2-3 to device 1; device 1 mirrors.
  segs.push_back({0, &src0, 0, 0, &dst0, 0, 2});
  segs.push_back({0, &src0, 2, 1, &dst1, 0, 2});
  segs.push_back({1, &src1, 0, 0, &dst0, 2, 2});
  segs.push_back({1, &src1, 2, 1, &dst1, 2, 2});
  EXPECT_EQ(comm::max_bytes_sent(segs), 2u * 2 * 4);

  sim::OpGraph g;
  comm::alltoall(g, world, segs, "a2a", {});
  cluster.run(g);
  EXPECT_FLOAT_EQ(max_abs_diff(dst0.slice_rows(0, 2), src0.slice_rows(0, 2)),
                  0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(dst1.slice_rows(0, 2), src0.slice_rows(2, 4)),
                  0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(dst0.slice_rows(2, 4), src1.slice_rows(0, 2)),
                  0.0f);
}

TEST(CommAllToAll, MaxBytesSentExcludesSelfSegments) {
  Tensor src(Shape{8, 4}), dst(Shape{8, 4});
  std::vector<comm::RowSegment> segs;
  // Local copies (src_device == dst_device) are free regardless of size.
  segs.push_back({0, &src, 0, 0, &dst, 0, 8});
  EXPECT_EQ(comm::max_bytes_sent(segs), 0u);
  // Remote rows count against the sender; busiest sender wins.
  segs.push_back({0, &src, 0, 1, &dst, 0, 2});  // dev 0 sends 2*4*4 = 32 B
  segs.push_back({1, &src, 0, 2, &dst, 0, 3});  // dev 1 sends 3*4*4 = 48 B
  segs.push_back({1, &src, 3, 0, &dst, 3, 2});  // dev 1 total 80 B
  EXPECT_EQ(comm::max_bytes_sent(segs), 5u * 4 * 4);
  EXPECT_EQ(comm::max_bytes_sent({}), 0u);
}

TEST(CommAllToAll, DurationDegenerateGroupPaysOnlyLaunchLatency) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  comm::ProcessGroup solo(cluster, {0});
  const double launch =
      cluster.cost_model().config().comm_launch_latency;
  // A one-rank "exchange" moves nothing over links, whatever the payload.
  EXPECT_DOUBLE_EQ(comm::alltoall_duration(solo, 0), launch);
  EXPECT_DOUBLE_EQ(comm::alltoall_duration(solo, 64 * MiB), launch);
}

TEST(CommAllToAll, DurationCompensatesPayloadFactor) {
  // alltoall_seconds models a symmetric exchange of bytes_per_device and
  // applies a (P-1)/P on-wire factor; alltoall_duration takes the payload
  // the busiest rank actually sends (self share already excluded) and
  // must invert that factor — the modelled time is launch + payload/bw,
  // independent of the group size used to get there.
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  const double launch =
      cluster.cost_model().config().comm_launch_latency;
  for (int p = 2; p <= 4; ++p) {
    std::vector<int> devices;
    for (int d = 0; d < p; ++d) devices.push_back(d);
    comm::ProcessGroup group(cluster, devices);
    const double bw = cluster.topology().alltoall_bandwidth(devices);
    const std::uint64_t payload = 6 * MiB;  // divisible by 2 and 3
    const double expected = launch + static_cast<double>(payload) / bw;
    EXPECT_NEAR(comm::alltoall_duration(group, payload), expected,
                expected * 1e-9)
        << "group size " << p;
  }
}

TEST(CommAllToAll, TimedOpCarriesModeledDuration) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  sim::OpGraph g;
  const int id = comm::alltoall_timed(g, world, 3 * MiB, "a2a", {});
  EXPECT_DOUBLE_EQ(g.op(id).base_seconds,
                   comm::alltoall_duration(world, 3 * MiB));
  EXPECT_GT(g.op(id).base_seconds,
            cluster.cost_model().config().comm_launch_latency);
}

TEST(CommAllToAll, CalibratedCurveDeratesSmallExchanges) {
  // With a measured bandwidth curve installed, an exchange far below the
  // sweep's saturation point pays proportionally more per byte than one at
  // the top — the analytic model charges both the full link rate.
  sim::CommBandwidthCurve curve;
  curve.bytes = {4 * KiB, 1 * MiB, 64 * MiB};
  curve.seconds = {10e-6, 60e-6, 3000e-6};  // 0.4 -> 17 -> 22 GB/s
  sim::ClusterConfig config;
  config.topology.num_devices = 4;
  config.topology.devices_per_node = 4;
  config.cost.comm_curve = curve;
  sim::Cluster cluster(config);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);

  sim::ClusterConfig analytic_config = config;
  analytic_config.cost.comm_curve = {};
  sim::Cluster analytic(analytic_config);
  comm::ProcessGroup analytic_world = comm::ProcessGroup::world(analytic);

  const double launch = config.cost.comm_launch_latency;
  const double small = comm::alltoall_duration(world, 8 * KiB) - launch;
  const double big = comm::alltoall_duration(world, 32 * MiB) - launch;
  const double small_analytic =
      comm::alltoall_duration(analytic_world, 8 * KiB) - launch;
  const double big_analytic =
      comm::alltoall_duration(analytic_world, 32 * MiB) - launch;
  // Analytic: seconds scale exactly with bytes. Calibrated: the small
  // exchange runs at a fraction of the big one's effective bandwidth.
  EXPECT_NEAR(big_analytic / small_analytic, 4096.0, 1.0);
  EXPECT_LT(big / small, 2048.0);
  // At the curve's best-rate knot the calibrated model converges to the
  // analytic one (efficiency 1 by construction).
  EXPECT_GT(big / big_analytic, 0.99);
}

TEST(CommAllReduce, SumsAcrossRanks) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 3);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  std::vector<Tensor> grads;
  for (int d = 0; d < 3; ++d) {
    grads.push_back(Tensor::full(Shape{4}, static_cast<float>(d + 1)));
  }
  sim::OpGraph g;
  comm::allreduce_sum(g, world, {&grads[0], &grads[1], &grads[2]}, "ar", {});
  cluster.run(g);
  for (int d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(grads[static_cast<std::size_t>(d)].at(0), 6.0f);
  }
}

TEST(CommBroadcast, CopiesRootToAll) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 3);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  std::vector<Tensor> weights;
  for (int d = 0; d < 3; ++d) {
    weights.push_back(Tensor::full(Shape{4}, static_cast<float>(d)));
  }
  sim::OpGraph g;
  comm::broadcast(g, world, 1, {&weights[0], &weights[1], &weights[2]},
                  "bc", {});
  cluster.run(g);
  for (int d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(weights[static_cast<std::size_t>(d)].at(2), 1.0f);
  }
}

TEST(CommAllGather, ConcatenatesRows) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  Tensor in0 = Tensor::full(Shape{1, 2}, 1.0f);
  Tensor in1 = Tensor::full(Shape{2, 2}, 2.0f);
  Tensor out0(Shape{3, 2}), out1(Shape{3, 2});
  sim::OpGraph g;
  comm::allgather_rows(g, world, {&in0, &in1}, {&out0, &out1}, "ag", {});
  cluster.run(g);
  EXPECT_FLOAT_EQ(out0.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out0.at(2, 1), 2.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(out0, out1), 0.0f);
}

TEST(CommP2P, MultiSegmentTransfer) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 2);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  Rng rng(3);
  Tensor src(Shape{6, 2});
  init_normal(src, rng, 1.0f);
  Tensor dst(Shape{6, 2});
  std::vector<comm::RowSegment> segs;
  segs.push_back({0, &src, 0, 1, &dst, 4, 2});
  segs.push_back({0, &src, 4, 1, &dst, 0, 2});
  sim::OpGraph g;
  comm::send_recv_multi(g, world, segs, "p2p", {});
  cluster.run(g);
  EXPECT_FLOAT_EQ(max_abs_diff(dst.slice_rows(4, 6), src.slice_rows(0, 2)),
                  0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(dst.slice_rows(0, 2), src.slice_rows(4, 6)),
                  0.0f);
}

TEST(CommP2P, MismatchedEndpointsRejected) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 3);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  Tensor a(Shape{2, 2}), b(Shape{2, 2});
  std::vector<comm::RowSegment> segs;
  segs.push_back({0, &a, 0, 1, &b, 0, 1});
  segs.push_back({0, &a, 1, 2, &b, 1, 1});  // different dst
  sim::OpGraph g;
  EXPECT_THROW(comm::send_recv_multi(g, world, segs, "bad", {}), CheckError);
}

TEST(ProcessGroup, RankMappingAndValidation) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  comm::ProcessGroup pg(cluster, {2, 0, 3});
  EXPECT_EQ(pg.size(), 3);
  EXPECT_EQ(pg.device_of_rank(0), 2);
  EXPECT_EQ(pg.rank_of_device(3), 2);
  EXPECT_THROW(pg.rank_of_device(1), CheckError);
  EXPECT_THROW(comm::ProcessGroup(cluster, {0, 0}), CheckError);
  EXPECT_THROW(comm::ProcessGroup(cluster, {9}), CheckError);
}

}  // namespace
}  // namespace mpipe
