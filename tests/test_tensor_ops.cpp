// GEMM variants against a naive reference (parameterized size sweep) and
// finite-difference checks for every activation / row-wise op backward.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "common/check.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

struct GemmSize {
  std::int64_t m, k, n;
};

class GemmSweep : public testing::TestWithParam<GemmSize> {};

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  Tensor a(Shape{m, k}), b(Shape{k, n});
  init_normal(a, rng, 1.0f);
  init_normal(b, rng, 1.0f);
  Tensor expected = naive_matmul(a, b);
  Tensor c(Shape{m, n});
  gemm(a, b, c);
  EXPECT_LT(max_abs_diff(c, expected), 1e-3f);
}

TEST_P(GemmSweep, TransposedVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  Tensor a(Shape{m, k}), bt(Shape{n, k}), at(Shape{k, m}), b(Shape{k, n});
  init_normal(a, rng, 1.0f);
  init_normal(bt, rng, 1.0f);
  init_normal(at, rng, 1.0f);
  init_normal(b, rng, 1.0f);

  // gemm_nt(a, bt) == a @ bt^T
  Tensor c1(Shape{m, n});
  gemm_nt(a, bt, c1);
  Tensor bt_T(Shape{k, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < k; ++j) bt_T.at(j, i) = bt.at(i, j);
  }
  EXPECT_LT(max_abs_diff(c1, naive_matmul(a, bt_T)), 1e-3f);

  // gemm_tn(at, b) == at^T @ b
  Tensor c2(Shape{m, n});
  gemm_tn(at, b, c2);
  Tensor at_T(Shape{m, k});
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < m; ++j) at_T.at(j, i) = at.at(i, j);
  }
  EXPECT_LT(max_abs_diff(c2, naive_matmul(at_T, b)), 1e-3f);
}

TEST_P(GemmSweep, AccumulateAddsOntoC) {
  const auto [m, k, n] = GetParam();
  Rng rng(11);
  Tensor a(Shape{m, k}), b(Shape{k, n});
  init_normal(a, rng, 1.0f);
  init_normal(b, rng, 1.0f);
  Tensor c = Tensor::full(Shape{m, n}, 1.0f);
  Tensor expected = naive_matmul(a, b);
  gemm(a, b, c, /*accumulate=*/true);
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c.at(i), expected.at(i) + 1.0f, 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSweep,
    testing::Values(GemmSize{1, 1, 1}, GemmSize{3, 5, 7},
                    GemmSize{16, 16, 16}, GemmSize{65, 129, 33},
                    GemmSize{128, 64, 130}, GemmSize{1, 300, 2},
                    GemmSize{200, 1, 200}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n);
    });

TEST(GemmErrors, ShapeMismatchesThrow) {
  Tensor a(Shape{2, 3}), b(Shape{4, 5}), c(Shape{2, 5});
  EXPECT_THROW(gemm(a, b, c), CheckError);
  Tensor b2(Shape{3, 5}), c2(Shape{3, 5});
  EXPECT_THROW(gemm(a, b2, c2), CheckError);
}

TEST(GemmFlops, Formula) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48u);
  EXPECT_EQ(gemm_flops(1, 1, 1), 2u);
}

// ---- finite-difference helpers ---------------------------------------------

template <typename Fwd, typename Bwd>
void check_elementwise_grad(Fwd fwd, Bwd bwd, float x0) {
  Tensor x = Tensor::full(Shape{1}, x0);
  Tensor y = fwd(x);
  Tensor dy = Tensor::full(y.shape(), 1.0f);
  Tensor dx = bwd(dy, x);
  const float h = 1e-3f;
  Tensor xp = Tensor::full(Shape{1}, x0 + h);
  Tensor xm = Tensor::full(Shape{1}, x0 - h);
  const float numeric = (fwd(xp).at(0) - fwd(xm).at(0)) / (2 * h);
  EXPECT_NEAR(dx.at(0), numeric, 5e-3f) << "at x=" << x0;
}

class ActivationGrad : public testing::TestWithParam<float> {};

TEST_P(ActivationGrad, ReluFiniteDifference) {
  check_elementwise_grad([](const Tensor& x) { return relu(x); },
                         [](const Tensor& dy, const Tensor& x) {
                           return relu_backward(dy, x);
                         },
                         GetParam());
}

TEST_P(ActivationGrad, GeluFiniteDifference) {
  check_elementwise_grad([](const Tensor& x) { return gelu(x); },
                         [](const Tensor& dy, const Tensor& x) {
                           return gelu_backward(dy, x);
                         },
                         GetParam());
}

INSTANTIATE_TEST_SUITE_P(Points, ActivationGrad,
                         testing::Values(-2.0f, -0.5f, 0.3f, 1.0f, 3.0f));

TEST(SoftmaxRows, RowsSumToOneAndOrderPreserved) {
  Rng rng(5);
  Tensor x(Shape{6, 9});
  init_normal(x, rng, 2.0f);
  Tensor y = softmax_rows(x);
  for (std::int64_t r = 0; r < 6; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 9; ++c) sum += y.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  const auto arg_x = argmax_rows(x);
  const auto arg_y = argmax_rows(y);
  EXPECT_EQ(arg_x, arg_y);
}

TEST(SoftmaxRows, NumericallyStableForLargeLogits) {
  Tensor x(Shape{1, 3});
  x.at(0, 0) = 1000.0f;
  x.at(0, 1) = 999.0f;
  x.at(0, 2) = -1000.0f;
  Tensor y = softmax_rows(x);
  EXPECT_GT(y.at(0, 0), y.at(0, 1));
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1) + y.at(0, 2), 1.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
}

TEST(SoftmaxRows, BackwardFiniteDifference) {
  Rng rng(8);
  Tensor x(Shape{2, 4});
  init_normal(x, rng, 1.0f);
  Tensor y = softmax_rows(x);
  Tensor dy(Shape{2, 4});
  init_normal(dy, rng, 1.0f);
  Tensor dx = softmax_rows_backward(dy, y);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < 8; ++i) {
    Tensor xp = x.clone();
    xp.at(i) += h;
    Tensor xm = x.clone();
    xm.at(i) -= h;
    double fp = 0.0, fm = 0.0;
    Tensor yp = softmax_rows(xp), ym = softmax_rows(xm);
    for (std::int64_t j = 0; j < 8; ++j) {
      fp += static_cast<double>(dy.at(j)) * yp.at(j);
      fm += static_cast<double>(dy.at(j)) * ym.at(j);
    }
    EXPECT_NEAR(dx.at(i), (fp - fm) / (2 * h), 5e-3) << "coordinate " << i;
  }
}

TEST(BiasOps, AddAndBackward) {
  Tensor x(Shape{3, 2});
  Tensor bias(Shape{2});
  bias.at(0) = 1.0f;
  bias.at(1) = -2.0f;
  add_bias_(x, bias);
  EXPECT_FLOAT_EQ(x.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(0, 1), -2.0f);
  Tensor dy = Tensor::full(Shape{3, 2}, 2.0f);
  Tensor db = bias_backward(dy);
  EXPECT_FLOAT_EQ(db.at(0), 6.0f);
  EXPECT_FLOAT_EQ(db.at(1), 6.0f);
}

TEST(RowScale, ScalesEachRow) {
  Tensor x = Tensor::full(Shape{2, 3}, 1.0f);
  scale_rows_(x, {2.0f, 0.5f});
  EXPECT_FLOAT_EQ(x.at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 0.5f);
  EXPECT_THROW(scale_rows_(x, {1.0f}), CheckError);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor pred = Tensor::full(Shape{2, 2}, 2.0f);
  Tensor target = Tensor::full(Shape{2, 2}, 1.0f);
  EXPECT_NEAR(mse_loss(pred, target), 1.0, 1e-6);
  Tensor g = mse_loss_grad(pred, target);
  EXPECT_NEAR(g.at(0), 2.0 / 4.0, 1e-6);

  const float h = 1e-3f;
  Tensor p2 = pred.clone();
  p2.at(3) += h;
  const double numeric = (mse_loss(p2, target) - mse_loss(pred, target)) / h;
  EXPECT_NEAR(g.at(3), numeric, 1e-3);
}

TEST(ElementwiseOps, AxpyAndMul) {
  Tensor a = Tensor::full(Shape{3}, 1.0f);
  Tensor b = Tensor::full(Shape{3}, 2.0f);
  axpy_(a, 3.0f, b);
  EXPECT_FLOAT_EQ(a.at(0), 7.0f);
  Tensor c = mul(a, b);
  EXPECT_FLOAT_EQ(c.at(1), 14.0f);
  Tensor d = scale(b, -1.0f);
  EXPECT_FLOAT_EQ(d.at(2), -2.0f);
}

}  // namespace
}  // namespace mpipe
