// Dispatch-plan invariants, parameterized over devices × experts ×
// partitions: conservation of tokens, offset consistency, expert-major
// receive layout, and synthetic-plan balance/skew.

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/rng.h"
#include "moe/dispatcher.h"

namespace mpipe::moe {
namespace {

using mpipe::CheckError;

struct PlanCase {
  int devices;
  int experts_per_device;
  int partitions;
  std::int64_t tokens;
};

class DispatcherPlan : public testing::TestWithParam<PlanCase> {
 protected:
  DispatchPlan make_plan() {
    const auto& c = GetParam();
    Rng rng(c.devices * 100 + c.partitions);
    const int num_experts = c.devices * c.experts_per_device;
    std::vector<std::vector<std::int64_t>> expert_of(
        static_cast<std::size_t>(c.devices));
    for (auto& v : expert_of) {
      for (std::int64_t t = 0; t < c.tokens; ++t) {
        v.push_back(static_cast<std::int64_t>(
            rng.uniform_index(static_cast<std::uint64_t>(num_experts))));
      }
    }
    expert_of_ = expert_of;
    return Dispatcher::build(expert_of, c.devices, c.experts_per_device,
                             c.partitions);
  }

  std::vector<std::vector<std::int64_t>> expert_of_;
};

TEST_P(DispatcherPlan, ChunksCoverAllTokensExactlyOnce) {
  const auto plan = make_plan();
  const auto& c = GetParam();
  std::int64_t covered = 0;
  for (const auto& part : plan.parts) {
    EXPECT_EQ(part.chunk_begin, covered);
    covered += part.chunk_rows;
  }
  EXPECT_EQ(covered, c.tokens);
}

TEST_P(DispatcherPlan, SendCountsConserveTokens) {
  const auto plan = make_plan();
  const auto& c = GetParam();
  for (const auto& part : plan.parts) {
    for (int d = 0; d < c.devices; ++d) {
      const auto& routing = part.src[static_cast<std::size_t>(d)];
      std::int64_t sent = 0;
      for (std::int64_t cnt : routing.send_counts) sent += cnt;
      EXPECT_EQ(sent, part.chunk_rows);
      EXPECT_EQ(static_cast<std::int64_t>(routing.order.size()),
                part.chunk_rows);
    }
    // Receive totals match the sum of sends.
    std::int64_t total_sent = 0, total_recv = 0;
    for (int d = 0; d < c.devices; ++d) {
      total_recv += part.recv_rows[static_cast<std::size_t>(d)];
      for (std::int64_t cnt :
           part.src[static_cast<std::size_t>(d)].send_counts) {
        total_sent += cnt;
      }
    }
    EXPECT_EQ(total_sent, total_recv);
  }
}

TEST_P(DispatcherPlan, OrderIsSortedByExpertAndCoversChunk) {
  const auto plan = make_plan();
  const auto& c = GetParam();
  for (const auto& part : plan.parts) {
    for (int d = 0; d < c.devices; ++d) {
      const auto& routing = part.src[static_cast<std::size_t>(d)];
      const auto& experts = expert_of_[static_cast<std::size_t>(d)];
      for (std::size_t i = 1; i < routing.order.size(); ++i) {
        EXPECT_LE(experts[static_cast<std::size_t>(routing.order[i - 1])],
                  experts[static_cast<std::size_t>(routing.order[i])]);
      }
      for (std::int64_t row : routing.order) {
        EXPECT_GE(row, part.chunk_begin);
        EXPECT_LT(row, part.chunk_begin + part.chunk_rows);
      }
    }
  }
}

TEST_P(DispatcherPlan, ExpertSpansPartitionTheReceiveBuffer) {
  const auto plan = make_plan();
  const auto& c = GetParam();
  for (const auto& part : plan.parts) {
    for (int d = 0; d < c.devices; ++d) {
      std::vector<bool> seen(
          static_cast<std::size_t>(part.recv_rows[static_cast<std::size_t>(
              d)]),
          false);
      for (const auto& spans :
           part.expert_spans[static_cast<std::size_t>(d)]) {
        for (const RowSpan& s : spans) {
          ASSERT_GT(s.count, 0) << "empty spans must be omitted";
          ASSERT_GE(s.offset, 0);
          ASSERT_LE(s.offset + s.count,
                    part.recv_rows[static_cast<std::size_t>(d)]);
          for (std::int64_t r = s.offset; r < s.offset + s.count; ++r) {
            EXPECT_FALSE(seen[static_cast<std::size_t>(r)])
                << "row assigned to two experts";
            seen[static_cast<std::size_t>(r)] = true;
          }
        }
      }
      for (bool s : seen) EXPECT_TRUE(s) << "receive row not owned";
    }
  }
}

TEST_P(DispatcherPlan, RecvOffsetsArePrefixSums) {
  const auto plan = make_plan();
  const auto& c = GetParam();
  for (const auto& part : plan.parts) {
    for (int dst = 0; dst < c.devices; ++dst) {
      std::int64_t expected = 0;
      for (int src = 0; src < c.devices; ++src) {
        EXPECT_EQ(part.recv_offset[static_cast<std::size_t>(dst)]
                                  [static_cast<std::size_t>(src)],
                  expected);
        expected += part.src[static_cast<std::size_t>(src)]
                        .send_counts[static_cast<std::size_t>(dst)];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DispatcherPlan,
    testing::Values(PlanCase{1, 1, 1, 8}, PlanCase{2, 1, 1, 16},
                    PlanCase{2, 4, 2, 17}, PlanCase{4, 1, 4, 64},
                    PlanCase{4, 2, 3, 50}, PlanCase{8, 8, 8, 128},
                    PlanCase{3, 5, 2, 31}, PlanCase{4, 16, 5, 19}),
    [](const auto& info) {
      return "P" + std::to_string(info.param.devices) + "e" +
             std::to_string(info.param.experts_per_device) + "n" +
             std::to_string(info.param.partitions) + "B" +
             std::to_string(info.param.tokens);
    });

TEST(DispatcherChunks, RemainderSpreadOverLeadingChunks) {
  const auto sizes = Dispatcher::chunk_sizes(10, 4);
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{3, 3, 2, 2}));
  EXPECT_EQ(Dispatcher::chunk_sizes(0, 3),
            (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_THROW(Dispatcher::chunk_sizes(-1, 2), CheckError);
}

TEST(DispatcherSynthetic, BalancedCountsAndMaxRows) {
  const auto plan = Dispatcher::synthetic(64, 4, 1, 2);
  EXPECT_TRUE(plan.synthetic);
  for (const auto& part : plan.parts) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(part.recv_rows[static_cast<std::size_t>(d)], 32);
    }
  }
  EXPECT_EQ(plan.max_recv_rows, 32);
}

TEST(DispatcherSynthetic, SkewConcentratesOnDeviceZero) {
  const auto plan = Dispatcher::synthetic(1024, 8, 1, 1, 0.3);
  const auto& part = plan.parts[0];
  EXPECT_GT(part.recv_rows[0], part.recv_rows[1] * 2);
  // All tokens still accounted for.
  std::int64_t total = 0;
  for (int d = 0; d < 8; ++d) {
    total += part.recv_rows[static_cast<std::size_t>(d)];
  }
  EXPECT_EQ(total, 1024 * 8);
  EXPECT_THROW(Dispatcher::synthetic(64, 4, 1, 1, 1.5), CheckError);
}

TEST(DispatcherValidation, RejectsBadExpertIds) {
  std::vector<std::vector<std::int64_t>> expert_of = {{0, 5}, {1, 2}};
  EXPECT_THROW(Dispatcher::build(expert_of, 2, 2, 1), CheckError);
  std::vector<std::vector<std::int64_t>> ragged = {{0, 1}, {1}};
  EXPECT_THROW(Dispatcher::build(ragged, 2, 2, 1), CheckError);
}

}  // namespace
}  // namespace mpipe::moe
