// Training runtime: Adam math vs a hand-computed step, end-to-end loss
// descent under every strategy, dynamic batch sizes exercising Algorithm 1
// inside a real training loop, and the common utility layer.

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "runtime/adam.h"
#include "tensor/random_init.h"
#include "runtime/model_zoo.h"
#include "runtime/trainer.h"
#include "runtime/workload.h"

namespace mpipe {
namespace {

TEST(Adam, MatchesHandComputedFirstStep) {
  Tensor w = Tensor::full(Shape{1}, 1.0f);
  Tensor g = Tensor::full(Shape{1}, 0.5f);
  runtime::AdamOptions opt;
  opt.lr = 0.1f;
  runtime::Adam adam({&w}, {&g}, opt);
  adam.step();
  // Bias-corrected first step: m_hat = g, v_hat = g^2 -> update = lr * g /
  // (|g| + eps) ~= lr.
  EXPECT_NEAR(w.at(0), 1.0f - 0.1f, 1e-4f);
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_EQ(adam.state_bytes(), 2u * 4);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Tensor w = Tensor::full(Shape{1}, 1.0f);
  Tensor g = Tensor::full(Shape{1}, 0.0f);
  runtime::AdamOptions opt;
  opt.lr = 0.1f;
  opt.weight_decay = 0.1f;
  runtime::Adam adam({&w}, {&g}, opt);
  adam.step();
  EXPECT_LT(w.at(0), 1.0f);
}

TEST(Adam, ValidatesBindings) {
  Tensor w(Shape{2});
  Tensor g(Shape{3});
  EXPECT_THROW(runtime::Adam({&w}, {&g}), CheckError);
  EXPECT_THROW(runtime::Adam({&w}, {}), CheckError);
}

TEST(Adam, VectorizedStepMatchesFp64Reference) {
  // The 8-lane step must stay numerically equivalent to the scalar Adam
  // recurrence on ragged sizes straddling the lane width (1, 7, 8, 9, ...)
  // — including the sizes whose tails exercise the scalar remainder loop.
  Rng rng(21);
  for (std::int64_t n : {std::int64_t{1}, std::int64_t{7}, std::int64_t{8},
                         std::int64_t{9}, std::int64_t{63}, std::int64_t{64},
                         std::int64_t{1000}, std::int64_t{8195}}) {
    Tensor w(Shape{n}), g(Shape{n});
    init_normal(w, rng);
    init_normal(g, rng);
    std::vector<double> p(static_cast<std::size_t>(n));
    for (std::int64_t k = 0; k < n; ++k) {
      p[static_cast<std::size_t>(k)] = w.at(k);
    }
    runtime::AdamOptions opt;
    opt.lr = 1e-2f;
    opt.weight_decay = 0.05f;
    runtime::Adam adam({&w}, {&g}, opt);
    std::vector<double> m(static_cast<std::size_t>(n), 0.0);
    std::vector<double> v(static_cast<std::size_t>(n), 0.0);
    for (int step = 1; step <= 3; ++step) {
      adam.step();
      const double bc1 = 1.0 - std::pow(static_cast<double>(opt.beta1), step);
      const double bc2 = 1.0 - std::pow(static_cast<double>(opt.beta2), step);
      for (std::int64_t k = 0; k < n; ++k) {
        const std::size_t i = static_cast<std::size_t>(k);
        const double grad = static_cast<double>(g.at(k)) +
                            static_cast<double>(opt.weight_decay) * p[i];
        m[i] = opt.beta1 * m[i] + (1.0 - opt.beta1) * grad;
        v[i] = opt.beta2 * v[i] + (1.0 - opt.beta2) * grad * grad;
        p[i] -= opt.lr * (m[i] / bc1) /
                (std::sqrt(v[i] / bc2) + static_cast<double>(opt.eps));
        EXPECT_NEAR(w.at(k), p[i], 5e-4)
            << "n=" << n << " step=" << step << " k=" << k;
      }
    }
  }
}

struct TrainCase {
  int partitions;
  bool reuse;
  core::ReuseStrategy strategy;
};

class TrainingDescent : public testing::TestWithParam<TrainCase> {};

TEST_P(TrainingDescent, LossDecreasesOverSteps) {
  const auto& c = GetParam();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 32;
  o.num_experts = 4;
  o.num_partitions = c.partitions;
  o.memory_reuse = c.reuse;
  if (c.reuse) o.strategy = c.strategy;
  o.seed = 31;
  core::MoELayer layer(cluster, o);

  runtime::TrainerOptions topt;
  topt.workload.d_model = 16;
  topt.workload.tokens_per_device = 32;
  topt.workload.num_devices = 4;
  topt.workload.seed = 5;
  topt.adam.lr = 3e-3f;
  topt.steps = 12;
  topt.load_calibration = false;  // hermetic: no cwd-dependent curves
  runtime::Trainer trainer(layer, topt);
  const auto& metrics = trainer.run();
  EXPECT_LT(metrics.last_loss(), metrics.first_loss() * 0.9)
      << metrics.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TrainingDescent,
    testing::Values(TrainCase{1, false, core::ReuseStrategy::kNone},
                    TrainCase{2, false, core::ReuseStrategy::kNone},
                    TrainCase{2, true, core::ReuseStrategy::kS1},
                    TrainCase{4, true, core::ReuseStrategy::kS4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.partitions) +
             (info.param.reuse ? core::to_string(info.param.strategy)
                               : std::string("raw"));
    });

TEST(TrainingDeterminism, AdamStepBitwiseAcrossThreadCounts) {
  // The vectorized Adam step fans out over the shared pool, but the
  // update is elementwise with lane paths pinned to absolute positions —
  // so the resulting parameters must be bit-identical for any pool size,
  // including sizes whose chunk layouts differ (1 vs 4 vs 8 workers over
  // a tensor big enough for >12 chunks at the 8192 grain).
  auto run_params = [](std::size_t threads) {
    ThreadPool::reset_shared(threads);
    Rng rng(55);
    const std::int64_t n = 100003;  // ragged: exercises the scalar tail
    Tensor w(Shape{n}), g(Shape{n});
    init_normal(w, rng);
    init_normal(g, rng);
    runtime::AdamOptions opt;
    opt.weight_decay = 0.01f;
    runtime::Adam adam({&w}, {&g}, opt);
    for (int i = 0; i < 3; ++i) adam.step();
    return std::vector<float>(w.data(), w.data() + n);
  };
  const auto p1 = run_params(1);
  const auto p4 = run_params(4);
  const auto p8 = run_params(8);
  ThreadPool::reset_shared(0);  // restore the machine-sized pool
  ASSERT_EQ(p1.size(), p4.size());
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    // Bitwise, not approximate: EXPECT_EQ on floats.
    ASSERT_EQ(p1[i], p4[i]) << "element " << i;
    ASSERT_EQ(p1[i], p8[i]) << "element " << i;
  }
}

TEST(TrainingDeterminism, BitwiseIdenticalLossesAcrossThreadCounts) {
  // The GEMM tile grid, the bias-grad epilogue's column-range ownership,
  // the row-parallel softmax/layer-norm kernels, the span gather/scatter
  // fan-out, the vectorized Adam step, and the concurrent op-graph
  // executor are all designed so results never depend on how work lands
  // on workers. Lock that in: identical seeds must give bit-identical
  // losses under serial and parallel graph execution, each at 1, 4 and 8
  // pool threads. Sizes are chosen so the FFN GEMMs span multiple tiles
  // and parallel_for actually fans out (tile grid > 1, rows > grain).
  auto run_losses = [](std::size_t threads, bool parallel_execution) {
    ThreadPool::reset_shared(threads);
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayerOptions o;
    o.d_model = 64;
    o.d_hidden = 160;
    o.num_experts = 4;
    o.num_partitions = 2;
    o.memory_reuse = true;
    o.strategy = core::ReuseStrategy::kS1;
    o.parallel_execution = parallel_execution;
    o.seed = 77;
    core::MoELayer layer(cluster, o);
    runtime::TrainerOptions topt;
    topt.workload.d_model = 64;
    topt.workload.tokens_per_device = 96;
    topt.workload.num_devices = 4;
    topt.workload.seed = 9;
    topt.adam.lr = 1e-3f;
    topt.load_calibration = false;  // hermetic: no cwd-dependent curves
    std::vector<double> losses;
    runtime::Trainer trainer(layer, topt);
    for (int i = 0; i < 5; ++i) losses.push_back(trainer.train_step());
    return losses;
  };
  const auto reference = run_losses(1, /*parallel_execution=*/false);
  for (bool parallel : {false, true}) {
    for (std::size_t threads : {1u, 4u, 8u}) {
      if (!parallel && threads == 1) continue;  // the reference itself
      const auto losses = run_losses(threads, parallel);
      ASSERT_EQ(reference.size(), losses.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        // Bitwise, not approximate: EXPECT_EQ on doubles.
        EXPECT_EQ(reference[i], losses[i])
            << "step " << i << " (threads=" << threads
            << ", parallel_execution=" << parallel << ")";
      }
    }
  }
  ThreadPool::reset_shared(0);  // restore the machine-sized pool
}

TEST(TrainingAdaptive, DynamicBatchesReuseSearchState) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 32;
  o.num_experts = 4;
  o.num_partitions = 0;  // adaptive
  o.candidate_partitions = {1, 2, 4};
  o.memory_reuse = false;
  core::MoELayer layer(cluster, o);

  runtime::TrainerOptions topt;
  topt.workload.d_model = 16;
  topt.workload.tokens_per_device = 48;
  topt.workload.num_devices = 4;
  topt.workload.batch_jitter = 0.4;  // dynamic B, as in MoE training
  topt.steps = 10;
  topt.load_calibration = false;  // hermetic: no cwd-dependent curves
  runtime::Trainer trainer(layer, topt);
  trainer.run();
  const auto& stats = layer.searcher().stats();
  // Ten steps with jittered batches must not mean ten full searches.
  EXPECT_LT(stats.full_searches, 10u);
  EXPECT_GT(stats.cache_hits + stats.range_hits, 0u);
}

TEST(Workload, BatchTraceBucketsRecur) {
  const auto trace = runtime::batch_size_trace(100, 200, 50, 4, 1);
  EXPECT_EQ(trace.size(), 50u);
  std::set<std::int64_t> distinct(trace.begin(), trace.end());
  EXPECT_LE(distinct.size(), 4u);
  for (std::int64_t b : trace) {
    EXPECT_GE(b, 100);
    EXPECT_LE(b, 200);
  }
}

TEST(Workload, TargetsAreContraction) {
  runtime::WorkloadOptions wo;
  wo.d_model = 8;
  wo.tokens_per_device = 4;
  wo.num_devices = 2;
  runtime::WorkloadGenerator gen(wo);
  auto batch = gen.next_batch();
  auto targets = gen.targets_for(batch);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_NEAR(targets[0].at(0), batch[0].at(0) * 0.5f, 1e-6f);
  EXPECT_EQ(gen.last_batch_tokens(), 4);
}

TEST(ModelZoo, TableIIIConfigs) {
  EXPECT_EQ(runtime::gpt_s().d_model, 768);
  EXPECT_EQ(runtime::gpt_s().d_hidden, 3072);
  EXPECT_EQ(runtime::gpt_xl().d_model, 2048);
  EXPECT_EQ(runtime::gpt_xl().d_hidden, 8192);
  EXPECT_EQ(runtime::bert_l().d_model, 1024);
  EXPECT_EQ(runtime::bert_l().d_hidden, 4096);
  for (const auto& spec : runtime::paper_models()) {
    EXPECT_EQ(spec.num_experts, 64);
    EXPECT_EQ(spec.d_hidden, 4 * spec.d_model);  // H = 4M
  }
}

// ---- common utilities --------------------------------------------------------

TEST(Stats, RunningAndPercentiles) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5}, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(trimmed_mean({100, 1, 2, 3, -50}, 1), 2.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW(geomean({1.0, -1.0}), CheckError);
}

TEST(Rng, ForkDecorrelatesAndZipfSkews) {
  Rng parent(1);
  Rng child = parent.fork();
  EXPECT_NE(parent.uniform(), child.uniform());

  Rng z(2);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 4000; ++i) ++counts[z.zipf(8, 1.2)];
  EXPECT_GT(counts[0], counts[7] * 3);
  // s = 0 degenerates to (roughly) uniform.
  Rng u(3);
  std::vector<int> flat(4, 0);
  for (int i = 0; i < 4000; ++i) ++flat[u.zipf(4, 0.0)];
  for (int c : flat) EXPECT_GT(c, 700);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[rng.categorical({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), CheckError);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1);
        }
      },
      /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] {});
  EXPECT_NO_THROW(future.get());
}

}  // namespace
}  // namespace mpipe
