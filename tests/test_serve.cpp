// The serving tier: forward_only must reproduce the training forward's
// math bitwise (across every restore strategy and both executors) while
// allocating none of the backward/stash state; the continuous batcher must
// preserve per-request FIFO token order under fuzzed open arrivals; the
// server end-to-end must route every request's tokens to the same experts
// a direct evaluation picks, and account per-request latency on its
// virtual clock; and the SLO selector must pick the largest feasible rung
// (degrading loudly when none is).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/moe_layer.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/slo_policy.h"
#include "serve/traffic.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

core::MoELayerOptions serve_layer_options() {
  core::MoELayerOptions o;
  o.d_model = 16;
  o.d_hidden = 48;
  o.num_experts = 8;
  o.num_partitions = 2;
  o.seed = 7;
  return o;
}

std::vector<Tensor> make_inputs(int devices, std::int64_t tokens,
                                std::int64_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (int d = 0; d < devices; ++d) {
    inputs.push_back(random_tokens(tokens, d_model, rng));
  }
  return inputs;
}

// ---- forward_only vs training forward --------------------------------------

struct ServeParityCase {
  core::ReuseStrategy strategy;
  bool memory_reuse;
  bool parallel;
};

std::string parity_case_name(
    const testing::TestParamInfo<ServeParityCase>& info) {
  const ServeParityCase& c = info.param;
  return (c.memory_reuse ? core::to_string(c.strategy) : std::string("raw")) +
         (c.parallel ? "Parallel" : "Serial");
}

class ForwardOnlyParity : public testing::TestWithParam<ServeParityCase> {};

TEST_P(ForwardOnlyParity, BitwiseMatchesTrainingForward) {
  // The serving path strips offload ops and rebadges the strategy, but the
  // compute/comm op sequence is the training forward's — so the outputs
  // must match to the bit, not to a tolerance.
  const ServeParityCase c = GetParam();
  core::MoELayerOptions o = serve_layer_options();
  o.memory_reuse = c.memory_reuse;
  if (c.memory_reuse) o.strategy = c.strategy;
  o.parallel_execution = c.parallel;

  const auto inputs = make_inputs(4, 33, o.d_model, 99);

  sim::Cluster train_cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer train_layer(train_cluster, o);
  const auto trained = train_layer.forward(inputs);

  sim::Cluster serve_cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer serve_layer(serve_cluster, o);
  const auto served = serve_layer.forward_only(inputs);

  ASSERT_EQ(trained.size(), served.size());
  for (std::size_t d = 0; d < trained.size(); ++d) {
    EXPECT_EQ(max_abs_diff(trained[d], served[d]), 0.0f) << "device " << d;
  }
  // The report labels the path honestly.
  EXPECT_EQ(serve_layer.last_report().strategy,
            c.memory_reuse ? core::ReuseStrategy::kS4
                           : core::ReuseStrategy::kNone);
  EXPECT_EQ(serve_layer.last_report().backward_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesBothExecutors, ForwardOnlyParity,
    testing::Values(
        ServeParityCase{core::ReuseStrategy::kNone, false, false},
        ServeParityCase{core::ReuseStrategy::kNone, false, true},
        ServeParityCase{core::ReuseStrategy::kS1, true, false},
        ServeParityCase{core::ReuseStrategy::kS1, true, true},
        ServeParityCase{core::ReuseStrategy::kS2, true, false},
        ServeParityCase{core::ReuseStrategy::kS2, true, true},
        ServeParityCase{core::ReuseStrategy::kS3, true, false},
        ServeParityCase{core::ReuseStrategy::kS3, true, true},
        ServeParityCase{core::ReuseStrategy::kS4, true, false},
        ServeParityCase{core::ReuseStrategy::kS4, true, true}),
    parity_case_name);

TEST(ForwardOnlyMemory, AllocatesNoBackwardOrStashState) {
  // The acceptance assertion of the serving tier: no kTempBuffer bytes
  // (those are exclusively backward state), no host staging (the training
  // forward's activation stash), and a strictly lower device peak than
  // the training step on the same batch.
  core::MoELayerOptions o = serve_layer_options();
  o.memory_reuse = true;
  o.strategy = core::ReuseStrategy::kS1;  // offload-heavy training baseline
  const auto inputs = make_inputs(4, 64, o.d_model, 8);

  sim::Cluster train_cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer train_layer(train_cluster, o);
  auto outputs = train_layer.forward(inputs);
  // Training forward stashes T_DI / T_M partitions on the host.
  EXPECT_GT(train_layer.staging().entries(), 0u);
  EXPECT_GT(train_layer.staging().bytes_stored(), 0u);
  std::vector<Tensor> grads;
  for (auto& out : outputs) grads.push_back(Tensor(out.shape()));
  train_layer.backward(grads);
  const auto train_mem = train_layer.last_report().memory;
  EXPECT_GT(train_mem.temp_buffers, 0u);

  sim::Cluster serve_cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer serve_layer(serve_cluster, o);
  serve_layer.forward_only(inputs);
  const auto serve_mem = serve_layer.last_report().memory;
  EXPECT_EQ(serve_mem.temp_buffers, 0u) << "serving allocated backward state";
  EXPECT_EQ(serve_layer.staging().entries(), 0u);
  EXPECT_EQ(serve_layer.staging().bytes_stored(), 0u);
  EXPECT_LT(serve_mem.total_peak, train_mem.total_peak);

  // No step context survives: a backward now is a contract violation.
  EXPECT_THROW(serve_layer.backward(grads), CheckError);
}

TEST(ForwardOnlyMemory, PartitionOverridePinsGranularity) {
  core::MoELayerOptions o = serve_layer_options();
  o.num_partitions = 0;  // adaptive — the override must win anyway
  o.candidate_partitions = {1, 2, 4};
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);
  const auto inputs = make_inputs(4, 32, o.d_model, 5);
  layer.forward_only(inputs, /*n_override=*/4);
  EXPECT_EQ(layer.last_report().n_partitions, 4);
  EXPECT_GT(layer.last_report().forward_seconds, 0.0);
}

// ---- request queue ---------------------------------------------------------

serve::ServeRequest make_request(std::int64_t id, std::int64_t tokens,
                                 std::int64_t d_model, double arrival) {
  serve::ServeRequest r;
  r.id = id;
  r.tokens = Tensor(Shape{tokens, d_model});
  // Encode (request, row) into the payload so batch placement is provable.
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (std::int64_t j = 0; j < d_model; ++j) {
      r.tokens.at(t * d_model + j) =
          static_cast<float>(id) * 100.0f + static_cast<float>(t);
    }
  }
  r.arrival_seconds = arrival;
  return r;
}

TEST(RequestQueue, FifoPopRespectsArrivalAndTokenCap) {
  serve::RequestQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_arrival(), std::numeric_limits<double>::infinity());
  q.push(make_request(0, 4, 4, 0.0));
  q.push(make_request(1, 4, 4, 1.0));
  q.push(make_request(2, 4, 4, 1.0));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pending_tokens(), 12);
  EXPECT_EQ(q.next_arrival(), 0.0);

  // Nothing has arrived at t = -1.
  EXPECT_TRUE(q.pop_arrived(-1.0, 0).empty());
  // At t = 1 all three have arrived, but an 6-token cap admits only the
  // first (4 + 4 > 6).
  auto got = q.pop_arrived(1.0, 6);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
  got = q.pop_arrived(1.0, 0);  // unbounded: the rest drain together
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 1);
  EXPECT_EQ(got[1].id, 2);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, OversizedHeadIsAdmittedAloneNotLivelocked) {
  serve::RequestQueue q;
  q.push(make_request(0, 32, 4, 0.0));
  q.push(make_request(1, 1, 4, 0.0));
  auto got = q.pop_arrived(0.0, 8);  // head alone exceeds the cap
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
}

TEST(RequestQueue, TimeTravellingArrivalThrows) {
  serve::RequestQueue q;
  q.push(make_request(0, 1, 4, 5.0));
  EXPECT_THROW(q.push(make_request(1, 1, 4, 4.0)), CheckError);
}

// ---- continuous batcher ----------------------------------------------------

TEST(ContinuousBatcher, PreservesPerRequestTokenOrderUnderFuzzedArrivals) {
  // Fuzz: random arrival gaps, random request sizes, random clock steps,
  // random admission caps. Invariants checked on every popped batch:
  // spans are contiguous and gapless, ids strictly ascend in push order
  // across the whole run, and every coalesced row is bitwise the row the
  // request pushed.
  const std::int64_t M = 4;
  for (std::uint64_t seed : {1ull, 17ull, 4242ull}) {
    Rng rng(seed);
    serve::RequestQueue q;
    serve::ContinuousBatcher batcher(q, /*max_batch_tokens=*/9);
    const std::int64_t N = 40;
    double arrival = 0.0;
    std::vector<serve::ServeRequest> pushed;
    for (std::int64_t i = 0; i < N; ++i) {
      arrival += rng.uniform() * 1e-3;
      const std::int64_t tokens = 1 + static_cast<std::int64_t>(
                                          rng.uniform_index(7));
      pushed.push_back(make_request(i, tokens, M, arrival));
      q.push(pushed.back());
    }

    std::int64_t next_id = 0;
    double now = 0.0;
    while (next_id < N) {
      now += rng.uniform() * 2e-3;
      batcher.set_max_batch_tokens(
          rng.uniform() < 0.3 ? 0 : 3 + static_cast<std::int64_t>(
                                            rng.uniform_index(12)));
      serve::MicroBatch mb = batcher.next(now);
      if (mb.requests.empty()) continue;
      ASSERT_EQ(mb.requests.size(), mb.spans.size());
      std::int64_t row = 0;
      for (std::size_t i = 0; i < mb.spans.size(); ++i) {
        const serve::RequestSpan& span = mb.spans[i];
        EXPECT_EQ(span.id, next_id) << "FIFO order broken (seed " << seed
                                    << ")";
        EXPECT_EQ(span.row_begin, row) << "span not contiguous";
        EXPECT_EQ(span.rows, mb.requests[i].tokens.dim(0));
        const Tensor rows = mb.coalesced.slice_rows(
            span.row_begin, span.row_begin + span.rows);
        EXPECT_EQ(max_abs_diff(
                      rows,
                      pushed[static_cast<std::size_t>(span.id)].tokens),
                  0.0f)
            << "request " << span.id << " rows corrupted in coalesce";
        row += span.rows;
        ++next_id;
      }
      EXPECT_EQ(mb.total_tokens, row);
      EXPECT_LE(mb.oldest_arrival, mb.newest_arrival);
      EXPECT_LE(mb.newest_arrival, now) << "batched a future arrival";
      if (batcher.max_batch_tokens() > 0 && mb.requests.size() > 1) {
        EXPECT_LE(mb.total_tokens, batcher.max_batch_tokens());
      }
    }
    EXPECT_TRUE(q.empty());
  }
}

// ---- SLO selector ----------------------------------------------------------

TEST(SloSelector, PicksLargestFeasibleRungAndDegradesLoudly) {
  core::MoELayerOptions o = serve_layer_options();
  o.num_partitions = 0;
  o.candidate_partitions = {1, 2, 4};
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);

  // No SLO: the plan admits the full ladder cap.
  serve::SloPolicyOptions opts;
  opts.slo_seconds = 0.0;
  opts.max_tokens_per_device = 48;  // non-power-of-two cap joins the ladder
  serve::SloSelector unbounded(layer, opts);
  const serve::ServePlan full = unbounded.plan();
  EXPECT_TRUE(full.slo_feasible);
  EXPECT_EQ(full.tokens_per_device, 48);
  EXPECT_EQ(full.max_batch_tokens, 48 * 4);
  EXPECT_GT(full.predicted_seconds, 0.0);
  ASSERT_FALSE(full.rungs.empty());
  EXPECT_EQ(full.rungs.front().tokens_per_device, 1);
  EXPECT_EQ(full.rungs.back().tokens_per_device, 48);
  EXPECT_EQ(full.strategy_forward_costs.size(), 4u);
  EXPECT_FALSE(full.summary().empty());

  // Bigger rung, never cheaper: predictions are monotone up the ladder.
  for (std::size_t i = 1; i < full.rungs.size(); ++i) {
    EXPECT_GE(full.rungs[i].predicted_seconds,
              full.rungs[i - 1].predicted_seconds * 0.999)
        << "rung " << i;
  }

  // An SLO between the front and back rung's predictions must cut the
  // ladder strictly below the cap but keep feasibility.
  const double mid_slo = (full.rungs.front().predicted_seconds +
                          full.rungs.back().predicted_seconds) /
                         2.0;
  opts.slo_seconds = mid_slo;
  serve::SloSelector bounded(layer, opts);
  const serve::ServePlan capped = bounded.plan();
  EXPECT_TRUE(capped.slo_feasible);
  EXPECT_LT(capped.tokens_per_device, full.tokens_per_device);
  EXPECT_LE(capped.predicted_seconds, mid_slo);

  // An impossible SLO degrades to the smallest rung and says so.
  opts.slo_seconds = 1e-15;
  serve::SloSelector impossible(layer, opts);
  const serve::ServePlan degraded = impossible.plan();
  EXPECT_FALSE(degraded.slo_feasible);
  EXPECT_EQ(degraded.tokens_per_device, 1);
  EXPECT_NE(degraded.summary().find("INFEASIBLE"), std::string::npos);

  // partitions_for maps a batch to its covering rung.
  EXPECT_EQ(unbounded.partitions_for(1), full.rungs.front().n_partitions);
  EXPECT_EQ(unbounded.partitions_for(10000), full.rungs.back().n_partitions);
}

// ---- comm clamp counters ---------------------------------------------------

TEST(CommClampStats, OffSweepConsultationsAreCountedAndSharedAcrossCopies) {
  sim::CommBandwidthCurve curve;
  curve.bytes = {1024, 4096};
  curve.seconds = {1e-5, 2e-5};
  curve.validate();
  EXPECT_EQ(curve.clamps->total(), 0u);

  curve.efficiency_at(2048);  // in-span: no clamp
  EXPECT_EQ(curve.clamps->total(), 0u);
  curve.efficiency_at(128);  // a serving-sized payload below the sweep
  EXPECT_EQ(curve.clamps->below.load(), 1u);
  curve.efficiency_at(1 << 20);
  EXPECT_EQ(curve.clamps->above.load(), 1u);

  // CostModel and Cluster copy their configs; the counters must not fork.
  sim::CommBandwidthCurve copy = curve;
  copy.efficiency_at(128);
  EXPECT_EQ(curve.clamps->below.load(), 2u);
  EXPECT_EQ(curve.clamps.get(), copy.clamps.get());
}

// ---- server end-to-end -----------------------------------------------------

/// Direct per-token evaluation (gates are replicated, so routing does not
/// depend on which device a token is batched onto).
Tensor reference_rows(core::MoELayer& layer, const Tensor& x) {
  const int epd = layer.experts_per_device();
  const auto gating = layer.gate(0).forward(x);
  Tensor out(x.shape());
  for (std::int64_t t = 0; t < x.dim(0); ++t) {
    const std::int64_t e = gating.expert_of[static_cast<std::size_t>(t)];
    const int holder = static_cast<int>(e / epd);
    const int local = static_cast<int>(e % epd);
    Tensor row = x.slice_rows(t, t + 1);
    Tensor mid;
    Tensor y = layer.expert(holder, local).forward(row, mid);
    scale_(y, gating.gate[static_cast<std::size_t>(t)]);
    out.copy_into_rows(t, y);
  }
  return out;
}

TEST(Server, ServesPoissonTraceWithCorrectOutputsAndAccounting) {
  core::MoELayerOptions o = serve_layer_options();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);

  serve::TrafficOptions traffic;
  traffic.num_requests = 12;
  traffic.rate_rps = 3000.0;
  traffic.min_tokens = 1;
  traffic.max_tokens = 6;
  traffic.d_model = o.d_model;
  traffic.seed = 11;
  const auto trace = serve::poisson_trace(traffic);
  ASSERT_EQ(trace.size(), 12u);
  std::int64_t trace_tokens = 0;
  for (const auto& r : trace) trace_tokens += r.tokens.dim(0);

  serve::ServerOptions sopt;
  sopt.slo.max_tokens_per_device = 8;
  sopt.keep_outputs = true;
  serve::Server server(layer, sopt);
  EXPECT_GT(server.plan().max_batch_tokens, 0);

  const serve::ServeMetrics& m = server.run(trace);
  EXPECT_EQ(m.requests_served(), 12u);
  EXPECT_EQ(m.total_tokens(), static_cast<std::uint64_t>(trace_tokens));
  EXPECT_GE(m.batches_executed(), 1u);
  EXPECT_GT(server.clock_seconds(), 0.0);
  EXPECT_GT(m.tokens_per_second(), 0.0);
  EXPECT_GT(m.latency_percentile(0.5), 0.0);
  EXPECT_GE(m.latency_percentile(0.99), m.latency_percentile(0.5));
  EXPECT_FALSE(m.summary().empty());
  for (const serve::RequestRecord& r : m.requests()) {
    EXPECT_GE(r.queue_delay(), 0.0) << "request " << r.id;
    EXPECT_GT(r.latency(), 0.0) << "request " << r.id;
  }
  for (const serve::BatchRecord& b : m.batches()) {
    EXPECT_GT(b.tokens, 0);
    EXPECT_GT(b.service_seconds, 0.0);
    EXPECT_LE(b.tokens, server.plan().max_batch_tokens);
  }

  // Every request's retained output matches a direct evaluation of its own
  // tokens — batching, padding and sharding must not leak between
  // requests.
  for (const auto& r : trace) {
    const Tensor expected = reference_rows(layer, r.tokens);
    EXPECT_LT(max_abs_diff(server.output_for(r.id), expected), 2e-5f)
        << "request " << r.id;
  }
  EXPECT_THROW(server.output_for(999), CheckError);
}

TEST(Server, BurstyTraceCoalescesBacklogIntoLargerBatches) {
  core::MoELayerOptions o = serve_layer_options();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);

  serve::TrafficOptions traffic;
  traffic.num_requests = 32;
  traffic.rate_rps = 20000.0;
  traffic.min_tokens = 1;
  traffic.max_tokens = 4;
  traffic.d_model = o.d_model;
  traffic.seed = 3;
  traffic.burst_factor = 16.0;
  traffic.burst_period_seconds = 2e-3;
  const auto trace = serve::bursty_trace(traffic);

  serve::ServerOptions sopt;
  sopt.slo.max_tokens_per_device = 16;
  serve::Server server(layer, sopt);
  const serve::ServeMetrics& m = server.run(trace);
  EXPECT_EQ(m.requests_served(), 32u);
  // A burst's backlog coalesces: strictly fewer batches than requests.
  EXPECT_LT(m.batches_executed(), m.requests_served());
  EXPECT_GT(m.mean_batch_tokens(), 1.0);
}

TEST(Server, WarmupFitsCorrectionsAndReplans) {
  core::MoELayerOptions o = serve_layer_options();
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);

  serve::TrafficOptions traffic;
  traffic.num_requests = 8;
  traffic.rate_rps = 5000.0;
  traffic.d_model = o.d_model;
  traffic.max_tokens = 4;
  traffic.seed = 21;

  serve::ServerOptions sopt;
  sopt.slo.max_tokens_per_device = 8;
  sopt.profile_warmup_batches = 2;
  serve::Server server(layer, sopt);
  EXPECT_FALSE(server.corrections_installed());
  server.run(serve::poisson_trace(traffic));
  EXPECT_TRUE(server.corrections_installed());
  // The fitted factors landed in the layer (shared with the SLO probes).
  EXPECT_FALSE(layer.corrections().identity());
  // At least the warmup batches carry a measured wall-clock half.
  std::size_t measured = 0;
  for (const serve::BatchRecord& b : server.metrics().batches()) {
    if (b.measured_seconds > 0.0) ++measured;
  }
  EXPECT_GE(measured, 2u);
}

TEST(Server, ConcurrentProducerDrainsCleanly) {
  // TSAN tier: one producer thread stamps arrivals while the server loop
  // drains — the queue mutex and the batcher on top must keep every
  // request intact and ordered.
  core::MoELayerOptions o = serve_layer_options();
  o.parallel_execution = true;
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoELayer layer(cluster, o);

  serve::ServerOptions sopt;
  sopt.slo.max_tokens_per_device = 8;
  serve::Server server(layer, sopt);

  const std::int64_t N = 24;
  std::thread producer([&] {
    for (std::int64_t i = 0; i < N; ++i) {
      server.queue().push(
          make_request(i, 1 + (i % 4), o.d_model,
                       static_cast<double>(i) * 1e-4));
      if (i % 8 == 7) std::this_thread::yield();
    }
  });
  const serve::ServeMetrics& m = server.drain(static_cast<std::size_t>(N));
  producer.join();
  EXPECT_EQ(m.requests_served(), static_cast<std::size_t>(N));
  std::int64_t expected_tokens = 0;
  for (std::int64_t i = 0; i < N; ++i) expected_tokens += 1 + (i % 4);
  EXPECT_EQ(m.total_tokens(), static_cast<std::uint64_t>(expected_tokens));
}

}  // namespace
}  // namespace mpipe
