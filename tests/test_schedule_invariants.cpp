// Property tests on the generated schedules: stream exclusivity, WAR-hazard
// ordering on reused ring slots, collective synchrony, strategy-specific op
// population, real comm/comp overlap once pipelining is on, and the hazard
// contract of the concurrent executor: every schedule the builder emits
// passes validate_hazards (and runs bitwise-identically in parallel), while
// a deliberately removed WAR edge is rejected.

#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/moe_layer.h"
#include "core/restore.h"
#include "sim/graph_executor.h"
#include "tensor/gemm.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

struct BuiltStep {
  sim::OpGraph forward;
  sim::OpGraph backward;
  sim::TimingResult fwd_timing;
  sim::TimingResult bwd_timing;
};

/// Builds fwd+bwd timing-only graphs for a paper-scale configuration.
BuiltStep build_step(sim::Cluster& cluster, int n,
                     core::ReuseStrategy strategy, std::int64_t tokens) {
  core::MoELayerOptions o;
  o.d_model = 1024;
  o.d_hidden = 4096;
  o.num_experts = 64;
  o.num_partitions = n;
  o.memory_reuse = strategy != core::ReuseStrategy::kNone;
  if (o.memory_reuse) o.strategy = strategy;
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);
  // step_timing runs both graphs; rebuild them here for inspection via the
  // same public path.
  auto report = layer.step_timing(tokens);
  BuiltStep out;
  out.fwd_timing = report.forward_timing;
  out.bwd_timing = report.backward_timing;
  return out;
}

struct ScheduleCase {
  int n;
  core::ReuseStrategy strategy;
};

class ScheduleInvariants : public testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleInvariants, StreamsNeverOverlapAndOpsAllFinish) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(2, 4);
  core::MoELayerOptions o;
  o.d_model = 1024;
  o.d_hidden = 4096;
  o.num_experts = 64;
  o.num_partitions = GetParam().n;
  o.memory_reuse = GetParam().strategy != core::ReuseStrategy::kNone;
  if (o.memory_reuse) o.strategy = GetParam().strategy;
  o.mode = core::ExecutionMode::kTimingOnly;
  core::MoELayer layer(cluster, o);

  // Reach into the same builder the layer uses.
  core::MoeStepContext ctx;
  ctx.mode = core::ExecutionMode::kTimingOnly;
  ctx.strategy = o.memory_reuse ? *o.strategy : core::ReuseStrategy::kNone;
  ctx.d_model = o.d_model;
  ctx.d_hidden = o.d_hidden;
  ctx.plan = moe::Dispatcher::synthetic(4096, cluster.num_devices(),
                                        64 / cluster.num_devices(),
                                        GetParam().n);
  ctx.dev.resize(static_cast<std::size_t>(cluster.num_devices()));
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  mem::HostStaging staging;
  core::PipelineScheduleBuilder builder(world, staging);

  for (sim::OpGraph* graph :
       {new sim::OpGraph(builder.build_forward(ctx, {})),
        new sim::OpGraph(builder.build_backward(ctx, {}))}) {
    auto timing = cluster.time_only(*graph);
    // Every op ran to completion.
    for (const auto& ot : timing.op_times) {
      ASSERT_TRUE(ot.started());
      ASSERT_GE(ot.end, ot.start);
    }
    // In-order streams: ops sharing a (device, stream) never overlap.
    std::map<std::pair<int, int>, std::vector<int>> per_stream;
    for (const auto& op : graph->ops()) {
      for (int d : op.devices) {
        per_stream[{d, static_cast<int>(op.stream)}].push_back(op.id);
      }
    }
    for (const auto& [key, ids] : per_stream) {
      for (std::size_t i = 1; i < ids.size(); ++i) {
        const auto& prev = timing.op_times[static_cast<std::size_t>(
            ids[i - 1])];
        const auto& next =
            timing.op_times[static_cast<std::size_t>(ids[i])];
        EXPECT_GE(next.start, prev.end - 1e-12)
            << "stream overlap on device " << key.first;
      }
    }
    // Collectives occupy all participants for the same interval.
    for (const auto& op : graph->ops()) {
      if (op.devices.size() < 2) continue;
      const auto& ot = timing.op_times[static_cast<std::size_t>(op.id)];
      EXPECT_GT(ot.end, ot.start);
    }
    delete graph;
  }
}

TEST_P(ScheduleInvariants, WarOrderingOnRingSlots) {
  if (GetParam().strategy == core::ReuseStrategy::kNone) {
    GTEST_SKIP() << "no ring reuse without a strategy";
  }
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoeStepContext ctx;
  ctx.mode = core::ExecutionMode::kTimingOnly;
  ctx.strategy = GetParam().strategy;
  ctx.d_model = 1024;
  ctx.d_hidden = 4096;
  ctx.plan = moe::Dispatcher::synthetic(4096, 4, 16, GetParam().n);
  ctx.dev.resize(4);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  mem::HostStaging staging;
  core::PipelineScheduleBuilder builder(world, staging);
  sim::OpGraph fwd = builder.build_forward(ctx, {});
  auto timing = cluster.time_only(fwd);

  // T_DI slot reuse: S_{p} (writer of slot p%2) must start only after
  // C1_{p-2} (reader of the same slot) ended, on every device.
  auto find_ops = [&](const std::string& prefix) {
    std::map<std::string, int> out;
    for (const auto& op : fwd.ops()) {
      if (op.label.rfind(prefix, 0) == 0) out[op.label] = op.id;
    }
    return out;
  };
  const auto s_ops = find_ops("S");
  const auto c1_ops = find_ops("C1_");
  for (int p = 2; p < GetParam().n; ++p) {
    const auto writer = s_ops.find("S" + std::to_string(p));
    ASSERT_NE(writer, s_ops.end());
    const auto& w = timing.op_times[static_cast<std::size_t>(
        writer->second)];
    for (int d = 0; d < 4; ++d) {
      const auto reader = c1_ops.find("C1_" + std::to_string(p - 2) + ".d" +
                                      std::to_string(d));
      ASSERT_NE(reader, c1_ops.end());
      const auto& r = timing.op_times[static_cast<std::size_t>(
          reader->second)];
      EXPECT_GE(w.start, r.end - 1e-12)
          << "S" << p << " overwrote T_DI slot before C1_" << p - 2
          << ".d" << d << " finished";
    }
  }
}

TEST_P(ScheduleInvariants, StrategySpecificOpsPresent) {
  if (GetParam().strategy == core::ReuseStrategy::kNone ||
      GetParam().n < 2) {
    GTEST_SKIP();
  }
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
  core::MoeStepContext ctx;
  ctx.mode = core::ExecutionMode::kTimingOnly;
  ctx.strategy = GetParam().strategy;
  ctx.d_model = 512;
  ctx.d_hidden = 2048;
  ctx.plan = moe::Dispatcher::synthetic(2048, 4, 16, GetParam().n);
  ctx.dev.resize(4);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  mem::HostStaging staging;
  core::PipelineScheduleBuilder builder(world, staging);
  sim::OpGraph fwd = builder.build_forward(ctx, {});
  sim::OpGraph bwd = builder.build_backward(ctx, {});

  auto count = [](const sim::OpGraph& graph, sim::OpCategory cat) {
    int c = 0;
    for (const auto& op : graph.ops()) {
      if (op.category == cat) ++c;
    }
    return c;
  };
  const bool offloads = core::uses_offload(GetParam().strategy);
  const bool recomm = core::restores_tdi_by_comm(GetParam().strategy);
  const bool recompute =
      core::restores_tm_by_recompute(GetParam().strategy);
  EXPECT_EQ(count(fwd, sim::OpCategory::kMemcpyD2H) > 0, offloads);
  EXPECT_EQ(count(bwd, sim::OpCategory::kMemcpyH2D) > 0, offloads);
  // Backward AllToAlls: 2n baseline (S', R') + n re-communication for
  // S2/S4, plus no others.
  const int n = GetParam().n;
  EXPECT_EQ(count(bwd, sim::OpCategory::kAllToAll),
            recomm ? 3 * n : 2 * n);
  // Recompute adds one GEMM per partition per device on top of the fused
  // backward GEMM and gating backward.
  const int base_gemms = n * 4 + 4;  // Cb per (p,d) + Gb per d
  EXPECT_EQ(count(bwd, sim::OpCategory::kGemm),
            recompute ? base_gemms + n * 4 : base_gemms);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleInvariants,
    testing::Values(ScheduleCase{1, core::ReuseStrategy::kNone},
                    ScheduleCase{2, core::ReuseStrategy::kNone},
                    ScheduleCase{4, core::ReuseStrategy::kNone},
                    ScheduleCase{8, core::ReuseStrategy::kNone},
                    ScheduleCase{2, core::ReuseStrategy::kS1},
                    ScheduleCase{4, core::ReuseStrategy::kS1},
                    ScheduleCase{4, core::ReuseStrategy::kS2},
                    ScheduleCase{4, core::ReuseStrategy::kS3},
                    ScheduleCase{4, core::ReuseStrategy::kS4},
                    ScheduleCase{8, core::ReuseStrategy::kS2},
                    ScheduleCase{8, core::ReuseStrategy::kS4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) +
             core::to_string(info.param.strategy);
    });

TEST_P(ScheduleInvariants, FunctionalSchedulesPassHazardValidation) {
  // Full-mode forward+backward under ExecutionPolicy::kParallel runs
  // validate_hazards on every graph before overlapping it — so a pass here
  // proves the builder's WAR edges cover all ring-slot reuse for this
  // (strategy, n). The parallel results must also match a serial twin
  // layer bitwise.
  const int n = GetParam().n;
  auto run_layer = [&](bool parallel) {
    sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, 4);
    core::MoELayerOptions o;
    o.d_model = 16;
    o.d_hidden = 32;
    o.num_experts = 4;
    o.num_partitions = n;
    o.memory_reuse = GetParam().strategy != core::ReuseStrategy::kNone;
    if (o.memory_reuse) o.strategy = GetParam().strategy;
    o.parallel_execution = parallel;
    o.seed = 17;
    core::MoELayer layer(cluster, o);

    Rng rng(91);
    std::vector<Tensor> inputs, dys;
    for (int d = 0; d < 4; ++d) {
      Tensor x(Shape{64, 16}), dy(Shape{64, 16});
      init_normal(x, rng);
      init_normal(dy, rng);
      inputs.push_back(x);
      dys.push_back(dy);
    }
    auto outs = layer.forward(inputs);
    auto grads = layer.backward(dys);
    std::vector<float> flat;
    for (const Tensor& t : outs) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    for (const Tensor& t : grads) {
      flat.insert(flat.end(), t.data(), t.data() + t.numel());
    }
    for (int d = 0; d < 4; ++d) {
      for (Tensor* g : layer.expert(d, 0).gradients()) {
        flat.insert(flat.end(), g->data(), g->data() + g->numel());
      }
      const Tensor& gate_grad = layer.gate(d).weight_grad();
      flat.insert(flat.end(), gate_grad.data(),
                  gate_grad.data() + gate_grad.numel());
    }
    return flat;
  };
  const auto serial = run_layer(false);
  const auto parallel = run_layer(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bitwise: the executor may only reorder work the graph proves
    // independent.
    ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

/// Minimal functional forward context for inspecting builder-emitted
/// graphs directly: round-robin routing, unit gates, materialised ring
/// buffers (strategy S1).
struct FunctionalForwardFixture {
  static constexpr int kDevices = 4;
  static constexpr std::int64_t kTokens = 32;
  static constexpr std::int64_t kModel = 16;
  static constexpr std::int64_t kHidden = 32;

  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(1, kDevices);
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  mem::HostStaging staging;
  std::deque<mem::DeviceAllocator> allocators;
  std::vector<std::vector<moe::ExpertFFN>> experts;
  std::vector<moe::GatingNetwork> gates;
  core::MoeStepContext ctx;
  core::LayerRefs refs;

  explicit FunctionalForwardFixture(int n) {
    Rng rng(7);
    std::vector<std::vector<std::int64_t>> expert_of(
        kDevices, std::vector<std::int64_t>(kTokens));
    for (int d = 0; d < kDevices; ++d) {
      for (std::int64_t t = 0; t < kTokens; ++t) {
        expert_of[static_cast<std::size_t>(d)][static_cast<std::size_t>(t)] =
            (t + d) % kDevices;
      }
    }
    ctx.mode = core::ExecutionMode::kFull;
    ctx.strategy = core::ReuseStrategy::kS1;
    ctx.d_model = kModel;
    ctx.d_hidden = kHidden;
    ctx.plan = moe::Dispatcher::build(expert_of, kDevices, 1, n);
    ctx.dev.resize(kDevices);
    const int depth = std::min(2, n);
    for (int d = 0; d < kDevices; ++d) {
      allocators.emplace_back(d);
      auto& st = ctx.dev[static_cast<std::size_t>(d)];
      st.x = Tensor(Shape{kTokens, kModel});
      init_normal(st.x, rng);
      st.out = Tensor(Shape{kTokens, kModel});
      st.gating.expert_of = expert_of[static_cast<std::size_t>(d)];
      st.gating.gate.assign(static_cast<std::size_t>(kTokens), 1.0f);
      st.gating.probs = Tensor(Shape{kTokens, kDevices});
      std::int64_t cap = 1;
      for (int p = 0; p < n; ++p) {
        cap = std::max(
            cap, ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)]);
      }
      st.tdi.emplace(allocators.back(), "tdi", Shape{cap, kModel}, depth,
                     mem::Category::kActivation, true);
      st.tm.emplace(allocators.back(), "tm", Shape{cap, kHidden}, 1,
                    mem::Category::kActivation, true);
      st.tdo.emplace(allocators.back(), "tdo", Shape{cap, kModel}, depth,
                     mem::Category::kActivation, true);
      std::vector<moe::ExpertFFN> dev_experts;
      Rng expert_rng = rng.fork();
      dev_experts.emplace_back(kModel, kHidden,
                               moe::ActivationKind::kReLU, expert_rng);
      experts.push_back(std::move(dev_experts));
      Rng gate_rng = rng.fork();
      gates.emplace_back(kModel, kDevices, gate_rng);
    }
    refs.experts = &experts;
    refs.gates = &gates;
  }
};

TEST(HazardValidator, RejectsBuilderGraphWithRemovedWarEdge) {
  // Strategy S1, n = 4: the forward schedule carries the WAR edges
  // Htdi_{p-2} -> S_p (the offload copy reads the T_DI ring slot S_p
  // rewrites, and no FIFO path orders a mem-stream op before a later comm
  // op). The intact graph must validate; dropping exactly those edges
  // from S2's dependency list must be rejected, naming the slot pair.
  FunctionalForwardFixture fixture(/*n=*/4);
  core::PipelineScheduleBuilder builder(fixture.world, fixture.staging);
  sim::OpGraph intact = builder.build_forward(fixture.ctx, fixture.refs);
  EXPECT_NO_THROW(sim::validate_hazards(intact));

  sim::OpGraph broken = builder.build_forward(fixture.ctx, fixture.refs);
  std::vector<int> htdi0_ids;
  int s2_id = -1;
  for (const auto& op : broken.ops()) {
    if (op.label.rfind("Htdi0.", 0) == 0) htdi0_ids.push_back(op.id);
    if (op.label == "S2") s2_id = op.id;
  }
  ASSERT_EQ(htdi0_ids.size(), 4u);
  ASSERT_GE(s2_id, 0);
  auto& deps = broken.op(s2_id).deps;
  const std::size_t before = deps.size();
  for (int id : htdi0_ids) {
    deps.erase(std::remove(deps.begin(), deps.end(), id), deps.end());
  }
  ASSERT_EQ(deps.size(), before - htdi0_ids.size())
      << "expected the WAR edges to be present before removal";
  try {
    sim::validate_hazards(broken);
    FAIL() << "removed WAR edge must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("Htdi0"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("S2"), std::string::npos)
        << e.what();
  }
}

TEST(NestedParallelism, PipelinePartitionGemmRunsWithoutDeadlock) {
  // The pipeline executor fans partitions out over the shared pool; each
  // partition body then calls the packed GEMM, which issues its own
  // parallel_for on the same pool. The pool must run the nested level
  // inline on workers (and let the caller participate) instead of
  // deadlocking on its own queue.
  Rng rng(5);
  Tensor a(Shape{96, 64}), b(Shape{64, 80});
  init_normal(a, rng);
  init_normal(b, rng);
  const Tensor want = matmul(a, b);

  constexpr int kPartitions = 4;
  std::vector<Tensor> outs;
  outs.reserve(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    outs.emplace_back(Shape{96, 80});
  }
  ThreadPool::shared().parallel_for(
      kPartitions,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          gemm(a, b, outs[p]);
        }
      },
      /*grain=*/1);
  for (const Tensor& out : outs) {
    EXPECT_TRUE(allclose(out, want, 1e-5f, 1e-6f));
  }
}

TEST(ScheduleOverlap, PipelineOverlapsCommAndCompute) {
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  auto report_for = [&](int n) {
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.num_partitions = n;
    o.memory_reuse = false;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    return layer.step_timing(16384);
  };
  const auto serial = report_for(1);
  const auto piped = report_for(4);
  // With pipelining the same total work finishes sooner...
  EXPECT_LT(piped.step_seconds(), serial.step_seconds());
  // ...because comm and compute genuinely overlap: busy seconds exceed the
  // serial sum check (comp + comm busy > makespan means overlap happened).
  const auto& t = piped.forward_timing;
  const double comp = t.stream_busy(0, sim::StreamKind::kCompute);
  const double comm = t.stream_busy(0, sim::StreamKind::kComm);
  EXPECT_GT(comp + comm, t.makespan * 1.05);
}

TEST(ScheduleOverlap, VeryFineGranularityHurts) {
  // Paper §I: "very fine-grained pipelining incurs significant overhead
  // because of frequent kernel launches and GPU under-utilization."
  sim::Cluster cluster = sim::Cluster::dgx_a100_pod(8, 8);
  auto seconds_for = [&](int n) {
    core::MoELayerOptions o;
    o.d_model = 2048;
    o.d_hidden = 8192;
    o.num_experts = 64;
    o.num_partitions = n;
    o.memory_reuse = false;
    o.mode = core::ExecutionMode::kTimingOnly;
    core::MoELayer layer(cluster, o);
    return layer.step_timing(2048).step_seconds();
  };
  // At a small batch, n=16 must be worse than the best coarse setting.
  EXPECT_GT(seconds_for(16), std::min(seconds_for(1), seconds_for(2)));
}

}  // namespace
}  // namespace mpipe
