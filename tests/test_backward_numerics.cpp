// Backward-path numerics: the fused dW+db GEMM epilogue against a scalar
// reference and finite differences, layer-norm backward, and softmax
// backward — all on ragged shapes, including the rows = 0 and rows = 1
// expert panels the dispatcher produces under routing skew.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "moe/dispatcher.h"
#include "moe/expert.h"
#include "moe/layer_norm.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

/// Scalar reference for the fused call: dW (+)= A^T B with fp64
/// accumulation, db += colsum(B).
void reference_tn_bias_grad(const Tensor& a, const Tensor& b, Tensor& c,
                            Tensor& bias_grad, bool accumulate) {
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = accumulate ? c.at(i, j) : 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(kk, i)) * b.at(kk, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    double acc = bias_grad.at(j);
    for (std::int64_t kk = 0; kk < k; ++kk) acc += b.at(kk, j);
    bias_grad.at(j) = static_cast<float>(acc);
  }
}

void expect_close(const Tensor& got, const Tensor& want, float rtol = 1e-3f,
                  float atol = 1e-4f) {
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_TRUE(allclose(got, want, rtol, atol))
      << "max |diff| = " << max_abs_diff(got, want);
}

struct PanelShape {
  std::int64_t rows, m, n;
};

class FusedWgrad : public testing::TestWithParam<PanelShape> {};

TEST_P(FusedWgrad, MatchesScalarReference) {
  const auto [rows, m, n] = GetParam();
  for (bool accumulate : {false, true}) {
    Rng rng(21);
    Tensor a(Shape{rows, m}), b(Shape{rows, n});
    Tensor c(Shape{m, n}), bias(Shape{n});
    init_normal(a, rng);
    init_normal(b, rng);
    init_normal(c, rng);
    init_normal(bias, rng);
    Tensor c_ref = c.clone();
    Tensor bias_ref = bias.clone();
    gemm_tn_bias_grad(a, b, c, bias, accumulate);
    reference_tn_bias_grad(a, b, c_ref, bias_ref, accumulate);
    expect_close(c, c_ref);
    expect_close(bias, bias_ref);
  }
}

// Ragged panels around every blocking boundary (MR = 8, NR = 16,
// MC = 64, NC = 128, KC = 256), plus the skew edge cases: an expert that
// received no tokens (rows = 0) and exactly one token (rows = 1).
INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedWgrad,
    testing::Values(PanelShape{0, 5, 7}, PanelShape{1, 5, 7},
                    PanelShape{1, 64, 128}, PanelShape{3, 17, 31},
                    PanelShape{8, 16, 16}, PanelShape{13, 65, 129},
                    PanelShape{64, 64, 128}, PanelShape{100, 70, 150},
                    PanelShape{257, 33, 140}, PanelShape{300, 129, 257}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.rows) + "m" +
             std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n);
    });

TEST(FusedWgrad, ZeroRowPanelLeavesGradientsAlone) {
  // rows = 0 with accumulate must keep both dW and db bit-identical.
  Rng rng(3);
  Tensor a(Shape{0, 9}), b(Shape{0, 11});
  Tensor c(Shape{9, 11}), bias(Shape{11});
  init_normal(c, rng);
  init_normal(bias, rng);
  const Tensor c0 = c.clone();
  const Tensor bias0 = bias.clone();
  gemm_tn_bias_grad(a, b, c, bias, /*accumulate=*/true);
  EXPECT_EQ(max_abs_diff(c, c0), 0.0f);
  EXPECT_EQ(max_abs_diff(bias, bias0), 0.0f);
  // Without accumulate the product is zero and db still untouched-by-sum.
  gemm_tn_bias_grad(a, b, c, bias, /*accumulate=*/false);
  EXPECT_EQ(c.abs_max(), 0.0f);
  EXPECT_EQ(max_abs_diff(bias, bias0), 0.0f);
}

/// d(sum(dy * f(x)))/dx_i by central differences.
template <typename Fwd>
double finite_diff(const Fwd& fwd, const Tensor& x, const Tensor& dy,
                   std::int64_t idx, float h) {
  Tensor xp = x.clone();
  xp.at(idx) += h;
  Tensor xm = x.clone();
  xm.at(idx) -= h;
  const Tensor yp = fwd(xp), ym = fwd(xm);
  double acc = 0.0;
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    acc += static_cast<double>(dy.at(i)) * (yp.at(i) - ym.at(i));
  }
  return acc / (2.0 * h);
}

class ExpertBackward : public testing::TestWithParam<moe::ActivationKind> {};

TEST_P(ExpertBackward, FusedGradsMatchFiniteDifferences) {
  Rng rng(31);
  moe::ExpertFFN expert(10, 14, GetParam(), rng);
  for (std::int64_t rows : {1, 3, 17}) {
    Tensor x(Shape{rows, 10});
    init_normal(x, rng);
    Tensor mid;
    Tensor y = expert.forward(x, mid);
    Tensor dy(y.shape());
    init_normal(dy, rng);
    expert.zero_grad();
    Tensor dx = expert.backward(dy, x, mid);

    auto fwd_x = [&](const Tensor& xin) {
      Tensor m2;
      return expert.forward(xin, m2);
    };
    const float h = 1e-2f;
    for (std::int64_t idx : {std::int64_t{0}, x.numel() / 2,
                             x.numel() - 1}) {
      EXPECT_NEAR(dx.at(idx), finite_diff(fwd_x, x, dy, idx, h), 5e-2)
          << "dx[" << idx << "] rows=" << rows;
    }
    // Weight and (fused) bias grads against parameter perturbation.
    auto params = expert.parameters();
    auto grads = expert.gradients();
    for (std::size_t p = 0; p < params.size(); ++p) {
      Tensor& w = *params[p];
      const Tensor& g = *grads[p];
      auto fwd_w = [&](const Tensor& win) {
        const Tensor saved = w.clone();
        for (std::int64_t i = 0; i < w.numel(); ++i) w.at(i) = win.at(i);
        Tensor m2;
        Tensor out = expert.forward(x, m2);
        for (std::int64_t i = 0; i < w.numel(); ++i) w.at(i) = saved.at(i);
        return out;
      };
      for (std::int64_t idx : {std::int64_t{0}, w.numel() - 1}) {
        EXPECT_NEAR(g.at(idx), finite_diff(fwd_w, w, dy, idx, h), 5e-2)
            << "param " << p << " idx " << idx << " rows=" << rows;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, ExpertBackward,
                         testing::Values(moe::ActivationKind::kReLU,
                                         moe::ActivationKind::kGELU),
                         [](const auto& info) {
                           return info.param == moe::ActivationKind::kReLU
                                      ? "ReLU"
                                      : "GELU";
                         });

TEST(ExpertBackward, EmptyAndSingleRowSpans) {
  Rng rng(41);
  moe::ExpertFFN expert(6, 8, moe::ActivationKind::kReLU, rng);
  Tensor in(Shape{4, 6}), mid_buf(Shape{4, 8}), out_buf(Shape{4, 6});
  Tensor dout(Shape{4, 6}), din(Shape{4, 6});
  init_normal(in, rng);
  init_normal(dout, rng);

  // Empty span list: backward_rows must be a no-op on buffers and grads.
  expert.zero_grad();
  const Tensor din0 = din.clone();
  expert.backward_rows(dout, in, mid_buf, {}, din);
  EXPECT_EQ(max_abs_diff(din, din0), 0.0f);
  for (Tensor* g : expert.gradients()) EXPECT_EQ(g->abs_max(), 0.0f);

  // One single-row span equals the dense backward on that row.
  moe::RowSpanList one = {{2, 1}};
  expert.forward_rows(in, one, mid_buf, out_buf);
  expert.zero_grad();
  expert.backward_rows(dout, in, mid_buf, one, din);
  Tensor x1 = in.slice_rows(2, 3);
  Tensor dy1 = dout.slice_rows(2, 3);
  moe::ExpertFFN ref(6, 8, moe::ActivationKind::kReLU, rng);
  // Same weights: copy via parameters.
  auto wsrc = expert.parameters();
  auto wdst = ref.parameters();
  for (std::size_t i = 0; i < wsrc.size(); ++i) {
    for (std::int64_t j = 0; j < wsrc[i]->numel(); ++j) {
      wdst[i]->at(j) = wsrc[i]->at(j);
    }
  }
  Tensor mid1;
  ref.forward(x1, mid1);
  ref.zero_grad();
  Tensor dx1 = ref.backward(dy1, x1, mid1);
  expect_close(din.slice_rows(2, 3), dx1, 1e-5f, 1e-6f);
  auto g1 = expert.gradients();
  auto g2 = ref.gradients();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    expect_close(*g1[i], *g2[i], 1e-5f, 1e-6f);
  }
}

TEST(LayerNormBackward, FiniteDifferencesOnRaggedShapes) {
  Rng rng(51);
  for (std::int64_t rows : {1, 3}) {
    for (std::int64_t dim : {1, 5, 8, 13}) {
      moe::LayerNorm ln(dim);
      init_normal(ln.gamma(), rng, 1.0f);
      init_normal(ln.beta(), rng, 0.5f);
      Tensor x(Shape{rows, dim});
      init_normal(x, rng);
      auto fwd = ln.forward(x);
      Tensor dy(fwd.output.shape());
      init_normal(dy, rng);
      ln.zero_grad();
      Tensor dx = ln.backward(dy, fwd);
      auto fwd_fn = [&](const Tensor& xin) { return ln.forward(xin).output; };
      const float h = 1e-3f;
      for (std::int64_t idx = 0; idx < x.numel();
           idx += std::max<std::int64_t>(1, x.numel() / 4)) {
        EXPECT_NEAR(dx.at(idx), finite_diff(fwd_fn, x, dy, idx, h), 3e-2)
            << "rows=" << rows << " dim=" << dim << " idx=" << idx;
      }
      // gamma/beta grads: direct formulas, fp64.
      for (std::int64_t c = 0; c < dim; ++c) {
        double gg = 0.0, bg = 0.0;
        for (std::int64_t r = 0; r < rows; ++r) {
          gg += static_cast<double>(dy.at(r, c)) * fwd.normalized.at(r, c);
          bg += dy.at(r, c);
        }
        EXPECT_NEAR(ln.gamma_grad().at(c), gg, 1e-3) << "dim=" << dim;
        EXPECT_NEAR(ln.beta_grad().at(c), bg, 1e-3) << "dim=" << dim;
      }
    }
  }
}

TEST(SoftmaxBackward, FiniteDifferencesOnRaggedShapes) {
  Rng rng(61);
  for (std::int64_t rows : {1, 4}) {
    for (std::int64_t cols : {1, 2, 7, 8, 9, 33}) {
      Tensor x(Shape{rows, cols});
      init_normal(x, rng);
      Tensor y = softmax_rows(x);
      Tensor dy(y.shape());
      init_normal(dy, rng);
      Tensor dx = softmax_rows_backward(dy, y);
      auto fwd_fn = [](const Tensor& xin) { return softmax_rows(xin); };
      const float h = 1e-3f;
      for (std::int64_t idx = 0; idx < x.numel();
           idx += std::max<std::int64_t>(1, x.numel() / 5)) {
        EXPECT_NEAR(dx.at(idx), finite_diff(fwd_fn, x, dy, idx, h), 2e-2)
            << "rows=" << rows << " cols=" << cols << " idx=" << idx;
      }
    }
  }
}

}  // namespace
}  // namespace mpipe
