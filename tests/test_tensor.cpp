// Tensor and Shape fundamentals: construction, accessors, slicing,
// reshaping, reductions, comparison helpers.

#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/random_init.h"
#include "tensor/tensor.h"

namespace mpipe {
namespace {

TEST(Shape, BasicsAndStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.to_string(), "(2, 3, 4)");
}

TEST(Shape, EqualityAndWithDim) {
  Shape a{2, 3};
  Shape b{2, 3};
  Shape c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.with_dim(0, 5), (Shape{5, 3}));
}

TEST(Shape, RejectsNegativeAndOutOfRange) {
  EXPECT_THROW(Shape({-1, 2}), CheckError);
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), CheckError);
  EXPECT_THROW(s.stride(5), CheckError);
}

TEST(Shape, ZeroDimensionGivesZeroNumel) {
  Shape s{0, 7};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Tensor, ZeroInitialisedAndFill) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.sum(), 0.0);
  t.fill(2.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(t.sum()), 24.0f);
  EXPECT_EQ(t.nbytes(), 48u);
}

TEST(Tensor, CopiesShareStorageCloneDoesNot) {
  Tensor a(Shape{2, 2});
  Tensor shared = a;
  Tensor deep = a.clone();
  a.at(0, 0) = 5.0f;
  EXPECT_FLOAT_EQ(shared.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(deep.at(0, 0), 0.0f);
}

TEST(Tensor, SliceAndCopyRows) {
  Tensor t(Shape{4, 3});
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      t.at(r, c) = static_cast<float>(10 * r + c);
    }
  }
  Tensor mid = t.slice_rows(1, 3);
  EXPECT_EQ(mid.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(mid.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(mid.at(1, 2), 22.0f);

  Tensor dst(Shape{4, 3});
  dst.copy_into_rows(2, mid);
  EXPECT_FLOAT_EQ(dst.at(2, 0), 10.0f);
  EXPECT_FLOAT_EQ(dst.at(3, 2), 22.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 0.0f);
}

TEST(Tensor, SliceBoundsChecked) {
  Tensor t(Shape{4, 3});
  EXPECT_THROW(t.slice_rows(3, 5), CheckError);
  EXPECT_THROW(t.slice_rows(-1, 2), CheckError);
  Tensor src(Shape{2, 3});
  EXPECT_THROW(t.copy_into_rows(3, src), CheckError);
  Tensor wrong(Shape{2, 4});
  EXPECT_THROW(t.copy_into_rows(0, wrong), CheckError);
}

TEST(Tensor, ReshapeSharesData) {
  Tensor t(Shape{2, 6});
  t.at(1, 5) = 9.0f;
  Tensor v = t.reshape(Shape{3, 4});
  EXPECT_FLOAT_EQ(v.at(2, 3), 9.0f);
  v.at(0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 7.0f);
  EXPECT_THROW(t.reshape(Shape{5, 2}), CheckError);
}

TEST(Tensor, NullTensorThrowsOnAccess) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), CheckError);
  EXPECT_THROW(t.fill(1.0f), CheckError);
}

TEST(Tensor, AbsMaxAndMaxAbsDiff) {
  Tensor a(Shape{3});
  a.at(0) = -5.0f;
  a.at(1) = 2.0f;
  EXPECT_FLOAT_EQ(a.abs_max(), 5.0f);
  Tensor b = a.clone();
  b.at(2) = 1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.5f);
}

TEST(Tensor, AllcloseRespectsTolerances) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = Tensor::full(Shape{4}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::full(Shape{4}, 1.1f);
  EXPECT_FALSE(allclose(a, c));
  EXPECT_FALSE(allclose(a, Tensor(Shape{5})));
}

TEST(RandomInit, DeterministicPerSeed) {
  Rng rng1(9), rng2(9);
  Tensor a(Shape{32});
  Tensor b(Shape{32});
  init_normal(a, rng1, 1.0f);
  init_normal(b, rng2, 1.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(RandomInit, KaimingBoundsRespected) {
  Rng rng(3);
  Tensor w(Shape{64, 16});
  init_kaiming(w, rng, 64);
  const float bound = std::sqrt(6.0f / 64.0f);
  EXPECT_LE(w.abs_max(), bound);
  EXPECT_GT(w.abs_max(), 0.0f);
}

}  // namespace
}  // namespace mpipe
