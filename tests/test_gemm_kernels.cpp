// The packed GEMM micro-kernel path: every transpose variant and fused
// epilogue against a naive reference on ragged shapes, the grain contract
// of the lock-light parallel_for, and span-vs-row-index equivalence of the
// dispatcher's receive-buffer layout.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "moe/dispatcher.h"
#include "moe/expert.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe {
namespace {

/// Scalar triple-loop reference with fp64 accumulation.
Tensor reference_gemm(const Tensor& a, const Tensor& b, bool trans_a,
                      bool trans_b, const Tensor* c_in = nullptr) {
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = c_in ? c_in->at(i, j) : 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a.at(kk, i) : a.at(i, kk);
        const float bv = trans_b ? b.at(j, kk) : b.at(kk, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const Tensor& got, const Tensor& want, float rtol = 1e-3f) {
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_TRUE(allclose(got, want, rtol, 1e-4f))
      << "max |diff| = " << max_abs_diff(got, want);
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmVariants : public testing::TestWithParam<GemmShape> {};

TEST_P(GemmVariants, NNMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  Tensor a(Shape{m, k}), b(Shape{k, n}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  gemm(a, b, c);
  expect_close(c, reference_gemm(a, b, false, false));
}

TEST_P(GemmVariants, NNAccumulates) {
  const auto [m, k, n] = GetParam();
  Rng rng(8);
  Tensor a(Shape{m, k}), b(Shape{k, n}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(c, rng);
  const Tensor c0 = c.clone();
  gemm(a, b, c, /*accumulate=*/true);
  expect_close(c, reference_gemm(a, b, false, false, &c0));
}

TEST_P(GemmVariants, NTMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(9);
  Tensor a(Shape{m, k}), b(Shape{n, k}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  gemm_nt(a, b, c);
  expect_close(c, reference_gemm(a, b, false, true));
}

TEST_P(GemmVariants, NTAccumulates) {
  const auto [m, k, n] = GetParam();
  Rng rng(10);
  Tensor a(Shape{m, k}), b(Shape{n, k}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(c, rng);
  const Tensor c0 = c.clone();
  gemm_nt(a, b, c, /*accumulate=*/true);
  expect_close(c, reference_gemm(a, b, false, true, &c0));
}

TEST_P(GemmVariants, TNMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(11);
  Tensor a(Shape{k, m}), b(Shape{k, n}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  gemm_tn(a, b, c);
  expect_close(c, reference_gemm(a, b, true, false));
}

TEST_P(GemmVariants, TNAccumulates) {
  const auto [m, k, n] = GetParam();
  Rng rng(12);
  Tensor a(Shape{k, m}), b(Shape{k, n}), c(Shape{m, n});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(c, rng);
  const Tensor c0 = c.clone();
  gemm_tn(a, b, c, /*accumulate=*/true);
  expect_close(c, reference_gemm(a, b, true, false, &c0));
}

TEST_P(GemmVariants, FusedEpiloguesMatchSeparatePasses) {
  const auto [m, k, n] = GetParam();
  Rng rng(13);
  Tensor a(Shape{m, k}), b(Shape{k, n}), bias(Shape{n});
  init_normal(a, rng);
  init_normal(b, rng);
  init_normal(bias, rng);

  Tensor want = reference_gemm(a, b, false, false);
  add_bias_(want, bias);

  Tensor got(Shape{m, n});
  gemm_bias(a, b, bias, got);
  expect_close(got, want);

  gemm_bias_act(a, b, bias, GemmEpilogue::kBiasReLU, got);
  expect_close(got, relu(want));

  gemm_bias_act(a, b, bias, GemmEpilogue::kBiasGELU, got);
  expect_close(got, gelu(want));
}

// Ragged shapes around every blocking boundary: unit, primes, tall/skinny,
// wide/flat, and micro-tile edges (the packed kernel is 8x16 over
// 64x128x256 panels).
INSTANTIATE_TEST_SUITE_P(
    Ragged, GemmVariants,
    testing::Values(GemmShape{1, 1, 1}, GemmShape{17, 13, 29},
                    GemmShape{8, 16, 16}, GemmShape{9, 257, 17},
                    GemmShape{257, 8, 3}, GemmShape{3, 5, 301},
                    GemmShape{65, 129, 127}, GemmShape{64, 256, 128},
                    GemmShape{100, 300, 70}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n);
    });

TEST(GemmEdge, MatmulAndZeroInput) {
  Rng rng(3);
  Tensor a(Shape{5, 4}), b(Shape{4, 6});
  init_normal(a, rng);
  init_normal(b, rng);
  expect_close(matmul(a, b), reference_gemm(a, b, false, false));

  // All-zero A must produce exactly zero (and not disturb accumulate).
  Tensor z(Shape{5, 4});
  Tensor c(Shape{5, 6});
  c.fill(2.0f);
  gemm(z, b, c, /*accumulate=*/true);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(c.at(i), 2.0f);
  }
  gemm(z, b, c, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c.abs_max(), 0.0f);
}

// ---- parallel_for contract ------------------------------------------------

TEST(ParallelFor, ChunkBoundariesHonorGrain) {
  ThreadPool pool(4);
  const std::size_t n = 100, grain = 16;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(begin, end);
      },
      grain);
  // Chunks start on grain multiples and tile [0, n) exactly once.
  std::vector<bool> covered(n, false);
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin % grain, 0u) << "chunk start off the grain grid";
    ASSERT_LT(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_FALSE(covered[i]);
      covered[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool v) { return v; }));
}

TEST(ParallelFor, SmallRangeRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      10,
      [&](std::size_t begin, std::size_t end) {
        chunks.emplace_back(begin, end);
      },
      64);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 10}));
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   64,
                   [&](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::runtime_error("boom");
                   },
                   1),
               std::runtime_error);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_sum{0};
  pool.parallel_for(
      8,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // Nested parallel_for on the same pool: must run (inline on a
          // worker, participating from the caller) without deadlocking.
          pool.parallel_for(
              4, [&](std::size_t b, std::size_t e) {
                inner_sum +=
                    static_cast<int>(e) - static_cast<int>(b);
              },
              1);
        }
      },
      1);
  EXPECT_EQ(inner_sum.load(), 8 * 4);
}

// ---- dispatcher span layout ----------------------------------------------

TEST(DispatcherSpans, SpansMatchPerRowIndexReconstruction) {
  // Reconstruct the per-row expert assignment of the receive buffer the
  // pre-span way (walk each source block in expert-sorted order) and check
  // the plan's spans cover exactly those rows.
  const int devices = 3, experts_per_device = 4, partitions = 2;
  const std::int64_t tokens = 53;
  Rng rng(99);
  std::vector<std::vector<std::int64_t>> expert_of(devices);
  for (auto& v : expert_of) {
    for (std::int64_t t = 0; t < tokens; ++t) {
      v.push_back(static_cast<std::int64_t>(
          rng.uniform_index(devices * experts_per_device)));
    }
  }
  const auto plan = moe::Dispatcher::build(expert_of, devices,
                                           experts_per_device, partitions);

  for (const auto& part : plan.parts) {
    for (int dst = 0; dst < devices; ++dst) {
      // Per-row reference: for each source block, tokens arrive sorted by
      // expert; rows for local expert e are the block rows whose token
      // routed to global expert dst*experts_per_device + e.
      std::vector<std::vector<std::int64_t>> want(
          static_cast<std::size_t>(experts_per_device));
      for (int srcd = 0; srcd < devices; ++srcd) {
        std::int64_t row = part.recv_offset[static_cast<std::size_t>(dst)]
                                           [static_cast<std::size_t>(srcd)];
        const auto& routing = part.src[static_cast<std::size_t>(srcd)];
        for (std::int64_t t : routing.order) {
          const std::int64_t e =
              expert_of[static_cast<std::size_t>(srcd)]
                       [static_cast<std::size_t>(t)];
          if (static_cast<int>(e / experts_per_device) != dst) continue;
          want[static_cast<std::size_t>(e % experts_per_device)].push_back(
              row);
          ++row;
        }
      }
      for (int local = 0; local < experts_per_device; ++local) {
        std::vector<std::int64_t> got;
        for (const moe::RowSpan& s :
             part.expert_spans[static_cast<std::size_t>(dst)]
                              [static_cast<std::size_t>(local)]) {
          for (std::int64_t r = s.offset; r < s.offset + s.count; ++r) {
            got.push_back(r);
          }
        }
        EXPECT_EQ(got, want[static_cast<std::size_t>(local)])
            << "dst " << dst << " expert " << local;
      }
    }
  }
}

TEST(DispatcherSpans, GatherScatterRoundTrip) {
  Rng rng(21);
  Tensor buf = Tensor(Shape{10, 3});
  init_normal(buf, rng);
  const moe::RowSpanList spans = {{0, 2}, {5, 1}, {7, 3}};
  EXPECT_EQ(moe::span_rows(spans), 6);
  Tensor packed = moe::gather_spans(buf, spans);
  ASSERT_EQ(packed.dim(0), 6);
  Tensor restored(Shape{10, 3});
  moe::scatter_spans(packed, restored, spans);
  for (const moe::RowSpan& s : spans) {
    EXPECT_FLOAT_EQ(
        max_abs_diff(restored.slice_rows(s.offset, s.offset + s.count),
                     buf.slice_rows(s.offset, s.offset + s.count)),
        0.0f);
  }
  // Rows outside the spans stay zero.
  EXPECT_FLOAT_EQ(restored.slice_rows(2, 5).abs_max(), 0.0f);
}

}  // namespace
}  // namespace mpipe
