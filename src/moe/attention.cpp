#include "moe/attention.h"

#include <cmath>

#include "common/check.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe::moe {

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model, int num_heads,
                                       bool causal, Rng& rng)
    : num_heads_(num_heads),
      causal_(causal),
      wq_(Shape{d_model, d_model}),
      wk_(Shape{d_model, d_model}),
      wv_(Shape{d_model, d_model}),
      wo_(Shape{d_model, d_model}),
      gwq_(Shape{d_model, d_model}),
      gwk_(Shape{d_model, d_model}),
      gwv_(Shape{d_model, d_model}),
      gwo_(Shape{d_model, d_model}) {
  MPIPE_EXPECTS(num_heads >= 1, "need at least one head");
  MPIPE_EXPECTS(d_model % num_heads == 0, "heads must divide d_model");
  init_kaiming(wq_, rng, d_model);
  init_kaiming(wk_, rng, d_model);
  init_kaiming(wv_, rng, d_model);
  init_kaiming(wo_, rng, d_model);
}

namespace {

/// Extracts head h of a (B, M) projection as a (B, Dh) matrix.
Tensor head_slice(const Tensor& t, int h, std::int64_t dh) {
  const std::int64_t b = t.dim(0);
  Tensor out(Shape{b, dh});
  for (std::int64_t r = 0; r < b; ++r) {
    for (std::int64_t c = 0; c < dh; ++c) {
      out.at(r, c) = t.at(r, h * dh + c);
    }
  }
  return out;
}

void head_scatter_add(Tensor& dst, const Tensor& src, int h,
                      std::int64_t dh) {
  const std::int64_t b = src.dim(0);
  for (std::int64_t r = 0; r < b; ++r) {
    for (std::int64_t c = 0; c < dh; ++c) {
      dst.at(r, h * dh + c) += src.at(r, c);
    }
  }
}

void apply_causal_mask(Tensor& logits) {
  const std::int64_t b = logits.dim(0);
  for (std::int64_t r = 0; r < b; ++r) {
    for (std::int64_t c = r + 1; c < logits.dim(1); ++c) {
      logits.at(r, c) = -1e30f;
    }
  }
}

}  // namespace

AttentionForward MultiHeadAttention::forward(const Tensor& x) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == d_model(),
                "attention input must be (B, M)");
  const std::int64_t b = x.dim(0);
  const std::int64_t dh = d_model() / num_heads_;
  AttentionForward out;
  out.q = matmul(x, wq_);
  out.k = matmul(x, wk_);
  out.v = matmul(x, wv_);
  out.scores = Tensor(Shape{static_cast<std::int64_t>(num_heads_) * b, b});
  out.context = Tensor(Shape{b, d_model()});
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int h = 0; h < num_heads_; ++h) {
    Tensor qh = head_slice(out.q, h, dh);
    Tensor kh = head_slice(out.k, h, dh);
    Tensor vh = head_slice(out.v, h, dh);
    Tensor logits(Shape{b, b});
    gemm_nt(qh, kh, logits);
    scale_(logits, inv_sqrt);
    if (causal_) apply_causal_mask(logits);
    Tensor probs = softmax_rows(logits);
    out.scores.copy_into_rows(static_cast<std::int64_t>(h) * b,
                              probs.reshape(Shape{b, b}));
    Tensor ctx = matmul(probs, vh);
    head_scatter_add(out.context, ctx, h, dh);
  }
  out.output = matmul(out.context, wo_);
  return out;
}

Tensor MultiHeadAttention::backward(const Tensor& dy, const Tensor& x,
                                    const AttentionForward& fwd) {
  const std::int64_t b = x.dim(0);
  const std::int64_t dh = d_model() / num_heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  // Output projection.
  gemm_tn(fwd.context, dy, gwo_, /*accumulate=*/true);
  Tensor dcontext(Shape{b, d_model()});
  gemm_nt(dy, wo_, dcontext);

  Tensor dq(Shape{b, d_model()});
  Tensor dk(Shape{b, d_model()});
  Tensor dv(Shape{b, d_model()});

  for (int h = 0; h < num_heads_; ++h) {
    Tensor qh = head_slice(fwd.q, h, dh);
    Tensor kh = head_slice(fwd.k, h, dh);
    Tensor vh = head_slice(fwd.v, h, dh);
    Tensor probs = fwd.scores.slice_rows(static_cast<std::int64_t>(h) * b,
                                         static_cast<std::int64_t>(h + 1) * b);
    Tensor dctx_h = head_slice(dcontext, h, dh);

    // context = probs @ V.
    Tensor dprobs(Shape{b, b});
    gemm_nt(dctx_h, vh, dprobs);
    Tensor dvh(Shape{b, dh});
    gemm_tn(probs, dctx_h, dvh);

    Tensor dlogits = softmax_rows_backward(dprobs, probs);
    scale_(dlogits, inv_sqrt);
    // Causal-masked entries had probability 0, so the softmax backward
    // already zeroes their gradient.
    Tensor dqh(Shape{b, dh});
    gemm(dlogits, kh, dqh);
    Tensor dkh(Shape{b, dh});
    gemm_tn(dlogits, qh, dkh);

    head_scatter_add(dq, dqh, h, dh);
    head_scatter_add(dk, dkh, h, dh);
    head_scatter_add(dv, dvh, h, dh);
  }

  gemm_tn(x, dq, gwq_, /*accumulate=*/true);
  gemm_tn(x, dk, gwk_, /*accumulate=*/true);
  gemm_tn(x, dv, gwv_, /*accumulate=*/true);

  Tensor dx(Shape{b, d_model()});
  Tensor tmp(Shape{b, d_model()});
  gemm_nt(dq, wq_, dx);
  gemm_nt(dk, wk_, tmp);
  add_(dx, tmp);
  gemm_nt(dv, wv_, tmp);
  add_(dx, tmp);
  return dx;
}

void MultiHeadAttention::zero_grad() {
  gwq_.zero();
  gwk_.zero();
  gwv_.zero();
  gwo_.zero();
}

std::vector<Tensor*> MultiHeadAttention::parameters() {
  return {&wq_, &wk_, &wv_, &wo_};
}

std::vector<Tensor*> MultiHeadAttention::gradients() {
  return {&gwq_, &gwk_, &gwv_, &gwo_};
}

}  // namespace mpipe::moe
