#pragma once
/// \file layer_norm.h
/// Row-wise LayerNorm with affine parameters and exact manual backward.
/// Used by the transformer-block examples around attention and the MoE FFN.

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mpipe::moe {

struct LayerNormForward {
  Tensor normalized;  ///< (B, M) — pre-affine normalized values
  Tensor inv_std;     ///< (B) per-row 1/sqrt(var + eps)
  Tensor output;      ///< (B, M)
};

class LayerNorm {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);

  LayerNormForward forward(const Tensor& x) const;

  /// Returns dX; accumulates gamma/beta gradients.
  Tensor backward(const Tensor& dy, const LayerNormForward& fwd);

  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  Tensor& gamma_grad() { return gamma_grad_; }
  Tensor& beta_grad() { return beta_grad_; }
  void zero_grad();

  std::int64_t dim() const { return gamma_.dim(0); }

 private:
  float eps_;
  Tensor gamma_, beta_;
  Tensor gamma_grad_, beta_grad_;
};

}  // namespace mpipe::moe
