#include "moe/layer_norm.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace mpipe::moe {

namespace {

#if defined(MPIPE_SIMD)

using simd::kLanes;
using simd::VF;

/// One row of the forward pass: normalize, then affine. Lane-split fp32
/// accumulation for mean/variance (8 partial sums — at least as accurate
/// as a serial fp32 sum for the dims used here).
void forward_row(const float* MPIPE_RESTRICT row, std::int64_t cols,
                 const float* MPIPE_RESTRICT g, const float* MPIPE_RESTRICT b,
                 float eps, float* MPIPE_RESTRICT n, float* MPIPE_RESTRICT o,
                 float* inv_std_out) {
  VF vsum = {};
  std::int64_t c = 0;
  for (; c + kLanes <= cols; c += kLanes) vsum += simd::load(row + c);
  float mean = simd::hsum(vsum);
  for (; c < cols; ++c) mean += row[c];
  mean /= static_cast<float>(cols);

  const VF vmean = simd::splat(mean);
  VF vvar = {};
  float var = 0.0f;
  for (c = 0; c + kLanes <= cols; c += kLanes) {
    const VF d = simd::load(row + c) - vmean;
    vvar += d * d;
  }
  var = simd::hsum(vvar);
  for (; c < cols; ++c) {
    const float d = row[c] - mean;
    var += d * d;
  }
  var /= static_cast<float>(cols);

  const float inv = 1.0f / std::sqrt(var + eps);
  *inv_std_out = inv;
  const VF vinv = simd::splat(inv);
  for (c = 0; c + kLanes <= cols; c += kLanes) {
    const VF nv = (simd::load(row + c) - vmean) * vinv;
    simd::store(n + c, nv);
    simd::store(o + c, nv * simd::load(g + c) + simd::load(b + c));
  }
  for (; c < cols; ++c) {
    n[c] = (row[c] - mean) * inv;
    o[c] = n[c] * g[c] + b[c];
  }
}

/// One row of the backward pass. Parameter-grad accumulation happens in
/// the caller's serial row loop (fixed order => deterministic under any
/// thread count); this handles the dn sums and the dX write.
void backward_row(const float* MPIPE_RESTRICT gy,
                  const float* MPIPE_RESTRICT nr, std::int64_t cols,
                  const float* MPIPE_RESTRICT g, float inv_std,
                  float* MPIPE_RESTRICT gg, float* MPIPE_RESTRICT bg,
                  float* MPIPE_RESTRICT ox) {
  VF vsum_dn = {}, vsum_dn_n = {};
  float sum_dn = 0.0f, sum_dn_n = 0.0f;
  std::int64_t c = 0;
  for (; c + kLanes <= cols; c += kLanes) {
    const VF vgy = simd::load(gy + c);
    const VF vn = simd::load(nr + c);
    const VF dn = vgy * simd::load(g + c);
    vsum_dn += dn;
    vsum_dn_n += dn * vn;
    simd::store(gg + c, simd::load(gg + c) + vgy * vn);
    simd::store(bg + c, simd::load(bg + c) + vgy);
  }
  sum_dn = simd::hsum(vsum_dn);
  sum_dn_n = simd::hsum(vsum_dn_n);
  for (; c < cols; ++c) {
    const float dn = gy[c] * g[c];
    sum_dn += dn;
    sum_dn_n += dn * nr[c];
    gg[c] += gy[c] * nr[c];
    bg[c] += gy[c];
  }

  const float invc = 1.0f / static_cast<float>(cols);
  const float mean_dn = sum_dn * invc;
  const float mean_dn_n = sum_dn_n * invc;
  const VF vmean_dn = simd::splat(mean_dn);
  const VF vmean_dn_n = simd::splat(mean_dn_n);
  const VF vinv = simd::splat(inv_std);
  for (c = 0; c + kLanes <= cols; c += kLanes) {
    const VF dn = simd::load(gy + c) * simd::load(g + c);
    simd::store(ox + c,
                vinv * (dn - vmean_dn - simd::load(nr + c) * vmean_dn_n));
  }
  for (; c < cols; ++c) {
    const float dn = gy[c] * g[c];
    ox[c] = inv_std * (dn - mean_dn - nr[c] * mean_dn_n);
  }
}

#else  // portable scalar fallback

void forward_row(const float* row, std::int64_t cols, const float* g,
                 const float* b, float eps, float* n, float* o,
                 float* inv_std_out) {
  float mean = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) mean += row[c];
  mean /= static_cast<float>(cols);
  float var = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float d = row[c] - mean;
    var += d * d;
  }
  var /= static_cast<float>(cols);
  const float inv = 1.0f / std::sqrt(var + eps);
  *inv_std_out = inv;
  for (std::int64_t c = 0; c < cols; ++c) {
    n[c] = (row[c] - mean) * inv;
    o[c] = n[c] * g[c] + b[c];
  }
}

void backward_row(const float* gy, const float* nr, std::int64_t cols,
                  const float* g, float inv_std, float* gg, float* bg,
                  float* ox) {
  float sum_dn = 0.0f, sum_dn_n = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float dn = gy[c] * g[c];
    sum_dn += dn;
    sum_dn_n += dn * nr[c];
    gg[c] += gy[c] * nr[c];
    bg[c] += gy[c];
  }
  const float invc = 1.0f / static_cast<float>(cols);
  const float mean_dn = sum_dn * invc;
  const float mean_dn_n = sum_dn_n * invc;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float dn = gy[c] * g[c];
    ox[c] = inv_std * (dn - mean_dn - nr[c] * mean_dn_n);
  }
}

#endif  // MPIPE_SIMD

}  // namespace

LayerNorm::LayerNorm(std::int64_t dim, float eps)
    : eps_(eps),
      gamma_(Tensor::full(Shape{dim}, 1.0f)),
      beta_(Shape{dim}),
      gamma_grad_(Shape{dim}),
      beta_grad_(Shape{dim}) {
  MPIPE_EXPECTS(dim > 0, "layer norm over empty dimension");
}

LayerNormForward LayerNorm::forward(const Tensor& x) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == dim(),
                "layer norm input must be (B, dim)");
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  LayerNormForward out;
  out.normalized = Tensor(x.shape());
  out.inv_std = Tensor(Shape{rows});
  out.output = Tensor(x.shape());
  const float* px = x.data();
  const float* pg = gamma_.data();
  const float* pb = beta_.data();
  float* pn = out.normalized.data();
  float* ps = out.inv_std.data();
  float* po = out.output.data();
  // Rows are independent (parameters read-only), so this parallelizes
  // without affecting the per-row arithmetic order.
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(rows),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          forward_row(px + r * cols, cols, pg, pb, eps_, pn + r * cols,
                      po + r * cols, ps + r);
        }
      },
      /*grain=*/16);
  return out;
}

Tensor LayerNorm::backward(const Tensor& dy, const LayerNormForward& fwd) {
  MPIPE_EXPECTS(dy.shape() == fwd.output.shape(), "dy shape mismatch");
  const std::int64_t rows = dy.dim(0), cols = dy.dim(1);
  Tensor dx(dy.shape());
  const float* pdy = dy.data();
  const float* pn = fwd.normalized.data();
  const float* ps = fwd.inv_std.data();
  const float* pg = gamma_.data();
  float* pgg = gamma_grad_.data();
  float* pbg = beta_grad_.data();
  float* pdx = dx.data();
  // Serial over rows: gamma/beta grads accumulate across rows, and a fixed
  // row order keeps the result bitwise independent of the thread count.
  // dX per row: dx = inv_std * (dn - mean(dn) - n * mean(dn * n)),
  // where dn = dy * gamma.
  for (std::int64_t r = 0; r < rows; ++r) {
    backward_row(pdy + r * cols, pn + r * cols, cols, pg, ps[r], pgg, pbg,
                 pdx + r * cols);
  }
  return dx;
}

void LayerNorm::zero_grad() {
  gamma_grad_.zero();
  beta_grad_.zero();
}

}  // namespace mpipe::moe
