#include "moe/layer_norm.h"

#include <cmath>

#include "common/check.h"

namespace mpipe::moe {

LayerNorm::LayerNorm(std::int64_t dim, float eps)
    : eps_(eps),
      gamma_(Tensor::full(Shape{dim}, 1.0f)),
      beta_(Shape{dim}),
      gamma_grad_(Shape{dim}),
      beta_grad_(Shape{dim}) {
  MPIPE_EXPECTS(dim > 0, "layer norm over empty dimension");
}

LayerNormForward LayerNorm::forward(const Tensor& x) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == dim(),
                "layer norm input must be (B, dim)");
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  LayerNormForward out;
  out.normalized = Tensor(x.shape());
  out.inv_std = Tensor(Shape{rows});
  out.output = Tensor(x.shape());
  const float* px = x.data();
  const float* pg = gamma_.data();
  const float* pb = beta_.data();
  float* pn = out.normalized.data();
  float* ps = out.inv_std.data();
  float* po = out.output.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * cols;
    double mean = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) mean += row[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const double d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + eps_));
    ps[r] = inv;
    float* nrow = pn + r * cols;
    float* orow = po + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      nrow[c] = (row[c] - static_cast<float>(mean)) * inv;
      orow[c] = nrow[c] * pg[c] + pb[c];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& dy, const LayerNormForward& fwd) {
  MPIPE_EXPECTS(dy.shape() == fwd.output.shape(), "dy shape mismatch");
  const std::int64_t rows = dy.dim(0), cols = dy.dim(1);
  Tensor dx(dy.shape());
  const float* pdy = dy.data();
  const float* pn = fwd.normalized.data();
  const float* ps = fwd.inv_std.data();
  const float* pg = gamma_.data();
  float* pgg = gamma_grad_.data();
  float* pbg = beta_grad_.data();
  float* pdx = dx.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* gy = pdy + r * cols;
    const float* nr = pn + r * cols;
    float* ox = pdx + r * cols;
    // Parameter grads.
    for (std::int64_t c = 0; c < cols; ++c) {
      pgg[c] += gy[c] * nr[c];
      pbg[c] += gy[c];
    }
    // dX via the standard LayerNorm backward:
    // dx = inv_std/cols * (cols*dn - sum(dn) - n * sum(dn*n)),
    // where dn = dy * gamma.
    double sum_dn = 0.0, sum_dn_n = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const double dn = static_cast<double>(gy[c]) * pg[c];
      sum_dn += dn;
      sum_dn_n += dn * nr[c];
    }
    const double invc = 1.0 / static_cast<double>(cols);
    for (std::int64_t c = 0; c < cols; ++c) {
      const double dn = static_cast<double>(gy[c]) * pg[c];
      ox[c] = static_cast<float>(
          ps[r] * (dn - sum_dn * invc - nr[c] * sum_dn_n * invc));
    }
  }
  return dx;
}

void LayerNorm::zero_grad() {
  gamma_grad_.zero();
  beta_grad_.zero();
}

}  // namespace mpipe::moe
