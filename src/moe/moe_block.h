#pragma once
/// \file moe_block.h
/// The non-distributed pieces of a transformer MoE block: pre-norm
/// attention with residual, plus the second norm in front of the FFN slot.
/// The FFN itself is pluggable — examples wire in core::MoELayer (the
/// distributed MoE FFN) or a dense ExpertFFN for comparison.

#include <functional>

#include "moe/attention.h"
#include "moe/layer_norm.h"

namespace mpipe::moe {

struct BlockForward {
  LayerNormForward ln1;
  AttentionForward attn;
  Tensor after_attn;  ///< x + attention(ln1(x))
  LayerNormForward ln2;
  Tensor ffn_input;   ///< ln2 output fed to the FFN slot
};

/// Pre-norm transformer block scaffold around a pluggable FFN:
///   y = after_attn + FFN(ln2(after_attn)),   after_attn = x + Attn(ln1(x))
class TransformerBlockPieces {
 public:
  TransformerBlockPieces(std::int64_t d_model, int num_heads, bool causal,
                         Rng& rng);

  /// Everything up to (and including) the FFN input.
  BlockForward forward_pre_ffn(const Tensor& x) const;

  /// Combines the FFN output with the residual: y = after_attn + ffn_out.
  static Tensor finish_forward(const BlockForward& fwd,
                               const Tensor& ffn_out);

  /// Backward from dY given the FFN-input gradient produced by the FFN's
  /// own backward. Returns dX. (dY also flows through the FFN residual.)
  Tensor backward(const Tensor& dy, const Tensor& d_ffn_input,
                  const Tensor& x, const BlockForward& fwd);

  LayerNorm& ln1() { return ln1_; }
  LayerNorm& ln2() { return ln2_; }
  MultiHeadAttention& attention() { return attn_; }
  void zero_grad();

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
};

}  // namespace mpipe::moe
