#include "moe/dispatcher.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mpipe::moe {

std::int64_t span_rows(const RowSpanList& spans) {
  std::int64_t total = 0;
  for (const RowSpan& s : spans) total += s.count;
  return total;
}

const PartitionPlan& DispatchPlan::part(int p) const {
  MPIPE_EXPECTS(p >= 0 && p < static_cast<int>(parts.size()),
                "partition index out of range");
  return parts[static_cast<std::size_t>(p)];
}

std::vector<std::int64_t> Dispatcher::chunk_sizes(std::int64_t total, int n) {
  MPIPE_EXPECTS(total >= 0 && n >= 1, "bad chunking arguments");
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(n));
  const std::int64_t base = total / n;
  const std::int64_t rem = total % n;
  for (int i = 0; i < n; ++i) {
    sizes[static_cast<std::size_t>(i)] = base + (i < rem ? 1 : 0);
  }
  return sizes;
}

DispatchPlan Dispatcher::build(
    const std::vector<std::vector<std::int64_t>>& expert_of, int num_devices,
    int experts_per_device, int n_partitions) {
  MPIPE_EXPECTS(num_devices >= 1 && experts_per_device >= 1, "bad sizes");
  MPIPE_EXPECTS(static_cast<int>(expert_of.size()) == num_devices,
                "expert_of must cover every device");
  MPIPE_EXPECTS(n_partitions >= 1, "need at least one partition");
  const std::int64_t tokens = static_cast<std::int64_t>(expert_of[0].size());
  for (const auto& v : expert_of) {
    MPIPE_EXPECTS(static_cast<std::int64_t>(v.size()) == tokens,
                  "devices must hold equal token counts");
  }
  const int num_experts = num_devices * experts_per_device;

  DispatchPlan plan;
  plan.num_devices = num_devices;
  plan.experts_per_device = experts_per_device;
  plan.n_partitions = n_partitions;
  plan.tokens_per_device = tokens;
  plan.synthetic = false;

  const auto chunks = chunk_sizes(tokens, n_partitions);
  std::int64_t begin = 0;
  for (int p = 0; p < n_partitions; ++p) {
    PartitionPlan part;
    part.chunk_begin = begin;
    part.chunk_rows = chunks[static_cast<std::size_t>(p)];
    part.src.resize(static_cast<std::size_t>(num_devices));
    part.recv_rows.assign(static_cast<std::size_t>(num_devices), 0);
    part.recv_offset.assign(static_cast<std::size_t>(num_devices),
                            std::vector<std::int64_t>(
                                static_cast<std::size_t>(num_devices), 0));

    for (int d = 0; d < num_devices; ++d) {
      DeviceRouting& routing = part.src[static_cast<std::size_t>(d)];
      // Single allocation up front; iota + sort never reallocate.
      routing.order.resize(static_cast<std::size_t>(part.chunk_rows));
      std::iota(routing.order.begin(), routing.order.end(),
                part.chunk_begin);
      const auto& experts = expert_of[static_cast<std::size_t>(d)];
      std::stable_sort(routing.order.begin(), routing.order.end(),
                       [&](std::int64_t a, std::int64_t b) {
                         return experts[static_cast<std::size_t>(a)] <
                                experts[static_cast<std::size_t>(b)];
                       });
      routing.send_counts.assign(static_cast<std::size_t>(num_devices), 0);
      routing.counts_per_expert.assign(
          static_cast<std::size_t>(num_devices),
          std::vector<std::int64_t>(
              static_cast<std::size_t>(experts_per_device), 0));
      // The counting pass touches every token anyway, so expert ids are
      // validated here instead of in a separate O(tokens) pre-scan.
      for (std::int64_t row : routing.order) {
        const std::int64_t e = experts[static_cast<std::size_t>(row)];
        MPIPE_CHECK(e >= 0 && e < num_experts, "expert id out of range");
        const int dst = static_cast<int>(e / experts_per_device);
        const int local = static_cast<int>(e % experts_per_device);
        ++routing.send_counts[static_cast<std::size_t>(dst)];
        ++routing.counts_per_expert[static_cast<std::size_t>(dst)]
              [static_cast<std::size_t>(local)];
      }
      routing.send_offsets.assign(static_cast<std::size_t>(num_devices), 0);
      for (int j = 1; j < num_devices; ++j) {
        routing.send_offsets[static_cast<std::size_t>(j)] =
            routing.send_offsets[static_cast<std::size_t>(j - 1)] +
            routing.send_counts[static_cast<std::size_t>(j - 1)];
      }
    }

    // Receive layout: source-major blocks, expert-major within a block.
    for (int dst = 0; dst < num_devices; ++dst) {
      std::int64_t offset = 0;
      for (int srcd = 0; srcd < num_devices; ++srcd) {
        part.recv_offset[static_cast<std::size_t>(dst)]
            [static_cast<std::size_t>(srcd)] = offset;
        offset += part.src[static_cast<std::size_t>(srcd)]
                      .send_counts[static_cast<std::size_t>(dst)];
      }
      part.recv_rows[static_cast<std::size_t>(dst)] = offset;
      plan.max_recv_rows = std::max(plan.max_recv_rows, offset);
    }

    // Per local expert: receive-buffer spans. Within each source block
    // tokens are expert-sorted, so each (src, expert) group is one
    // contiguous span at a computable offset — no per-row indices.
    part.expert_spans.assign(
        static_cast<std::size_t>(num_devices),
        std::vector<RowSpanList>(
            static_cast<std::size_t>(experts_per_device)));
    for (int dst = 0; dst < num_devices; ++dst) {
      for (int srcd = 0; srcd < num_devices; ++srcd) {
        const DeviceRouting& routing = part.src[static_cast<std::size_t>(srcd)];
        std::int64_t span_begin =
            part.recv_offset[static_cast<std::size_t>(dst)]
                            [static_cast<std::size_t>(srcd)];
        for (int local = 0; local < experts_per_device; ++local) {
          const std::int64_t count =
              routing.counts_per_expert[static_cast<std::size_t>(dst)]
                                       [static_cast<std::size_t>(local)];
          if (count > 0) {
            part.expert_spans[static_cast<std::size_t>(dst)]
                             [static_cast<std::size_t>(local)]
                .push_back(RowSpan{span_begin, count});
          }
          span_begin += count;
        }
      }
    }

    plan.parts.push_back(std::move(part));
    begin += chunks[static_cast<std::size_t>(p)];
  }
  return plan;
}

DispatchPlan Dispatcher::synthetic(std::int64_t tokens_per_device,
                                   int num_devices, int experts_per_device,
                                   int n_partitions, double skew) {
  MPIPE_EXPECTS(tokens_per_device >= 0, "negative token count");
  MPIPE_EXPECTS(num_devices >= 1 && experts_per_device >= 1, "bad sizes");
  MPIPE_EXPECTS(n_partitions >= 1, "need at least one partition");
  MPIPE_EXPECTS(skew >= 0.0 && skew < 1.0, "skew must be in [0, 1)");

  DispatchPlan plan;
  plan.num_devices = num_devices;
  plan.experts_per_device = experts_per_device;
  plan.n_partitions = n_partitions;
  plan.tokens_per_device = tokens_per_device;
  plan.synthetic = true;

  const auto chunks = chunk_sizes(tokens_per_device, n_partitions);
  std::int64_t begin = 0;
  for (int p = 0; p < n_partitions; ++p) {
    PartitionPlan part;
    part.chunk_begin = begin;
    part.chunk_rows = chunks[static_cast<std::size_t>(p)];
    part.src.resize(static_cast<std::size_t>(num_devices));
    part.recv_rows.assign(static_cast<std::size_t>(num_devices), 0);
    part.recv_offset.assign(static_cast<std::size_t>(num_devices),
                            std::vector<std::int64_t>(
                                static_cast<std::size_t>(num_devices), 0));

    // Destination weights: device 0 absorbs `skew` of every sender's extra
    // traffic; the remainder spreads evenly.
    std::vector<double> weight(static_cast<std::size_t>(num_devices),
                               (1.0 - skew) / num_devices);
    weight[0] += skew;

    for (int d = 0; d < num_devices; ++d) {
      DeviceRouting& routing = part.src[static_cast<std::size_t>(d)];
      routing.send_counts.assign(static_cast<std::size_t>(num_devices), 0);
      // Largest-remainder apportionment: floor each ideal share, then hand
      // the leftover rows to the largest fractional parts. Dumping the
      // remainder on one destination would fabricate a hot spot at ragged
      // batch sizes.
      std::int64_t assigned = 0;
      std::vector<std::pair<double, int>> fractional;
      for (int j = 0; j < num_devices; ++j) {
        const double ideal = static_cast<double>(part.chunk_rows) *
                             weight[static_cast<std::size_t>(j)];
        const std::int64_t base = static_cast<std::int64_t>(ideal);
        routing.send_counts[static_cast<std::size_t>(j)] = base;
        assigned += base;
        fractional.emplace_back(-(ideal - static_cast<double>(base)), j);
      }
      std::sort(fractional.begin(), fractional.end());
      for (std::int64_t r = 0; r < part.chunk_rows - assigned; ++r) {
        ++routing.send_counts[static_cast<std::size_t>(
            fractional[static_cast<std::size_t>(r) % fractional.size()]
                .second)];
      }
      routing.send_offsets.assign(static_cast<std::size_t>(num_devices), 0);
      for (int j = 1; j < num_devices; ++j) {
        routing.send_offsets[static_cast<std::size_t>(j)] =
            routing.send_offsets[static_cast<std::size_t>(j - 1)] +
            routing.send_counts[static_cast<std::size_t>(j - 1)];
      }
    }
    for (int dst = 0; dst < num_devices; ++dst) {
      std::int64_t offset = 0;
      for (int srcd = 0; srcd < num_devices; ++srcd) {
        part.recv_offset[static_cast<std::size_t>(dst)]
            [static_cast<std::size_t>(srcd)] = offset;
        offset += part.src[static_cast<std::size_t>(srcd)]
                      .send_counts[static_cast<std::size_t>(dst)];
      }
      part.recv_rows[static_cast<std::size_t>(dst)] = offset;
      plan.max_recv_rows = std::max(plan.max_recv_rows, offset);
    }
    plan.parts.push_back(std::move(part));
    begin += chunks[static_cast<std::size_t>(p)];
  }
  return plan;
}

}  // namespace mpipe::moe
