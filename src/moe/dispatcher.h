#pragma once
/// \file dispatcher.h
/// Routing plans for expert parallelism. Given each token's expert, the
/// dispatcher derives — per pipeline partition — the packed send layout,
/// the AllToAll segment table, and the per-expert row indices on the
/// receiving side. MPipeMoE partitions the batch dimension (paper Fig 5b),
/// so every partition runs its own small, fused AllToAll.
///
/// Two construction modes:
///  - build():      exact plan from real gating decisions (functional runs)
///  - synthetic():  balanced counts only (timing-only runs at paper scale)

#include <cstdint>
#include <vector>

namespace mpipe::moe {

/// A contiguous run of rows in a receive buffer: [offset, offset + count).
/// The receive layout (source-major blocks, expert-sorted within a block)
/// guarantees every (source, expert) group is one such run, so plans carry
/// spans instead of per-row index lists and the compute path moves tokens
/// with block memcpy.
struct RowSpan {
  std::int64_t offset = 0;
  std::int64_t count = 0;

  bool operator==(const RowSpan&) const = default;
};

/// Spans of one local expert, one per contributing source device.
using RowSpanList = std::vector<RowSpan>;

/// Total rows covered by a span list.
std::int64_t span_rows(const RowSpanList& spans);

/// Routing of one source device within one partition.
struct DeviceRouting {
  /// Absolute row ids of this device's chunk, stably sorted by global
  /// expert id (so destination blocks are contiguous, rank-ordered).
  std::vector<std::int64_t> order;
  /// Rows sent to each destination device.
  std::vector<std::int64_t> send_counts;
  /// Prefix sums of send_counts (send-buffer block offsets).
  std::vector<std::int64_t> send_offsets;
  /// Rows per (destination device, local expert).
  std::vector<std::vector<std::int64_t>> counts_per_expert;
};

struct PartitionPlan {
  std::int64_t chunk_begin = 0;  ///< first row of this partition's chunk
  std::int64_t chunk_rows = 0;   ///< rows per device in this partition
  std::vector<DeviceRouting> src;                       ///< [device]
  std::vector<std::int64_t> recv_rows;                  ///< [device]
  std::vector<std::vector<std::int64_t>> recv_offset;   ///< [dst][src]
  /// Contiguous receive-buffer spans per local expert (one span per
  /// contributing source device); empty in synthetic plans.
  std::vector<std::vector<RowSpanList>> expert_spans;
};

struct DispatchPlan {
  int num_devices = 0;
  int experts_per_device = 1;
  int n_partitions = 1;
  std::int64_t tokens_per_device = 0;
  bool synthetic = false;
  std::vector<PartitionPlan> parts;
  /// Largest receive-buffer row count over partitions and devices — the
  /// ring-slot capacity for T_DI / T_M / T_DO.
  std::int64_t max_recv_rows = 0;

  /// Rows of partition p (identical across devices by construction).
  const PartitionPlan& part(int p) const;
};

class Dispatcher {
 public:
  /// Exact plan. `expert_of[d][t]` is the global expert chosen for token t
  /// of device d; all devices hold the same number of tokens.
  static DispatchPlan build(
      const std::vector<std::vector<std::int64_t>>& expert_of,
      int num_devices, int experts_per_device, int n_partitions);

  /// Balanced plan with counts only (no row indices) for timing-only
  /// execution at paper scale. `skew` in [0,1) shifts extra load onto
  /// device 0 (hot-expert imbalance): its receive rows grow by the factor
  /// (1 + skew*(P-1)) while the others shrink accordingly.
  static DispatchPlan synthetic(std::int64_t tokens_per_device,
                                int num_devices, int experts_per_device,
                                int n_partitions, double skew = 0.0);

  /// Splits `total` rows into `n` near-equal chunks (remainder spread over
  /// the leading chunks); returns chunk sizes.
  static std::vector<std::int64_t> chunk_sizes(std::int64_t total, int n);
};

}  // namespace mpipe::moe
