#pragma once
/// \file attention.h
/// Multi-head self-attention with full manual backward — the non-MoE half
/// of a transformer block. Runs data-parallel (each device attends over its
/// own tokens); only the MoE FFN communicates. Finite-difference tested.

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mpipe::moe {

struct AttentionForward {
  Tensor q, k, v;        ///< (B, M) projections
  Tensor scores;         ///< (heads*B, B) post-softmax rows
  Tensor context;        ///< (B, M) pre-output-projection
  Tensor output;         ///< (B, M)
};

class MultiHeadAttention {
 public:
  MultiHeadAttention(std::int64_t d_model, int num_heads, bool causal,
                     Rng& rng);

  /// Self-attention over a (B, M) sequence of tokens.
  AttentionForward forward(const Tensor& x) const;

  /// Returns dX; accumulates projection-weight gradients.
  Tensor backward(const Tensor& dy, const Tensor& x,
                  const AttentionForward& fwd);

  void zero_grad();
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  std::int64_t d_model() const { return wq_.dim(0); }
  int num_heads() const { return num_heads_; }
  bool causal() const { return causal_; }

 private:
  int num_heads_;
  bool causal_;
  Tensor wq_, wk_, wv_, wo_;
  Tensor gwq_, gwk_, gwv_, gwo_;
};

}  // namespace mpipe::moe
