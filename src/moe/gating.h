#pragma once
/// \file gating.h
/// Top-1 softmax gating network (Switch-style). Each token picks the
/// argmax expert; the layer output is scaled by the winning probability so
/// gradients flow into the router. Backward is exact (softmax backward
/// through the selected logit), finite-difference tested.

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mpipe::moe {

struct GatingForward {
  Tensor probs;                          ///< (B, E) softmax router output
  std::vector<std::int64_t> expert_of;   ///< per-token winning expert
  std::vector<float> gate;               ///< per-token winning probability
};

class GatingNetwork {
 public:
  GatingNetwork(std::int64_t d_model, int num_experts, Rng& rng);

  /// Routes a (B, M) token batch.
  GatingForward forward(const Tensor& x) const;

  /// Backward from per-token gate gradients. `x` is the forward input.
  /// Accumulates the router weight gradient and returns dX (B, M).
  Tensor backward(const Tensor& x, const GatingForward& fwd,
                  const std::vector<float>& dgate);

  /// Load-balancing auxiliary loss (Switch Transformer Eq 4):
  /// E * sum_e f_e * p_e, where f_e is the token fraction routed to e and
  /// p_e the mean router probability of e.
  double load_balance_loss(const GatingForward& fwd) const;

  Tensor& weight() { return w_; }
  const Tensor& weight() const { return w_; }
  Tensor& weight_grad() { return w_grad_; }
  void zero_grad() { w_grad_.zero(); }

  std::int64_t d_model() const { return w_.dim(0); }
  int num_experts() const { return static_cast<int>(w_.dim(1)); }

 private:
  Tensor w_;       ///< (M, E)
  Tensor w_grad_;  ///< (M, E)
};

}  // namespace mpipe::moe
