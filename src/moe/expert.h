#pragma once
/// \file expert.h
/// The expert FFN: y = act(x W1 + b1) W2 + b2 — the paper's default expert
/// (two linear layers, activation applied in place). Span-indexed variants
/// let several experts on one device process disjoint contiguous row spans
/// of the shared T_DI / T_M / T_DO partition buffers; tokens move by block
/// memcpy and the GEMMs fuse the bias/activation epilogue.

#include <vector>

#include "common/rng.h"
#include "moe/config.h"
#include "moe/dispatcher.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace mpipe::moe {

class ExpertFFN {
 public:
  ExpertFFN(std::int64_t d_model, std::int64_t d_hidden,
            ActivationKind activation, Rng& rng);

  /// Dense whole-tensor forward: returns output, writes the middle
  /// (post-activation) tensor into `mid`.
  Tensor forward(const Tensor& x, Tensor& mid) const;

  /// Dense backward; accumulates weight grads, returns dX.
  Tensor backward(const Tensor& dy, const Tensor& x, const Tensor& mid);

  /// Span-indexed forward: processes the rows of `in` covered by `spans`,
  /// writing the same rows of `mid_buf` and `out_buf`.
  void forward_rows(const Tensor& in, const RowSpanList& spans,
                    Tensor& mid_buf, Tensor& out_buf) const;

  /// FFN1 only: T_M rows = act(T_DI rows · W1 + b1). Same computation as
  /// recompute_mid_rows; aliased for the pipeline's C1 stage.
  void forward_mid_rows(const Tensor& in_buf, const RowSpanList& spans,
                        Tensor& mid_buf) const {
    recompute_mid_rows(in_buf, spans, mid_buf);
  }

  /// FFN2 only: T_DO rows = T_M rows · W2 + b2 (the pipeline's C2 stage).
  void forward_out_rows(const Tensor& mid_buf, const RowSpanList& spans,
                        Tensor& out_buf) const;

  /// Span-indexed backward: consumes the same rows of dout/in/mid buffers,
  /// writes dX into the rows of `din_buf`, accumulates weight grads.
  void backward_rows(const Tensor& dout_buf, const Tensor& in_buf,
                     const Tensor& mid_buf, const RowSpanList& spans,
                     Tensor& din_buf);

  /// Recompute of T_M rows from restored T_DI rows (strategies S3/S4).
  void recompute_mid_rows(const Tensor& in_buf, const RowSpanList& spans,
                          Tensor& mid_buf) const;

  void zero_grad();

  /// Parameter/grad access for the optimizer (order: w1, b1, w2, b2).
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  /// Total parameter element count (2*H*M + H + M).
  std::int64_t num_params() const;

  std::int64_t d_model() const { return w1_.dim(0); }
  std::int64_t d_hidden() const { return w1_.dim(1); }
  ActivationKind activation() const { return activation_; }

  // ---- mixed-precision weight storage --------------------------------------
  /// Selects the storage dtype for W1/W2 (MoELayerOptions::compute_dtype).
  /// Non-f32 keeps the fp32 tensors as master weights (the optimizer and
  /// weight-grad GEMMs still use them) plus a quantized side copy that
  /// every forward / dX GEMM dequantizes at pack time. kF32 drops the
  /// copies and restores the exact legacy path. Biases stay fp32.
  void set_compute_dtype(DType dtype);
  DType compute_dtype() const { return compute_dtype_; }

  /// Re-quantizes the weight caches from the current master weights.
  /// Must run after every optimizer update (and checkpoint restore) or
  /// the compute path silently uses stale weights. No-op for kF32.
  void refresh_quantized();

  /// Accounted bytes of the quantized W1/W2 copies (0 for kF32) — what a
  /// real device would hold for the forward path instead of fp32 weights.
  std::uint64_t quantized_weight_bytes() const {
    return qw1_.nbytes() + qw2_.nbytes();
  }

 private:
  void ffn1(const Tensor& x, GemmEpilogue ep, Tensor& mid) const;
  void ffn2(const Tensor& act, Tensor& out) const;

  ActivationKind activation_;
  Tensor w1_, b1_, w2_, b2_;
  Tensor gw1_, gb1_, gw2_, gb2_;
  DType compute_dtype_ = DType::kF32;
  QuantizedMatrix qw1_, qw2_;
};

/// Copies the rows of `buf` covered by `spans` into one fresh packed
/// (span_rows x cols) tensor — contiguous block memcpy per span, no
/// per-row temporaries.
Tensor gather_spans(const Tensor& buf, const RowSpanList& spans);

/// Scatters the packed rows of `src` back into the `spans` rows of `buf`
/// (inverse of gather_spans). Spans must cover disjoint buffer rows —
/// dispatch plans always do — because large scatters fan the copies out
/// across the thread pool; overlap throws CheckError.
void scatter_spans(const Tensor& src, Tensor& buf, const RowSpanList& spans);

}  // namespace mpipe::moe
