#include "moe/moe_block.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace mpipe::moe {

TransformerBlockPieces::TransformerBlockPieces(std::int64_t d_model,
                                               int num_heads, bool causal,
                                               Rng& rng)
    : ln1_(d_model), attn_(d_model, num_heads, causal, rng), ln2_(d_model) {}

BlockForward TransformerBlockPieces::forward_pre_ffn(const Tensor& x) const {
  BlockForward out;
  out.ln1 = ln1_.forward(x);
  out.attn = attn_.forward(out.ln1.output);
  out.after_attn = add(x, out.attn.output);
  out.ln2 = ln2_.forward(out.after_attn);
  out.ffn_input = out.ln2.output;
  return out;
}

Tensor TransformerBlockPieces::finish_forward(const BlockForward& fwd,
                                              const Tensor& ffn_out) {
  return add(fwd.after_attn, ffn_out);
}

Tensor TransformerBlockPieces::backward(const Tensor& dy,
                                        const Tensor& d_ffn_input,
                                        const Tensor& x,
                                        const BlockForward& fwd) {
  MPIPE_EXPECTS(dy.shape() == x.shape(), "dy shape mismatch");
  // y = after_attn + ffn(ln2(after_attn)):
  //   d_after_attn = dy + ln2.backward(d_ffn_input)
  Tensor d_after = ln2_.backward(d_ffn_input, fwd.ln2);
  add_(d_after, dy);
  // after_attn = x + attn(ln1(x)).
  Tensor d_ln1_out = attn_.backward(d_after, fwd.ln1.output, fwd.attn);
  Tensor dx = ln1_.backward(d_ln1_out, fwd.ln1);
  add_(dx, d_after);
  return dx;
}

void TransformerBlockPieces::zero_grad() {
  ln1_.zero_grad();
  ln2_.zero_grad();
  attn_.zero_grad();
}

}  // namespace mpipe::moe
