#include "moe/expert.h"

#include "common/check.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe::moe {

ExpertFFN::ExpertFFN(std::int64_t d_model, std::int64_t d_hidden,
                     ActivationKind activation, Rng& rng)
    : activation_(activation),
      w1_(Shape{d_model, d_hidden}),
      b1_(Shape{d_hidden}),
      w2_(Shape{d_hidden, d_model}),
      b2_(Shape{d_model}),
      gw1_(Shape{d_model, d_hidden}),
      gb1_(Shape{d_hidden}),
      gw2_(Shape{d_hidden, d_model}),
      gb2_(Shape{d_model}) {
  MPIPE_EXPECTS(d_model > 0 && d_hidden > 0, "bad expert dimensions");
  init_kaiming(w1_, rng, d_model);
  init_kaiming(w2_, rng, d_hidden);
}

// T_M stash convention: with ReLU, `mid` holds the post-activation values
// (in-place semantics, paper §II-B) — the ReLU mask is recoverable from
// them. With GELU the post-activation is not invertible, so `mid` holds
// the PRE-activation and FFN2 applies the activation on the fly; the
// backward reads `mid` accordingly. The activation stash stays B*H either
// way, so the Eq-2 memory model is unchanged.

Tensor ExpertFFN::forward(const Tensor& x, Tensor& mid) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == d_model(),
                "expert input must be (rows, M)");
  Tensor pre(Shape{x.dim(0), d_hidden()});
  gemm(x, w1_, pre);
  add_bias_(pre, b1_);
  Tensor act;
  if (activation_ == ActivationKind::kReLU) {
    mid = relu(pre);
    act = mid;
  } else {
    mid = pre;
    act = gelu(pre);
  }
  Tensor out(Shape{x.dim(0), d_model()});
  gemm(act, w2_, out);
  add_bias_(out, b2_);
  return out;
}

Tensor ExpertFFN::backward(const Tensor& dy, const Tensor& x,
                           const Tensor& mid) {
  MPIPE_EXPECTS(dy.dim(0) == x.dim(0), "row count mismatch");
  // Recover the post-activation values FFN2 consumed.
  Tensor act = activation_ == ActivationKind::kReLU ? mid : gelu(mid);
  // dW2 += act^T dy ; db2 += colsum(dy) ; dAct = dy W2^T.
  gemm_tn(act, dy, gw2_, /*accumulate=*/true);
  add_(gb2_, bias_backward(dy));
  Tensor dact(Shape{x.dim(0), d_hidden()});
  gemm_nt(dy, w2_, dact);
  // Through the activation (ReLU's mask works on post-activation values;
  // GELU differentiates at the stashed pre-activation).
  Tensor dpre = activation_ == ActivationKind::kReLU
                    ? relu_backward(dact, mid)
                    : gelu_backward(dact, mid);
  // dW1 += x^T dpre ; db1 += colsum(dpre) ; dx = dpre W1^T.
  gemm_tn(x, dpre, gw1_, /*accumulate=*/true);
  add_(gb1_, bias_backward(dpre));
  Tensor dx(Shape{x.dim(0), d_model()});
  gemm_nt(dpre, w1_, dx);
  return dx;
}

Tensor ExpertFFN::gather_rows(const Tensor& buf,
                              const std::vector<std::int64_t>& rows) const {
  Tensor out(Shape{static_cast<std::int64_t>(rows.size()), buf.dim(1)});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out.copy_into_rows(static_cast<std::int64_t>(i),
                       buf.slice_rows(rows[i], rows[i] + 1));
  }
  return out;
}

void ExpertFFN::scatter_rows(const Tensor& src, Tensor& buf,
                             const std::vector<std::int64_t>& rows) {
  MPIPE_EXPECTS(src.dim(0) == static_cast<std::int64_t>(rows.size()),
                "scatter row count mismatch");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buf.copy_into_rows(rows[i],
                       src.slice_rows(static_cast<std::int64_t>(i),
                                      static_cast<std::int64_t>(i) + 1));
  }
}

void ExpertFFN::forward_rows(const Tensor& in,
                             const std::vector<std::int64_t>& rows,
                             Tensor& mid_buf, Tensor& out_buf) const {
  if (rows.empty()) return;
  Tensor x = gather_rows(in, rows);
  Tensor mid;
  Tensor y = forward(x, mid);
  scatter_rows(mid, mid_buf, rows);
  scatter_rows(y, out_buf, rows);
}

void ExpertFFN::forward_out_rows(const Tensor& mid_buf,
                                 const std::vector<std::int64_t>& rows,
                                 Tensor& out_buf) const {
  if (rows.empty()) return;
  Tensor mid = gather_rows(mid_buf, rows);
  Tensor act = activation_ == ActivationKind::kReLU ? mid : gelu(mid);
  Tensor out(Shape{mid.dim(0), d_model()});
  gemm(act, w2_, out);
  add_bias_(out, b2_);
  scatter_rows(out, out_buf, rows);
}

void ExpertFFN::backward_rows(const Tensor& dout_buf, const Tensor& in_buf,
                              const Tensor& mid_buf,
                              const std::vector<std::int64_t>& rows,
                              Tensor& din_buf) {
  if (rows.empty()) return;
  Tensor dy = gather_rows(dout_buf, rows);
  Tensor x = gather_rows(in_buf, rows);
  Tensor mid = gather_rows(mid_buf, rows);
  Tensor dx = backward(dy, x, mid);
  scatter_rows(dx, din_buf, rows);
}

void ExpertFFN::recompute_mid_rows(const Tensor& in_buf,
                                   const std::vector<std::int64_t>& rows,
                                   Tensor& mid_buf) const {
  if (rows.empty()) return;
  Tensor x = gather_rows(in_buf, rows);
  Tensor pre(Shape{x.dim(0), d_hidden()});
  gemm(x, w1_, pre);
  add_bias_(pre, b1_);
  // Same stash convention as forward(): ReLU keeps post-activation, GELU
  // keeps pre-activation.
  Tensor mid = activation_ == ActivationKind::kReLU ? relu(pre) : pre;
  scatter_rows(mid, mid_buf, rows);
}

void ExpertFFN::zero_grad() {
  gw1_.zero();
  gb1_.zero();
  gw2_.zero();
  gb2_.zero();
}

std::vector<Tensor*> ExpertFFN::parameters() {
  return {&w1_, &b1_, &w2_, &b2_};
}

std::vector<Tensor*> ExpertFFN::gradients() {
  return {&gw1_, &gb1_, &gw2_, &gb2_};
}

std::int64_t ExpertFFN::num_params() const {
  return w1_.numel() + b1_.numel() + w2_.numel() + b2_.numel();
}

}  // namespace mpipe::moe
