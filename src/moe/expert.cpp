#include "moe/expert.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"
#include "tensor/simd.h"

namespace mpipe::moe {

ExpertFFN::ExpertFFN(std::int64_t d_model, std::int64_t d_hidden,
                     ActivationKind activation, Rng& rng)
    : activation_(activation),
      w1_(Shape{d_model, d_hidden}),
      b1_(Shape{d_hidden}),
      w2_(Shape{d_hidden, d_model}),
      b2_(Shape{d_model}),
      gw1_(Shape{d_model, d_hidden}),
      gb1_(Shape{d_hidden}),
      gw2_(Shape{d_hidden, d_model}),
      gb2_(Shape{d_model}) {
  MPIPE_EXPECTS(d_model > 0 && d_hidden > 0, "bad expert dimensions");
  init_kaiming(w1_, rng, d_model);
  init_kaiming(w2_, rng, d_hidden);
}

namespace {

/// GEMM view of a quantized weight cache.
QuantView qview(const QuantizedMatrix& q) {
  return {q.dtype,
          q.dtype == DType::kBF16
              ? static_cast<const void*>(q.bf16.data())
              : static_cast<const void*>(q.i8.data()),
          q.scales.empty() ? nullptr : q.scales.data(), q.rows, q.cols};
}

}  // namespace

void ExpertFFN::set_compute_dtype(DType dtype) {
  compute_dtype_ = dtype;
  if (dtype == DType::kF32) {
    qw1_ = QuantizedMatrix{};
    qw2_ = QuantizedMatrix{};
    return;
  }
  refresh_quantized();
}

void ExpertFFN::refresh_quantized() {
  if (compute_dtype_ == DType::kF32) return;
  qw1_ = quantize_matrix(w1_, compute_dtype_);
  qw2_ = quantize_matrix(w2_, compute_dtype_);
}

/// FFN1: mid = epilogue(x W1 + b1), through the quantized W1 when a
/// reduced dtype is active.
void ExpertFFN::ffn1(const Tensor& x, GemmEpilogue ep, Tensor& mid) const {
  if (compute_dtype_ == DType::kF32) {
    gemm_bias_act(x, w1_, b1_, ep, mid);
  } else {
    gemm_bias_act_q(x, qview(qw1_), b1_, ep, mid);
  }
}

/// FFN2: out = act W2 + b2.
void ExpertFFN::ffn2(const Tensor& act, Tensor& out) const {
  if (compute_dtype_ == DType::kF32) {
    gemm_bias(act, w2_, b2_, out);
  } else {
    gemm_bias_act_q(act, qview(qw2_), b2_, GemmEpilogue::kBias, out);
  }
}

// T_M stash convention: with ReLU, `mid` holds the post-activation values
// (in-place semantics, paper §II-B) — the ReLU mask is recoverable from
// them. With GELU the post-activation is not invertible, so `mid` holds
// the PRE-activation and FFN2 applies the activation on the fly; the
// backward reads `mid` accordingly. The activation stash stays B*H either
// way, so the Eq-2 memory model is unchanged.

Tensor ExpertFFN::forward(const Tensor& x, Tensor& mid) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == d_model(),
                "expert input must be (rows, M)");
  mid = Tensor(Shape{x.dim(0), d_hidden()});
  Tensor act;
  if (activation_ == ActivationKind::kReLU) {
    // FFN1 with the bias+ReLU epilogue fused into the GEMM tile writes.
    ffn1(x, GemmEpilogue::kBiasReLU, mid);
    act = mid;
  } else {
    ffn1(x, GemmEpilogue::kBias, mid);  // stash pre-activation
    act = gelu(mid);
  }
  Tensor out(Shape{x.dim(0), d_model()});
  ffn2(act, out);
  return out;
}

Tensor ExpertFFN::backward(const Tensor& dy, const Tensor& x,
                           const Tensor& mid) {
  MPIPE_EXPECTS(dy.dim(0) == x.dim(0), "row count mismatch");
  // Recover the post-activation values FFN2 consumed.
  Tensor act = activation_ == ActivationKind::kReLU ? mid : gelu(mid);
  // dW2 += act^T dy and db2 += colsum(dy), fused into one pass over the
  // packed dy panels; dAct = dy W2^T.
  gemm_tn_bias_grad(act, dy, gw2_, gb2_, /*accumulate=*/true);
  Tensor dact(Shape{x.dim(0), d_hidden()});
  if (compute_dtype_ == DType::kF32) {
    gemm_nt(dy, w2_, dact);
  } else {
    gemm_nt_q(dy, qview(qw2_), dact);
  }
  // Through the activation (ReLU's mask works on post-activation values;
  // GELU differentiates at the stashed pre-activation).
  Tensor dpre = activation_ == ActivationKind::kReLU
                    ? relu_backward(dact, mid)
                    : gelu_backward(dact, mid);
  // dW1 += x^T dpre and db1 += colsum(dpre), same fused pass; dx = dpre W1^T.
  gemm_tn_bias_grad(x, dpre, gw1_, gb1_, /*accumulate=*/true);
  Tensor dx(Shape{x.dim(0), d_model()});
  if (compute_dtype_ == DType::kF32) {
    gemm_nt(dpre, w1_, dx);
  } else {
    gemm_nt_q(dpre, qview(qw1_), dx);
  }
  return dx;
}

namespace {

/// Below this many moved floats (~128 KiB) the parallel_for dispatch costs
/// more than the copy itself; stay serial.
constexpr std::int64_t kParallelCopyElems = 1 << 15;

/// Validates spans against `buf` and returns each span's packed-row start
/// (exclusive prefix sum of counts). Validation happens up front so the
/// copy loops — serial or fanned out — never throw mid-flight.
std::vector<std::int64_t> packed_offsets(const Tensor& buf,
                                         const RowSpanList& spans) {
  std::vector<std::int64_t> packed(spans.size());
  std::int64_t rows = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const RowSpan& s = spans[i];
    MPIPE_EXPECTS(s.offset >= 0 && s.count >= 0 &&
                      s.offset + s.count <= buf.dim(0),
                  "span outside buffer");
    packed[i] = rows;
    rows += s.count;
  }
  return packed;
}

}  // namespace

Tensor gather_spans(const Tensor& buf, const RowSpanList& spans) {
  MPIPE_EXPECTS(buf.shape().rank() == 2, "span gather needs a matrix");
  const std::int64_t cols = buf.dim(1);
  const std::vector<std::int64_t> packed = packed_offsets(buf, spans);
  Tensor out(Shape{span_rows(spans), cols});
  float* dst = out.data();
  const float* src = buf.data();
  auto copy_span = [&](std::size_t i) {
    const RowSpan& s = spans[i];
    simd::copy(dst + packed[i] * cols, src + s.offset * cols,
               s.count * cols);
  };
  if (out.numel() < kParallelCopyElems) {
    for (std::size_t i = 0; i < spans.size(); ++i) copy_span(i);
  } else {
    // Spans write disjoint packed ranges, so the fan-out is race-free and
    // the result identical for any chunking.
    ThreadPool::shared().parallel_for(
        spans.size(),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) copy_span(i);
        },
        /*grain=*/1);
  }
  return out;
}

void scatter_spans(const Tensor& src, Tensor& buf, const RowSpanList& spans) {
  MPIPE_EXPECTS(buf.shape().rank() == 2 && src.shape().rank() == 2 &&
                    src.dim(1) == buf.dim(1),
                "span scatter needs matching matrices");
  MPIPE_EXPECTS(src.dim(0) == span_rows(spans),
                "scatter row count mismatch");
  // Overlapping destination spans would make the concurrent fan-out a data
  // race (and were order-dependent even serially) — reject them up front.
  {
    std::vector<const RowSpan*> sorted;
    sorted.reserve(spans.size());
    // Zero-count spans move nothing and cannot race, whatever their
    // offset — only real writers enter the overlap check.
    for (const RowSpan& s : spans) {
      if (s.count > 0) sorted.push_back(&s);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const RowSpan* a, const RowSpan* b) {
                return a->offset < b->offset;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      MPIPE_EXPECTS(sorted[i]->offset >=
                        sorted[i - 1]->offset + sorted[i - 1]->count,
                    "scatter spans must cover disjoint buffer rows");
    }
  }
  const std::int64_t cols = buf.dim(1);
  const std::vector<std::int64_t> packed = packed_offsets(buf, spans);
  const float* from = src.data();
  float* to = buf.data();
  auto copy_span = [&](std::size_t i) {
    const RowSpan& s = spans[i];
    simd::copy(to + s.offset * cols, from + packed[i] * cols,
               s.count * cols);
  };
  if (src.numel() < kParallelCopyElems) {
    for (std::size_t i = 0; i < spans.size(); ++i) copy_span(i);
  } else {
    // Dispatch-plan spans cover disjoint buffer rows (the receive layout
    // keeps (source, expert) groups contiguous and non-overlapping), so
    // scattering them concurrently is race-free.
    ThreadPool::shared().parallel_for(
        spans.size(),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) copy_span(i);
        },
        /*grain=*/1);
  }
}

void ExpertFFN::forward_rows(const Tensor& in, const RowSpanList& spans,
                             Tensor& mid_buf, Tensor& out_buf) const {
  if (spans.empty()) return;
  Tensor x = gather_spans(in, spans);
  Tensor mid;
  Tensor y = forward(x, mid);
  scatter_spans(mid, mid_buf, spans);
  scatter_spans(y, out_buf, spans);
}

void ExpertFFN::forward_out_rows(const Tensor& mid_buf,
                                 const RowSpanList& spans,
                                 Tensor& out_buf) const {
  if (spans.empty()) return;
  Tensor mid = gather_spans(mid_buf, spans);
  Tensor act = activation_ == ActivationKind::kReLU ? mid : gelu(mid);
  Tensor out(Shape{mid.dim(0), d_model()});
  ffn2(act, out);
  scatter_spans(out, out_buf, spans);
}

void ExpertFFN::backward_rows(const Tensor& dout_buf, const Tensor& in_buf,
                              const Tensor& mid_buf, const RowSpanList& spans,
                              Tensor& din_buf) {
  if (spans.empty()) return;
  Tensor dy = gather_spans(dout_buf, spans);
  Tensor x = gather_spans(in_buf, spans);
  Tensor mid = gather_spans(mid_buf, spans);
  Tensor dx = backward(dy, x, mid);
  scatter_spans(dx, din_buf, spans);
}

void ExpertFFN::recompute_mid_rows(const Tensor& in_buf,
                                   const RowSpanList& spans,
                                   Tensor& mid_buf) const {
  if (spans.empty()) return;
  Tensor x = gather_spans(in_buf, spans);
  Tensor mid(Shape{x.dim(0), d_hidden()});
  // Same stash convention as forward(): ReLU keeps post-activation, GELU
  // keeps pre-activation — both with the bias (and ReLU) fused.
  if (activation_ == ActivationKind::kReLU) {
    ffn1(x, GemmEpilogue::kBiasReLU, mid);
  } else {
    ffn1(x, GemmEpilogue::kBias, mid);
  }
  scatter_spans(mid, mid_buf, spans);
}

void ExpertFFN::zero_grad() {
  gw1_.zero();
  gb1_.zero();
  gw2_.zero();
  gb2_.zero();
}

std::vector<Tensor*> ExpertFFN::parameters() {
  return {&w1_, &b1_, &w2_, &b2_};
}

std::vector<Tensor*> ExpertFFN::gradients() {
  return {&gw1_, &gb1_, &gw2_, &gb2_};
}

std::int64_t ExpertFFN::num_params() const {
  return w1_.numel() + b1_.numel() + w2_.numel() + b2_.numel();
}

}  // namespace mpipe::moe
