#pragma once
/// \file config.h
/// Shared MoE model hyperparameters (paper Table I / Table III notation:
/// M = d_model, H = d_hidden, E = num_experts, B = tokens per device).

#include <cstdint>

namespace mpipe::moe {

enum class ActivationKind : std::uint8_t {
  /// ReLU applied in place — matches the paper's memory formulation where
  /// T_M stores the post-activation middle tensor only (Eq 2).
  kReLU,
  /// tanh-approximated GELU. Backward needs the pre-activation tensor, so
  /// the activation stash grows by B*H; see DESIGN.md.
  kGELU,
};

struct MoEModelConfig {
  std::int64_t d_model = 1024;   ///< M
  std::int64_t d_hidden = 4096;  ///< H
  int num_experts = 64;          ///< E
  int top_k = 1;                 ///< k (the paper evaluates k = 1)
  ActivationKind activation = ActivationKind::kReLU;
};

}  // namespace mpipe::moe
