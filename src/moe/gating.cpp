#include "moe/gating.h"

#include "common/check.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random_init.h"

namespace mpipe::moe {

GatingNetwork::GatingNetwork(std::int64_t d_model, int num_experts, Rng& rng)
    : w_(Shape{d_model, num_experts}), w_grad_(Shape{d_model, num_experts}) {
  MPIPE_EXPECTS(d_model > 0 && num_experts > 0, "bad gating dimensions");
  init_normal(w_, rng, 0.02f);
}

GatingForward GatingNetwork::forward(const Tensor& x) const {
  MPIPE_EXPECTS(x.shape().rank() == 2 && x.dim(1) == d_model(),
                "gating input must be (B, M)");
  GatingForward out;
  Tensor logits = matmul(x, w_);
  out.probs = softmax_rows(logits);
  out.expert_of = argmax_rows(out.probs);
  const std::int64_t b = x.dim(0);
  out.gate.resize(static_cast<std::size_t>(b));
  for (std::int64_t t = 0; t < b; ++t) {
    out.gate[static_cast<std::size_t>(t)] =
        out.probs.at(t, out.expert_of[static_cast<std::size_t>(t)]);
  }
  return out;
}

Tensor GatingNetwork::backward(const Tensor& x, const GatingForward& fwd,
                               const std::vector<float>& dgate) {
  const std::int64_t b = x.dim(0);
  MPIPE_EXPECTS(static_cast<std::int64_t>(dgate.size()) == b,
                "dgate length mismatch");
  // d(probs): only the winning column receives the gate gradient.
  Tensor dprobs(fwd.probs.shape());
  for (std::int64_t t = 0; t < b; ++t) {
    dprobs.at(t, fwd.expert_of[static_cast<std::size_t>(t)]) =
        dgate[static_cast<std::size_t>(t)];
  }
  Tensor dlogits = softmax_rows_backward(dprobs, fwd.probs);
  // dW += X^T @ dlogits; dX = dlogits @ W^T.
  gemm_tn(x, dlogits, w_grad_, /*accumulate=*/true);
  Tensor dx(Shape{b, d_model()});
  gemm_nt(dlogits, w_, dx);
  return dx;
}

double GatingNetwork::load_balance_loss(const GatingForward& fwd) const {
  const std::int64_t b = fwd.probs.dim(0);
  const int e = num_experts();
  MPIPE_EXPECTS(b > 0, "empty batch");
  std::vector<double> fraction(static_cast<std::size_t>(e), 0.0);
  std::vector<double> mean_prob(static_cast<std::size_t>(e), 0.0);
  for (std::int64_t t = 0; t < b; ++t) {
    fraction[static_cast<std::size_t>(
        fwd.expert_of[static_cast<std::size_t>(t)])] += 1.0;
    for (int j = 0; j < e; ++j) {
      mean_prob[static_cast<std::size_t>(j)] += fwd.probs.at(t, j);
    }
  }
  double loss = 0.0;
  for (int j = 0; j < e; ++j) {
    loss += (fraction[static_cast<std::size_t>(j)] / double(b)) *
            (mean_prob[static_cast<std::size_t>(j)] / double(b));
  }
  return loss * e;
}

}  // namespace mpipe::moe
