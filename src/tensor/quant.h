#pragma once
/// \file quant.h
/// bf16 / int8 codecs for the mixed-precision expert path. Two users:
///  - weight caches: ExpertFFN keeps fp32 master weights and a
///    QuantizedMatrix side copy that the packed GEMM dequantizes at pack
///    time (see gemm.h QuantView);
///  - payload rounding: the simulated alltoall and host staging round
///    fp32 values through the wire format in place (round_through_*), so
///    the functional math observes exactly the precision a real bf16/int8
///    link would deliver while the buffers stay fp32.
/// All codecs propagate non-finite values (NaN stays NaN through bf16;
/// int8 rows containing a non-finite value are passed through verbatim),
/// so comm::scan_payloads corruption detection keeps working per-dtype.

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mpipe {

// ---- bf16 scalar codec ------------------------------------------------------
// Inline: these run per element inside the GEMM pack loops and the
// payload rounding sweeps.

/// fp32 -> bf16 with round-to-nearest-even. NaN is quieted (never turned
/// into Inf by truncation); Inf and zero round to themselves.
inline std::uint16_t bf16_from_f32(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncation could clear every mantissa bit and fabricate an
    // Inf; force a quiet-NaN payload bit instead.
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the discarded low 16 bits. Inf (low bits
  // zero) and zero round to themselves.
  return static_cast<std::uint16_t>((u + 0x7fffu + ((u >> 16) & 1u)) >> 16);
}

/// bf16 -> fp32; exact (bf16 is the high half of the fp32 bit pattern).
inline float f32_from_bf16(std::uint16_t v) {
  const std::uint32_t u = static_cast<std::uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &u, sizeof(out));
  return out;
}

/// v rounded through bf16 and back — the value a bf16 wire delivers.
inline float bf16_round(float v) { return f32_from_bf16(bf16_from_f32(v)); }

// ---- buffer rounding (simulated wire format) --------------------------------

/// Rounds n fp32 values through bf16 in place.
void round_through_bf16(float* data, std::int64_t n);

/// Rounds `rows` rows of `cols` fp32 values through int8-with-per-row-
/// absmax-scale in place. All-zero rows stay zero; rows containing a
/// non-finite value are left untouched so corruption stays detectable.
void round_through_i8_rows(float* data, std::int64_t rows, std::int64_t cols);

/// Rounds rows x cols values through `dtype`'s wire format (kF32 no-op).
void round_through_dtype(float* data, std::int64_t rows, std::int64_t cols,
                         DType dtype);

// ---- quantized weight matrices ----------------------------------------------

/// A rows x cols matrix stored in a reduced-precision format plus the
/// metadata the packed GEMM needs to dequantize at pack time. kF32 is
/// represented as "no cache" (defined() == false) — callers fall back to
/// the fp32 master tensor.
struct QuantizedMatrix {
  DType dtype = DType::kF32;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::uint16_t> bf16;  ///< rows*cols, kBF16 only
  std::vector<std::int8_t> i8;      ///< rows*cols, kI8 only
  std::vector<float> scales;        ///< one absmax/127 scale per row, kI8

  bool defined() const { return dtype != DType::kF32 && rows > 0; }
  /// Accounted storage bytes (elements + int8 row scales).
  std::uint64_t nbytes() const {
    return defined() ? quantized_bytes(rows, cols, dtype) : 0;
  }
};

/// Quantizes a 2-D fp32 tensor into `dtype` storage. kF32 returns an
/// undefined matrix (callers use the master tensor directly). Rows whose
/// absmax is non-finite get a NaN scale (kI8), so dequantized values stay
/// non-finite and numerics guards still fire.
QuantizedMatrix quantize_matrix(const Tensor& w, DType dtype);

/// Expands a quantized matrix back to fp32 — the reference the packed
/// GEMM's pack-time dequant must match bitwise.
Tensor dequantize_matrix(const QuantizedMatrix& q);

}  // namespace mpipe
