#include "tensor/shape.h"

#include <sstream>

#include "common/check.h"

namespace mpipe {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  MPIPE_EXPECTS(dims.size() <= kMaxRank, "rank too large");
  for (std::int64_t d : dims) {
    MPIPE_EXPECTS(d >= 0, "negative dimension");
    dims_[rank_++] = d;
  }
}

std::int64_t Shape::dim(std::size_t i) const {
  MPIPE_EXPECTS(i < rank_, "dimension index out of range");
  return dims_[i];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::int64_t Shape::stride(std::size_t i) const {
  MPIPE_EXPECTS(i < rank_, "dimension index out of range");
  std::int64_t s = 1;
  for (std::size_t j = i + 1; j < rank_; ++j) s *= dims_[j];
  return s;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

Shape Shape::with_dim(std::size_t i, std::int64_t value) const {
  MPIPE_EXPECTS(i < rank_, "dimension index out of range");
  MPIPE_EXPECTS(value >= 0, "negative dimension");
  Shape s = *this;
  s.dims_[i] = value;
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace mpipe
