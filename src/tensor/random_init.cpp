#include "tensor/random_init.h"

#include <cmath>

#include "common/check.h"

namespace mpipe {

void init_normal(Tensor& t, Rng& rng, float stddev) {
  MPIPE_EXPECTS(t.defined(), "init of null tensor");
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void init_kaiming(Tensor& t, Rng& rng, std::int64_t fan_in) {
  MPIPE_EXPECTS(fan_in > 0, "fan_in must be positive");
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  init_uniform(t, rng, -bound, bound);
}

void init_uniform(Tensor& t, Rng& rng, float lo, float hi) {
  MPIPE_EXPECTS(t.defined(), "init of null tensor");
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

Tensor random_tokens(std::int64_t tokens, std::int64_t d_model, Rng& rng) {
  Tensor t(Shape{tokens, d_model});
  init_normal(t, rng, 1.0f);
  return t;
}

}  // namespace mpipe
