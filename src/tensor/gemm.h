#pragma once
/// \file gemm.h
/// Packed, register-blocked, multithreaded single-precision GEMM. All three
/// transpose variants route through one micro-kernel over panels packed into
/// thread-local aligned buffers (nt/tn transpose at pack time), and the
/// FFN-facing entry points fuse the bias/activation epilogue into the last
/// pass over C. These kernels carry all expert/gating compute; see
/// src/tensor/README.md for the design and measured throughput.

#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mpipe {

/// Epilogue fused into the final write of each output tile.
enum class GemmEpilogue {
  kNone,      ///< C = A*B (plain accumulate)
  kBias,      ///< C = A*B + bias (bias broadcast over rows)
  kBiasReLU,  ///< C = relu(A*B + bias)
  kBiasGELU,  ///< C = gelu(A*B + bias), tanh approximation
};

/// C = A(MxK) * B(KxN)          (+ C if accumulate)
void gemm(const Tensor& a, const Tensor& b, Tensor& c,
          bool accumulate = false);

/// C = A(MxK) * B^T(NxK)        (+ C if accumulate)
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// C = A^T(KxM) * B(KxN)        (+ C if accumulate)
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// C = A^T(KxM) * B(KxN) (+ C if accumulate), and bias_grad[j] +=
/// sum_k B[k][j]. This is the weight-grad shape (dW = X^T dY) with the
/// bias gradient (db = colsum(dY)) folded into the same pass: the column
/// reduction rides the packed B micro-panels while they are cache-hot, so
/// the backward takes no separate pass over dY. `bias_grad` (length N)
/// always accumulates — zero it first for a fresh gradient. Exactly one
/// task owns each column range, with K slices reduced in order, so the
/// result is bitwise independent of the thread count.
void gemm_tn_bias_grad(const Tensor& a, const Tensor& b, Tensor& c,
                       Tensor& bias_grad, bool accumulate = false);

/// C = epilogue(A(MxK) * B(KxN) + bias). The bias (length N) and activation
/// are applied tile-by-tile while C is still hot, so FFN1's bias+ReLU/GELU
/// and FFN2's bias take no separate pass over the activations.
void gemm_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                   GemmEpilogue epilogue, Tensor& c);

/// C = A(MxK) * B(KxN) + bias — gemm_bias_act with the kBias epilogue.
void gemm_bias(const Tensor& a, const Tensor& b, const Tensor& bias,
               Tensor& c);

// ---- mixed-precision B operand ---------------------------------------------
// The quantized entry points mirror their fp32 twins but take the B
// (weight) operand in reduced-precision storage. Dequantization happens
// at pack time — the same place the nt/tn transpose already happens — so
// the 8x16 micro-kernel and its fp32 accumulators are untouched: one
// compute core for every dtype. A kF32 QuantView routes through the
// identical packing code as the fp32 entry points (bitwise identical).

/// A rows x cols matrix in `dtype` storage as the GEMM consumes it.
/// `data` points at fp32 / bf16(u16) / int8 elements per dtype;
/// `row_scales` is the per-stored-row fp32 scale array (kI8 only).
struct QuantView {
  DType dtype = DType::kF32;
  const void* data = nullptr;
  const float* row_scales = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

/// C = epilogue(A(MxK) * B(KxN) + bias), B dequantized at pack time.
void gemm_bias_act_q(const Tensor& a, const QuantView& b, const Tensor& bias,
                     GemmEpilogue epilogue, Tensor& c);

/// C = A(MxK) * B^T(NxK) (+ C if accumulate), B dequantized at pack time.
void gemm_nt_q(const Tensor& a, const QuantView& b, Tensor& c,
               bool accumulate = false);

/// Returns A*B as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b);

/// FLOP count of an MxK * KxN product (2*M*N*K).
std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k);

}  // namespace mpipe
