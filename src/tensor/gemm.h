#pragma once
/// \file gemm.h
/// Blocked, multithreaded single-precision GEMM variants. These carry all
/// expert/gating compute; the cache-blocked kernel with a parallel_for over
/// row panels keeps the functional phase fast enough for 64-device runs.

#include "tensor/tensor.h"

namespace mpipe {

/// C = A(MxK) * B(KxN)          (+ C if accumulate)
void gemm(const Tensor& a, const Tensor& b, Tensor& c,
          bool accumulate = false);

/// C = A(MxK) * B^T(NxK)        (+ C if accumulate)
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// C = A^T(KxM) * B(KxN)        (+ C if accumulate)
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// Returns A*B as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b);

/// FLOP count of an MxK * KxN product (2*M*N*K).
std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k);

}  // namespace mpipe
