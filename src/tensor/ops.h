#pragma once
/// \file ops.h
/// Elementwise and row-wise primitives with explicit backward counterparts.
/// Each forward/backward pair is finite-difference tested in
/// tests/test_tensor_ops.cpp.

#include <cmath>

#include "tensor/tensor.h"

namespace mpipe {

/// Scalar tanh-approximation GELU. Shared by the elementwise kernel and the
/// fused GEMM epilogue — the two paths must stay bit-identical.
inline float gelu_scalar(float v) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float t = std::tanh(kC * (v + 0.044715f * v * v * v));
  return 0.5f * v * (1.0f + t);
}

// ---- elementwise ----------------------------------------------------------

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// a += b in place.
void add_(Tensor& a, const Tensor& b);
/// a += alpha * b in place (axpy).
void axpy_(Tensor& a, float alpha, const Tensor& b);
/// out = a * scalar.
Tensor scale(const Tensor& a, float s);
void scale_(Tensor& a, float s);
/// Hadamard product.
Tensor mul(const Tensor& a, const Tensor& b);

// ---- activations ----------------------------------------------------------

/// ReLU forward.
Tensor relu(const Tensor& x);
/// dx = dy * (x > 0).
Tensor relu_backward(const Tensor& dy, const Tensor& x);

/// tanh-approximation GELU forward (the FFN activation in BERT/GPT).
Tensor gelu(const Tensor& x);
/// GELU backward through the tanh approximation.
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

// ---- row-wise -------------------------------------------------------------

/// Adds bias (length = cols) to each row of x, in place.
void add_bias_(Tensor& x, const Tensor& bias);
/// Column sums of dy — the bias gradient.
Tensor bias_backward(const Tensor& dy);

/// Row-wise softmax of a 2-D tensor.
Tensor softmax_rows(const Tensor& x);
/// Backward of row-wise softmax: dx_i = y_i * (dy_i - sum_j dy_j y_j).
Tensor softmax_rows_backward(const Tensor& dy, const Tensor& y);

/// Row-wise argmax indices.
std::vector<std::int64_t> argmax_rows(const Tensor& x);

/// Scales row r of x by s[r], in place.
void scale_rows_(Tensor& x, const std::vector<float>& s);

/// Mean squared error loss and its gradient w.r.t. pred.
double mse_loss(const Tensor& pred, const Tensor& target);
Tensor mse_loss_grad(const Tensor& pred, const Tensor& target);

/// True when every element is finite (no NaN, no ±inf). 8-lane scan over
/// the fp32 exponent bits (a float is non-finite iff its exponent field is
/// all ones), so the verdict is exact regardless of compiler float-math
/// flags. Read-only — the numerics guard's probe.
bool all_finite(const Tensor& t);

}  // namespace mpipe
