#pragma once
/// \file dtype.h
/// Element dtypes for the mixed-precision expert path. Tensor storage
/// stays fp32 (it is the simulation's host-memory stand-in for HBM and
/// the accumulation format); a DType describes the *wire/storage* format
/// of expert weights and dispatch/combine payloads: how many bytes an
/// element occupies on the simulated device/link, and which rounding the
/// values go through. kF32 is the default everywhere and is required to
/// be a bitwise no-op on both values and accounting.

#include <cstdint>
#include <string>

#include "common/check.h"

namespace mpipe {

enum class DType : std::uint8_t {
  kF32 = 0,   ///< 4-byte IEEE float, exact (the legacy path)
  kBF16 = 1,  ///< 2-byte bfloat16, round-to-nearest-even from fp32
  kI8 = 2,    ///< 1-byte int8 with one fp32 absmax/127 scale per row
};

/// Bytes per element (scales excluded — int8 rows carry one extra fp32
/// scale each; use quantized_bytes for whole-buffer accounting).
inline std::int64_t dtype_bytes(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kBF16:
      return 2;
    case DType::kI8:
      return 1;
  }
  MPIPE_UNREACHABLE("unknown dtype");
}

/// Accounted bytes of a rows x cols buffer stored in `dtype`, including
/// the per-row fp32 scales the int8 format carries alongside the payload.
inline std::uint64_t quantized_bytes(std::int64_t rows, std::int64_t cols,
                                     DType dtype) {
  std::uint64_t bytes = static_cast<std::uint64_t>(rows) *
                        static_cast<std::uint64_t>(cols) *
                        static_cast<std::uint64_t>(dtype_bytes(dtype));
  if (dtype == DType::kI8) {
    bytes += static_cast<std::uint64_t>(rows) * sizeof(float);
  }
  return bytes;
}

inline const char* to_string(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kBF16:
      return "bf16";
    case DType::kI8:
      return "i8";
  }
  MPIPE_UNREACHABLE("unknown dtype");
}

}  // namespace mpipe
