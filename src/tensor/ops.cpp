#include "tensor/ops.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace mpipe {

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

void check_same_shape(const Tensor& a, const Tensor& b) {
  MPIPE_EXPECTS(a.shape() == b.shape(), "shape mismatch: " +
                                            a.shape().to_string() + " vs " +
                                            b.shape().to_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out = a.clone();
  add_(out, b);
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void axpy_(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += alpha * pb[i];
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a.clone();
  scale_(out, s);
  return out;
}

void scale_(Tensor& a, float s) {
  float* pa = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] *= s;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = px[i] > 0.0f ? px[i] : 0.0f;
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& x) {
  check_same_shape(dy, x);
  Tensor out(x.shape());
  const float* pdy = dy.data();
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
  return out;
}

Tensor gelu(const Tensor& x) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          po[i] = gelu_scalar(px[i]);
        }
      },
      /*grain=*/4096);
  return out;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  check_same_shape(dy, x);
  Tensor out(x.shape());
  const float* pdy = dy.data();
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float v = px[i];
          const float u = kGeluC * (v + 0.044715f * v * v * v);
          const float t = std::tanh(u);
          const float sech2 = 1.0f - t * t;
          const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
          po[i] = pdy[i] * (0.5f * (1.0f + t) + 0.5f * v * sech2 * du);
        }
      },
      /*grain=*/4096);
  return out;
}

void add_bias_(Tensor& x, const Tensor& bias) {
  MPIPE_EXPECTS(x.shape().rank() == 2, "add_bias_ expects a matrix");
  MPIPE_EXPECTS(bias.shape().rank() == 1 && bias.dim(0) == x.dim(1),
                "bias length must equal column count");
  float* px = x.data();
  const float* pb = bias.data();
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = px + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] += pb[c];
  }
}

Tensor bias_backward(const Tensor& dy) {
  MPIPE_EXPECTS(dy.shape().rank() == 2, "bias_backward expects a matrix");
  const std::int64_t rows = dy.dim(0), cols = dy.dim(1);
  Tensor out(Shape{cols});
  const float* p = dy.data();
  float* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) po[c] += row[c];
  }
  return out;
}

namespace {

/// Row-wise softmax kernel: vector max / sum / normalize with scalar exp
/// (libm has no vector form here), scalar tail for ragged widths. The
/// scalar fallback is the same arithmetic with kLanes = 1-style loops.
void softmax_row(const float* MPIPE_RESTRICT in, std::int64_t cols,
                 float* MPIPE_RESTRICT o) {
#if defined(MPIPE_SIMD)
  using simd::kLanes;
  using simd::VF;
  float mx = in[0];
  std::int64_t c = 0;
  if (cols >= kLanes) {
    VF vmx = simd::load(in);
    for (c = kLanes; c + kLanes <= cols; c += kLanes) {
      vmx = simd::vmax(vmx, simd::load(in + c));
    }
    mx = simd::hmax(vmx);
  }
  for (; c < cols; ++c) mx = std::max(mx, in[c]);
  float denom = 0.0f;
  for (c = 0; c < cols; ++c) {
    o[c] = std::exp(in[c] - mx);
    denom += o[c];
  }
  const VF vinv = simd::splat(1.0f / denom);
  for (c = 0; c + kLanes <= cols; c += kLanes) {
    simd::store(o + c, simd::load(o + c) * vinv);
  }
  const float inv = vinv[0];
  for (; c < cols; ++c) o[c] *= inv;
#else
  float mx = in[0];
  for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
  float denom = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) {
    o[c] = std::exp(in[c] - mx);
    denom += o[c];
  }
  const float inv = 1.0f / denom;
  for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
#endif
}

/// dx = y * (dy - <dy, y>) for one row.
void softmax_backward_row(const float* MPIPE_RESTRICT gy,
                          const float* MPIPE_RESTRICT yy, std::int64_t cols,
                          float* MPIPE_RESTRICT o) {
#if defined(MPIPE_SIMD)
  using simd::kLanes;
  using simd::VF;
  VF vdot = {};
  float dot = 0.0f;
  std::int64_t c = 0;
  for (; c + kLanes <= cols; c += kLanes) {
    vdot += simd::load(gy + c) * simd::load(yy + c);
  }
  dot = simd::hsum(vdot);
  for (; c < cols; ++c) dot += gy[c] * yy[c];
  const VF vd = simd::splat(dot);
  for (c = 0; c + kLanes <= cols; c += kLanes) {
    simd::store(o + c, simd::load(yy + c) * (simd::load(gy + c) - vd));
  }
  for (; c < cols; ++c) o[c] = yy[c] * (gy[c] - dot);
#else
  float dot = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) dot += gy[c] * yy[c];
  for (std::int64_t c = 0; c < cols; ++c) o[c] = yy[c] * (gy[c] - dot);
#endif
}

}  // namespace

Tensor softmax_rows(const Tensor& x) {
  MPIPE_EXPECTS(x.shape().rank() == 2, "softmax_rows expects a matrix");
  MPIPE_EXPECTS(x.dim(1) > 0, "softmax of empty rows");
  Tensor out(x.shape());
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  const float* px = x.data();
  float* po = out.data();
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(rows),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          softmax_row(px + r * cols, cols, po + r * cols);
        }
      },
      /*grain=*/64);
  return out;
}

Tensor softmax_rows_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y);
  MPIPE_EXPECTS(y.shape().rank() == 2, "softmax backward expects a matrix");
  Tensor out(y.shape());
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  const float* pdy = dy.data();
  const float* py = y.data();
  float* po = out.data();
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(rows),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          softmax_backward_row(pdy + r * cols, py + r * cols, cols,
                               po + r * cols);
        }
      },
      /*grain=*/64);
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& x) {
  MPIPE_EXPECTS(x.shape().rank() == 2, "argmax_rows expects a matrix");
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  MPIPE_EXPECTS(cols > 0, "argmax of empty rows");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  const float* px = x.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = px + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

void scale_rows_(Tensor& x, const std::vector<float>& s) {
  MPIPE_EXPECTS(x.shape().rank() == 2, "scale_rows_ expects a matrix");
  MPIPE_EXPECTS(static_cast<std::int64_t>(s.size()) == x.dim(0),
                "scale vector length mismatch");
  float* px = x.data();
  const std::int64_t rows = x.dim(0), cols = x.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float f = s[static_cast<std::size_t>(r)];
    float* row = px + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= f;
  }
}

double mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target);
  const float* pp = pred.data();
  const float* pt = target.data();
  const std::int64_t n = pred.numel();
  MPIPE_EXPECTS(n > 0, "mse of empty tensor");
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

Tensor mse_loss_grad(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target);
  Tensor out(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* po = out.data();
  const std::int64_t n = pred.numel();
  const float inv = 2.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) po[i] = inv * (pp[i] - pt[i]);
  return out;
}

bool all_finite(const Tensor& t) {
  if (!t.defined()) return true;
  const float* p = t.data();
  const std::int64_t n = t.numel();
  constexpr std::uint32_t kExpMask = 0x7f800000u;
  std::int64_t i = 0;
#if defined(MPIPE_SIMD)
  // 8-lane exponent-bit test: OR the "exponent all ones" lane masks into
  // an accumulator and inspect it once per block. Bit tests (not float
  // compares) so NaN payloads and compiler float flags cannot change the
  // verdict.
  typedef std::uint32_t VU __attribute__((
      vector_size(simd::kLanes * sizeof(std::uint32_t)),
      aligned(alignof(std::uint32_t))));
  VU any_bad = {};
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    VU bits;
    std::memcpy(&bits, p + i, simd::kLanes * sizeof(std::uint32_t));
    any_bad |= ((bits & kExpMask) == kExpMask);
  }
  for (std::int64_t lane = 0; lane < simd::kLanes; ++lane) {
    if (any_bad[lane] != 0) return false;
  }
#endif
  for (; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, p + i, sizeof(bits));
    if ((bits & kExpMask) == kExpMask) return false;
  }
  return true;
}

}  // namespace mpipe
