#pragma once
/// \file random_init.h
/// Weight / input initialisers shared by models and workload generators.

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mpipe {

/// Fills with N(0, stddev^2).
void init_normal(Tensor& t, Rng& rng, float stddev = 0.02f);

/// Kaiming-uniform for a (fan_in, fan_out) weight matrix.
void init_kaiming(Tensor& t, Rng& rng, std::int64_t fan_in);

/// Uniform in [lo, hi).
void init_uniform(Tensor& t, Rng& rng, float lo, float hi);

/// Random token batch of shape (tokens, d_model).
Tensor random_tokens(std::int64_t tokens, std::int64_t d_model, Rng& rng);

}  // namespace mpipe
