#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace mpipe {

namespace {

// ---- blocking parameters --------------------------------------------------
// One C tile is MC x NC; K is consumed in KC slices. Per K slice the packed
// A tile (MC*KC floats) lives in L2 and each packed B micro-panel (KC*NR
// floats, 16 KiB) in L1. The micro-kernel is MR x NR = 8 x 16: eight
// vector accumulators with one B load and eight A broadcasts per k step,
// written so the compiler turns the unit-stride j loop into FMAs.
constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 16;
constexpr std::int64_t kMC = 64;
constexpr std::int64_t kNC = 128;
constexpr std::int64_t kKC = 256;
static_assert(kMC % kMR == 0 && kNC % kNR == 0, "tile/micro mismatch");

/// 64-byte-aligned thread-local scratch for packed panels.
class AlignedScratch {
 public:
  float* get(std::size_t n) {
    if (raw_.size() < n + kPad) raw_.resize(n + kPad);
    const auto addr = reinterpret_cast<std::uintptr_t>(raw_.data());
    return raw_.data() + (64 - addr % 64) % 64 / sizeof(float);
  }

 private:
  static constexpr std::size_t kPad = 64 / sizeof(float);
  std::vector<float> raw_;
};

/// A matrix operand as the kernel sees it: `trans` means the logical
/// (rows x cols) element (r, c) lives at data[c * ld + r].
struct MatView {
  const float* data;
  std::int64_t ld;
  bool trans;
};

/// Packs the logical A block [i0, i0+mb) x [k0, k0+kc) into MR-row micro
/// panels: panel ip holds kc columns of MR consecutive row values
/// ([k][m] order). Ragged rows are zero-padded so the micro-kernel never
/// branches in its FMA loop.
void pack_a(const MatView& a, std::int64_t i0, std::int64_t k0,
            std::int64_t mb, std::int64_t kc, float* MPIPE_RESTRICT out) {
  for (std::int64_t ip = 0; ip < mb; ip += kMR) {
    const std::int64_t mr = std::min(kMR, mb - ip);
    float* MPIPE_RESTRICT panel = out + ip * kc;
    if (a.trans) {
      // A stored (k x m): rows of the panel are unit-stride in memory.
      for (std::int64_t k = 0; k < kc; ++k) {
        const float* MPIPE_RESTRICT src =
            a.data + (k0 + k) * a.ld + i0 + ip;
        float* MPIPE_RESTRICT dst = panel + k * kMR;
        for (std::int64_t m = 0; m < mr; ++m) dst[m] = src[m];
        for (std::int64_t m = mr; m < kMR; ++m) dst[m] = 0.0f;
      }
    } else {
      for (std::int64_t m = 0; m < mr; ++m) {
        const float* MPIPE_RESTRICT src =
            a.data + (i0 + ip + m) * a.ld + k0;
        for (std::int64_t k = 0; k < kc; ++k) panel[k * kMR + m] = src[k];
      }
      for (std::int64_t m = mr; m < kMR; ++m) {
        for (std::int64_t k = 0; k < kc; ++k) panel[k * kMR + m] = 0.0f;
      }
    }
  }
}

/// The B operand in any storage dtype: `trans` means the logical
/// (k x n) element (k, j) lives at data[j * ld + k]. `scales` is the
/// per-stored-row fp32 scale array (kI8 only).
struct BView {
  const void* data;
  std::int64_t ld;
  bool trans;
  DType dtype = DType::kF32;
  const float* scales = nullptr;
};

/// Packs the logical B block [k0, k0+kc) x [j0, j0+nb) into NR-column micro
/// panels ([k][j] order), zero-padding ragged columns. Templated over the
/// stored element type with a converter mapping (element, stored row) to
/// fp32 — dequantization rides the same pass as the nt transpose, so the
/// micro-kernel always consumes fp32 panels. The fp32 instantiation's
/// converter is the identity: loop-for-loop the legacy copy.
template <typename T, typename Conv>
void pack_b_t(const T* MPIPE_RESTRICT data, std::int64_t ld, bool trans,
              const Conv& conv, std::int64_t k0, std::int64_t j0,
              std::int64_t kc, std::int64_t nb, float* MPIPE_RESTRICT out) {
  for (std::int64_t jp = 0; jp < nb; jp += kNR) {
    const std::int64_t nr = std::min(kNR, nb - jp);
    float* MPIPE_RESTRICT panel = out + jp * kc;
    if (trans) {
      // B stored (n x k): each output column is unit-stride in k.
      for (std::int64_t j = 0; j < nr; ++j) {
        const std::int64_t row = j0 + jp + j;
        const T* MPIPE_RESTRICT src = data + row * ld + k0;
        for (std::int64_t k = 0; k < kc; ++k) {
          panel[k * kNR + j] = conv(src[k], row);
        }
      }
      for (std::int64_t j = nr; j < kNR; ++j) {
        for (std::int64_t k = 0; k < kc; ++k) panel[k * kNR + j] = 0.0f;
      }
    } else {
      for (std::int64_t k = 0; k < kc; ++k) {
        const std::int64_t row = k0 + k;
        const T* MPIPE_RESTRICT src = data + row * ld + j0 + jp;
        float* MPIPE_RESTRICT dst = panel + k * kNR;
        for (std::int64_t j = 0; j < nr; ++j) dst[j] = conv(src[j], row);
        for (std::int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
  }
}

/// Dtype dispatch for pack_b_t — one switch per panel, nothing in the
/// element loops.
void pack_b(const BView& b, std::int64_t k0, std::int64_t j0,
            std::int64_t kc, std::int64_t nb, float* MPIPE_RESTRICT out) {
  switch (b.dtype) {
    case DType::kF32:
      pack_b_t(
          static_cast<const float*>(b.data), b.ld, b.trans,
          [](float v, std::int64_t) { return v; }, k0, j0, kc, nb, out);
      return;
    case DType::kBF16:
      pack_b_t(
          static_cast<const std::uint16_t*>(b.data), b.ld, b.trans,
          [](std::uint16_t v, std::int64_t) { return f32_from_bf16(v); },
          k0, j0, kc, nb, out);
      return;
    case DType::kI8: {
      const float* MPIPE_RESTRICT scales = b.scales;
      pack_b_t(
          static_cast<const std::int8_t*>(b.data), b.ld, b.trans,
          [scales](std::int8_t v, std::int64_t row) {
            return static_cast<float>(v) * scales[row];
          },
          k0, j0, kc, nb, out);
      return;
    }
  }
  MPIPE_UNREACHABLE("unknown dtype");
}

/// C[0..mr) x [0..nr) (+)= Apanel * Bpanel over kc steps. The accumulator
/// block (kMR vector rows of kNR floats) stays in registers for the whole
/// k loop; each k step is one B-row load plus kMR broadcast FMAs.
#if defined(__GNUC__) || defined(__clang__)

// Explicit vector type: GCC 12's auto-vectorizer turns the equivalent
// scalar loops into a permute cascade, so the kernel spells out the shape
// it wants. vector_size(64) compiles on any target (narrower ISAs split
// the ops); alignment 4 keeps loads/stores legal on unpadded C rows.
typedef float VRow __attribute__((vector_size(kNR * sizeof(float)),
                                  aligned(alignof(float))));

void micro_kernel(const float* MPIPE_RESTRICT ap,
                  const float* MPIPE_RESTRICT bp, std::int64_t kc,
                  float* MPIPE_RESTRICT c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr, bool overwrite) {
  VRow acc[kMR] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const VRow brow = *reinterpret_cast<const VRow*>(bp + k * kNR);
    const float* MPIPE_RESTRICT arow = ap + k * kMR;
    for (std::int64_t m = 0; m < kMR; ++m) {
      acc[m] += arow[m] * brow;
    }
  }
  if (mr == kMR && nr == kNR) {
    for (std::int64_t m = 0; m < kMR; ++m) {
      VRow* crow = reinterpret_cast<VRow*>(c + m * ldc);
      *crow = overwrite ? acc[m] : *crow + acc[m];
    }
    return;
  }
  for (std::int64_t m = 0; m < mr; ++m) {
    float* crow = c + m * ldc;
    if (overwrite) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = acc[m][j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[m][j];
    }
  }
}

#else  // portable scalar fallback

void micro_kernel(const float* MPIPE_RESTRICT ap,
                  const float* MPIPE_RESTRICT bp, std::int64_t kc,
                  float* MPIPE_RESTRICT c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr, bool overwrite) {
  float acc[kMR * kNR] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = bp + k * kNR;
    const float* arow = ap + k * kMR;
    for (std::int64_t m = 0; m < kMR; ++m) {
      const float am = arow[m];
      float* accrow = acc + m * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) accrow[j] += am * brow[j];
    }
  }
  for (std::int64_t m = 0; m < mr; ++m) {
    float* crow = c + m * ldc;
    const float* accrow = acc + m * kNR;
    if (overwrite) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = accrow[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += accrow[j];
    }
  }
}

#endif

/// Bias/activation over one finished C tile, applied while the tile is
/// still cache-hot — the "fused" epilogue that replaces whole-tensor
/// add_bias_/relu passes.
void epilogue_tile(float* MPIPE_RESTRICT c, std::int64_t ldc,
                   std::int64_t mb, std::int64_t nb,
                   const float* MPIPE_RESTRICT bias, GemmEpilogue ep) {
  for (std::int64_t m = 0; m < mb; ++m) {
    float* MPIPE_RESTRICT crow = c + m * ldc;
    switch (ep) {
      case GemmEpilogue::kBias:
        for (std::int64_t j = 0; j < nb; ++j) crow[j] += bias[j];
        break;
      case GemmEpilogue::kBiasReLU:
        for (std::int64_t j = 0; j < nb; ++j) {
          const float v = crow[j] + bias[j];
          crow[j] = v > 0.0f ? v : 0.0f;
        }
        break;
      case GemmEpilogue::kBiasGELU:
        for (std::int64_t j = 0; j < nb; ++j) {
          crow[j] = gelu_scalar(crow[j] + bias[j]);
        }
        break;
      case GemmEpilogue::kNone:
        break;
    }
  }
}

/// bias_grad[j0+j] += colsum of one packed B panel (kc x nb, zero-padded
/// NR-column micro panels). Padding columns sum to zero, so the inner loop
/// runs full kNR lanes and only the write-back respects the ragged edge.
void reduce_b_panel(const float* MPIPE_RESTRICT bpack, std::int64_t kc,
                    std::int64_t nb, float* MPIPE_RESTRICT bias_grad) {
  for (std::int64_t jp = 0; jp < nb; jp += kNR) {
    const float* MPIPE_RESTRICT panel = bpack + jp * kc;
    float acc[kNR] = {};
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* MPIPE_RESTRICT brow = panel + kk * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) acc[j] += brow[j];
    }
    const std::int64_t nr = std::min(kNR, nb - jp);
    for (std::int64_t j = 0; j < nr; ++j) bias_grad[jp + j] += acc[j];
  }
}

/// Shared driver: parallelizes over the M x N tile grid; each task packs
/// its own A/B panels into thread-local scratch and runs the micro-kernel
/// over every K slice before applying the epilogue to its tile. When
/// `bias_grad` is set, the i0 == 0 task of each column range additionally
/// accumulates colsum(B) from the packed panels it already holds; K slices
/// reduce in order inside that one task, keeping the sum deterministic
/// under any thread count.
void gemm_driver(const MatView& a, const BView& b, float* c,
                 std::int64_t ldc, std::int64_t m, std::int64_t n,
                 std::int64_t k, bool accumulate, const float* bias,
                 GemmEpilogue ep, float* bias_grad = nullptr) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      if (!accumulate) std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    if (ep != GemmEpilogue::kNone) {
      for (std::int64_t i0 = 0; i0 < m; i0 += kMC) {
        epilogue_tile(c + i0 * ldc, ldc, std::min(kMC, m - i0), n, bias, ep);
      }
    }
    return;
  }

  const std::int64_t mt = (m + kMC - 1) / kMC;
  const std::int64_t nt = (n + kNC - 1) / kNC;
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(mt * nt),
      [&](std::size_t tile_begin, std::size_t tile_end) {
        static thread_local AlignedScratch a_scratch, b_scratch;
        float* apack = a_scratch.get(static_cast<std::size_t>(kMC * kKC));
        float* bpack = b_scratch.get(static_cast<std::size_t>(kKC * kNC));
        for (std::size_t t = tile_begin; t < tile_end; ++t) {
          const std::int64_t i0 = static_cast<std::int64_t>(t) / nt * kMC;
          const std::int64_t j0 = static_cast<std::int64_t>(t) % nt * kNC;
          const std::int64_t mb = std::min(kMC, m - i0);
          const std::int64_t nb = std::min(kNC, n - j0);
          for (std::int64_t k0 = 0; k0 < k; k0 += kKC) {
            const std::int64_t kc = std::min(kKC, k - k0);
            const bool overwrite = !accumulate && k0 == 0;
            pack_a(a, i0, k0, mb, kc, apack);
            pack_b(b, k0, j0, kc, nb, bpack);
            if (bias_grad != nullptr && i0 == 0) {
              reduce_b_panel(bpack, kc, nb, bias_grad + j0);
            }
            for (std::int64_t jp = 0; jp < nb; jp += kNR) {
              const std::int64_t nr = std::min(kNR, nb - jp);
              for (std::int64_t ip = 0; ip < mb; ip += kMR) {
                const std::int64_t mr = std::min(kMR, mb - ip);
                micro_kernel(apack + ip * kc, bpack + jp * kc, kc,
                             c + (i0 + ip) * ldc + j0 + jp, ldc, mr, nr,
                             overwrite);
              }
            }
          }
          if (ep != GemmEpilogue::kNone) {
            epilogue_tile(c + i0 * ldc + j0, ldc, mb, nb, bias + j0, ep);
          }
        }
      },
      /*grain=*/1);
}

void check_2d(const Tensor& t, const char* name) {
  MPIPE_EXPECTS(t.defined(), std::string(name) + " is null");
  MPIPE_EXPECTS(t.shape().rank() == 2, std::string(name) + " must be 2-D");
}

}  // namespace

std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  gemm_driver({a.data(), k, false}, {b.data(), n, false}, c.data(), n, m, n,
              k, accumulate, nullptr, GemmEpilogue::kNone);
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  MPIPE_EXPECTS(b.dim(1) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  gemm_driver({a.data(), k, false}, {b.data(), k, true}, c.data(), n, m, n,
              k, accumulate, nullptr, GemmEpilogue::kNone);
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  gemm_driver({a.data(), m, true}, {b.data(), n, false}, c.data(), n, m, n,
              k, accumulate, nullptr, GemmEpilogue::kNone);
}

void gemm_tn_bias_grad(const Tensor& a, const Tensor& b, Tensor& c,
                       Tensor& bias_grad, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  MPIPE_EXPECTS(bias_grad.defined() && bias_grad.shape().rank() == 1 &&
                    bias_grad.dim(0) == n,
                "bias_grad length must equal output columns");
  gemm_driver({a.data(), m, true}, {b.data(), n, false}, c.data(), n, m, n,
              k, accumulate, nullptr, GemmEpilogue::kNone, bias_grad.data());
}

void gemm_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                   GemmEpilogue epilogue, Tensor& c) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  const float* bias_ptr = nullptr;
  if (epilogue != GemmEpilogue::kNone) {
    MPIPE_EXPECTS(bias.defined() && bias.shape().rank() == 1 &&
                      bias.dim(0) == n,
                  "bias length must equal output columns");
    bias_ptr = bias.data();
  }
  gemm_driver({a.data(), k, false}, {b.data(), n, false}, c.data(), n, m, n,
              k, /*accumulate=*/false, bias_ptr, epilogue);
}

void gemm_bias(const Tensor& a, const Tensor& b, const Tensor& bias,
               Tensor& c) {
  gemm_bias_act(a, b, bias, GemmEpilogue::kBias, c);
}

namespace {

void check_quant_b(const QuantView& b) {
  MPIPE_EXPECTS(b.data != nullptr && b.rows > 0 && b.cols > 0,
                "quantized B operand is null");
  MPIPE_EXPECTS(b.dtype != DType::kI8 || b.row_scales != nullptr,
                "int8 B operand needs per-row scales");
}

}  // namespace

void gemm_bias_act_q(const Tensor& a, const QuantView& b, const Tensor& bias,
                     GemmEpilogue epilogue, Tensor& c) {
  check_2d(a, "A");
  check_2d(c, "C");
  check_quant_b(b);
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.cols;
  MPIPE_EXPECTS(b.rows == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  const float* bias_ptr = nullptr;
  if (epilogue != GemmEpilogue::kNone) {
    MPIPE_EXPECTS(bias.defined() && bias.shape().rank() == 1 &&
                      bias.dim(0) == n,
                  "bias length must equal output columns");
    bias_ptr = bias.data();
  }
  gemm_driver({a.data(), k, false}, {b.data, n, false, b.dtype, b.row_scales},
              c.data(), n, m, n, k, /*accumulate=*/false, bias_ptr, epilogue);
}

void gemm_nt_q(const Tensor& a, const QuantView& b, Tensor& c,
               bool accumulate) {
  check_2d(a, "A");
  check_2d(c, "C");
  check_quant_b(b);
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.rows;
  MPIPE_EXPECTS(b.cols == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  gemm_driver({a.data(), k, false}, {b.data, k, true, b.dtype, b.row_scales},
              c.data(), n, m, n, k, accumulate, nullptr, GemmEpilogue::kNone);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(0), b.dim(1)});
  gemm(a, b, c);
  return c;
}

}  // namespace mpipe
