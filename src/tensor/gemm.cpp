#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mpipe {

namespace {

// Panel sizes tuned for L1/L2 residence of the B panel; correctness does not
// depend on them (the tail loops handle ragged edges).
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 128;
constexpr std::int64_t kBlockK = 128;

// Inner kernel: C[mb, nb] += A[mb, kb] * B[kb, nb], all row-major panels
// addressed inside the full matrices.
void kernel_nn(const float* a, const float* b, float* c, std::int64_t lda,
               std::int64_t ldb, std::int64_t ldc, std::int64_t mb,
               std::int64_t nb, std::int64_t kb) {
  for (std::int64_t i = 0; i < mb; ++i) {
    for (std::int64_t k = 0; k < kb; ++k) {
      const float aik = a[i * lda + k];
      if (aik == 0.0f) continue;
      const float* brow = b + k * ldb;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < nb; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void check_2d(const Tensor& t, const char* name) {
  MPIPE_EXPECTS(t.defined(), std::string(name) + " is null");
  MPIPE_EXPECTS(t.shape().rank() == 2, std::string(name) + " must be 2-D");
}

}  // namespace

std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();

  const std::int64_t row_blocks = (m + kBlockM - 1) / kBlockM;
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(row_blocks),
      [&](std::size_t bm_begin, std::size_t bm_end) {
        for (std::size_t bm = bm_begin; bm < bm_end; ++bm) {
          const std::int64_t i0 = static_cast<std::int64_t>(bm) * kBlockM;
          const std::int64_t mb = std::min(kBlockM, m - i0);
          for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::int64_t kb = std::min(kBlockK, k - k0);
            for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
              const std::int64_t nb = std::min(kBlockN, n - j0);
              kernel_nn(pa + i0 * k + k0, pb + k0 * n + j0, pc + i0 * n + j0,
                        k, n, n, mb, nb, kb);
            }
          }
        }
      },
      /*grain=*/1);
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  MPIPE_EXPECTS(b.dim(1) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();

  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          const float* arow = pa + static_cast<std::int64_t>(i) * k;
          float* crow = pc + static_cast<std::int64_t>(i) * n;
          for (std::int64_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              acc += static_cast<double>(arow[kk]) * brow[kk];
            }
            crow[j] += static_cast<float>(acc);
          }
        }
      },
      /*grain=*/8);
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "A");
  check_2d(b, "B");
  check_2d(c, "C");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  MPIPE_EXPECTS(b.dim(0) == k, "inner dimension mismatch");
  MPIPE_EXPECTS(c.dim(0) == m && c.dim(1) == n, "output shape mismatch");
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();

  // Parallelise over output rows (columns of A); each row of C is a
  // reduction over the k rows of A and B, touched stride-m / stride-n.
  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t i_begin, std::size_t i_end) {
        for (std::size_t i = i_begin; i < i_end; ++i) {
          float* crow = pc + static_cast<std::int64_t>(i) * n;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const float aki = pa[kk * m + static_cast<std::int64_t>(i)];
            if (aki == 0.0f) continue;
            const float* brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j) {
              crow[j] += aki * brow[j];
            }
          }
        }
      },
      /*grain=*/8);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(0), b.dim(1)});
  gemm(a, b, c);
  return c;
}

}  // namespace mpipe
