#pragma once
/// \file tensor.h
/// Dense row-major fp32 tensor with shared storage. Cheap to copy (copies
/// share the buffer, like torch tensors); use clone() for a deep copy.
/// All real math in the reproduction flows through these.

#include <memory>
#include <vector>

#include "tensor/shape.h"

namespace mpipe {

class Tensor {
 public:
  /// Empty (null) tensor.
  Tensor() = default;

  /// Allocates zero-initialised storage of the given shape.
  explicit Tensor(Shape shape);

  /// Wraps existing data (copied in).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::int64_t dim(std::size_t i) const { return shape_.dim(i); }

  /// Size of the underlying buffer in bytes (fp32).
  std::uint64_t nbytes() const {
    return static_cast<std::uint64_t>(numel()) * sizeof(float);
  }

  float* data();
  const float* data() const;

  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  /// 2-D accessors (row, col) — the dominant layout here is (tokens, dim).
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// Deep copy.
  Tensor clone() const;

  /// Returns a deep-copied row slice [row_begin, row_end) of a 2-D tensor.
  Tensor slice_rows(std::int64_t row_begin, std::int64_t row_end) const;

  /// Copies `src` into rows [row_begin, row_begin+src.rows) of this 2-D
  /// tensor (shapes must agree on the column count).
  void copy_into_rows(std::int64_t row_begin, const Tensor& src);

  /// Reinterprets storage with a new shape of identical numel (shares data).
  Tensor reshape(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Sum of all elements (fp64 accumulation).
  double sum() const;
  /// Max |x|.
  float abs_max() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> storage_;
  // Offset into storage in elements; nonzero only for reshape views.
  std::int64_t offset_ = 0;
};

/// max_i |a_i - b_i|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True when all element pairs are within atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace mpipe
