#include "tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace mpipe {

Tensor::Tensor(Shape shape)
    : shape_(shape),
      storage_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(shape) {
  MPIPE_EXPECTS(static_cast<std::int64_t>(data.size()) == shape.numel(),
                "data size does not match shape");
  storage_ = std::make_shared<std::vector<float>>(std::move(data));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float* Tensor::data() {
  MPIPE_EXPECTS(defined(), "null tensor");
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  MPIPE_EXPECTS(defined(), "null tensor");
  return storage_->data() + offset_;
}

float& Tensor::at(std::int64_t i) {
  MPIPE_EXPECTS(i >= 0 && i < numel(), "flat index out of range");
  return data()[i];
}

float Tensor::at(std::int64_t i) const {
  MPIPE_EXPECTS(i >= 0 && i < numel(), "flat index out of range");
  return data()[i];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  MPIPE_EXPECTS(shape_.rank() == 2, "2-D accessor on non-matrix");
  MPIPE_EXPECTS(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1),
                "index out of range");
  return data()[r * shape_.dim(1) + c];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  MPIPE_EXPECTS(shape_.rank() == 2, "2-D accessor on non-matrix");
  MPIPE_EXPECTS(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1),
                "index out of range");
  return data()[r * shape_.dim(1) + c];
}

Tensor Tensor::clone() const {
  if (!defined()) return Tensor();
  Tensor out(shape_);
  std::memcpy(out.data(), data(), static_cast<std::size_t>(nbytes()));
  return out;
}

Tensor Tensor::slice_rows(std::int64_t row_begin, std::int64_t row_end) const {
  MPIPE_EXPECTS(shape_.rank() == 2, "slice_rows on non-matrix");
  MPIPE_EXPECTS(0 <= row_begin && row_begin <= row_end &&
                    row_end <= shape_.dim(0),
                "row range out of bounds");
  const std::int64_t cols = shape_.dim(1);
  Tensor out(Shape{row_end - row_begin, cols});
  std::memcpy(out.data(), data() + row_begin * cols,
              static_cast<std::size_t>((row_end - row_begin) * cols) *
                  sizeof(float));
  return out;
}

void Tensor::copy_into_rows(std::int64_t row_begin, const Tensor& src) {
  MPIPE_EXPECTS(shape_.rank() == 2 && src.shape().rank() == 2,
                "copy_into_rows on non-matrix");
  MPIPE_EXPECTS(src.dim(1) == dim(1), "column count mismatch");
  MPIPE_EXPECTS(row_begin >= 0 && row_begin + src.dim(0) <= dim(0),
                "destination rows out of bounds");
  std::memcpy(data() + row_begin * dim(1), src.data(),
              static_cast<std::size_t>(src.numel()) * sizeof(float));
}

Tensor Tensor::reshape(Shape new_shape) const {
  MPIPE_EXPECTS(defined(), "reshape of null tensor");
  MPIPE_EXPECTS(new_shape.numel() == numel(), "reshape changes numel");
  Tensor view;
  view.shape_ = new_shape;
  view.storage_ = storage_;
  view.offset_ = offset_;
  return view;
}

void Tensor::fill(float value) {
  MPIPE_EXPECTS(defined(), "fill of null tensor");
  float* p = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = value;
}

double Tensor::sum() const {
  MPIPE_EXPECTS(defined(), "sum of null tensor");
  double acc = 0.0;
  const float* p = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

float Tensor::abs_max() const {
  MPIPE_EXPECTS(defined(), "abs_max of null tensor");
  float m = 0.0f;
  const float* p = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  MPIPE_EXPECTS(a.shape() == b.shape(), "shape mismatch");
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace mpipe
