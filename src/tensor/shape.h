#pragma once
/// \file shape.h
/// Row-major tensor shapes (rank <= 4 covers everything in MoE training).

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace mpipe {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  std::size_t rank() const { return rank_; }
  std::int64_t dim(std::size_t i) const;
  std::int64_t operator[](std::size_t i) const { return dim(i); }

  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  /// Row-major stride of dimension i (elements).
  std::int64_t stride(std::size_t i) const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Returns a shape with dimension `i` replaced.
  Shape with_dim(std::size_t i, std::int64_t value) const;

  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace mpipe
