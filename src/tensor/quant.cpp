#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace mpipe {

void round_through_bf16(float* data, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) data[i] = bf16_round(data[i]);
}

void round_through_i8_rows(float* data, std::int64_t rows,
                           std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    float absmax = 0.0f;
    bool finite = true;  // std::max drops NaN, so track finiteness apart
    for (std::int64_t c = 0; c < cols; ++c) {
      finite = finite && std::isfinite(row[c]);
      absmax = std::max(absmax, std::fabs(row[c]));
    }
    if (!finite) continue;         // keep corruption detectable
    if (absmax == 0.0f) continue;  // all-zero row is exact
    const float scale = absmax / 127.0f;
    const float inv = 127.0f / absmax;
    for (std::int64_t c = 0; c < cols; ++c) {
      // Cast through int8 so the value is bitwise what dequantize_matrix
      // produces (nearbyint alone yields -0.0 for small negatives).
      row[c] = static_cast<float>(static_cast<std::int8_t>(
                   std::nearbyint(row[c] * inv))) *
               scale;
    }
  }
}

void round_through_dtype(float* data, std::int64_t rows, std::int64_t cols,
                         DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return;
    case DType::kBF16:
      round_through_bf16(data, rows * cols);
      return;
    case DType::kI8:
      round_through_i8_rows(data, rows, cols);
      return;
  }
  MPIPE_UNREACHABLE("unknown dtype");
}

QuantizedMatrix quantize_matrix(const Tensor& w, DType dtype) {
  QuantizedMatrix q;
  if (dtype == DType::kF32) return q;
  MPIPE_EXPECTS(w.defined() && w.shape().rank() == 2,
                "quantize_matrix needs a 2-D tensor");
  q.dtype = dtype;
  q.rows = w.dim(0);
  q.cols = w.dim(1);
  const float* src = w.data();
  const std::int64_t n = q.rows * q.cols;
  if (dtype == DType::kBF16) {
    q.bf16.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) q.bf16[i] = bf16_from_f32(src[i]);
    return q;
  }
  q.i8.resize(static_cast<std::size_t>(n));
  q.scales.resize(static_cast<std::size_t>(q.rows));
  for (std::int64_t r = 0; r < q.rows; ++r) {
    const float* row = src + r * q.cols;
    float absmax = 0.0f;
    bool finite = true;  // std::max drops NaN, so track finiteness apart
    for (std::int64_t c = 0; c < q.cols; ++c) {
      finite = finite && std::isfinite(row[c]);
      absmax = std::max(absmax, std::fabs(row[c]));
    }
    std::int8_t* dst = q.i8.data() + r * q.cols;
    if (!finite) {
      // Poison the scale: dequantized values stay non-finite, so the
      // numerics guard sees the corruption instead of a silently-clean
      // quantized copy.
      q.scales[static_cast<std::size_t>(r)] =
          std::numeric_limits<float>::quiet_NaN();
      for (std::int64_t c = 0; c < q.cols; ++c) dst[c] = 1;
      continue;
    }
    if (absmax == 0.0f) {
      q.scales[static_cast<std::size_t>(r)] = 0.0f;
      for (std::int64_t c = 0; c < q.cols; ++c) dst[c] = 0;
      continue;
    }
    const float inv = 127.0f / absmax;
    q.scales[static_cast<std::size_t>(r)] = absmax / 127.0f;
    for (std::int64_t c = 0; c < q.cols; ++c) {
      dst[c] = static_cast<std::int8_t>(std::nearbyint(row[c] * inv));
    }
  }
  return q;
}

Tensor dequantize_matrix(const QuantizedMatrix& q) {
  MPIPE_EXPECTS(q.defined(), "dequantize_matrix on an undefined matrix");
  Tensor out(Shape{q.rows, q.cols});
  float* dst = out.data();
  const std::int64_t n = q.rows * q.cols;
  if (q.dtype == DType::kBF16) {
    for (std::int64_t i = 0; i < n; ++i) dst[i] = f32_from_bf16(q.bf16[i]);
    return out;
  }
  for (std::int64_t r = 0; r < q.rows; ++r) {
    const float scale = q.scales[static_cast<std::size_t>(r)];
    const std::int8_t* src = q.i8.data() + r * q.cols;
    float* row = dst + r * q.cols;
    for (std::int64_t c = 0; c < q.cols; ++c) {
      row[c] = static_cast<float>(src[c]) * scale;
    }
  }
  return out;
}

}  // namespace mpipe
