#pragma once
/// \file simd.h
/// Shared GCC/Clang vector-extension helpers for the row-wise kernels
/// (layer norm, softmax, reductions) — the same pattern as the GEMM
/// micro-kernel in gemm.cpp: an explicit 8-lane float vector so the
/// compiler emits the wide ops we want, with a portable scalar fallback
/// elsewhere. Kernels built on these must stay numerically equivalent to
/// their scalar formulation (lane-split accumulation is allowed); the
/// scalar-vs-SIMD sweeps in tests/test_engine_fuzz.cpp enforce it.

#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define MPIPE_SIMD 1
#endif

namespace mpipe::simd {

#if defined(MPIPE_SIMD)

inline constexpr std::int64_t kLanes = 8;

/// 8 x float. alignment 4 keeps loads/stores legal on arbitrary row
/// starts (rows of a (B, dim) tensor are not 32-byte aligned).
typedef float VF __attribute__((vector_size(kLanes * sizeof(float)),
                                aligned(alignof(float))));

inline VF load(const float* p) { return *reinterpret_cast<const VF*>(p); }
inline void store(float* p, VF v) { *reinterpret_cast<VF*>(p) = v; }
inline VF splat(float x) { return VF{} + x; }

inline float hsum(VF v) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < kLanes; ++i) s += v[i];
  return s;
}

inline float hmax(VF v) {
  float m = v[0];
  for (std::int64_t i = 1; i < kLanes; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

inline VF vmax(VF a, VF b) { return a > b ? a : b; }

/// Per-lane square root; GCC/Clang lower the fixed-trip loop to the wide
/// sqrt instruction. Kept here so kernels (Adam) stay expressed in VF ops.
inline VF vsqrt(VF v) {
  VF r;
  for (std::int64_t i = 0; i < kLanes; ++i) r[i] = __builtin_sqrtf(v[i]);
  return r;
}

#else

inline constexpr std::int64_t kLanes = 1;

#endif  // MPIPE_SIMD

/// Contiguous float copy. Measured head-to-head on the bench host (see
/// the data-movement section of tensor/README.md), tuned libc memcpy
/// (AVX + rep-movsb dispatch) beats a plain unaligned 8-lane loop at
/// every block size from 64 B up — so memcpy stays the wide engine for
/// real blocks, and the explicit lanes cover only sub-16-float moves
/// (where the two are at parity and the call is skipped) plus the no-
/// vector-extension fallback. Copies are per-element moves, so results
/// are identical regardless of how callers chunk the range across
/// threads.
inline void copy(float* dst, const float* src, std::int64_t n) {
  std::int64_t i = 0;
#if defined(MPIPE_SIMD)
  if (n >= 2 * kLanes) {
    __builtin_memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
    return;
  }
  if (i + kLanes <= n) {  // at most one vector block below the cutoff
    store(dst + i, load(src + i));
    i += kLanes;
  }
#endif
  for (; i < n; ++i) dst[i] = src[i];
}

}  // namespace mpipe::simd
