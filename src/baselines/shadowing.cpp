#include "baselines/shadowing.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::baselines {

bool ShadowingDecision::is_shadowed(int device) const {
  return std::find(shadowed.begin(), shadowed.end(), device) !=
         shadowed.end();
}

ShadowingDecision select_shadowed(const std::vector<std::int64_t>& recv_rows,
                                  const ShadowingConfig& config) {
  ShadowingDecision decision;
  if (!config.enabled || recv_rows.empty()) return decision;
  MPIPE_EXPECTS(config.threshold > 1.0, "threshold must exceed the mean");
  double mean = 0.0;
  for (std::int64_t r : recv_rows) mean += static_cast<double>(r);
  mean /= static_cast<double>(recv_rows.size());
  if (mean <= 0.0) return decision;

  // Hottest destinations first.
  std::vector<int> order(recv_rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return recv_rows[static_cast<std::size_t>(a)] >
           recv_rows[static_cast<std::size_t>(b)];
  });
  for (int device : order) {
    if (static_cast<int>(decision.shadowed.size()) >= config.max_shadowed) {
      break;
    }
    if (static_cast<double>(recv_rows[static_cast<std::size_t>(device)]) >
        config.threshold * mean) {
      decision.shadowed.push_back(device);
    }
  }
  return decision;
}

std::uint64_t shadow_bytes_per_destination(std::int64_t d_model,
                                           std::int64_t d_hidden,
                                           int experts_per_device) {
  // Parameters + gradients of the replicated experts.
  return 2ull * static_cast<std::uint64_t>(experts_per_device) * 2ull *
         static_cast<std::uint64_t>(d_model) *
         static_cast<std::uint64_t>(d_hidden) * sizeof(float);
}

}  // namespace mpipe::baselines
