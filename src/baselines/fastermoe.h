#pragma once
/// \file fastermoe.h
/// FasterMoE-style baseline (paper §III-B, Fig 5a): the batch tensor is
/// split along the *device* dimension, so each pipeline step gathers one
/// destination's tokens with point-to-point transfers, computes that
/// expert, and scatters results back — granularity fixed at the device
/// count. Every fragment pays its own launch latency and the destination's
/// comm stream serialises arrivals; under heterogeneous bandwidth the
/// per-step synchronisation waits for the slowest link. Includes dynamic
/// expert shadowing (timing mode), which trades replicated expert memory
/// for reduced traffic on hot experts.

#include <deque>

#include "baselines/shadowing.h"
#include "core/execution_context.h"
#include "core/pipeline_executor.h"
#include "mem/device_allocator.h"
#include "moe/expert.h"
#include "moe/gating.h"
#include "sim/cluster.h"
#include "comm/process_group.h"

namespace mpipe::baselines {

struct FasterMoEOptions {
  std::int64_t d_model = 1024;
  std::int64_t d_hidden = 4096;
  int num_experts = 64;
  moe::ActivationKind activation = moe::ActivationKind::kReLU;
  /// CUDA-core vs Tensor-Core throughput ratio.
  double compute_scale = 0.45;
  /// Shadowing applies to timing-mode steps; functional steps validate the
  /// P2P pipeline numerics without it.
  ShadowingConfig shadowing{};
  /// Run functional steps on the concurrent graph executor (see
  /// core::MoELayerOptions::parallel_execution).
  bool parallel_execution = false;
  core::ExecutionMode mode = core::ExecutionMode::kFull;
  std::uint64_t seed = 42;
};

class FasterMoELayer {
 public:
  FasterMoELayer(sim::Cluster& cluster, FasterMoEOptions options);

  std::vector<Tensor> forward(const std::vector<Tensor>& inputs);
  std::vector<Tensor> backward(const std::vector<Tensor>& grad_outputs);
  core::StepReport step_timing(std::int64_t tokens_per_device,
                               double skew = 0.0);

  const core::StepReport& last_report() const { return report_; }
  mem::DeviceAllocator& allocator(int device);
  int num_devices() const { return cluster_->num_devices(); }
  int experts_per_device() const {
    return options_.num_experts / num_devices();
  }
  moe::GatingNetwork& gate(int device);
  moe::ExpertFFN& expert(int device, int local_index);

 private:
  void setup_forward_buffers(core::MoeStepContext& ctx);
  void setup_backward_buffers(core::MoeStepContext& ctx);
  sim::OpGraph build_forward(core::MoeStepContext& ctx,
                             const ShadowingDecision& shadow);
  sim::OpGraph build_backward(core::MoeStepContext& ctx,
                              const ShadowingDecision& shadow);
  /// Rows device d computes given the shadowing decision.
  std::int64_t compute_rows(const core::MoeStepContext& ctx, int device,
                            const ShadowingDecision& shadow) const;

  sim::Cluster* cluster_;
  FasterMoEOptions options_;
  comm::ProcessGroup world_;
  std::deque<mem::DeviceAllocator> allocators_;
  std::vector<moe::GatingNetwork> gates_;
  std::vector<std::vector<moe::ExpertFFN>> experts_;
  std::vector<mem::Allocation> model_state_allocs_;
  std::vector<mem::Allocation> shadow_allocs_;  ///< live during a step
  std::optional<core::MoeStepContext> ctx_;
  core::StepReport report_;
};

}  // namespace mpipe::baselines
