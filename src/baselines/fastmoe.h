#pragma once
/// \file fastmoe.h
/// FastMoE-style baseline: primitive expert parallelism. The whole batch
/// is dispatched with one AllToAll, the expert runs, one AllToAll combines
/// — communication and computation strictly in sequence, no memory reuse,
/// CUDA-core GEMM throughput (the paper credits part of PipeMoE's win to
/// Tensor Cores). Serial execution frees gradient scratch eagerly, so the
/// temp-buffer peak follows Eq 3 (BM + BH).

#include "core/moe_layer.h"

namespace mpipe::baselines {

struct FastMoEOptions {
  std::int64_t d_model = 1024;
  std::int64_t d_hidden = 4096;
  int num_experts = 64;
  moe::ActivationKind activation = moe::ActivationKind::kReLU;
  /// CUDA-core vs Tensor-Core throughput ratio.
  double compute_scale = 0.45;
  /// FastMoE's AllToAll is grouped per-pair send/recv, not a fused
  /// collective — it reaches only the P2P share of the fabric.
  double comm_scale = 0.45;
  /// Run functional steps on the concurrent graph executor (see
  /// core::MoELayerOptions::parallel_execution).
  bool parallel_execution = false;
  core::ExecutionMode mode = core::ExecutionMode::kFull;
  std::uint64_t seed = 42;
};

/// Thin adapter over MoELayer with pipelining and reuse disabled.
class FastMoELayer {
 public:
  FastMoELayer(sim::Cluster& cluster, FastMoEOptions options);

  std::vector<Tensor> forward(const std::vector<Tensor>& inputs) {
    return layer_.forward(inputs);
  }
  std::vector<Tensor> backward(const std::vector<Tensor>& grad_outputs) {
    return layer_.backward(grad_outputs);
  }
  core::StepReport step_timing(std::int64_t tokens_per_device,
                               double skew = 0.0) {
    return layer_.step_timing(tokens_per_device, skew);
  }
  const core::StepReport& last_report() const {
    return layer_.last_report();
  }
  core::MoELayer& layer() { return layer_; }

 private:
  core::MoELayer layer_;
};

}  // namespace mpipe::baselines
