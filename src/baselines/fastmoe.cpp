#include "baselines/fastmoe.h"

namespace mpipe::baselines {

namespace {
core::MoELayerOptions to_layer_options(const FastMoEOptions& options) {
  core::MoELayerOptions o;
  o.d_model = options.d_model;
  o.d_hidden = options.d_hidden;
  o.num_experts = options.num_experts;
  o.activation = options.activation;
  o.pipeline = false;
  o.num_partitions = 1;
  o.memory_reuse = false;
  o.compute_scale = options.compute_scale;
  o.comm_scale = options.comm_scale;
  o.parallel_execution = options.parallel_execution;
  o.sequential_temp_accounting = true;
  o.mode = options.mode;
  o.seed = options.seed;
  return o;
}
}  // namespace

FastMoELayer::FastMoELayer(sim::Cluster& cluster, FastMoEOptions options)
    : layer_(cluster, to_layer_options(options)) {}

}  // namespace mpipe::baselines
