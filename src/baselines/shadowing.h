#pragma once
/// \file shadowing.h
/// FasterMoE's dynamic expert shadowing: when a destination device is about
/// to receive far more tokens than average (a "hot" expert), its expert
/// parameters are broadcast to every device and those tokens are processed
/// locally instead of being sent — trading replicated model-state memory
/// for AllToAll traffic.

#include <cstdint>
#include <vector>

namespace mpipe::baselines {

struct ShadowingConfig {
  bool enabled = true;
  /// A destination is shadowed when it would receive more than
  /// `threshold` × the mean token count.
  double threshold = 1.5;
  /// Upper bound on simultaneously shadowed destinations.
  int max_shadowed = 4;
};

struct ShadowingDecision {
  std::vector<int> shadowed;  ///< destination devices whose experts shadow
  bool is_shadowed(int device) const;
};

/// Picks the shadowed destinations from per-destination receive rows.
ShadowingDecision select_shadowed(const std::vector<std::int64_t>& recv_rows,
                                  const ShadowingConfig& config);

/// Bytes each device gains in replicated parameters + gradients for one
/// shadowed destination (experts_per_device FFNs of 2*M*H each, fp32).
std::uint64_t shadow_bytes_per_destination(std::int64_t d_model,
                                           std::int64_t d_hidden,
                                           int experts_per_device);

}  // namespace mpipe::baselines
