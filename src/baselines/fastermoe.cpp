#include "baselines/fastermoe.h"

#include <algorithm>

#include "comm/collectives.h"
#include "comm/p2p.h"
#include "common/check.h"
#include "core/restore.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mpipe::baselines {

using core::MoeStepContext;
using sim::OpCategory;
using sim::StreamKind;

namespace {

std::uint64_t model_state_bytes(const FasterMoEOptions& options, int epd) {
  const std::uint64_t params =
      static_cast<std::uint64_t>(options.num_experts) * options.d_model +
      static_cast<std::uint64_t>(epd) *
          (2ull * options.d_model * options.d_hidden + options.d_hidden +
           options.d_model);
  return 4ull * params * sizeof(float);
}

std::string tag(const char* name, int j) {
  return std::string(name) + std::to_string(j);
}

// Hazard declarations for the parallel executor (sim/graph_executor.h):
// every functional op states the byte ranges it touches. The P2P
// gather/scatter ops self-annotate from their segment tables in comm/p2p;
// the expert parameter/gradient declarations are the shared helpers in
// core/restore.h.

}  // namespace

FasterMoELayer::FasterMoELayer(sim::Cluster& cluster,
                               FasterMoEOptions options)
    : cluster_(&cluster),
      options_(std::move(options)),
      world_(comm::ProcessGroup::world(cluster)) {
  const int P = cluster.num_devices();
  MPIPE_EXPECTS(options_.num_experts % P == 0,
                "num_experts must be a multiple of the device count");
  MPIPE_EXPECTS(options_.compute_scale > 0.0, "bad compute scale");
  const int epd = options_.num_experts / P;
  for (int d = 0; d < P; ++d) {
    allocators_.emplace_back(d);
    model_state_allocs_.push_back(allocators_.back().allocate(
        mem::Category::kModelState, model_state_bytes(options_, epd)));
  }
  if (options_.mode == core::ExecutionMode::kFull) {
    Rng master(options_.seed);
    Rng gate_rng = master.fork();
    for (int d = 0; d < P; ++d) {
      Rng replica = gate_rng;
      gates_.emplace_back(options_.d_model, options_.num_experts, replica);
    }
    experts_.resize(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      for (int k = 0; k < epd; ++k) {
        Rng expert_rng = master.fork();
        experts_[static_cast<std::size_t>(d)].emplace_back(
            options_.d_model, options_.d_hidden, options_.activation,
            expert_rng);
      }
    }
  }
}

mem::DeviceAllocator& FasterMoELayer::allocator(int device) {
  MPIPE_EXPECTS(device >= 0 && device < num_devices(),
                "device out of range");
  return allocators_[static_cast<std::size_t>(device)];
}

moe::GatingNetwork& FasterMoELayer::gate(int device) {
  MPIPE_EXPECTS(!gates_.empty(), "no parameters in timing-only mode");
  return gates_[static_cast<std::size_t>(device)];
}

moe::ExpertFFN& FasterMoELayer::expert(int device, int local_index) {
  MPIPE_EXPECTS(!experts_.empty(), "no parameters in timing-only mode");
  return experts_[static_cast<std::size_t>(device)]
                 [static_cast<std::size_t>(local_index)];
}

void FasterMoELayer::setup_forward_buffers(MoeStepContext& ctx) {
  const bool mat = ctx.functional();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E = options_.num_experts;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    auto& alloc = allocator(d);
    st.x_alloc = alloc.allocate(
        mem::Category::kActivation,
        static_cast<std::uint64_t>(B) * M * sizeof(float));
    auto out = alloc.alloc_tensor(Shape{B, M}, mem::Category::kActivation,
                                  mat);
    st.out = out.tensor;
    st.out_alloc = std::move(out.allocation);
    st.gating_alloc = alloc.allocate(
        mem::Category::kActivation,
        static_cast<std::uint64_t>(B) * E * sizeof(float));
    const std::int64_t rows = std::max<std::int64_t>(
        1, ctx.plan.part(0).recv_rows[static_cast<std::size_t>(d)]);
    st.tdi_parts.push_back(
        alloc.alloc_tensor(Shape{rows, M}, mem::Category::kActivation, mat));
    st.tm_parts.push_back(
        alloc.alloc_tensor(Shape{rows, H}, mem::Category::kActivation, mat));
    st.tdo_parts.push_back(
        alloc.alloc_tensor(Shape{rows, M}, mem::Category::kActivation, mat));
  }
}

void FasterMoELayer::setup_backward_buffers(MoeStepContext& ctx) {
  const bool mat = ctx.functional();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    auto& alloc = allocator(d);
    auto dx = alloc.alloc_tensor(Shape{B, M}, mem::Category::kTempBuffer,
                                 mat);
    st.dx = dx.tensor;
    st.dx_alloc = std::move(dx.allocation);
    st.dgate.assign(static_cast<std::size_t>(B), 0.0f);
    // Serial gradient scratch, freed eagerly (Eq 3 peak).
    {
      auto walk = alloc.allocate(
          mem::Category::kTempBuffer,
          static_cast<std::uint64_t>(B) * (M + H) * sizeof(float));
    }
    const std::int64_t rows = std::max<std::int64_t>(
        1, ctx.plan.part(0).recv_rows[static_cast<std::size_t>(d)]);
    auto untracked = [&](Shape shape, bool materialize) {
      mem::TrackedTensor t;
      if (materialize) t.tensor = Tensor(shape);
      return t;
    };
    st.d_ys_parts.push_back(untracked(Shape{std::max<std::int64_t>(1, B), M},
                                      mat));
    st.d_tdo_parts.push_back(untracked(Shape{rows, M}, mat));
    st.d_tm_parts.push_back(untracked(Shape{rows, H}, false));
    st.d_tdi_parts.push_back(untracked(Shape{rows, M}, mat));
  }
}

std::int64_t FasterMoELayer::compute_rows(const MoeStepContext& ctx,
                                          int device,
                                          const ShadowingDecision& shadow)
    const {
  const auto& part = ctx.plan.part(0);
  std::int64_t rows = 0;
  if (shadow.is_shadowed(device)) {
    // Only the device's own tokens for its (shadowed) experts remain.
    rows += part.src[static_cast<std::size_t>(device)]
                .send_counts[static_cast<std::size_t>(device)];
  } else {
    rows += part.recv_rows[static_cast<std::size_t>(device)];
  }
  // Tokens this device processes locally on behalf of shadowed experts.
  for (int j : shadow.shadowed) {
    if (j == device) continue;
    rows += part.src[static_cast<std::size_t>(device)]
                .send_counts[static_cast<std::size_t>(j)];
  }
  return rows;
}

sim::OpGraph FasterMoELayer::build_forward(MoeStepContext& ctx,
                                           const ShadowingDecision& shadow) {
  const auto& cost = cluster_->cost_model();
  const int P = ctx.num_devices();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E = options_.num_experts;
  const double cs = options_.compute_scale;
  const auto& part = ctx.plan.part(0);

  sim::OpGraph g;

  std::vector<int> gate_ops(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    gate_ops[static_cast<std::size_t>(d)] =
        g.add(tag("G", d), OpCategory::kGemm, StreamKind::kCompute, {d},
              cost.gemm_seconds(gemm_flops(B, E, M),
                                std::max<std::int64_t>(B, 1)) /
                  cs,
              {}, nullptr,
              cost.gemm_efficiency(std::max<std::int64_t>(B, 1)));
  }

  // Parameter broadcast for shadowed experts.
  std::vector<int> bcast_ops;
  if (!shadow.shadowed.empty()) {
    // Only the hot expert is replicated, not the destination's whole set.
    const std::uint64_t bytes =
        shadow_bytes_per_destination(M, H, 1) / 2;  // params only, fwd
    for (int j : shadow.shadowed) {
      bcast_ops.push_back(g.add(
          tag("Bcast", j), OpCategory::kBroadcast, StreamKind::kComm,
          world_.devices(),
          cost.broadcast_seconds(bytes, world_.devices()), gate_ops,
          nullptr));
    }
  }

  // Pre-split the functional segment tables by destination / holder.
  std::vector<std::vector<comm::RowSegment>> gather_by_dst(
      static_cast<std::size_t>(P));
  std::vector<std::vector<comm::RowSegment>> scatter_by_src(
      static_cast<std::size_t>(P));
  if (ctx.functional()) {
    for (auto& seg : core::dispatch_segments(ctx, 0)) {
      gather_by_dst[static_cast<std::size_t>(seg.dst_device)].push_back(seg);
    }
    for (auto& seg : core::combine_segments(ctx, 0, false)) {
      scatter_by_src[static_cast<std::size_t>(seg.src_device)].push_back(seg);
    }
  }

  std::vector<std::vector<int>> gather_ops(static_cast<std::size_t>(P));
  std::vector<int> c_ops(static_cast<std::size_t>(P), -1);
  std::vector<std::vector<int>> scatter_ops(static_cast<std::size_t>(P));
  // Per home device: scatter fragments writing into its T_O.
  std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(P));

  auto emit_gather = [&](int j) {
    std::vector<int>& ops = gather_ops[static_cast<std::size_t>(j)];
    const bool shadowed = shadow.is_shadowed(j);
    for (int src = 0; src < P; ++src) {
      if (shadowed && src != j) continue;  // tokens stay home
      const std::int64_t count =
          part.src[static_cast<std::size_t>(src)]
              .send_counts[static_cast<std::size_t>(j)];
      if (count == 0 && src != j) continue;
      if (ctx.functional()) {
        std::vector<comm::RowSegment> segs;
        for (const auto& seg : gather_by_dst[static_cast<std::size_t>(j)]) {
          if (seg.src_device == src) segs.push_back(seg);
        }
        if (segs.empty()) continue;
        ops.push_back(comm::send_recv_multi(
            g, world_, std::move(segs),
            tag("Gth", j) + ".s" + std::to_string(src), gate_ops));
      } else {
        ops.push_back(comm::send_recv_timed(
            g, world_, src, j,
            static_cast<std::uint64_t>(count) * M * sizeof(float),
            tag("Gth", j) + ".s" + std::to_string(src), gate_ops));
      }
    }
  };

  auto emit_compute = [&](int j) {
    std::vector<int> deps = gather_ops[static_cast<std::size_t>(j)];
    for (int op : bcast_ops) deps.push_back(op);
    const std::int64_t rows =
        std::max<std::int64_t>(1, compute_rows(ctx, j, shadow));
    const std::int64_t er =
        std::max<std::int64_t>(1, rows / ctx.plan.experts_per_device);
    const std::uint64_t flops = 2 * gemm_flops(rows, H, M);
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      auto* experts = &experts_;
      fn = [c, experts, j] {
        const auto& spans_of =
            c->plan.part(0).expert_spans[static_cast<std::size_t>(j)];
        for (std::size_t k = 0; k < spans_of.size(); ++k) {
          (*experts)[static_cast<std::size_t>(j)][k].forward_rows(
              core::tdi_buffer(*c, j, 0), spans_of[k],
              core::tm_buffer(*c, j, 0), core::tdo_buffer(*c, j, 0));
        }
      };
    }
    const int id =
        g.add(tag("C", j), OpCategory::kGemm, StreamKind::kCompute, {j},
              cost.gemm_seconds(flops, er) / cs, std::move(deps),
              std::move(fn), cost.gemm_efficiency(er));
    if (ctx.functional()) {
      const std::int64_t recv =
          part.recv_rows[static_cast<std::size_t>(j)];
      sim::Op& op = g.op(id);
      op.reads.push_back(
          sim::access_rows(core::tdi_buffer(ctx, j, 0), 0, recv));
      op.writes.push_back(
          sim::access_rows(core::tm_buffer(ctx, j, 0), 0, recv));
      op.writes.push_back(
          sim::access_rows(core::tdo_buffer(ctx, j, 0), 0, recv));
      core::declare_expert_param_reads(
          op, experts_[static_cast<std::size_t>(j)], /*ffn1=*/true,
          /*ffn2=*/true);
    }
    c_ops[static_cast<std::size_t>(j)] = id;
  };

  auto emit_scatter = [&](int j) {
    const bool shadowed = shadow.is_shadowed(j);
    for (int dst = 0; dst < P; ++dst) {
      if (shadowed && dst != j) continue;
      const std::int64_t count =
          part.src[static_cast<std::size_t>(dst)]
              .send_counts[static_cast<std::size_t>(j)];
      if (count == 0 && dst != j) continue;
      int op = -1;
      if (ctx.functional()) {
        std::vector<comm::RowSegment> segs;
        for (const auto& seg : scatter_by_src[static_cast<std::size_t>(j)]) {
          if (seg.dst_device == dst) segs.push_back(seg);
        }
        if (segs.empty()) continue;
        op = comm::send_recv_multi(
            g, world_, std::move(segs),
            tag("Sct", j) + ".d" + std::to_string(dst),
            {c_ops[static_cast<std::size_t>(j)]});
      } else {
        op = comm::send_recv_timed(
            g, world_, j, dst,
            static_cast<std::uint64_t>(count) * M * sizeof(float),
            tag("Sct", j) + ".d" + std::to_string(dst),
            {c_ops[static_cast<std::size_t>(j)]});
      }
      scatter_ops[static_cast<std::size_t>(j)].push_back(op);
      arrivals[static_cast<std::size_t>(dst)].push_back(op);
    }
  };

  // Enqueue all gathers first so later destinations' receives are not
  // trapped behind earlier scatter arrivals in the receiver FIFO; computes
  // start as their gathers drain, scatters trail the computes.
  for (int j = 0; j < P; ++j) emit_gather(j);
  for (int j = 0; j < P; ++j) emit_compute(j);
  for (int j = 0; j < P; ++j) emit_scatter(j);

  // Gate scaling at home devices.
  for (int d = 0; d < P; ++d) {
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      fn = [c, d] {
        auto& st = c->dev[static_cast<std::size_t>(d)];
        std::vector<float> gate_copy = st.gating.gate;
        scale_rows_(st.out, gate_copy);
      };
    }
    const int id =
        g.add(tag("scale", d), OpCategory::kElementwise,
              StreamKind::kCompute, {d},
              cost.config().compute_launch_latency,
              arrivals[static_cast<std::size_t>(d)], std::move(fn));
    if (ctx.functional()) {
      auto& st = ctx.dev[static_cast<std::size_t>(d)];
      sim::Op& op = g.op(id);
      op.reads.push_back(sim::access_floats(
          st.gating.gate.data(), 0,
          static_cast<std::int64_t>(st.gating.gate.size())));
      op.reads.push_back(sim::access_whole(st.out));
      op.writes.push_back(sim::access_whole(st.out));
    }
  }
  return g;
}

sim::OpGraph FasterMoELayer::build_backward(
    MoeStepContext& ctx, const ShadowingDecision& shadow) {
  const auto& cost = cluster_->cost_model();
  const int P = ctx.num_devices();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E = options_.num_experts;
  const double cs = options_.compute_scale;
  const auto& part = ctx.plan.part(0);

  sim::OpGraph g;

  // Gradient scaling + dgate, per home device.
  std::vector<int> bs(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      fn = [c, d] {
        auto& st = c->dev[static_cast<std::size_t>(d)];
        const auto& routing = c->plan.part(0).src[static_cast<std::size_t>(d)];
        Tensor& ys = core::d_ys_buffer(*c, d, 0);
        for (std::size_t i = 0; i < routing.order.size(); ++i) {
          const std::int64_t t = routing.order[i];
          const float gate = st.gating.gate[static_cast<std::size_t>(t)];
          double dot = 0.0;
          for (std::int64_t col = 0; col < c->d_model; ++col) {
            dot += static_cast<double>(st.dy.at(t, col)) * st.out.at(t, col);
          }
          st.dgate[static_cast<std::size_t>(t)] =
              static_cast<float>(dot / gate);
          for (std::int64_t col = 0; col < c->d_model; ++col) {
            ys.at(static_cast<std::int64_t>(i), col) =
                gate * st.dy.at(t, col);
          }
        }
      };
    }
    const int id =
        g.add(tag("bscale", d), OpCategory::kElementwise,
              StreamKind::kCompute, {d},
              cost.config().compute_launch_latency, {}, std::move(fn));
    if (ctx.functional()) {
      auto& st = ctx.dev[static_cast<std::size_t>(d)];
      const auto& routing = part.src[static_cast<std::size_t>(d)];
      sim::Op& op = g.op(id);
      op.reads.push_back(sim::access_whole(st.dy));
      op.reads.push_back(sim::access_whole(st.out));
      op.reads.push_back(sim::access_floats(
          st.gating.gate.data(), 0,
          static_cast<std::int64_t>(st.gating.gate.size())));
      op.writes.push_back(sim::access_floats(
          st.dgate.data(), 0, static_cast<std::int64_t>(st.dgate.size())));
      op.writes.push_back(sim::access_rows(
          core::d_ys_buffer(ctx, d, 0), 0,
          static_cast<std::int64_t>(routing.order.size())));
    }
    bs[static_cast<std::size_t>(d)] = id;
  }

  std::vector<std::vector<comm::RowSegment>> gather_by_dst(
      static_cast<std::size_t>(P));
  std::vector<std::vector<comm::RowSegment>> scatter_by_src(
      static_cast<std::size_t>(P));
  if (ctx.functional()) {
    for (auto& seg : core::grad_dispatch_segments(ctx, 0)) {
      gather_by_dst[static_cast<std::size_t>(seg.dst_device)].push_back(seg);
    }
    for (auto& seg : core::combine_segments(ctx, 0, true)) {
      scatter_by_src[static_cast<std::size_t>(seg.src_device)].push_back(seg);
    }
  }

  std::vector<std::vector<int>> gather_ops(static_cast<std::size_t>(P));
  std::vector<int> c_ops(static_cast<std::size_t>(P), -1);
  std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(P));

  // Same phase ordering as forward: all gradient gathers, then expert
  // backwards, then the gradient scatters.
  for (int j = 0; j < P; ++j) {
    const bool shadowed = shadow.is_shadowed(j);
    for (int src = 0; src < P; ++src) {
      if (shadowed && src != j) continue;
      const std::int64_t count =
          part.src[static_cast<std::size_t>(src)]
              .send_counts[static_cast<std::size_t>(j)];
      if (count == 0 && src != j) continue;
      if (ctx.functional()) {
        std::vector<comm::RowSegment> segs;
        for (const auto& seg : gather_by_dst[static_cast<std::size_t>(j)]) {
          if (seg.src_device == src) segs.push_back(seg);
        }
        if (segs.empty()) continue;
        gather_ops[static_cast<std::size_t>(j)].push_back(
            comm::send_recv_multi(
                g, world_, std::move(segs),
                tag("Gth'", j) + ".s" + std::to_string(src),
                {bs[static_cast<std::size_t>(src)]}));
      } else {
        gather_ops[static_cast<std::size_t>(j)].push_back(
            comm::send_recv_timed(
                g, world_, src, j,
                static_cast<std::uint64_t>(count) * M * sizeof(float),
                tag("Gth'", j) + ".s" + std::to_string(src),
                {bs[static_cast<std::size_t>(src)]}));
      }
    }
  }

  for (int j = 0; j < P; ++j) {
    const bool shadowed = shadow.is_shadowed(j);
    (void)shadowed;
    // Expert backward on j.
    const std::int64_t rows =
        std::max<std::int64_t>(1, compute_rows(ctx, j, shadow));
    const std::int64_t er =
        std::max<std::int64_t>(1, rows / ctx.plan.experts_per_device);
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      auto* experts = &experts_;
      fn = [c, experts, j] {
        const auto& spans_of =
            c->plan.part(0).expert_spans[static_cast<std::size_t>(j)];
        for (std::size_t k = 0; k < spans_of.size(); ++k) {
          (*experts)[static_cast<std::size_t>(j)][k].backward_rows(
              core::d_tdo_buffer(*c, j, 0), core::tdi_buffer(*c, j, 0),
              core::tm_buffer(*c, j, 0), spans_of[k],
              core::d_tdi_buffer(*c, j, 0));
        }
      };
    }
    const int id =
        g.add(tag("Cb", j), OpCategory::kGemm, StreamKind::kCompute, {j},
              cost.gemm_seconds(4 * gemm_flops(rows, H, M), er) / cs,
              gather_ops[static_cast<std::size_t>(j)], std::move(fn),
              cost.gemm_efficiency(er));
    if (ctx.functional()) {
      const std::int64_t recv =
          part.recv_rows[static_cast<std::size_t>(j)];
      sim::Op& op = g.op(id);
      op.reads.push_back(
          sim::access_rows(core::d_tdo_buffer(ctx, j, 0), 0, recv));
      op.reads.push_back(
          sim::access_rows(core::tdi_buffer(ctx, j, 0), 0, recv));
      op.reads.push_back(
          sim::access_rows(core::tm_buffer(ctx, j, 0), 0, recv));
      op.writes.push_back(
          sim::access_rows(core::d_tdi_buffer(ctx, j, 0), 0, recv));
      auto& experts = experts_[static_cast<std::size_t>(j)];
      core::declare_expert_param_reads(op, experts, /*ffn1=*/true,
                                       /*ffn2=*/true);
      core::declare_expert_grad_accum(op, experts);
    }
    c_ops[static_cast<std::size_t>(j)] = id;
  }

  // Scatter input gradients home as each destination's backward finishes.
  for (int j = 0; j < P; ++j) {
    const bool shadowed = shadow.is_shadowed(j);
    for (int dst = 0; dst < P; ++dst) {
      if (shadowed && dst != j) continue;
      const std::int64_t count =
          part.src[static_cast<std::size_t>(dst)]
              .send_counts[static_cast<std::size_t>(j)];
      if (count == 0 && dst != j) continue;
      int op = -1;
      if (ctx.functional()) {
        std::vector<comm::RowSegment> segs;
        for (const auto& seg : scatter_by_src[static_cast<std::size_t>(j)]) {
          if (seg.dst_device == dst) segs.push_back(seg);
        }
        if (segs.empty()) continue;
        op = comm::send_recv_multi(
            g, world_, std::move(segs),
            tag("Sct'", j) + ".d" + std::to_string(dst),
            {c_ops[static_cast<std::size_t>(j)]});
      } else {
        op = comm::send_recv_timed(
            g, world_, j, dst,
            static_cast<std::uint64_t>(count) * M * sizeof(float),
            tag("Sct'", j) + ".d" + std::to_string(dst),
            {c_ops[static_cast<std::size_t>(j)]});
      }
      arrivals[static_cast<std::size_t>(dst)].push_back(op);
    }
  }

  // Shadowed experts trained on several devices need a gradient sync.
  if (!shadow.shadowed.empty()) {
    const std::uint64_t bytes =
        shadow_bytes_per_destination(M, H, 1) / 2;  // gradients
    std::vector<int> deps = c_ops;
    for (int j : shadow.shadowed) {
      g.add(tag("ARshadow", j), OpCategory::kAllReduce, StreamKind::kComm,
            world_.devices(),
            cost.allreduce_seconds(bytes, world_.devices()), deps, nullptr);
    }
  }

  // Gating backward + gradient sync.
  std::vector<int> gb(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    std::vector<int> deps = arrivals[static_cast<std::size_t>(d)];
    deps.push_back(bs[static_cast<std::size_t>(d)]);
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      auto* gates = &gates_;
      fn = [c, gates, d] {
        auto& st = c->dev[static_cast<std::size_t>(d)];
        Tensor dxg = (*gates)[static_cast<std::size_t>(d)].backward(
            st.x, st.gating, st.dgate);
        add_(st.dx, dxg);
      };
    }
    const int id =
        g.add(tag("Gb", d), OpCategory::kGemm, StreamKind::kCompute, {d},
              cost.gemm_seconds(2 * gemm_flops(B, E, M),
                                std::max<std::int64_t>(B, 1)) /
                  cs,
              std::move(deps), std::move(fn),
              cost.gemm_efficiency(std::max<std::int64_t>(B, 1)));
    if (ctx.functional()) {
      auto& st = ctx.dev[static_cast<std::size_t>(d)];
      auto& gate = gates_[static_cast<std::size_t>(d)];
      sim::Op& op = g.op(id);
      op.reads.push_back(sim::access_whole(st.x));
      op.reads.push_back(sim::access_whole(st.gating.probs));
      op.reads.push_back(sim::access_whole(gate.weight()));
      op.reads.push_back(sim::access_floats(
          st.dgate.data(), 0, static_cast<std::int64_t>(st.dgate.size())));
      op.reads.push_back(sim::access_whole(st.dx));
      op.writes.push_back(sim::access_whole(st.dx));
      op.reads.push_back(sim::access_whole(gate.weight_grad()));
      op.writes.push_back(sim::access_whole(gate.weight_grad()));
    }
    gb[static_cast<std::size_t>(d)] = id;
  }
  const std::uint64_t gate_bytes =
      static_cast<std::uint64_t>(M) * E * sizeof(float);
  if (ctx.functional()) {
    std::vector<Tensor*> grads;
    for (int d = 0; d < P; ++d) {
      grads.push_back(&gates_[static_cast<std::size_t>(d)].weight_grad());
    }
    comm::allreduce_sum(g, world_, std::move(grads), "ARg", gb);
  } else {
    g.add("ARg", OpCategory::kAllReduce, StreamKind::kComm,
          world_.devices(),
          cost.allreduce_seconds(gate_bytes, world_.devices()), gb, nullptr);
  }
  return g;
}

std::vector<Tensor> FasterMoELayer::forward(
    const std::vector<Tensor>& inputs) {
  MPIPE_EXPECTS(options_.mode == core::ExecutionMode::kFull,
                "forward() requires full execution mode");
  MPIPE_EXPECTS(static_cast<int>(inputs.size()) == num_devices(),
                "need one input batch per device");
  for (auto& a : allocators_) a.tracker().reset_peaks();

  ctx_.emplace();
  ctx_->mode = core::ExecutionMode::kFull;
  ctx_->strategy = core::ReuseStrategy::kNone;
  ctx_->d_model = options_.d_model;
  ctx_->d_hidden = options_.d_hidden;
  ctx_->dev.resize(static_cast<std::size_t>(num_devices()));

  std::vector<std::vector<std::int64_t>> expert_of;
  for (int d = 0; d < num_devices(); ++d) {
    auto& st = ctx_->dev[static_cast<std::size_t>(d)];
    st.x = inputs[static_cast<std::size_t>(d)];
    st.gating = gates_[static_cast<std::size_t>(d)].forward(st.x);
    expert_of.push_back(st.gating.expert_of);
  }
  ctx_->plan = moe::Dispatcher::build(expert_of, num_devices(),
                                      experts_per_device(), 1);
  setup_forward_buffers(*ctx_);

  // Functional steps validate the P2P pipeline without shadowing.
  ShadowingDecision no_shadow;
  sim::OpGraph graph = build_forward(*ctx_, no_shadow);
  report_ = core::StepReport{};
  report_.n_partitions = num_devices();
  report_.forward_timing = cluster_->run(
      graph, options_.parallel_execution ? sim::ExecutionPolicy::kParallel
                                         : sim::ExecutionPolicy::kSerial);
  report_.forward_seconds = report_.forward_timing.makespan;

  std::vector<Tensor> outputs;
  for (int d = 0; d < num_devices(); ++d) {
    outputs.push_back(ctx_->dev[static_cast<std::size_t>(d)].out);
  }
  return outputs;
}

std::vector<Tensor> FasterMoELayer::backward(
    const std::vector<Tensor>& grad_outputs) {
  MPIPE_EXPECTS(ctx_.has_value(), "backward() without a prior forward()");
  for (int d = 0; d < num_devices(); ++d) {
    ctx_->dev[static_cast<std::size_t>(d)].dy =
        grad_outputs[static_cast<std::size_t>(d)];
  }
  setup_backward_buffers(*ctx_);
  ShadowingDecision no_shadow;
  sim::OpGraph graph = build_backward(*ctx_, no_shadow);
  report_.backward_timing = cluster_->run(
      graph, options_.parallel_execution ? sim::ExecutionPolicy::kParallel
                                         : sim::ExecutionPolicy::kSerial);
  report_.backward_seconds = report_.backward_timing.makespan;
  report_.mean_gpu_utilization = core::combined_utilization(
      report_.forward_timing, report_.backward_timing);

  std::vector<core::MemorySnapshot> snaps;
  for (const auto& a : allocators_) snaps.push_back(core::snapshot_peaks(a));
  report_.memory = core::max_over_devices(snaps);

  std::vector<Tensor> grads;
  for (int d = 0; d < num_devices(); ++d) {
    grads.push_back(ctx_->dev[static_cast<std::size_t>(d)].dx);
  }
  ctx_.reset();
  return grads;
}

core::StepReport FasterMoELayer::step_timing(std::int64_t tokens_per_device,
                                             double skew) {
  MPIPE_EXPECTS(tokens_per_device > 0, "empty batch");
  for (auto& a : allocators_) a.tracker().reset_peaks();

  core::MoeStepContext ctx;
  ctx.mode = core::ExecutionMode::kTimingOnly;
  ctx.strategy = core::ReuseStrategy::kNone;
  ctx.d_model = options_.d_model;
  ctx.d_hidden = options_.d_hidden;
  ctx.plan = moe::Dispatcher::synthetic(tokens_per_device, num_devices(),
                                        experts_per_device(), 1, skew);
  ctx.dev.resize(static_cast<std::size_t>(num_devices()));
  setup_forward_buffers(ctx);

  const ShadowingDecision shadow =
      select_shadowed(ctx.plan.part(0).recv_rows, options_.shadowing);
  // Shadowed parameters are replicated on every device for the step.
  shadow_allocs_.clear();
  if (!shadow.shadowed.empty()) {
    const std::uint64_t bytes =
        shadow_bytes_per_destination(options_.d_model, options_.d_hidden,
                                     1) *
        shadow.shadowed.size();
    for (auto& a : allocators_) {
      shadow_allocs_.push_back(
          a.allocate(mem::Category::kModelState, bytes));
    }
  }

  core::StepReport report;
  report.n_partitions = num_devices();
  sim::OpGraph fwd = build_forward(ctx, shadow);
  report.forward_timing = cluster_->time_only(fwd);
  report.forward_seconds = report.forward_timing.makespan;

  setup_backward_buffers(ctx);
  sim::OpGraph bwd = build_backward(ctx, shadow);
  report.backward_timing = cluster_->time_only(bwd);
  report.backward_seconds = report.backward_timing.makespan;
  report.mean_gpu_utilization = core::combined_utilization(
      report.forward_timing, report.backward_timing);

  std::vector<core::MemorySnapshot> snaps;
  for (const auto& a : allocators_) snaps.push_back(core::snapshot_peaks(a));
  report.memory = core::max_over_devices(snaps);
  shadow_allocs_.clear();
  report_ = report;
  return report;
}

}  // namespace mpipe::baselines
