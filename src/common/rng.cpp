#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace mpipe {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  MPIPE_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MPIPE_EXPECTS(n > 0);
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  MPIPE_EXPECTS(stddev >= 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  MPIPE_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MPIPE_EXPECTS(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MPIPE_EXPECTS(total > 0.0, "categorical weights must not all be zero");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  MPIPE_EXPECTS(n > 0);
  MPIPE_EXPECTS(s >= 0.0);
  if (s == 0.0) return static_cast<std::size_t>(uniform_index(n));
  // Inverse-CDF over the finite harmonic weights. n is the expert count
  // (tens), so the linear scan is cheap and exact.
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(double(k), s);
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (r < acc) return k - 1;
  }
  return n - 1;
}

Rng Rng::fork() {
  // splitmix-style mixing keeps children decorrelated from the parent.
  std::uint64_t z = engine_();
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return Rng(z ^ (z >> 31));
}

}  // namespace mpipe
