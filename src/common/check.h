#pragma once
/// \file check.h
/// Precondition / postcondition / invariant checking in the spirit of the
/// C++ Core Guidelines Expects()/Ensures(). Violations throw, so tests can
/// assert on them; they are never compiled out (this library favours
/// "catch run-time errors early" over the last few percent of speed on the
/// control path — the hot loops in tensor/ never call these per element).

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpipe {

/// Error thrown by all MPIPE_CHECK-family macros. A CheckError is *fatal*:
/// it reports a violated precondition, postcondition, or invariant — a
/// programming error — and must never be retried or swallowed by recovery
/// machinery.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// A *recoverable* failure of an operation whose retry is safe and
/// meaningful: a dropped comm transfer, a transient transport hiccup, an
/// injected fault. Deliberately NOT derived from CheckError so that
/// `catch (TransientError&)` in retry loops can never mask an invariant
/// violation — the two hierarchies are disjoint by construction. Today the
/// only producers are the fault injector (common/fault_injection.h) and,
/// later, real transports; every throw site in comm/ and mem/ that guards
/// a precondition or hazard stays on the fatal CheckError/OutOfMemoryError
/// side.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mpipe

/// General invariant check. Usage: MPIPE_CHECK(n > 0, "need positive n");
#define MPIPE_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mpipe::detail::check_failed("check", #cond, __FILE__, __LINE__,    \
                                    ::std::string{__VA_ARGS__});           \
    }                                                                      \
  } while (false)

/// Precondition on public API entry (Expects).
#define MPIPE_EXPECTS(cond, ...)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mpipe::detail::check_failed("precondition", #cond, __FILE__,       \
                                    __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                                      \
  } while (false)

/// Postcondition on exit (Ensures).
#define MPIPE_ENSURES(cond, ...)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mpipe::detail::check_failed("postcondition", #cond, __FILE__,      \
                                    __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                                      \
  } while (false)

/// Marks unreachable control flow.
#define MPIPE_UNREACHABLE(msg)                                             \
  ::mpipe::detail::check_failed("unreachable", "false", __FILE__, __LINE__, msg)

/// No-alias qualifier for kernel pointers (GCC/Clang/MSVC all accept a
/// spelling; fall back to nothing elsewhere).
#if defined(__GNUC__) || defined(__clang__)
#define MPIPE_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define MPIPE_RESTRICT __restrict
#else
#define MPIPE_RESTRICT
#endif
