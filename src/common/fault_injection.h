#pragma once
/// \file fault_injection.h
/// Deterministic, seed-driven fault injection for the training runtime.
///
/// Every injection decision is a pure function of (seed, site, key,
/// attempt): a splitmix64-style hash mapped to [0, 1) and compared against
/// the site's probability. Keys are assigned by a sequence counter at
/// *graph-build* time — single-threaded and deterministic — so the same
/// seed replays the same fault schedule no matter how the parallel
/// executor interleaves op execution. Budgets (`max_*`) cap how many
/// faults of a site may fire across the injector's lifetime; budget
/// claims use atomic CAS so the stats counters are exact.
///
/// Sites:
///  - comm failure: a guarded comm op throws TransientError *before*
///    copying any bytes (state stays consistent; retries are idempotent).
///  - straggler: a comm op sleeps a configured wall-clock delay before
///    running — visible to the PR-5 profiler, invisible to the math.
///  - alloc failure: DeviceAllocator::allocate throws OutOfMemoryError.
///  - payload corruption: after a segment copy, one destination float is
///    overwritten with NaN (the numerics guard's prey).
///
/// With no injector installed (the default), every hook is a single null
/// check — fault-free training stays bitwise identical and bench-neutral.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace mpipe {

/// Bounded retry with deterministic exponential backoff. Attempt k
/// (1-based) sleeps backoff_seconds * multiplier^(k-1) before re-running.
/// The delays are wall-clock only — they never enter the simulated
/// timeline or the math.
struct RetryPolicy {
  int max_attempts = 4;            ///< total tries, including the first
  double backoff_seconds = 20e-6;  ///< base backoff before attempt 2
  double backoff_multiplier = 2.0;

  /// Backoff before retry `attempt` (attempt >= 1 = first retry).
  double delay_seconds(int attempt) const;
};

/// All knobs default to "off" (probability 0); an all-default config makes
/// the injector a no-op. Budgets: < 0 means unlimited, 0 disables the
/// site, > 0 caps the number of fired faults.
struct FaultInjectionConfig {
  std::uint64_t seed = 1;

  double comm_failure_prob = 0.0;  ///< per (key, attempt) throw chance
  int max_comm_failures = -1;

  double straggler_prob = 0.0;  ///< per-key delay chance
  double straggler_delay_seconds = 2e-3;
  int max_stragglers = -1;

  double alloc_failure_prob = 0.0;  ///< per-allocation OOM chance
  int max_alloc_failures = -1;

  double corrupt_payload_prob = 0.0;  ///< per-key NaN-corruption chance
  int max_corruptions = -1;
  /// Only ops whose label starts with this prefix are corruption-eligible
  /// (empty = any guarded segment op). Corruption injected *below* a ReLU
  /// (a dispatch destination, "S") is flushed to zero by the max before it
  /// can reach the loss — invisible to the end-of-step numerics guard. The
  /// pre-activation scan below closes that hole; without it, deterministic
  /// recovery tests must aim the NaN at a combine destination ("R"), which
  /// feeds the loss directly.
  std::string corrupt_label_filter;

  /// When true, every guarded segment op scans its destination rows for
  /// non-finite floats *at the comm boundary* — i.e. before any activation
  /// (ReLU) can flush an injected NaN to zero — and raises TransientError
  /// on a hit, so the step-replay ladder recovers from corruption the
  /// end-of-step numerics guard can never see. Detections are counted in
  /// FaultStats::corruptions_detected. Off by default: the scan touches
  /// every payload byte a second time and is meant for the chaos tier, not
  /// the bench path.
  bool scan_payloads = false;

  RetryPolicy retry;
};

/// Snapshot of everything the injector has done so far.
struct FaultStats {
  std::uint64_t comm_failures = 0;  ///< TransientErrors thrown
  std::uint64_t comm_retries = 0;   ///< retry attempts consumed
  std::uint64_t comm_gave_up = 0;   ///< retry budgets exhausted
  std::uint64_t stragglers = 0;     ///< delays injected
  std::uint64_t alloc_failures = 0;
  std::uint64_t corruptions = 0;           ///< floats NaN-corrupted
  std::uint64_t corruptions_detected = 0;  ///< caught by the payload scan

  std::uint64_t total_faults() const {
    return comm_failures + stragglers + alloc_failures + corruptions;
  }
};

/// Thread-safe; decisions are replayable from (seed, key). Owned by the
/// Cluster (shared_ptr) so op closures built against one injector stay
/// valid even if the cluster later swaps configurations.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectionConfig config);

  const FaultInjectionConfig& config() const { return config_; }

  /// Build-time sequence counter: every guarded comm op reserves one key
  /// when its closure is built. Graph construction is single-threaded, so
  /// key assignment — and therefore the whole fault schedule — is
  /// deterministic even though execution is not.
  std::uint64_t reserve_key() const { return next_key_.fetch_add(1); }

  /// True when the comm op with `key` should throw on try `attempt`
  /// (0-based). Claims one unit of the comm-failure budget.
  bool should_fail_comm(std::uint64_t key, int attempt) const;

  /// Injected straggler delay for `key` in wall-clock seconds (0 = none).
  /// Claims one unit of the straggler budget when nonzero.
  double straggler_delay(std::uint64_t key) const;

  /// True when the allocation with sequence id `key` should fail.
  bool should_fail_alloc(std::uint64_t key) const;

  /// Element index (into a flat payload of `numel` floats) to overwrite
  /// with NaN, or -1 for no corruption. Claims one corruption-budget unit.
  /// `label` is the op's graph label, matched against
  /// config().corrupt_label_filter for eligibility.
  std::int64_t corrupt_index(std::uint64_t key, std::int64_t numel,
                             std::string_view label) const;

  void count_retry() const { stats_.comm_retries.fetch_add(1); }
  void count_gave_up() const { stats_.comm_gave_up.fetch_add(1); }
  /// A payload scan found a non-finite destination float (scan_payloads).
  void count_detection() const { stats_.corruptions_detected.fetch_add(1); }

  FaultStats stats() const;

 private:
  /// Uniform [0, 1) from the decision coordinates.
  double uniform(std::uint64_t site, std::uint64_t key,
                 std::uint64_t attempt) const;
  /// Decision + budget claim shared by all sites.
  bool fire(double prob, int budget, std::atomic<std::uint64_t>& fired,
            double u) const;

  struct AtomicStats {
    std::atomic<std::uint64_t> comm_failures{0};
    std::atomic<std::uint64_t> comm_retries{0};
    std::atomic<std::uint64_t> comm_gave_up{0};
    std::atomic<std::uint64_t> stragglers{0};
    std::atomic<std::uint64_t> alloc_failures{0};
    std::atomic<std::uint64_t> corruptions{0};
    std::atomic<std::uint64_t> corruptions_detected{0};
  };

  FaultInjectionConfig config_;
  mutable std::atomic<std::uint64_t> next_key_{0};
  mutable AtomicStats stats_;
};

/// Runs `body` under the injector's comm fault schedule: optional
/// straggler delay, then up to retry.max_attempts tries where each try may
/// be failed by the injector *before* `body` runs. Retries sleep the
/// deterministic backoff. `injector` may be null — then `body` runs once,
/// unguarded. Throws TransientError when the retry budget is exhausted;
/// anything `body` itself throws (CheckError, OutOfMemoryError, ...)
/// propagates immediately and is never retried.
void run_comm_guarded(const FaultInjector* injector, std::uint64_t key,
                      const std::function<void()>& body);

}  // namespace mpipe
