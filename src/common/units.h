#pragma once
/// \file units.h
/// Size and time unit helpers used across the simulator and benches.

#include <cstdint>

namespace mpipe {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// Simulated time is kept in double seconds; helpers for readability.
inline constexpr double microseconds(double us) { return us * 1e-6; }
inline constexpr double milliseconds(double ms) { return ms * 1e-3; }

inline constexpr double to_ms(double seconds) { return seconds * 1e3; }
inline constexpr double to_us(double seconds) { return seconds * 1e6; }

/// Bandwidths are bytes/second.
inline constexpr double gib_per_s(double g) {
  return g * static_cast<double>(GiB);
}

/// Compute rates are FLOP/second.
inline constexpr double tflops(double t) { return t * 1e12; }

inline constexpr double mib(double bytes) {
  return bytes / static_cast<double>(MiB);
}

}  // namespace mpipe
