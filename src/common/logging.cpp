#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mpipe {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("MPIPE_LOG_LEVEL")) {
    level_ = parse_log_level(env);
  }
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[mpipe %s] %s\n", level_name(level), message.c_str());
}

}  // namespace mpipe
