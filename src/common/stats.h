#pragma once
/// \file stats.h
/// Small numeric summaries used by benches and the adaptive search
/// (trial timing uses trimmed means to reject warm-up noise).

#include <cstddef>
#include <vector>

namespace mpipe {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

/// Mean after dropping `trim` smallest and `trim` largest samples.
double trimmed_mean(std::vector<double> values, std::size_t trim);

/// Geometric mean (values must be positive).
double geomean(const std::vector<double>& values);

}  // namespace mpipe
