#pragma once
/// \file table_printer.h
/// Aligned console tables — benches print the paper's figure data as rows.

#include <string>
#include <vector>

namespace mpipe {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment to stdout.
  void print() const;

  /// Renders to a string (for tests).
  std::string to_string() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpipe
