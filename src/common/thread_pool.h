#pragma once
/// \file thread_pool.h
/// Fixed-size worker pool with a parallel_for primitive, used by the tensor
/// library for GEMM and large elementwise kernels. Follows CP.4 ("think in
/// terms of tasks"): callers submit range tasks, never touch threads.
///
/// parallel_for is lock-light: one shared atomic chunk counter hands out
/// work, one completion latch collects it, and the calling thread drains
/// chunks alongside the workers. Calls made from inside a worker thread run
/// inline, so nested parallelism (pipeline executor -> GEMM) cannot
/// deadlock the pool.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpipe {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Fire-and-forget submit: no packaged_task/future overhead. The caller
  /// owns completion tracking (the graph executor and parallel_for both
  /// count finished work themselves).
  void post(std::function<void()> task);

  /// Number of tasks ever handed to the worker queue (submit, post and
  /// parallel_for helper entries). Monotone; used by tests asserting a
  /// code path stayed thread-quiet (e.g. the granularity-search probes).
  std::uint64_t tasks_enqueued() const {
    return tasks_enqueued_.load(std::memory_order_relaxed);
  }

  /// Runs fn(begin, end) over [0, n) split into chunks across the pool,
  /// blocking until all chunks complete. Chunk boundaries are multiples of
  /// `grain` (the final chunk may be ragged); small n runs inline, as does
  /// any call issued from a pool worker (nested parallelism stays serial
  /// instead of deadlocking). The caller participates in draining chunks,
  /// so forward progress never depends on a free worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

  /// True when the current thread is one of this pool's workers.
  bool in_worker() const;

  /// Process-wide shared pool (sized to the machine).
  static ThreadPool& shared();

  /// Replaces the shared pool with a fresh one of `threads` workers
  /// (0 = machine size). Test hook for exercising kernels under specific
  /// pool sizes (e.g. the bitwise-determinism sweep in test_runtime);
  /// callers must ensure no parallel_for is in flight.
  static void reset_shared(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_enqueued_{0};
};

}  // namespace mpipe
