#pragma once
/// \file thread_pool.h
/// Fixed-size worker pool with a parallel_for primitive, used by the tensor
/// library for GEMM and large elementwise kernels. Follows CP.4 ("think in
/// terms of tasks"): callers submit range tasks, never touch threads.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpipe {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(begin, end) over [0, n) split into roughly equal chunks across
  /// the pool, blocking until all chunks complete. Grain controls the
  /// minimum chunk size (small n runs inline).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

  /// Process-wide shared pool (sized to the machine).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mpipe
