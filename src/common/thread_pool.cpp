#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"

namespace mpipe {

namespace {

// Which pool (if any) owns the current thread. Used to run nested
// parallel_for calls inline instead of enqueueing work the blocked parent
// would wait on forever.
thread_local const ThreadPool* tls_owner_pool = nullptr;

/// Shared state of one parallel_for call. Work is handed out by a single
/// fetch_add on `next`; completion is a count of finished chunks plus one
/// condition variable the caller sleeps on only if it runs out of chunks
/// before the helpers do.
struct ParallelForState {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::once_flag error_once;
  std::exception_ptr error;

  /// Drains chunks until the counter runs dry. Safe to call from any
  /// thread; the loop body only dereferences `fn` while the owning
  /// parallel_for is still blocked waiting for `done`.
  void drain() {
    std::size_t c;
    while ((c = next.fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::call_once(error_once,
                       [this] { error = std::current_exception(); });
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker() const { return tls_owner_pool == this; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPIPE_CHECK(!stopping_, "submit on stopped pool");
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return result;
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPIPE_CHECK(!stopping_, "post on stopped pool");
    tasks_.emplace(std::move(task));
  }
  tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t workers = size();
  if (n <= grain || workers <= 1 || in_worker()) {
    fn(0, n);
    return;
  }

  // Split into chunks whose boundaries are multiples of `grain`, with a few
  // chunks per worker so skewed bodies (ragged expert batches) rebalance
  // through the shared counter instead of serializing on the slowest chunk.
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t target = std::min(max_chunks, workers * 4);
  std::size_t chunk = (n + target - 1) / target;
  chunk = (chunk + grain - 1) / grain * grain;

  auto state = std::make_shared<ParallelForState>();
  state->fn = &fn;
  state->n = n;
  state->chunk = chunk;
  state->num_chunks = (n + chunk - 1) / chunk;

  // One queue entry per helper, not per chunk: helpers pull chunks off the
  // atomic counter themselves, so the mutex is touched once per call.
  const std::size_t helpers = std::min(workers, state->num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPIPE_CHECK(!stopping_, "parallel_for on stopped pool");
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace([state] { state->drain(); });
    }
  }
  tasks_enqueued_.fetch_add(helpers, std::memory_order_relaxed);
  cv_.notify_all();

  state->drain();
  if (state->done.load(std::memory_order_acquire) < state->num_chunks) {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) >=
             state->num_chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

// Construction happens in the magic static's thread-safe initializer, so
// concurrent first calls to shared() cannot double-construct; only
// reset_shared() mutates the slot afterwards (test hook, callers ensure
// quiescence).
std::unique_ptr<ThreadPool>& shared_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::shared() { return *shared_slot(); }

void ThreadPool::reset_shared(std::size_t threads) {
  shared_slot() = std::make_unique<ThreadPool>(threads);
}

void ThreadPool::worker_loop() {
  tls_owner_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace mpipe
