#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPIPE_CHECK(!stopping_, "submit on stopped pool");
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t workers = size();
  if (n <= grain || workers <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, (n + grain - 1) / grain);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace mpipe
