#pragma once
/// \file logging.h
/// Minimal leveled logger. Thread safe; level settable via code or the
/// MPIPE_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).

#include <mutex>
#include <sstream>
#include <string>

namespace mpipe {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  /// Process-wide singleton.
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Writes one formatted line; no-op when below the current level.
  void write(LogLevel level, const std::string& message);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger();

  mutable std::mutex mu_;
  LogLevel level_;
};

/// Parses a level name; defaults to kInfo for unknown names.
LogLevel parse_log_level(const std::string& name);

namespace detail {
/// Stream-style one-shot log line builder.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mpipe

#define MPIPE_LOG(level) ::mpipe::detail::LogLine(level)
#define MPIPE_LOG_TRACE MPIPE_LOG(::mpipe::LogLevel::kTrace)
#define MPIPE_LOG_DEBUG MPIPE_LOG(::mpipe::LogLevel::kDebug)
#define MPIPE_LOG_INFO MPIPE_LOG(::mpipe::LogLevel::kInfo)
#define MPIPE_LOG_WARN MPIPE_LOG(::mpipe::LogLevel::kWarn)
#define MPIPE_LOG_ERROR MPIPE_LOG(::mpipe::LogLevel::kError)
