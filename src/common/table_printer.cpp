#include "common/table_printer.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace mpipe {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MPIPE_EXPECTS(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  MPIPE_EXPECTS(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace mpipe
