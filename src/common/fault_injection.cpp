#include "common/fault_injection.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/check.h"

namespace mpipe {

namespace {

// Site tags keep the decision streams of different fault kinds
// independent even when they share a key.
constexpr std::uint64_t kSiteComm = 0x636f6d6d00000001ull;
constexpr std::uint64_t kSiteStraggler = 0x736c6f7700000002ull;
constexpr std::uint64_t kSiteAlloc = 0x616c6c6f00000003ull;
constexpr std::uint64_t kSiteCorrupt = 0x6e616e6300000004ull;
constexpr std::uint64_t kSiteCorruptIdx = 0x6e616e6900000005ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t site, std::uint64_t key,
                  std::uint64_t attempt) {
  std::uint64_t h = splitmix64(seed ^ site);
  h = splitmix64(h ^ key);
  h = splitmix64(h ^ attempt);
  return h;
}

double to_unit(std::uint64_t h) {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

}  // namespace

double RetryPolicy::delay_seconds(int attempt) const {
  double d = backoff_seconds;
  for (int i = 1; i < attempt; ++i) d *= backoff_multiplier;
  return d;
}

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(config) {
  MPIPE_EXPECTS(config.retry.max_attempts >= 1,
                "retry policy needs at least one attempt");
}

double FaultInjector::uniform(std::uint64_t site, std::uint64_t key,
                              std::uint64_t attempt) const {
  return to_unit(mix(config_.seed, site, key, attempt));
}

bool FaultInjector::fire(double prob, int budget,
                         std::atomic<std::uint64_t>& fired, double u) const {
  if (prob <= 0.0 || u >= prob || budget == 0) return false;
  // CAS loop so `fired` counts exactly the faults that actually fired,
  // even when several ops race on the last budget unit.
  std::uint64_t n = fired.load();
  for (;;) {
    if (budget > 0 && n >= static_cast<std::uint64_t>(budget)) return false;
    if (fired.compare_exchange_weak(n, n + 1)) return true;
  }
}

bool FaultInjector::should_fail_comm(std::uint64_t key, int attempt) const {
  return fire(config_.comm_failure_prob, config_.max_comm_failures,
              stats_.comm_failures,
              uniform(kSiteComm, key, static_cast<std::uint64_t>(attempt)));
}

double FaultInjector::straggler_delay(std::uint64_t key) const {
  if (!fire(config_.straggler_prob, config_.max_stragglers,
            stats_.stragglers, uniform(kSiteStraggler, key, 0))) {
    return 0.0;
  }
  return config_.straggler_delay_seconds;
}

bool FaultInjector::should_fail_alloc(std::uint64_t key) const {
  return fire(config_.alloc_failure_prob, config_.max_alloc_failures,
              stats_.alloc_failures, uniform(kSiteAlloc, key, 0));
}

std::int64_t FaultInjector::corrupt_index(std::uint64_t key,
                                          std::int64_t numel,
                                          std::string_view label) const {
  if (numel <= 0) return -1;
  const std::string& filter = config_.corrupt_label_filter;
  if (!filter.empty() && label.substr(0, filter.size()) != filter) return -1;
  if (!fire(config_.corrupt_payload_prob, config_.max_corruptions,
            stats_.corruptions, uniform(kSiteCorrupt, key, 0))) {
    return -1;
  }
  return static_cast<std::int64_t>(mix(config_.seed, kSiteCorruptIdx, key, 0) %
                                   static_cast<std::uint64_t>(numel));
}

FaultStats FaultInjector::stats() const {
  FaultStats out;
  out.comm_failures = stats_.comm_failures.load();
  out.comm_retries = stats_.comm_retries.load();
  out.comm_gave_up = stats_.comm_gave_up.load();
  out.stragglers = stats_.stragglers.load();
  out.alloc_failures = stats_.alloc_failures.load();
  out.corruptions = stats_.corruptions.load();
  out.corruptions_detected = stats_.corruptions_detected.load();
  return out;
}

void run_comm_guarded(const FaultInjector* injector, std::uint64_t key,
                      const std::function<void()>& body) {
  if (injector == nullptr) {
    body();
    return;
  }
  sleep_seconds(injector->straggler_delay(key));
  const RetryPolicy& retry = injector->config().retry;
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      injector->count_retry();
      sleep_seconds(retry.delay_seconds(attempt));
    }
    try {
      if (injector->should_fail_comm(key, attempt)) {
        std::ostringstream os;
        os << "injected transient comm fault (key " << key << ", attempt "
           << attempt << ")";
        throw TransientError(os.str());
      }
      body();
      return;
    } catch (const TransientError&) {
      // Recoverable by definition — retry unless the budget is spent.
      // CheckError / OutOfMemoryError are NOT caught here: invariant
      // violations and real resource exhaustion propagate immediately.
      if (attempt + 1 >= retry.max_attempts) {
        injector->count_gave_up();
        throw;
      }
    }
  }
}

}  // namespace mpipe
