#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mpipe {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MPIPE_EXPECTS(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  MPIPE_EXPECTS(count_ > 0);
  if (count_ == 1) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MPIPE_EXPECTS(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  MPIPE_EXPECTS(count_ > 0);
  return max_;
}

double percentile(std::vector<double> values, double p) {
  MPIPE_EXPECTS(!values.empty());
  MPIPE_EXPECTS(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double trimmed_mean(std::vector<double> values, std::size_t trim) {
  MPIPE_EXPECTS(values.size() > 2 * trim);
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t i = trim; i < values.size() - trim; ++i) sum += values[i];
  return sum / static_cast<double>(values.size() - 2 * trim);
}

double geomean(const std::vector<double>& values) {
  MPIPE_EXPECTS(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    MPIPE_EXPECTS(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mpipe
