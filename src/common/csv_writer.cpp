#include "common/csv_writer.h"

#include <sstream>

#include "common/check.h"

namespace mpipe {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  MPIPE_EXPECTS(!header.empty());
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  MPIPE_EXPECTS(cells.size() == width_, "csv row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace mpipe
