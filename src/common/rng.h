#pragma once
/// \file rng.h
/// Deterministic random number generation. Every stochastic component owns
/// its own Rng seeded explicitly, so whole-cluster runs replay bit-exactly.

#include <cstdint>
#include <random>
#include <vector>

namespace mpipe {

/// Thin wrapper over a 64-bit Mersenne twister with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal.
  double normal();
  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Samples an index from an (unnormalized) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Zipf-distributed index in [0, n) with skew parameter s >= 0
  /// (s == 0 degenerates to uniform). Used for skewed expert routing.
  std::size_t zipf(std::size_t n, double s);

  /// Derives an independent child generator (seed mixing), for spawning
  /// per-device or per-layer streams from one master seed.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }
  /// Const access for state serialization (operator<< on the engine).
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mpipe
