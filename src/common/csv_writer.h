#pragma once
/// \file csv_writer.h
/// Tiny CSV emitter used by benches so figure data can be re-plotted.

#include <fstream>
#include <string>
#include <vector>

namespace mpipe {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; width must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace mpipe
