#pragma once
/// \file host_staging.h
/// CPU-side store for offloaded activations (strategies S1–S3). The paper
/// swaps partitions of T_DI / T_M to host RAM over PCIe during the forward
/// pass and prefetches them back in backward. Here the "device" tensors are
/// also host memory, so staging is a real deep copy plus byte accounting —
/// the restore paths are still byte-exact round trips.

#include <cstdint>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace mpipe::mem {

class HostStaging {
 public:
  /// Stores a copy of `t` under (device, key). Overwrites silently (a
  /// re-offload of the same partition in a later step is normal).
  void store(int device, const std::string& key, const Tensor& t);

  /// Retrieves a copy; throws if absent.
  Tensor load(int device, const std::string& key) const;

  bool contains(int device, const std::string& key) const;

  /// Drops one entry (after its backward consumer ran).
  void drop(int device, const std::string& key);

  /// Drops everything staged for a device.
  void clear_device(int device);
  void clear();

  std::uint64_t bytes_stored() const { return bytes_; }
  std::size_t entries() const { return store_.size(); }

 private:
  std::map<std::pair<int, std::string>, Tensor> store_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mpipe::mem
