#pragma once
/// \file host_staging.h
/// CPU-side store for offloaded activations (strategies S1–S3). The paper
/// swaps partitions of T_DI / T_M to host RAM over PCIe during the forward
/// pass and prefetches them back in backward. Here the "device" tensors are
/// also host memory, so staging is a real deep copy plus byte accounting —
/// the restore paths are still byte-exact round trips.
///
/// Thread safety: the store is shared by every device's mem-stream ops, and
/// under the parallel graph executor offloads/prefetches for *different*
/// devices run concurrently. All map mutations are mutex-guarded; the
/// hazard validator additionally proves that no two concurrent ops touch
/// the same logical slot (see slot_token).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mpipe::mem {

class HostStaging {
 public:
  /// Stores a copy of `t` under (device, key). A collision with a live
  /// entry is a CheckError by default: every offload key is supposed to be
  /// consumed (load + drop) or cleared before the slot is written again, so
  /// a double-store means two ring slots resolved to the same key — exactly
  /// the masked double-stash bug a silent overwrite would hide. Callers
  /// that *intend* replacement (e.g. re-staging a partition after a step
  /// replay) must say so with `allow_overwrite`.
  ///
  /// A reduced `dtype` models offloading in the wire format: the staged
  /// copy's values are rounded through bf16 / int8-per-row before storage
  /// and the entry is accounted at the quantized byte size (elements +
  /// int8 row scales), so bytes_stored() reports what host RAM would
  /// actually hold. The restored tensor is the rounded fp32 expansion.
  void store(int device, const std::string& key, const Tensor& t,
             bool allow_overwrite = false, DType dtype = DType::kF32);

  /// Retrieves a copy; throws if absent.
  Tensor load(int device, const std::string& key) const;

  bool contains(int device, const std::string& key) const;

  /// Drops one entry (after its backward consumer ran).
  void drop(int device, const std::string& key);

  /// Drops everything staged for a device.
  void clear_device(int device);
  void clear();

  std::uint64_t bytes_stored() const;
  std::size_t entries() const;

  /// Stable identity for the logical slot (device, key), for hazard
  /// declarations (sim::BufferAccess::id): an offload op *writes* the
  /// token, the matching prefetch *reads* it. Created on first use at
  /// graph-build time (single-threaded); the address stays valid for the
  /// staging object's lifetime (map nodes do not move).
  const void* slot_token(int device, const std::string& key);

 private:
  struct Entry {
    Tensor t;
    std::uint64_t bytes = 0;  ///< accounted (possibly quantized) bytes
  };

  mutable std::mutex mu_;
  std::map<std::pair<int, std::string>, Entry> store_;
  std::map<std::pair<int, std::string>, char> tokens_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mpipe::mem
