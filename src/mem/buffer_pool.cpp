#include "mem/buffer_pool.h"

#include "common/check.h"

namespace mpipe::mem {

BufferPool::BufferPool(DeviceAllocator& allocator, std::string name,
                       Shape slot_shape, int depth, Category category,
                       bool materialize, DType account_dtype)
    : name_(std::move(name)), slot_shape_(slot_shape), depth_(depth) {
  MPIPE_EXPECTS(depth >= 1, "pool depth must be >= 1");
  slots_.reserve(static_cast<std::size_t>(depth));
  try {
    for (int i = 0; i < depth; ++i) {
      slots_.push_back(allocator.alloc_tensor(slot_shape, category,
                                              materialize, account_dtype));
    }
  } catch (...) {
    // Mid-acquisition failure (real or injected OOM): release the
    // partially-acquired slots before the error escapes, so the tracker
    // balance returns to its pre-construction value. The slot vector's
    // Allocation handles would unwind anyway; clearing here makes the
    // guarantee explicit and independent of member-destruction order.
    slots_.clear();
    throw;
  }
}

Tensor& BufferPool::slot(int index) {
  MPIPE_EXPECTS(index >= 0, "negative partition index");
  Tensor& t = slots_[static_cast<std::size_t>(slot_id(index))].tensor;
  MPIPE_EXPECTS(t.defined(), "slot access on accounting-only pool");
  return t;
}

const Tensor& BufferPool::slot(int index) const {
  MPIPE_EXPECTS(index >= 0, "negative partition index");
  const Tensor& t = slots_[static_cast<std::size_t>(slot_id(index))].tensor;
  MPIPE_EXPECTS(t.defined(), "slot access on accounting-only pool");
  return t;
}

int BufferPool::slot_id(int index) const { return index % depth_; }

bool BufferPool::aliases(int a, int b) const {
  return slot_id(a) == slot_id(b);
}

std::uint64_t BufferPool::bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : slots_) total += s.allocation.bytes();
  return total;
}

}  // namespace mpipe::mem
