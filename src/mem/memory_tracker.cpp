#include "mem/memory_tracker.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace mpipe::mem {

std::string to_string(Category c) {
  switch (c) {
    case Category::kModelState: return "model_states";
    case Category::kActivation: return "activations";
    case Category::kTempBuffer: return "temp_buffers";
    case Category::kComm: return "comm";
  }
  return "?";
}

void MemoryTracker::allocate(Category category, std::uint64_t bytes) {
  auto& cur = current_[static_cast<int>(category)];
  cur += bytes;
  peak_[static_cast<int>(category)] =
      std::max(peak_[static_cast<int>(category)], cur);
  current_total_ += bytes;
  peak_total_ = std::max(peak_total_, current_total_);
}

void MemoryTracker::release(Category category, std::uint64_t bytes) {
  auto& cur = current_[static_cast<int>(category)];
  MPIPE_EXPECTS(cur >= bytes, "releasing more than allocated in " +
                                  to_string(category));
  cur -= bytes;
  MPIPE_EXPECTS(current_total_ >= bytes, "total accounting underflow");
  current_total_ -= bytes;
}

std::uint64_t MemoryTracker::current(Category category) const {
  return current_[static_cast<int>(category)];
}

std::uint64_t MemoryTracker::peak(Category category) const {
  return peak_[static_cast<int>(category)];
}

void MemoryTracker::reset_peaks() {
  for (int i = 0; i < kNumCategories; ++i) {
    peak_[i] = current_[i];
  }
  peak_total_ = current_total_;
}

void MemoryTracker::reset() {
  current_.fill(0);
  peak_.fill(0);
  current_total_ = 0;
  peak_total_ = 0;
}

std::string MemoryTracker::summary() const {
  std::ostringstream os;
  for (int i = 0; i < kNumCategories; ++i) {
    os << to_string(static_cast<Category>(i)) << ": cur "
       << mpipe::mib(static_cast<double>(current_[i])) << " MiB, peak "
       << mpipe::mib(static_cast<double>(peak_[i])) << " MiB\n";
  }
  os << "total: cur " << mpipe::mib(static_cast<double>(current_total_))
     << " MiB, peak " << mpipe::mib(static_cast<double>(peak_total_))
     << " MiB\n";
  return os.str();
}

}  // namespace mpipe::mem
