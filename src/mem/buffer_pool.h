#pragma once
/// \file buffer_pool.h
/// Ring buffer pool implementing the paper's memory-reusing scheme (§III-D,
/// Fig 6): with n pipeline partitions, the partitions of T_DI / T_M / T_DO
/// share `depth` physical slots instead of n — reducing the footprint from
/// m to depth·(m/n). Slot reuse introduces WAR hazards between partitions;
/// the pipeline scheduler turns prior readers into dependencies of the next
/// writer (tests/test_pipeline_schedule.cpp asserts this).

#include <cstdint>
#include <string>
#include <vector>

#include "mem/device_allocator.h"
#include "tensor/tensor.h"

namespace mpipe::mem {

class BufferPool {
 public:
  /// Allocates `depth` slots of `slot_shape` on `allocator` under
  /// `category`. `name` labels ops that touch the pool. With
  /// materialize = false the slots are accounting-only (timing-only mode).
  /// `account_dtype` accounts each slot at its wire-format size
  /// (DeviceAllocator::alloc_tensor) — used for the dispatch/combine
  /// payload rings, whose rows a real device stores in the reduced dtype.
  BufferPool(DeviceAllocator& allocator, std::string name, Shape slot_shape,
             int depth, Category category, bool materialize = true,
             DType account_dtype = DType::kF32);

  /// Slot backing partition `index` (index % depth).
  Tensor& slot(int index);
  const Tensor& slot(int index) const;

  /// Physical slot id for a partition index.
  int slot_id(int index) const;

  /// True when partitions a and b share the same physical slot.
  bool aliases(int a, int b) const;

  int depth() const { return depth_; }
  const Shape& slot_shape() const { return slot_shape_; }
  const std::string& name() const { return name_; }
  std::uint64_t bytes() const;

 private:
  std::string name_;
  Shape slot_shape_;
  int depth_;
  std::vector<TrackedTensor> slots_;
};

}  // namespace mpipe::mem
