#include "mem/device_allocator.h"

#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace mpipe::mem {

namespace {
std::string oom_message(int device, std::uint64_t requested,
                        std::uint64_t in_use, std::uint64_t capacity) {
  std::ostringstream os;
  os << "device " << device << " out of memory: requested "
     << mpipe::mib(static_cast<double>(requested)) << " MiB with "
     << mpipe::mib(static_cast<double>(in_use)) << " MiB in use of "
     << mpipe::mib(static_cast<double>(capacity)) << " MiB capacity";
  return os.str();
}
}  // namespace

OutOfMemoryError::OutOfMemoryError(int device, std::uint64_t requested_,
                                   std::uint64_t in_use_,
                                   std::uint64_t capacity_)
    : std::runtime_error(oom_message(device, requested_, in_use_, capacity_)),
      requested(requested_),
      in_use(in_use_),
      capacity(capacity_) {}

Allocation::Allocation(DeviceAllocator* allocator, Category category,
                       std::uint64_t bytes)
    : allocator_(allocator), category_(category), bytes_(bytes) {}

Allocation::~Allocation() { release(); }

Allocation::Allocation(Allocation&& other) noexcept
    : allocator_(other.allocator_),
      category_(other.category_),
      bytes_(other.bytes_) {
  other.allocator_ = nullptr;
  other.bytes_ = 0;
}

Allocation& Allocation::operator=(Allocation&& other) noexcept {
  if (this != &other) {
    release();
    allocator_ = other.allocator_;
    category_ = other.category_;
    bytes_ = other.bytes_;
    other.allocator_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void Allocation::release() {
  if (allocator_ != nullptr) {
    allocator_->on_release(category_, bytes_);
    allocator_ = nullptr;
    bytes_ = 0;
  }
}

DeviceAllocator::DeviceAllocator(int device_id, std::uint64_t capacity_bytes)
    : device_id_(device_id), capacity_(capacity_bytes) {
  MPIPE_EXPECTS(device_id >= 0, "negative device id");
}

Allocation DeviceAllocator::allocate(Category category, std::uint64_t bytes) {
  if (fault_injector_ != nullptr &&
      fault_injector_->should_fail_alloc(alloc_seq_++)) {
    throw OutOfMemoryError(device_id_, bytes, tracker_.current_total(),
                           capacity_);
  }
  if (capacity_ != 0 && tracker_.current_total() + bytes > capacity_) {
    throw OutOfMemoryError(device_id_, bytes, tracker_.current_total(),
                           capacity_);
  }
  tracker_.allocate(category, bytes);
  return Allocation(this, category, bytes);
}

TrackedTensor DeviceAllocator::alloc_tensor(Shape shape, Category category,
                                            bool materialize,
                                            DType account_dtype) {
  const std::uint64_t bytes =
      account_dtype != DType::kF32 && shape.rank() == 2
          ? quantized_bytes(shape.dim(0), shape.dim(1), account_dtype)
          : static_cast<std::uint64_t>(shape.numel()) * sizeof(float);
  TrackedTensor out;
  out.allocation = allocate(category, bytes);
  if (materialize) {
    out.tensor = Tensor(shape);
  }
  return out;
}

void DeviceAllocator::on_release(Category category, std::uint64_t bytes) {
  tracker_.release(category, bytes);
}

}  // namespace mpipe::mem
