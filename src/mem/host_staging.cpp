#include "mem/host_staging.h"

#include "common/check.h"

namespace mpipe::mem {

void HostStaging::store(int device, const std::string& key, const Tensor& t) {
  MPIPE_EXPECTS(t.defined(), "staging a null tensor");
  const auto k = std::make_pair(device, key);
  auto it = store_.find(k);
  if (it != store_.end()) {
    bytes_ -= it->second.nbytes();
    it->second = t.clone();
    bytes_ += it->second.nbytes();
    return;
  }
  auto [pos, inserted] = store_.emplace(k, t.clone());
  bytes_ += pos->second.nbytes();
}

Tensor HostStaging::load(int device, const std::string& key) const {
  auto it = store_.find(std::make_pair(device, key));
  MPIPE_EXPECTS(it != store_.end(),
                "no staged tensor for device " + std::to_string(device) +
                    " key '" + key + "'");
  return it->second.clone();
}

bool HostStaging::contains(int device, const std::string& key) const {
  return store_.count(std::make_pair(device, key)) > 0;
}

void HostStaging::drop(int device, const std::string& key) {
  auto it = store_.find(std::make_pair(device, key));
  if (it == store_.end()) return;
  bytes_ -= it->second.nbytes();
  store_.erase(it);
}

void HostStaging::clear_device(int device) {
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->first.first == device) {
      bytes_ -= it->second.nbytes();
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
}

void HostStaging::clear() {
  store_.clear();
  bytes_ = 0;
}

}  // namespace mpipe::mem
