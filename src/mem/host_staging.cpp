#include "mem/host_staging.h"

#include "common/check.h"
#include "tensor/quant.h"

namespace mpipe::mem {

void HostStaging::store(int device, const std::string& key, const Tensor& t,
                        bool allow_overwrite, DType dtype) {
  MPIPE_EXPECTS(t.defined(), "staging a null tensor");
  Tensor copy = t.clone();  // deep copy outside the lock
  std::uint64_t bytes = copy.nbytes();
  if (dtype != DType::kF32 && copy.shape().rank() == 2) {
    // Stage in the wire format: round the values the way the reduced
    // storage would, account the bytes host RAM would actually hold.
    round_through_dtype(copy.data(), copy.dim(0), copy.dim(1), dtype);
    bytes = quantized_bytes(copy.dim(0), copy.dim(1), dtype);
  }
  const auto k = std::make_pair(device, key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(k);
  if (it != store_.end()) {
    MPIPE_EXPECTS(allow_overwrite,
                  "staging collision: device " + std::to_string(device) +
                      " key '" + key +
                      "' is already staged — a live entry was about to be "
                      "silently overwritten (pass allow_overwrite to "
                      "replace deliberately)");
    bytes_ -= it->second.bytes;
    it->second = Entry{std::move(copy), bytes};
    bytes_ += bytes;
    return;
  }
  store_.emplace(k, Entry{std::move(copy), bytes});
  bytes_ += bytes;
}

Tensor HostStaging::load(int device, const std::string& key) const {
  Tensor staged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = store_.find(std::make_pair(device, key));
    MPIPE_EXPECTS(it != store_.end(),
                  "no staged tensor for device " + std::to_string(device) +
                      " key '" + key + "'");
    staged = it->second.t;  // shallow share under the lock...
  }
  return staged.clone();  // ...deep copy outside it
}

bool HostStaging::contains(int device, const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.count(std::make_pair(device, key)) > 0;
}

void HostStaging::drop(int device, const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(std::make_pair(device, key));
  if (it == store_.end()) return;
  bytes_ -= it->second.bytes;
  store_.erase(it);
}

void HostStaging::clear_device(int device) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->first.first == device) {
      bytes_ -= it->second.bytes;
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
}

void HostStaging::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  store_.clear();
  bytes_ = 0;
}

std::uint64_t HostStaging::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t HostStaging::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.size();
}

const void* HostStaging::slot_token(int device, const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return &tokens_[std::make_pair(device, key)];
}

}  // namespace mpipe::mem
