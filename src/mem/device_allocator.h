#pragma once
/// \file device_allocator.h
/// Accounting allocator for one simulated device. Allocations are RAII
/// handles: real storage lives in mpipe::Tensor (host memory standing in
/// for HBM); the allocator tracks *what the GPU would hold* so peak
/// footprints reproduce the paper's Figures 2, 9, 10.

#include <cstdint>
#include <memory>
#include <optional>

#include "common/fault_injection.h"
#include "mem/memory_tracker.h"
#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mpipe::mem {

class DeviceAllocator;

/// RAII accounting record; releases its bytes on destruction.
class Allocation {
 public:
  Allocation() = default;
  Allocation(DeviceAllocator* allocator, Category category,
             std::uint64_t bytes);
  ~Allocation();

  Allocation(Allocation&& other) noexcept;
  Allocation& operator=(Allocation&& other) noexcept;
  Allocation(const Allocation&) = delete;
  Allocation& operator=(const Allocation&) = delete;

  std::uint64_t bytes() const { return bytes_; }
  bool active() const { return allocator_ != nullptr; }

  /// Releases early (idempotent).
  void release();

 private:
  DeviceAllocator* allocator_ = nullptr;
  Category category_ = Category::kActivation;
  std::uint64_t bytes_ = 0;
};

/// A tensor whose device residency is tracked.
struct TrackedTensor {
  Tensor tensor;
  Allocation allocation;

  bool defined() const { return tensor.defined(); }
};

class DeviceAllocator {
 public:
  /// `capacity_bytes` caps the device (0 = unlimited). Exceeding it throws
  /// — benches use the cap to demonstrate "fits vs OOM" (Fig 11 batch
  /// scaling discussion).
  explicit DeviceAllocator(int device_id, std::uint64_t capacity_bytes = 0);

  // Live Allocation handles hold a pointer to their allocator, so the
  // allocator must never relocate. Hold DeviceAllocators in a std::deque.
  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;
  DeviceAllocator(DeviceAllocator&&) = delete;
  DeviceAllocator& operator=(DeviceAllocator&&) = delete;

  int device_id() const { return device_id_; }
  std::uint64_t capacity() const { return capacity_; }

  Allocation allocate(Category category, std::uint64_t bytes);

  /// Allocates a zeroed tensor with accounting. With materialize = false
  /// only the accounting happens (timing-only runs at paper scale must not
  /// touch real storage); the tensor member stays undefined.
  ///
  /// `account_dtype` sets the accounted footprint of a rank-2 shape to its
  /// wire/storage format (quantized_bytes) while the materialized tensor
  /// stays fp32 — the simulation computes in fp32 on values already rounded
  /// through the wire format, but a real device would hold the reduced
  /// bytes. kF32 keeps the exact legacy accounting.
  TrackedTensor alloc_tensor(Shape shape, Category category,
                             bool materialize = true,
                             DType account_dtype = DType::kF32);

  MemoryTracker& tracker() { return tracker_; }
  const MemoryTracker& tracker() const { return tracker_; }

  /// Wires the cluster's fault injector in: allocations then fail with
  /// OutOfMemoryError according to the injector's alloc-failure schedule
  /// (keyed by a per-allocator sequence number). Null detaches. OOM —
  /// injected or real — is fatal to the step, never retried; recovery
  /// happens at the trainer's checkpoint/rollback level.
  void set_fault_injector(std::shared_ptr<const FaultInjector> injector) {
    fault_injector_ = std::move(injector);
  }

 private:
  friend class Allocation;
  void on_release(Category category, std::uint64_t bytes);

  int device_id_;
  std::uint64_t capacity_;
  MemoryTracker tracker_;
  std::shared_ptr<const FaultInjector> fault_injector_;
  // Allocation sequence id feeding the injector's hash; allocations happen
  // on the (single) graph-build thread, so a plain counter suffices.
  std::uint64_t alloc_seq_ = 0;
};

/// Thrown when an allocation would exceed the device capacity.
class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError(int device, std::uint64_t requested, std::uint64_t in_use,
                   std::uint64_t capacity);

  std::uint64_t requested;
  std::uint64_t in_use;
  std::uint64_t capacity;
};

}  // namespace mpipe::mem
