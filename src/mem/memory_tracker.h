#pragma once
/// \file memory_tracker.h
/// Byte accounting per memory category, mirroring the paper's breakdown
/// (§II-B): model states, activations, temporary buffers — plus transient
/// communication staging. Tracks current and peak usage; every figure that
/// reports "memory footprint" reads these counters.

#include <array>
#include <cstdint>
#include <string>

namespace mpipe::mem {

enum class Category : std::uint8_t {
  kModelState = 0,  ///< parameters + gradients + optimizer states
  kActivation = 1,  ///< stashed forward tensors
  kTempBuffer = 2,  ///< backward-pass gradient scratch
  kComm = 3,        ///< collective staging
};

inline constexpr int kNumCategories = 4;

std::string to_string(Category c);

class MemoryTracker {
 public:
  void allocate(Category category, std::uint64_t bytes);
  void release(Category category, std::uint64_t bytes);

  std::uint64_t current(Category category) const;
  std::uint64_t peak(Category category) const;

  /// Sum over categories, tracked jointly (peak of the sum, not sum of
  /// peaks — concurrent liveness matters for the figures).
  std::uint64_t current_total() const { return current_total_; }
  std::uint64_t peak_total() const { return peak_total_; }

  /// Clears peaks (not current) — called between measured iterations.
  void reset_peaks();

  /// Clears everything.
  void reset();

  std::string summary() const;

 private:
  std::array<std::uint64_t, kNumCategories> current_{};
  std::array<std::uint64_t, kNumCategories> peak_{};
  std::uint64_t current_total_ = 0;
  std::uint64_t peak_total_ = 0;
};

}  // namespace mpipe::mem
