#pragma once
/// \file model_zoo.h
/// The paper's evaluated MoE layer configurations (Table III).

#include <string>
#include <vector>

#include "core/moe_layer.h"

namespace mpipe::runtime {

struct ModelSpec {
  std::string name;
  std::int64_t d_model = 0;   ///< Table III d_model
  std::int64_t d_hidden = 0;  ///< Table III d_hidden
  int num_experts = 64;       ///< Table III #experts
};

/// MoE-GPT3-S: d_model 768, d_hidden 3072.
ModelSpec gpt_s();
/// MoE-GPT3-XL: d_model 2048, d_hidden 8192.
ModelSpec gpt_xl();
/// MoE-BERT-L: d_model 1024, d_hidden 4096.
ModelSpec bert_l();

/// The Table III lineup in the paper's plotting order.
std::vector<ModelSpec> paper_models();

/// MoELayer options pre-filled from a model spec.
core::MoELayerOptions layer_options(const ModelSpec& spec);

}  // namespace mpipe::runtime
