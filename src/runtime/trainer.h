#pragma once
/// \file trainer.h
/// End-to-end MoE training loop on the simulated cluster: workload →
/// forward → MSE loss → backward → Adam. Drives the full numeric path the
/// tests verify (loss decreases, restore strategies are gradient-exact).
///
/// The optional fault-tolerant mode layers a degradation ladder on top of
/// the plain step: transient comm failures are replayed in place (the
/// workload RNG is snapshotted per step, so a replay consumes the same
/// batch), non-finite losses/gradients skip the optimizer update, repeated
/// non-finite steps roll back to the last in-memory checkpoint, and an
/// exhausted rollback budget aborts with a diagnostic counter summary.
/// With every knob off and no injector installed, train_step() dispatches
/// to the exact unguarded path — fault-free training is bitwise identical
/// to a build without this layer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/moe_layer.h"
#include "runtime/adam.h"
#include "runtime/metrics.h"
#include "runtime/workload.h"
#include "sim/calibration.h"

namespace mpipe::runtime {

/// Knobs for the recovery ladder. `enabled()` false + no fault injector on
/// the cluster ⇒ the trainer never touches any of this machinery.
struct FaultToleranceOptions {
  /// Scan loss and gradients for NaN/Inf after backward; a non-finite step
  /// skips the optimizer update (ladder rung 1).
  bool numerics_guard = false;
  /// Take an in-memory checkpoint every N committed steps (0 disables; an
  /// initial checkpoint is taken before step 0 so rung 2 always has a
  /// target). Checkpoints use the same framed image as save_checkpoint().
  int checkpoint_interval = 0;
  /// Consecutive non-finite steps tolerated (as skipped updates) before
  /// rolling back to the last checkpoint (ladder rung 2).
  int rollback_after = 2;
  /// Rollbacks allowed per run before aborting (ladder rung 3).
  int max_rollbacks = 4;
  /// Step-level replays of a TransientError that escaped the comm-level
  /// retry, before escalating to rollback/abort.
  int max_step_retries = 2;

  bool enabled() const { return numerics_guard || checkpoint_interval > 0; }
};

struct TrainerOptions {
  WorkloadOptions workload;
  AdamOptions adam;
  int steps = 10;
  /// Install the committed CALIBRATION_gemm.csv / CALIBRATION_alltoall.csv
  /// measured curves into the layer's cluster at construction, when the
  /// files exist and their knots cover the row/payload ranges this
  /// workload's granularity search will probe. Missing files or
  /// insufficient coverage fall back to the analytic cost model (see
  /// calibration_status()).
  bool load_calibration = true;
  /// Online measured-vs-modeled loop: profile the wall clock of the first
  /// N steps (per-op timestamps, see sim/profile.h), fit per-op-class
  /// correction factors (measured / modeled seconds for compute, comm and
  /// memcpy ops) and install them into the layer, so the granularity
  /// search and the Eq-10 strategy selector re-rank every later step with
  /// reality-corrected costs. 0 disables; the layer's own
  /// profile_execution option is restored after the warmup.
  int profile_warmup_steps = 0;
  /// When non-empty and warmup profiling ran, the last warmup step's
  /// measured-vs-simulated chrome traces are written to
  /// <trace_path>.fwd.json / <trace_path>.bwd.json (chrome://tracing).
  std::string trace_path;
  FaultToleranceOptions fault_tolerance;
};

class Trainer {
 public:
  /// The layer must be in full execution mode.
  Trainer(core::MoELayer& layer, TrainerOptions options);

  /// Runs one training step; returns the MSE loss before the update.
  double train_step();

  /// Runs options.steps steps.
  const TrainingMetrics& run();

  const TrainingMetrics& metrics() const { return metrics_; }

  /// What calibration loading did at construction (empty detail when
  /// options.load_calibration was false).
  const sim::CalibrationStatus& calibration_status() const {
    return calibration_status_;
  }

  /// The per-op-class correction factors fitted from the profiled warmup
  /// steps and installed into the layer (identity until the warmup
  /// completes, or when profile_warmup_steps == 0).
  const sim::OpClassCorrections& corrections() const { return corrections_; }

  /// True once the warmup fit ran and the layer re-ranks with it.
  bool corrections_installed() const { return corrections_installed_; }

  /// Serializes the full training state (weights, Adam, workload RNG,
  /// correction + searcher state) into one framed, checksummed image — see
  /// runtime/checkpoint.h for the format.
  std::vector<std::uint8_t> checkpoint_bytes();
  /// All-or-nothing restore of a checkpoint_bytes() image; a fresh Trainer
  /// restored from step-k bytes resumes bitwise identically to the run
  /// that produced them. Throws CheckError on a corrupt or mismatched
  /// image, leaving state untouched.
  void restore_from_bytes(const std::vector<std::uint8_t>& bytes);
  void save_checkpoint(const std::string& path);
  void restore_checkpoint(const std::string& path);

  int steps_run() const { return steps_run_; }

 private:
  /// The unguarded PR-5 step body; with `guard` set, scans the loss after
  /// forward and the gradients after backward, and on a non-finite value
  /// sets `non_finite` and returns without touching optimizer state or
  /// metrics. Exception-safe w.r.t. the warmup profiling overrides.
  double train_step_impl(bool guard, bool& non_finite);
  /// The recovery ladder around train_step_impl (see file comment).
  double train_step_fault_tolerant();
  void maybe_take_checkpoint();
  /// Rung 2: restore the last in-memory checkpoint and truncate metrics to
  /// it. False when no checkpoint exists; escalates to
  /// abort_with_diagnostics when the rollback budget is spent.
  bool roll_back();
  [[noreturn]] void abort_with_diagnostics(const std::string& reason);
  /// Mirrors the cluster injector's fault totals into metrics().recovery().
  void sync_injector_stats();

  core::MoELayer* layer_;
  TrainerOptions options_;
  WorkloadGenerator workload_;
  std::unique_ptr<Adam> optimizer_;
  TrainingMetrics metrics_;
  sim::CalibrationStatus calibration_status_;
  sim::CorrectionFit correction_fit_;
  sim::OpClassCorrections corrections_;
  bool corrections_installed_ = false;
  int steps_run_ = 0;
  // Fault-tolerant mode state (untouched on the plain path).
  std::vector<std::uint8_t> auto_checkpoint_;
  std::size_t checkpoint_metrics_steps_ = 0;
  int last_checkpoint_step_ = -1;
  int consecutive_non_finite_ = 0;
  int rollbacks_done_ = 0;
};

}  // namespace mpipe::runtime
