#pragma once
/// \file trainer.h
/// End-to-end MoE training loop on the simulated cluster: workload →
/// forward → MSE loss → backward → Adam. Drives the full numeric path the
/// tests verify (loss decreases, restore strategies are gradient-exact).

#include <memory>

#include "core/moe_layer.h"
#include "runtime/adam.h"
#include "runtime/metrics.h"
#include "runtime/workload.h"

namespace mpipe::runtime {

struct TrainerOptions {
  WorkloadOptions workload;
  AdamOptions adam;
  int steps = 10;
};

class Trainer {
 public:
  /// The layer must be in full execution mode.
  Trainer(core::MoELayer& layer, TrainerOptions options);

  /// Runs one training step; returns the MSE loss before the update.
  double train_step();

  /// Runs options.steps steps.
  const TrainingMetrics& run();

  const TrainingMetrics& metrics() const { return metrics_; }

 private:
  core::MoELayer* layer_;
  TrainerOptions options_;
  WorkloadGenerator workload_;
  std::unique_ptr<Adam> optimizer_;
  TrainingMetrics metrics_;
};

}  // namespace mpipe::runtime
