#pragma once
/// \file trainer.h
/// End-to-end MoE training loop on the simulated cluster: workload →
/// forward → MSE loss → backward → Adam. Drives the full numeric path the
/// tests verify (loss decreases, restore strategies are gradient-exact).

#include <memory>

#include "core/moe_layer.h"
#include "runtime/adam.h"
#include "runtime/metrics.h"
#include "runtime/workload.h"
#include "sim/calibration.h"

namespace mpipe::runtime {

struct TrainerOptions {
  WorkloadOptions workload;
  AdamOptions adam;
  int steps = 10;
  /// Install the committed CALIBRATION_gemm.csv / CALIBRATION_alltoall.csv
  /// measured curves into the layer's cluster at construction, when the
  /// files exist and their knots cover the row/payload ranges this
  /// workload's granularity search will probe. Missing files or
  /// insufficient coverage fall back to the analytic cost model (see
  /// calibration_status()).
  bool load_calibration = true;
  /// Online measured-vs-modeled loop: profile the wall clock of the first
  /// N steps (per-op timestamps, see sim/profile.h), fit per-op-class
  /// correction factors (measured / modeled seconds for compute, comm and
  /// memcpy ops) and install them into the layer, so the granularity
  /// search and the Eq-10 strategy selector re-rank every later step with
  /// reality-corrected costs. 0 disables; the layer's own
  /// profile_execution option is restored after the warmup.
  int profile_warmup_steps = 0;
  /// When non-empty and warmup profiling ran, the last warmup step's
  /// measured-vs-simulated chrome traces are written to
  /// <trace_path>.fwd.json / <trace_path>.bwd.json (chrome://tracing).
  std::string trace_path;
};

class Trainer {
 public:
  /// The layer must be in full execution mode.
  Trainer(core::MoELayer& layer, TrainerOptions options);

  /// Runs one training step; returns the MSE loss before the update.
  double train_step();

  /// Runs options.steps steps.
  const TrainingMetrics& run();

  const TrainingMetrics& metrics() const { return metrics_; }

  /// What calibration loading did at construction (empty detail when
  /// options.load_calibration was false).
  const sim::CalibrationStatus& calibration_status() const {
    return calibration_status_;
  }

  /// The per-op-class correction factors fitted from the profiled warmup
  /// steps and installed into the layer (identity until the warmup
  /// completes, or when profile_warmup_steps == 0).
  const sim::OpClassCorrections& corrections() const { return corrections_; }

  /// True once the warmup fit ran and the layer re-ranks with it.
  bool corrections_installed() const { return corrections_installed_; }

 private:
  core::MoELayer* layer_;
  TrainerOptions options_;
  WorkloadGenerator workload_;
  std::unique_ptr<Adam> optimizer_;
  TrainingMetrics metrics_;
  sim::CalibrationStatus calibration_status_;
  sim::CorrectionFit correction_fit_;
  sim::OpClassCorrections corrections_;
  bool corrections_installed_ = false;
  int steps_run_ = 0;
};

}  // namespace mpipe::runtime
