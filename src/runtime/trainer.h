#pragma once
/// \file trainer.h
/// End-to-end MoE training loop on the simulated cluster: workload →
/// forward → MSE loss → backward → Adam. Drives the full numeric path the
/// tests verify (loss decreases, restore strategies are gradient-exact).

#include <memory>

#include "core/moe_layer.h"
#include "runtime/adam.h"
#include "runtime/metrics.h"
#include "runtime/workload.h"
#include "sim/calibration.h"

namespace mpipe::runtime {

struct TrainerOptions {
  WorkloadOptions workload;
  AdamOptions adam;
  int steps = 10;
  /// Install the committed CALIBRATION_gemm.csv / CALIBRATION_alltoall.csv
  /// measured curves into the layer's cluster at construction, when the
  /// files exist and their knots cover the row/payload ranges this
  /// workload's granularity search will probe. Missing files or
  /// insufficient coverage fall back to the analytic cost model (see
  /// calibration_status()).
  bool load_calibration = true;
};

class Trainer {
 public:
  /// The layer must be in full execution mode.
  Trainer(core::MoELayer& layer, TrainerOptions options);

  /// Runs one training step; returns the MSE loss before the update.
  double train_step();

  /// Runs options.steps steps.
  const TrainingMetrics& run();

  const TrainingMetrics& metrics() const { return metrics_; }

  /// What calibration loading did at construction (empty detail when
  /// options.load_calibration was false).
  const sim::CalibrationStatus& calibration_status() const {
    return calibration_status_;
  }

 private:
  core::MoELayer* layer_;
  TrainerOptions options_;
  WorkloadGenerator workload_;
  std::unique_ptr<Adam> optimizer_;
  TrainingMetrics metrics_;
  sim::CalibrationStatus calibration_status_;
};

}  // namespace mpipe::runtime
