#include "runtime/trainer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "runtime/checkpoint.h"
#include "tensor/ops.h"

namespace mpipe::runtime {

namespace {

void write_json(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out || !(out << json)) {
    MPIPE_LOG_WARN << "failed to write trace " << path;
  }
}

}  // namespace

Trainer::Trainer(core::MoELayer& layer, TrainerOptions options)
    : layer_(&layer), options_(options), workload_(options.workload) {
  MPIPE_EXPECTS(options_.workload.num_devices == layer.num_devices(),
                "workload/device mismatch");
  MPIPE_EXPECTS(options_.workload.d_model == layer.options().d_model,
                "workload/model dimension mismatch");
  if (options_.load_calibration) {
    // The workload bounds every batch size the adaptive search can see,
    // which bounds the GEMM panels and AllToAll payloads it will probe —
    // exactly the coverage contract the measured curves must satisfy.
    const auto& wo = options_.workload;
    const std::int64_t min_tokens = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(
               static_cast<double>(wo.tokens_per_device) *
               (1.0 - wo.batch_jitter))));
    const std::int64_t max_tokens = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(wo.tokens_per_device) *
        (1.0 + wo.batch_jitter)));
    calibration_status_ = core::install_calibration(
        layer.cluster(), layer.options(), min_tokens, max_tokens);
  }
  MPIPE_EXPECTS(options_.profile_warmup_steps >= 0,
                "negative warmup step count");
  const auto& ft = options_.fault_tolerance;
  MPIPE_EXPECTS(ft.checkpoint_interval >= 0, "negative checkpoint interval");
  MPIPE_EXPECTS(ft.rollback_after >= 1, "rollback_after must be >= 1");
  MPIPE_EXPECTS(ft.max_rollbacks >= 0, "negative rollback budget");
  MPIPE_EXPECTS(ft.max_step_retries >= 0, "negative step retry budget");
  optimizer_ = std::make_unique<Adam>(layer.parameters(), layer.gradients(),
                                      options_.adam);
}

double Trainer::train_step() {
  // The plain path: no ladder knobs, no injector on the cluster — run the
  // step body exactly as before this layer existed.
  if (!options_.fault_tolerance.enabled() &&
      layer_->cluster().fault_injector() == nullptr) {
    bool non_finite = false;
    return train_step_impl(/*guard=*/false, non_finite);
  }
  return train_step_fault_tolerant();
}

double Trainer::train_step_impl(bool guard, bool& non_finite) {
  non_finite = false;
  const bool warmup_profiling =
      steps_run_ < options_.profile_warmup_steps && !corrections_installed_;
  const bool last_warmup_step =
      warmup_profiling && steps_run_ + 1 >= options_.profile_warmup_steps;
  // Snapshot the layer's own settings at step entry (not at Trainer
  // construction): a user toggle between steps must survive the warmup
  // override's restore below.
  const bool layer_profiling = layer_->options().profile_execution;
  const bool layer_tracing = layer_->options().trace_execution;
  if (warmup_profiling) {
    layer_->set_profile_execution(true);
    // The trace dump reads the last warmup step's report; earlier steps
    // (and steps with no dump requested) skip the JSON serialisation.
    if (last_warmup_step && !options_.trace_path.empty()) {
      layer_->set_trace_execution(true);
    }
  }

  try {
    layer_->zero_grad();
    auto batch = workload_.next_batch();
    auto targets = workload_.targets_for(batch);
    auto outputs = layer_->forward(batch);

    double loss = 0.0;
    std::vector<Tensor> grads;
    grads.reserve(outputs.size());
    for (std::size_t d = 0; d < outputs.size(); ++d) {
      loss += mse_loss(outputs[d], targets[d]);
      grads.push_back(mse_loss_grad(outputs[d], targets[d]));
    }
    loss /= static_cast<double>(outputs.size());

    if (guard && !std::isfinite(loss)) {
      // Rung 1: poisoned forward. The step is abandoned before backward —
      // no optimizer state, metrics, or step count moved.
      non_finite = true;
      if (warmup_profiling) {
        layer_->set_profile_execution(layer_profiling);
        layer_->set_trace_execution(layer_tracing);
      }
      return loss;
    }

    layer_->backward(grads);

    if (guard) {
      for (Tensor* g : layer_->gradients()) {
        if (!all_finite(*g)) {
          non_finite = true;
          break;
        }
      }
      if (non_finite) {
        if (warmup_profiling) {
          layer_->set_profile_execution(layer_profiling);
          layer_->set_trace_execution(layer_tracing);
        }
        return loss;
      }
    }

    optimizer_->step();
    // The optimizer wrote new fp32 masters; a non-f32 layer's compute path
    // reads the quantized caches, which are stale until re-quantized.
    layer_->refresh_quantized_weights();
    const core::StepReport& report = layer_->last_report();
    metrics_.record_step(loss, report);
    metrics_.recovery().straggler_flags += report.stragglers.size();
    ++steps_run_;

    if (warmup_profiling) {
      // Restore the overrides after every warmup step, not just the last —
      // a caller may stop short of profile_warmup_steps (e.g. run() with
      // fewer steps) and must not be left with profiling stuck on.
      layer_->set_profile_execution(layer_profiling);
      layer_->set_trace_execution(layer_tracing);
    }
    if (warmup_profiling && report.profiled) {
      // Accumulate measured-vs-modeled per-class seconds; after the last
      // warmup step, fit the correction factors and hand them to the layer —
      // the searcher cache is flushed there, so the very next step re-ranks
      // granularity and strategy with reality-corrected costs.
      correction_fit_.add(report.forward_diff);
      correction_fit_.add(report.backward_diff);
      if (steps_run_ >= options_.profile_warmup_steps) {
        corrections_ = correction_fit_.fit();
        layer_->set_corrections(corrections_);
        corrections_installed_ = true;
        if (!options_.trace_path.empty()) {
          write_json(options_.trace_path + ".fwd.json",
                     report.forward_trace_json);
          write_json(options_.trace_path + ".bwd.json",
                     report.backward_trace_json);
        }
      }
    }
    return loss;
  } catch (...) {
    // A throwing step (injected comm fault, OOM) must not leave warmup
    // profiling stuck on for the replay.
    if (warmup_profiling) {
      layer_->set_profile_execution(layer_profiling);
      layer_->set_trace_execution(layer_tracing);
    }
    throw;
  }
}

double Trainer::train_step_fault_tolerant() {
  const auto& ft = options_.fault_tolerance;
  for (;;) {
    maybe_take_checkpoint();
    // Snapshot the workload stream so a replayed step consumes the exact
    // same batch — the invariant behind the bitwise chaos tests.
    const Rng rng_snapshot = workload_.rng();
    const std::int64_t tokens_snapshot = workload_.last_batch_tokens();

    bool rolled_back = false;
    bool non_finite = false;
    double loss = 0.0;
    int attempts = 0;
    for (;;) {
      try {
        loss = train_step_impl(ft.numerics_guard, non_finite);
        break;
      } catch (const TransientError& e) {
        // A transient that exhausted the comm-level retry budget. Replay
        // the whole step from the snapshot; escalate to rollback (and
        // then abort) when step-level replays are exhausted too.
        sync_injector_stats();
        workload_.set_rng(rng_snapshot);
        workload_.set_last_batch_tokens(tokens_snapshot);
        ++metrics_.recovery().transient_step_retries;
        if (++attempts > ft.max_step_retries) {
          if (!roll_back()) {
            abort_with_diagnostics(
                std::string("transient step retries exhausted: ") + e.what());
          }
          rolled_back = true;
          break;
        }
      }
      // CheckError / OutOfMemoryError propagate: invariant violations and
      // exhausted memory are fatal at step level by design.
    }
    sync_injector_stats();
    if (rolled_back) continue;  // replay from the restored checkpoint

    if (!non_finite) {
      consecutive_non_finite_ = 0;
      return loss;
    }
    ++metrics_.recovery().non_finite_steps;
    ++metrics_.recovery().optimizer_steps_skipped;
    ++consecutive_non_finite_;
    if (consecutive_non_finite_ >= ft.rollback_after) {
      if (!roll_back()) {
        abort_with_diagnostics(
            "non-finite steps persisted with no checkpoint to roll back to");
      }
      continue;  // replay from the restored checkpoint
    }
    return loss;  // rung 1 only: optimizer update skipped, batch consumed
  }
}

void Trainer::maybe_take_checkpoint() {
  const int interval = options_.fault_tolerance.checkpoint_interval;
  if (interval <= 0) return;
  if (steps_run_ % interval != 0) return;
  // A rollback lands exactly on a checkpointed step; don't re-snapshot it.
  if (last_checkpoint_step_ == steps_run_) return;
  auto_checkpoint_ = checkpoint_bytes();
  checkpoint_metrics_steps_ = metrics_.steps();
  last_checkpoint_step_ = steps_run_;
  ++metrics_.recovery().checkpoints_taken;
}

bool Trainer::roll_back() {
  if (auto_checkpoint_.empty()) return false;
  if (rollbacks_done_ >= options_.fault_tolerance.max_rollbacks) {
    abort_with_diagnostics("rollback budget exhausted");
  }
  restore_from_bytes(auto_checkpoint_);
  metrics_.truncate_steps(checkpoint_metrics_steps_);
  last_checkpoint_step_ = steps_run_;
  ++rollbacks_done_;
  ++metrics_.recovery().rollbacks;
  return true;
}

void Trainer::abort_with_diagnostics(const std::string& reason) {
  const RecoveryCounters& r = metrics_.recovery();
  std::ostringstream os;
  os << "fault-tolerant trainer aborting: " << reason << " [step "
     << steps_run_ << ", step retries " << r.transient_step_retries
     << ", non-finite " << r.non_finite_steps << ", skipped updates "
     << r.optimizer_steps_skipped << ", rollbacks " << r.rollbacks
     << "; injected: comm " << r.comm_failures_injected << " (retries "
     << r.comm_retries << "), stragglers " << r.stragglers_injected
     << ", alloc " << r.alloc_failures_injected << ", corruptions "
     << r.corruptions_injected << " (detected " << r.corruptions_detected
     << ")]";
  throw CheckError(os.str());
}

void Trainer::sync_injector_stats() {
  const FaultInjector* injector = layer_->cluster().fault_injector();
  if (injector == nullptr) return;
  const FaultStats s = injector->stats();
  RecoveryCounters& r = metrics_.recovery();
  r.comm_failures_injected = s.comm_failures;
  r.comm_retries = s.comm_retries;
  r.stragglers_injected = s.stragglers;
  r.alloc_failures_injected = s.alloc_failures;
  r.corruptions_injected = s.corruptions;
  r.corruptions_detected = s.corruptions_detected;
}

std::vector<std::uint8_t> Trainer::checkpoint_bytes() {
  TrainerCheckpointState st;
  st.steps_run = steps_run_;
  st.corrections_installed = corrections_installed_;
  st.corrections = corrections_;
  st.fit = correction_fit_.state();
  st.searcher = layer_->searcher().export_state();
  return encode_checkpoint(*layer_, *optimizer_, workload_, st);
}

void Trainer::restore_from_bytes(const std::vector<std::uint8_t>& bytes) {
  const TrainerCheckpointState st =
      apply_checkpoint(bytes, *layer_, *optimizer_, workload_);
  steps_run_ = static_cast<int>(st.steps_run);
  corrections_ = st.corrections;
  corrections_installed_ = st.corrections_installed;
  correction_fit_.set_state(st.fit);
  // Corrections first: installing them flushes the searcher's cache, which
  // the imported state then repopulates.
  layer_->set_corrections(corrections_);
  layer_->searcher().import_state(st.searcher);
  // Restored fp32 masters invalidate any quantized weight caches.
  layer_->refresh_quantized_weights();
  consecutive_non_finite_ = 0;
}

void Trainer::save_checkpoint(const std::string& path) {
  write_checkpoint_file(path, checkpoint_bytes());
}

void Trainer::restore_checkpoint(const std::string& path) {
  restore_from_bytes(read_checkpoint_file(path));
}

const TrainingMetrics& Trainer::run() {
  for (int i = 0; i < options_.steps; ++i) {
    train_step();
  }
  return metrics_;
}

}  // namespace mpipe::runtime
