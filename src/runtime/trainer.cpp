#include "runtime/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace mpipe::runtime {

Trainer::Trainer(core::MoELayer& layer, TrainerOptions options)
    : layer_(&layer), options_(options), workload_(options.workload) {
  MPIPE_EXPECTS(options_.workload.num_devices == layer.num_devices(),
                "workload/device mismatch");
  MPIPE_EXPECTS(options_.workload.d_model == layer.options().d_model,
                "workload/model dimension mismatch");
  if (options_.load_calibration) {
    // The workload bounds every batch size the adaptive search can see,
    // which bounds the GEMM panels and AllToAll payloads it will probe —
    // exactly the coverage contract the measured curves must satisfy.
    const auto& wo = options_.workload;
    const std::int64_t min_tokens = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(
               static_cast<double>(wo.tokens_per_device) *
               (1.0 - wo.batch_jitter))));
    const std::int64_t max_tokens = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(wo.tokens_per_device) *
        (1.0 + wo.batch_jitter)));
    calibration_status_ = core::install_calibration(
        layer.cluster(), layer.options(), min_tokens, max_tokens);
  }
  optimizer_ = std::make_unique<Adam>(layer.parameters(), layer.gradients(),
                                      options_.adam);
}

double Trainer::train_step() {
  layer_->zero_grad();
  auto batch = workload_.next_batch();
  auto targets = workload_.targets_for(batch);
  auto outputs = layer_->forward(batch);

  double loss = 0.0;
  std::vector<Tensor> grads;
  grads.reserve(outputs.size());
  for (std::size_t d = 0; d < outputs.size(); ++d) {
    loss += mse_loss(outputs[d], targets[d]);
    grads.push_back(mse_loss_grad(outputs[d], targets[d]));
  }
  loss /= static_cast<double>(outputs.size());

  layer_->backward(grads);
  optimizer_->step();
  metrics_.record_step(loss, layer_->last_report());
  return loss;
}

const TrainingMetrics& Trainer::run() {
  for (int i = 0; i < options_.steps; ++i) {
    train_step();
  }
  return metrics_;
}

}  // namespace mpipe::runtime
