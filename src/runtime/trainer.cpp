#include "runtime/trainer.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/ops.h"

namespace mpipe::runtime {

namespace {

void write_json(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out || !(out << json)) {
    MPIPE_LOG_WARN << "failed to write trace " << path;
  }
}

}  // namespace

Trainer::Trainer(core::MoELayer& layer, TrainerOptions options)
    : layer_(&layer), options_(options), workload_(options.workload) {
  MPIPE_EXPECTS(options_.workload.num_devices == layer.num_devices(),
                "workload/device mismatch");
  MPIPE_EXPECTS(options_.workload.d_model == layer.options().d_model,
                "workload/model dimension mismatch");
  if (options_.load_calibration) {
    // The workload bounds every batch size the adaptive search can see,
    // which bounds the GEMM panels and AllToAll payloads it will probe —
    // exactly the coverage contract the measured curves must satisfy.
    const auto& wo = options_.workload;
    const std::int64_t min_tokens = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(
               static_cast<double>(wo.tokens_per_device) *
               (1.0 - wo.batch_jitter))));
    const std::int64_t max_tokens = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(wo.tokens_per_device) *
        (1.0 + wo.batch_jitter)));
    calibration_status_ = core::install_calibration(
        layer.cluster(), layer.options(), min_tokens, max_tokens);
  }
  MPIPE_EXPECTS(options_.profile_warmup_steps >= 0,
                "negative warmup step count");
  optimizer_ = std::make_unique<Adam>(layer.parameters(), layer.gradients(),
                                      options_.adam);
}

double Trainer::train_step() {
  const bool warmup_profiling =
      steps_run_ < options_.profile_warmup_steps && !corrections_installed_;
  const bool last_warmup_step =
      warmup_profiling && steps_run_ + 1 >= options_.profile_warmup_steps;
  // Snapshot the layer's own settings at step entry (not at Trainer
  // construction): a user toggle between steps must survive the warmup
  // override's restore below.
  const bool layer_profiling = layer_->options().profile_execution;
  const bool layer_tracing = layer_->options().trace_execution;
  if (warmup_profiling) {
    layer_->set_profile_execution(true);
    // The trace dump reads the last warmup step's report; earlier steps
    // (and steps with no dump requested) skip the JSON serialisation.
    if (last_warmup_step && !options_.trace_path.empty()) {
      layer_->set_trace_execution(true);
    }
  }

  layer_->zero_grad();
  auto batch = workload_.next_batch();
  auto targets = workload_.targets_for(batch);
  auto outputs = layer_->forward(batch);

  double loss = 0.0;
  std::vector<Tensor> grads;
  grads.reserve(outputs.size());
  for (std::size_t d = 0; d < outputs.size(); ++d) {
    loss += mse_loss(outputs[d], targets[d]);
    grads.push_back(mse_loss_grad(outputs[d], targets[d]));
  }
  loss /= static_cast<double>(outputs.size());

  layer_->backward(grads);
  optimizer_->step();
  const core::StepReport& report = layer_->last_report();
  metrics_.record_step(loss, report);
  ++steps_run_;

  if (warmup_profiling) {
    // Restore the overrides after every warmup step, not just the last —
    // a caller may stop short of profile_warmup_steps (e.g. run() with
    // fewer steps) and must not be left with profiling stuck on.
    layer_->set_profile_execution(layer_profiling);
    layer_->set_trace_execution(layer_tracing);
  }
  if (warmup_profiling && report.profiled) {
    // Accumulate measured-vs-modeled per-class seconds; after the last
    // warmup step, fit the correction factors and hand them to the layer —
    // the searcher cache is flushed there, so the very next step re-ranks
    // granularity and strategy with reality-corrected costs.
    correction_fit_.add(report.forward_diff);
    correction_fit_.add(report.backward_diff);
    if (steps_run_ >= options_.profile_warmup_steps) {
      corrections_ = correction_fit_.fit();
      layer_->set_corrections(corrections_);
      corrections_installed_ = true;
      if (!options_.trace_path.empty()) {
        write_json(options_.trace_path + ".fwd.json",
                   report.forward_trace_json);
        write_json(options_.trace_path + ".bwd.json",
                   report.backward_trace_json);
      }
    }
  }
  return loss;
}

const TrainingMetrics& Trainer::run() {
  for (int i = 0; i < options_.steps; ++i) {
    train_step();
  }
  return metrics_;
}

}  // namespace mpipe::runtime
