#pragma once
/// \file workload.h
/// Synthetic token workloads — the paper trains on "a dummy dataset by
/// generating random tokens". Adds the two workload properties that matter
/// to the systems results: dynamic batch sizes (drives the adaptive
/// granularity search) and routing skew (drives shadowing / stragglers).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mpipe::runtime {

struct WorkloadOptions {
  std::int64_t d_model = 64;
  std::int64_t tokens_per_device = 64;
  int num_devices = 4;
  /// Batch-size jitter: each step draws B from
  /// [tokens*(1-jitter), tokens*(1+jitter)].
  double batch_jitter = 0.0;
  std::uint64_t seed = 123;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  /// One batch per device, all (B, d_model) with this step's B.
  std::vector<Tensor> next_batch();

  /// Matching regression targets (for a synthetic MSE objective).
  std::vector<Tensor> targets_for(const std::vector<Tensor>& batch);

  std::int64_t last_batch_tokens() const { return last_tokens_; }

  /// Generator-state access for checkpoint/restore and step-level retry:
  /// restoring the Rng (a cheap value copy) and the last batch size
  /// replays the exact token stream from that point — the property the
  /// bitwise-identical-resume tests pin.
  const Rng& rng() const { return rng_; }
  void set_rng(const Rng& rng) { rng_ = rng; }
  void set_last_batch_tokens(std::int64_t tokens) { last_tokens_ = tokens; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  std::int64_t last_tokens_ = 0;
};

/// Dynamic batch-size trace generator (Fig 12's x-axis sweep and the cache
/// behaviour of Algorithm 1): `steps` sizes in [lo, hi], optionally drawn
/// from a small set of recurring values (mimicking dataloader buckets).
std::vector<std::int64_t> batch_size_trace(std::int64_t lo, std::int64_t hi,
                                           int steps, int buckets,
                                           std::uint64_t seed);

}  // namespace mpipe::runtime
