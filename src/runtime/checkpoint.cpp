#include "runtime/checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace mpipe::runtime {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x00000100000001b3ull;
  }
  return h;
}

namespace {

class Writer {
 public:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void tensor(const Tensor& t) {
    const auto& shape = t.shape();
    u32(static_cast<std::uint32_t>(shape.rank()));
    for (std::size_t i = 0; i < shape.rank(); ++i) i64(t.dim(i));
    raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  void raw(void* p, std::size_t n) {
    MPIPE_CHECK(pos_ + n <= size_, "checkpoint payload truncated");
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof(v)); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof(v)); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof(v)); return v; }
  double f64() { double v; raw(&v, sizeof(v)); return v; }
  std::string str() {
    const std::uint64_t n = u64();
    MPIPE_CHECK(pos_ + n <= size_, "checkpoint payload truncated");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  struct TensorImage {
    std::vector<std::int64_t> dims;
    std::vector<float> data;
  };
  TensorImage tensor() {
    TensorImage img;
    const std::uint32_t rank = u32();
    MPIPE_CHECK(rank <= 8, "checkpoint tensor rank implausible");
    std::int64_t numel = 1;
    for (std::uint32_t i = 0; i < rank; ++i) {
      const std::int64_t d = i64();
      MPIPE_CHECK(d >= 0, "checkpoint tensor dim negative");
      img.dims.push_back(d);
      numel *= d;
    }
    MPIPE_CHECK(pos_ + static_cast<std::size_t>(numel) * sizeof(float) <=
                    size_,
                "checkpoint payload truncated");
    img.data.resize(static_cast<std::size_t>(numel));
    raw(img.data.data(), static_cast<std::size_t>(numel) * sizeof(float));
    return img;
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool shape_matches(const Tensor& t, const Reader::TensorImage& img) {
  if (static_cast<std::size_t>(t.shape().rank()) != img.dims.size()) {
    return false;
  }
  for (std::size_t i = 0; i < img.dims.size(); ++i) {
    if (t.dim(i) != img.dims[i]) return false;
  }
  return true;
}

void copy_into(Tensor& t, const Reader::TensorImage& img) {
  std::memcpy(t.data(), img.data.data(), img.data.size() * sizeof(float));
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(
    core::MoELayer& layer, const Adam& adam, const WorkloadGenerator& workload,
    const TrainerCheckpointState& state) {
  Writer w;
  // Section: model parameters (gating + experts, the layer's order).
  const auto params = layer.parameters();
  w.u64(params.size());
  for (const Tensor* t : params) w.tensor(*t);
  // Section: Adam (step count, momentum, variance — index-aligned).
  w.i64(adam.step_count());
  w.u64(adam.momentum().size());
  for (const Tensor& t : adam.momentum()) w.tensor(t);
  for (const Tensor& t : adam.variance()) w.tensor(t);
  // Section: workload generator (mt19937_64 stream as its text state).
  {
    std::ostringstream os;
    os << workload.rng().engine();
    w.str(os.str());
  }
  w.i64(workload.last_batch_tokens());
  // Section: trainer bookkeeping.
  w.i64(state.steps_run);
  w.u32(state.corrections_installed ? 1 : 0);
  w.f64(state.corrections.compute);
  w.f64(state.corrections.comm);
  w.f64(state.corrections.memcpy);
  for (double v : state.fit.simulated) w.f64(v);
  for (double v : state.fit.measured) w.f64(v);
  w.i64(state.fit.steps);
  // Section: granularity-searcher memory.
  w.u64(state.searcher.cache.size());
  for (const auto& [b, n] : state.searcher.cache) {
    w.i64(b);
    w.i64(n);
  }
  w.u64(state.searcher.ranges.size());
  for (const core::BatchRange& r : state.searcher.ranges) {
    w.i64(r.lower);
    w.i64(r.upper);
    w.i64(r.n);
  }

  std::vector<std::uint8_t> payload = w.take();
  Writer framed;
  framed.u64(kCheckpointMagic);
  framed.u32(kCheckpointVersion);
  framed.u64(payload.size());
  framed.u64(fnv1a64(payload.data(), payload.size()));
  framed.raw(payload.data(), payload.size());
  return framed.take();
}

TrainerCheckpointState apply_checkpoint(const std::vector<std::uint8_t>& bytes,
                                        core::MoELayer& layer, Adam& adam,
                                        WorkloadGenerator& workload) {
  Reader header(bytes.data(), bytes.size());
  MPIPE_CHECK(header.u64() == kCheckpointMagic, "not a checkpoint (magic)");
  const std::uint32_t version = header.u32();
  MPIPE_CHECK(version == kCheckpointVersion,
              "unsupported checkpoint version " + std::to_string(version));
  const std::uint64_t payload_bytes = header.u64();
  const std::uint64_t checksum = header.u64();
  constexpr std::size_t kHeader =
      sizeof(std::uint64_t) * 3 + sizeof(std::uint32_t);
  MPIPE_CHECK(bytes.size() == kHeader + payload_bytes,
              "checkpoint length mismatch");
  const std::uint8_t* payload = bytes.data() + kHeader;
  MPIPE_CHECK(fnv1a64(payload, payload_bytes) == checksum,
              "checkpoint checksum mismatch — refusing corrupt state");

  // Parse the whole payload into scratch images first; the live model is
  // only touched after every section validated (all-or-nothing restore).
  Reader r(payload, payload_bytes);
  const auto live_params = layer.parameters();
  const std::uint64_t param_count = r.u64();
  MPIPE_CHECK(param_count == live_params.size(),
              "checkpoint parameter count mismatch");
  std::vector<Reader::TensorImage> params;
  params.reserve(param_count);
  for (std::uint64_t i = 0; i < param_count; ++i) {
    params.push_back(r.tensor());
    MPIPE_CHECK(shape_matches(*live_params[i], params.back()),
                "checkpoint parameter shape mismatch at index " +
                    std::to_string(i));
  }
  const std::int64_t adam_t = r.i64();
  MPIPE_CHECK(adam_t >= 0, "checkpoint Adam step count negative");
  const std::uint64_t state_count = r.u64();
  MPIPE_CHECK(state_count == adam.momentum().size(),
              "checkpoint optimizer state count mismatch");
  std::vector<Reader::TensorImage> momentum, variance;
  for (std::uint64_t i = 0; i < state_count; ++i) {
    momentum.push_back(r.tensor());
    MPIPE_CHECK(shape_matches(adam.momentum()[i], momentum.back()),
                "checkpoint momentum shape mismatch");
  }
  for (std::uint64_t i = 0; i < state_count; ++i) {
    variance.push_back(r.tensor());
    MPIPE_CHECK(shape_matches(adam.variance()[i], variance.back()),
                "checkpoint variance shape mismatch");
  }
  const std::string rng_state = r.str();
  const std::int64_t last_tokens = r.i64();

  TrainerCheckpointState state;
  state.steps_run = r.i64();
  state.corrections_installed = r.u32() != 0;
  state.corrections.compute = r.f64();
  state.corrections.comm = r.f64();
  state.corrections.memcpy = r.f64();
  for (double& v : state.fit.simulated) v = r.f64();
  for (double& v : state.fit.measured) v = r.f64();
  state.fit.steps = static_cast<int>(r.i64());
  const std::uint64_t cache_n = r.u64();
  for (std::uint64_t i = 0; i < cache_n; ++i) {
    const std::int64_t b = r.i64();
    const std::int64_t n = r.i64();
    state.searcher.cache.emplace_back(b, static_cast<int>(n));
  }
  const std::uint64_t range_n = r.u64();
  for (std::uint64_t i = 0; i < range_n; ++i) {
    core::BatchRange range;
    range.lower = r.i64();
    range.upper = r.i64();
    range.n = static_cast<int>(r.i64());
    state.searcher.ranges.push_back(range);
  }
  MPIPE_CHECK(r.exhausted(), "checkpoint has trailing bytes");

  // Validate the RNG stream parses before committing anything.
  std::mt19937_64 engine;
  {
    std::istringstream is(rng_state);
    is >> engine;
    MPIPE_CHECK(!is.fail(), "checkpoint RNG state unparsable");
  }

  // Commit: element-wise copies into the pointer-bound live storage.
  for (std::uint64_t i = 0; i < param_count; ++i) {
    copy_into(*live_params[i], params[i]);
  }
  adam.set_step_count(adam_t);
  for (std::uint64_t i = 0; i < state_count; ++i) {
    copy_into(adam.momentum()[i], momentum[i]);
    copy_into(adam.variance()[i], variance[i]);
  }
  Rng rng;
  rng.engine() = engine;
  workload.set_rng(rng);
  workload.set_last_batch_tokens(last_tokens);
  return state;
}

void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MPIPE_CHECK(static_cast<bool>(out), "cannot open checkpoint for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  MPIPE_CHECK(static_cast<bool>(out), "checkpoint write failed: " + path);
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MPIPE_CHECK(static_cast<bool>(in), "cannot open checkpoint: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  MPIPE_CHECK(static_cast<bool>(in), "checkpoint read failed: " + path);
  return bytes;
}

}  // namespace mpipe::runtime
