#include "runtime/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace mpipe::runtime {

void TrainingMetrics::record_step(double loss,
                                  const core::StepReport& report) {
  losses_.push_back(loss);
  step_seconds_.push_back(report.step_seconds());
  if (report.profiled) {
    measured_step_seconds_.push_back(report.measured_step_seconds());
  }
  utilizations_.push_back(report.mean_gpu_utilization);
  peak_memory_ = std::max(peak_memory_, report.memory.total_peak);
}

void TrainingMetrics::truncate_steps(std::size_t n) {
  MPIPE_EXPECTS(n <= losses_.size(), "truncating past the recorded steps");
  losses_.resize(n);
  step_seconds_.resize(n);
  utilizations_.resize(n);
}

double TrainingMetrics::mean_measured_step_seconds() const {
  MPIPE_EXPECTS(!measured_step_seconds_.empty(), "no profiled steps");
  double acc = 0.0;
  for (double s : measured_step_seconds_) acc += s;
  return acc / static_cast<double>(measured_step_seconds_.size());
}

double TrainingMetrics::first_loss() const {
  MPIPE_EXPECTS(!losses_.empty(), "no steps recorded");
  return losses_.front();
}

double TrainingMetrics::last_loss() const {
  MPIPE_EXPECTS(!losses_.empty(), "no steps recorded");
  return losses_.back();
}

double TrainingMetrics::mean_step_seconds(std::size_t warmup) const {
  MPIPE_EXPECTS(step_seconds_.size() > warmup, "not enough steps");
  double acc = 0.0;
  for (std::size_t i = warmup; i < step_seconds_.size(); ++i) {
    acc += step_seconds_[i];
  }
  return acc / static_cast<double>(step_seconds_.size() - warmup);
}

double TrainingMetrics::mean_gpu_utilization() const {
  MPIPE_EXPECTS(!utilizations_.empty(), "no steps recorded");
  double acc = 0.0;
  for (double u : utilizations_) acc += u;
  return acc / static_cast<double>(utilizations_.size());
}

std::string TrainingMetrics::summary() const {
  std::ostringstream os;
  os << steps() << " steps, loss " << first_loss() << " -> " << last_loss()
     << ", mean step " << mpipe::to_ms(mean_step_seconds()) << " ms"
     << ", peak mem " << mpipe::mib(static_cast<double>(peak_memory_))
     << " MiB, util " << mean_gpu_utilization() * 100.0 << "%";
  return os.str();
}

}  // namespace mpipe::runtime
