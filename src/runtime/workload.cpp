#include "runtime/workload.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/random_init.h"

namespace mpipe::runtime {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options), rng_(options.seed) {
  MPIPE_EXPECTS(options_.tokens_per_device > 0, "empty workload");
  MPIPE_EXPECTS(options_.num_devices > 0, "no devices");
  MPIPE_EXPECTS(options_.batch_jitter >= 0.0 && options_.batch_jitter < 1.0,
                "jitter must be in [0, 1)");
}

std::vector<Tensor> WorkloadGenerator::next_batch() {
  std::int64_t tokens = options_.tokens_per_device;
  if (options_.batch_jitter > 0.0) {
    const double lo = static_cast<double>(tokens) *
                      (1.0 - options_.batch_jitter);
    const double hi = static_cast<double>(tokens) *
                      (1.0 + options_.batch_jitter);
    tokens = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(rng_.uniform(lo, hi)));
  }
  last_tokens_ = tokens;
  std::vector<Tensor> batch;
  batch.reserve(static_cast<std::size_t>(options_.num_devices));
  for (int d = 0; d < options_.num_devices; ++d) {
    batch.push_back(random_tokens(tokens, options_.d_model, rng_));
  }
  return batch;
}

std::vector<Tensor> WorkloadGenerator::targets_for(
    const std::vector<Tensor>& batch) {
  std::vector<Tensor> targets;
  targets.reserve(batch.size());
  for (const Tensor& x : batch) {
    // A smooth deterministic function of the input keeps the regression
    // learnable: target = 0.5 * x (the layer must learn a contraction).
    Tensor t = x.clone();
    float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) p[i] *= 0.5f;
    targets.push_back(std::move(t));
  }
  return targets;
}

std::vector<std::int64_t> batch_size_trace(std::int64_t lo, std::int64_t hi,
                                           int steps, int buckets,
                                           std::uint64_t seed) {
  MPIPE_EXPECTS(lo >= 1 && hi >= lo, "bad batch range");
  MPIPE_EXPECTS(steps >= 1 && buckets >= 1, "bad trace arguments");
  Rng rng(seed);
  std::vector<std::int64_t> bucket_values;
  bucket_values.reserve(static_cast<std::size_t>(buckets));
  for (int i = 0; i < buckets; ++i) {
    bucket_values.push_back(
        lo + static_cast<std::int64_t>(rng.uniform_index(
                 static_cast<std::uint64_t>(hi - lo + 1))));
  }
  std::vector<std::int64_t> trace;
  trace.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    trace.push_back(bucket_values[rng.uniform_index(bucket_values.size())]);
  }
  return trace;
}

}  // namespace mpipe::runtime
