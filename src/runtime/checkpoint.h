#pragma once
/// \file checkpoint.h
/// Step-level checkpoint/restore for the training runtime: versioned,
/// checksummed binary serialization of everything a bitwise-identical
/// resume needs — model weights, Adam state (tensors + bias-correction
/// step), the workload generator's RNG stream, the trainer's correction
/// state, and the granularity searcher's cache/ranges (Algorithm 1's
/// verdicts are history-dependent, and the partition count changes the
/// step math bitwise, so the searcher's memory is training state).
///
/// Format (little-endian, fp32 tensors raw):
///   u64 magic 'MPMOECK1'   u32 version   u64 payload_bytes
///   u64 fnv1a64(payload)   payload...
/// Readers validate magic, version, length, and checksum before touching
/// any section and throw CheckError on mismatch — a corrupt checkpoint is
/// fatal, never silently partially applied: decoding happens into a
/// scratch image first, the live model is only written once the whole
/// payload parsed (all-or-nothing restore).
///
/// The same byte image serves both the on-disk save/restore API and the
/// trainer's in-memory rollback snapshots (one serializer, one format).

#include <cstdint>
#include <string>
#include <vector>

#include "core/moe_layer.h"
#include "runtime/adam.h"
#include "runtime/workload.h"
#include "sim/profile.h"

namespace mpipe::runtime {

inline constexpr std::uint64_t kCheckpointMagic = 0x314b43454f4d504dull;
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// FNV-1a 64-bit over a byte range — the checkpoint payload checksum.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// Trainer bookkeeping that rides along with the tensor state.
struct TrainerCheckpointState {
  std::int64_t steps_run = 0;
  bool corrections_installed = false;
  sim::OpClassCorrections corrections;
  sim::CorrectionFit::State fit;
  core::GranularitySearcher::State searcher;
};

/// Serializes the full training state into one framed, checksummed image.
/// (`layer` is non-const only because parameters() is.)
std::vector<std::uint8_t> encode_checkpoint(core::MoELayer& layer,
                                            const Adam& adam,
                                            const WorkloadGenerator& workload,
                                            const TrainerCheckpointState& state);

/// Validates the frame and applies the image: parameters, Adam tensors and
/// step count are copied element-wise into the existing (pointer-bound)
/// storage, the workload RNG stream is restored, and the trainer section
/// is returned for the caller to re-install (corrections before searcher
/// state — installing corrections flushes the searcher). Throws CheckError
/// on any frame, checksum, or shape mismatch, leaving the model untouched.
TrainerCheckpointState apply_checkpoint(const std::vector<std::uint8_t>& bytes,
                                        core::MoELayer& layer, Adam& adam,
                                        WorkloadGenerator& workload);

void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> read_checkpoint_file(const std::string& path);

}  // namespace mpipe::runtime
