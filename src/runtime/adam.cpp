#include "runtime/adam.h"

#include <cmath>

#include "common/check.h"

namespace mpipe::runtime {

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
           AdamOptions options)
    : params_(std::move(params)), grads_(std::move(grads)),
      options_(options) {
  MPIPE_EXPECTS(params_.size() == grads_.size(),
                "parameter/gradient count mismatch");
  MPIPE_EXPECTS(options_.lr > 0, "non-positive learning rate");
  momentum_.reserve(params_.size());
  variance_.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    MPIPE_EXPECTS(params_[i] != nullptr && grads_[i] != nullptr,
                  "null parameter binding");
    MPIPE_EXPECTS(params_[i]->shape() == grads_[i]->shape(),
                  "parameter/gradient shape mismatch");
    momentum_.emplace_back(params_[i]->shape());
    variance_.emplace_back(params_[i]->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    float* m = momentum_[i].data();
    float* v = variance_[i].data();
    const std::int64_t n = params_[i]->numel();
    for (std::int64_t k = 0; k < n; ++k) {
      float grad = g[k] + options_.weight_decay * p[k];
      m[k] = options_.beta1 * m[k] + (1.0f - options_.beta1) * grad;
      v[k] = options_.beta2 * v[k] + (1.0f - options_.beta2) * grad * grad;
      const float m_hat = m[k] / bc1;
      const float v_hat = v[k] / bc2;
      p[k] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Tensor* g : grads_) g->zero();
}

std::uint64_t Adam::state_bytes() const {
  std::uint64_t bytes = 0;
  for (const Tensor& m : momentum_) bytes += m.nbytes();
  for (const Tensor& v : variance_) bytes += v.nbytes();
  return bytes;
}

}  // namespace mpipe::runtime
