#include "runtime/adam.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace mpipe::runtime {

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
           AdamOptions options)
    : params_(std::move(params)), grads_(std::move(grads)),
      options_(options) {
  MPIPE_EXPECTS(params_.size() == grads_.size(),
                "parameter/gradient count mismatch");
  MPIPE_EXPECTS(options_.lr > 0, "non-positive learning rate");
  momentum_.reserve(params_.size());
  variance_.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    MPIPE_EXPECTS(params_[i] != nullptr && grads_[i] != nullptr,
                  "null parameter binding");
    MPIPE_EXPECTS(params_[i]->shape() == grads_[i]->shape(),
                  "parameter/gradient shape mismatch");
    momentum_.emplace_back(params_[i]->shape());
    variance_.emplace_back(params_[i]->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float lr = options_.lr;
  const float eps = options_.eps;
  const float wd = options_.weight_decay;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    float* m = momentum_[i].data();
    float* v = variance_[i].data();
    const std::int64_t n = params_[i]->numel();
    // The update is elementwise (no cross-element accumulation), so any
    // chunking across pool threads gives bit-identical results — provided
    // every element takes the same lane path regardless of chunk
    // boundaries. parallel_for chunks are multiples of `grain` (itself a
    // multiple of kLanes), so the scalar tail below is always the same
    // final n % kLanes elements no matter how many workers run.
    auto kernel = [&](std::size_t begin, std::size_t end) {
      std::int64_t k = static_cast<std::int64_t>(begin);
      const std::int64_t stop = static_cast<std::int64_t>(end);
#if defined(MPIPE_SIMD)
      const simd::VF b1v = simd::splat(b1);
      const simd::VF b2v = simd::splat(b2);
      const simd::VF omb1v = simd::splat(1.0f - b1);
      const simd::VF omb2v = simd::splat(1.0f - b2);
      const simd::VF bc1v = simd::splat(bc1);
      const simd::VF bc2v = simd::splat(bc2);
      const simd::VF lrv = simd::splat(lr);
      const simd::VF epsv = simd::splat(eps);
      const simd::VF wdv = simd::splat(wd);
      for (; k + simd::kLanes <= stop; k += simd::kLanes) {
        const simd::VF gv = simd::load(g + k) + wdv * simd::load(p + k);
        const simd::VF mv = b1v * simd::load(m + k) + omb1v * gv;
        const simd::VF vv = b2v * simd::load(v + k) + omb2v * gv * gv;
        simd::store(m + k, mv);
        simd::store(v + k, vv);
        const simd::VF m_hat = mv / bc1v;
        const simd::VF v_hat = vv / bc2v;
        simd::store(p + k, simd::load(p + k) -
                               lrv * m_hat / (simd::vsqrt(v_hat) + epsv));
      }
#endif
      for (; k < stop; ++k) {
        const float grad = g[k] + wd * p[k];
        m[k] = b1 * m[k] + (1.0f - b1) * grad;
        v[k] = b2 * v[k] + (1.0f - b2) * grad * grad;
        const float m_hat = m[k] / bc1;
        const float v_hat = v[k] / bc2;
        p[k] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    };
    ThreadPool::shared().parallel_for(static_cast<std::size_t>(n), kernel,
                                      /*grain=*/8192);
  }
}

void Adam::zero_grad() {
  for (Tensor* g : grads_) g->zero();
}

std::uint64_t Adam::state_bytes() const {
  std::uint64_t bytes = 0;
  for (const Tensor& m : momentum_) bytes += m.nbytes();
  for (const Tensor& v : variance_) bytes += v.nbytes();
  return bytes;
}

}  // namespace mpipe::runtime
