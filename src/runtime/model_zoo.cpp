#include "runtime/model_zoo.h"

namespace mpipe::runtime {

ModelSpec gpt_s() { return {"MoE-GPT3-S", 768, 3072, 64}; }
ModelSpec gpt_xl() { return {"MoE-GPT3-XL", 2048, 8192, 64}; }
ModelSpec bert_l() { return {"MoE-BERT-L", 1024, 4096, 64}; }

std::vector<ModelSpec> paper_models() {
  return {gpt_s(), bert_l(), gpt_xl()};
}

core::MoELayerOptions layer_options(const ModelSpec& spec) {
  core::MoELayerOptions o;
  o.d_model = spec.d_model;
  o.d_hidden = spec.d_hidden;
  o.num_experts = spec.num_experts;
  return o;
}

}  // namespace mpipe::runtime
