#pragma once
/// \file metrics.h
/// Per-run metric aggregation: step times, losses, memory peaks — the raw
/// material of every bench table.

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/pipeline_executor.h"

namespace mpipe::runtime {

class TrainingMetrics {
 public:
  void record_step(double loss, const core::StepReport& report);

  std::size_t steps() const { return losses_.size(); }
  const std::vector<double>& losses() const { return losses_; }
  double first_loss() const;
  double last_loss() const;
  /// Mean simulated step time over the recorded steps, optionally dropping
  /// the first `warmup` (the paper reports averaged training time).
  double mean_step_seconds(std::size_t warmup = 0) const;
  std::uint64_t peak_memory_bytes() const { return peak_memory_; }
  double mean_gpu_utilization() const;

  /// Measured wall-clock makespans of the steps that ran profiled (empty
  /// when profiling never ran) — the measured half of the
  /// measured-vs-modeled pair mean_step_seconds() models.
  const std::vector<double>& measured_step_seconds() const {
    return measured_step_seconds_;
  }
  double mean_measured_step_seconds() const;

  std::string summary() const;

 private:
  std::vector<double> losses_;
  std::vector<double> step_seconds_;
  std::vector<double> measured_step_seconds_;
  std::vector<double> utilizations_;
  std::uint64_t peak_memory_ = 0;
};

}  // namespace mpipe::runtime
