#pragma once
/// \file metrics.h
/// Per-run metric aggregation: step times, losses, memory peaks — the raw
/// material of every bench table.

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/pipeline_executor.h"

namespace mpipe::runtime {

/// Every recovery action the fault-tolerant runtime took, plus mirrors of
/// the injector's fault totals — so a run can be audited: "N faults were
/// injected, M retries and K rollbacks erased them". Never truncated by a
/// rollback (the history of recovery actions is itself the diagnostic).
struct RecoveryCounters {
  // Trainer-side actions (the degradation ladder).
  std::uint64_t transient_step_retries = 0;  ///< steps replayed in place
  std::uint64_t non_finite_steps = 0;        ///< numerics-guard trips
  std::uint64_t optimizer_steps_skipped = 0; ///< ladder rung 1
  std::uint64_t rollbacks = 0;               ///< ladder rung 2
  std::uint64_t checkpoints_taken = 0;       ///< in-memory auto-checkpoints
  std::uint64_t straggler_flags = 0;         ///< watchdog flags on committed steps
  // Injector-side totals (FaultInjector::stats mirrors).
  std::uint64_t comm_failures_injected = 0;
  std::uint64_t comm_retries = 0;
  std::uint64_t stragglers_injected = 0;
  std::uint64_t alloc_failures_injected = 0;
  std::uint64_t corruptions_injected = 0;
  std::uint64_t corruptions_detected = 0;  ///< payload-scan hits (scan_payloads)

  bool any_recovery() const {
    return transient_step_retries + non_finite_steps +
               optimizer_steps_skipped + rollbacks !=
           0;
  }
};

class TrainingMetrics {
 public:
  void record_step(double loss, const core::StepReport& report);

  std::size_t steps() const { return losses_.size(); }
  const std::vector<double>& losses() const { return losses_; }
  double first_loss() const;
  double last_loss() const;
  /// Mean simulated step time over the recorded steps, optionally dropping
  /// the first `warmup` (the paper reports averaged training time).
  double mean_step_seconds(std::size_t warmup = 0) const;
  std::uint64_t peak_memory_bytes() const { return peak_memory_; }
  double mean_gpu_utilization() const;

  /// Measured wall-clock makespans of the steps that ran profiled (empty
  /// when profiling never ran) — the measured half of the
  /// measured-vs-modeled pair mean_step_seconds() models.
  const std::vector<double>& measured_step_seconds() const {
    return measured_step_seconds_;
  }
  double mean_measured_step_seconds() const;

  std::string summary() const;

  RecoveryCounters& recovery() { return recovery_; }
  const RecoveryCounters& recovery() const { return recovery_; }

  /// Drops every per-step record after the first `n` committed steps — the
  /// metrics half of a checkpoint rollback, so replayed steps are not
  /// double-counted. Recovery counters, the memory peak, and measured
  /// wall-clock makespans are deliberately kept: they are run history
  /// (what actually happened on this machine), not step state.
  void truncate_steps(std::size_t n);

 private:
  std::vector<double> losses_;
  std::vector<double> step_seconds_;
  std::vector<double> measured_step_seconds_;
  std::vector<double> utilizations_;
  std::uint64_t peak_memory_ = 0;
  RecoveryCounters recovery_;
};

}  // namespace mpipe::runtime
