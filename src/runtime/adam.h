#pragma once
/// \file adam.h
/// Adam optimizer (Kingma & Ba) — the paper's default optimizer, and the
/// reason model states cost 4× the parameter bytes (params, grads,
/// momentum, variance).

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mpipe::runtime {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  /// Binds to parameter/gradient pairs (index-aligned, stable addresses).
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
       AdamOptions options = {});

  /// One update step with bias correction. The elementwise kernel is
  /// 8-lane vectorized (tensor/simd.h) and fans out over the shared
  /// ThreadPool; lane paths are pinned to absolute element positions, so
  /// results are bit-identical for any pool size (locked in by the
  /// determinism tests in tests/test_runtime.cpp).
  void step();

  /// Zeroes all bound gradients.
  void zero_grad();

  std::int64_t step_count() const { return t_; }
  const AdamOptions& options() const { return options_; }

  /// Total optimizer-state bytes (momentum + variance).
  std::uint64_t state_bytes() const;

  /// Optimizer-state access for checkpoint/restore. The vectors are
  /// index-aligned with the bound parameters; restore must preserve both
  /// the tensors and the bias-correction step count or resumed updates
  /// diverge.
  const std::vector<Tensor>& momentum() const { return momentum_; }
  const std::vector<Tensor>& variance() const { return variance_; }
  std::vector<Tensor>& momentum() { return momentum_; }
  std::vector<Tensor>& variance() { return variance_; }
  void set_step_count(std::int64_t t) { t_ = t; }

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  std::vector<Tensor> momentum_;
  std::vector<Tensor> variance_;
  AdamOptions options_;
  std::int64_t t_ = 0;
};

}  // namespace mpipe::runtime
