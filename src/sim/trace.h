#pragma once
/// \file trace.h
/// Chrome-trace (chrome://tracing, Perfetto) export of a timed schedule —
/// each device stream becomes a track, each op a complete event. Useful for
/// eyeballing pipeline overlap exactly like the paper's Fig 7 timelines.

#include <string>

#include "sim/op_graph.h"
#include "sim/profile.h"
#include "sim/timing_engine.h"

namespace mpipe::sim {

/// Serialises the schedule as Chrome trace JSON.
std::string to_chrome_trace(const OpGraph& graph, const TimingResult& timing);

/// Measured-vs-simulated variant: the profiled wall-clock timeline and the
/// simulated schedule side by side — measured events on tid 0..2, the
/// simulated twins with a "sim:" name prefix on tid 3..5, one pid per
/// device. Eyeball where the model and the wall clock disagree.
std::string to_chrome_trace(const OpGraph& graph, const TimingResult& timing,
                            const MeasuredTimeline& measured);

/// Writes the trace to a file; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const OpGraph& graph,
                        const TimingResult& timing);

/// Renders a coarse ASCII timeline (one row per device stream) — handy in
/// examples and debugging without leaving the terminal.
std::string ascii_timeline(const OpGraph& graph, const TimingResult& timing,
                           int width = 100);

}  // namespace mpipe::sim
