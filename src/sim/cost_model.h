#pragma once
/// \file cost_model.h
/// Converts operation descriptions (FLOPs, bytes, participants) into
/// base durations at full stream speed. Interference is applied later by
/// the timing engine; this model captures launch latency, link bandwidth
/// and the GEMM-efficiency curve (small micro-batches underutilise the
/// device — the effect behind Fig 2's utilisation track and the n-too-large
/// penalty in Fig 12).

#include <cstdint>
#include <vector>

#include "sim/topology.h"

namespace mpipe::sim {

/// Piecewise-linear measured GEMM efficiency, rows -> efficiency in
/// (0, 1]. Fitted from real kernel timings (see sim/calibration.h and
/// bench/calibrate_cost_model); an empty curve means "use the analytic
/// saturation formula". Knots must keep rows/efficiency non-decreasing so
/// predicted GEMM time never shrinks as the panel grows — fit functions
/// enforce this, validate() rejects hand-built curves that don't.
struct GemmEfficiencyCurve {
  std::vector<std::int64_t> rows;  ///< strictly ascending knot positions
  std::vector<double> efficiency;  ///< same length, each in (0, 1]

  bool empty() const { return rows.empty(); }
  std::int64_t min_rows() const;
  std::int64_t max_rows() const;

  /// Piecewise-linear interpolation, clamped to the end knots.
  double eval(std::int64_t r) const;

  /// Structural checks (ascending rows, efficiency range, monotone
  /// rows/efficiency ratio). Throws CheckError with a clear message.
  void validate() const;

  /// Throws CheckError unless the knots span [lo, hi] — call this at
  /// calibration-load time with the micro-batch row range the granularity
  /// search will probe, so a stale or truncated curve fails loudly
  /// instead of silently extrapolating.
  void validate_covers(std::int64_t lo, std::int64_t hi) const;
};

struct CostModelConfig {
  /// Peak dense throughput of one device (FLOP/s). A100 TF32 ≈ 156 TFLOPS;
  /// the paper uses Tensor Cores, absolute scale cancels out in speedups.
  double peak_flops = 156.0e12;
  /// GEMM efficiency saturation: eff(rows) = rows / (rows + half_sat_rows).
  double gemm_half_sat_rows = 384.0;
  /// Upper bound on achievable efficiency.
  double gemm_max_efficiency = 0.92;
  /// Per-kernel fixed overhead (s) for compute kernels.
  double compute_launch_latency = 8.0e-6;
  /// Per-collective fixed overhead (s), charged per NCCL call.
  double comm_launch_latency = 14.0e-6;
  /// Per-P2P-transfer overhead (s); lower than a collective launch because
  /// NCCL P2P channels stay connected.
  double p2p_launch_latency = 5.0e-6;
  /// Per-memcpy fixed overhead (s).
  double memcpy_launch_latency = 6.0e-6;
  /// Measured GEMM efficiency curve; when non-empty it replaces the
  /// analytic eff(rows) formula above. Load via sim::apply_calibration so
  /// coverage of the probed row range is asserted up front.
  GemmEfficiencyCurve gemm_curve;
};

class CostModel {
 public:
  CostModel(CostModelConfig config, Topology topology);

  /// GEMM efficiency in (0, 1] as a function of the M dimension (rows of
  /// the activation panel).
  double gemm_efficiency(std::int64_t rows) const;

  /// Duration of a GEMM with the given FLOP count and row panel size.
  double gemm_seconds(std::uint64_t flops, std::int64_t rows) const;

  /// Duration of a fused AllToAll where every participant holds
  /// `bytes_per_device` and exchanges all but its own 1/P share.
  double alltoall_seconds(std::uint64_t bytes_per_device,
                          const std::vector<int>& group) const;

  /// Duration of a point-to-point transfer.
  double p2p_seconds(std::uint64_t bytes, int src, int dst) const;

  /// Duration of a device<->host copy over PCIe.
  double memcpy_seconds(std::uint64_t bytes, int device) const;

  /// Ring AllReduce over `group`, 2*(P-1)/P traffic factor.
  double allreduce_seconds(std::uint64_t bytes_per_device,
                           const std::vector<int>& group) const;

  /// Broadcast (pipelined ring) of `bytes` from root to group.
  double broadcast_seconds(std::uint64_t bytes,
                           const std::vector<int>& group) const;

  const Topology& topology() const { return topology_; }
  const CostModelConfig& config() const { return config_; }

 private:
  CostModelConfig config_;
  Topology topology_;
};

}  // namespace mpipe::sim
