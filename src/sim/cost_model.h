#pragma once
/// \file cost_model.h
/// Converts operation descriptions (FLOPs, bytes, participants) into
/// base durations at full stream speed. Interference is applied later by
/// the timing engine; this model captures launch latency, link bandwidth
/// and the GEMM-efficiency curve (small micro-batches underutilise the
/// device — the effect behind Fig 2's utilisation track and the n-too-large
/// penalty in Fig 12).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/topology.h"
#include "tensor/dtype.h"

namespace mpipe::sim {

/// Running tally of payloads that consulted a CommBandwidthCurve outside
/// its measured knot span and were clamped to an end knot. Below-range
/// clamps matter most: a serving workload batching a handful of tokens
/// produces AllToAll payloads smaller than anything the calibration sweep
/// measured, and before these counters existed that extrapolation was
/// silent (the value is still the front knot's efficiency — the counters
/// only make the event observable). Shared by every copy of the curve via
/// shared_ptr, so counts survive the config copies taken by CostModel and
/// Cluster; increments are relaxed atomics (hot path, order irrelevant).
struct CommClampStats {
  std::atomic<std::uint64_t> below{0};  ///< payload < front knot
  std::atomic<std::uint64_t> above{0};  ///< payload > back knot

  std::uint64_t total() const {
    return below.load(std::memory_order_relaxed) +
           above.load(std::memory_order_relaxed);
  }
};

/// Piecewise-linear measured GEMM efficiency, rows -> efficiency in
/// (0, 1]. Fitted from real kernel timings (see sim/calibration.h and
/// bench/calibrate_cost_model); an empty curve means "use the analytic
/// saturation formula". Knots must keep rows/efficiency non-decreasing so
/// predicted GEMM time never shrinks as the panel grows — fit functions
/// enforce this, validate() rejects hand-built curves that don't.
struct GemmEfficiencyCurve {
  std::vector<std::int64_t> rows;  ///< strictly ascending knot positions
  std::vector<double> efficiency;  ///< same length, each in (0, 1]

  bool empty() const { return rows.empty(); }
  std::int64_t min_rows() const;
  std::int64_t max_rows() const;

  /// Piecewise-linear interpolation, clamped to the end knots.
  double eval(std::int64_t r) const;

  /// Structural checks (ascending rows, efficiency range, monotone
  /// rows/efficiency ratio). Throws CheckError with a clear message.
  void validate() const;

  /// Throws CheckError unless the knots span [lo, hi] — call this at
  /// calibration-load time with the micro-batch row range the granularity
  /// search will probe, so a stale or truncated curve fails loudly
  /// instead of silently extrapolating.
  void validate_covers(std::int64_t lo, std::int64_t hi) const;
};

/// Piecewise-linear measured AllToAll exchange time, payload bytes (what
/// the busiest participant sends) -> seconds on the calibration host.
/// Fitted from real apply_segments exchanges (see sim/calibration.h and
/// bench/calibrate_comm); an empty curve means "use the analytic
/// latency + bandwidth formula". Knots must keep seconds non-decreasing
/// in bytes so a bigger exchange never predicts faster — fit functions
/// enforce this, validate() rejects hand-built curves that don't.
///
/// The curve is consulted as a *shape*, not an absolute time: the best
/// knot rate (bytes/seconds) defines the calibration host's achievable
/// peak, and alltoall_seconds scales the topology's link bandwidth by
/// efficiency_at(payload) = (payload / eval(payload)) / peak_rate — the
/// same scale-free treatment GemmEfficiencyCurve gets against peak_flops.
struct CommBandwidthCurve {
  std::vector<std::uint64_t> bytes;  ///< strictly ascending knot payloads
  std::vector<double> seconds;       ///< same length, positive, non-decreasing

  bool empty() const { return bytes.empty(); }
  std::uint64_t min_bytes() const;
  std::uint64_t max_bytes() const;

  /// Piecewise-linear interpolation of seconds, clamped to the end knots.
  double eval(std::uint64_t b) const;

  /// Best measured rate over the knots (bytes/s). The per-segment rate of
  /// a monotone piecewise-linear seconds curve peaks at a knot, so this is
  /// the curve-wide peak.
  double peak_rate() const;

  /// Achieved fraction of peak_rate() at `b`, in (0, 1]. Payloads outside
  /// the knot span clamp to the end knots' efficiency, which extrapolates
  /// predicted seconds linearly at the end-segment average rate — and
  /// count a clamp event in `clamps` so running off the measured sweep is
  /// observable (see CommClampStats). The two-arg form takes a precomputed
  /// peak_rate() so hot callers skip the per-call knot scan.
  double efficiency_at(std::uint64_t b) const;
  double efficiency_at(std::uint64_t b, double peak) const;

  /// Clamp-event counters, shared across copies of this curve (CostModel
  /// and Cluster copy their configs; the counts must not fork with them).
  std::shared_ptr<CommClampStats> clamps = std::make_shared<CommClampStats>();

  /// Structural checks (ascending bytes, positive non-decreasing seconds).
  /// Throws CheckError with a clear message.
  void validate() const;

  /// Throws CheckError unless the knots span [lo, hi] — call this at
  /// calibration-load time with the AllToAll payload range the granularity
  /// search will probe (GranularitySearcher::alltoall_payload_range), so a
  /// stale or truncated sweep fails loudly instead of silently
  /// extrapolating.
  void validate_covers(std::uint64_t lo, std::uint64_t hi) const;
};

struct CostModelConfig {
  /// Peak dense throughput of one device (FLOP/s). A100 TF32 ≈ 156 TFLOPS;
  /// the paper uses Tensor Cores, absolute scale cancels out in speedups.
  double peak_flops = 156.0e12;
  /// GEMM efficiency saturation: eff(rows) = rows / (rows + half_sat_rows).
  double gemm_half_sat_rows = 384.0;
  /// Upper bound on achievable efficiency.
  double gemm_max_efficiency = 0.92;
  /// Per-kernel fixed overhead (s) for compute kernels.
  double compute_launch_latency = 8.0e-6;
  /// Per-collective fixed overhead (s), charged per NCCL call.
  double comm_launch_latency = 14.0e-6;
  /// Per-P2P-transfer overhead (s); lower than a collective launch because
  /// NCCL P2P channels stay connected.
  double p2p_launch_latency = 5.0e-6;
  /// Per-memcpy fixed overhead (s).
  double memcpy_launch_latency = 6.0e-6;
  /// Measured GEMM efficiency curve; when non-empty it replaces the
  /// analytic eff(rows) formula above. Load via sim::apply_calibration so
  /// coverage of the probed row range is asserted up front.
  GemmEfficiencyCurve gemm_curve;
  /// Measured AllToAll bandwidth curve; when non-empty, alltoall_seconds
  /// scales the topology link bandwidth by its payload-dependent
  /// efficiency instead of assuming the link saturates at every size.
  /// Load via sim::apply_comm_calibration so coverage of the probed
  /// payload range is asserted up front.
  CommBandwidthCurve comm_curve;

  /// Optional per-dtype overrides for the mixed-precision expert path
  /// (MoELayerOptions::compute_dtype): bf16/int8 GEMM panels and AllToAll
  /// payloads consult their own measured curves when loaded
  /// (CALIBRATION_gemm_bf16.csv / CALIBRATION_alltoall_bf16.csv, …) and
  /// fall back to the shared curves above otherwise — reduced-dtype
  /// payloads are just fewer bytes down the same link until a
  /// dtype-specific sweep says otherwise. Select via *_curve_for.
  GemmEfficiencyCurve gemm_curve_bf16, gemm_curve_i8;
  CommBandwidthCurve comm_curve_bf16, comm_curve_i8;

  const GemmEfficiencyCurve& gemm_curve_for(DType dtype) const;
  const CommBandwidthCurve& comm_curve_for(DType dtype) const;
};

class CostModel {
 public:
  CostModel(CostModelConfig config, Topology topology);

  /// GEMM efficiency in (0, 1] as a function of the M dimension (rows of
  /// the activation panel). `dtype` selects a per-dtype measured curve
  /// when one is loaded; otherwise the shared curve / analytic formula.
  double gemm_efficiency(std::int64_t rows, DType dtype = DType::kF32) const;

  /// Duration of a GEMM with the given FLOP count and row panel size.
  double gemm_seconds(std::uint64_t flops, std::int64_t rows,
                      DType dtype = DType::kF32) const;

  /// Duration of a fused AllToAll where every participant holds
  /// `bytes_per_device` and exchanges all but its own 1/P share. `dtype`
  /// is the wire format the bytes were counted in — it selects the
  /// matching calibrated curve (or the shared one as fallback).
  double alltoall_seconds(std::uint64_t bytes_per_device,
                          const std::vector<int>& group,
                          DType dtype = DType::kF32) const;

  /// Duration of a point-to-point transfer.
  double p2p_seconds(std::uint64_t bytes, int src, int dst) const;

  /// Duration of a device<->host copy over PCIe.
  double memcpy_seconds(std::uint64_t bytes, int device) const;

  /// Ring AllReduce over `group`, 2*(P-1)/P traffic factor.
  double allreduce_seconds(std::uint64_t bytes_per_device,
                           const std::vector<int>& group) const;

  /// Broadcast (pipelined ring) of `bytes` from root to group.
  double broadcast_seconds(std::uint64_t bytes,
                           const std::vector<int>& group) const;

  const Topology& topology() const { return topology_; }
  const CostModelConfig& config() const { return config_; }

 private:
  CostModelConfig config_;
  Topology topology_;
  /// peak_rate() of the calibrated comm curve each dtype resolves to,
  /// computed once at construction (0 when no curve is loaded) —
  /// alltoall_seconds sits in the granularity search's trial loop.
  /// Indexed by DType's underlying value.
  double comm_peak_rate_[3] = {0.0, 0.0, 0.0};
};

}  // namespace mpipe::sim
