#include "sim/graph_executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace mpipe::sim {

namespace {

/// Shared state of one parallel graph run. Ready ops are handed out from a
/// mutex-guarded deque (ops are coarse — GEMMs, collectives — so queue
/// contention is negligible next to op bodies); dependency counts are
/// atomics so completions from different workers never serialise on the
/// lock while propagating.
struct ExecState {
  const OpGraph* graph = nullptr;
  std::vector<std::vector<int>> succ;
  std::vector<std::atomic<int>> pending;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  int done = 0;
  int total = 0;
  std::atomic<bool> cancelled{false};
  std::once_flag error_once;
  std::exception_ptr error;
  /// Profile sink; null when profiling is off. Recording is a store into
  /// the op's own pre-sized slot, so concurrent drains never contend.
  ExecutionProfile* profile = nullptr;

  explicit ExecState(int n) : pending(static_cast<std::size_t>(n)) {}

  /// Runs ops until every op in the graph has completed. Any thread may
  /// drain; all of them exit once `done == total`. `worker` is the drain
  /// loop's identity for the profile (0 = caller, 1..k = pool helpers).
  void drain(int worker) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return !ready.empty() || done == total; });
      if (ready.empty()) return;  // done == total: nothing left to run
      const int id = ready.front();
      ready.pop_front();
      lock.unlock();

      const Op& op = graph->op(id);
      // After a failure the remaining ops are cancelled: their closures
      // are skipped but dependency counts still propagate, so the run
      // always terminates and can rethrow the first error. Cancelled ops
      // are not recorded — the profile shows what actually executed.
      if (!cancelled.load(std::memory_order_acquire)) {
        const std::int64_t start_ns =
            profile ? ExecutionProfile::now_ns() : 0;
        if (op.fn) {
          try {
            op.fn();
          } catch (...) {
            std::call_once(error_once,
                           [this] { error = std::current_exception(); });
            cancelled.store(true, std::memory_order_release);
          }
        }
        if (profile) {
          profile->record(id, worker, start_ns, ExecutionProfile::now_ns());
        }
      }

      std::vector<int> newly_ready;
      for (int next : succ[static_cast<std::size_t>(id)]) {
        if (pending[static_cast<std::size_t>(next)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          newly_ready.push_back(next);
        }
      }

      lock.lock();
      for (int next : newly_ready) ready.push_back(next);
      ++done;
      // Wake helpers for any extra ready ops, and everyone on completion.
      if (done == total || newly_ready.size() > 1) {
        cv.notify_all();
      } else if (newly_ready.size() == 1 && !ready.empty()) {
        cv.notify_one();
      }
    }
  }
};

std::string access_list(const std::vector<BufferAccess>& v) {
  std::ostringstream os;
  for (const BufferAccess& a : v) {
    os << " [" << a.id << " +" << a.begin << ".." << a.end << ")";
  }
  return os.str();
}

bool any_overlap(const std::vector<BufferAccess>& a,
                 const std::vector<BufferAccess>& b) {
  for (const BufferAccess& x : a) {
    for (const BufferAccess& y : b) {
      if (x.overlaps(y)) return true;
    }
  }
  return false;
}

}  // namespace

void run_graph_serial(const OpGraph& graph, ExecutionProfile* profile) {
  if (profile) profile->begin(graph.size());
  for (int id : graph.topo_order()) {
    const Op& op = graph.op(id);
    const std::int64_t start_ns = profile ? ExecutionProfile::now_ns() : 0;
    if (op.fn) op.fn();
    if (profile) {
      profile->record(id, /*worker=*/0, start_ns,
                      ExecutionProfile::now_ns());
    }
  }
}

void run_graph_parallel(const OpGraph& graph, ThreadPool& pool,
                        ExecutionProfile* profile) {
  const int total = graph.size();
  if (total == 0) {
    if (profile) profile->begin(0);
    return;
  }
  if (pool.in_worker() || pool.size() <= 1 || total == 1) {
    // From a pool worker, queueing sub-tasks the blocked parent waits on
    // could starve the pool; with one worker (or one op) there is nothing
    // to overlap. Degrade to the reference order — bitwise identical by
    // construction.
    run_graph_serial(graph, profile);
    return;
  }

  auto state = std::make_shared<ExecState>(total);
  state->graph = &graph;
  OpGraph::DependencyView view = graph.dependency_view();
  state->succ = std::move(view.successors);
  state->total = total;
  if (profile) {
    profile->begin(total);
    state->profile = profile;
  }
  for (int id = 0; id < total; ++id) {
    state->pending[static_cast<std::size_t>(id)].store(
        view.in_degree[static_cast<std::size_t>(id)],
        std::memory_order_relaxed);
    if (view.in_degree[static_cast<std::size_t>(id)] == 0) {
      state->ready.push_back(id);
    }
  }
  MPIPE_CHECK(!state->ready.empty(),
              "op graph has no source op (cycle?) — validate() first");

  const std::size_t helpers =
      std::min(pool.size(), static_cast<std::size_t>(total) - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    const int worker = static_cast<int>(h) + 1;
    pool.post([state, worker] { state->drain(worker); });
  }
  state->drain(/*worker=*/0);
  if (state->error) std::rethrow_exception(state->error);
}

void validate_hazards(const OpGraph& graph) {
  const int n = graph.size();
  std::vector<int> functional;
  for (const Op& op : graph.ops()) {
    if (op.fn) functional.push_back(op.id);
  }
  if (functional.size() <= 1) return;  // a lone closure cannot race

  // Reachability over explicit deps + stream FIFO edges, as one bitset row
  // per op, filled in topological order: reach[v] accumulates every
  // ancestor of v. topo_order() also proves acyclicity first.
  const std::vector<int> order = graph.topo_order();
  const OpGraph::DependencyView view = graph.dependency_view();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> reach(static_cast<std::size_t>(n) * words, 0);
  for (int u : order) {
    const std::uint64_t* ru = &reach[static_cast<std::size_t>(u) * words];
    for (int v : view.successors[static_cast<std::size_t>(u)]) {
      std::uint64_t* rv = &reach[static_cast<std::size_t>(v) * words];
      for (std::size_t w = 0; w < words; ++w) rv[w] |= ru[w];
      rv[static_cast<std::size_t>(u) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(u) % 64);
    }
  }
  auto is_ancestor = [&](int a, int b) {
    return (reach[static_cast<std::size_t>(b) * words +
                  static_cast<std::size_t>(a) / 64] >>
            (static_cast<std::size_t>(a) % 64)) &
           1u;
  };

  for (std::size_t i = 0; i < functional.size(); ++i) {
    for (std::size_t j = i + 1; j < functional.size(); ++j) {
      const Op& a = graph.op(functional[i]);
      const Op& b = graph.op(functional[j]);
      if (is_ancestor(a.id, b.id) || is_ancestor(b.id, a.id)) continue;
      // a and b may run at the same time.
      for (const Op* op : {&a, &b}) {
        MPIPE_CHECK(!op->reads.empty() || !op->writes.empty(),
                    "hazard validation: op '" + op->label +
                        "' has a functional closure but declares no "
                        "read/write buffer accesses, and is unordered "
                        "against '" +
                        (op == &a ? b.label : a.label) +
                        "' — an undeclared closure cannot be proven safe "
                        "for concurrent execution");
      }
      const bool war_or_waw = any_overlap(a.writes, b.writes) ||
                              any_overlap(a.writes, b.reads) ||
                              any_overlap(b.writes, a.reads);
      MPIPE_CHECK(
          !war_or_waw,
          "hazard validation: ops '" + a.label + "' and '" + b.label +
              "' are unordered (no dependency path, different streams) but "
              "touch overlapping memory — a WAR/WAW/RAW edge is missing.\n  " +
              a.label + " writes:" + access_list(a.writes) + "\n  " +
              b.label + " writes:" + access_list(b.writes));
    }
  }
}

}  // namespace mpipe::sim
