#include "sim/profile.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace mpipe::sim {

void ExecutionProfile::begin(int num_ops) {
  MPIPE_EXPECTS(num_ops >= 0, "negative op count");
  samples_.assign(static_cast<std::size_t>(num_ops), OpSample{});
  origin_ns_ = now_ns();
}

void ExecutionProfile::record(int id, int worker, std::int64_t start_ns,
                              std::int64_t end_ns) {
  // Each op id is executed exactly once, so this slot is written by exactly
  // one thread; the executor's completion join publishes the stores.
  OpSample& s = samples_[static_cast<std::size_t>(id)];
  s.start_ns = start_ns - origin_ns_;
  s.end_ns = end_ns - origin_ns_;
  s.worker = worker;
}

const OpSample& ExecutionProfile::sample(int id) const {
  MPIPE_EXPECTS(id >= 0 && id < size(), "op id out of range");
  return samples_[static_cast<std::size_t>(id)];
}

std::int64_t ExecutionProfile::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MeasuredTimeline build_timeline(const OpGraph& graph,
                                const ExecutionProfile& profile,
                                int num_devices) {
  MPIPE_EXPECTS(profile.size() == graph.size(),
                "profile does not match graph");
  MPIPE_EXPECTS(num_devices > 0, "need at least one device");
  MeasuredTimeline tl;
  tl.ops.assign(static_cast<std::size_t>(graph.size()), MeasuredOp{});
  tl.stream_busy.assign(static_cast<std::size_t>(num_devices),
                        {0.0, 0.0, 0.0});
  if (graph.size() == 0) return tl;

  std::int64_t first_start = std::numeric_limits<std::int64_t>::max();
  std::int64_t last_end = std::numeric_limits<std::int64_t>::min();
  for (const OpSample& s : profile.samples()) {
    if (!s.recorded()) continue;
    MPIPE_CHECK(s.end_ns >= s.start_ns, "sample ends before it starts");
    first_start = std::min(first_start, s.start_ns);
    last_end = std::max(last_end, s.end_ns);
  }
  if (first_start > last_end) return tl;  // nothing recorded

  constexpr double kNsToS = 1e-9;
  for (const Op& op : graph.ops()) {
    const OpSample& s = profile.sample(op.id);
    if (!s.recorded()) continue;
    MeasuredOp& m = tl.ops[static_cast<std::size_t>(op.id)];
    m.id = op.id;
    m.start = static_cast<double>(s.start_ns - first_start) * kNsToS;
    m.end = static_cast<double>(s.end_ns - first_start) * kNsToS;
    m.worker = s.worker;
    for (int device : op.devices) {
      MPIPE_CHECK(device >= 0 && device < num_devices,
                  "op device out of range");
      tl.stream_busy[static_cast<std::size_t>(device)]
                    [static_cast<int>(op.stream)] += m.seconds();
    }
  }
  tl.makespan = static_cast<double>(last_end - first_start) * kNsToS;

  // Critical path: longest measured-duration chain through the dependency
  // graph (explicit deps + stream FIFO edges), over the recorded subgraph.
  // Processing in topological order makes each op's best predecessor final
  // before its successors look at it.
  const std::vector<int> order = graph.topo_order();
  const OpGraph::DependencyView view = graph.dependency_view();
  std::vector<double> path_cost(static_cast<std::size_t>(graph.size()), 0.0);
  std::vector<int> best_pred(static_cast<std::size_t>(graph.size()), -1);
  for (int u : order) {
    const MeasuredOp& m = tl.ops[static_cast<std::size_t>(u)];
    if (m.id >= 0) path_cost[static_cast<std::size_t>(u)] += m.seconds();
    for (int v : view.successors[static_cast<std::size_t>(u)]) {
      if (path_cost[static_cast<std::size_t>(u)] >
          path_cost[static_cast<std::size_t>(v)]) {
        path_cost[static_cast<std::size_t>(v)] =
            path_cost[static_cast<std::size_t>(u)];
        best_pred[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  int tail = -1;
  for (int id = 0; id < graph.size(); ++id) {
    const double total = path_cost[static_cast<std::size_t>(id)];
    if (tail < 0 || total > tl.critical_path_seconds) {
      // path_cost excludes the op's own duration only for sources that
      // were never recorded; the comparison still finds the heaviest
      // chain endpoint.
      tl.critical_path_seconds = total;
      tail = id;
    }
  }
  for (int id = tail; id >= 0; id = best_pred[static_cast<std::size_t>(id)]) {
    if (tl.ops[static_cast<std::size_t>(id)].id >= 0) {
      tl.critical_path.push_back(id);
    }
  }
  std::reverse(tl.critical_path.begin(), tl.critical_path.end());
  return tl;
}

std::string to_string(OpClass c) {
  switch (c) {
    case OpClass::kCompute: return "compute";
    case OpClass::kComm: return "comm";
    case OpClass::kMemcpy: return "memcpy";
    case OpClass::kHost: return "host";
  }
  return "?";
}

OpClass op_class(OpCategory category) {
  switch (category) {
    case OpCategory::kGemm:
    case OpCategory::kElementwise:
      return OpClass::kCompute;
    case OpCategory::kAllToAll:
    case OpCategory::kP2P:
    case OpCategory::kAllReduce:
    case OpCategory::kBroadcast:
      return OpClass::kComm;
    case OpCategory::kMemcpyD2H:
    case OpCategory::kMemcpyH2D:
      return OpClass::kMemcpy;
    case OpCategory::kHostCompute:
      return OpClass::kHost;
  }
  MPIPE_UNREACHABLE("unknown op category");
}

double ScheduleDiff::class_ratio(OpClass c) const {
  const double sim = simulated_class_seconds[static_cast<int>(c)];
  const double meas = measured_class_seconds[static_cast<int>(c)];
  if (sim <= 0.0 || meas <= 0.0) return 1.0;
  return meas / sim;
}

double ScheduleDiff::makespan_error() const {
  if (simulated_makespan <= 0.0) return 0.0;
  return (measured_makespan - simulated_makespan) / simulated_makespan;
}

std::string ScheduleDiff::summary() const {
  std::ostringstream os;
  os << "sim " << to_ms(simulated_makespan) << " ms, measured "
     << to_ms(measured_makespan) << " ms ("
     << (makespan_error() >= 0.0 ? "+" : "") << makespan_error() * 100.0
     << "%)";
  for (OpClass c :
       {OpClass::kCompute, OpClass::kComm, OpClass::kMemcpy}) {
    os << ", " << to_string(c) << " x" << class_ratio(c);
  }
  return os.str();
}

ScheduleDiff diff_schedules(const OpGraph& graph,
                            const TimingResult& simulated,
                            const MeasuredTimeline& measured) {
  MPIPE_EXPECTS(static_cast<int>(simulated.op_times.size()) == graph.size(),
                "simulated timing does not match graph");
  MPIPE_EXPECTS(static_cast<int>(measured.ops.size()) == graph.size(),
                "measured timeline does not match graph");
  ScheduleDiff diff;
  diff.simulated_makespan = simulated.makespan;
  diff.measured_makespan = measured.makespan;
  for (const Op& op : graph.ops()) {
    const OpTiming& sim = simulated.op_times[static_cast<std::size_t>(op.id)];
    const MeasuredOp& meas = measured.ops[static_cast<std::size_t>(op.id)];
    if (!sim.started() || meas.id < 0) continue;
    ScheduleDiff::OpDiff d;
    d.id = op.id;
    d.simulated = sim.seconds();
    d.measured = meas.seconds();
    diff.ops.push_back(d);
    const int cls = static_cast<int>(op_class(op.category));
    diff.simulated_class_seconds[cls] += d.simulated;
    diff.measured_class_seconds[cls] += d.measured;
  }
  return diff;
}

double OpClassCorrections::factor(OpCategory category) const {
  switch (op_class(category)) {
    case OpClass::kCompute: return compute;
    case OpClass::kComm: return comm;
    case OpClass::kMemcpy: return memcpy;
    case OpClass::kHost: return 1.0;
  }
  return 1.0;
}

void CorrectionFit::add(const ScheduleDiff& diff) {
  for (int c = 0; c < kNumOpClasses; ++c) {
    simulated_[static_cast<std::size_t>(c)] +=
        diff.simulated_class_seconds[static_cast<std::size_t>(c)];
    measured_[static_cast<std::size_t>(c)] +=
        diff.measured_class_seconds[static_cast<std::size_t>(c)];
  }
  ++steps_;
}

OpClassCorrections CorrectionFit::fit() const {
  auto ratio = [&](OpClass c) {
    const double sim = simulated_[static_cast<std::size_t>(c)];
    const double meas = measured_[static_cast<std::size_t>(c)];
    // No observed time in the class (or a degenerate zero measurement)
    // is no evidence: keep the identity factor.
    if (sim <= 0.0 || meas <= 0.0) return 1.0;
    return meas / sim;
  };
  OpClassCorrections c;
  c.compute = ratio(OpClass::kCompute);
  c.comm = ratio(OpClass::kComm);
  c.memcpy = ratio(OpClass::kMemcpy);
  return c;
}

std::vector<StragglerFlag> detect_stragglers(const OpGraph& graph,
                                             const ScheduleDiff& diff,
                                             double threshold,
                                             double min_excess_seconds) {
  std::vector<StragglerFlag> out;
  if (threshold <= 0.0) return out;
  // Per-class median measured/simulated ratio as the normalizer. A mean or
  // a total would let a single injected straggler dominate its class and
  // raise its own expectation enough to slip under the threshold.
  std::array<std::vector<double>, kNumOpClasses> ratios;
  for (const ScheduleDiff::OpDiff& od : diff.ops) {
    if (od.simulated <= 0.0) continue;
    const OpClass c = op_class(graph.op(od.id).category);
    ratios[static_cast<std::size_t>(c)].push_back(od.measured / od.simulated);
  }
  std::array<double, kNumOpClasses> median{};
  for (std::size_t c = 0; c < ratios.size(); ++c) {
    auto& r = ratios[c];
    if (r.empty()) continue;
    const std::size_t mid = r.size() / 2;
    std::nth_element(r.begin(), r.begin() + static_cast<std::ptrdiff_t>(mid),
                     r.end());
    median[c] = r[mid];
  }
  for (const ScheduleDiff::OpDiff& od : diff.ops) {
    if (od.simulated <= 0.0) continue;
    const Op& op = graph.op(od.id);
    const double m = median[static_cast<std::size_t>(op_class(op.category))];
    const double expected = od.simulated * m;
    if (expected <= 0.0) continue;
    if (od.measured > threshold * expected &&
        od.measured - expected >= min_excess_seconds) {
      StragglerFlag flag;
      flag.id = od.id;
      flag.label = op.label;
      flag.simulated = od.simulated;
      flag.measured = od.measured;
      flag.expected = expected;
      out.push_back(std::move(flag));
    }
  }
  return out;
}

void apply_corrections(OpGraph& graph,
                       const OpClassCorrections& corrections) {
  if (corrections.identity()) return;
  MPIPE_EXPECTS(corrections.compute > 0.0 && corrections.comm > 0.0 &&
                    corrections.memcpy > 0.0,
                "correction factors must be positive");
  for (int id = 0; id < graph.size(); ++id) {
    Op& op = graph.op(id);
    op.base_seconds *= corrections.factor(op.category);
  }
}

}  // namespace mpipe::sim
