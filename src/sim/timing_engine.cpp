#include "sim/timing_engine.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "common/check.h"

namespace mpipe::sim {

double TimingResult::mean_compute_utilization() const {
  if (busy.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t d = 0; d < busy.size(); ++d) {
    acc += compute_utilization(static_cast<int>(d));
  }
  return acc / static_cast<double>(busy.size());
}

TimingEngine::TimingEngine(const InterferenceModel& interference,
                           int num_devices)
    : interference_(interference), num_devices_(num_devices) {
  MPIPE_EXPECTS(num_devices > 0, "need at least one device");
}

namespace {

struct RunningOp {
  int id;
  double remaining;  // seconds at unit rate
  double rate;       // current slowdown factor in (0, 1]
};

}  // namespace

TimingResult TimingEngine::run(const OpGraph& graph) {
  graph.validate(num_devices_);

  const int n = graph.size();
  TimingResult result;
  result.op_times.assign(static_cast<std::size_t>(n), OpTiming{});
  result.busy.assign(static_cast<std::size_t>(num_devices_), {0.0, 0.0, 0.0});
  result.weighted_compute.assign(static_cast<std::size_t>(num_devices_), 0.0);
  if (n == 0) return result;

  // Stream FIFO queues: (device, kind) -> op ids in insertion order.
  std::map<std::pair<int, int>, std::deque<int>> queues;
  std::vector<int> unmet_deps(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<std::size_t>(n));
  for (const Op& op : graph.ops()) {
    unmet_deps[static_cast<std::size_t>(op.id)] =
        static_cast<int>(op.deps.size());
    for (int dep : op.deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(op.id);
    }
    for (int device : op.devices) {
      queues[{device, static_cast<int>(op.stream)}].push_back(op.id);
    }
  }

  // Which stream kinds are occupied on each device (by a running op).
  std::vector<std::array<bool, kNumStreamKinds>> occupied(
      static_cast<std::size_t>(num_devices_), {false, false, false});

  std::vector<RunningOp> running;
  SimTime now = kTimeZero;
  int completed = 0;

  auto rate_of = [&](const Op& op) {
    double rate = 1.0;
    for (int device : op.devices) {
      const auto& occ = occupied[static_cast<std::size_t>(device)];
      // Activity of the *other* stream kinds on this device.
      const bool comm =
          op.stream != StreamKind::kComm && occ[int(StreamKind::kComm)];
      const bool comp =
          op.stream != StreamKind::kCompute && occ[int(StreamKind::kCompute)];
      const bool mem =
          op.stream != StreamKind::kMem && occ[int(StreamKind::kMem)];
      rate = std::min(rate, interference_.factor(op.stream, comm, comp, mem));
    }
    return rate;
  };

  auto refresh_rates = [&] {
    for (RunningOp& r : running) {
      r.rate = rate_of(graph.op(r.id));
    }
  };

  auto op_startable = [&](int id) {
    if (unmet_deps[static_cast<std::size_t>(id)] > 0) return false;
    if (result.op_times[static_cast<std::size_t>(id)].started()) return false;
    const Op& op = graph.op(id);
    for (int device : op.devices) {
      const auto& q = queues.at({device, static_cast<int>(op.stream)});
      if (q.empty() || q.front() != id) return false;
      if (occupied[static_cast<std::size_t>(device)][int(op.stream)]) {
        return false;
      }
    }
    return true;
  };

  auto start_ready_ops = [&] {
    bool any_started = true;
    while (any_started) {
      any_started = false;
      // Scan stream heads in deterministic (device, kind) order.
      for (auto& [key, q] : queues) {
        if (q.empty()) continue;
        const int id = q.front();
        if (!op_startable(id)) continue;
        const Op& op = graph.op(id);
        for (int device : op.devices) {
          occupied[static_cast<std::size_t>(device)][int(op.stream)] = true;
        }
        result.op_times[static_cast<std::size_t>(id)].start = now;
        running.push_back(RunningOp{id, op.base_seconds, 1.0});
        any_started = true;
      }
    }
    refresh_rates();
  };

  start_ready_ops();

  while (completed < n) {
    MPIPE_CHECK(!running.empty(),
                "timing deadlock: no runnable op (cyclic stream order?)");
    // Next completion under current (constant) rates; ties by op id.
    SimTime best_finish = std::numeric_limits<double>::infinity();
    int best_index = -1;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const SimTime finish = now + running[i].remaining / running[i].rate;
      if (finish < best_finish ||
          (finish == best_finish && best_index >= 0 &&
           running[i].id < running[static_cast<std::size_t>(best_index)].id)) {
        best_finish = finish;
        best_index = static_cast<int>(i);
      }
    }
    const double dt = best_finish - now;

    // Integrate progress and account busy time for the elapsed interval.
    for (RunningOp& r : running) {
      r.remaining = std::max(0.0, r.remaining - dt * r.rate);
      const Op& op = graph.op(r.id);
      for (int device : op.devices) {
        result.busy[static_cast<std::size_t>(device)][int(op.stream)] += dt;
        if (op.stream == StreamKind::kCompute) {
          result.weighted_compute[static_cast<std::size_t>(device)] +=
              dt * op.compute_efficiency * r.rate;
        }
      }
    }
    now = best_finish;

    // Retire the finished op.
    const int done_id = running[static_cast<std::size_t>(best_index)].id;
    running.erase(running.begin() + best_index);
    const Op& done = graph.op(done_id);
    result.op_times[static_cast<std::size_t>(done_id)].end = now;
    for (int device : done.devices) {
      occupied[static_cast<std::size_t>(device)][int(done.stream)] = false;
      auto& q = queues.at({device, static_cast<int>(done.stream)});
      MPIPE_CHECK(!q.empty() && q.front() == done_id,
                  "stream FIFO corrupted");
      q.pop_front();
    }
    for (int dependent : dependents[static_cast<std::size_t>(done_id)]) {
      --unmet_deps[static_cast<std::size_t>(dependent)];
    }
    ++completed;

    start_ready_ops();
  }

  result.makespan = now;
  return result;
}

}  // namespace mpipe::sim
