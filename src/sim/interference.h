#pragma once
/// \file interference.h
/// Stream-interference model (paper §II-C, Fig 3). Concurrent streams on a
/// device slow each other down: communication runs at µ_x·W_comm, compute
/// at σ_x·W_comp, memory copy at η_x·W_mem, where x is the set of other
/// active streams. Defaults reproduce the Fig-3 matrix measured on DGX A100.

#include "sim/stream.h"

namespace mpipe::sim {

/// Slowdown factors for one subject stream kind against each combination of
/// the other two kinds being active.
struct InterferenceRow {
  double alone = 1.0;
  double vs_first = 1.0;   ///< only the lower-numbered other kind active
  double vs_second = 1.0;  ///< only the higher-numbered other kind active
  double vs_all = 1.0;     ///< both other kinds active
};

class InterferenceModel {
 public:
  /// Fig-3 DGX A100 calibration.
  static InterferenceModel dgx_a100();

  /// No interference at all (ideal hardware).
  static InterferenceModel ideal();

  InterferenceModel() = default;

  /// Factor in (0, 1] for `subject` when `comm/comp/mem` indicate which
  /// stream kinds (other than the subject) currently run on the device.
  double factor(StreamKind subject, bool comm_active, bool comp_active,
                bool mem_active) const;

  void set_row(StreamKind subject, InterferenceRow row);
  const InterferenceRow& row(StreamKind subject) const;

  /// Convenience accessors used by the Eq-10 performance model.
  double mu_comp() const;   ///< comm slowdown when compute overlaps
  double mu_all() const;    ///< comm slowdown when everything overlaps
  double sigma_comm() const;///< compute slowdown when comm overlaps
  double eta_all() const;   ///< memcpy slowdown when everything overlaps

 private:
  // Index by subject kind. "first"/"second" refer to the other two kinds in
  // ascending StreamKind order (see interference.cpp for the mapping).
  InterferenceRow rows_[kNumStreamKinds];
};

}  // namespace mpipe::sim
