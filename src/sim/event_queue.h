#pragma once
/// \file event_queue.h
/// Deterministic min-priority queue. Ties on the key are broken by the
/// insertion sequence number, so identical runs pop events in an identical
/// order — the property all replay/trace tests rely on.

#include <cstdint>
#include <queue>
#include <vector>

namespace mpipe::sim {

template <typename Payload>
class EventQueue {
 public:
  void push(double key, Payload payload) {
    heap_.push(Entry{key, seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  double top_key() const { return heap_.top().key; }
  const Payload& top() const { return heap_.top().payload; }

  Payload pop() {
    Payload p = heap_.top().payload;
    heap_.pop();
    return p;
  }

 private:
  struct Entry {
    double key;
    std::uint64_t seq;
    Payload payload;

    bool operator>(const Entry& other) const {
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace mpipe::sim
