// event_queue.h is header-only; this translation unit exists so the build
// catches template syntax errors even if no test instantiates the queue.
#include "sim/event_queue.h"

namespace mpipe::sim {
namespace {
// Force an instantiation for the common payload type.
[[maybe_unused]] void instantiate() {
  EventQueue<int> q;
  q.push(1.0, 42);
  (void)q.pop();
}
}  // namespace
}  // namespace mpipe::sim
