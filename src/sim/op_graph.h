#pragma once
/// \file op_graph.h
/// The unit of execution handed to the cluster: a DAG of operations, each
/// bound to one stream kind on one or more devices. Layer implementations
/// (MPipeMoE core, baselines) build one OpGraph per training step; the
/// cluster then (1) runs the functional closures in a deterministic
/// topological order — real tensor math — and (2) simulates the timed
/// schedule with stream FIFO semantics and interference.

#include <functional>
#include <string>
#include <vector>

#include "sim/stream.h"

namespace mpipe::sim {

enum class OpCategory : std::uint8_t {
  kGemm,
  kElementwise,
  kAllToAll,
  kP2P,
  kAllReduce,
  kBroadcast,
  kMemcpyD2H,
  kMemcpyH2D,
  kHostCompute,  ///< gating / dispatch bookkeeping; negligible device time
};

struct Op {
  int id = -1;
  std::string label;
  OpCategory category = OpCategory::kElementwise;
  StreamKind stream = StreamKind::kCompute;
  /// Participating devices; collectives list the whole group, local ops one.
  std::vector<int> devices;
  /// Duration at full stream speed (seconds) — from the CostModel.
  double base_seconds = 0.0;
  /// For compute ops: achieved fraction of peak (for utilisation reports).
  double compute_efficiency = 1.0;
  /// Explicit dependencies (op ids). Per-stream FIFO order is implicit.
  std::vector<int> deps;
  /// Functional action; may be empty for timing-only graphs.
  std::function<void()> fn;
};

class OpGraph {
 public:
  /// Appends an op; returns its id. Deps may reference any existing op.
  int add(Op op);

  /// Convenience builder.
  int add(std::string label, OpCategory category, StreamKind stream,
          std::vector<int> devices, double base_seconds,
          std::vector<int> deps, std::function<void()> fn = nullptr,
          double compute_efficiency = 1.0);

  const Op& op(int id) const;
  Op& op(int id);
  int size() const { return static_cast<int>(ops_.size()); }
  const std::vector<Op>& ops() const { return ops_; }

  /// Checks the DAG including the implicit per-stream FIFO edges; throws
  /// CheckError on cycles, bad deps, or bad device ids.
  void validate(int num_devices) const;

  /// Deterministic topological order (Kahn, min-id first) over explicit
  /// deps + stream FIFO edges. validate() must hold.
  std::vector<int> topo_order() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace mpipe::sim
