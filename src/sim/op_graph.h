#pragma once
/// \file op_graph.h
/// The unit of execution handed to the cluster: a DAG of operations, each
/// bound to one stream kind on one or more devices. Layer implementations
/// (MPipeMoE core, baselines) build one OpGraph per training step; the
/// cluster then (1) runs the functional closures — in a deterministic
/// topological order, or concurrently on the shared thread pool under
/// ExecutionPolicy::kParallel (sim/graph_executor.h) — and (2) simulates
/// the timed schedule with stream FIFO semantics and interference.
///
/// Functional ops declare the byte ranges they read and write
/// (BufferAccess). The declarations are the contract the concurrent
/// executor's hazard validator checks: any two ops left unordered by the
/// dependency graph must touch disjoint memory.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/stream.h"
#include "tensor/tensor.h"

namespace mpipe::sim {

/// One contiguous byte range of one storage buffer an op reads or writes.
/// `id` names the storage (a tensor's data pointer, a staging-slot token —
/// any address that is stable for the graph's lifetime and unique per
/// buffer); [begin, end) is the byte span within it. Ring-buffer slots
/// shared by several pipeline partitions naturally produce the same `id`,
/// which is exactly how the validator sees through the §III-D reuse
/// aliasing. Empty ranges (begin == end) never overlap anything.
struct BufferAccess {
  const void* id = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = std::numeric_limits<std::int64_t>::max();

  bool overlaps(const BufferAccess& other) const {
    return id == other.id && begin < other.end && other.begin < end;
  }
};

/// The whole backing buffer of a tensor.
inline BufferAccess access_whole(const Tensor& t) {
  return {static_cast<const void*>(t.data()), 0,
          static_cast<std::int64_t>(t.nbytes())};
}

/// Rows [row_begin, row_begin + rows) of a 2-D tensor.
inline BufferAccess access_rows(const Tensor& t, std::int64_t row_begin,
                                std::int64_t rows) {
  const std::int64_t row_bytes =
      t.dim(1) * static_cast<std::int64_t>(sizeof(float));
  return {static_cast<const void*>(t.data()), row_begin * row_bytes,
          (row_begin + rows) * row_bytes};
}

/// Elements [begin, begin + count) of a flat float buffer (e.g. a
/// std::vector<float> accumulator).
inline BufferAccess access_floats(const float* base, std::int64_t begin,
                                  std::int64_t count) {
  return {static_cast<const void*>(base),
          begin * static_cast<std::int64_t>(sizeof(float)),
          (begin + count) * static_cast<std::int64_t>(sizeof(float))};
}

/// An opaque whole-buffer token (e.g. a host-staging slot).
inline BufferAccess access_token(const void* token) {
  return {token, 0, std::numeric_limits<std::int64_t>::max()};
}

enum class OpCategory : std::uint8_t {
  kGemm,
  kElementwise,
  kAllToAll,
  kP2P,
  kAllReduce,
  kBroadcast,
  kMemcpyD2H,
  kMemcpyH2D,
  kHostCompute,  ///< gating / dispatch bookkeeping; negligible device time
};

std::string to_string(OpCategory category);

struct Op {
  int id = -1;
  std::string label;
  OpCategory category = OpCategory::kElementwise;
  StreamKind stream = StreamKind::kCompute;
  /// Participating devices; collectives list the whole group, local ops one.
  std::vector<int> devices;
  /// Duration at full stream speed (seconds) — from the CostModel.
  double base_seconds = 0.0;
  /// For compute ops: achieved fraction of peak (for utilisation reports).
  double compute_efficiency = 1.0;
  /// Explicit dependencies (op ids). Per-stream FIFO order is implicit.
  std::vector<int> deps;
  /// Functional action; may be empty for timing-only graphs.
  std::function<void()> fn;
  /// Byte ranges `fn` reads/writes — required on every functional op that
  /// can run concurrently with another (sim::validate_hazards enforces
  /// this before parallel execution). Timing-only ops leave them empty.
  std::vector<BufferAccess> reads;
  std::vector<BufferAccess> writes;
};

class OpGraph {
 public:
  /// Appends an op; returns its id. Deps may reference any existing op.
  int add(Op op);

  /// Convenience builder.
  int add(std::string label, OpCategory category, StreamKind stream,
          std::vector<int> devices, double base_seconds,
          std::vector<int> deps, std::function<void()> fn = nullptr,
          double compute_efficiency = 1.0);

  const Op& op(int id) const;
  Op& op(int id);
  int size() const { return static_cast<int>(ops_.size()); }
  const std::vector<Op>& ops() const { return ops_; }

  /// Checks the DAG including the implicit per-stream FIFO edges; throws
  /// CheckError on cycles, bad deps, or bad device ids.
  void validate(int num_devices) const;

  /// Deterministic topological order (Kahn, min-id first) over explicit
  /// deps + stream FIFO edges. validate() must hold.
  std::vector<int> topo_order() const;

  /// The dependency structure the executors schedule against: successor
  /// lists and in-degrees over explicit deps *plus* the implicit per-stream
  /// FIFO edges (duplicate edges between the same pair are kept, so
  /// in-degree counts match successor multiplicity).
  struct DependencyView {
    std::vector<std::vector<int>> successors;
    std::vector<int> in_degree;
  };
  DependencyView dependency_view() const;

  /// True when no op carries a functional closure (probe/timing graphs).
  bool is_timing_only() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace mpipe::sim
