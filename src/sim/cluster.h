#pragma once
/// \file cluster.h
/// The simulated cluster: topology + interference + cost model + devices.
/// `run()` executes an OpGraph functionally (real math, deterministic topo
/// order) and temporally (timing engine), returning the timing result.

#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/graph_executor.h"
#include "sim/interference.h"
#include "sim/op_graph.h"
#include "sim/timing_engine.h"
#include "sim/topology.h"

namespace mpipe::sim {

struct ClusterConfig {
  TopologyConfig topology;
  CostModelConfig cost;
  InterferenceModel interference = InterferenceModel::dgx_a100();
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Paper testbed: 8 nodes × 8 GPUs.
  static Cluster dgx_a100_pod(int nodes = 8, int gpus_per_node = 8);

  int num_devices() const { return topology_.num_devices(); }
  const Device& device(int id) const;
  std::vector<int> all_device_ids() const;

  const Topology& topology() const { return topology_; }
  const CostModel& cost_model() const { return cost_model_; }
  const InterferenceModel& interference() const { return interference_; }

  /// Replaces the cost-model configuration (same topology). Entry points
  /// use this to install measured calibration curves after construction.
  void set_cost_config(CostModelConfig config);

  /// Installs a cluster-scoped fault injector (common/fault_injection.h).
  /// Comm ops built after this consult it for injected failures, retries,
  /// stragglers, and payload corruption; allocators wired via
  /// fault_injector_shared() consult it for OOM injection. Ops capture the
  /// injector by shared_ptr, so graphs built against one configuration
  /// stay valid across clear/replace.
  void set_fault_injection(FaultInjectionConfig config);
  void clear_fault_injection();

  /// Null when no injection is configured (the default — and then every
  /// fault hook reduces to one null check).
  const FaultInjector* fault_injector() const {
    return fault_injector_.get();
  }
  std::shared_ptr<const FaultInjector> fault_injector_shared() const {
    return fault_injector_;
  }

  /// Functional + timed execution. Under ExecutionPolicy::kParallel the
  /// closures run concurrently on the shared ThreadPool after the hazard
  /// validator proves every unordered op pair disjoint; kSerial is the
  /// deterministic topological reference order. Both produce bitwise
  /// identical tensor results. A non-null `profile` makes the functional
  /// run record per-op wall-clock timestamps (sim/profile.h) so the
  /// returned simulated schedule can be confronted with measured reality;
  /// null (the default) records nothing and costs nothing.
  TimingResult run(const OpGraph& graph,
                   ExecutionPolicy policy = ExecutionPolicy::kSerial,
                   ExecutionProfile* profile = nullptr);

  /// Timed execution only (closures not invoked) — used by the adaptive
  /// granularity search to probe candidate schedules cheaply.
  TimingResult time_only(const OpGraph& graph);

  /// Functional execution only (no timing) — used in numerics tests.
  void run_functional(const OpGraph& graph,
                      ExecutionPolicy policy = ExecutionPolicy::kSerial,
                      ExecutionProfile* profile = nullptr);

 private:
  Topology topology_;
  CostModel cost_model_;
  InterferenceModel interference_;
  std::vector<Device> devices_;
  std::shared_ptr<const FaultInjector> fault_injector_;
};

}  // namespace mpipe::sim
