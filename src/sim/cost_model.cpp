#include "sim/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::sim {

CostModel::CostModel(CostModelConfig config, Topology topology)
    : config_(config), topology_(std::move(topology)) {
  MPIPE_EXPECTS(config_.peak_flops > 0, "peak_flops must be positive");
  MPIPE_EXPECTS(config_.gemm_half_sat_rows > 0, "half_sat must be positive");
  MPIPE_EXPECTS(config_.gemm_max_efficiency > 0 &&
                    config_.gemm_max_efficiency <= 1.0,
                "efficiency bound must be in (0, 1]");
}

double CostModel::gemm_efficiency(std::int64_t rows) const {
  MPIPE_EXPECTS(rows > 0, "gemm with no rows");
  const double r = static_cast<double>(rows);
  return config_.gemm_max_efficiency * r / (r + config_.gemm_half_sat_rows);
}

double CostModel::gemm_seconds(std::uint64_t flops, std::int64_t rows) const {
  const double eff = gemm_efficiency(rows);
  return config_.compute_launch_latency +
         static_cast<double>(flops) / (config_.peak_flops * eff);
}

double CostModel::alltoall_seconds(std::uint64_t bytes_per_device,
                                   const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "alltoall needs >= 2 participants");
  const double p = static_cast<double>(group.size());
  const double bw = topology_.alltoall_bandwidth(group);
  const double payload =
      static_cast<double>(bytes_per_device) * (p - 1.0) / p;
  return config_.comm_launch_latency + payload / bw;
}

double CostModel::p2p_seconds(std::uint64_t bytes, int src, int dst) const {
  return config_.p2p_launch_latency +
         static_cast<double>(bytes) / topology_.p2p_bandwidth(src, dst);
}

double CostModel::memcpy_seconds(std::uint64_t bytes, int device) const {
  return config_.memcpy_launch_latency +
         static_cast<double>(bytes) / topology_.pcie_bandwidth(device);
}

double CostModel::allreduce_seconds(std::uint64_t bytes_per_device,
                                    const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "allreduce needs >= 2 participants");
  const double p = static_cast<double>(group.size());
  const double bw = topology_.alltoall_bandwidth(group);
  const double payload =
      2.0 * static_cast<double>(bytes_per_device) * (p - 1.0) / p;
  return config_.comm_launch_latency + payload / bw;
}

double CostModel::broadcast_seconds(std::uint64_t bytes,
                                    const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "broadcast needs >= 2 participants");
  const double bw = topology_.alltoall_bandwidth(group);
  return config_.comm_launch_latency + static_cast<double>(bytes) / bw;
}

}  // namespace mpipe::sim
