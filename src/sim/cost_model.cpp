#include "sim/cost_model.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace mpipe::sim {

std::int64_t GemmEfficiencyCurve::min_rows() const {
  MPIPE_EXPECTS(!empty(), "empty efficiency curve");
  return rows.front();
}

std::int64_t GemmEfficiencyCurve::max_rows() const {
  MPIPE_EXPECTS(!empty(), "empty efficiency curve");
  return rows.back();
}

double GemmEfficiencyCurve::eval(std::int64_t r) const {
  MPIPE_EXPECTS(!empty(), "empty efficiency curve");
  if (r <= rows.front()) return efficiency.front();
  if (r >= rows.back()) return efficiency.back();
  const auto it = std::upper_bound(rows.begin(), rows.end(), r);
  const std::size_t hi = static_cast<std::size_t>(it - rows.begin());
  const std::size_t lo = hi - 1;
  const double t = static_cast<double>(r - rows[lo]) /
                   static_cast<double>(rows[hi] - rows[lo]);
  return efficiency[lo] + t * (efficiency[hi] - efficiency[lo]);
}

void GemmEfficiencyCurve::validate() const {
  MPIPE_EXPECTS(rows.size() == efficiency.size(),
                "efficiency curve: rows/efficiency length mismatch");
  MPIPE_EXPECTS(rows.size() >= 2,
                "efficiency curve needs at least two knots");
  MPIPE_EXPECTS(rows.front() >= 1, "efficiency curve rows must be >= 1");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    MPIPE_EXPECTS(efficiency[i] > 0.0 && efficiency[i] <= 1.0,
                  "efficiency curve values must be in (0, 1]");
    if (i == 0) continue;
    MPIPE_EXPECTS(rows[i] > rows[i - 1],
                  "efficiency curve rows must be strictly ascending");
    // rows/eff non-decreasing at the knots <=> predicted GEMM seconds
    // (flops proportional to rows) monotone everywhere on the curve. The
    // tolerance absorbs text round-trips of fitted knots, nothing more.
    MPIPE_EXPECTS(
        efficiency[i] * static_cast<double>(rows[i - 1]) <=
            efficiency[i - 1] * static_cast<double>(rows[i]) * (1 + 1e-9),
        "efficiency curve grows superlinearly between knots " +
            std::to_string(rows[i - 1]) + " and " + std::to_string(rows[i]) +
            " — predicted GEMM time would shrink with more rows");
  }
}

void GemmEfficiencyCurve::validate_covers(std::int64_t lo,
                                          std::int64_t hi) const {
  MPIPE_EXPECTS(lo >= 1 && hi >= lo, "bad required row range");
  MPIPE_EXPECTS(!empty(),
                "no calibrated GEMM efficiency curve loaded, but a measured "
                "curve covering rows [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "] is required");
  MPIPE_EXPECTS(
      min_rows() <= lo && max_rows() >= hi,
      "calibrated GEMM efficiency curve covers rows [" +
          std::to_string(min_rows()) + ", " + std::to_string(max_rows()) +
          "] but the granularity search will probe rows [" +
          std::to_string(lo) + ", " + std::to_string(hi) +
          "] — re-run bench/calibrate_cost_model with a wider row sweep");
}

std::uint64_t CommBandwidthCurve::min_bytes() const {
  MPIPE_EXPECTS(!empty(), "empty comm bandwidth curve");
  return bytes.front();
}

std::uint64_t CommBandwidthCurve::max_bytes() const {
  MPIPE_EXPECTS(!empty(), "empty comm bandwidth curve");
  return bytes.back();
}

double CommBandwidthCurve::eval(std::uint64_t b) const {
  MPIPE_EXPECTS(!empty(), "empty comm bandwidth curve");
  if (b <= bytes.front()) return seconds.front();
  if (b >= bytes.back()) return seconds.back();
  const auto it = std::upper_bound(bytes.begin(), bytes.end(), b);
  const std::size_t hi = static_cast<std::size_t>(it - bytes.begin());
  const std::size_t lo = hi - 1;
  const double t = static_cast<double>(b - bytes[lo]) /
                   static_cast<double>(bytes[hi] - bytes[lo]);
  return seconds[lo] + t * (seconds[hi] - seconds[lo]);
}

double CommBandwidthCurve::peak_rate() const {
  MPIPE_EXPECTS(!empty(), "empty comm bandwidth curve");
  double peak = 0.0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    peak = std::max(peak, static_cast<double>(bytes[i]) / seconds[i]);
  }
  return peak;
}

double CommBandwidthCurve::efficiency_at(std::uint64_t b) const {
  return efficiency_at(b, peak_rate());
}

double CommBandwidthCurve::efficiency_at(std::uint64_t b, double peak) const {
  // Clamp to the knot span: a payload below the sweep uses the front
  // knot's efficiency, one above extrapolates at the back knot's average
  // rate — both keep predicted seconds monotone in bytes. Either way the
  // prediction is extrapolation, not measurement, so record the event.
  if (b < min_bytes()) {
    clamps->below.fetch_add(1, std::memory_order_relaxed);
  } else if (b > max_bytes()) {
    clamps->above.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t bc = std::min(std::max(b, min_bytes()), max_bytes());
  const double rate = static_cast<double>(bc) / eval(bc);
  return std::min(1.0, rate / peak);
}

void CommBandwidthCurve::validate() const {
  MPIPE_EXPECTS(bytes.size() == seconds.size(),
                "comm curve: bytes/seconds length mismatch");
  MPIPE_EXPECTS(bytes.size() >= 2, "comm curve needs at least two knots");
  MPIPE_EXPECTS(bytes.front() >= 1, "comm curve payloads must be >= 1 byte");
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    MPIPE_EXPECTS(seconds[i] > 0.0, "comm curve seconds must be positive");
    if (i == 0) continue;
    MPIPE_EXPECTS(bytes[i] > bytes[i - 1],
                  "comm curve payloads must be strictly ascending");
    MPIPE_EXPECTS(
        seconds[i] >= seconds[i - 1] * (1 - 1e-9),
        "comm curve seconds shrink between payloads " +
            std::to_string(bytes[i - 1]) + " and " +
            std::to_string(bytes[i]) +
            " — a bigger exchange would predict faster");
  }
}

void CommBandwidthCurve::validate_covers(std::uint64_t lo,
                                         std::uint64_t hi) const {
  MPIPE_EXPECTS(lo >= 1 && hi >= lo, "bad required payload range");
  MPIPE_EXPECTS(!empty(),
                "no calibrated comm bandwidth curve loaded, but a measured "
                "curve covering payloads [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "] bytes is required");
  MPIPE_EXPECTS(
      min_bytes() <= lo && max_bytes() >= hi,
      "calibrated comm bandwidth curve covers payloads [" +
          std::to_string(min_bytes()) + ", " + std::to_string(max_bytes()) +
          "] bytes but the granularity search will probe payloads [" +
          std::to_string(lo) + ", " + std::to_string(hi) +
          "] — re-run bench/calibrate_comm with a wider payload sweep");
}

const GemmEfficiencyCurve& CostModelConfig::gemm_curve_for(
    DType dtype) const {
  if (dtype == DType::kBF16 && !gemm_curve_bf16.empty()) {
    return gemm_curve_bf16;
  }
  if (dtype == DType::kI8 && !gemm_curve_i8.empty()) return gemm_curve_i8;
  return gemm_curve;
}

const CommBandwidthCurve& CostModelConfig::comm_curve_for(
    DType dtype) const {
  if (dtype == DType::kBF16 && !comm_curve_bf16.empty()) {
    return comm_curve_bf16;
  }
  if (dtype == DType::kI8 && !comm_curve_i8.empty()) return comm_curve_i8;
  return comm_curve;
}

CostModel::CostModel(CostModelConfig config, Topology topology)
    : config_(std::move(config)), topology_(std::move(topology)) {
  MPIPE_EXPECTS(config_.peak_flops > 0, "peak_flops must be positive");
  MPIPE_EXPECTS(config_.gemm_half_sat_rows > 0, "half_sat must be positive");
  MPIPE_EXPECTS(config_.gemm_max_efficiency > 0 &&
                    config_.gemm_max_efficiency <= 1.0,
                "efficiency bound must be in (0, 1]");
  for (const auto* curve :
       {&config_.gemm_curve, &config_.gemm_curve_bf16,
        &config_.gemm_curve_i8}) {
    if (!curve->empty()) curve->validate();
  }
  for (const auto* curve :
       {&config_.comm_curve, &config_.comm_curve_bf16,
        &config_.comm_curve_i8}) {
    if (!curve->empty()) curve->validate();
  }
  for (DType dtype : {DType::kF32, DType::kBF16, DType::kI8}) {
    const CommBandwidthCurve& curve = config_.comm_curve_for(dtype);
    if (!curve.empty()) {
      comm_peak_rate_[static_cast<int>(dtype)] = curve.peak_rate();
    }
  }
}

double CostModel::gemm_efficiency(std::int64_t rows, DType dtype) const {
  MPIPE_EXPECTS(rows > 0, "gemm with no rows");
  const GemmEfficiencyCurve& curve = config_.gemm_curve_for(dtype);
  if (!curve.empty()) return curve.eval(rows);
  const double r = static_cast<double>(rows);
  return config_.gemm_max_efficiency * r / (r + config_.gemm_half_sat_rows);
}

double CostModel::gemm_seconds(std::uint64_t flops, std::int64_t rows,
                               DType dtype) const {
  const double eff = gemm_efficiency(rows, dtype);
  return config_.compute_launch_latency +
         static_cast<double>(flops) / (config_.peak_flops * eff);
}

double CostModel::alltoall_seconds(std::uint64_t bytes_per_device,
                                   const std::vector<int>& group,
                                   DType dtype) const {
  MPIPE_EXPECTS(group.size() >= 2, "alltoall needs >= 2 participants");
  const double p = static_cast<double>(group.size());
  double bw = topology_.alltoall_bandwidth(group);
  const double payload =
      static_cast<double>(bytes_per_device) * (p - 1.0) / p;
  // A calibrated curve derates the link by the measured payload-dependent
  // efficiency (small exchanges never saturate it); the curve's shape is
  // measured on the calibration host, the scale stays the topology's.
  const CommBandwidthCurve& curve = config_.comm_curve_for(dtype);
  if (!curve.empty() && payload >= 1.0) {
    bw *= curve.efficiency_at(static_cast<std::uint64_t>(payload),
                              comm_peak_rate_[static_cast<int>(dtype)]);
  }
  return config_.comm_launch_latency + payload / bw;
}

double CostModel::p2p_seconds(std::uint64_t bytes, int src, int dst) const {
  return config_.p2p_launch_latency +
         static_cast<double>(bytes) / topology_.p2p_bandwidth(src, dst);
}

double CostModel::memcpy_seconds(std::uint64_t bytes, int device) const {
  return config_.memcpy_launch_latency +
         static_cast<double>(bytes) / topology_.pcie_bandwidth(device);
}

double CostModel::allreduce_seconds(std::uint64_t bytes_per_device,
                                    const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "allreduce needs >= 2 participants");
  const double p = static_cast<double>(group.size());
  const double bw = topology_.alltoall_bandwidth(group);
  const double payload =
      2.0 * static_cast<double>(bytes_per_device) * (p - 1.0) / p;
  return config_.comm_launch_latency + payload / bw;
}

double CostModel::broadcast_seconds(std::uint64_t bytes,
                                    const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "broadcast needs >= 2 participants");
  const double bw = topology_.alltoall_bandwidth(group);
  return config_.comm_launch_latency + static_cast<double>(bytes) / bw;
}

}  // namespace mpipe::sim
