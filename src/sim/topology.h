#pragma once
/// \file topology.h
/// Cluster topology: N devices grouped into nodes; NVLink-class bandwidth
/// inside a node, InfiniBand-class bandwidth across nodes, PCIe to the host.
/// Mirrors the paper's testbed (8 nodes × 8 A100, NVLink3 + 200 Gbps HDR).

#include <cstdint>
#include <vector>

namespace mpipe::sim {

struct TopologyConfig {
  int num_devices = 8;
  int devices_per_node = 8;
  /// Per-GPU NVLink bandwidth (bytes/s).
  double intra_node_bw = 250.0e9;
  /// Effective per-GPU inter-node bandwidth for a fused many-rank AllToAll
  /// (bytes/s). DGX A100 has one 200 Gbps HDR NIC per GPU (25 GB/s line
  /// rate); a well-tuned fused NCCL AllToAll sustains ~20 GB/s of it.
  double inter_node_bw = 20.0e9;
  /// Point-to-point transfers (and P2P-decomposed exchanges, i.e.
  /// FasterMoE's split-by-N and FastMoE's grouped send/recv) reach only a
  /// fraction of the fused bandwidth: single-channel paths, no
  /// multi-rail aggregation.
  double p2p_efficiency = 0.55;
  /// PCIe gen4 x16 host link per GPU (bytes/s).
  double pcie_bw = 22.0e9;
  /// Fixed kernel-launch / NCCL-call latency charged once per op (s).
  double launch_latency = 12.0e-6;
  /// Optional per-device bandwidth multiplier (heterogeneous networks);
  /// empty means homogeneous 1.0.
  std::vector<double> device_bw_scale;
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  /// Single-node convenience factory.
  static Topology single_node(int num_devices);
  /// Paper testbed: `nodes` × `devices_per_node`.
  static Topology multi_node(int nodes, int devices_per_node);

  int num_devices() const { return config_.num_devices; }
  int devices_per_node() const { return config_.devices_per_node; }
  int num_nodes() const;
  int node_of(int device) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Point-to-point bandwidth between two distinct devices (bytes/s),
  /// already including any per-device heterogeneity scale.
  double p2p_bandwidth(int src, int dst) const;

  /// Effective per-device bandwidth for an AllToAll over `group`:
  /// the bottleneck link class times the slowest participant's scale.
  double alltoall_bandwidth(const std::vector<int>& group) const;

  double pcie_bandwidth(int device) const;
  double launch_latency() const { return config_.launch_latency; }

  double device_scale(int device) const;

  const TopologyConfig& config() const { return config_; }

 private:
  TopologyConfig config_;
};

}  // namespace mpipe::sim
