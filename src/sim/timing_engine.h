#pragma once
/// \file timing_engine.h
/// Event-driven schedule simulation. Streams execute their ops in FIFO
/// order; an op starts when its explicit deps are done and it sits at the
/// head of every participating stream. While ops overlap on a device, each
/// runs at a rate scaled by the interference model (piecewise-constant
/// rates, integrated exactly between events).

#include <array>
#include <vector>

#include "sim/interference.h"
#include "sim/op_graph.h"
#include "sim/sim_time.h"

namespace mpipe::sim {

struct OpTiming {
  SimTime start = -1.0;
  SimTime end = -1.0;
  bool started() const { return start >= 0.0; }
  /// Simulated duration (0 for ops that never started) — what the
  /// measured-vs-modeled diff (sim/profile.h) compares per op.
  double seconds() const { return started() ? end - start : 0.0; }
};

struct TimingResult {
  SimTime makespan = 0.0;
  std::vector<OpTiming> op_times;
  /// Busy seconds per device per stream kind.
  std::vector<std::array<double, kNumStreamKinds>> busy;
  /// Efficiency-weighted compute busy seconds per device (for utilisation).
  std::vector<double> weighted_compute;

  double stream_busy(int device, StreamKind kind) const {
    return busy[static_cast<std::size_t>(device)][static_cast<int>(kind)];
  }
  /// Fraction of the makespan the device spent doing useful FLOPs.
  double compute_utilization(int device) const {
    if (makespan <= 0.0) return 0.0;
    return weighted_compute[static_cast<std::size_t>(device)] / makespan;
  }
  /// Mean utilisation across devices.
  double mean_compute_utilization() const;
};

class TimingEngine {
 public:
  TimingEngine(const InterferenceModel& interference, int num_devices);

  /// Simulates the graph; throws on deadlock (validate() failures).
  TimingResult run(const OpGraph& graph);

 private:
  const InterferenceModel& interference_;
  int num_devices_;
};

}  // namespace mpipe::sim
