#pragma once
/// \file stream.h
/// Execution stream kinds. Each simulated device exposes three in-order
/// streams, mirroring the CUDA-stream setup in the paper (Fig 7): one for
/// expert GEMMs, one for NCCL collectives, one for PCIe memory copies.

#include <cstdint>
#include <string>

namespace mpipe::sim {

enum class StreamKind : std::uint8_t {
  kCompute = 0,  ///< GEMM / elementwise kernels
  kComm = 1,     ///< AllToAll / P2P / AllReduce
  kMem = 2,      ///< device<->host copies (offload, prefetch)
};

inline constexpr int kNumStreamKinds = 3;

std::string to_string(StreamKind kind);

/// Identifies one stream in the cluster.
struct StreamId {
  int device = 0;
  StreamKind kind = StreamKind::kCompute;

  bool operator==(const StreamId&) const = default;
};

}  // namespace mpipe::sim
