#include "sim/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace mpipe::sim {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

/// One complete event per participating device. pid = device, tid = stream
/// kind (+ offset for the simulated tracks of the measured-vs-sim dump);
/// Chrome renders one row per tid. Shared by every emitter below so the
/// event format can only change in one place.
void append_events(std::ostringstream& os, bool& first, const Op& op,
                   double start, double end, const char* name_prefix,
                   int tid_offset) {
  for (int device : op.devices) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << name_prefix << json_escape(op.label)
       << "\",\"ph\":\"X\",\"ts\":" << to_us(start) << ",\"dur\":"
       << to_us(end - start) << ",\"pid\":" << device
       << ",\"tid\":" << static_cast<int>(op.stream) + tid_offset << "}";
  }
}
}  // namespace

std::string to_chrome_trace(const OpGraph& graph,
                            const TimingResult& timing) {
  MPIPE_EXPECTS(static_cast<int>(timing.op_times.size()) == graph.size(),
                "timing does not match graph");
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Op& op : graph.ops()) {
    const OpTiming& t = timing.op_times[static_cast<std::size_t>(op.id)];
    if (!t.started()) continue;
    append_events(os, first, op, t.start, t.end, "", 0);
  }
  os << "]}";
  return os.str();
}

std::string to_chrome_trace(const OpGraph& graph, const TimingResult& timing,
                            const MeasuredTimeline& measured) {
  MPIPE_EXPECTS(static_cast<int>(timing.op_times.size()) == graph.size(),
                "timing does not match graph");
  MPIPE_EXPECTS(static_cast<int>(measured.ops.size()) == graph.size(),
                "measured timeline does not match graph");
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Op& op : graph.ops()) {
    const MeasuredOp& m = measured.ops[static_cast<std::size_t>(op.id)];
    if (m.id >= 0) append_events(os, first, op, m.start, m.end, "", 0);
    const OpTiming& t = timing.op_times[static_cast<std::size_t>(op.id)];
    if (t.started()) {
      append_events(os, first, op, t.start, t.end, "sim:", kNumStreamKinds);
    }
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path, const OpGraph& graph,
                        const TimingResult& timing) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace(graph, timing);
  return static_cast<bool>(out);
}

std::string ascii_timeline(const OpGraph& graph, const TimingResult& timing,
                           int width) {
  MPIPE_EXPECTS(width > 10, "timeline too narrow");
  if (timing.makespan <= 0.0) return "(empty schedule)\n";

  // Collect the streams that actually ran anything.
  std::map<std::pair<int, int>, std::string> rows;
  for (const Op& op : graph.ops()) {
    const OpTiming& t = timing.op_times[static_cast<std::size_t>(op.id)];
    if (!t.started()) continue;
    for (int device : op.devices) {
      auto key = std::make_pair(device, static_cast<int>(op.stream));
      auto [it, inserted] =
          rows.try_emplace(key, std::string(static_cast<std::size_t>(width),
                                            '.'));
      std::string& row = it->second;
      int begin = static_cast<int>(t.start / timing.makespan * width);
      int end = static_cast<int>(t.end / timing.makespan * width);
      begin = std::clamp(begin, 0, width - 1);
      end = std::clamp(end, begin + 1, width);
      const char glyph = op.label.empty() ? '#' : op.label[0];
      for (int i = begin; i < end; ++i) {
        row[static_cast<std::size_t>(i)] = glyph;
      }
    }
  }

  std::ostringstream os;
  for (const auto& [key, row] : rows) {
    os << "dev" << key.first << ' '
       << to_string(static_cast<StreamKind>(key.second)) << " |" << row
       << "|\n";
  }
  os << "total " << to_ms(timing.makespan) << " ms\n";
  return os.str();
}

}  // namespace mpipe::sim
