#pragma once
/// \file profile.h
/// The measured half of the measured-vs-modeled loop. The executors
/// (sim/graph_executor.h) can record per-op wall-clock start/end timestamps
/// and the executing worker while a graph runs; this file turns those raw
/// samples into a measured timeline (per-op durations, critical path,
/// measured makespan, per-stream occupancy), diffs it op-by-op against the
/// TimingEngine's simulated schedule, and fits per-op-class correction
/// factors (compute / comm / memcpy) that the adaptive selectors consume to
/// re-rank strategies with reality-corrected costs — the same
/// measure→refit→reselect contract the calibration curves established
/// offline, applied online from profiled steps.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/op_graph.h"
#include "sim/timing_engine.h"

namespace mpipe::sim {

/// One op's wall-clock execution record: start/end in nanoseconds relative
/// to the run's origin stamp, and the id of the drain loop (0 = the calling
/// thread, 1..k = pool helpers) that executed it.
struct OpSample {
  std::int64_t start_ns = -1;
  std::int64_t end_ns = -1;
  int worker = -1;

  bool recorded() const { return start_ns >= 0; }
};

/// Wall-clock record of one graph execution, filled by the executors when a
/// profile sink is passed. One slot per op id: each op executes exactly
/// once, so recording is a plain store into the op's own pre-sized slot —
/// no locks, no shared counters, no allocation on the execution path, and
/// no false sharing beyond adjacent ops (the stores are tens of
/// nanoseconds next to GEMM/collective op bodies). A null sink costs one
/// pointer test per op — the zero-overhead-when-off contract.
class ExecutionProfile {
 public:
  /// Clears previous samples, sizes one slot per op and stamps the origin.
  /// Called by the executor at run start.
  void begin(int num_ops);

  /// Records op `id` as executed by `worker` over [start_ns, end_ns)
  /// (steady-clock nanoseconds; begin()'s origin is subtracted here).
  void record(int id, int worker, std::int64_t start_ns, std::int64_t end_ns);

  bool empty() const { return samples_.empty(); }
  int size() const { return static_cast<int>(samples_.size()); }
  const OpSample& sample(int id) const;
  const std::vector<OpSample>& samples() const { return samples_; }

  /// Steady-clock nanosecond timestamp (the executor's time source).
  static std::int64_t now_ns();

 private:
  std::vector<OpSample> samples_;
  std::int64_t origin_ns_ = 0;
};

/// One op of the reconstructed measured timeline, in seconds relative to
/// the earliest recorded start of the run.
struct MeasuredOp {
  int id = -1;
  double start = 0.0;
  double end = 0.0;
  int worker = -1;

  double seconds() const { return end - start; }
};

/// The measured analogue of TimingResult: what actually happened on the
/// wall clock, reconstructed from an ExecutionProfile.
struct MeasuredTimeline {
  /// Latest recorded end minus earliest recorded start.
  double makespan = 0.0;
  /// Indexed by op id; ops the run never recorded keep id == -1 (e.g. a
  /// cancelled tail after an exception).
  std::vector<MeasuredOp> ops;
  /// Dependency-respecting op chain (explicit deps + stream FIFO edges)
  /// with the largest measured duration sum, in execution order.
  std::vector<int> critical_path;
  double critical_path_seconds = 0.0;
  /// Measured busy seconds per device per stream kind (an op on k devices
  /// contributes its duration to each of them, like TimingResult::busy).
  std::vector<std::array<double, kNumStreamKinds>> stream_busy;

  double busy(int device, StreamKind kind) const {
    return stream_busy[static_cast<std::size_t>(device)]
                      [static_cast<int>(kind)];
  }
  /// Fraction of the measured makespan the stream was executing ops.
  double stream_occupancy(int device, StreamKind kind) const {
    return makespan > 0.0 ? busy(device, kind) / makespan : 0.0;
  }
};

/// Reconstructs the measured timeline from raw samples. Ops never recorded
/// are skipped (their MeasuredOp keeps id == -1); the critical path runs
/// over the recorded subgraph only.
MeasuredTimeline build_timeline(const OpGraph& graph,
                                const ExecutionProfile& profile,
                                int num_devices);

/// The op classes the correction loop distinguishes — the three streams of
/// the paper's performance model plus host bookkeeping (never corrected:
/// gating/dispatch closures are not modelled as device time).
enum class OpClass : std::uint8_t {
  kCompute = 0,
  kComm = 1,
  kMemcpy = 2,
  kHost = 3,
};
inline constexpr int kNumOpClasses = 4;

std::string to_string(OpClass c);
OpClass op_class(OpCategory category);

/// Op-by-op confrontation of the simulated schedule with the measured
/// timeline, plus per-class aggregates — the model-error summary.
struct ScheduleDiff {
  struct OpDiff {
    int id = -1;
    double simulated = 0.0;  ///< seconds the TimingEngine charged
    double measured = 0.0;   ///< seconds the wall clock observed
  };

  double simulated_makespan = 0.0;
  double measured_makespan = 0.0;
  /// One entry per op both schedules have times for, id-ascending.
  std::vector<OpDiff> ops;
  std::array<double, kNumOpClasses> simulated_class_seconds{};
  std::array<double, kNumOpClasses> measured_class_seconds{};

  /// measured / simulated total seconds of the class; 1.0 when the class
  /// never ran (no evidence means no correction).
  double class_ratio(OpClass c) const;
  /// Relative makespan error (measured - simulated) / simulated.
  double makespan_error() const;
  /// One-line human summary ("sim 1.23ms meas 1.40ms (+14%) comp x1.1 …").
  std::string summary() const;
};

ScheduleDiff diff_schedules(const OpGraph& graph, const TimingResult& simulated,
                            const MeasuredTimeline& measured);

/// One op the executor watchdog flagged: its measured wall-clock duration
/// exceeded `threshold` × what the model predicts for it after per-class
/// normalization. Surfaced through StepReport::stragglers.
struct StragglerFlag {
  int id = -1;
  std::string label;
  double simulated = 0.0;  ///< seconds the TimingEngine charged
  double measured = 0.0;   ///< seconds the wall clock observed
  double expected = 0.0;   ///< normalized expectation (see detect_stragglers)
  /// How many times slower than expected the op ran.
  double ratio() const { return expected > 0.0 ? measured / expected : 0.0; }
};

/// The watchdog: flags ops whose measured duration exceeds `threshold` ×
/// their normalized expectation. Simulated seconds model an A100 pod while
/// measured seconds are host wall-clock, so raw comparison is meaningless;
/// each op's expectation is its simulated duration scaled by the *median*
/// measured/simulated ratio of its op class (median, not total, so one
/// straggler cannot inflate its own yardstick). `min_excess_seconds`
/// suppresses flags on ops whose absolute excess is noise-level even when
/// the ratio is large. threshold <= 0 disables detection.
std::vector<StragglerFlag> detect_stragglers(const OpGraph& graph,
                                             const ScheduleDiff& diff,
                                             double threshold,
                                             double min_excess_seconds = 1e-4);

/// Multiplicative per-op-class correction factors: corrected modeled
/// seconds = factor * modeled seconds, with factor fitted as measured /
/// simulated over profiled steps. Identity (all 1.0) leaves every ranking
/// untouched — the no-op contract tests pin down.
struct OpClassCorrections {
  double compute = 1.0;
  double comm = 1.0;
  double memcpy = 1.0;

  bool identity() const {
    return compute == 1.0 && comm == 1.0 && memcpy == 1.0;
  }
  /// Factor for an op category (kHostCompute and anything else: 1.0).
  double factor(OpCategory category) const;
};

/// Accumulates per-class simulated/measured seconds across profiled steps
/// and fits the ratio. Classes with no observed simulated time stay at the
/// identity factor.
class CorrectionFit {
 public:
  void add(const ScheduleDiff& diff);
  OpClassCorrections fit() const;
  int steps() const { return steps_; }

  /// Accumulator snapshot for checkpoint/restore: a rollback in the middle
  /// of the profiling warmup must not double-count replayed steps.
  struct State {
    std::array<double, kNumOpClasses> simulated{};
    std::array<double, kNumOpClasses> measured{};
    int steps = 0;
  };
  State state() const { return {simulated_, measured_, steps_}; }
  void set_state(const State& s) {
    simulated_ = s.simulated;
    measured_ = s.measured;
    steps_ = s.steps;
  }

 private:
  std::array<double, kNumOpClasses> simulated_{};
  std::array<double, kNumOpClasses> measured_{};
  int steps_ = 0;
};

/// Scales every op's base_seconds by its class factor — how a probe or
/// selector graph becomes reality-corrected before TimingEngine::run.
void apply_corrections(OpGraph& graph, const OpClassCorrections& corrections);

// The measured-vs-simulated chrome-trace emitter lives with the other
// trace exporters: sim/trace.h (to_chrome_trace overload taking a
// MeasuredTimeline alongside the TimingResult).

}  // namespace mpipe::sim
