#include "sim/cluster.h"

#include "common/check.h"
#include "common/thread_pool.h"

namespace mpipe::sim {

Cluster::Cluster(ClusterConfig config)
    : topology_(config.topology),
      cost_model_(config.cost, Topology(config.topology)),
      interference_(config.interference) {
  devices_.reserve(static_cast<std::size_t>(topology_.num_devices()));
  for (int d = 0; d < topology_.num_devices(); ++d) {
    devices_.emplace_back(d, topology_.node_of(d));
  }
}

Cluster Cluster::dgx_a100_pod(int nodes, int gpus_per_node) {
  ClusterConfig cfg;
  cfg.topology.num_devices = nodes * gpus_per_node;
  cfg.topology.devices_per_node = gpus_per_node;
  return Cluster(cfg);
}

const Device& Cluster::device(int id) const {
  MPIPE_EXPECTS(id >= 0 && id < num_devices(), "device id out of range");
  return devices_[static_cast<std::size_t>(id)];
}

std::vector<int> Cluster::all_device_ids() const {
  std::vector<int> ids(static_cast<std::size_t>(num_devices()));
  for (int d = 0; d < num_devices(); ++d) {
    ids[static_cast<std::size_t>(d)] = d;
  }
  return ids;
}

void Cluster::set_cost_config(CostModelConfig config) {
  cost_model_ = CostModel(std::move(config), topology_);
}

void Cluster::set_fault_injection(FaultInjectionConfig config) {
  fault_injector_ = std::make_shared<const FaultInjector>(config);
}

void Cluster::clear_fault_injection() { fault_injector_.reset(); }

TimingResult Cluster::run(const OpGraph& graph, ExecutionPolicy policy,
                          ExecutionProfile* profile) {
  run_functional(graph, policy, profile);
  return time_only(graph);
}

TimingResult Cluster::time_only(const OpGraph& graph) {
  TimingEngine engine(interference_, num_devices());
  return engine.run(graph);
}

void Cluster::run_functional(const OpGraph& graph, ExecutionPolicy policy,
                             ExecutionProfile* profile) {
  graph.validate(num_devices());
  if (policy == ExecutionPolicy::kParallel && !graph.is_timing_only()) {
    // Prove the schedule safe before overlapping it: every op pair the
    // dependency graph leaves unordered must have declared, disjoint
    // read/write sets.
    validate_hazards(graph);
    run_graph_parallel(graph, ThreadPool::shared(), profile);
    return;
  }
  run_graph_serial(graph, profile);
}

}  // namespace mpipe::sim
