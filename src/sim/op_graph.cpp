#include "sim/op_graph.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "sim/event_queue.h"

namespace mpipe::sim {

std::string to_string(OpCategory category) {
  switch (category) {
    case OpCategory::kGemm: return "gemm";
    case OpCategory::kElementwise: return "elementwise";
    case OpCategory::kAllToAll: return "alltoall";
    case OpCategory::kP2P: return "p2p";
    case OpCategory::kAllReduce: return "allreduce";
    case OpCategory::kBroadcast: return "broadcast";
    case OpCategory::kMemcpyD2H: return "memcpy_d2h";
    case OpCategory::kMemcpyH2D: return "memcpy_h2d";
    case OpCategory::kHostCompute: return "host";
  }
  return "?";
}

int OpGraph::add(Op op) {
  MPIPE_EXPECTS(!op.devices.empty(), "op must name at least one device");
  MPIPE_EXPECTS(op.base_seconds >= 0.0, "negative duration");
  for (int dep : op.deps) {
    MPIPE_EXPECTS(dep >= 0 && dep < size(),
                  "dependency on unknown op: " + op.label);
  }
  op.id = size();
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int OpGraph::add(std::string label, OpCategory category, StreamKind stream,
                 std::vector<int> devices, double base_seconds,
                 std::vector<int> deps, std::function<void()> fn,
                 double compute_efficiency) {
  Op op;
  op.label = std::move(label);
  op.category = category;
  op.stream = stream;
  op.devices = std::move(devices);
  op.base_seconds = base_seconds;
  op.deps = std::move(deps);
  op.fn = std::move(fn);
  op.compute_efficiency = compute_efficiency;
  return add(std::move(op));
}

const Op& OpGraph::op(int id) const {
  MPIPE_EXPECTS(id >= 0 && id < size(), "op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

Op& OpGraph::op(int id) {
  MPIPE_EXPECTS(id >= 0 && id < size(), "op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

OpGraph::DependencyView OpGraph::dependency_view() const {
  // Adjacency over explicit deps plus the implicit FIFO edge from each
  // stream's previous op to the next one enqueued on the same stream.
  DependencyView view;
  view.successors.resize(ops_.size());
  view.in_degree.assign(ops_.size(), 0);
  for (const Op& op : ops_) {
    for (int dep : op.deps) {
      view.successors[static_cast<std::size_t>(dep)].push_back(op.id);
      ++view.in_degree[static_cast<std::size_t>(op.id)];
    }
  }
  std::map<std::pair<int, int>, int> last_on_stream;  // (device, kind) -> id
  for (const Op& op : ops_) {
    for (int device : op.devices) {
      const auto key = std::make_pair(device, static_cast<int>(op.stream));
      auto it = last_on_stream.find(key);
      if (it != last_on_stream.end()) {
        view.successors[static_cast<std::size_t>(it->second)]
            .push_back(op.id);
        ++view.in_degree[static_cast<std::size_t>(op.id)];
      }
      last_on_stream[key] = op.id;
    }
  }
  return view;
}

bool OpGraph::is_timing_only() const {
  for (const Op& op : ops_) {
    if (op.fn) return false;
  }
  return true;
}

void OpGraph::validate(int num_devices) const {
  for (const Op& op : ops_) {
    for (int device : op.devices) {
      MPIPE_CHECK(device >= 0 && device < num_devices,
                  "op '" + op.label + "' references device out of range");
    }
    // A collective occupies each participant exactly once.
    std::vector<int> devs = op.devices;
    std::sort(devs.begin(), devs.end());
    MPIPE_CHECK(std::adjacent_find(devs.begin(), devs.end()) == devs.end(),
                "op '" + op.label + "' lists a device twice");
  }
  // Cycle check over the combined graph.
  (void)topo_order();
}

std::vector<int> OpGraph::topo_order() const {
  DependencyView view = dependency_view();
  std::vector<int>& in_deg = view.in_degree;
  EventQueue<int> ready;
  for (const Op& op : ops_) {
    if (in_deg[static_cast<std::size_t>(op.id)] == 0) {
      ready.push(static_cast<double>(op.id), op.id);
    }
  }
  std::vector<int> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const int id = ready.pop();
    order.push_back(id);
    for (int next : view.successors[static_cast<std::size_t>(id)]) {
      if (--in_deg[static_cast<std::size_t>(next)] == 0) {
        ready.push(static_cast<double>(next), next);
      }
    }
  }
  MPIPE_CHECK(order.size() == ops_.size(),
              "op graph has a cycle (deps conflict with stream FIFO order)");
  return order;
}

}  // namespace mpipe::sim
