#pragma once
/// \file graph_executor.h
/// Concurrent functional execution of an OpGraph: a dependency-counting
/// worklist over the shared ThreadPool. An op becomes ready when every
/// predecessor (explicit dep or implicit per-stream FIFO edge) has
/// finished, so independent partitions'/devices' S / C1 / C2 / R ops — and
/// the mem-stream offload copies — genuinely overlap instead of merely
/// being *simulated* to overlap by the timing engine. Nested parallel_for
/// calls issued from op bodies keep the PR-1 contract: on a pool worker
/// they run inline, so op-level and kernel-level parallelism compose
/// without deadlock.
///
/// Safety is proved, not assumed: validate_hazards() checks every pair of
/// ops the dependency graph leaves unordered for disjoint declared
/// read/write byte ranges (Op::reads / Op::writes). The ring-buffer WAR
/// edges of §III-D reuse already encode most of the ordering; the
/// validator is what catches a missing edge before it becomes a data race.
/// Because all cross-op ordering comes from graph edges — never from
/// execution timing — parallel execution is bitwise identical to the
/// serial topological reference order for any pool size.

#include "common/thread_pool.h"
#include "sim/op_graph.h"
#include "sim/profile.h"

namespace mpipe::sim {

/// How Cluster::run / run_functional execute a graph's closures.
enum class ExecutionPolicy {
  kSerial,    ///< deterministic topological order (reference mode)
  kParallel,  ///< dependency-counting worklist on the shared ThreadPool
};

/// Runs every functional closure of `graph` concurrently on `pool`,
/// honouring explicit deps + per-stream FIFO edges. Blocks until all ops
/// finished. The calling thread participates in draining ready ops. The
/// first exception thrown by a closure is rethrown after the remaining
/// ops are cancelled (their closures are skipped, dependency counts still
/// propagate so the executor always terminates). Called from inside a
/// pool worker it degrades to the serial reference order — enqueueing
/// sub-tasks the blocked parent waits on could deadlock the pool.
///
/// A non-null `profile` records each op's wall-clock start/end and the
/// executing drain loop's id (0 = caller, 1..k = pool helpers) into the
/// op's own pre-sized slot — race-free without locks because every op runs
/// exactly once, and published to the caller by the completion join. A
/// null profile costs one pointer test per op (the default, and the PR-4
/// behaviour bit for bit).
void run_graph_parallel(const OpGraph& graph, ThreadPool& pool,
                        ExecutionProfile* profile = nullptr);

/// The serial reference order (deterministic Kahn topo order), optionally
/// profiled the same way (every op records worker 0). This is the loop
/// Cluster::run_functional uses under ExecutionPolicy::kSerial and the
/// degraded path run_graph_parallel falls back to.
void run_graph_serial(const OpGraph& graph,
                      ExecutionProfile* profile = nullptr);

/// Throws CheckError naming the offending op pair when two ops that the
/// dependency graph leaves unordered declare overlapping byte ranges with
/// at least one write — or when a functional op that can run concurrently
/// with another functional op declares no accesses at all (an undeclared
/// closure is unverifiable, which is treated as a hazard). Timing-only
/// ops (no closure) are ignored. Cluster::run_functional calls this
/// before every parallel execution; tests call it directly on
/// deliberately broken graphs.
void validate_hazards(const OpGraph& graph);

}  // namespace mpipe::sim
