#include "sim/interference.h"

#include "common/check.h"

namespace mpipe::sim {

// For each subject, the "other" kinds in ascending order:
//   subject comp (0): others are comm (1), mem (2)
//   subject comm (1): others are comp (0), mem (2)
//   subject mem  (2): others are comp (0), comm (1)

InterferenceModel InterferenceModel::dgx_a100() {
  InterferenceModel m;
  // Fig 3 row "comp": 0.96 vs comm, 1.0 vs mem, 0.94 with all.
  m.set_row(StreamKind::kCompute, {1.0, 0.96, 1.0, 0.94});
  // Fig 3 row "comm": 0.72 vs comp, 0.78 vs mem, 0.71 with all.
  m.set_row(StreamKind::kComm, {1.0, 0.72, 0.78, 0.71});
  // Fig 3 row "mem": 0.98 vs comp, 0.80 vs comm, 0.71 with all.
  m.set_row(StreamKind::kMem, {1.0, 0.98, 0.80, 0.71});
  return m;
}

InterferenceModel InterferenceModel::ideal() { return InterferenceModel(); }

double InterferenceModel::factor(StreamKind subject, bool comm_active,
                                 bool comp_active, bool mem_active) const {
  bool first = false, second = false;
  switch (subject) {
    case StreamKind::kCompute:
      first = comm_active;
      second = mem_active;
      break;
    case StreamKind::kComm:
      first = comp_active;
      second = mem_active;
      break;
    case StreamKind::kMem:
      first = comp_active;
      second = comm_active;
      break;
  }
  const InterferenceRow& r = rows_[static_cast<int>(subject)];
  if (first && second) return r.vs_all;
  if (first) return r.vs_first;
  if (second) return r.vs_second;
  return r.alone;
}

void InterferenceModel::set_row(StreamKind subject, InterferenceRow row) {
  MPIPE_EXPECTS(row.alone > 0 && row.vs_first > 0 && row.vs_second > 0 &&
                    row.vs_all > 0,
                "interference factors must be positive");
  MPIPE_EXPECTS(row.alone <= 1.0 && row.vs_first <= 1.0 &&
                    row.vs_second <= 1.0 && row.vs_all <= 1.0,
                "interference factors must be <= 1");
  rows_[static_cast<int>(subject)] = row;
}

const InterferenceRow& InterferenceModel::row(StreamKind subject) const {
  return rows_[static_cast<int>(subject)];
}

double InterferenceModel::mu_comp() const {
  return rows_[static_cast<int>(StreamKind::kComm)].vs_first;
}

double InterferenceModel::mu_all() const {
  return rows_[static_cast<int>(StreamKind::kComm)].vs_all;
}

double InterferenceModel::sigma_comm() const {
  return rows_[static_cast<int>(StreamKind::kCompute)].vs_first;
}

double InterferenceModel::eta_all() const {
  return rows_[static_cast<int>(StreamKind::kMem)].vs_all;
}

}  // namespace mpipe::sim
