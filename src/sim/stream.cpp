#include "sim/stream.h"

namespace mpipe::sim {

std::string to_string(StreamKind kind) {
  switch (kind) {
    case StreamKind::kCompute: return "comp";
    case StreamKind::kComm: return "comm";
    case StreamKind::kMem: return "mem";
  }
  return "?";
}

}  // namespace mpipe::sim
