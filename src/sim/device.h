#pragma once
/// \file device.h
/// One simulated accelerator: identity plus node placement. Streams are
/// implicit (every device has the three StreamKind streams); memory
/// accounting lives in mem::DeviceAllocator, owned by the System layer.

#include <string>

namespace mpipe::sim {

class Device {
 public:
  Device(int id, int node);

  int id() const { return id_; }
  int node() const { return node_; }
  const std::string& name() const { return name_; }

 private:
  int id_;
  int node_;
  std::string name_;
};

}  // namespace mpipe::sim
