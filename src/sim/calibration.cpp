#include "sim/calibration.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace mpipe::sim {

namespace {

/// Shared two-column CSV round-trip for the calibration curves: integer
/// key column, double value column, exact-precision values. Both curve
/// kinds persist through these so format fixes cannot diverge.
template <typename K>
void save_two_column(const std::string& path, const char* header,
                     const std::vector<K>& keys,
                     const std::vector<double>& values) {
  std::ofstream out(path);
  MPIPE_CHECK(static_cast<bool>(out), "cannot open " + path + " for writing");
  out << header << "\n";
  out.precision(17);  // round-trips a double exactly
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out << keys[i] << "," << values[i] << "\n";
  }
  MPIPE_CHECK(static_cast<bool>(out), "write to " + path + " failed");
}

template <typename K>
void load_two_column(const std::string& path, const char* header,
                     std::vector<K>& keys, std::vector<double>& values) {
  std::ifstream in(path);
  MPIPE_CHECK(static_cast<bool>(in),
              "cannot open calibration file " + path);
  std::string line;
  MPIPE_CHECK(static_cast<bool>(std::getline(in, line)) &&
                  line.rfind(header, 0) == 0,
              path + ": expected '" + header + "' header");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream cells(line);
    K key{};
    double value = 0.0;
    char comma = 0;
    MPIPE_CHECK(
        static_cast<bool>(cells >> key >> comma >> value) && comma == ',',
        path + ": malformed knot line '" + line + "'");
    keys.push_back(key);
    values.push_back(value);
  }
}

}  // namespace

GemmEfficiencyCurve fit_efficiency_curve(std::vector<GemmSample> samples,
                                         double max_efficiency) {
  MPIPE_EXPECTS(samples.size() >= 2, "need at least two measured samples");
  MPIPE_EXPECTS(max_efficiency > 0.0 && max_efficiency <= 1.0,
                "max_efficiency must be in (0, 1]");
  for (const GemmSample& s : samples) {
    MPIPE_EXPECTS(s.rows >= 1 && s.seconds > 0.0 && s.flops > 0,
                  "bad measured sample");
  }
  std::sort(samples.begin(), samples.end(),
            [](const GemmSample& a, const GemmSample& b) {
              if (a.rows != b.rows) return a.rows < b.rows;
              return a.seconds < b.seconds;
            });
  // Per row count, keep the fastest run (sorted first) — repeated timings
  // of one shape should tighten the curve, not average in outliers.
  std::vector<GemmSample> best;
  for (const GemmSample& s : samples) {
    if (best.empty() || best.back().rows != s.rows) best.push_back(s);
  }
  MPIPE_EXPECTS(best.size() >= 2, "need samples at two distinct row counts");

  double peak_rate = 0.0;
  for (const GemmSample& s : best) {
    peak_rate = std::max(peak_rate, static_cast<double>(s.flops) / s.seconds);
  }

  GemmEfficiencyCurve curve;
  for (const GemmSample& s : best) {
    const double rate = static_cast<double>(s.flops) / s.seconds;
    double eff = max_efficiency * rate / peak_rate;
    // Clamp so rows/eff stays non-decreasing: a bigger panel may be less
    // efficient, but never finish the proportionally larger FLOP count
    // sooner. (Equivalent to isotonic regression on predicted seconds.)
    if (!curve.rows.empty()) {
      const double cap = curve.efficiency.back() *
                         static_cast<double>(s.rows) /
                         static_cast<double>(curve.rows.back());
      eff = std::min(eff, cap);
    }
    curve.rows.push_back(s.rows);
    curve.efficiency.push_back(eff);
  }
  curve.validate();
  return curve;
}

void save_efficiency_curve(const std::string& path,
                           const GemmEfficiencyCurve& curve) {
  curve.validate();
  save_two_column(path, "rows,efficiency", curve.rows, curve.efficiency);
}

GemmEfficiencyCurve load_efficiency_curve(const std::string& path) {
  GemmEfficiencyCurve curve;
  load_two_column(path, "rows,efficiency", curve.rows, curve.efficiency);
  curve.validate();
  return curve;
}

CostModelConfig apply_calibration(CostModelConfig config,
                                  GemmEfficiencyCurve curve,
                                  std::int64_t required_lo,
                                  std::int64_t required_hi) {
  curve.validate();
  curve.validate_covers(required_lo, required_hi);
  config.gemm_curve = std::move(curve);
  return config;
}

CommBandwidthCurve fit_comm_curve(std::vector<CommSample> samples) {
  MPIPE_EXPECTS(samples.size() >= 2, "need at least two measured samples");
  for (const CommSample& s : samples) {
    MPIPE_EXPECTS(s.bytes >= 1 && s.seconds > 0.0, "bad measured sample");
  }
  std::sort(samples.begin(), samples.end(),
            [](const CommSample& a, const CommSample& b) {
              if (a.bytes != b.bytes) return a.bytes < b.bytes;
              return a.seconds < b.seconds;
            });
  // Per payload, keep the fastest run (sorted first) — repeated timings
  // of one size should tighten the curve, not average in outliers.
  std::vector<CommSample> best;
  for (const CommSample& s : samples) {
    if (best.empty() || best.back().bytes != s.bytes) best.push_back(s);
  }
  MPIPE_EXPECTS(best.size() >= 2, "need samples at two distinct payloads");

  CommBandwidthCurve curve;
  for (const CommSample& s : best) {
    // Clamp seconds non-decreasing: a strictly larger exchange never
    // genuinely finishes sooner, so an observed inversion is jitter.
    const double floor_s = curve.seconds.empty() ? 0.0 : curve.seconds.back();
    curve.bytes.push_back(s.bytes);
    curve.seconds.push_back(std::max(s.seconds, floor_s));
  }
  curve.validate();
  return curve;
}

void save_comm_curve(const std::string& path,
                     const CommBandwidthCurve& curve) {
  curve.validate();
  save_two_column(path, "bytes,seconds", curve.bytes, curve.seconds);
}

CommBandwidthCurve load_comm_curve(const std::string& path) {
  CommBandwidthCurve curve;
  load_two_column(path, "bytes,seconds", curve.bytes, curve.seconds);
  curve.validate();
  return curve;
}

CostModelConfig apply_comm_calibration(CostModelConfig config,
                                       CommBandwidthCurve curve,
                                       std::uint64_t required_lo,
                                       std::uint64_t required_hi) {
  curve.validate();
  curve.validate_covers(required_lo, required_hi);
  config.comm_curve = std::move(curve);
  return config;
}

namespace {

/// First directory in `dirs` holding a readable `name`, or "" when none.
std::string find_in_dirs(const std::vector<std::string>& dirs,
                         const std::string& name) {
  for (const std::string& dir : dirs) {
    const std::string path = dir + "/" + name;
    std::ifstream in(path);
    if (in.good()) return path;
  }
  return "";
}

}  // namespace

std::vector<std::string> default_calibration_dirs() {
  std::vector<std::string> dirs;
  if (const char* env = std::getenv("MPIPE_CALIBRATION_DIR")) {
    if (*env != '\0') dirs.emplace_back(env);
  }
  dirs.emplace_back(".");
  dirs.emplace_back("..");
  dirs.emplace_back("../..");
  return dirs;
}

CalibrationStatus try_apply_calibration_files(
    CostModelConfig& config, std::int64_t gemm_required_lo,
    std::int64_t gemm_required_hi, std::uint64_t comm_required_lo,
    std::uint64_t comm_required_hi, DType dtype,
    const std::vector<std::string>& search_dirs) {
  CalibrationStatus status;
  status.dtype = dtype;
  std::ostringstream detail;

  const std::string gemm_path =
      find_in_dirs(search_dirs, "CALIBRATION_gemm.csv");
  if (gemm_path.empty()) {
    detail << "gemm: CALIBRATION_gemm.csv not found, analytic curve in "
              "effect";
  } else {
    GemmEfficiencyCurve curve = load_efficiency_curve(gemm_path);
    if (curve.min_rows() <= gemm_required_lo &&
        curve.max_rows() >= gemm_required_hi) {
      config = apply_calibration(std::move(config), std::move(curve),
                                 gemm_required_lo, gemm_required_hi);
      status.gemm_loaded = true;
      detail << "gemm: calibrated from " << gemm_path;
    } else {
      detail << "gemm: " << gemm_path << " knots [" << curve.min_rows()
             << ", " << curve.max_rows()
             << "] do not cover probed rows [" << gemm_required_lo << ", "
             << gemm_required_hi << "], analytic curve in effect";
    }
  }

  if (dtype != DType::kF32) {
    const std::string name =
        std::string("CALIBRATION_gemm_") + to_string(dtype) + ".csv";
    const std::string path = find_in_dirs(search_dirs, name);
    detail << "; gemm[" << to_string(dtype) << "]: ";
    if (path.empty()) {
      detail << name << " not found, shared curve in effect";
    } else {
      GemmEfficiencyCurve curve = load_efficiency_curve(path);
      if (curve.min_rows() <= gemm_required_lo &&
          curve.max_rows() >= gemm_required_hi) {
        curve.validate_covers(gemm_required_lo, gemm_required_hi);
        (dtype == DType::kBF16 ? config.gemm_curve_bf16
                               : config.gemm_curve_i8) = std::move(curve);
        status.gemm_dtype_loaded = true;
        detail << "calibrated from " << path;
      } else {
        detail << path << " knots [" << curve.min_rows() << ", "
               << curve.max_rows() << "] do not cover probed rows ["
               << gemm_required_lo << ", " << gemm_required_hi
               << "], shared curve in effect";
      }
    }
  }

  detail << "; ";
  if (comm_required_hi == 0) {
    detail << "comm: not consulted (single-device group)";
    status.detail = detail.str();
    return status;
  }
  const std::string comm_path =
      find_in_dirs(search_dirs, "CALIBRATION_alltoall.csv");
  if (comm_path.empty()) {
    detail << "comm: CALIBRATION_alltoall.csv not found, analytic model in "
              "effect";
  } else {
    CommBandwidthCurve curve = load_comm_curve(comm_path);
    if (curve.min_bytes() <= comm_required_lo &&
        curve.max_bytes() >= comm_required_hi) {
      config = apply_comm_calibration(std::move(config), std::move(curve),
                                      comm_required_lo, comm_required_hi);
      status.comm_loaded = true;
      // Hand the caller the installed curve's clamp counters: config is
      // copied into the cluster, but the counters are shared, so this
      // pointer keeps reporting on the curve the run actually consults.
      status.comm_clamps = config.comm_curve.clamps;
      detail << "comm: calibrated from " << comm_path;
    } else {
      detail << "comm: " << comm_path << " knots [" << curve.min_bytes()
             << ", " << curve.max_bytes()
             << "] do not cover probed payloads [" << comm_required_lo
             << ", " << comm_required_hi
             << "], analytic model in effect";
    }
  }

  if (dtype != DType::kF32) {
    const std::string name =
        std::string("CALIBRATION_alltoall_") + to_string(dtype) + ".csv";
    const std::string path = find_in_dirs(search_dirs, name);
    detail << "; comm[" << to_string(dtype) << "]: ";
    if (path.empty()) {
      detail << name << " not found, shared curve in effect";
    } else {
      CommBandwidthCurve curve = load_comm_curve(path);
      if (curve.min_bytes() <= comm_required_lo &&
          curve.max_bytes() >= comm_required_hi) {
        curve.validate_covers(comm_required_lo, comm_required_hi);
        CommBandwidthCurve& slot = dtype == DType::kBF16
                                       ? config.comm_curve_bf16
                                       : config.comm_curve_i8;
        slot = std::move(curve);
        status.comm_dtype_loaded = true;
        // The dtype curve is the one ranked probes will consult; report
        // its clamp counters instead of the shared fallback's.
        status.comm_clamps = slot.clamps;
        detail << "calibrated from " << path;
      } else {
        detail << path << " knots [" << curve.min_bytes() << ", "
               << curve.max_bytes() << "] do not cover probed payloads ["
               << comm_required_lo << ", " << comm_required_hi
               << "], shared curve in effect";
      }
    }
  }
  status.detail = detail.str();
  return status;
}

}  // namespace mpipe::sim
