#include "sim/topology.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::sim {

Topology::Topology(TopologyConfig config) : config_(std::move(config)) {
  MPIPE_EXPECTS(config_.num_devices > 0, "need at least one device");
  MPIPE_EXPECTS(config_.devices_per_node > 0, "need devices per node");
  MPIPE_EXPECTS(config_.intra_node_bw > 0 && config_.inter_node_bw > 0 &&
                    config_.pcie_bw > 0,
                "bandwidths must be positive");
  MPIPE_EXPECTS(config_.launch_latency >= 0, "negative latency");
  MPIPE_EXPECTS(config_.p2p_efficiency > 0 && config_.p2p_efficiency <= 1.0,
                "p2p efficiency must be in (0, 1]");
  if (!config_.device_bw_scale.empty()) {
    MPIPE_EXPECTS(static_cast<int>(config_.device_bw_scale.size()) ==
                      config_.num_devices,
                  "device_bw_scale size mismatch");
    for (double s : config_.device_bw_scale) {
      MPIPE_EXPECTS(s > 0, "bandwidth scale must be positive");
    }
  }
}

Topology Topology::single_node(int num_devices) {
  TopologyConfig cfg;
  cfg.num_devices = num_devices;
  cfg.devices_per_node = num_devices;
  return Topology(cfg);
}

Topology Topology::multi_node(int nodes, int devices_per_node) {
  TopologyConfig cfg;
  cfg.num_devices = nodes * devices_per_node;
  cfg.devices_per_node = devices_per_node;
  return Topology(cfg);
}

int Topology::num_nodes() const {
  return (config_.num_devices + config_.devices_per_node - 1) /
         config_.devices_per_node;
}

int Topology::node_of(int device) const {
  MPIPE_EXPECTS(device >= 0 && device < config_.num_devices,
                "device out of range");
  return device / config_.devices_per_node;
}

double Topology::device_scale(int device) const {
  MPIPE_EXPECTS(device >= 0 && device < config_.num_devices,
                "device out of range");
  if (config_.device_bw_scale.empty()) return 1.0;
  return config_.device_bw_scale[static_cast<std::size_t>(device)];
}

double Topology::p2p_bandwidth(int src, int dst) const {
  MPIPE_EXPECTS(src != dst, "p2p between a device and itself");
  const double base =
      same_node(src, dst) ? config_.intra_node_bw : config_.inter_node_bw;
  return base * config_.p2p_efficiency *
         std::min(device_scale(src), device_scale(dst));
}

double Topology::alltoall_bandwidth(const std::vector<int>& group) const {
  MPIPE_EXPECTS(group.size() >= 2, "alltoall needs >= 2 participants");
  bool crosses_nodes = false;
  double min_scale = device_scale(group[0]);
  for (std::size_t i = 0; i < group.size(); ++i) {
    min_scale = std::min(min_scale, device_scale(group[i]));
    if (!same_node(group[0], group[i])) crosses_nodes = true;
  }
  const double base =
      crosses_nodes ? config_.inter_node_bw : config_.intra_node_bw;
  return base * min_scale;
}

double Topology::pcie_bandwidth(int device) const {
  return config_.pcie_bw * device_scale(device);
}

}  // namespace mpipe::sim
