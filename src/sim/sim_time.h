#pragma once
/// \file sim_time.h
/// Simulated time base. All simulator timestamps and durations are double
/// seconds; determinism comes from ordered event processing, not from the
/// representation.

namespace mpipe::sim {

using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;

}  // namespace mpipe::sim
