#pragma once
/// \file calibration.h
/// Closes the sim-vs-reality loop for the compute side of the cost model:
/// fit a piecewise-linear GEMM efficiency curve from measured kernel
/// timings, persist it, and install it into a CostModelConfig with an
/// up-front coverage check against the row range the granularity search
/// will probe. bench/calibrate_cost_model is the measuring harness; the
/// fit/load/apply functions here are deterministic and unit-tested.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace mpipe::sim {

/// One timed GEMM run at a given activation-panel row count.
struct GemmSample {
  std::int64_t rows = 0;
  double seconds = 0.0;
  std::uint64_t flops = 0;
};

/// Fits a GemmEfficiencyCurve from measured samples. The best sample
/// defines the machine's achievable peak and maps to `max_efficiency`
/// (CostModelConfig::gemm_max_efficiency), so the curve stays on the same
/// scale as the analytic formula it replaces. Duplicate row counts keep
/// the fastest run; knots are clamped so rows/efficiency never decreases
/// (measured noise cannot make a bigger GEMM look faster end-to-end).
GemmEfficiencyCurve fit_efficiency_curve(std::vector<GemmSample> samples,
                                         double max_efficiency);

/// Writes the curve as two-column CSV ("rows,efficiency"), one knot per
/// line — the file bench/calibrate_cost_model emits.
void save_efficiency_curve(const std::string& path,
                           const GemmEfficiencyCurve& curve);

/// Reads a curve written by save_efficiency_curve and validates it.
GemmEfficiencyCurve load_efficiency_curve(const std::string& path);

/// Installs `curve` into `config`, validating structure and that the
/// knots cover [required_lo, required_hi] — the micro-batch row range the
/// granularity search will probe (see GranularitySearcher::row_range).
/// Throws CheckError with an actionable message otherwise.
CostModelConfig apply_calibration(CostModelConfig config,
                                  GemmEfficiencyCurve curve,
                                  std::int64_t required_lo,
                                  std::int64_t required_hi);

/// One timed AllToAll-equivalent exchange: `bytes` is the payload the
/// busiest participant sent, `seconds` the measured wall time.
struct CommSample {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// Fits a CommBandwidthCurve from measured samples. Duplicate payloads
/// keep the fastest run; seconds are clamped non-decreasing (measured
/// noise cannot make a bigger exchange look faster end-to-end).
CommBandwidthCurve fit_comm_curve(std::vector<CommSample> samples);

/// Writes the curve as two-column CSV ("bytes,seconds"), one knot per
/// line — the file bench/calibrate_comm emits.
void save_comm_curve(const std::string& path,
                     const CommBandwidthCurve& curve);

/// Reads a curve written by save_comm_curve and validates it.
CommBandwidthCurve load_comm_curve(const std::string& path);

/// Installs `curve` into `config`, validating structure and that the
/// knots cover [required_lo, required_hi] — the AllToAll payload byte
/// range the granularity search will probe (see
/// GranularitySearcher::alltoall_payload_range). Throws CheckError with
/// an actionable message otherwise.
CostModelConfig apply_comm_calibration(CostModelConfig config,
                                       CommBandwidthCurve curve,
                                       std::uint64_t required_lo,
                                       std::uint64_t required_hi);

// ---- best-effort loading for entry points ----------------------------------

/// What try_apply_calibration_files did, per curve, in human-readable form
/// (examples and the trainer print `detail` so a silently-analytic cost
/// model is visible).
struct CalibrationStatus {
  bool gemm_loaded = false;
  bool comm_loaded = false;
  /// Wire/storage dtype the layer will run with (the dtype passed to
  /// try_apply_calibration_files). kF32 loads only the shared curves.
  DType dtype = DType::kF32;
  /// Whether a dtype-specific curve (CALIBRATION_gemm_<dtype>.csv /
  /// CALIBRATION_alltoall_<dtype>.csv) was found and installed into the
  /// per-dtype config slot. false with dtype != kF32 means that side falls
  /// back to the shared curve — `detail` says so explicitly.
  bool gemm_dtype_loaded = false;
  bool comm_dtype_loaded = false;
  std::string detail;
  /// Clamp counters of the installed comm curve (null when comm_loaded is
  /// false). The pointer aliases the live curve's counters, so reading it
  /// *after* a run reports how often that run's payloads fell outside the
  /// measured sweep — the tiny-micro-batch serving case the coverage check
  /// cannot reject up front, because the executed batch mix is unknown at
  /// load time.
  std::shared_ptr<const CommClampStats> comm_clamps;
};

/// Directories searched for the committed CALIBRATION_*.csv files:
/// $MPIPE_CALIBRATION_DIR (when set), then ".", "..", "../.." — entry
/// points run from the repo root, the build tree, or build/examples.
std::vector<std::string> default_calibration_dirs();

/// Installs whichever of CALIBRATION_gemm.csv / CALIBRATION_alltoall.csv
/// can be found *and* covers the required probe ranges into `config`.
/// Graceful by design: a missing file or insufficient knot coverage (the
/// workload probes outside the calibrated sweep) skips that curve and
/// records why in the returned status — the analytic formulas stay in
/// effect. A file that exists but fails structural validation still
/// throws: a corrupt committed artifact should be loud. Pass
/// comm_required_hi = 0 to skip the comm curve (single-device groups
/// never consult it).
///
/// `dtype` != kF32 additionally looks for CALIBRATION_gemm_<dtype>.csv /
/// CALIBRATION_alltoall_<dtype>.csv and installs them into the per-dtype
/// config slots under the same coverage contract (the caller passes
/// dtype-computed ranges). A missing dtype file is not an error — the
/// shared curve is the documented fallback — but it is recorded in
/// status.detail so a silently-shared curve is visible.
CalibrationStatus try_apply_calibration_files(
    CostModelConfig& config, std::int64_t gemm_required_lo,
    std::int64_t gemm_required_hi, std::uint64_t comm_required_lo,
    std::uint64_t comm_required_hi, DType dtype = DType::kF32,
    const std::vector<std::string>& search_dirs = default_calibration_dirs());

}  // namespace mpipe::sim
