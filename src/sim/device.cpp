#include "sim/device.h"

#include "common/check.h"

namespace mpipe::sim {

Device::Device(int id, int node) : id_(id), node_(node) {
  MPIPE_EXPECTS(id >= 0, "negative device id");
  MPIPE_EXPECTS(node >= 0, "negative node id");
  name_ = "gpu" + std::to_string(id) + "@node" + std::to_string(node);
}

}  // namespace mpipe::sim
