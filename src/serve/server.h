#pragma once
/// \file server.h
/// The serving loop — runtime::Trainer's forward-only sibling. One Server
/// owns a request queue, a continuous batcher, an SLO-driven plan and the
/// per-request metrics, and drives MoELayer::forward_only over whatever
/// the open-arrival traffic delivers:
///
///   arrivals -> RequestQueue -> ContinuousBatcher -> shard over devices
///            -> forward_only(n from the SLO plan) -> per-request records
///
/// Time: the server runs a virtual clock in simulated seconds. A batch's
/// service time is the forward graph's simulated makespan, so latency
/// percentiles are deterministic and replayable. The fitted per-op-class
/// corrections refine *planning* (the SLO ladder's probe timings), not
/// the recorded timeline — the same division as the training tier, where
/// StepReport's simulated timings stay uncorrected as the model-error
/// baseline. Measured wall-clock per batch is kept in
/// BatchRecord::measured_seconds for the measured-vs-modeled diff.
///
/// The warmup mirrors Trainer: the first `profile_warmup_batches` batches
/// run profiled, their forward diffs feed sim::CorrectionFit, and the
/// fitted factors are installed into the layer — after which the SLO plan
/// is recomputed, because corrected probe timings can move the largest
/// feasible rung.

#include <cstdint>
#include <map>
#include <vector>

#include "core/moe_layer.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_metrics.h"
#include "serve/slo_policy.h"
#include "sim/profile.h"

namespace mpipe::serve {

struct ServerOptions {
  SloPolicyOptions slo;

  /// Profile the first N batches and fit per-op-class corrections from
  /// their forward diffs (then re-plan). 0 disables the warmup.
  int profile_warmup_batches = 0;

  /// Profile every batch (measured_seconds on each BatchRecord), not just
  /// the warmup.
  bool profile_execution = false;

  /// Install the committed calibration curves (core::install_calibration)
  /// over the upper half of the batch ladder before planning. Serving
  /// batches below the calibrated sweep then run clamped-to-front-knot —
  /// recorded in the curve's CommClampStats via calibration_status().
  bool load_calibration = false;

  /// Retain per-request output tensors (output_for). Tests only — a real
  /// deployment hands outputs to the transport and drops them.
  bool keep_outputs = false;
};

class Server {
 public:
  Server(core::MoELayer& layer, ServerOptions options);

  /// Producers push here (thread-safe); drain()/run() consume.
  RequestQueue& queue() { return queue_; }

  /// Closed loop: pushes a whole arrival-ordered trace and serves it to
  /// completion. Returns the accumulated metrics.
  const ServeMetrics& run(std::vector<ServeRequest> trace);

  /// Serves until `expected_requests` have completed in total (across the
  /// server's lifetime). Spin-waits on an empty queue, so a concurrent
  /// producer can still be pushing — the TSAN tier drives this.
  const ServeMetrics& drain(std::size_t expected_requests);

  const ServeMetrics& metrics() const { return metrics_; }
  const ServePlan& plan() const { return selector_.last_plan(); }
  const sim::CalibrationStatus& calibration_status() const {
    return calibration_status_;
  }
  const sim::OpClassCorrections& corrections() const { return corrections_; }
  bool corrections_installed() const { return corrections_installed_; }
  double clock_seconds() const { return clock_; }

  /// Output rows of a served request (keep_outputs only).
  const Tensor& output_for(std::int64_t request_id) const;

 private:
  void execute_batch(MicroBatch mb);

  core::MoELayer* layer_;
  ServerOptions options_;
  RequestQueue queue_;
  ContinuousBatcher batcher_;
  SloSelector selector_;
  ServeMetrics metrics_;
  sim::CalibrationStatus calibration_status_;
  sim::CorrectionFit correction_fit_;
  sim::OpClassCorrections corrections_;
  bool corrections_installed_ = false;
  int profiled_batches_ = 0;
  double clock_ = 0.0;
  std::map<std::int64_t, Tensor> outputs_;
};

}  // namespace mpipe::serve
