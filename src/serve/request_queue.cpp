#include "serve/request_queue.h"

#include <limits>

#include "common/check.h"

namespace mpipe::serve {

void RequestQueue::push(ServeRequest r) {
  MPIPE_EXPECTS(r.tokens.defined() && r.tokens.shape().rank() == 2 &&
                    r.tokens.dim(0) >= 1,
                "request needs a (tokens, d_model) batch with >= 1 token");
  std::lock_guard<std::mutex> lock(mu_);
  MPIPE_EXPECTS(q_.empty() || r.arrival_seconds >= last_arrival_,
                "request arrivals must be pushed in non-decreasing "
                "timestamp order");
  last_arrival_ = r.arrival_seconds;
  pending_tokens_ += r.tokens.dim(0);
  q_.push_back(std::move(r));
}

std::vector<ServeRequest> RequestQueue::pop_arrived(double now,
                                                    std::int64_t max_tokens) {
  std::vector<ServeRequest> out;
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t taken = 0;
  while (!q_.empty() && q_.front().arrival_seconds <= now) {
    const std::int64_t t = q_.front().tokens.dim(0);
    // Head-of-line request always ships; later ones only while they fit.
    if (!out.empty() && max_tokens > 0 && taken + t > max_tokens) break;
    taken += t;
    pending_tokens_ -= t;
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

bool RequestQueue::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.empty();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::int64_t RequestQueue::pending_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_tokens_;
}

double RequestQueue::next_arrival() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return std::numeric_limits<double>::infinity();
  return q_.front().arrival_seconds;
}

}  // namespace mpipe::serve
