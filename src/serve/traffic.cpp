#include "serve/traffic.h"

#include <cmath>

#include "common/check.h"
#include "tensor/random_init.h"

namespace mpipe::serve {

namespace {

void validate(const TrafficOptions& options) {
  MPIPE_EXPECTS(options.num_requests >= 1, "empty trace");
  MPIPE_EXPECTS(options.rate_rps > 0.0, "arrival rate must be positive");
  MPIPE_EXPECTS(options.min_tokens >= 1 &&
                    options.max_tokens >= options.min_tokens,
                "bad per-request token range");
  MPIPE_EXPECTS(options.d_model >= 1, "traffic needs the layer's d_model");
}

ServeRequest make_request(const TrafficOptions& options, std::int64_t id,
                          double arrival, Rng& rng) {
  ServeRequest r;
  r.id = id;
  const std::int64_t span = options.max_tokens - options.min_tokens + 1;
  const std::int64_t t =
      options.min_tokens + static_cast<std::int64_t>(rng.uniform_index(
                               static_cast<std::uint64_t>(span)));
  r.tokens = random_tokens(t, options.d_model, rng);
  r.arrival_seconds = arrival;
  return r;
}

double exp_gap(double rate, Rng& rng) {
  // Inverse-CDF exponential; uniform() < 1 keeps the log finite.
  return -std::log(1.0 - rng.uniform()) / rate;
}

}  // namespace

std::vector<ServeRequest> poisson_trace(const TrafficOptions& options) {
  validate(options);
  Rng rng(options.seed);
  std::vector<ServeRequest> trace;
  trace.reserve(static_cast<std::size_t>(options.num_requests));
  double t = 0.0;
  for (std::int64_t i = 0; i < options.num_requests; ++i) {
    t += exp_gap(options.rate_rps, rng);
    trace.push_back(make_request(options, i, t, rng));
  }
  return trace;
}

std::vector<ServeRequest> bursty_trace(const TrafficOptions& options) {
  validate(options);
  MPIPE_EXPECTS(options.burst_factor >= 1.0 &&
                    options.burst_period_seconds > 0.0,
                "bad burst shape");
  Rng rng(options.seed);
  std::vector<ServeRequest> trace;
  trace.reserve(static_cast<std::size_t>(options.num_requests));
  double t = 0.0;
  for (std::int64_t i = 0; i < options.num_requests; ++i) {
    // Phase is a function of the current timestamp, so the trace stays a
    // single deterministic stream: "on" in even periods, "off" in odd.
    const auto period =
        static_cast<std::int64_t>(t / options.burst_period_seconds);
    const double rate = (period % 2 == 0)
                            ? options.rate_rps * options.burst_factor
                            : options.rate_rps / options.burst_factor;
    t += exp_gap(rate, rng);
    trace.push_back(make_request(options, i, t, rng));
  }
  return trace;
}

}  // namespace mpipe::serve
