#include "serve/serve_metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"

namespace mpipe::serve {

void ServeMetrics::record_request(RequestRecord r) {
  MPIPE_EXPECTS(r.completion_seconds >= r.dispatch_seconds &&
                    r.dispatch_seconds >= r.arrival_seconds,
                "request timeline must be arrival <= dispatch <= completion");
  total_tokens_ += static_cast<std::uint64_t>(r.tokens);
  requests_.push_back(r);
}

void ServeMetrics::record_batch(BatchRecord b) { batches_.push_back(b); }

double ServeMetrics::latency_percentile(double p) const {
  if (requests_.empty()) return 0.0;
  std::vector<double> v;
  v.reserve(requests_.size());
  for (const RequestRecord& r : requests_) v.push_back(r.latency());
  return percentile(std::move(v), p);
}

double ServeMetrics::queue_delay_percentile(double p) const {
  if (requests_.empty()) return 0.0;
  std::vector<double> v;
  v.reserve(requests_.size());
  for (const RequestRecord& r : requests_) v.push_back(r.queue_delay());
  return percentile(std::move(v), p);
}

double ServeMetrics::mean_batch_tokens() const {
  if (batches_.empty()) return 0.0;
  double total = 0.0;
  for (const BatchRecord& b : batches_) {
    total += static_cast<double>(b.tokens);
  }
  return total / static_cast<double>(batches_.size());
}

double ServeMetrics::tokens_per_second() const {
  if (requests_.empty()) return 0.0;
  double first_arrival = requests_.front().arrival_seconds;
  double last_completion = 0.0;
  for (const RequestRecord& r : requests_) {
    first_arrival = std::min(first_arrival, r.arrival_seconds);
    last_completion = std::max(last_completion, r.completion_seconds);
  }
  const double span = last_completion - first_arrival;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_tokens_) / span;
}

std::size_t ServeMetrics::slo_violations(double slo_seconds) const {
  std::size_t n = 0;
  for (const RequestRecord& r : requests_) {
    if (r.latency() > slo_seconds) ++n;
  }
  return n;
}

std::string ServeMetrics::summary() const {
  std::ostringstream os;
  os << "served " << requests_served() << " requests (" << total_tokens_
     << " tokens) in " << batches_executed() << " batches; latency p50 "
     << latency_percentile(0.5) * 1e3 << " ms, p99 "
     << latency_percentile(0.99) * 1e3 << " ms; "
     << tokens_per_second() << " tokens/s; mean batch "
     << mean_batch_tokens() << " tokens";
  return os.str();
}

}  // namespace mpipe::serve
