#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"

namespace mpipe::serve {

Server::Server(core::MoELayer& layer, ServerOptions options)
    : layer_(&layer),
      options_(options),
      batcher_(queue_, /*max_batch_tokens=*/0),
      selector_(layer, options.slo) {
  MPIPE_EXPECTS(options.profile_warmup_batches >= 0,
                "negative warmup batch count");
  if (options_.load_calibration) {
    // Calibrate for the steady-state upper half of the ladder; smaller
    // batches then consult the curve below its front knot, which the
    // clamp counters in calibration_status() make visible.
    const std::int64_t hi = options_.slo.max_tokens_per_device;
    calibration_status_ = core::install_calibration(
        layer.cluster(), layer.options(), std::max<std::int64_t>(1, hi / 4),
        hi);
  }
  selector_.plan();
  batcher_.set_max_batch_tokens(selector_.last_plan().max_batch_tokens);
}

const ServeMetrics& Server::run(std::vector<ServeRequest> trace) {
  const std::size_t target = metrics_.requests_served() + trace.size();
  for (ServeRequest& r : trace) queue_.push(std::move(r));
  return drain(target);
}

const ServeMetrics& Server::drain(std::size_t expected_requests) {
  while (metrics_.requests_served() < expected_requests) {
    MicroBatch mb = batcher_.next(clock_);
    if (mb.requests.empty()) {
      const double next = queue_.next_arrival();
      if (next > clock_ && std::isfinite(next)) {
        clock_ = next;  // idle: jump the virtual clock to the next arrival
        continue;
      }
      // Queue empty — a concurrent producer may still be stamping
      // requests; yield the core instead of spinning hot.
      std::this_thread::yield();
      continue;
    }
    execute_batch(std::move(mb));
  }
  return metrics_;
}

void Server::execute_batch(MicroBatch mb) {
  const int P = layer_->num_devices();
  const std::int64_t M = layer_->options().d_model;
  const std::int64_t T = mb.total_tokens;
  const std::int64_t bpd = (T + P - 1) / P;

  // Shard the coalesced batch across devices; the tail device(s) pad with
  // zero rows so every device presents the same (bpd, M) shape. Padding
  // rows route like real tokens (wasted work, the price of a rectangular
  // dispatch) but their output rows are never read back.
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    Tensor shard(Shape{bpd, M});
    const std::int64_t begin = std::min<std::int64_t>(T, d * bpd);
    const std::int64_t end = std::min<std::int64_t>(T, (d + 1) * bpd);
    if (end > begin) {
      shard.copy_into_rows(0, mb.coalesced.slice_rows(begin, end));
    }
    inputs.push_back(std::move(shard));
  }

  const int n = selector_.partitions_for(bpd);
  const bool warmup = profiled_batches_ < options_.profile_warmup_batches &&
                      !corrections_installed_;
  const bool profiled = warmup || options_.profile_execution;
  const bool layer_profiled = layer_->options().profile_execution;
  if (profiled != layer_profiled) layer_->set_profile_execution(profiled);
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<Tensor> outs = layer_->forward_only(inputs, n);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (profiled != layer_profiled) {
    layer_->set_profile_execution(layer_profiled);
  }
  const core::StepReport& report = layer_->last_report();

  // Virtual-clock accounting: the batch occupies the pipeline for its
  // simulated forward makespan (deterministic, replayable); the measured
  // wall-clock rides along in the batch record as the measured half of
  // the measured-vs-modeled pair.
  const double dispatch = clock_;
  const double completion = dispatch + report.forward_seconds;
  clock_ = completion;

  BatchRecord batch;
  batch.requests = static_cast<std::int64_t>(mb.requests.size());
  batch.tokens = T;
  batch.n_partitions = report.n_partitions;
  batch.dispatch_seconds = dispatch;
  batch.service_seconds = report.forward_seconds;
  batch.modeled_seconds = report.forward_seconds;
  batch.measured_seconds = profiled ? wall_seconds : 0.0;
  metrics_.record_batch(batch);

  for (std::size_t i = 0; i < mb.requests.size(); ++i) {
    RequestRecord r;
    r.id = mb.spans[i].id;
    r.tokens = mb.spans[i].rows;
    r.arrival_seconds = mb.requests[i].arrival_seconds;
    r.dispatch_seconds = dispatch;
    r.completion_seconds = completion;
    metrics_.record_request(r);
  }

  if (options_.keep_outputs) {
    // Undo the sharding: reassemble the (T, M) batch output, then slice
    // each request's rows back out by its span.
    Tensor full(Shape{T, M});
    for (int d = 0; d < P; ++d) {
      const std::int64_t begin = std::min<std::int64_t>(T, d * bpd);
      const std::int64_t end = std::min<std::int64_t>(T, (d + 1) * bpd);
      if (end > begin) {
        full.copy_into_rows(
            begin, outs[static_cast<std::size_t>(d)].slice_rows(
                       0, end - begin));
      }
    }
    for (const RequestSpan& span : mb.spans) {
      outputs_[span.id] =
          full.slice_rows(span.row_begin, span.row_begin + span.rows);
    }
  }

  if (warmup && report.profiled) {
    correction_fit_.add(report.forward_diff);
    if (++profiled_batches_ >= options_.profile_warmup_batches) {
      corrections_ = correction_fit_.fit();
      layer_->set_corrections(corrections_);
      corrections_installed_ = true;
      // Corrected probe timings can move the largest SLO-feasible rung:
      // re-plan and hand the batcher its new admission cap.
      selector_.plan();
      batcher_.set_max_batch_tokens(selector_.last_plan().max_batch_tokens);
    }
  }
}

const Tensor& Server::output_for(std::int64_t request_id) const {
  const auto it = outputs_.find(request_id);
  MPIPE_EXPECTS(it != outputs_.end(),
                "no retained output for request " +
                    std::to_string(request_id) +
                    " (keep_outputs off, or not served yet)");
  return it->second;
}

}  // namespace mpipe::serve
