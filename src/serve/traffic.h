#pragma once
/// \file traffic.h
/// Synthetic open-arrival traces for the serving bench and tests: Poisson
/// (memoryless, the queueing-theory default) and bursty (on/off phases —
/// the shape that actually stresses a continuous batcher, because the
/// burst's backlog is what batch coalescing amortises). Deterministic per
/// seed, like every other stochastic component in the repo.

#include <cstdint>

#include "common/rng.h"
#include "serve/request_queue.h"

namespace mpipe::serve {

struct TrafficOptions {
  std::int64_t num_requests = 64;
  double rate_rps = 1000.0;        ///< mean arrival rate, requests/second
  std::int64_t min_tokens = 1;     ///< per-request token count range
  std::int64_t max_tokens = 16;
  std::int64_t d_model = 0;        ///< token width (must match the layer)
  std::uint64_t seed = 1;
  // Bursty shape only: `burst_factor`x the mean rate while "on", near-idle
  // while "off"; phases alternate every `burst_period_seconds`.
  double burst_factor = 8.0;
  double burst_period_seconds = 0.01;
};

/// Exponential inter-arrival gaps at rate_rps; token counts uniform in
/// [min_tokens, max_tokens]; token values N(0, 1)-ish via random_tokens.
/// Requests are returned in arrival order with ids 0..n-1.
std::vector<ServeRequest> poisson_trace(const TrafficOptions& options);

/// On/off modulated Poisson: rate burst_factor * rate_rps during "on"
/// phases and rate_rps / burst_factor during "off", same marginals
/// otherwise. Returned in arrival order with ids 0..n-1.
std::vector<ServeRequest> bursty_trace(const TrafficOptions& options);

}  // namespace mpipe::serve
