#include "serve/batcher.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::serve {

ContinuousBatcher::ContinuousBatcher(RequestQueue& queue,
                                     std::int64_t max_batch_tokens)
    : queue_(&queue), max_batch_tokens_(max_batch_tokens) {
  MPIPE_EXPECTS(max_batch_tokens >= 0, "negative batch-token cap");
}

void ContinuousBatcher::set_max_batch_tokens(std::int64_t cap) {
  MPIPE_EXPECTS(cap >= 0, "negative batch-token cap");
  max_batch_tokens_ = cap;
}

MicroBatch ContinuousBatcher::next(double now) {
  MicroBatch mb;
  mb.requests = queue_->pop_arrived(now, max_batch_tokens_);
  if (mb.requests.empty()) return mb;

  for (const ServeRequest& r : mb.requests) {
    mb.spans.push_back({r.id, mb.total_tokens, r.tokens.dim(0)});
    mb.total_tokens += r.tokens.dim(0);
    mb.oldest_arrival = std::min(mb.oldest_arrival, r.arrival_seconds);
    mb.newest_arrival = std::max(mb.newest_arrival, r.arrival_seconds);
  }
  const std::int64_t d_model = mb.requests.front().tokens.dim(1);
  mb.coalesced = Tensor(Shape{mb.total_tokens, d_model});
  for (std::size_t i = 0; i < mb.requests.size(); ++i) {
    const Tensor& t = mb.requests[i].tokens;
    MPIPE_EXPECTS(t.dim(1) == d_model,
                  "coalescing requests of mismatched d_model");
    mb.coalesced.copy_into_rows(mb.spans[i].row_begin, t);
  }
  return mb;
}

}  // namespace mpipe::serve
