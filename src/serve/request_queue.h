#pragma once
/// \file request_queue.h
/// Open-arrival intake of the serving tier. Requests carry their own
/// arrival timestamp on a virtual clock (seconds since server start): the
/// closed-loop server replays a whole trace deterministically, and a live
/// producer thread can stamp wall-clock arrivals instead — the queue only
/// requires that timestamps be non-decreasing in push order (FIFO == EDF
/// under open arrivals).
///
/// Thread safety: push/pop are mutex-guarded so a producer thread can feed
/// the queue while the server loop drains it (the TSAN tier runs exactly
/// that). The batcher on top (batcher.h) never reorders what it pops, so
/// per-request FIFO order survives end to end.

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace mpipe::serve {

/// One inference request: a (tokens, d_model) batch of tokens that must be
/// routed, dispatched and combined together with whatever else the batcher
/// coalesces around it.
struct ServeRequest {
  std::int64_t id = 0;
  Tensor tokens;                 ///< (t, d_model)
  double arrival_seconds = 0.0;  ///< virtual-clock arrival timestamp
};

class RequestQueue {
 public:
  /// Enqueues a request. Arrival timestamps must be non-decreasing in push
  /// order (CheckError otherwise): the queue is FIFO and a time-travelling
  /// arrival would silently break latency accounting downstream.
  void push(ServeRequest r);

  /// Pops the longest prefix of requests with arrival <= now whose token
  /// total fits `max_tokens` (0 = unbounded). The head request is always
  /// admitted even when it alone exceeds the cap — an oversized request
  /// must run (alone) rather than livelock the queue. Empty result means
  /// nothing has arrived by `now`.
  std::vector<ServeRequest> pop_arrived(double now, std::int64_t max_tokens);

  bool empty() const;
  std::size_t size() const;
  std::int64_t pending_tokens() const;

  /// Arrival timestamp of the head request; +infinity when empty. The idle
  /// server advances its virtual clock here.
  double next_arrival() const;

 private:
  mutable std::mutex mu_;
  std::deque<ServeRequest> q_;
  std::int64_t pending_tokens_ = 0;
  double last_arrival_ = 0.0;
};

}  // namespace mpipe::serve
