#pragma once
/// \file batcher.h
/// Continuous batching: coalesces whatever requests have arrived into one
/// dispatch-ready micro-batch per server iteration (the serving analogue
/// of the training tier's fixed step batch). FIFO and order-preserving —
/// request r's tokens occupy one contiguous row span of the coalesced
/// tensor, spans follow arrival order, and rows within a span keep the
/// request's own token order — so per-request outputs can be sliced back
/// out of the batch output by span alone.

#include <cstdint>
#include <limits>
#include <vector>

#include "serve/request_queue.h"

namespace mpipe::serve {

/// Where one request's tokens live inside the coalesced batch.
struct RequestSpan {
  std::int64_t id = 0;
  std::int64_t row_begin = 0;
  std::int64_t rows = 0;
};

struct MicroBatch {
  std::vector<ServeRequest> requests;  ///< arrival (FIFO) order
  std::vector<RequestSpan> spans;      ///< same order; contiguous, gapless
  Tensor coalesced;                    ///< (total_tokens, d_model)
  std::int64_t total_tokens = 0;
  double oldest_arrival = std::numeric_limits<double>::infinity();
  double newest_arrival = 0.0;
};

class ContinuousBatcher {
 public:
  /// `max_batch_tokens` caps the coalesced batch (0 = unbounded); the SLO
  /// selector re-plans it at runtime via set_max_batch_tokens.
  ContinuousBatcher(RequestQueue& queue, std::int64_t max_batch_tokens);

  /// Pops all requests arrived by `now` (up to the token cap) and
  /// coalesces them. Empty optional-like result: a MicroBatch with zero
  /// requests means nothing had arrived.
  MicroBatch next(double now);

  void set_max_batch_tokens(std::int64_t cap);
  std::int64_t max_batch_tokens() const { return max_batch_tokens_; }

 private:
  RequestQueue* queue_;
  std::int64_t max_batch_tokens_;
};

}  // namespace mpipe::serve
