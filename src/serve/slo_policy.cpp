#include "serve/slo_policy.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mpipe::serve {

namespace {

/// The partition candidates a layer would actually run — mirrors the
/// resolution install_calibration applies (fixed n pins the set, pipeline
/// off forces 1).
std::vector<int> candidate_partitions(const core::MoELayerOptions& options) {
  if (!options.pipeline) return {1};
  if (options.num_partitions > 0) return {options.num_partitions};
  return options.candidate_partitions;
}

}  // namespace

std::string ServePlan::summary() const {
  std::ostringstream os;
  os << "serve plan: admit " << tokens_per_device << " tokens/device ("
     << max_batch_tokens << " total), n=" << n_partitions << ", predicted "
     << predicted_seconds * 1e3 << " ms"
     << (slo_feasible ? "" : " [SLO INFEASIBLE — degraded to smallest rung]")
     << ", Eq-10 forward argmin " << core::to_string(strategy)
     << ", dtype " << to_string(compute_dtype);
  if (!curve_provenance.empty()) os << " (" << curve_provenance << ")";
  return os.str();
}

SloSelector::SloSelector(core::MoELayer& layer, SloPolicyOptions options)
    : layer_(&layer), options_(options) {
  MPIPE_EXPECTS(options.slo_seconds >= 0.0, "negative SLO");
  MPIPE_EXPECTS(options.max_tokens_per_device >= 1,
                "empty batch ladder");
}

ServePlan SloSelector::plan() {
  ServePlan plan;
  const auto candidates = candidate_partitions(layer_->options());
  const DType dt = layer_->options().compute_dtype;
  plan.compute_dtype = dt;
  {
    // Record which curves probe_forward_seconds will consult for this
    // dtype, so the summary can say what ranked the rungs.
    const auto& cfg = layer_->cluster().cost_model().config();
    auto gemm_src = [&]() -> std::string {
      const auto& c = cfg.gemm_curve_for(dt);
      if (c.empty()) return "analytic";
      if (dt != DType::kF32 && &c != &cfg.gemm_curve) {
        return std::string("calibrated[") + to_string(dt) + "]";
      }
      return "calibrated[shared]";
    };
    auto comm_src = [&]() -> std::string {
      const auto& c = cfg.comm_curve_for(dt);
      if (c.empty()) return "analytic";
      if (dt != DType::kF32 && &c != &cfg.comm_curve) {
        return std::string("calibrated[") + to_string(dt) + "]";
      }
      return "calibrated[shared]";
    };
    plan.curve_provenance =
        "gemm " + gemm_src() + ", comm " + comm_src();
  }

  // Probe ladder: powers of two up to max_tokens_per_device, plus the cap
  // itself when it is not a power of two.
  std::vector<std::int64_t> ladder;
  for (std::int64_t b = 1; b < options_.max_tokens_per_device; b *= 2) {
    ladder.push_back(b);
  }
  ladder.push_back(options_.max_tokens_per_device);

  for (const std::int64_t b : ladder) {
    ServeRung rung;
    rung.tokens_per_device = b;
    rung.predicted_seconds = -1.0;
    for (const int n : candidates) {
      if (n > b) continue;  // empty partitions probe nothing real
      const double t = layer_->probe_forward_seconds(b, n);
      if (rung.predicted_seconds < 0.0 || t < rung.predicted_seconds) {
        rung.predicted_seconds = t;
        rung.n_partitions = n;
      }
    }
    if (rung.predicted_seconds < 0.0) {
      // Every candidate exceeds b (e.g. candidates start at 8): run the
      // smallest candidate anyway — partitions beyond the batch are
      // degenerate but legal.
      rung.n_partitions = *std::min_element(candidates.begin(),
                                            candidates.end());
      rung.predicted_seconds =
          layer_->probe_forward_seconds(b, rung.n_partitions);
    }
    plan.rungs.push_back(rung);
  }

  // Largest rung whose prediction meets the SLO; the smallest rung
  // (degraded, flagged) when none does. No SLO -> the top rung.
  const ServeRung* chosen = nullptr;
  for (const ServeRung& r : plan.rungs) {
    if (options_.slo_seconds <= 0.0 ||
        r.predicted_seconds <= options_.slo_seconds) {
      chosen = &r;
    }
  }
  plan.slo_feasible = chosen != nullptr;
  if (chosen == nullptr) chosen = &plan.rungs.front();
  plan.tokens_per_device = chosen->tokens_per_device;
  plan.n_partitions = chosen->n_partitions;
  plan.predicted_seconds = chosen->predicted_seconds;
  plan.max_batch_tokens =
      chosen->tokens_per_device * layer_->num_devices();

  // Eq-10 forward ranking at the operating point (reporting only).
  const std::int64_t micro = std::max<std::int64_t>(
      1, plan.tokens_per_device / plan.n_partitions);
  const core::MoELayerOptions& lo = layer_->options();
  core::StrategySelector selector(
      core::StrategySelector::measure(layer_->cluster(), micro, lo.d_model),
      layer_->corrections());
  const core::ReuseStrategy all[] = {
      core::ReuseStrategy::kS1, core::ReuseStrategy::kS2,
      core::ReuseStrategy::kS3, core::ReuseStrategy::kS4};
  double best = 0.0;
  for (const core::ReuseStrategy s : all) {
    const double c =
        selector.model().forward_cost(s, micro, lo.d_model, lo.d_hidden);
    plan.strategy_forward_costs.push_back(c);
    if (plan.strategy_forward_costs.size() == 1 || c < best) {
      best = c;
      plan.strategy = s;
    }
  }

  plan_ = plan;
  return plan;
}

int SloSelector::partitions_for(std::int64_t tokens_per_device) const {
  MPIPE_EXPECTS(!plan_.rungs.empty(), "partitions_for before plan()");
  for (const ServeRung& r : plan_.rungs) {
    if (r.tokens_per_device >= tokens_per_device) return r.n_partitions;
  }
  return plan_.rungs.back().n_partitions;
}

}  // namespace mpipe::serve
