#pragma once
/// \file slo_policy.h
/// Latency-SLO-driven batch/granularity planning — the serving counterpart
/// of the training tier's throughput objective. Training asks "which (n,
/// strategy) minimises step time for a fixed batch"; serving inverts the
/// question: "what is the largest batch (and its best n) whose predicted
/// forward latency still meets the SLO". Bigger admitted batches buy
/// tokens/s, the SLO caps how much latency that purchase may cost.
///
/// The selector probes a ladder of per-device batch sizes through
/// MoELayer::probe_forward_seconds — the same corrected cost model the
/// Algorithm-1 granularity search trusts, but timing the *inference* graph
/// (no offloads, no backward) — and additionally ranks the Eq-10 forward
/// costs of S1–S4 at the chosen operating point (reporting only: a
/// forward-only step strips every offload op, so the strategies' forward
/// schedules coincide; the ranking documents what the paper's model says
/// about the point the server chose).

#include <cstdint>
#include <string>
#include <vector>

#include "core/moe_layer.h"

namespace mpipe::serve {

struct SloPolicyOptions {
  /// Per-dispatch forward-latency target in seconds; 0 disables the cap
  /// (the plan then admits max_tokens_per_device outright).
  double slo_seconds = 0.0;
  /// Upper bound of the probed per-device batch ladder (powers of two up
  /// to and including this value).
  std::int64_t max_tokens_per_device = 256;
};

/// One probed operating point: the best partition count at that batch size
/// and its predicted forward latency.
struct ServeRung {
  std::int64_t tokens_per_device = 0;
  int n_partitions = 1;
  double predicted_seconds = 0.0;
};

struct ServePlan {
  /// Admission cap handed to the batcher (tokens_per_device × devices).
  std::int64_t max_batch_tokens = 0;
  std::int64_t tokens_per_device = 0;
  int n_partitions = 1;
  double predicted_seconds = 0.0;
  /// False when even the smallest probed batch misses the SLO; the plan
  /// then degrades to that smallest rung rather than refusing to serve.
  bool slo_feasible = true;
  /// Eq-10 forward-cost ranking at the chosen operating point (S1..S4
  /// order, seconds) and its argmin — reporting, see file comment.
  std::vector<double> strategy_forward_costs;
  core::ReuseStrategy strategy = core::ReuseStrategy::kS4;
  /// Every probed rung, ascending batch size (inspection / tests).
  std::vector<ServeRung> rungs;

  /// Wire/storage dtype the probed layer runs with
  /// (MoELayerOptions::compute_dtype) — the format every rung's predicted
  /// latency was costed in.
  DType compute_dtype = DType::kF32;
  /// Which cost curves the ranked probes consulted, e.g.
  /// "gemm calibrated[bf16], comm calibrated[shared]" — calibrated[<dtype>]
  /// is a dtype-specific sweep, calibrated[shared] the fp32 curve fallback,
  /// analytic the closed-form model.
  std::string curve_provenance;

  std::string summary() const;
};

class SloSelector {
 public:
  SloSelector(core::MoELayer& layer, SloPolicyOptions options);

  /// Probes the ladder under the layer's *current* corrections and picks
  /// the largest SLO-feasible rung. Call again after set_corrections — the
  /// server re-plans when its warmup fit lands.
  ServePlan plan();

  /// Best partition count for a dispatch of `tokens_per_device` rows,
  /// looked up from the last plan's rungs (smallest rung that covers the
  /// request; the top rung for anything larger). plan() must have run.
  int partitions_for(std::int64_t tokens_per_device) const;

  const ServePlan& last_plan() const { return plan_; }

 private:
  core::MoELayer* layer_;
  SloPolicyOptions options_;
  ServePlan plan_;
};

}  // namespace mpipe::serve
