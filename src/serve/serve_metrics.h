#pragma once
/// \file serve_metrics.h
/// Per-request latency accounting for the serving tier. Training metrics
/// aggregate per step; serving quality lives in the tail, so every request
/// keeps its own arrival → dispatch → completion timeline and the summary
/// reports percentiles over them, not means.

#include <cstdint>
#include <string>
#include <vector>

namespace mpipe::serve {

/// One served request's timeline on the virtual clock.
struct RequestRecord {
  std::int64_t id = 0;
  std::int64_t tokens = 0;
  double arrival_seconds = 0.0;
  double dispatch_seconds = 0.0;    ///< when its batch started executing
  double completion_seconds = 0.0;  ///< when its batch finished

  double latency() const { return completion_seconds - arrival_seconds; }
  double queue_delay() const { return dispatch_seconds - arrival_seconds; }
};

/// One executed micro-batch.
struct BatchRecord {
  std::int64_t requests = 0;
  std::int64_t tokens = 0;           ///< real tokens (padding excluded)
  int n_partitions = 1;
  double dispatch_seconds = 0.0;     ///< virtual-clock start
  double service_seconds = 0.0;      ///< what the virtual clock advanced by
  double modeled_seconds = 0.0;      ///< simulated forward makespan
  double measured_seconds = 0.0;     ///< profiled wall makespan (0 = off)
};

class ServeMetrics {
 public:
  void record_request(RequestRecord r);
  void record_batch(BatchRecord b);

  const std::vector<RequestRecord>& requests() const { return requests_; }
  const std::vector<BatchRecord>& batches() const { return batches_; }

  std::size_t requests_served() const { return requests_.size(); }
  std::size_t batches_executed() const { return batches_.size(); }
  std::uint64_t total_tokens() const { return total_tokens_; }

  /// p in [0, 1] over per-request end-to-end latency / queueing delay.
  double latency_percentile(double p) const;
  double queue_delay_percentile(double p) const;
  double mean_batch_tokens() const;

  /// Aggregate throughput: total real tokens over the span from the first
  /// arrival to the last completion (virtual clock).
  double tokens_per_second() const;

  /// Requests whose end-to-end latency exceeded `slo_seconds`.
  std::size_t slo_violations(double slo_seconds) const;

  std::string summary() const;

 private:
  std::vector<RequestRecord> requests_;
  std::vector<BatchRecord> batches_;
  std::uint64_t total_tokens_ = 0;
};

}  // namespace mpipe::serve
