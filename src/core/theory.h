#pragma once
/// \file theory.h
/// Closed-form memory model of the paper (§II-B, §III-D, Equations 1–6).
/// All results are bytes (fp32 elements × 4). Benches print these next to
/// the tracker's achieved numbers (Fig 10).

#include <cstdint>

namespace mpipe::core {

struct MemoryTheoryParams {
  std::int64_t d_model = 0;        ///< M
  std::int64_t d_hidden = 0;       ///< H
  std::int64_t num_experts = 0;    ///< E (for the replicated gating network)
  std::int64_t experts_per_device = 1;
  std::int64_t tokens_per_device = 0;  ///< B
  int n_partitions = 1;                ///< n
};

class MemoryTheory {
 public:
  explicit MemoryTheory(MemoryTheoryParams p);

  /// Eq 1: model states = 4 × parameter bytes (params, grads, momentum,
  /// variance) of the gating network plus the local experts.
  std::uint64_t model_states() const;

  /// Eq 2: activations without pipelining = (4BM + BH) elements.
  std::uint64_t activations() const;

  /// Eq 3: peak temporary buffers without pipelining = (BM + BH).
  std::uint64_t temp_buffers() const;

  /// Eq 4: with pipelining, both activations and peak temp buffers are
  /// (4BM + BH).
  std::uint64_t pipeline_activations() const;
  std::uint64_t pipeline_temp_buffers() const;

  /// Eq 5: reuse saving for activations (== saving for temp buffers):
  /// B(2M(n-2)/n + H(n-1)/n).
  std::uint64_t reuse_saving() const;

  /// Eq 6: memory saving ratio
  /// phi = (dAct + dBuf) / (Mms + Mpipe_act + Mpipe_buf).
  double saving_ratio() const;

  const MemoryTheoryParams& params() const { return params_; }

 private:
  MemoryTheoryParams params_;
};

}  // namespace mpipe::core
