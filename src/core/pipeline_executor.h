#pragma once
/// \file pipeline_executor.h
/// Step execution reports: simulated times, GPU utilisation and the memory
/// footprint snapshot every bench reads. The heavy lifting (functional +
/// timed execution) lives in sim::Cluster; this layer aggregates.

#include <cstdint>
#include <string>

#include "core/reuse_strategy.h"
#include "mem/device_allocator.h"
#include "tensor/dtype.h"
#include "sim/profile.h"
#include "sim/timing_engine.h"

namespace mpipe::core {

/// Peak bytes by category (maximum over devices unless stated otherwise).
struct MemorySnapshot {
  std::uint64_t model_states = 0;
  std::uint64_t activations = 0;
  std::uint64_t temp_buffers = 0;
  std::uint64_t comm = 0;
  std::uint64_t total_peak = 0;  ///< peak of the concurrent total

  std::uint64_t breakdown_sum() const {
    return model_states + activations + temp_buffers + comm;
  }
};

/// Reads the per-category peaks of one device allocator.
MemorySnapshot snapshot_peaks(const mem::DeviceAllocator& allocator);

/// Element-wise max over devices — the footprint of the busiest device,
/// which is what "peak memory" means on a real cluster.
MemorySnapshot max_over_devices(const std::vector<MemorySnapshot>& snaps);

struct StepReport {
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  int n_partitions = 1;
  ReuseStrategy strategy = ReuseStrategy::kNone;
  double mean_gpu_utilization = 0.0;  ///< efficiency-weighted, fwd+bwd
  MemorySnapshot memory;
  sim::TimingResult forward_timing;
  sim::TimingResult backward_timing;

  /// Measured wall-clock side, filled when the step ran with
  /// MoELayerOptions::profile_execution: the reconstructed timelines and
  /// the op-by-op simulated-vs-measured diffs. The chrome://tracing JSON
  /// dumps (measured + simulated tracks per device) are additionally
  /// gated on MoELayerOptions::trace_execution — inspection output only,
  /// so routine profiled steps skip the serialisation. Empty and
  /// cost-free when profiling is off.
  /// Wire/storage format the step ran with (MoELayerOptions::compute_dtype).
  DType compute_dtype = DType::kF32;
  /// Sum over every AllToAll in the step (fwd + bwd) of the bytes its
  /// busiest participant sent, in compute_dtype's wire format — the paper's
  /// Fig-10 payload axis. bf16 halves this vs fp32; int8 quarters it (plus
  /// one fp32 scale per row).
  std::uint64_t alltoall_payload_bytes = 0;
  /// Accounted bytes of the quantized expert-weight copies on the busiest
  /// device (0 for kF32, where the fp32 masters are the compute weights).
  std::uint64_t expert_weight_bytes = 0;

  bool profiled = false;
  sim::MeasuredTimeline forward_measured;
  sim::MeasuredTimeline backward_measured;
  sim::ScheduleDiff forward_diff;
  sim::ScheduleDiff backward_diff;
  std::string forward_trace_json;
  std::string backward_trace_json;

  /// Ops the watchdog flagged as stragglers (fwd + bwd), filled when the
  /// step was profiled and MoELayerOptions::straggler_threshold > 0. See
  /// sim::detect_stragglers for the normalization.
  std::vector<sim::StragglerFlag> stragglers;

  /// Simulated step time (the TimingEngine's makespans) — the "modeled"
  /// number of the measured-vs-modeled pair.
  double step_seconds() const { return forward_seconds + backward_seconds; }
  /// Measured step time (wall-clock makespans); 0 when not profiled.
  double measured_step_seconds() const {
    return forward_measured.makespan + backward_measured.makespan;
  }
  /// Per-op-class measured/modeled ratios over fwd+bwd — the model-error
  /// summary, in the same shape the correction loop installs.
  sim::OpClassCorrections model_error() const;
  /// One-line measured-vs-modeled summary for logs and examples.
  std::string model_error_summary() const;
};

/// Combines fwd+bwd utilisation: total useful compute over total makespan.
double combined_utilization(const sim::TimingResult& fwd,
                            const sim::TimingResult& bwd);

}  // namespace mpipe::core
