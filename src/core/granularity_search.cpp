#include "core/granularity_search.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace mpipe::core {

GranularitySearcher::GranularitySearcher(std::vector<int> candidates,
                                         TrialFn trial)
    : candidates_(std::move(candidates)), trial_(std::move(trial)) {
  MPIPE_EXPECTS(!candidates_.empty(), "no candidate partition counts");
  MPIPE_EXPECTS(static_cast<bool>(trial_), "null trial function");
  for (int n : candidates_) {
    MPIPE_EXPECTS(n >= 1, "partition count must be >= 1");
  }
}

std::pair<std::int64_t, std::int64_t> GranularitySearcher::row_range(
    std::int64_t min_tokens, std::int64_t max_tokens,
    const std::vector<int>& candidates) {
  MPIPE_EXPECTS(min_tokens >= 1 && max_tokens >= min_tokens,
                "bad token range");
  MPIPE_EXPECTS(!candidates.empty(), "no candidate partition counts");
  std::int64_t min_n = candidates.front(), max_n = candidates.front();
  for (int n : candidates) {
    MPIPE_EXPECTS(n >= 1, "partition count must be >= 1");
    min_n = std::min<std::int64_t>(min_n, n);
    max_n = std::max<std::int64_t>(max_n, n);
  }
  // Each trial splits B into n near-even partitions (floor(B/n) and
  // floor(B/n)+1 rows, see Dispatcher::chunk_sizes), so the smallest
  // panel probed is floor(min_tokens/max_n) and the largest
  // ceil(max_tokens/min_n) — not max_tokens itself unless 1 is a
  // candidate.
  const std::int64_t lo = std::max<std::int64_t>(1, min_tokens / max_n);
  const std::int64_t hi = (max_tokens + min_n - 1) / min_n;
  return {lo, hi};
}

std::pair<std::int64_t, std::int64_t> GranularitySearcher::expert_panel_range(
    std::int64_t min_tokens, std::int64_t max_tokens,
    const std::vector<int>& candidates, int experts_per_device) {
  MPIPE_EXPECTS(experts_per_device >= 1, "bad experts_per_device");
  const auto rows = row_range(min_tokens, max_tokens, candidates);
  return {std::max<std::int64_t>(1, rows.first / experts_per_device),
          rows.second};
}

std::pair<std::uint64_t, std::uint64_t>
GranularitySearcher::alltoall_payload_range(std::int64_t min_tokens,
                                            std::int64_t max_tokens,
                                            const std::vector<int>& candidates,
                                            std::int64_t d_model,
                                            int group_size, DType dtype) {
  MPIPE_EXPECTS(d_model >= 1, "bad d_model");
  MPIPE_EXPECTS(group_size >= 2, "payload range needs >= 2 participants");
  const auto rows = row_range(min_tokens, max_tokens, candidates);
  const std::uint64_t row_bytes = quantized_bytes(1, d_model, dtype);
  const std::uint64_t p = static_cast<std::uint64_t>(group_size);
  // Balanced exchange: the busiest sender ships (P-1)/P of its micro-batch.
  const std::uint64_t lo = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(rows.first) * row_bytes * (p - 1) / p);
  // Full skew: every row of the largest micro-batch leaves the device.
  const std::uint64_t hi =
      static_cast<std::uint64_t>(rows.second) * row_bytes;
  return {lo, hi};
}

int GranularitySearcher::search_best(std::int64_t b) {
  ++stats_.full_searches;
  double best_cost = std::numeric_limits<double>::infinity();
  int best_n = candidates_.front();
  for (int n : candidates_) {
    if (n > b && b > 0) continue;  // cannot split below one token
    ++stats_.trials;
    const double cost = trial_(b, n);
    if (cost < best_cost) {
      best_cost = cost;
      best_n = n;
    }
  }
  return best_n;
}

GranularitySearcher::State GranularitySearcher::export_state() const {
  State state;
  state.cache.assign(cache_.begin(), cache_.end());
  std::sort(state.cache.begin(), state.cache.end());
  state.ranges = ranges_.entries();
  return state;
}

void GranularitySearcher::import_state(const State& state) {
  cache_.clear();
  cache_.insert(state.cache.begin(), state.cache.end());
  ranges_.restore(state.ranges);
}

void GranularitySearcher::invalidate() {
  cache_.clear();
  ranges_ = RangeSet{};
  ++stats_.invalidations;
}

int GranularitySearcher::configure(std::int64_t b) {
  MPIPE_EXPECTS(b >= 1, "batch must hold at least one token");
  // Lines 3-5: exact-B cache.
  if (auto it = cache_.find(b); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  // Line 6: range lookup.
  int n;
  if (auto found = ranges_.find(b)) {
    ++stats_.range_hits;
    n = *found;
  } else {
    // Lines 7-15: full search, then grow/insert the range for n.
    n = search_best(b);
    ranges_.record(b, n);
  }
  cache_[b] = n;
  return n;
}

}  // namespace mpipe::core
