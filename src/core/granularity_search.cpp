#include "core/granularity_search.h"

#include <limits>

#include "common/check.h"

namespace mpipe::core {

GranularitySearcher::GranularitySearcher(std::vector<int> candidates,
                                         TrialFn trial)
    : candidates_(std::move(candidates)), trial_(std::move(trial)) {
  MPIPE_EXPECTS(!candidates_.empty(), "no candidate partition counts");
  MPIPE_EXPECTS(static_cast<bool>(trial_), "null trial function");
  for (int n : candidates_) {
    MPIPE_EXPECTS(n >= 1, "partition count must be >= 1");
  }
}

int GranularitySearcher::search_best(std::int64_t b) {
  ++stats_.full_searches;
  double best_cost = std::numeric_limits<double>::infinity();
  int best_n = candidates_.front();
  for (int n : candidates_) {
    if (n > b && b > 0) continue;  // cannot split below one token
    ++stats_.trials;
    const double cost = trial_(b, n);
    if (cost < best_cost) {
      best_cost = cost;
      best_n = n;
    }
  }
  return best_n;
}

int GranularitySearcher::configure(std::int64_t b) {
  MPIPE_EXPECTS(b >= 1, "batch must hold at least one token");
  // Lines 3-5: exact-B cache.
  if (auto it = cache_.find(b); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  // Line 6: range lookup.
  int n;
  if (auto found = ranges_.find(b)) {
    ++stats_.range_hits;
    n = *found;
  } else {
    // Lines 7-15: full search, then grow/insert the range for n.
    n = search_best(b);
    ranges_.record(b, n);
  }
  cache_[b] = n;
  return n;
}

}  // namespace mpipe::core
