#include "core/moe_layer.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "sim/trace.h"

namespace mpipe::core {

namespace {

std::uint64_t model_state_bytes(const MoELayerOptions& options,
                                int experts_per_device) {
  // Parameters held by one device: replicated gating (E*M) plus the local
  // experts (2*M*H + H + M each). Adam keeps 4 copies (params, grads,
  // momentum, variance).
  const std::uint64_t params =
      static_cast<std::uint64_t>(options.num_experts) * options.d_model +
      static_cast<std::uint64_t>(experts_per_device) *
          (2ull * options.d_model * options.d_hidden + options.d_hidden +
           options.d_model);
  std::uint64_t bytes = 4ull * params * sizeof(float);
  if (options.compute_dtype != DType::kF32) {
    // The quantized W1/W2 side copies the forward path reads live next to
    // the fp32 masters (which the optimizer still owns).
    bytes += static_cast<std::uint64_t>(experts_per_device) *
             (quantized_bytes(options.d_model, options.d_hidden,
                              options.compute_dtype) +
              quantized_bytes(options.d_hidden, options.d_model,
                              options.compute_dtype));
  }
  return bytes;
}

}  // namespace

sim::CalibrationStatus install_calibration(sim::Cluster& cluster,
                                           const MoELayerOptions& options,
                                           std::int64_t min_tokens,
                                           std::int64_t max_tokens) {
  MPIPE_EXPECTS(min_tokens >= 1 && max_tokens >= min_tokens,
                "bad token range");
  std::vector<int> candidates = options.candidate_partitions;
  if (!options.pipeline) {
    candidates = {1};
  } else if (options.num_partitions > 0) {
    candidates = {options.num_partitions};
  }
  const int epd = options.num_experts / cluster.num_devices();
  const auto rows = GranularitySearcher::expert_panel_range(
      min_tokens, max_tokens, candidates, epd);
  std::pair<std::uint64_t, std::uint64_t> payloads{0, 0};
  if (cluster.num_devices() >= 2) {
    // Payloads are counted in the layer's wire format: a bf16 layer
    // presents half the bytes, so the coverage check must use the range
    // the probes will actually consult.
    payloads = GranularitySearcher::alltoall_payload_range(
        min_tokens, max_tokens, candidates, options.d_model,
        cluster.num_devices(), options.compute_dtype);
  }
  sim::CostModelConfig config = cluster.cost_model().config();
  sim::CalibrationStatus status = sim::try_apply_calibration_files(
      config, rows.first, rows.second, payloads.first, payloads.second,
      options.compute_dtype);
  if (status.gemm_loaded || status.comm_loaded ||
      status.gemm_dtype_loaded || status.comm_dtype_loaded) {
    cluster.set_cost_config(std::move(config));
  }
  return status;
}

MoELayer::MoELayer(sim::Cluster& cluster, MoELayerOptions options)
    : cluster_(&cluster),
      options_(std::move(options)),
      world_(comm::ProcessGroup::world(cluster)),
      builder_(world_, staging_, options_.compute_scale,
               options_.comm_scale) {
  MPIPE_EXPECTS(options_.d_model > 0 && options_.d_hidden > 0,
                "bad layer dimensions");
  MPIPE_EXPECTS(options_.top_k == 1,
                "this implementation (like the paper's evaluation) uses "
                "top-1 gating");
  const int P = cluster.num_devices();
  MPIPE_EXPECTS(options_.num_experts % P == 0,
                "num_experts must be a multiple of the device count");
  MPIPE_EXPECTS(options_.num_partitions >= 0, "negative partition count");

  const int epd = options_.num_experts / P;
  for (int d = 0; d < P; ++d) {
    allocators_.emplace_back(d, options_.device_capacity_bytes);
    model_state_allocs_.push_back(allocators_.back().allocate(
        mem::Category::kModelState, model_state_bytes(options_, epd)));
  }
  // Fault-injection wiring happens after the model-state allocations:
  // injected OOM targets step-time buffer acquisition (the recoverable
  // case), not layer construction, and step allocations then consume the
  // injector's key sequence from 0 — deterministic across runs.
  if (auto injector = cluster.fault_injector_shared()) {
    for (auto& a : allocators_) a.set_fault_injector(injector);
  }

  if (options_.mode == ExecutionMode::kFull) {
    Rng master(options_.seed);
    // The gating network is replicated data-parallel: every device starts
    // from identical weights (same derived seed).
    Rng gate_rng = master.fork();
    for (int d = 0; d < P; ++d) {
      Rng replica = gate_rng;  // copy: identical weights on every device
      gates_.emplace_back(options_.d_model, options_.num_experts, replica);
    }
    experts_.resize(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      for (int k = 0; k < epd; ++k) {
        Rng expert_rng = master.fork();
        experts_[static_cast<std::size_t>(d)].emplace_back(
            options_.d_model, options_.d_hidden, options_.activation,
            expert_rng);
        experts_[static_cast<std::size_t>(d)].back().set_compute_dtype(
            options_.compute_dtype);
      }
    }
  }

  searcher_ = std::make_unique<GranularitySearcher>(
      options_.candidate_partitions, [this](std::int64_t b, int n) {
        const ReuseStrategy probe_strategy =
            options_.memory_reuse && n > 1
                ? configure_strategy(b, n)
                : ReuseStrategy::kNone;
        return probe_step_seconds(b, n, probe_strategy);
      });
}

mem::DeviceAllocator& MoELayer::allocator(int device) {
  MPIPE_EXPECTS(device >= 0 && device < num_devices(),
                "device out of range");
  return allocators_[static_cast<std::size_t>(device)];
}

int MoELayer::num_devices() const { return cluster_->num_devices(); }

int MoELayer::experts_per_device() const {
  return options_.num_experts / num_devices();
}

moe::GatingNetwork& MoELayer::gate(int device) {
  MPIPE_EXPECTS(!gates_.empty(), "no parameters in timing-only mode");
  return gates_[static_cast<std::size_t>(device)];
}

moe::ExpertFFN& MoELayer::expert(int device, int local_index) {
  MPIPE_EXPECTS(!experts_.empty(), "no parameters in timing-only mode");
  return experts_[static_cast<std::size_t>(device)]
                 [static_cast<std::size_t>(local_index)];
}

LayerRefs MoELayer::refs() {
  LayerRefs r;
  if (options_.mode == ExecutionMode::kFull) {
    r.gates = &gates_;
    r.experts = &experts_;
  }
  return r;
}

int MoELayer::configure_partitions(std::int64_t tokens_per_device) {
  if (!options_.pipeline) return 1;
  if (options_.num_partitions > 0) return options_.num_partitions;
  const auto& curve =
      cluster_->cost_model().config().gemm_curve_for(options_.compute_dtype);
  if (!curve.empty()) {
    // A measured efficiency curve is loaded: the search must rank
    // candidates from interpolated (not extrapolated) timings, so the
    // probe's row range has to sit inside the calibrated sweep. The
    // schedule evaluates efficiency per expert panel (received rows split
    // across local experts), hence expert_panel_range, not the raw
    // micro-batch range. Fails with an actionable message instead of
    // silently clamping to the nearest knot.
    const auto range = GranularitySearcher::expert_panel_range(
        tokens_per_device, tokens_per_device, options_.candidate_partitions,
        experts_per_device());
    curve.validate_covers(range.first, range.second);
  }
  const auto& comm_curve =
      cluster_->cost_model().config().comm_curve_for(options_.compute_dtype);
  if (!comm_curve.empty() && num_devices() >= 2) {
    // Same contract for the comm side: the probe's AllToAll payloads must
    // sit inside the calibrated sweep, not extrapolate past it. Steps that
    // pin n and skip this gate (forward_only with n_override — the batcher
    // dispatches whatever tokens arrived) instead record every off-sweep
    // consultation in the curve's CommClampStats, so tiny serving
    // micro-batches can't silently run off the measured sweep.
    const auto payloads = GranularitySearcher::alltoall_payload_range(
        tokens_per_device, tokens_per_device, options_.candidate_partitions,
        options_.d_model, num_devices(), options_.compute_dtype);
    comm_curve.validate_covers(payloads.first, payloads.second);
  }
  return searcher_->configure(tokens_per_device);
}

void MoELayer::set_corrections(const sim::OpClassCorrections& corrections) {
  MPIPE_EXPECTS(corrections.compute > 0.0 && corrections.comm > 0.0 &&
                    corrections.memcpy > 0.0,
                "correction factors must be positive");
  if (corrections.compute == corrections_.compute &&
      corrections.comm == corrections_.comm &&
      corrections.memcpy == corrections_.memcpy) {
    return;  // unchanged landscape: cached search verdicts stay valid
  }
  corrections_ = corrections;
  searcher_->invalidate();
}

ReuseStrategy MoELayer::configure_strategy(std::int64_t tokens_per_device,
                                           int n) {
  if (!options_.memory_reuse || n <= 1) return ReuseStrategy::kNone;
  if (options_.strategy.has_value()) return *options_.strategy;
  const std::int64_t micro = std::max<std::int64_t>(1, tokens_per_device / n);
  StrategySelector selector(
      StrategySelector::measure(*cluster_, micro, options_.d_model),
      corrections_);
  strategy_choice_ = selector.select(micro, options_.d_model,
                                     options_.d_hidden);
  return strategy_choice_.strategy;
}

double MoELayer::probe_step_seconds(std::int64_t tokens_per_device, int n,
                                    ReuseStrategy strategy) {
  MoeStepContext ctx;
  ctx.mode = ExecutionMode::kTimingOnly;
  ctx.strategy = strategy;
  ctx.d_model = options_.d_model;
  ctx.d_hidden = options_.d_hidden;
  ctx.dtype = options_.compute_dtype;
  ctx.plan = moe::Dispatcher::synthetic(tokens_per_device, num_devices(),
                                        experts_per_device(), n, probe_skew_);
  ctx.dev.resize(static_cast<std::size_t>(num_devices()));
  // Probes need no buffer accounting — only the schedule shape matters.
  sim::OpGraph fwd = builder_.build_forward(ctx, LayerRefs{});
  sim::OpGraph bwd = builder_.build_backward(ctx, LayerRefs{});
  // Probes are timing-shape-only: they must never materialise tensors,
  // carry closures, or spin up the parallel executor (time_only never
  // invokes closures, and an all-timing graph keeps it that way).
  MPIPE_EXPECTS(fwd.is_timing_only() && bwd.is_timing_only(),
                "granularity probe built a functional graph");
  // Reality correction: scale each op class by its fitted measured/modeled
  // factor before timing, so the search ranks candidates by what profiled
  // steps say the hardware actually does (identity factors are a no-op).
  sim::apply_corrections(fwd, corrections_);
  sim::apply_corrections(bwd, corrections_);
  const double t_fwd = cluster_->time_only(fwd).makespan;
  const double t_bwd = cluster_->time_only(bwd).makespan;
  return t_fwd + t_bwd;
}

double MoELayer::probe_forward_seconds(std::int64_t tokens_per_device,
                                       int n) {
  MPIPE_EXPECTS(tokens_per_device > 0, "empty probe batch");
  MPIPE_EXPECTS(n >= 1, "probe needs at least one partition");
  MoeStepContext ctx;
  ctx.mode = ExecutionMode::kTimingOnly;
  // Mirror forward_only's execution shape exactly: ring reuse when
  // enabled, and the forward_only flag so no offload op is ever timed.
  ctx.strategy =
      options_.memory_reuse ? ReuseStrategy::kS4 : ReuseStrategy::kNone;
  ctx.forward_only = true;
  ctx.d_model = options_.d_model;
  ctx.d_hidden = options_.d_hidden;
  ctx.dtype = options_.compute_dtype;
  ctx.plan = moe::Dispatcher::synthetic(tokens_per_device, num_devices(),
                                        experts_per_device(), n, probe_skew_);
  ctx.dev.resize(static_cast<std::size_t>(num_devices()));
  sim::OpGraph fwd = builder_.build_forward(ctx, LayerRefs{});
  MPIPE_EXPECTS(fwd.is_timing_only(),
                "forward-only probe built a functional graph");
  sim::apply_corrections(fwd, corrections_);
  return cluster_->time_only(fwd).makespan;
}

void MoELayer::setup_forward_buffers(MoeStepContext& ctx) {
  const bool mat = ctx.functional();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E = options_.num_experts;
  const int depth = std::min(2, ctx.n());
  // Ring slots are sized to the device's own worst partition, not the
  // cluster-wide maximum — under routing skew only the hot device pays.
  auto device_cap = [&](int d) {
    std::int64_t cap = 1;
    for (int p = 0; p < ctx.n(); ++p) {
      cap = std::max(cap,
                     ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)]);
    }
    return cap;
  };

  for (int d = 0; d < ctx.num_devices(); ++d) {
    const std::int64_t cap = device_cap(d);
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    auto& alloc = allocator(d);
    // T_I is caller-owned but device-resident: account it.
    st.x_alloc = alloc.allocate(
        mem::Category::kActivation,
        static_cast<std::uint64_t>(B) * M * sizeof(float));
    auto out = alloc.alloc_tensor(Shape{B, M}, mem::Category::kActivation,
                                  mat);
    st.out = out.tensor;
    st.out_alloc = std::move(out.allocation);
    // Router probabilities — the "small tensors" of Fig 10's gap.
    st.gating_alloc = alloc.allocate(
        mem::Category::kActivation,
        static_cast<std::uint64_t>(B) * E * sizeof(float));

    // The T_DI / T_DO payload buffers hold dispatch/combine wire rows: a
    // real device stores them in ctx.dtype, so they are accounted at the
    // quantized size. T_M is the fp32-accumulating FFN intermediate and
    // stays full width.
    if (ctx.reuse()) {
      st.tdi.emplace(alloc, "tdi", Shape{cap, M}, depth,
                     mem::Category::kActivation, mat, ctx.dtype);
      st.tm.emplace(alloc, "tm", Shape{cap, H}, 1,
                    mem::Category::kActivation, mat);
      st.tdo.emplace(alloc, "tdo", Shape{cap, M}, depth,
                     mem::Category::kActivation, mat, ctx.dtype);
    } else {
      for (int p = 0; p < ctx.n(); ++p) {
        const std::int64_t rows = std::max<std::int64_t>(
            1, ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)]);
        st.tdi_parts.push_back(alloc.alloc_tensor(
            Shape{rows, M}, mem::Category::kActivation, mat, ctx.dtype));
        st.tm_parts.push_back(alloc.alloc_tensor(
            Shape{rows, H}, mem::Category::kActivation, mat));
        st.tdo_parts.push_back(alloc.alloc_tensor(
            Shape{rows, M}, mem::Category::kActivation, mat, ctx.dtype));
      }
    }
  }
}

void MoELayer::setup_backward_buffers(MoeStepContext& ctx) {
  const bool mat = ctx.functional();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t chunk =
      std::max<std::int64_t>(1, ctx.plan.part(0).chunk_rows);
  const int depth = std::min(2, ctx.n());
  auto device_cap = [&](int d) {
    std::int64_t cap = 1;
    for (int p = 0; p < ctx.n(); ++p) {
      cap = std::max(cap,
                     ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)]);
    }
    return cap;
  };

  for (int d = 0; d < ctx.num_devices(); ++d) {
    const std::int64_t cap = device_cap(d);
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    auto& alloc = allocator(d);
    auto dx = alloc.alloc_tensor(Shape{B, M}, mem::Category::kTempBuffer,
                                 mat);
    st.dx = dx.tensor;
    st.dx_alloc = std::move(dx.allocation);
    st.dgate.assign(static_cast<std::size_t>(B), 0.0f);

    if (options_.sequential_temp_accounting && !ctx.reuse() &&
        ctx.n() == 1) {
      // FastMoE-style serial execution frees each gradient tensor as soon
      // as the next one is produced; only two adjacent tensors coexist
      // (Eq 3: BM + BH). Register the peak, keep the real tensors
      // untracked.
      {
        auto walk = alloc.allocate(
            mem::Category::kTempBuffer,
            static_cast<std::uint64_t>(B) * (M + H) * sizeof(float));
      }
      const std::int64_t rows =
          std::max<std::int64_t>(1, ctx.plan.part(0).recv_rows
                                        [static_cast<std::size_t>(d)]);
      auto untracked = [&](Shape shape, bool materialize) {
        mem::TrackedTensor t;
        if (materialize) t.tensor = Tensor(shape);
        return t;
      };
      st.d_ys_parts.push_back(untracked(Shape{chunk, M}, mat));
      st.d_tdo_parts.push_back(untracked(Shape{rows, M}, mat));
      st.d_tm_parts.push_back(untracked(Shape{rows, H}, false));
      st.d_tdi_parts.push_back(untracked(Shape{rows, M}, mat));
      continue;
    }

    if (ctx.reuse()) {
      // The gate-scaled gradient staging is written for every partition
      // up-front (before the reversed pipeline drains it), so it keeps one
      // slot per partition; with the dx buffer this reproduces the paper's
      // post-saving temp footprint 2BM + 4BM/n + BH/n exactly.
      st.d_ys.emplace(alloc, "d_ys", Shape{chunk, M}, ctx.n(),
                      mem::Category::kTempBuffer, mat);
      // d_T_DO / d_T_DI carry gradient wire payloads (received from S' /
      // shipped by R'), so — like T_DI / T_DO — they are accounted in
      // ctx.dtype. d_ys and d_T_M stay fp32 (local accumulation).
      st.d_tdo.emplace(alloc, "d_tdo", Shape{cap, M}, depth,
                       mem::Category::kTempBuffer, mat, ctx.dtype);
      // The d_T_M gradients live inside the fused expert-backward kernel;
      // the ring is accounted (Eq 5) but never addressed.
      st.d_tm.emplace(alloc, "d_tm", Shape{cap, H}, 1,
                      mem::Category::kTempBuffer, /*materialize=*/false);
      st.d_tdi.emplace(alloc, "d_tdi", Shape{cap, M}, depth,
                       mem::Category::kTempBuffer, mat, ctx.dtype);
    } else {
      for (int p = 0; p < ctx.n(); ++p) {
        const std::int64_t rows = std::max<std::int64_t>(
            1, ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)]);
        const std::int64_t chunk_rows =
            std::max<std::int64_t>(1, ctx.plan.part(p).chunk_rows);
        st.d_ys_parts.push_back(alloc.alloc_tensor(
            Shape{chunk_rows, M}, mem::Category::kTempBuffer, mat));
        st.d_tdo_parts.push_back(alloc.alloc_tensor(
            Shape{rows, M}, mem::Category::kTempBuffer, mat, ctx.dtype));
        st.d_tm_parts.push_back(alloc.alloc_tensor(
            Shape{rows, H}, mem::Category::kTempBuffer,
            /*materialize=*/false));
        st.d_tdi_parts.push_back(alloc.alloc_tensor(
            Shape{rows, M}, mem::Category::kTempBuffer, mat, ctx.dtype));
      }
    }
  }
}

std::vector<Tensor> MoELayer::forward(const std::vector<Tensor>& inputs) {
  MPIPE_EXPECTS(options_.mode == ExecutionMode::kFull,
                "forward() requires full execution mode");
  MPIPE_EXPECTS(static_cast<int>(inputs.size()) == num_devices(),
                "need one input batch per device");
  const std::int64_t B = inputs[0].dim(0);
  for (const Tensor& t : inputs) {
    MPIPE_EXPECTS(t.shape().rank() == 2 && t.dim(0) == B &&
                      t.dim(1) == options_.d_model,
                  "inputs must all be (B, d_model)");
  }
  for (auto& a : allocators_) a.tracker().reset_peaks();
  staging_.clear();

  const int n = configure_partitions(B);
  const ReuseStrategy strategy = configure_strategy(B, n);

  // Everything from here on allocates step state (ctx_ buffers, staging
  // slots) and runs the graph; a failure part-way — injected OOM, a comm
  // TransientError that exhausted its retries — must not leave that state
  // resident, or every subsequent step inherits the leak. The catch
  // releases it and rethrows, leaving the layer ready for a retried step.
  try {
  ctx_.emplace();
  ctx_->mode = ExecutionMode::kFull;
  ctx_->strategy = strategy;
  ctx_->d_model = options_.d_model;
  ctx_->d_hidden = options_.d_hidden;
  ctx_->dtype = options_.compute_dtype;
  ctx_->dev.resize(static_cast<std::size_t>(num_devices()));

  // Gating runs first (the plan depends on it); the graph still carries a
  // timed router op per device.
  std::vector<std::vector<std::int64_t>> expert_of;
  for (int d = 0; d < num_devices(); ++d) {
    auto& st = ctx_->dev[static_cast<std::size_t>(d)];
    st.x = inputs[static_cast<std::size_t>(d)];
    st.gating = gates_[static_cast<std::size_t>(d)].forward(st.x);
    expert_of.push_back(st.gating.expert_of);
  }
  ctx_->plan = moe::Dispatcher::build(expert_of, num_devices(),
                                      experts_per_device(), n);
  setup_forward_buffers(*ctx_);

  sim::OpGraph graph = builder_.build_forward(*ctx_, refs());
  report_ = StepReport{};
  report_.n_partitions = n;
  report_.strategy = strategy;
  report_.compute_dtype = ctx_->dtype;
  report_.alltoall_payload_bytes = ctx_->comm_payload_bytes;
  report_.expert_weight_bytes = expert_weight_bytes();
  sim::ExecutionProfile profile;
  sim::ExecutionProfile* sink =
      options_.profile_execution ? &profile : nullptr;
  report_.forward_timing = cluster_->run(graph, exec_policy(), sink);
  report_.forward_seconds = report_.forward_timing.makespan;
  if (sink) {
    report_.profiled = true;
    report_.forward_measured =
        sim::build_timeline(graph, profile, num_devices());
    report_.forward_diff = sim::diff_schedules(
        graph, report_.forward_timing, report_.forward_measured);
    if (options_.straggler_threshold > 0.0) {
      report_.stragglers = sim::detect_stragglers(
          graph, report_.forward_diff, options_.straggler_threshold);
    }
    if (options_.trace_execution) {
      report_.forward_trace_json = sim::to_chrome_trace(
          graph, report_.forward_timing, report_.forward_measured);
    }
  }

  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<std::size_t>(num_devices()));
  for (int d = 0; d < num_devices(); ++d) {
    outputs.push_back(ctx_->dev[static_cast<std::size_t>(d)].out);
  }
  return outputs;
  } catch (...) {
    ctx_.reset();
    staging_.clear();
    throw;
  }
}

std::vector<Tensor> MoELayer::forward_only(const std::vector<Tensor>& inputs,
                                           int n_override) {
  MPIPE_EXPECTS(options_.mode == ExecutionMode::kFull,
                "forward_only() requires full execution mode");
  MPIPE_EXPECTS(static_cast<int>(inputs.size()) == num_devices(),
                "need one input batch per device");
  MPIPE_EXPECTS(n_override >= 0, "negative partition override");
  const std::int64_t B = inputs[0].dim(0);
  for (const Tensor& t : inputs) {
    MPIPE_EXPECTS(t.shape().rank() == 2 && t.dim(0) == B &&
                      t.dim(1) == options_.d_model,
                  "inputs must all be (B, d_model)");
  }
  for (auto& a : allocators_) a.tracker().reset_peaks();
  staging_.clear();

  const int n = n_override > 0 ? n_override : configure_partitions(B);
  // Strategy is moot for inference: no backward means nothing to restore,
  // and the forward_only flag already strips every offload op. kS4 (pure
  // re-comm/recompute) is the honest label — its forward never stashes —
  // and it turns the ring buffers on, so working memory is the paper's
  // 2·cap·M + cap·H rings instead of n per-partition activation stashes.
  const ReuseStrategy strategy =
      options_.memory_reuse ? ReuseStrategy::kS4 : ReuseStrategy::kNone;

  // Same failure contract as forward(): a part-way failure (injected OOM,
  // exhausted comm retries, a payload-scan detection) must release all
  // step state before rethrowing, so the server can replay the batch.
  try {
    ctx_.emplace();
    ctx_->mode = ExecutionMode::kFull;
    ctx_->strategy = strategy;
    ctx_->forward_only = true;
    ctx_->d_model = options_.d_model;
    ctx_->d_hidden = options_.d_hidden;
    ctx_->dtype = options_.compute_dtype;
    ctx_->dev.resize(static_cast<std::size_t>(num_devices()));

    std::vector<std::vector<std::int64_t>> expert_of;
    for (int d = 0; d < num_devices(); ++d) {
      auto& st = ctx_->dev[static_cast<std::size_t>(d)];
      st.x = inputs[static_cast<std::size_t>(d)];
      st.gating = gates_[static_cast<std::size_t>(d)].forward(st.x);
      expert_of.push_back(st.gating.expert_of);
    }
    ctx_->plan = moe::Dispatcher::build(expert_of, num_devices(),
                                        experts_per_device(), n);
    setup_forward_buffers(*ctx_);

    sim::OpGraph graph = builder_.build_forward(*ctx_, refs());
    report_ = StepReport{};
    report_.n_partitions = n;
    report_.strategy = strategy;
    report_.compute_dtype = ctx_->dtype;
    report_.alltoall_payload_bytes = ctx_->comm_payload_bytes;
    report_.expert_weight_bytes = expert_weight_bytes();
    sim::ExecutionProfile profile;
    sim::ExecutionProfile* sink =
        options_.profile_execution ? &profile : nullptr;
    report_.forward_timing = cluster_->run(graph, exec_policy(), sink);
    report_.forward_seconds = report_.forward_timing.makespan;
    if (sink) {
      report_.profiled = true;
      report_.forward_measured =
          sim::build_timeline(graph, profile, num_devices());
      report_.forward_diff = sim::diff_schedules(
          graph, report_.forward_timing, report_.forward_measured);
      if (options_.straggler_threshold > 0.0) {
        report_.stragglers = sim::detect_stragglers(
            graph, report_.forward_diff, options_.straggler_threshold);
      }
      if (options_.trace_execution) {
        report_.forward_trace_json = sim::to_chrome_trace(
            graph, report_.forward_timing, report_.forward_measured);
      }
    }
    report_.mean_gpu_utilization =
        combined_utilization(report_.forward_timing, sim::TimingResult{});

    std::vector<MemorySnapshot> snaps;
    for (const auto& a : allocators_) snaps.push_back(snapshot_peaks(a));
    report_.memory = max_over_devices(snaps);

    std::vector<Tensor> outputs;
    outputs.reserve(static_cast<std::size_t>(num_devices()));
    for (int d = 0; d < num_devices(); ++d) {
      outputs.push_back(ctx_->dev[static_cast<std::size_t>(d)].out);
    }
    // Nothing stashed for a backward: the step state dies here. The
    // outputs survive via the Tensor's shared storage; a backward() call
    // now fails its has-context precondition, exactly as intended.
    ctx_.reset();
    staging_.clear();
    return outputs;
  } catch (...) {
    ctx_.reset();
    staging_.clear();
    throw;
  }
}

std::vector<Tensor> MoELayer::backward(
    const std::vector<Tensor>& grad_outputs) {
  MPIPE_EXPECTS(ctx_.has_value(), "backward() without a prior forward()");
  MPIPE_EXPECTS(static_cast<int>(grad_outputs.size()) == num_devices(),
                "need one gradient per device");
  for (int d = 0; d < num_devices(); ++d) {
    auto& st = ctx_->dev[static_cast<std::size_t>(d)];
    MPIPE_EXPECTS(grad_outputs[static_cast<std::size_t>(d)].shape() ==
                      st.out.shape(),
                  "gradient shape mismatch");
    st.dy = grad_outputs[static_cast<std::size_t>(d)];
  }
  // Same failure contract as forward(): a part-way failure releases all
  // step state before rethrowing so a retried step starts clean.
  try {
  setup_backward_buffers(*ctx_);

  sim::OpGraph graph = builder_.build_backward(*ctx_, refs());
  // The backward graph's AllToAlls accumulated onto the same counter.
  report_.alltoall_payload_bytes = ctx_->comm_payload_bytes;
  sim::ExecutionProfile profile;
  sim::ExecutionProfile* sink =
      options_.profile_execution ? &profile : nullptr;
  report_.backward_timing = cluster_->run(graph, exec_policy(), sink);
  report_.backward_seconds = report_.backward_timing.makespan;
  if (sink) {
    report_.profiled = true;
    report_.backward_measured =
        sim::build_timeline(graph, profile, num_devices());
    report_.backward_diff = sim::diff_schedules(
        graph, report_.backward_timing, report_.backward_measured);
    if (options_.straggler_threshold > 0.0) {
      auto flags = sim::detect_stragglers(graph, report_.backward_diff,
                                          options_.straggler_threshold);
      report_.stragglers.insert(report_.stragglers.end(), flags.begin(),
                                flags.end());
    }
    if (options_.trace_execution) {
      report_.backward_trace_json = sim::to_chrome_trace(
          graph, report_.backward_timing, report_.backward_measured);
    }
  }
  report_.mean_gpu_utilization =
      combined_utilization(report_.forward_timing, report_.backward_timing);

  std::vector<MemorySnapshot> snaps;
  for (const auto& a : allocators_) snaps.push_back(snapshot_peaks(a));
  report_.memory = max_over_devices(snaps);

  std::vector<Tensor> grads;
  grads.reserve(static_cast<std::size_t>(num_devices()));
  for (int d = 0; d < num_devices(); ++d) {
    grads.push_back(ctx_->dev[static_cast<std::size_t>(d)].dx);
  }
  ctx_.reset();  // releases activations and temp buffers
  staging_.clear();
  return grads;
  } catch (...) {
    ctx_.reset();
    staging_.clear();
    throw;
  }
}

StepReport MoELayer::step_timing(std::int64_t tokens_per_device,
                                 double skew) {
  MPIPE_EXPECTS(tokens_per_device > 0, "empty batch");
  for (auto& a : allocators_) a.tracker().reset_peaks();

  // The online search measures real steps, which see the same routing
  // skew as the step being configured.
  probe_skew_ = skew;
  const int n = configure_partitions(tokens_per_device);
  const ReuseStrategy strategy =
      configure_strategy(tokens_per_device, n);

  MoeStepContext ctx;
  ctx.mode = options_.mode == ExecutionMode::kFull
                 ? ExecutionMode::kTimingOnly  // timing probe on a full layer
                 : options_.mode;
  ctx.strategy = strategy;
  ctx.d_model = options_.d_model;
  ctx.d_hidden = options_.d_hidden;
  ctx.dtype = options_.compute_dtype;
  ctx.plan = moe::Dispatcher::synthetic(tokens_per_device, num_devices(),
                                        experts_per_device(), n, skew);
  ctx.dev.resize(static_cast<std::size_t>(num_devices()));
  setup_forward_buffers(ctx);

  StepReport report;
  report.n_partitions = n;
  report.strategy = strategy;
  report.compute_dtype = ctx.dtype;
  report.expert_weight_bytes = expert_weight_bytes();
  sim::OpGraph fwd = builder_.build_forward(ctx, LayerRefs{});
  MPIPE_EXPECTS(fwd.is_timing_only(),
                "timing-only step built a functional graph");
  report.forward_timing = cluster_->time_only(fwd);
  report.forward_seconds = report.forward_timing.makespan;

  setup_backward_buffers(ctx);
  sim::OpGraph bwd = builder_.build_backward(ctx, LayerRefs{});
  MPIPE_EXPECTS(bwd.is_timing_only(),
                "timing-only step built a functional graph");
  report.backward_timing = cluster_->time_only(bwd);
  report.backward_seconds = report.backward_timing.makespan;
  report.alltoall_payload_bytes = ctx.comm_payload_bytes;
  report.mean_gpu_utilization =
      combined_utilization(report.forward_timing, report.backward_timing);

  std::vector<MemorySnapshot> snaps;
  for (const auto& a : allocators_) snaps.push_back(snapshot_peaks(a));
  report.memory = max_over_devices(snaps);
  report_ = report;
  return report;
}

void MoELayer::refresh_quantized_weights() {
  if (options_.compute_dtype == DType::kF32) return;
  for (auto& device_experts : experts_) {
    for (auto& expert : device_experts) expert.refresh_quantized();
  }
}

std::uint64_t MoELayer::expert_weight_bytes() const {
  if (options_.mode != ExecutionMode::kFull) {
    // Timing-only layers hold no tensors; report the accounted size.
    if (options_.compute_dtype == DType::kF32) return 0;
    const std::uint64_t epd =
        static_cast<std::uint64_t>(options_.num_experts) /
        static_cast<std::uint64_t>(cluster_->num_devices());
    return epd * (quantized_bytes(options_.d_model, options_.d_hidden,
                                  options_.compute_dtype) +
                  quantized_bytes(options_.d_hidden, options_.d_model,
                                  options_.compute_dtype));
  }
  std::uint64_t peak = 0;
  for (const auto& device_experts : experts_) {
    std::uint64_t device_bytes = 0;
    for (const auto& expert : device_experts) {
      device_bytes += expert.quantized_weight_bytes();
    }
    peak = std::max(peak, device_bytes);
  }
  return peak;
}

std::vector<Tensor*> MoELayer::parameters() {
  std::vector<Tensor*> out;
  for (auto& gate : gates_) out.push_back(&gate.weight());
  for (auto& device_experts : experts_) {
    for (auto& expert : device_experts) {
      for (Tensor* p : expert.parameters()) out.push_back(p);
    }
  }
  return out;
}

std::vector<Tensor*> MoELayer::gradients() {
  std::vector<Tensor*> out;
  for (auto& gate : gates_) out.push_back(&gate.weight_grad());
  for (auto& device_experts : experts_) {
    for (auto& expert : device_experts) {
      for (Tensor* g : expert.gradients()) out.push_back(g);
    }
  }
  return out;
}

void MoELayer::zero_grad() {
  for (auto& gate : gates_) gate.zero_grad();
  for (auto& device_experts : experts_) {
    for (auto& expert : device_experts) expert.zero_grad();
  }
}

}  // namespace mpipe::core
