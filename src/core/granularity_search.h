#pragma once
/// \file granularity_search.h
/// Algorithm 1: adaptive pipeline-granularity configuration. Batch sizes in
/// MoE training are dynamic, so the searcher amortises trials by (a) a hash
/// cache of exact B values and (b) the RangeSet exploiting that the optimal
/// n grows monotonically with B.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/range_set.h"
#include "tensor/dtype.h"

namespace mpipe::core {

struct SearchStats {
  std::size_t cache_hits = 0;
  std::size_t range_hits = 0;
  std::size_t full_searches = 0;
  std::size_t trials = 0;  ///< individual (B, n) measurements
  std::size_t invalidations = 0;  ///< cache flushes after trial-fn changes
};

class GranularitySearcher {
 public:
  /// `trial` measures (or simulates) one training step with the given batch
  /// size and partition count, returning seconds; `candidates` is the n
  /// search space (powers of two in the paper's evaluation).
  using TrialFn = std::function<double(std::int64_t b, int n)>;

  GranularitySearcher(std::vector<int> candidates, TrialFn trial);

  /// Algorithm 1: returns the number of partitions for batch size B.
  int configure(std::int64_t b);

  /// Drops the exact-B cache and the monotone ranges so every future
  /// configure() re-measures. Required whenever the trial function's cost
  /// landscape changes underneath the searcher — installing measured
  /// per-op-class correction factors (sim::OpClassCorrections) is exactly
  /// that: cached verdicts ranked by the uncorrected model would otherwise
  /// shadow the reality-corrected ranking forever.
  void invalidate();

  const SearchStats& stats() const { return stats_; }
  const RangeSet& ranges() const { return ranges_; }

  /// Cache + range state for checkpoint/restore. Algorithm 1's verdicts
  /// are history-dependent (a range hit can return a different n than a
  /// fresh full search would), and the partition count changes the step
  /// math bitwise — so a bitwise-identical resume must restore the
  /// searcher's memory, not just invalidate it. The cache is exported
  /// key-ascending so the serialized form is deterministic.
  struct State {
    std::vector<std::pair<std::int64_t, int>> cache;
    std::vector<BatchRange> ranges;
  };
  State export_state() const;
  void import_state(const State& state);

  /// Exhaustive argmin over candidates (searchBestGran) — exposed for the
  /// Fig-12 ablation comparing adaptive vs oracle.
  int search_best(std::int64_t b);

  /// [smallest, largest] micro-batch row count Algorithm 1 can probe for
  /// batches in [min_tokens, max_tokens] over `candidates` (each trial
  /// splits B into n partitions of floor(B/n) / floor(B/n)+1 rows — the
  /// lower bound uses the floor chunk). This is the row range a
  /// calibrated cost-model efficiency curve must cover when GEMM panels
  /// are whole micro-batches — pass it to sim::apply_calibration so
  /// divergence fails at load time. The pipeline schedule actually
  /// evaluates efficiency per expert panel (rows / experts_per_device);
  /// use expert_panel_range for that tighter contract.
  static std::pair<std::int64_t, std::int64_t> row_range(
      std::int64_t min_tokens, std::int64_t max_tokens,
      const std::vector<int>& candidates);

  /// row_range tightened to what the schedule builder feeds
  /// gemm_efficiency: each device's received micro-batch is split across
  /// its local experts, so the smallest probed panel is
  /// floor(min_tokens/max_n) / experts_per_device (clamped to >= 1). The
  /// upper bound keeps the whole-micro-batch ceil(max_tokens/min_n):
  /// under routing skew the hot device can receive several devices'
  /// shares, and the headroom keeps those probes interpolating instead of
  /// extrapolating (beyond it the curve clamps to its plateau knot).
  static std::pair<std::int64_t, std::int64_t> expert_panel_range(
      std::int64_t min_tokens, std::int64_t max_tokens,
      const std::vector<int>& candidates, int experts_per_device);

  /// [smallest, largest] AllToAll payload (bytes the busiest participant
  /// sends) Algorithm 1 can present to the comm cost model for batches in
  /// [min_tokens, max_tokens] over `candidates`, with `d_model`-wide rows
  /// exchanged across `group_size` devices in `dtype`'s wire format
  /// (dtype-width elements plus one fp32 scale per int8 row). The lower bound is the
  /// balanced exchange of the smallest probed micro-batch (each device
  /// keeps its 1/P share); the upper bound is full skew of the largest
  /// (every row leaves the device). Mostly-local routings fall below the
  /// lower bound and clamp to the curve's front knot, which is documented
  /// behaviour — this is the byte range a calibrated CommBandwidthCurve
  /// must cover, pass it to sim::apply_comm_calibration.
  static std::pair<std::uint64_t, std::uint64_t> alltoall_payload_range(
      std::int64_t min_tokens, std::int64_t max_tokens,
      const std::vector<int>& candidates, std::int64_t d_model,
      int group_size, DType dtype = DType::kF32);

 private:
  std::vector<int> candidates_;
  TrialFn trial_;
  RangeSet ranges_;
  std::unordered_map<std::int64_t, int> cache_;
  SearchStats stats_;
};

}  // namespace mpipe::core
