#pragma once
/// \file granularity_search.h
/// Algorithm 1: adaptive pipeline-granularity configuration. Batch sizes in
/// MoE training are dynamic, so the searcher amortises trials by (a) a hash
/// cache of exact B values and (b) the RangeSet exploiting that the optimal
/// n grows monotonically with B.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/range_set.h"

namespace mpipe::core {

struct SearchStats {
  std::size_t cache_hits = 0;
  std::size_t range_hits = 0;
  std::size_t full_searches = 0;
  std::size_t trials = 0;  ///< individual (B, n) measurements
};

class GranularitySearcher {
 public:
  /// `trial` measures (or simulates) one training step with the given batch
  /// size and partition count, returning seconds; `candidates` is the n
  /// search space (powers of two in the paper's evaluation).
  using TrialFn = std::function<double(std::int64_t b, int n)>;

  GranularitySearcher(std::vector<int> candidates, TrialFn trial);

  /// Algorithm 1: returns the number of partitions for batch size B.
  int configure(std::int64_t b);

  const SearchStats& stats() const { return stats_; }
  const RangeSet& ranges() const { return ranges_; }

  /// Exhaustive argmin over candidates (searchBestGran) — exposed for the
  /// Fig-12 ablation comparing adaptive vs oracle.
  int search_best(std::int64_t b);

  /// [smallest, largest] micro-batch row count Algorithm 1 can probe for
  /// batches in [min_tokens, max_tokens] over `candidates` (each trial
  /// splits B into n partitions of ceil-ish B/n rows). This is the row
  /// range a calibrated cost-model efficiency curve must cover — pass it
  /// to sim::apply_calibration so divergence fails at load time.
  static std::pair<std::int64_t, std::int64_t> row_range(
      std::int64_t min_tokens, std::int64_t max_tokens,
      const std::vector<int>& candidates);

 private:
  std::vector<int> candidates_;
  TrialFn trial_;
  RangeSet ranges_;
  std::unordered_map<std::int64_t, int> cache_;
  SearchStats stats_;
};

}  // namespace mpipe::core
