#pragma once
/// \file execution_context.h
/// Per-step state of one MoE layer execution: the dispatch plan, all
/// device-resident buffers (with memory accounting), and the backward
/// stash. Owned by MoELayer across forward() → backward(); the schedule
/// builder reads and wires it into OpGraph closures.

#include <optional>
#include <vector>

#include "core/reuse_strategy.h"
#include "mem/buffer_pool.h"
#include "mem/device_allocator.h"
#include "moe/dispatcher.h"
#include "moe/gating.h"
#include "tensor/dtype.h"

namespace mpipe::core {

enum class ExecutionMode {
  kFull,        ///< real math + timing (small configs, tests, examples)
  kTimingOnly,  ///< schedule + memory accounting at paper scale
};

/// Per-device step state.
struct DeviceStepState {
  // ---- forward ----
  Tensor x;                    ///< T_I (B, M); borrowed from the caller
  mem::Allocation x_alloc;     ///< activation accounting for T_I
  Tensor out;                  ///< T_O (B, M)
  mem::Allocation out_alloc;
  moe::GatingForward gating;   ///< routing decisions (full mode)
  mem::Allocation gating_alloc;  ///< the (B, E) router probs — the "small
                                 ///< tensors" the paper's theory ignores

  // Reuse mode: ring pools shared across partitions (paper Fig 6).
  std::optional<mem::BufferPool> tdi, tm, tdo;
  // Non-reuse mode: one stashed tensor per partition.
  std::vector<mem::TrackedTensor> tdi_parts, tm_parts, tdo_parts;

  // ---- backward ----
  Tensor dy;  ///< borrowed upstream gradient
  std::optional<mem::BufferPool> d_ys, d_tdo, d_tm, d_tdi;
  std::vector<mem::TrackedTensor> d_ys_parts, d_tdo_parts, d_tm_parts,
      d_tdi_parts;
  Tensor dx;                  ///< input gradient returned to the caller
  mem::Allocation dx_alloc;
  std::vector<float> dgate;   ///< per-token gate gradient accumulator
};

struct MoeStepContext {
  ExecutionMode mode = ExecutionMode::kFull;
  ReuseStrategy strategy = ReuseStrategy::kNone;
  moe::DispatchPlan plan;
  std::int64_t d_model = 0;
  std::int64_t d_hidden = 0;
  /// Wire/storage format of expert weights and dispatch/combine payloads
  /// (MoELayerOptions::compute_dtype). kF32 is the exact legacy path.
  DType dtype = DType::kF32;
  /// Sum over every AllToAll emitted for this step of the bytes its
  /// busiest participant sends, counted in `dtype`'s wire format —
  /// accumulated at graph-build time, surfaced as
  /// StepReport::alltoall_payload_bytes (the Fig-10 payload axis).
  std::uint64_t comm_payload_bytes = 0;
  /// Inference step: no backward will ever consume this context, so the
  /// schedule builder emits no offload ops (nothing needs restoring) and
  /// the ring slots are plain working memory, not a backward stash. The
  /// forward math is identical either way — the flag only removes the
  /// D2H traffic and host-staging residency a training forward pays to
  /// keep its activations restorable.
  bool forward_only = false;
  std::vector<DeviceStepState> dev;

  int n() const { return plan.n_partitions; }
  int num_devices() const { return plan.num_devices; }
  bool reuse() const { return strategy != ReuseStrategy::kNone; }
  bool functional() const { return mode == ExecutionMode::kFull; }
};

}  // namespace mpipe::core
