#pragma once
/// \file restore.h
/// Shared machinery behind the memory-reusing restore paths (§III-D):
/// buffer accessors that dispatch between ring slots and per-partition
/// stashes, AllToAll segment builders (used both by the forward dispatch
/// and by S2/S4 re-communication), and the offload/prefetch round trip of
/// S1–S3.

#include <string>
#include <vector>

#include "comm/all_to_all.h"
#include "core/execution_context.h"
#include "mem/host_staging.h"

namespace mpipe::core {

// ---- buffer accessors (full mode only) -------------------------------------

Tensor& tdi_buffer(MoeStepContext& ctx, int device, int p);
Tensor& tm_buffer(MoeStepContext& ctx, int device, int p);
Tensor& tdo_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_ys_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_tdo_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_tdi_buffer(MoeStepContext& ctx, int device, int p);

// ---- segment builders -------------------------------------------------------

/// Dispatch (S): token rows of every device's T_I chunk → the destination
/// T_DI buffers, expert-sorted. Per-token segments (T_I is unsorted).
std::vector<comm::RowSegment> dispatch_segments(MoeStepContext& ctx, int p);

/// Backward dispatch (S'): contiguous blocks of the pre-sorted, gate-scaled
/// d_ys buffers → the d_TDO buffers.
std::vector<comm::RowSegment> grad_dispatch_segments(MoeStepContext& ctx,
                                                     int p);

/// Combine (R / R'): T_DO rows back to the original token positions of
/// T_O, or d_TDI rows back into dX when `backward` is true.
std::vector<comm::RowSegment> combine_segments(MoeStepContext& ctx, int p,
                                               bool backward);

/// Max bytes any device ships in partition p's dispatch — the timing-only
/// AllToAll payload (also correct for combine, which is symmetric).
std::uint64_t dispatch_payload_bytes(const MoeStepContext& ctx, int p);

// ---- offload round trip -----------------------------------------------------

std::string staging_key(const char* what, int p);

/// D2H: stores the first `rows` rows of `buf` under (device, key).
void offload_rows(mem::HostStaging& staging, int device,
                  const std::string& key, const Tensor& buf,
                  std::int64_t rows);

/// H2D: restores a staged tensor into the head rows of `buf` and drops the
/// staged copy.
void prefetch_rows(mem::HostStaging& staging, int device,
                   const std::string& key, Tensor& buf);

}  // namespace mpipe::core
