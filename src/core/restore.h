#pragma once
/// \file restore.h
/// Shared machinery behind the memory-reusing restore paths (§III-D):
/// buffer accessors that dispatch between ring slots and per-partition
/// stashes, AllToAll segment builders (used both by the forward dispatch
/// and by S2/S4 re-communication), and the offload/prefetch round trip of
/// S1–S3.

#include <string>
#include <vector>

#include "comm/all_to_all.h"
#include "core/execution_context.h"
#include "mem/host_staging.h"
#include "moe/expert.h"

namespace mpipe::core {

// ---- hazard declarations ----------------------------------------------------
// Shared by the pipeline schedule builder and the baselines so the
// ExpertFFN::parameters()/gradients() ordering contract (w1, b1, w2, b2)
// is encoded exactly once — an under-declared access set is a silent
// data-race window the validator cannot see.

/// Declares reads of the parameter tensors an expert stage consumes
/// (w1/b1 for FFN1 and recompute, w2/b2 for FFN2, both for the fused
/// forward and backward stages).
void declare_expert_param_reads(sim::Op& op,
                                std::vector<moe::ExpertFFN>& experts,
                                bool ffn1, bool ffn2);

/// Declares the gradient accumulation (read-modify-write) of a backward
/// expert stage.
void declare_expert_grad_accum(sim::Op& op,
                               std::vector<moe::ExpertFFN>& experts);

// ---- buffer accessors (full mode only) -------------------------------------

Tensor& tdi_buffer(MoeStepContext& ctx, int device, int p);
Tensor& tm_buffer(MoeStepContext& ctx, int device, int p);
Tensor& tdo_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_ys_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_tdo_buffer(MoeStepContext& ctx, int device, int p);
Tensor& d_tdi_buffer(MoeStepContext& ctx, int device, int p);

// ---- segment builders -------------------------------------------------------

/// Dispatch (S): token rows of every device's T_I chunk → the destination
/// T_DI buffers, expert-sorted. Per-token segments (T_I is unsorted).
std::vector<comm::RowSegment> dispatch_segments(MoeStepContext& ctx, int p);

/// Backward dispatch (S'): contiguous blocks of the pre-sorted, gate-scaled
/// d_ys buffers → the d_TDO buffers.
std::vector<comm::RowSegment> grad_dispatch_segments(MoeStepContext& ctx,
                                                     int p);

/// Combine (R / R'): T_DO rows back to the original token positions of
/// T_O, or d_TDI rows back into dX when `backward` is true.
std::vector<comm::RowSegment> combine_segments(MoeStepContext& ctx, int p,
                                               bool backward);

/// Max bytes any device ships in partition p's dispatch, counted in
/// ctx.dtype's wire format (dtype-width elements plus int8 row scales) —
/// the timing-only AllToAll payload (also correct for combine, which is
/// symmetric).
std::uint64_t dispatch_payload_bytes(const MoeStepContext& ctx, int p);

// ---- offload round trip -----------------------------------------------------

std::string staging_key(const char* what, int p);

/// D2H: stores the first `rows` rows of `buf` under (device, key), in
/// `dtype`'s wire format (values rounded, bytes accounted quantized).
void offload_rows(mem::HostStaging& staging, int device,
                  const std::string& key, const Tensor& buf,
                  std::int64_t rows, DType dtype = DType::kF32);

/// H2D: restores a staged tensor into the head rows of `buf` and drops the
/// staged copy.
void prefetch_rows(mem::HostStaging& staging, int device,
                   const std::string& key, Tensor& buf);

}  // namespace mpipe::core
