#include "core/theory.h"

#include "common/check.h"

namespace mpipe::core {

namespace {
constexpr std::uint64_t kElem = 4;  // fp32
}

MemoryTheory::MemoryTheory(MemoryTheoryParams p) : params_(p) {
  MPIPE_EXPECTS(p.d_model > 0 && p.d_hidden > 0, "bad dimensions");
  MPIPE_EXPECTS(p.num_experts > 0 && p.experts_per_device > 0, "bad counts");
  MPIPE_EXPECTS(p.tokens_per_device >= 0, "negative batch");
  MPIPE_EXPECTS(p.n_partitions >= 1, "need n >= 1");
}

std::uint64_t MemoryTheory::model_states() const {
  const auto& p = params_;
  // Gating: E*M params; each expert: 2*H*M (biases ignored, as the paper
  // does). ×4 for Adam states, ×4 bytes per element.
  const std::uint64_t params =
      static_cast<std::uint64_t>(p.num_experts) * p.d_model +
      static_cast<std::uint64_t>(p.experts_per_device) * 2 * p.d_hidden *
          p.d_model;
  return 4 * params * kElem;
}

std::uint64_t MemoryTheory::activations() const {
  const auto& p = params_;
  return (4ull * p.tokens_per_device * p.d_model +
          static_cast<std::uint64_t>(p.tokens_per_device) * p.d_hidden) *
         kElem;
}

std::uint64_t MemoryTheory::temp_buffers() const {
  const auto& p = params_;
  return (static_cast<std::uint64_t>(p.tokens_per_device) * p.d_model +
          static_cast<std::uint64_t>(p.tokens_per_device) * p.d_hidden) *
         kElem;
}

std::uint64_t MemoryTheory::pipeline_activations() const {
  return activations();
}

std::uint64_t MemoryTheory::pipeline_temp_buffers() const {
  return activations();  // Eq 4: M^pipe_buf = M^pipe_act
}

std::uint64_t MemoryTheory::reuse_saving() const {
  const auto& p = params_;
  if (p.n_partitions <= 1) return 0;
  const double n = static_cast<double>(p.n_partitions);
  const double b = static_cast<double>(p.tokens_per_device);
  const double m = static_cast<double>(p.d_model);
  const double h = static_cast<double>(p.d_hidden);
  // Eq 5. n = 2 zeroes the T_DI/T_DO term (two live slots), and the single
  // T_M slot saves H(n-1)/n.
  const double saving =
      b * (2.0 * m * (n - 2.0) / n + h * (n - 1.0) / n) * kElem;
  return saving > 0 ? static_cast<std::uint64_t>(saving) : 0;
}

double MemoryTheory::saving_ratio() const {
  const double saved = 2.0 * static_cast<double>(reuse_saving());
  const double denom = static_cast<double>(model_states()) +
                       static_cast<double>(pipeline_activations()) +
                       static_cast<double>(pipeline_temp_buffers());
  MPIPE_ENSURES(denom > 0, "degenerate memory model");
  return saved / denom;
}

}  // namespace mpipe::core
