#include "core/restore.h"

#include "common/check.h"

namespace mpipe::core {

namespace {

/// Appends `seg`, or widens the previous segment when `seg` continues it
/// (same endpoints, both row ranges contiguous). Tokens that stayed in
/// send order — common under coarse routing — then travel as one block
/// copy instead of per-row segments.
void push_or_merge(std::vector<comm::RowSegment>& segments,
                   const comm::RowSegment& seg) {
  if (!segments.empty()) {
    comm::RowSegment& prev = segments.back();
    if (prev.src_device == seg.src_device && prev.src == seg.src &&
        prev.dst_device == seg.dst_device && prev.dst == seg.dst &&
        prev.src_row + prev.rows == seg.src_row &&
        prev.dst_row + prev.rows == seg.dst_row) {
      prev.rows += seg.rows;
      return;
    }
  }
  segments.push_back(seg);
}

Tensor& pick(MoeStepContext& ctx, std::optional<mem::BufferPool>& pool,
             std::vector<mem::TrackedTensor>& parts, int p) {
  if (ctx.reuse()) {
    MPIPE_EXPECTS(pool.has_value(), "ring pool missing");
    return pool->slot(p);
  }
  MPIPE_EXPECTS(p >= 0 && p < static_cast<int>(parts.size()),
                "partition stash missing");
  return parts[static_cast<std::size_t>(p)].tensor;
}
}  // namespace

void declare_expert_param_reads(sim::Op& op,
                                std::vector<moe::ExpertFFN>& experts,
                                bool ffn1, bool ffn2) {
  for (auto& expert : experts) {
    const auto params = expert.parameters();  // order: w1, b1, w2, b2
    if (ffn1) {
      op.reads.push_back(sim::access_whole(*params[0]));
      op.reads.push_back(sim::access_whole(*params[1]));
    }
    if (ffn2) {
      op.reads.push_back(sim::access_whole(*params[2]));
      op.reads.push_back(sim::access_whole(*params[3]));
    }
  }
}

void declare_expert_grad_accum(sim::Op& op,
                               std::vector<moe::ExpertFFN>& experts) {
  for (auto& expert : experts) {
    for (Tensor* g : expert.gradients()) {
      op.reads.push_back(sim::access_whole(*g));
      op.writes.push_back(sim::access_whole(*g));
    }
  }
}

Tensor& tdi_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.tdi, st.tdi_parts, p);
}
Tensor& tm_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.tm, st.tm_parts, p);
}
Tensor& tdo_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.tdo, st.tdo_parts, p);
}
Tensor& d_ys_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.d_ys, st.d_ys_parts, p);
}
Tensor& d_tdo_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.d_tdo, st.d_tdo_parts, p);
}
Tensor& d_tdi_buffer(MoeStepContext& ctx, int device, int p) {
  auto& st = ctx.dev[static_cast<std::size_t>(device)];
  return pick(ctx, st.d_tdi, st.d_tdi_parts, p);
}

std::vector<comm::RowSegment> dispatch_segments(MoeStepContext& ctx, int p) {
  MPIPE_EXPECTS(ctx.functional(), "segments need materialized buffers");
  const auto& part = ctx.plan.part(p);
  std::vector<comm::RowSegment> segments;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    const auto& routing = part.src[static_cast<std::size_t>(d)];
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    // Track how far into each destination block we have written.
    std::vector<std::int64_t> written(
        static_cast<std::size_t>(ctx.num_devices()), 0);
    for (std::size_t i = 0; i < routing.order.size(); ++i) {
      const std::int64_t t = routing.order[i];
      const std::int64_t e =
          st.gating.expert_of[static_cast<std::size_t>(t)];
      const int dst = static_cast<int>(e / ctx.plan.experts_per_device);
      comm::RowSegment seg;
      seg.src_device = d;
      seg.src = &st.x;
      seg.src_row = t;
      seg.dst_device = dst;
      seg.dst = &tdi_buffer(ctx, dst, p);
      seg.dst_row = part.recv_offset[static_cast<std::size_t>(dst)]
                                    [static_cast<std::size_t>(d)] +
                    written[static_cast<std::size_t>(dst)];
      seg.rows = 1;
      ++written[static_cast<std::size_t>(dst)];
      push_or_merge(segments, seg);
    }
  }
  return segments;
}

std::vector<comm::RowSegment> grad_dispatch_segments(MoeStepContext& ctx,
                                                     int p) {
  MPIPE_EXPECTS(ctx.functional(), "segments need materialized buffers");
  const auto& part = ctx.plan.part(p);
  std::vector<comm::RowSegment> segments;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    const auto& routing = part.src[static_cast<std::size_t>(d)];
    for (int dst = 0; dst < ctx.num_devices(); ++dst) {
      const std::int64_t count =
          routing.send_counts[static_cast<std::size_t>(dst)];
      if (count == 0) continue;
      comm::RowSegment seg;
      seg.src_device = d;
      seg.src = &d_ys_buffer(ctx, d, p);
      seg.src_row = routing.send_offsets[static_cast<std::size_t>(dst)];
      seg.dst_device = dst;
      seg.dst = &d_tdo_buffer(ctx, dst, p);
      seg.dst_row = part.recv_offset[static_cast<std::size_t>(dst)]
                                    [static_cast<std::size_t>(d)];
      seg.rows = count;
      segments.push_back(seg);
    }
  }
  return segments;
}

std::vector<comm::RowSegment> combine_segments(MoeStepContext& ctx, int p,
                                               bool backward) {
  MPIPE_EXPECTS(ctx.functional(), "segments need materialized buffers");
  const auto& part = ctx.plan.part(p);
  std::vector<comm::RowSegment> segments;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    const auto& routing = part.src[static_cast<std::size_t>(d)];
    auto& st = ctx.dev[static_cast<std::size_t>(d)];
    std::vector<std::int64_t> read(
        static_cast<std::size_t>(ctx.num_devices()), 0);
    for (std::size_t i = 0; i < routing.order.size(); ++i) {
      const std::int64_t t = routing.order[i];
      const std::int64_t e =
          st.gating.expert_of[static_cast<std::size_t>(t)];
      const int holder = static_cast<int>(e / ctx.plan.experts_per_device);
      comm::RowSegment seg;
      seg.src_device = holder;
      seg.src = backward ? &d_tdi_buffer(ctx, holder, p)
                         : &tdo_buffer(ctx, holder, p);
      seg.src_row = part.recv_offset[static_cast<std::size_t>(holder)]
                                    [static_cast<std::size_t>(d)] +
                    read[static_cast<std::size_t>(holder)];
      seg.dst_device = d;
      seg.dst = backward ? &st.dx : &st.out;
      seg.dst_row = t;
      seg.rows = 1;
      ++read[static_cast<std::size_t>(holder)];
      push_or_merge(segments, seg);
    }
  }
  return segments;
}

std::uint64_t dispatch_payload_bytes(const MoeStepContext& ctx, int p) {
  const auto& part = ctx.plan.part(p);
  std::uint64_t mx = 0;
  for (int d = 0; d < ctx.num_devices(); ++d) {
    const auto& routing = part.src[static_cast<std::size_t>(d)];
    std::uint64_t sent = 0;
    for (int j = 0; j < ctx.num_devices(); ++j) {
      if (j == d) continue;
      sent += quantized_bytes(
          routing.send_counts[static_cast<std::size_t>(j)], ctx.d_model,
          ctx.dtype);
    }
    mx = std::max(mx, sent);
  }
  return mx;
}

std::string staging_key(const char* what, int p) {
  return std::string(what) + ":p" + std::to_string(p);
}

void offload_rows(mem::HostStaging& staging, int device,
                  const std::string& key, const Tensor& buf,
                  std::int64_t rows, DType dtype) {
  // Strict store (no allow_overwrite): every key here is per-partition
  // ("tdi:pN" / "tm:pN") and consumed exactly once by prefetch_rows, and
  // MoELayer::forward() clears the staging store at step entry — so even a
  // step replayed after a mid-forward fault starts from an empty store. A
  // collision therefore means two ring slots mapped to one key, which must
  // fail loudly rather than mask a double-stash.
  staging.store(device, key, buf.slice_rows(0, rows),
                /*allow_overwrite=*/false, dtype);
}

void prefetch_rows(mem::HostStaging& staging, int device,
                   const std::string& key, Tensor& buf) {
  Tensor staged = staging.load(device, key);
  buf.copy_into_rows(0, staged);
  staging.drop(device, key);
}

}  // namespace mpipe::core
