#include "core/pipeline_schedule.h"

#include <algorithm>

#include "comm/collectives.h"
#include "common/check.h"
#include "core/restore.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mpipe::core {

namespace {

using sim::OpCategory;
using sim::StreamKind;

std::string tag(const char* name, int p) {
  return std::string(name) + std::to_string(p);
}
std::string tag(const char* name, int p, int d) {
  return std::string(name) + std::to_string(p) + ".d" + std::to_string(d);
}

/// Rows device d receives in partition p.
std::int64_t recv_rows(const MoeStepContext& ctx, int p, int d) {
  return ctx.plan.part(p).recv_rows[static_cast<std::size_t>(d)];
}

/// GEMM-efficiency row count: grouped per-expert panels are what the
/// device actually schedules, so efficiency follows rows / experts.
std::int64_t eff_rows(const MoeStepContext& ctx, std::int64_t rows) {
  return std::max<std::int64_t>(1, rows / ctx.plan.experts_per_device);
}

// Hazard declarations: every functional op states the byte ranges it
// touches so the concurrent executor's validator (sim/graph_executor.h)
// can prove unordered ops disjoint. Ring-slot buffers alias across
// partitions by construction (same data pointer), which is exactly how
// the validator sees the §III-D WAR hazards the schedule's explicit edges
// must cover. The expert parameter/gradient declarations live in
// core/restore.h (shared with the baselines).

}  // namespace

PipelineScheduleBuilder::PipelineScheduleBuilder(
    const comm::ProcessGroup& group, mem::HostStaging& staging,
    double compute_scale, double comm_scale)
    : group_(group),
      staging_(staging),
      compute_scale_(compute_scale),
      comm_scale_(comm_scale) {
  MPIPE_EXPECTS(compute_scale > 0.0, "compute scale must be positive");
  MPIPE_EXPECTS(comm_scale > 0.0, "comm scale must be positive");
}

void PipelineScheduleBuilder::apply_comm_scale(sim::OpGraph& g,
                                               int id) const {
  if (comm_scale_ != 1.0) {
    g.op(id).base_seconds /= comm_scale_;
  }
}

sim::OpGraph PipelineScheduleBuilder::build_forward(
    MoeStepContext& ctx, const LayerRefs& refs) const {
  const auto& cost = group_.cluster().cost_model();
  const int P = ctx.num_devices();
  const int n = ctx.n();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E =
      static_cast<std::int64_t>(P) * ctx.plan.experts_per_device;
  // Wire/storage format for payloads, offloads and expert GEMMs. The gate
  // GEMMs and their allreduce stay fp32 — the router is never quantized.
  const DType dt = ctx.dtype;
  // Forward-only steps never restore, so they never offload: the serving
  // tier's forward graph is a training forward minus every Htdi/Htm op,
  // whatever the strategy says about how a backward *would* restore.
  const bool offload_tdi = ctx.reuse() && !ctx.forward_only &&
                           !restores_tdi_by_comm(ctx.strategy);
  const bool offload_tm = ctx.reuse() && !ctx.forward_only &&
                          !restores_tm_by_recompute(ctx.strategy);

  sim::OpGraph g;

  // Gating: one router GEMM per device (functionally precomputed — the
  // dispatch plan required it — so the closure is empty).
  std::vector<int> gate_ops(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    const std::uint64_t flops =
        gemm_flops(B, E, M);
    gate_ops[static_cast<std::size_t>(d)] =
        g.add(tag("G", 0, d), OpCategory::kGemm, StreamKind::kCompute, {d},
              cost.gemm_seconds(flops, std::max<std::int64_t>(B, 1)) / compute_scale_, {},
              nullptr, cost.gemm_efficiency(std::max<std::int64_t>(B, 1)));
  }

  std::vector<int> s_ops(static_cast<std::size_t>(n), -1);
  std::vector<int> r_ops(static_cast<std::size_t>(n), -1);
  auto grid = [&] {
    return std::vector<std::vector<int>>(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(P), -1));
  };
  auto c1 = grid(), c2 = grid(), od_tdi = grid(), od_tm = grid();

  auto emit_combine = [&](int p) {
    std::vector<int> deps;
    for (int d = 0; d < P; ++d) {
      deps.push_back(c2[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(d)]);
    }
    if (ctx.functional()) {
      auto segments = combine_segments(ctx, p, /*backward=*/false);
      ctx.comm_payload_bytes += comm::max_bytes_sent(segments, dt);
      r_ops[static_cast<std::size_t>(p)] =
          comm::alltoall(g, group_, std::move(segments), tag("R", p),
                         std::move(deps), dt);
    } else {
      const std::uint64_t payload = dispatch_payload_bytes(ctx, p);
      ctx.comm_payload_bytes += payload;
      r_ops[static_cast<std::size_t>(p)] = comm::alltoall_timed(
          g, group_, payload, tag("R", p), std::move(deps), dt);
    }
    apply_comm_scale(g, r_ops[static_cast<std::size_t>(p)]);
  };

  for (int p = 0; p < n; ++p) {
    // ---- S_p: dispatch AllToAll --------------------------------------
    std::vector<int> s_deps = gate_ops;
    if (ctx.reuse() && p >= 2) {
      // WAR: the T_DI ring slot is reused from partition p-2; all of its
      // readers (C1 and the offload copy) must have finished.
      for (int d = 0; d < P; ++d) {
        s_deps.push_back(c1[static_cast<std::size_t>(p - 2)]
                           [static_cast<std::size_t>(d)]);
        if (offload_tdi) {
          s_deps.push_back(od_tdi[static_cast<std::size_t>(p - 2)]
                                 [static_cast<std::size_t>(d)]);
        }
      }
    }
    if (ctx.functional()) {
      auto segments = dispatch_segments(ctx, p);
      ctx.comm_payload_bytes += comm::max_bytes_sent(segments, dt);
      s_ops[static_cast<std::size_t>(p)] =
          comm::alltoall(g, group_, std::move(segments), tag("S", p),
                         std::move(s_deps), dt);
    } else {
      const std::uint64_t payload = dispatch_payload_bytes(ctx, p);
      ctx.comm_payload_bytes += payload;
      s_ops[static_cast<std::size_t>(p)] = comm::alltoall_timed(
          g, group_, payload, tag("S", p), std::move(s_deps), dt);
    }
    apply_comm_scale(g, s_ops[static_cast<std::size_t>(p)]);

    // ---- offload T_DI (S1, S3) ---------------------------------------
    if (offload_tdi) {
      for (int d = 0; d < P; ++d) {
        const std::int64_t rows = recv_rows(ctx, p, d);
        const std::uint64_t bytes = quantized_bytes(rows, M, dt);
        std::function<void()> fn;
        if (ctx.functional()) {
          auto* c = &ctx;
          auto* st = &staging_;
          fn = [c, st, p, d, rows, dt] {
            offload_rows(*st, d, staging_key("tdi", p),
                         tdi_buffer(*c, d, p), rows, dt);
          };
        }
        const int id =
            g.add(tag("Htdi", p, d), OpCategory::kMemcpyD2H,
                  StreamKind::kMem, {d}, cost.memcpy_seconds(bytes, d),
                  {s_ops[static_cast<std::size_t>(p)]}, std::move(fn));
        if (ctx.functional()) {
          sim::Op& op = g.op(id);
          op.reads.push_back(
              sim::access_rows(tdi_buffer(ctx, d, p), 0, rows));
          op.writes.push_back(sim::access_token(
              staging_.slot_token(d, staging_key("tdi", p))));
        }
        od_tdi[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
      }
    }

    // ---- C1_p: FFN1 ----------------------------------------------------
    for (int d = 0; d < P; ++d) {
      std::vector<int> deps = {s_ops[static_cast<std::size_t>(p)]};
      if (ctx.reuse() && p >= 1) {
        // WAR: the single T_M slot is reused every partition.
        deps.push_back(c2[static_cast<std::size_t>(p - 1)]
                         [static_cast<std::size_t>(d)]);
        if (offload_tm) {
          deps.push_back(od_tm[static_cast<std::size_t>(p - 1)]
                              [static_cast<std::size_t>(d)]);
        }
      }
      const std::int64_t rows = recv_rows(ctx, p, d);
      const std::uint64_t flops = gemm_flops(rows, H, M);
      const std::int64_t er = eff_rows(ctx, rows);
      std::function<void()> fn;
      if (ctx.functional()) {
        auto* c = &ctx;
        auto* experts = refs.experts;
        fn = [c, experts, p, d] {
          const auto& spans_of =
              c->plan.part(p).expert_spans[static_cast<std::size_t>(d)];
          for (std::size_t k = 0; k < spans_of.size(); ++k) {
            (*experts)[static_cast<std::size_t>(d)][k].forward_mid_rows(
                tdi_buffer(*c, d, p), spans_of[k], tm_buffer(*c, d, p));
          }
        };
      }
      const int id =
          g.add(tag("C1_", p, d), OpCategory::kGemm, StreamKind::kCompute,
                {d}, cost.gemm_seconds(flops, er, dt) / compute_scale_,
                std::move(deps), std::move(fn),
                cost.gemm_efficiency(er, dt));
      if (ctx.functional()) {
        sim::Op& op = g.op(id);
        op.reads.push_back(sim::access_rows(tdi_buffer(ctx, d, p), 0, rows));
        op.writes.push_back(sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
        declare_expert_param_reads(
            op, (*refs.experts)[static_cast<std::size_t>(d)],
            /*ffn1=*/true, /*ffn2=*/false);
      }
      c1[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
    }

    // ---- offload T_M (S1, S2) ------------------------------------------
    if (offload_tm) {
      for (int d = 0; d < P; ++d) {
        const std::int64_t rows = recv_rows(ctx, p, d);
        const std::uint64_t bytes = quantized_bytes(rows, H, dt);
        std::function<void()> fn;
        if (ctx.functional()) {
          auto* c = &ctx;
          auto* st = &staging_;
          fn = [c, st, p, d, rows, dt] {
            offload_rows(*st, d, staging_key("tm", p), tm_buffer(*c, d, p),
                         rows, dt);
          };
        }
        const int id =
            g.add(tag("Htm", p, d), OpCategory::kMemcpyD2H, StreamKind::kMem,
                  {d}, cost.memcpy_seconds(bytes, d),
                  {c1[static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(d)]},
                  std::move(fn));
        if (ctx.functional()) {
          sim::Op& op = g.op(id);
          op.reads.push_back(
              sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
          op.writes.push_back(sim::access_token(
              staging_.slot_token(d, staging_key("tm", p))));
        }
        od_tm[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
      }
    }

    // ---- C2_p: FFN2 ----------------------------------------------------
    for (int d = 0; d < P; ++d) {
      std::vector<int> deps = {
          c1[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)]};
      if (ctx.reuse() && p >= 2) {
        // WAR: T_DO ring slot reused from p-2, read by R_{p-2}.
        deps.push_back(r_ops[static_cast<std::size_t>(p - 2)]);
      }
      const std::int64_t rows = recv_rows(ctx, p, d);
      const std::uint64_t flops = gemm_flops(rows, M, H);
      const std::int64_t er = eff_rows(ctx, rows);
      std::function<void()> fn;
      if (ctx.functional()) {
        auto* c = &ctx;
        auto* experts = refs.experts;
        fn = [c, experts, p, d] {
          const auto& spans_of =
              c->plan.part(p).expert_spans[static_cast<std::size_t>(d)];
          for (std::size_t k = 0; k < spans_of.size(); ++k) {
            (*experts)[static_cast<std::size_t>(d)][k].forward_out_rows(
                tm_buffer(*c, d, p), spans_of[k], tdo_buffer(*c, d, p));
          }
        };
      }
      const int id =
          g.add(tag("C2_", p, d), OpCategory::kGemm, StreamKind::kCompute,
                {d}, cost.gemm_seconds(flops, er, dt) / compute_scale_,
                std::move(deps), std::move(fn),
                cost.gemm_efficiency(er, dt));
      if (ctx.functional()) {
        sim::Op& op = g.op(id);
        op.reads.push_back(sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
        op.writes.push_back(sim::access_rows(tdo_buffer(ctx, d, p), 0, rows));
        declare_expert_param_reads(
            op, (*refs.experts)[static_cast<std::size_t>(d)],
            /*ffn1=*/false, /*ffn2=*/true);
      }
      c2[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
    }

    // ---- R_{p-1}: combine, alternating with S on the comm stream -------
    if (p >= 1) emit_combine(p - 1);
  }
  emit_combine(n - 1);

  // ---- gate scaling: T_O rows *= gate, deferred to the comp tail so it
  // cannot head-of-line block later C1/C2 ops.
  for (int p = 0; p < n; ++p) {
    for (int d = 0; d < P; ++d) {
      std::function<void()> fn;
      if (ctx.functional()) {
        auto* c = &ctx;
        fn = [c, p, d] {
          auto& st = c->dev[static_cast<std::size_t>(d)];
          const auto& part = c->plan.part(p);
          for (std::int64_t t = part.chunk_begin;
               t < part.chunk_begin + part.chunk_rows; ++t) {
            const float gate = st.gating.gate[static_cast<std::size_t>(t)];
            for (std::int64_t col = 0; col < c->d_model; ++col) {
              st.out.at(t, col) *= gate;
            }
          }
        };
      }
      const int id = g.add(tag("scale", p, d), OpCategory::kElementwise,
                           StreamKind::kCompute, {d},
                           cost.config().compute_launch_latency,
                           {r_ops[static_cast<std::size_t>(p)]},
                           std::move(fn));
      if (ctx.functional()) {
        auto& st = ctx.dev[static_cast<std::size_t>(d)];
        const auto& part = ctx.plan.part(p);
        sim::Op& op = g.op(id);
        op.reads.push_back(sim::access_floats(
            st.gating.gate.data(), part.chunk_begin, part.chunk_rows));
        op.reads.push_back(
            sim::access_rows(st.out, part.chunk_begin, part.chunk_rows));
        op.writes.push_back(
            sim::access_rows(st.out, part.chunk_begin, part.chunk_rows));
      }
    }
  }
  return g;
}

sim::OpGraph PipelineScheduleBuilder::build_backward(
    MoeStepContext& ctx, const LayerRefs& refs) const {
  const auto& cost = group_.cluster().cost_model();
  const int P = ctx.num_devices();
  const int n = ctx.n();
  const std::int64_t M = ctx.d_model;
  const std::int64_t H = ctx.d_hidden;
  const std::int64_t B = ctx.plan.tokens_per_device;
  const std::int64_t E =
      static_cast<std::int64_t>(P) * ctx.plan.experts_per_device;
  const DType dt = ctx.dtype;
  const bool tdi_by_comm = restores_tdi_by_comm(ctx.strategy);
  const bool tm_by_recompute = restores_tm_by_recompute(ctx.strategy);

  sim::OpGraph g;

  // ---- per-partition gradient scaling + dgate accumulation ------------
  auto grid = [&] {
    return std::vector<std::vector<int>>(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(P), -1));
  };
  auto bs = grid(), cb = grid(), rs_tdi = grid(), rs_tm = grid();
  std::vector<int> sb(static_cast<std::size_t>(n), -1);
  std::vector<int> rb(static_cast<std::size_t>(n), -1);
  std::vector<int> rc_tdi(static_cast<std::size_t>(n), -1);

  for (int p = 0; p < n; ++p) {
    for (int d = 0; d < P; ++d) {
      std::function<void()> fn;
      if (ctx.functional()) {
        auto* c = &ctx;
        fn = [c, p, d] {
          auto& st = c->dev[static_cast<std::size_t>(d)];
          const auto& part = c->plan.part(p);
          const auto& routing = part.src[static_cast<std::size_t>(d)];
          Tensor& ys = d_ys_buffer(*c, d, p);
          for (std::size_t i = 0; i < routing.order.size(); ++i) {
            const std::int64_t t = routing.order[i];
            const float gate = st.gating.gate[static_cast<std::size_t>(t)];
            double dot = 0.0;
            for (std::int64_t col = 0; col < c->d_model; ++col) {
              dot += static_cast<double>(st.dy.at(t, col)) *
                     st.out.at(t, col);
            }
            st.dgate[static_cast<std::size_t>(t)] =
                static_cast<float>(dot / gate);
            for (std::int64_t col = 0; col < c->d_model; ++col) {
              ys.at(static_cast<std::int64_t>(i), col) =
                  gate * st.dy.at(t, col);
            }
          }
        };
      }
      const int id =
          g.add(tag("bscale", p, d), OpCategory::kElementwise,
                StreamKind::kCompute, {d},
                cost.config().compute_launch_latency, {}, std::move(fn));
      if (ctx.functional()) {
        auto& st = ctx.dev[static_cast<std::size_t>(d)];
        const auto& part = ctx.plan.part(p);
        const auto& routing = part.src[static_cast<std::size_t>(d)];
        sim::Op& op = g.op(id);
        op.reads.push_back(
            sim::access_rows(st.dy, part.chunk_begin, part.chunk_rows));
        op.reads.push_back(
            sim::access_rows(st.out, part.chunk_begin, part.chunk_rows));
        op.reads.push_back(sim::access_floats(
            st.gating.gate.data(), part.chunk_begin, part.chunk_rows));
        op.writes.push_back(sim::access_floats(
            st.dgate.data(), part.chunk_begin, part.chunk_rows));
        op.writes.push_back(sim::access_rows(
            d_ys_buffer(ctx, d, p), 0,
            static_cast<std::int64_t>(routing.order.size())));
      }
      bs[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
    }
  }

  for (int p = 0; p < n; ++p) {
    // ---- S'_p: gradient dispatch ----------------------------------------
    std::vector<int> s_deps;
    for (int d = 0; d < P; ++d) {
      s_deps.push_back(bs[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(d)]);
    }
    if (ctx.reuse() && p >= 2) {
      // WAR: d_TDO ring slot reused from p-2, read by Cb_{p-2}.
      for (int d = 0; d < P; ++d) {
        s_deps.push_back(cb[static_cast<std::size_t>(p - 2)]
                           [static_cast<std::size_t>(d)]);
      }
    }
    if (ctx.functional()) {
      auto segments = grad_dispatch_segments(ctx, p);
      ctx.comm_payload_bytes += comm::max_bytes_sent(segments, dt);
      sb[static_cast<std::size_t>(p)] =
          comm::alltoall(g, group_, std::move(segments), tag("S'", p),
                         std::move(s_deps), dt);
    } else {
      const std::uint64_t payload = dispatch_payload_bytes(ctx, p);
      ctx.comm_payload_bytes += payload;
      sb[static_cast<std::size_t>(p)] = comm::alltoall_timed(
          g, group_, payload, tag("S'", p), std::move(s_deps), dt);
    }
    apply_comm_scale(g, sb[static_cast<std::size_t>(p)]);

    // ---- restore T_DI / T_M (reuse strategies only) ---------------------
    if (ctx.reuse()) {
      // WAR guards for the slots being rewritten.
      std::vector<int> war_tdi, war_tm;
      if (p >= 2) {
        for (int d = 0; d < P; ++d) {
          war_tdi.push_back(cb[static_cast<std::size_t>(p - 2)]
                              [static_cast<std::size_t>(d)]);
          if (tm_by_recompute) {
            war_tdi.push_back(rs_tm[static_cast<std::size_t>(p - 2)]
                                   [static_cast<std::size_t>(d)]);
          }
        }
      }
      if (p >= 1) {
        for (int d = 0; d < P; ++d) {
          war_tm.push_back(cb[static_cast<std::size_t>(p - 1)]
                             [static_cast<std::size_t>(d)]);
        }
      }

      if (tdi_by_comm) {
        // Re-communication: replay the forward dispatch (S2, S4).
        std::vector<int> deps = war_tdi;
        if (ctx.functional()) {
          auto segments = dispatch_segments(ctx, p);
          ctx.comm_payload_bytes += comm::max_bytes_sent(segments, dt);
          rc_tdi[static_cast<std::size_t>(p)] =
              comm::alltoall(g, group_, std::move(segments), tag("Sr", p),
                             std::move(deps), dt);
        } else {
          const std::uint64_t payload = dispatch_payload_bytes(ctx, p);
          ctx.comm_payload_bytes += payload;
          rc_tdi[static_cast<std::size_t>(p)] = comm::alltoall_timed(
              g, group_, payload, tag("Sr", p), std::move(deps), dt);
        }
        apply_comm_scale(g, rc_tdi[static_cast<std::size_t>(p)]);
        for (int d = 0; d < P; ++d) {
          rs_tdi[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] =
              rc_tdi[static_cast<std::size_t>(p)];
        }
      } else {
        // Prefetch from host (S1, S3).
        for (int d = 0; d < P; ++d) {
          const std::int64_t rows = recv_rows(ctx, p, d);
          const std::uint64_t bytes = quantized_bytes(rows, M, dt);
          std::vector<int> deps = war_tdi;
          std::function<void()> fn;
          if (ctx.functional()) {
            auto* c = &ctx;
            auto* st = &staging_;
            fn = [c, st, p, d] {
              prefetch_rows(*st, d, staging_key("tdi", p),
                            tdi_buffer(*c, d, p));
            };
          }
          const int id =
              g.add(tag("Dtdi", p, d), OpCategory::kMemcpyH2D,
                    StreamKind::kMem, {d}, cost.memcpy_seconds(bytes, d),
                    std::move(deps), std::move(fn));
          if (ctx.functional()) {
            sim::Op& op = g.op(id);
            op.reads.push_back(sim::access_token(
                staging_.slot_token(d, staging_key("tdi", p))));
            op.writes.push_back(
                sim::access_rows(tdi_buffer(ctx, d, p), 0, rows));
          }
          rs_tdi[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] =
              id;
        }
      }

      for (int d = 0; d < P; ++d) {
        const std::int64_t rows = recv_rows(ctx, p, d);
        std::vector<int> deps = war_tm;
        if (tm_by_recompute) {
          // Recompute T_M from the restored T_DI (S3, S4).
          deps.push_back(rs_tdi[static_cast<std::size_t>(p)]
                               [static_cast<std::size_t>(d)]);
          const std::uint64_t flops = gemm_flops(rows, H, M);
          const std::int64_t er = eff_rows(ctx, rows);
          std::function<void()> fn;
          if (ctx.functional()) {
            auto* c = &ctx;
            auto* experts = refs.experts;
            fn = [c, experts, p, d] {
              const auto& spans_of =
                  c->plan.part(p).expert_spans[static_cast<std::size_t>(d)];
              for (std::size_t k = 0; k < spans_of.size(); ++k) {
                (*experts)[static_cast<std::size_t>(d)][k]
                    .recompute_mid_rows(tdi_buffer(*c, d, p), spans_of[k],
                                        tm_buffer(*c, d, p));
              }
            };
          }
          const int id =
              g.add(tag("Cr", p, d), OpCategory::kGemm, StreamKind::kCompute,
                    {d}, cost.gemm_seconds(flops, er, dt) / compute_scale_,
                    std::move(deps), std::move(fn),
                    cost.gemm_efficiency(er, dt));
          if (ctx.functional()) {
            sim::Op& op = g.op(id);
            op.reads.push_back(
                sim::access_rows(tdi_buffer(ctx, d, p), 0, rows));
            op.writes.push_back(
                sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
            declare_expert_param_reads(
                op, (*refs.experts)[static_cast<std::size_t>(d)],
                /*ffn1=*/true, /*ffn2=*/false);
          }
          rs_tm[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] =
              id;
        } else {
          // Prefetch T_M from host (S1, S2).
          const std::uint64_t bytes = quantized_bytes(rows, H, dt);
          std::function<void()> fn;
          if (ctx.functional()) {
            auto* c = &ctx;
            auto* st = &staging_;
            fn = [c, st, p, d] {
              prefetch_rows(*st, d, staging_key("tm", p),
                            tm_buffer(*c, d, p));
            };
          }
          const int id =
              g.add(tag("Dtm", p, d), OpCategory::kMemcpyH2D,
                    StreamKind::kMem, {d}, cost.memcpy_seconds(bytes, d),
                    std::move(deps), std::move(fn));
          if (ctx.functional()) {
            sim::Op& op = g.op(id);
            op.reads.push_back(sim::access_token(
                staging_.slot_token(d, staging_key("tm", p))));
            op.writes.push_back(
                sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
          }
          rs_tm[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] =
              id;
        }
      }
    }

    // ---- Cb_p: expert backward (4 GEMMs) --------------------------------
    for (int d = 0; d < P; ++d) {
      std::vector<int> deps = {sb[static_cast<std::size_t>(p)]};
      if (ctx.reuse()) {
        deps.push_back(rs_tdi[static_cast<std::size_t>(p)]
                             [static_cast<std::size_t>(d)]);
        deps.push_back(rs_tm[static_cast<std::size_t>(p)]
                            [static_cast<std::size_t>(d)]);
        if (p >= 2) {
          // WAR: d_TDI ring slot reused from p-2, read by R'_{p-2}.
          deps.push_back(rb[static_cast<std::size_t>(p - 2)]);
        }
      }
      const std::int64_t rows = recv_rows(ctx, p, d);
      const std::uint64_t flops = 4 * gemm_flops(rows, H, M);
      const std::int64_t er = eff_rows(ctx, rows);
      std::function<void()> fn;
      if (ctx.functional()) {
        auto* c = &ctx;
        auto* experts = refs.experts;
        fn = [c, experts, p, d] {
          const auto& spans_of =
              c->plan.part(p).expert_spans[static_cast<std::size_t>(d)];
          for (std::size_t k = 0; k < spans_of.size(); ++k) {
            (*experts)[static_cast<std::size_t>(d)][k].backward_rows(
                d_tdo_buffer(*c, d, p), tdi_buffer(*c, d, p),
                tm_buffer(*c, d, p), spans_of[k], d_tdi_buffer(*c, d, p));
          }
        };
      }
      const int id =
          g.add(tag("Cb", p, d), OpCategory::kGemm, StreamKind::kCompute,
                {d}, cost.gemm_seconds(flops, er, dt) / compute_scale_,
                std::move(deps), std::move(fn),
                cost.gemm_efficiency(er, dt));
      if (ctx.functional()) {
        sim::Op& op = g.op(id);
        op.reads.push_back(
            sim::access_rows(d_tdo_buffer(ctx, d, p), 0, rows));
        op.reads.push_back(sim::access_rows(tdi_buffer(ctx, d, p), 0, rows));
        op.reads.push_back(sim::access_rows(tm_buffer(ctx, d, p), 0, rows));
        op.writes.push_back(
            sim::access_rows(d_tdi_buffer(ctx, d, p), 0, rows));
        auto& experts = (*refs.experts)[static_cast<std::size_t>(d)];
        declare_expert_param_reads(op, experts, /*ffn1=*/true,
                                   /*ffn2=*/true);
        declare_expert_grad_accum(op, experts);
      }
      cb[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] = id;
    }

    // ---- R'_{p-1}: gradient combine back to dX ---------------------------
    auto emit_grad_combine = [&](int q) {
      std::vector<int> deps;
      for (int d = 0; d < P; ++d) {
        deps.push_back(cb[static_cast<std::size_t>(q)]
                         [static_cast<std::size_t>(d)]);
      }
      if (ctx.functional()) {
        auto segments = combine_segments(ctx, q, true);
        ctx.comm_payload_bytes += comm::max_bytes_sent(segments, dt);
        rb[static_cast<std::size_t>(q)] =
            comm::alltoall(g, group_, std::move(segments), tag("R'", q),
                           std::move(deps), dt);
      } else {
        const std::uint64_t payload = dispatch_payload_bytes(ctx, q);
        ctx.comm_payload_bytes += payload;
        rb[static_cast<std::size_t>(q)] = comm::alltoall_timed(
            g, group_, payload, tag("R'", q), std::move(deps), dt);
      }
      apply_comm_scale(g, rb[static_cast<std::size_t>(q)]);
    };
    if (p >= 1) emit_grad_combine(p - 1);
    if (p == n - 1) emit_grad_combine(n - 1);
  }

  // ---- gating backward + data-parallel gradient sync -------------------
  std::vector<int> gb(static_cast<std::size_t>(P), -1);
  for (int d = 0; d < P; ++d) {
    std::vector<int> deps = rb;  // dX rows must all be written
    for (int p = 0; p < n; ++p) {
      deps.push_back(bs[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(d)]);
    }
    const std::uint64_t flops = 2 * gemm_flops(B, E, M);
    std::function<void()> fn;
    if (ctx.functional()) {
      auto* c = &ctx;
      auto* gates = refs.gates;
      fn = [c, gates, d] {
        auto& st = c->dev[static_cast<std::size_t>(d)];
        Tensor dxg = (*gates)[static_cast<std::size_t>(d)].backward(
            st.x, st.gating, st.dgate);
        add_(st.dx, dxg);
      };
    }
    const int id =
        g.add(tag("Gb", 0, d), OpCategory::kGemm, StreamKind::kCompute, {d},
              cost.gemm_seconds(flops, std::max<std::int64_t>(B, 1)) / compute_scale_,
              std::move(deps), std::move(fn),
              cost.gemm_efficiency(std::max<std::int64_t>(B, 1)));
    if (ctx.functional()) {
      auto& st = ctx.dev[static_cast<std::size_t>(d)];
      auto& gate = (*refs.gates)[static_cast<std::size_t>(d)];
      sim::Op& op = g.op(id);
      op.reads.push_back(sim::access_whole(st.x));
      op.reads.push_back(sim::access_whole(st.gating.probs));
      op.reads.push_back(sim::access_whole(gate.weight()));
      op.reads.push_back(sim::access_floats(
          st.dgate.data(), 0, static_cast<std::int64_t>(st.dgate.size())));
      op.reads.push_back(sim::access_whole(st.dx));
      op.writes.push_back(sim::access_whole(st.dx));
      op.reads.push_back(sim::access_whole(gate.weight_grad()));
      op.writes.push_back(sim::access_whole(gate.weight_grad()));
    }
    gb[static_cast<std::size_t>(d)] = id;
  }

  // Gating weights are replicated data-parallel; sync their gradients.
  const std::uint64_t gate_bytes =
      static_cast<std::uint64_t>(M) * E * sizeof(float);
  if (ctx.functional()) {
    std::vector<Tensor*> grads;
    for (int d = 0; d < P; ++d) {
      grads.push_back(
          &(*refs.gates)[static_cast<std::size_t>(d)].weight_grad());
    }
    comm::allreduce_sum(g, group_, std::move(grads), "ARg", gb);
  } else {
    g.add("ARg", OpCategory::kAllReduce, StreamKind::kComm,
          group_.devices(),
          group_.size() > 1
              ? cost.allreduce_seconds(gate_bytes, group_.devices())
              : 0.0,
          gb, nullptr);
  }
  return g;
}

}  // namespace mpipe::core
