#pragma once
/// \file moe_layer.h
/// The MPipeMoE public API — the C++ analogue of the paper's
/// `pmoe.MoELayer(d_model=…, d_hidden=…, top_k=1, num_experts=…,
/// pipeline=True, memory_reuse=True)`. One MoELayer object models the MoE
/// FFN of a transformer block running under expert parallelism on a
/// simulated cluster: forward()/backward() do real tensor math with a
/// simulated timeline, step_timing() replays the schedule at paper scale.

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/execution_context.h"
#include "core/granularity_search.h"
#include "core/pipeline_executor.h"
#include "core/pipeline_schedule.h"
#include "core/strategy_selector.h"
#include "mem/host_staging.h"
#include "sim/calibration.h"
#include "sim/cluster.h"

namespace mpipe::core {

struct MoELayerOptions {
  std::int64_t d_model = 1024;
  std::int64_t d_hidden = 4096;
  int num_experts = 64;  ///< must be a multiple of the device count
  int top_k = 1;         ///< the paper fixes k = 1
  moe::ActivationKind activation = moe::ActivationKind::kReLU;

  /// Enable micro-batch pipelining; false forces a single partition.
  bool pipeline = true;
  /// Fixed partition count; 0 enables the Algorithm-1 adaptive search.
  int num_partitions = 0;
  /// Candidate search space for the adaptive search.
  std::vector<int> candidate_partitions = {1, 2, 4, 8, 16};

  /// Enable the ring-buffer memory reuse of §III-D.
  bool memory_reuse = true;
  /// Fixed restore strategy; unset enables the Eq-10 adaptive selector.
  std::optional<ReuseStrategy> strategy{};

  /// Per-device memory capacity in bytes (0 = unlimited).
  std::uint64_t device_capacity_bytes = 0;

  /// Wire/storage format of the expert hot path. kF32 (default) is the
  /// exact legacy path — bitwise identical results. kBF16 / kI8 store the
  /// expert weights quantized (fp32 masters kept for the optimizer and
  /// weight-grad GEMMs) and round every dispatch/combine payload and
  /// activation offload through the reduced wire format; all GEMMs
  /// dequantize at pack time and accumulate in fp32. Halves (bf16) or
  /// quarters (int8, plus one fp32 scale per row) the AllToAll payload
  /// bytes and the offload/staging residency. The router (gating GEMM and
  /// its gradient allreduce) always stays fp32.
  DType compute_dtype = DType::kF32;

  /// Effective compute-throughput multiplier (< 1 models the baselines'
  /// CUDA-core kernels; PipeMoE/MPipeMoE use Tensor Cores at 1.0).
  double compute_scale = 1.0;

  /// Effective collective-bandwidth multiplier (< 1 models AllToAll
  /// implemented as grouped per-pair send/recv, as in FastMoE).
  double comm_scale = 1.0;

  /// Eq-3 temp-buffer accounting for the sequential (n = 1, no-pipeline)
  /// execution: gradient scratch is freed as soon as it is consumed, so the
  /// peak is BM + BH instead of the pipeline's per-partition residency.
  /// Used by the FastMoE baseline.
  bool sequential_temp_accounting = false;

  /// Run the functional op graphs concurrently on the shared ThreadPool
  /// (sim::ExecutionPolicy::kParallel): independent partitions'/devices'
  /// dispatch, expert GEMMs, combine and offload ops genuinely overlap,
  /// with the hazard validator proving every schedule race-free first.
  /// false keeps the serial topological reference order. Both modes
  /// produce bitwise identical results for any pool size.
  bool parallel_execution = false;

  /// Record per-op wall-clock timestamps while forward()/backward()
  /// execute (either policy) and fill StepReport's measured timeline and
  /// simulated-vs-measured diff. Off by default: the executors then skip
  /// recording entirely (one pointer test per op) and the outputs stay
  /// bitwise identical either way.
  bool profile_execution = false;

  /// Additionally serialise each profiled step's measured-vs-simulated
  /// chrome trace into StepReport::forward/backward_trace_json. Separate
  /// from profile_execution because the JSON is pure inspection output —
  /// the correction loop needs only the diffs, and most profiled steps
  /// would build strings nobody reads. No effect when profiling is off.
  bool trace_execution = false;

  /// Straggler watchdog: after a profiled step, flag any op whose measured
  /// wall-clock duration exceeds this multiple of its normalized modeled
  /// duration (sim::detect_stragglers) into StepReport::stragglers.
  /// <= 0 (default) disables the watchdog; it only observes profiled steps
  /// (profile_execution), and never alters execution or results.
  double straggler_threshold = 0.0;

  ExecutionMode mode = ExecutionMode::kFull;
  std::uint64_t seed = 42;
};

/// Installs the committed CALIBRATION_gemm.csv / CALIBRATION_alltoall.csv
/// measured curves into `cluster` when they cover the probe ranges a layer
/// with `options` will present for batches in [min_tokens, max_tokens]
/// (fixed-partition layers probe only their configured n; adaptive layers
/// any candidate). Missing files or insufficient knot coverage fall back
/// to the analytic cost model — the returned status says which, so entry
/// points can surface it. One shared implementation for runtime::Trainer
/// and the examples, so the coverage ranges can never drift from the
/// layer configuration they describe.
sim::CalibrationStatus install_calibration(sim::Cluster& cluster,
                                           const MoELayerOptions& options,
                                           std::int64_t min_tokens,
                                           std::int64_t max_tokens);

class MoELayer {
 public:
  MoELayer(sim::Cluster& cluster, MoELayerOptions options);

  // ---- full-mode training step -------------------------------------------
  /// Runs the distributed forward pass on one (B, M) token batch per
  /// device. Returns the per-device (B, M) outputs.
  std::vector<Tensor> forward(const std::vector<Tensor>& inputs);

  /// Runs the backward pass from per-device output gradients; returns the
  /// per-device input gradients. Must follow a forward() call.
  std::vector<Tensor> backward(const std::vector<Tensor>& grad_outputs);

  // ---- forward-only inference step ----------------------------------------
  /// The serving tier's step: identical math and output to forward(), but
  /// no backward may follow — so nothing is kept restorable. No activation
  /// stashes (ring buffers are used for working memory regardless of the
  /// configured strategy), no offload ops, no host-staging residency, no
  /// kTempBuffer allocations; all per-step state is released before
  /// returning. `n_override` > 0 pins the partition count (the SLO
  /// selector's choice); 0 falls back to configure_partitions. Per-step
  /// timing/profiling lands in last_report() with backward fields empty.
  std::vector<Tensor> forward_only(const std::vector<Tensor>& inputs,
                                   int n_override = 0);

  /// Modeled forward-only latency (seconds) of a step with
  /// `tokens_per_device` balanced-routed tokens split into n partitions —
  /// a timing-shape probe through the same corrected cost model the
  /// granularity search uses, but for the inference graph (no offloads, no
  /// backward). The serving SLO selector ranks its batch-size ladder with
  /// this.
  double probe_forward_seconds(std::int64_t tokens_per_device, int n);

  // ---- timing-only step at paper scale -------------------------------------
  /// Simulates one training step (fwd+bwd) with `tokens_per_device` tokens
  /// and synthetic balanced routing (optionally skewed toward device 0).
  StepReport step_timing(std::int64_t tokens_per_device, double skew = 0.0);

  // ---- measured-vs-modeled loop --------------------------------------------
  /// Toggles wall-clock profiling after construction (runtime::Trainer
  /// flips it on for its correction-fit warmup steps).
  void set_profile_execution(bool on) { options_.profile_execution = on; }

  /// Toggles chrome-trace serialisation of profiled steps (runtime::
  /// Trainer flips it on for the warmup step whose trace it dumps).
  void set_trace_execution(bool on) { options_.trace_execution = on; }

  /// Installs measured per-op-class correction factors (fitted from
  /// profiled steps, sim::CorrectionFit): granularity-search probes scale
  /// their op costs by the factors before timing, and the Eq-10 strategy
  /// selector derates its stream speeds the same way, so both selections
  /// re-rank with reality-corrected costs. Changing the factors flushes
  /// the searcher's cache/ranges (stale verdicts were ranked by the
  /// uncorrected model). StepReport's simulated timings stay uncorrected —
  /// they are the model-error baseline the factors are fitted against.
  void set_corrections(const sim::OpClassCorrections& corrections);
  const sim::OpClassCorrections& corrections() const { return corrections_; }

  // ---- introspection --------------------------------------------------------
  const StepReport& last_report() const { return report_; }
  GranularitySearcher& searcher() { return *searcher_; }
  const StrategyChoice& last_strategy_choice() const {
    return strategy_choice_;
  }
  mem::DeviceAllocator& allocator(int device);
  mem::HostStaging& staging() { return staging_; }
  sim::Cluster& cluster() { return *cluster_; }
  int num_devices() const;
  int experts_per_device() const;
  const MoELayerOptions& options() const { return options_; }

  // ---- mixed precision ------------------------------------------------------
  /// Re-quantizes every expert's weight caches from the fp32 masters.
  /// Must run after each optimizer step and checkpoint restore when
  /// compute_dtype != kF32 (runtime::Trainer does); no-op for kF32.
  void refresh_quantized_weights();

  /// Accounted bytes of the quantized expert-weight copies on the busiest
  /// device (0 for kF32) — the Fig-9 weight-memory axis per dtype.
  std::uint64_t expert_weight_bytes() const;

  // ---- parameters (full mode) ----------------------------------------------
  /// All trainable tensors across devices (gating + experts), paired with
  /// gradients() index-for-index — what runtime::Adam consumes.
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_grad();
  moe::GatingNetwork& gate(int device);
  moe::ExpertFFN& expert(int device, int local_index);

 private:
  sim::ExecutionPolicy exec_policy() const {
    return options_.parallel_execution ? sim::ExecutionPolicy::kParallel
                                       : sim::ExecutionPolicy::kSerial;
  }
  int configure_partitions(std::int64_t tokens_per_device);
  ReuseStrategy configure_strategy(std::int64_t tokens_per_device, int n);
  /// Timing-only probe used by the granularity search trial function.
  double probe_step_seconds(std::int64_t tokens_per_device, int n,
                            ReuseStrategy strategy);
  void setup_forward_buffers(MoeStepContext& ctx);
  void setup_backward_buffers(MoeStepContext& ctx);
  LayerRefs refs();

  sim::Cluster* cluster_;
  MoELayerOptions options_;
  comm::ProcessGroup world_;
  std::deque<mem::DeviceAllocator> allocators_;
  mem::HostStaging staging_;
  PipelineScheduleBuilder builder_;

  // Parameters (full mode only; timing-only keeps accounting records).
  std::vector<moe::GatingNetwork> gates_;
  std::vector<std::vector<moe::ExpertFFN>> experts_;
  std::vector<mem::Allocation> model_state_allocs_;

  std::unique_ptr<GranularitySearcher> searcher_;
  double probe_skew_ = 0.0;
  StrategyChoice strategy_choice_;
  sim::OpClassCorrections corrections_;
  std::optional<MoeStepContext> ctx_;
  StepReport report_;
};

}  // namespace mpipe::core
