#pragma once
/// \file range_set.h
/// The set S of Algorithm 1: disjoint batch-size ranges R_n, each mapped to
/// an optimal partition count n. Backed by an ordered map (the paper's
/// binary search tree); find and insert are O(log |S|).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpipe::core {

struct BatchRange {
  std::int64_t lower = 0;
  std::int64_t upper = 0;  ///< inclusive
  int n = 1;

  bool contains(std::int64_t b) const { return lower <= b && b <= upper; }
};

class RangeSet {
 public:
  /// Returns the n whose range contains B, if any (Algorithm 1 line 6).
  std::optional<int> find(std::int64_t b) const;

  /// Returns the full range record for n, if present.
  std::optional<BatchRange> range_of(int n) const;

  /// Records that B maps to n: creates range [B, B] for a new n
  /// (lines 10–12) or extends n's existing range to include B
  /// (lines 13–14). Throws if the extension would overlap a different n's
  /// range — that would falsify the monotonicity hypothesis.
  void record(std::int64_t b, int n);

  std::size_t size() const { return by_lower_.size(); }
  std::string to_string() const;

  /// All ranges, lower-bound ascending — for checkpoint serialization.
  std::vector<BatchRange> entries() const;

  /// Replaces the set with `ranges` (must be disjoint; routed through
  /// record() so the invariants are re-validated on restore).
  void restore(const std::vector<BatchRange>& ranges);

 private:
  // Keyed by range lower bound; ranges kept disjoint and sorted.
  std::map<std::int64_t, BatchRange> by_lower_;
};

}  // namespace mpipe::core
