#include "core/range_set.h"

#include <sstream>

#include "common/check.h"

namespace mpipe::core {

std::optional<int> RangeSet::find(std::int64_t b) const {
  auto it = by_lower_.upper_bound(b);
  if (it == by_lower_.begin()) return std::nullopt;
  --it;
  if (it->second.contains(b)) return it->second.n;
  return std::nullopt;
}

std::optional<BatchRange> RangeSet::range_of(int n) const {
  for (const auto& [lower, range] : by_lower_) {
    if (range.n == n) return range;
  }
  return std::nullopt;
}

void RangeSet::record(std::int64_t b, int n) {
  MPIPE_EXPECTS(b >= 0, "negative batch size");
  // Already covered by the right range?
  if (auto existing = find(b)) {
    MPIPE_CHECK(*existing == n,
                "batch " + std::to_string(b) + " already mapped to n=" +
                    std::to_string(*existing) + ", refusing to remap to n=" +
                    std::to_string(n));
    return;
  }
  // Extend an existing range for this n (Algorithm 1 lines 13-14)...
  for (auto it = by_lower_.begin(); it != by_lower_.end(); ++it) {
    if (it->second.n != n) continue;
    BatchRange merged = it->second;
    merged.lower = std::min(merged.lower, b);
    merged.upper = std::max(merged.upper, b);
    // The widened range must stay disjoint from its neighbours, otherwise
    // the monotonicity hypothesis (n grows with B) has been violated.
    for (const auto& [lower, other] : by_lower_) {
      if (other.n == n) continue;
      MPIPE_CHECK(merged.upper < other.lower || other.upper < merged.lower,
                  "range extension for n=" + std::to_string(n) +
                      " overlaps n=" + std::to_string(other.n) +
                      " — monotonicity hypothesis violated");
    }
    by_lower_.erase(it);
    by_lower_.emplace(merged.lower, merged);
    return;
  }
  // ...or start a fresh point range (lines 10-12).
  by_lower_.emplace(b, BatchRange{b, b, n});
}

std::vector<BatchRange> RangeSet::entries() const {
  std::vector<BatchRange> out;
  out.reserve(by_lower_.size());
  for (const auto& [lower, range] : by_lower_) out.push_back(range);
  return out;
}

void RangeSet::restore(const std::vector<BatchRange>& ranges) {
  by_lower_.clear();
  for (const BatchRange& r : ranges) {
    // record() of both endpoints recreates [lower, upper] exactly (a
    // second record extends the point range), re-running the overlap and
    // monotonicity checks against the ranges restored so far.
    record(r.lower, r.n);
    if (r.upper != r.lower) record(r.upper, r.n);
  }
}

std::string RangeSet::to_string() const {
  std::ostringstream os;
  for (const auto& [lower, range] : by_lower_) {
    os << "[" << range.lower << ", " << range.upper << "] -> n="
       << range.n << "  ";
  }
  return os.str();
}

}  // namespace mpipe::core
