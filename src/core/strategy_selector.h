#pragma once
/// \file strategy_selector.h
/// The adaptive selection component (§III-E): at runtime, evaluate the
/// Eq-10 cost of every memory-reusing strategy under the measured hardware
/// speeds and pick the cheapest. Speeds are derived from the cluster's
/// cost model and interference matrix — the same quantities the paper
/// measures with micro-benchmarks.

#include <vector>

#include "core/perf_model.h"
#include "sim/cluster.h"

namespace mpipe::core {

struct StrategyChoice {
  ReuseStrategy strategy = ReuseStrategy::kS1;
  double predicted_seconds = 0.0;
  /// Predicted seconds of every candidate, in S1..S4 order.
  std::vector<double> candidate_costs;
};

class StrategySelector {
 public:
  /// Derives PerfModelParams from the cluster (micro-batch size b fixes
  /// the GEMM efficiency point).
  static PerfModelParams measure(const sim::Cluster& cluster,
                                 std::int64_t micro_batch,
                                 std::int64_t d_model);

  /// `corrections` are the measured/modeled per-op-class factors fitted
  /// from profiled steps (sim::CorrectionFit): a class whose ops measure
  /// k× slower than modeled has its effective stream speed divided by k
  /// before the Eq-10 ranking, so the selector ranks strategies by
  /// reality-corrected costs. The identity (default) leaves every
  /// candidate cost bit-for-bit unchanged.
  explicit StrategySelector(PerfModelParams params,
                            sim::OpClassCorrections corrections = {});

  /// Picks the cheapest of S1..S4 for a micro-batch of b tokens.
  StrategyChoice select(std::int64_t b, std::int64_t m, std::int64_t h) const;

  const PerfModel& model() const { return model_; }

 private:
  PerfModel model_;
};

}  // namespace mpipe::core
