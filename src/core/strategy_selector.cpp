#include "core/strategy_selector.h"

#include "common/check.h"

namespace mpipe::core {

PerfModelParams StrategySelector::measure(const sim::Cluster& cluster,
                                          std::int64_t micro_batch,
                                          std::int64_t d_model) {
  MPIPE_EXPECTS(micro_batch > 0, "empty micro batch");
  PerfModelParams p;
  const auto& cost = cluster.cost_model();
  p.w_comp = cost.config().peak_flops * cost.gemm_efficiency(micro_batch);
  p.w_comm = cluster.topology().alltoall_bandwidth(cluster.all_device_ids());
  p.w_mem = cluster.topology().pcie_bandwidth(0);
  p.mu_comp = cluster.interference().mu_comp();
  p.mu_all = cluster.interference().mu_all();
  p.sigma = cluster.interference().sigma_comm();
  p.eta_all = cluster.interference().eta_all();
  (void)d_model;
  return p;
}

namespace {

/// Measured time = factor × modeled time, and modeled time = work / speed,
/// so a fitted factor k is equivalent to the stream running at speed/k.
/// Folding the corrections into the speeds keeps Eq-10 untouched and makes
/// the identity corrections an exact no-op.
PerfModelParams corrected(PerfModelParams p,
                          const sim::OpClassCorrections& c) {
  if (c.identity()) return p;
  MPIPE_EXPECTS(c.compute > 0.0 && c.comm > 0.0 && c.memcpy > 0.0,
                "correction factors must be positive");
  p.w_comp /= c.compute;
  p.w_comm /= c.comm;
  p.w_mem /= c.memcpy;
  return p;
}

}  // namespace

StrategySelector::StrategySelector(PerfModelParams params,
                                   sim::OpClassCorrections corrections)
    : model_(corrected(params, corrections)) {}

StrategyChoice StrategySelector::select(std::int64_t b, std::int64_t m,
                                        std::int64_t h) const {
  static constexpr ReuseStrategy kCandidates[] = {
      ReuseStrategy::kS1, ReuseStrategy::kS2, ReuseStrategy::kS3,
      ReuseStrategy::kS4};
  StrategyChoice choice;
  choice.predicted_seconds = -1.0;
  for (ReuseStrategy s : kCandidates) {
    const double cost = model_.step_cost(s, b, m, h);
    choice.candidate_costs.push_back(cost);
    if (choice.predicted_seconds < 0.0 || cost < choice.predicted_seconds) {
      choice.predicted_seconds = cost;
      choice.strategy = s;
    }
  }
  return choice;
}

}  // namespace mpipe::core
