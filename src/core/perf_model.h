#pragma once
/// \file perf_model.h
/// The runtime performance model of §III-E (Equation 10, Table II). For a
/// micro-batch of b tokens, the end-to-end pipeline time per partition is
/// bounded by the slowest of the three streams:
///   C = max( q1·v_comp/(σ·W_comp), q2·v_comm/(µ·W_comm),
///            q3·v_mem/(η·W_mem) )
/// with Q = [q1,q2,q3] the per-strategy operation counts. The strategy with
/// the lowest predicted fw+bw cost wins.

#include <array>
#include <vector>

#include "core/reuse_strategy.h"

namespace mpipe::core {

/// Operation counts per stream: [GeMMs, AllToAlls, memcpy units]. One
/// memcpy unit is a T_DI-sized transfer (b·M bytes); a T_M transfer counts
/// as H/M units (4 for the standard H = 4M).
struct StreamWorkload {
  std::array<int, 3> forward{};
  std::array<int, 3> backward{};
};

/// Table II, parameterised by the H/M ratio for the memcpy units.
StreamWorkload workload_of(ReuseStrategy s, int h_over_m = 4);

/// Which µ/η the strategy sees (Table II columns µ and η): strategies that
/// keep the mem stream idle suffer only the compute-overlap slowdown.
struct InterferenceFactors {
  double mu = 1.0;     ///< comm slowdown
  double sigma = 1.0;  ///< compute slowdown
  double eta = 1.0;    ///< memcpy slowdown
};

struct PerfModelParams {
  double w_comp = 1.0;  ///< effective FLOP/s of one device
  double w_comm = 1.0;  ///< AllToAll bytes/s per device
  double w_mem = 1.0;   ///< PCIe bytes/s per device
  double mu_comp = 1.0; ///< comm slowdown vs compute only
  double mu_all = 1.0;  ///< comm slowdown vs compute + memcpy
  double sigma = 1.0;   ///< compute slowdown (≈1 on A100, §II-C)
  double eta_all = 1.0; ///< memcpy slowdown vs compute + comm
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params);

  /// Interference factors a strategy experiences (Table II µ/η columns).
  InterferenceFactors factors(ReuseStrategy s) const;

  /// Predicted seconds for one partition of b tokens in the forward pass.
  double forward_cost(ReuseStrategy s, std::int64_t b, std::int64_t m,
                      std::int64_t h) const;
  /// Same for backward.
  double backward_cost(ReuseStrategy s, std::int64_t b, std::int64_t m,
                       std::int64_t h) const;
  /// fw + bw.
  double step_cost(ReuseStrategy s, std::int64_t b, std::int64_t m,
                   std::int64_t h) const;

  const PerfModelParams& params() const { return params_; }

 private:
  double phase_cost(const std::array<int, 3>& q, ReuseStrategy s,
                    std::int64_t b, std::int64_t m, std::int64_t h) const;

  PerfModelParams params_;
};

}  // namespace mpipe::core
