#include "core/pipeline_executor.h"

#include <algorithm>
#include <sstream>

#include "common/units.h"

namespace mpipe::core {

sim::OpClassCorrections StepReport::model_error() const {
  sim::CorrectionFit fit;
  fit.add(forward_diff);
  fit.add(backward_diff);
  return fit.fit();
}

std::string StepReport::model_error_summary() const {
  if (!profiled) return "(not profiled)";
  const sim::OpClassCorrections err = model_error();
  std::ostringstream os;
  os << "sim " << to_ms(step_seconds()) << " ms, measured "
     << to_ms(measured_step_seconds()) << " ms; measured/modeled compute x"
     << err.compute << ", comm x" << err.comm << ", memcpy x" << err.memcpy;
  return os.str();
}

MemorySnapshot snapshot_peaks(const mem::DeviceAllocator& allocator) {
  const auto& t = allocator.tracker();
  MemorySnapshot s;
  s.model_states = t.peak(mem::Category::kModelState);
  s.activations = t.peak(mem::Category::kActivation);
  s.temp_buffers = t.peak(mem::Category::kTempBuffer);
  s.comm = t.peak(mem::Category::kComm);
  s.total_peak = t.peak_total();
  return s;
}

MemorySnapshot max_over_devices(const std::vector<MemorySnapshot>& snaps) {
  MemorySnapshot out;
  for (const MemorySnapshot& s : snaps) {
    out.model_states = std::max(out.model_states, s.model_states);
    out.activations = std::max(out.activations, s.activations);
    out.temp_buffers = std::max(out.temp_buffers, s.temp_buffers);
    out.comm = std::max(out.comm, s.comm);
    out.total_peak = std::max(out.total_peak, s.total_peak);
  }
  return out;
}

double combined_utilization(const sim::TimingResult& fwd,
                            const sim::TimingResult& bwd) {
  const double total_time = fwd.makespan + bwd.makespan;
  if (total_time <= 0.0 || fwd.weighted_compute.empty()) return 0.0;
  double useful = 0.0;
  for (std::size_t d = 0; d < fwd.weighted_compute.size(); ++d) {
    useful += fwd.weighted_compute[d];
    if (d < bwd.weighted_compute.size()) useful += bwd.weighted_compute[d];
  }
  useful /= static_cast<double>(fwd.weighted_compute.size());
  return useful / total_time;
}

}  // namespace mpipe::core
