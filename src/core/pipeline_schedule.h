#pragma once
/// \file pipeline_schedule.h
/// Builds the OpGraphs for MPipeMoE's micro-batch pipeline (paper Fig 4b,
/// Fig 7). Forward: per partition p, dispatch AllToAll S_p, expert GEMMs
/// C1_p/C2_p, combine AllToAll R_p, with S and R alternating on the comm
/// stream and offload copies (strategies S1–S3) on the mem stream.
/// Backward mirrors it and inserts the strategy's restore operations.
/// Ring-buffer reuse turns prior readers of a slot into dependencies of
/// the next writer (WAR edges), which the tests assert.

#include "comm/process_group.h"
#include "core/execution_context.h"
#include "mem/host_staging.h"
#include "moe/expert.h"
#include "moe/gating.h"
#include "sim/op_graph.h"

namespace mpipe::core {

/// Borrowed views of the layer's parameters; null in timing-only mode.
struct LayerRefs {
  std::vector<moe::GatingNetwork>* gates = nullptr;             ///< [device]
  std::vector<std::vector<moe::ExpertFFN>>* experts = nullptr;  ///< [dev][k]
};

class PipelineScheduleBuilder {
 public:
  /// `compute_scale` multiplies the effective compute throughput: the
  /// PipeMoE/MPipeMoE kernels use Tensor Cores (scale 1.0); the FastMoE /
  /// FasterMoE baselines run the paper's CUDA-core kernels (< 1.0).
  /// `comm_scale` likewise multiplies collective bandwidth (< 1 models a
  /// grouped send/recv AllToAll instead of a fused one).
  PipelineScheduleBuilder(const comm::ProcessGroup& group,
                          mem::HostStaging& staging,
                          double compute_scale = 1.0,
                          double comm_scale = 1.0);

  /// Emits gating + the n-partition S/C1/C2/R pipeline + gate scaling.
  sim::OpGraph build_forward(MoeStepContext& ctx, const LayerRefs& refs) const;

  /// Emits grad scaling + the reversed pipeline with restore ops + gating
  /// backward + the gating-gradient AllReduce.
  sim::OpGraph build_backward(MoeStepContext& ctx,
                              const LayerRefs& refs) const;

 private:
  /// Rescales the duration of the op `id` by 1/comm_scale.
  void apply_comm_scale(sim::OpGraph& g, int id) const;

  const comm::ProcessGroup& group_;
  mem::HostStaging& staging_;
  double compute_scale_;
  double comm_scale_;
};

}  // namespace mpipe::core
