#pragma once
/// \file reuse_strategy.h
/// The paper's memory-reusing strategies (Table II). All four share the
/// same ring-buffer footprint; they differ in how the overwritten T_DI and
/// T_M partitions are restored for the backward pass.

#include <string>

namespace mpipe::core {

enum class ReuseStrategy {
  kNone,  ///< no reuse: every partition keeps its own activations
  kS1,    ///< T_DI offload, T_M offload
  kS2,    ///< T_DI re-communication, T_M offload
  kS3,    ///< T_DI offload, T_M recompute
  kS4,    ///< T_DI re-communication, T_M recompute
};

std::string to_string(ReuseStrategy s);

/// How T_DI is restored under a strategy.
inline bool restores_tdi_by_comm(ReuseStrategy s) {
  return s == ReuseStrategy::kS2 || s == ReuseStrategy::kS4;
}
/// How T_M is restored under a strategy.
inline bool restores_tm_by_recompute(ReuseStrategy s) {
  return s == ReuseStrategy::kS3 || s == ReuseStrategy::kS4;
}
inline bool uses_offload(ReuseStrategy s) {
  return s == ReuseStrategy::kS1 || s == ReuseStrategy::kS2 ||
         s == ReuseStrategy::kS3;
}

}  // namespace mpipe::core
