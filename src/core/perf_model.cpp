#include "core/perf_model.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::core {

std::string to_string(ReuseStrategy s) {
  switch (s) {
    case ReuseStrategy::kNone: return "none";
    case ReuseStrategy::kS1: return "S1";
    case ReuseStrategy::kS2: return "S2";
    case ReuseStrategy::kS3: return "S3";
    case ReuseStrategy::kS4: return "S4";
  }
  return "?";
}

StreamWorkload workload_of(ReuseStrategy s, int h_over_m) {
  MPIPE_EXPECTS(h_over_m >= 1, "H must be >= M for the unit convention");
  const int tm = h_over_m;  // one T_M transfer in T_DI-sized units
  switch (s) {
    case ReuseStrategy::kNone:
      // fw: 2 GeMMs + 2 AllToAlls. bw: 4 GeMMs + 2 AllToAlls.
      return {{2, 2, 0}, {4, 2, 0}};
    case ReuseStrategy::kS1:
      // offload T_DI (1) + T_M (tm) each way.
      return {{2, 2, 1 + tm}, {4, 2, 1 + tm}};
    case ReuseStrategy::kS2:
      // T_DI re-communicated in bw (+1 comm), T_M offloaded (tm each way).
      return {{2, 2, tm}, {4, 3, tm}};
    case ReuseStrategy::kS3:
      // T_DI offloaded (1 each way), T_M recomputed in bw (+1 GeMM).
      return {{2, 2, 1}, {5, 2, 1}};
    case ReuseStrategy::kS4:
      // T_DI re-communicated (+1 comm), T_M recomputed (+1 GeMM), no mem.
      return {{2, 2, 0}, {5, 3, 0}};
  }
  MPIPE_UNREACHABLE("unknown strategy");
}

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  MPIPE_EXPECTS(params.w_comp > 0 && params.w_comm > 0 && params.w_mem > 0,
                "speeds must be positive");
  MPIPE_EXPECTS(params.mu_comp > 0 && params.mu_all > 0 && params.sigma > 0 &&
                    params.eta_all > 0,
                "interference factors must be positive");
}

InterferenceFactors PerfModel::factors(ReuseStrategy s) const {
  InterferenceFactors f;
  f.sigma = params_.sigma;
  if (uses_offload(s)) {
    // The mem stream is live, so comm and memcpy see the all-streams case.
    f.mu = params_.mu_all;
    f.eta = params_.eta_all;
  } else {
    // Table II: none and S4 leave the mem stream idle.
    f.mu = params_.mu_comp;
    f.eta = 1.0;
  }
  return f;
}

double PerfModel::phase_cost(const std::array<int, 3>& q, ReuseStrategy s,
                             std::int64_t b, std::int64_t m,
                             std::int64_t h) const {
  MPIPE_EXPECTS(b > 0 && m > 0 && h > 0, "bad dimensions");
  const InterferenceFactors f = factors(s);
  // Unit work per operation (Equations 7–9): one GeMM ≈ 2bMH FLOPs, one
  // AllToAll ≈ bM elements, one memcpy unit ≈ bM elements (4 bytes each).
  const double v_comp = 2.0 * static_cast<double>(b) * m * h;
  const double v_comm = 4.0 * static_cast<double>(b) * m;
  const double v_mem = 4.0 * static_cast<double>(b) * m;
  const double t_comp = q[0] * v_comp / (f.sigma * params_.w_comp);
  const double t_comm = q[1] * v_comm / (f.mu * params_.w_comm);
  const double t_mem = q[2] * v_mem / (f.eta * params_.w_mem);
  return std::max({t_comp, t_comm, t_mem});
}

double PerfModel::forward_cost(ReuseStrategy s, std::int64_t b,
                               std::int64_t m, std::int64_t h) const {
  const auto w = workload_of(s, static_cast<int>((h + m - 1) / m));
  return phase_cost(w.forward, s, b, m, h);
}

double PerfModel::backward_cost(ReuseStrategy s, std::int64_t b,
                                std::int64_t m, std::int64_t h) const {
  const auto w = workload_of(s, static_cast<int>((h + m - 1) / m));
  return phase_cost(w.backward, s, b, m, h);
}

double PerfModel::step_cost(ReuseStrategy s, std::int64_t b, std::int64_t m,
                            std::int64_t h) const {
  return forward_cost(s, b, m, h) + backward_cost(s, b, m, h);
}

}  // namespace mpipe::core
