#include "comm/process_group.h"

#include <algorithm>

#include "common/check.h"

namespace mpipe::comm {

ProcessGroup::ProcessGroup(const sim::Cluster& cluster,
                           std::vector<int> devices)
    : cluster_(&cluster), devices_(std::move(devices)) {
  MPIPE_EXPECTS(!devices_.empty(), "empty process group");
  for (int d : devices_) {
    MPIPE_EXPECTS(d >= 0 && d < cluster.num_devices(),
                  "process group device out of range");
  }
  std::vector<int> sorted = devices_;
  std::sort(sorted.begin(), sorted.end());
  MPIPE_EXPECTS(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "duplicate device in process group");
}

ProcessGroup ProcessGroup::world(const sim::Cluster& cluster) {
  return ProcessGroup(cluster, cluster.all_device_ids());
}

int ProcessGroup::device_of_rank(int rank) const {
  MPIPE_EXPECTS(rank >= 0 && rank < size(), "rank out of range");
  return devices_[static_cast<std::size_t>(rank)];
}

int ProcessGroup::rank_of_device(int device) const {
  for (int r = 0; r < size(); ++r) {
    if (devices_[static_cast<std::size_t>(r)] == device) return r;
  }
  MPIPE_UNREACHABLE("device not in process group");
}

}  // namespace mpipe::comm
