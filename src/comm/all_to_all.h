#pragma once
/// \file all_to_all.h
/// Fused AllToAll — the dispatch/combine primitive of expert parallelism
/// (paper Fig 1). MPipeMoE's split-by-B pipelining issues one of these per
/// micro-batch (Fig 5b); the FasterMoE baseline instead fragments the
/// exchange into per-destination P2P chains (comm/p2p.h).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "comm/process_group.h"
#include "sim/op_graph.h"
#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mpipe {
class FaultInjector;
}

namespace mpipe::comm {

/// One contiguous block of rows moving between two device-resident
/// matrices. Tensors must outlive the graph execution.
struct RowSegment {
  int src_device = 0;
  const Tensor* src = nullptr;
  std::int64_t src_row = 0;
  int dst_device = 0;
  Tensor* dst = nullptr;
  std::int64_t dst_row = 0;
  std::int64_t rows = 0;
};

/// Executes all segments functionally. kF32 copies byte-exactly; a
/// reduced `payload_dtype` additionally rounds the copied destination
/// rows through the wire format (bf16 round-to-nearest-even, int8 with a
/// per-row absmax scale) — the buffers stay fp32, the values carry
/// exactly the precision a real bf16/int8 link would deliver. Non-finite
/// payloads survive the rounding, so corruption stays detectable.
void apply_segments(const std::vector<RowSegment>& segments,
                    DType payload_dtype = DType::kF32);

/// apply_segments under the cluster's fault-injection schedule: optional
/// straggler delay, injected TransientErrors with bounded deterministic
/// retry (faults fire *before* any byte moves, so retries are idempotent),
/// and optional post-copy NaN corruption of one destination float. When
/// the injector's scan_payloads is set, destination rows are additionally
/// scanned for non-finite floats after the copy (and after the corruption
/// hook): a hit counts a detection and throws TransientError for the
/// step-replay ladder — the pre-activation net that catches corruption a
/// downstream ReLU would silently flush. A null injector is exactly
/// apply_segments. `key` is the op's build-time fault key
/// (FaultInjector::reserve_key); `label` is the op's graph label, matched
/// against the injector's corrupt_label_filter.
void apply_segments_guarded(const std::vector<RowSegment>& segments,
                            const FaultInjector* injector, std::uint64_t key,
                            std::string_view label,
                            DType payload_dtype = DType::kF32);

/// Appends the hazard declarations a segment table implies to `op`: each
/// segment reads its source rows and writes its destination rows. Zero-row
/// segments are skipped. Used by every segment-driven comm op so the
/// declarations can never drift from what apply_segments actually copies.
void declare_segment_accesses(sim::Op& op,
                              const std::vector<RowSegment>& segments);

/// Bytes the busiest participant sends (drives the collective's duration),
/// counted in the wire format: dtype-width elements, plus one fp32 scale
/// per row for int8. Self-device segments are local copies and count as
/// free.
std::uint64_t max_bytes_sent(const std::vector<RowSegment>& segments,
                             DType payload_dtype = DType::kF32);

/// Modelled duration of a fused AllToAll where the busiest participant
/// sends `payload_bytes` to its peers (its local share already excluded —
/// the inverse of alltoall_seconds' (P-1)/P payload factor). Degenerate
/// groups (size <= 1) pay only the collective launch latency.
double alltoall_duration(const ProcessGroup& group,
                         std::uint64_t payload_bytes,
                         DType payload_dtype = DType::kF32);

/// Appends one fused AllToAll op over the group's comm streams. Returns the
/// op id. Row counts may be ragged across pairs (AllToAll-v semantics).
int alltoall(sim::OpGraph& graph, const ProcessGroup& group,
             std::vector<RowSegment> segments, std::string label,
             std::vector<int> deps, DType payload_dtype = DType::kF32);

/// Timing-only AllToAll: `payload_bytes` is what the busiest participant
/// sends to peers (excluding its local share); no functional closure.
int alltoall_timed(sim::OpGraph& graph, const ProcessGroup& group,
                   std::uint64_t payload_bytes, std::string label,
                   std::vector<int> deps,
                   DType payload_dtype = DType::kF32);

}  // namespace mpipe::comm
