#pragma once
/// \file collectives.h
/// AllReduce / AllGather / Broadcast — used for data-parallel gradient
/// synchronisation of the gating network and for FasterMoE-style expert
/// shadowing (parameter broadcast of hot experts).

#include <string>
#include <vector>

#include "comm/process_group.h"
#include "sim/op_graph.h"
#include "tensor/tensor.h"

namespace mpipe::comm {

/// Sums the per-rank tensors elementwise and writes the result back into
/// every rank's tensor (ring-allreduce timing). Shapes must match.
int allreduce_sum(sim::OpGraph& graph, const ProcessGroup& group,
                  std::vector<Tensor*> per_rank, std::string label,
                  std::vector<int> deps);

/// Copies the root rank's tensor into every other rank's tensor.
int broadcast(sim::OpGraph& graph, const ProcessGroup& group, int root_rank,
              std::vector<Tensor*> per_rank, std::string label,
              std::vector<int> deps);

/// Concatenates per-rank rows into every rank's output tensor.
int allgather_rows(sim::OpGraph& graph, const ProcessGroup& group,
                   std::vector<const Tensor*> inputs,
                   std::vector<Tensor*> outputs, std::string label,
                   std::vector<int> deps);

/// Hierarchical AllToAll (DeepSpeed-MoE style), timing-only: an intra-node
/// regroup, one aggregated inter-node exchange between node counterparts,
/// and a final intra-node scatter. Trades 3 phases for inter-node message
/// counts that scale with the node count instead of the device count —
/// wins when per-message latency dominates. Returns the ids of the three
/// chained phase ops; the last is the completion op.
std::vector<int> hierarchical_alltoall_timed(sim::OpGraph& graph,
                                             const ProcessGroup& group,
                                             std::uint64_t payload_bytes,
                                             std::string label,
                                             std::vector<int> deps);

}  // namespace mpipe::comm
