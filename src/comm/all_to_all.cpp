#include "comm/all_to_all.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/fault_injection.h"
#include "tensor/quant.h"

namespace mpipe::comm {

void apply_segments(const std::vector<RowSegment>& segments,
                    DType payload_dtype) {
  for (const RowSegment& seg : segments) {
    if (seg.rows == 0) continue;
    MPIPE_CHECK(seg.src != nullptr && seg.dst != nullptr,
                "segment with null tensor");
    MPIPE_CHECK(seg.src->shape().rank() == 2 && seg.dst->shape().rank() == 2,
                "segments move matrix rows");
    const std::int64_t cols = seg.src->dim(1);
    MPIPE_CHECK(seg.dst->dim(1) == cols, "segment column mismatch");
    MPIPE_CHECK(seg.src_row >= 0 && seg.src_row + seg.rows <= seg.src->dim(0),
                "segment source rows out of bounds");
    MPIPE_CHECK(seg.dst_row >= 0 && seg.dst_row + seg.rows <= seg.dst->dim(0),
                "segment destination rows out of bounds");
    float* dst = seg.dst->data() + seg.dst_row * cols;
    std::memcpy(dst, seg.src->data() + seg.src_row * cols,
                static_cast<std::size_t>(seg.rows * cols) * sizeof(float));
    // Reduced wire format: the copy delivers what a bf16/int8 link would,
    // by rounding the destination rows in place. kF32 stays byte-exact.
    round_through_dtype(dst, seg.rows, cols, payload_dtype);
  }
}

void apply_segments_guarded(const std::vector<RowSegment>& segments,
                            const FaultInjector* injector, std::uint64_t key,
                            std::string_view label, DType payload_dtype) {
  if (injector == nullptr) {
    apply_segments(segments, payload_dtype);
    return;
  }
  run_comm_guarded(injector, key,
                   [&] { apply_segments(segments, payload_dtype); });
  // Post-copy payload corruption: flip one destination float to NaN, as a
  // flaky link would. Detection is split by where the NaN lands: a combine
  // destination feeds the loss, so the end-of-step numerics guard sees it;
  // a dispatch destination sits below the expert ReLU, which flushes the
  // NaN to zero — only the boundary scan below can catch that one.
  std::int64_t total = 0;
  for (const RowSegment& seg : segments) {
    if (seg.rows > 0) total += seg.rows * seg.dst->dim(1);
  }
  const std::int64_t idx = injector->corrupt_index(key, total, label);
  if (idx >= 0) {
    std::int64_t base = 0;
    for (const RowSegment& seg : segments) {
      if (seg.rows == 0) continue;
      const std::int64_t cols = seg.dst->dim(1);
      const std::int64_t count = seg.rows * cols;
      if (idx < base + count) {
        seg.dst->data()[seg.dst_row * cols + (idx - base)] =
            std::numeric_limits<float>::quiet_NaN();
        break;
      }
      base += count;
    }
  }
  // Pre-activation finiteness scan at the comm boundary. Runs after the
  // corruption hook on purpose: the injected NaN must be visible to the
  // scan, exactly as link-level corruption would be. A hit raises
  // TransientError *outside* run_comm_guarded — re-running this one op
  // would re-read the same corrupt source state, so recovery belongs to
  // the step-replay ladder, which rebuilds the whole forward.
  if (!injector->config().scan_payloads) return;
  for (const RowSegment& seg : segments) {
    if (seg.rows == 0) continue;
    const std::int64_t cols = seg.dst->dim(1);
    const float* dst = seg.dst->data() + seg.dst_row * cols;
    for (std::int64_t i = 0; i < seg.rows * cols; ++i) {
      if (std::isfinite(dst[i])) continue;
      injector->count_detection();
      std::ostringstream os;
      os << "payload scan: non-finite float in destination of '" << label
         << "' (key " << key << ", element " << i
         << ") — silent corruption detected at the comm boundary";
      throw TransientError(os.str());
    }
  }
}

std::uint64_t max_bytes_sent(const std::vector<RowSegment>& segments,
                             DType payload_dtype) {
  std::map<int, std::uint64_t> sent;
  for (const RowSegment& seg : segments) {
    if (seg.src_device == seg.dst_device) continue;  // local copy is free
    sent[seg.src_device] +=
        quantized_bytes(seg.rows, seg.src->dim(1), payload_dtype);
  }
  std::uint64_t mx = 0;
  for (const auto& [device, bytes] : sent) mx = std::max(mx, bytes);
  return mx;
}

double alltoall_duration(const ProcessGroup& group,
                         std::uint64_t payload_bytes, DType payload_dtype) {
  // alltoall_seconds models a symmetric exchange of bytes_per_device with a
  // (P-1)/P factor; the payload already excludes the self share, so
  // compensate.
  if (group.size() <= 1) {
    return group.cluster().cost_model().config().comm_launch_latency;
  }
  const double p = static_cast<double>(group.size());
  const std::uint64_t bytes_per_device = static_cast<std::uint64_t>(
      static_cast<double>(payload_bytes) * p / (p - 1.0));
  return group.cluster().cost_model().alltoall_seconds(
      bytes_per_device, group.devices(), payload_dtype);
}

void declare_segment_accesses(sim::Op& op,
                              const std::vector<RowSegment>& segments) {
  for (const RowSegment& seg : segments) {
    if (seg.rows == 0) continue;
    MPIPE_EXPECTS(seg.src != nullptr && seg.dst != nullptr,
                  "segment with null tensor");
    op.reads.push_back(sim::access_rows(*seg.src, seg.src_row, seg.rows));
    op.writes.push_back(sim::access_rows(*seg.dst, seg.dst_row, seg.rows));
  }
}

int alltoall(sim::OpGraph& graph, const ProcessGroup& group,
             std::vector<RowSegment> segments, std::string label,
             std::vector<int> deps, DType payload_dtype) {
  const double seconds = alltoall_duration(
      group, max_bytes_sent(segments, payload_dtype), payload_dtype);
  auto moved = std::make_shared<std::vector<RowSegment>>(std::move(segments));
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kAllToAll;
  op.stream = sim::StreamKind::kComm;
  op.devices = group.devices();
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  op.fn = [moved, injector, key, lbl = op.label, payload_dtype] {
    apply_segments_guarded(*moved, injector.get(), key, lbl, payload_dtype);
  };
  declare_segment_accesses(op, *moved);
  // A serving-sized batch can leave a partition with zero rows everywhere:
  // the exchange moves nothing, so keep only the timed launch. With no
  // declared accesses the hazard validator would (rightly) reject the
  // closure as unprovable for concurrent execution.
  if (op.reads.empty() && op.writes.empty()) op.fn = nullptr;
  return graph.add(std::move(op));
}

int alltoall_timed(sim::OpGraph& graph, const ProcessGroup& group,
                   std::uint64_t payload_bytes, std::string label,
                   std::vector<int> deps, DType payload_dtype) {
  const double seconds =
      alltoall_duration(group, payload_bytes, payload_dtype);
  return graph.add(std::move(label), sim::OpCategory::kAllToAll,
                   sim::StreamKind::kComm, group.devices(), seconds,
                   std::move(deps), nullptr);
}

}  // namespace mpipe::comm
