#pragma once
/// \file process_group.h
/// A communicator over a subset of cluster devices — the sNCCL ("simulated
/// NCCL") equivalent of ncclComm_t. Collectives are expressed as OpGraph
/// nodes: real row movement between device tensors in the functional
/// closure, a timed op on the participants' comm streams for the schedule.

#include <vector>

#include "sim/cluster.h"

namespace mpipe::comm {

class ProcessGroup {
 public:
  /// Ranks are cluster device ids; order defines rank numbering.
  ProcessGroup(const sim::Cluster& cluster, std::vector<int> devices);

  /// World group covering every device.
  static ProcessGroup world(const sim::Cluster& cluster);

  int size() const { return static_cast<int>(devices_.size()); }
  int device_of_rank(int rank) const;
  int rank_of_device(int device) const;
  const std::vector<int>& devices() const { return devices_; }
  const sim::Cluster& cluster() const { return *cluster_; }

 private:
  const sim::Cluster* cluster_;
  std::vector<int> devices_;
};

}  // namespace mpipe::comm
