#include "comm/p2p.h"

#include "common/check.h"
#include "common/fault_injection.h"

namespace mpipe::comm {

int send_recv(sim::OpGraph& graph, const ProcessGroup& group,
              RowSegment segment, std::string label, std::vector<int> deps) {
  MPIPE_EXPECTS(segment.src != nullptr && segment.dst != nullptr,
                "p2p with null tensor");
  const auto& cost = group.cluster().cost_model();
  double seconds;
  std::vector<int> devices;
  if (segment.src_device == segment.dst_device) {
    // Local copy: charged as an on-device memcpy-speed move on the comm
    // stream (it still occupies a kernel slot in NCCL-style pipelines).
    seconds = cost.config().comm_launch_latency;
    devices = {segment.src_device};
  } else {
    const std::uint64_t bytes = static_cast<std::uint64_t>(segment.rows) *
                                static_cast<std::uint64_t>(segment.src->dim(1)) *
                                sizeof(float);
    // NCCL posts sends asynchronously; arrivals serialise at the
    // receiver's comm stream. Occupying only the destination models that
    // (and avoids artificial convoy locking across unrelated pairs).
    seconds = cost.p2p_seconds(bytes, segment.src_device, segment.dst_device);
    devices = {segment.dst_device};
  }
  auto moved = std::make_shared<RowSegment>(segment);
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kP2P;
  op.stream = sim::StreamKind::kComm;
  op.devices = std::move(devices);
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  op.fn = [moved, injector, key, lbl = op.label] {
    apply_segments_guarded({*moved}, injector.get(), key, lbl);
  };
  declare_segment_accesses(op, {*moved});
  return graph.add(std::move(op));
}

int send_recv_multi(sim::OpGraph& graph, const ProcessGroup& group,
                    std::vector<RowSegment> segments, std::string label,
                    std::vector<int> deps) {
  MPIPE_EXPECTS(!segments.empty(), "p2p with no segments");
  const int src = segments[0].src_device;
  const int dst = segments[0].dst_device;
  std::uint64_t bytes = 0;
  for (const RowSegment& seg : segments) {
    MPIPE_EXPECTS(seg.src_device == src && seg.dst_device == dst,
                  "send_recv_multi segments must share endpoints");
    bytes += static_cast<std::uint64_t>(seg.rows) *
             static_cast<std::uint64_t>(seg.src->dim(1)) * sizeof(float);
  }
  const auto& cost = group.cluster().cost_model();
  double seconds;
  std::vector<int> devices;
  if (src == dst) {
    seconds = cost.config().comm_launch_latency;
    devices = {src};
  } else {
    seconds = cost.p2p_seconds(bytes, src, dst);
    devices = {dst};
  }
  auto moved = std::make_shared<std::vector<RowSegment>>(std::move(segments));
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kP2P;
  op.stream = sim::StreamKind::kComm;
  op.devices = std::move(devices);
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  op.fn = [moved, injector, key, lbl = op.label] {
    apply_segments_guarded(*moved, injector.get(), key, lbl);
  };
  declare_segment_accesses(op, *moved);
  return graph.add(std::move(op));
}

int send_recv_timed(sim::OpGraph& graph, const ProcessGroup& group,
                    int src_device, int dst_device, std::uint64_t bytes,
                    std::string label, std::vector<int> deps) {
  const auto& cost = group.cluster().cost_model();
  double seconds;
  std::vector<int> devices;
  if (src_device == dst_device) {
    seconds = cost.config().comm_launch_latency;
    devices = {src_device};
  } else {
    seconds = cost.p2p_seconds(bytes, src_device, dst_device);
    devices = {dst_device};
  }
  return graph.add(std::move(label), sim::OpCategory::kP2P,
                   sim::StreamKind::kComm, std::move(devices), seconds,
                   std::move(deps), nullptr);
}

std::vector<int> gather_to(sim::OpGraph& graph, const ProcessGroup& group,
                           int root_rank, std::vector<RowSegment> segments,
                           const std::string& label, std::vector<int> deps) {
  const int root_device = group.device_of_rank(root_rank);
  std::vector<int> ops;
  ops.reserve(segments.size());
  for (RowSegment& seg : segments) {
    MPIPE_EXPECTS(seg.dst_device == root_device,
                  "gather segment not targeting the root");
    ops.push_back(send_recv(graph, group, seg,
                            label + ":from" + std::to_string(seg.src_device),
                            deps));
  }
  return ops;
}

}  // namespace mpipe::comm
