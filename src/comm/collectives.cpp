#include "comm/collectives.h"

#include <cstring>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/fault_injection.h"

namespace mpipe::comm {

int allreduce_sum(sim::OpGraph& graph, const ProcessGroup& group,
                  std::vector<Tensor*> per_rank, std::string label,
                  std::vector<int> deps) {
  MPIPE_EXPECTS(static_cast<int>(per_rank.size()) == group.size(),
                "allreduce needs one tensor per rank");
  for (Tensor* t : per_rank) {
    MPIPE_EXPECTS(t != nullptr && t->defined(), "allreduce on null tensor");
    MPIPE_EXPECTS(t->shape() == per_rank[0]->shape(),
                  "allreduce shape mismatch");
  }
  const std::uint64_t bytes = per_rank[0]->nbytes();
  const double seconds =
      group.size() > 1
          ? group.cluster().cost_model().allreduce_seconds(bytes,
                                                           group.devices())
          : 0.0;
  auto tensors = std::make_shared<std::vector<Tensor*>>(std::move(per_rank));
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kAllReduce;
  op.stream = sim::StreamKind::kComm;
  op.devices = group.devices();
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  // NOTE: injected faults fire before the body runs (run_comm_guarded), so
  // the in-place accumulate below is never retried after a partial sum.
  op.fn = [tensors, injector, key] {
    run_comm_guarded(injector.get(), key, [&] {
      Tensor& acc = *(*tensors)[0];
      const std::int64_t n = acc.numel();
      float* pacc = acc.data();
      for (std::size_t r = 1; r < tensors->size(); ++r) {
        const float* p = (*tensors)[r]->data();
        for (std::int64_t i = 0; i < n; ++i) pacc[i] += p[i];
      }
      for (std::size_t r = 1; r < tensors->size(); ++r) {
        std::memcpy((*tensors)[r]->data(), pacc,
                    static_cast<std::size_t>(n) * sizeof(float));
      }
    });
  };
  for (const Tensor* t : *tensors) {
    op.reads.push_back(sim::access_whole(*t));
    op.writes.push_back(sim::access_whole(*t));
  }
  return graph.add(std::move(op));
}

int broadcast(sim::OpGraph& graph, const ProcessGroup& group, int root_rank,
              std::vector<Tensor*> per_rank, std::string label,
              std::vector<int> deps) {
  MPIPE_EXPECTS(static_cast<int>(per_rank.size()) == group.size(),
                "broadcast needs one tensor per rank");
  MPIPE_EXPECTS(root_rank >= 0 && root_rank < group.size(),
                "broadcast root out of range");
  for (Tensor* t : per_rank) {
    MPIPE_EXPECTS(t != nullptr && t->defined(), "broadcast on null tensor");
    MPIPE_EXPECTS(t->shape() == per_rank[0]->shape(),
                  "broadcast shape mismatch");
  }
  const std::uint64_t bytes = per_rank[0]->nbytes();
  const double seconds =
      group.size() > 1
          ? group.cluster().cost_model().broadcast_seconds(bytes,
                                                           group.devices())
          : 0.0;
  auto tensors = std::make_shared<std::vector<Tensor*>>(std::move(per_rank));
  const std::size_t root = static_cast<std::size_t>(root_rank);
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kBroadcast;
  op.stream = sim::StreamKind::kComm;
  op.devices = group.devices();
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  op.fn = [tensors, root, injector, key] {
    run_comm_guarded(injector.get(), key, [&] {
      const Tensor& src = *(*tensors)[root];
      for (std::size_t r = 0; r < tensors->size(); ++r) {
        if (r == root) continue;
        std::memcpy((*tensors)[r]->data(), src.data(),
                    static_cast<std::size_t>(src.nbytes()));
      }
    });
  };
  for (std::size_t r = 0; r < tensors->size(); ++r) {
    if (r == root) {
      op.reads.push_back(sim::access_whole(*(*tensors)[r]));
    } else {
      op.writes.push_back(sim::access_whole(*(*tensors)[r]));
    }
  }
  return graph.add(std::move(op));
}

int allgather_rows(sim::OpGraph& graph, const ProcessGroup& group,
                   std::vector<const Tensor*> inputs,
                   std::vector<Tensor*> outputs, std::string label,
                   std::vector<int> deps) {
  MPIPE_EXPECTS(static_cast<int>(inputs.size()) == group.size() &&
                    static_cast<int>(outputs.size()) == group.size(),
                "allgather needs one input and output per rank");
  std::int64_t total_rows = 0;
  const std::int64_t cols = inputs[0]->dim(1);
  for (const Tensor* t : inputs) {
    MPIPE_EXPECTS(t != nullptr && t->defined(), "allgather null input");
    MPIPE_EXPECTS(t->dim(1) == cols, "allgather column mismatch");
    total_rows += t->dim(0);
  }
  for (Tensor* t : outputs) {
    MPIPE_EXPECTS(t != nullptr && t->defined(), "allgather null output");
    MPIPE_EXPECTS(t->dim(0) == total_rows && t->dim(1) == cols,
                  "allgather output shape mismatch");
  }
  std::uint64_t max_bytes = 0;
  for (const Tensor* t : inputs) max_bytes = std::max(max_bytes, t->nbytes());
  const double seconds =
      group.size() > 1 ? group.cluster().cost_model().alltoall_seconds(
                             max_bytes * group.size(), group.devices())
                       : 0.0;
  auto in = std::make_shared<std::vector<const Tensor*>>(std::move(inputs));
  auto out = std::make_shared<std::vector<Tensor*>>(std::move(outputs));
  auto injector = group.cluster().fault_injector_shared();
  const std::uint64_t key = injector ? injector->reserve_key() : 0;
  sim::Op op;
  op.label = std::move(label);
  op.category = sim::OpCategory::kAllToAll;
  op.stream = sim::StreamKind::kComm;
  op.devices = group.devices();
  op.base_seconds = seconds;
  op.deps = std::move(deps);
  op.fn = [in, out, injector, key] {
    run_comm_guarded(injector.get(), key, [&] {
      for (Tensor* dst : *out) {
        std::int64_t row = 0;
        for (const Tensor* src : *in) {
          dst->copy_into_rows(row, *src);
          row += src->dim(0);
        }
      }
    });
  };
  for (const Tensor* t : *in) op.reads.push_back(sim::access_whole(*t));
  for (const Tensor* t : *out) op.writes.push_back(sim::access_whole(*t));
  return graph.add(std::move(op));
}

std::vector<int> hierarchical_alltoall_timed(sim::OpGraph& graph,
                                             const ProcessGroup& group,
                                             std::uint64_t payload_bytes,
                                             std::string label,
                                             std::vector<int> deps) {
  const auto& topo = group.cluster().topology();
  const auto& cost = group.cluster().cost_model();
  MPIPE_EXPECTS(group.size() >= 2, "hierarchical alltoall needs >= 2 ranks");

  // Partition the group's devices by node.
  std::map<int, std::vector<int>> by_node;
  for (int device : group.devices()) {
    by_node[topo.node_of(device)].push_back(device);
  }
  const double nodes = static_cast<double>(by_node.size());

  // Phase 1: intra-node regroup — each device reshuffles its payload so
  // that data for every remote node is contiguous on one "gateway" lane.
  const double p1_bytes =
      static_cast<double>(payload_bytes) *
      (static_cast<double>(by_node.begin()->second.size()) - 1.0) /
      std::max(1.0, static_cast<double>(by_node.begin()->second.size()));
  const double p1_seconds =
      cost.config().comm_launch_latency +
      p1_bytes / topo.config().intra_node_bw;
  const int p1 = graph.add(label + ":intra1", sim::OpCategory::kAllToAll,
                           sim::StreamKind::kComm, group.devices(),
                           by_node.size() > 1 ? p1_seconds
                                              : p1_seconds,
                           std::move(deps), nullptr);

  // Phase 2: inter-node exchange between node counterparts. Each device
  // ships the aggregated share destined for other nodes.
  const double p2_bytes = nodes > 1.0
                              ? static_cast<double>(payload_bytes) *
                                    (nodes - 1.0) / nodes
                              : 0.0;
  const double p2_seconds =
      cost.config().comm_launch_latency +
      p2_bytes / topo.config().inter_node_bw;
  const int p2 = graph.add(label + ":inter", sim::OpCategory::kAllToAll,
                           sim::StreamKind::kComm, group.devices(),
                           p2_seconds, {p1}, nullptr);

  // Phase 3: intra-node scatter to the final destinations.
  const int p3 = graph.add(label + ":intra2", sim::OpCategory::kAllToAll,
                           sim::StreamKind::kComm, group.devices(),
                           p1_seconds, {p2}, nullptr);
  return {p1, p2, p3};
}

}  // namespace mpipe::comm
