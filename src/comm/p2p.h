#pragma once
/// \file p2p.h
/// Point-to-point transfers. FasterMoE's split-by-N pipelining (paper
/// Fig 5a) decomposes each AllToAll into chains of these; every send pays
/// its own launch latency and the destination's comm stream serialises the
/// arrivals — the fragmentation penalty §III-B describes.

#include <string>
#include <vector>

#include "comm/all_to_all.h"
#include "comm/process_group.h"

namespace mpipe::comm {

/// One P2P copy occupying the comm streams of both endpoints.
int send_recv(sim::OpGraph& graph, const ProcessGroup& group,
              RowSegment segment, std::string label, std::vector<int> deps);

/// One P2P transfer moving several row blocks between the same endpoint
/// pair (a fragment of a decomposed AllToAll). All segments must agree on
/// src_device/dst_device.
int send_recv_multi(sim::OpGraph& graph, const ProcessGroup& group,
                    std::vector<RowSegment> segments, std::string label,
                    std::vector<int> deps);

/// Timing-only P2P of `bytes` between two devices.
int send_recv_timed(sim::OpGraph& graph, const ProcessGroup& group,
                    int src_device, int dst_device, std::uint64_t bytes,
                    std::string label, std::vector<int> deps);

/// Gather: every non-root rank sends its segment to the root; returns the
/// op ids (one per source). Used by the FasterMoE-style pipeline.
std::vector<int> gather_to(sim::OpGraph& graph, const ProcessGroup& group,
                           int root_rank, std::vector<RowSegment> segments,
                           const std::string& label, std::vector<int> deps);

}  // namespace mpipe::comm
