/// Fig 5 ablation — the two batch-splitting fashions: FasterMoE's
/// split-by-N (per-destination P2P chains) vs MPipeMoE's split-by-B (fused
/// fine-grained AllToAlls), on homogeneous and heterogeneous networks.
/// Quantifies §III-B's two claimed disadvantages of split-by-N:
/// fragmentation (per-transfer launch latency) and straggler waits.

#include "bench_common.h"

#include "comm/p2p.h"

namespace {

using namespace mpipe;

/// Times just the communication of one dispatch under the two fashions.
struct SplitTimes {
  double fused;  ///< split-by-B: n fine-grained AllToAlls
  double p2p;    ///< split-by-N: per-destination gathers
};

SplitTimes time_dispatch(sim::Cluster& cluster, std::int64_t tokens,
                         std::int64_t d_model, int n) {
  comm::ProcessGroup world = comm::ProcessGroup::world(cluster);
  const int P = cluster.num_devices();
  const std::uint64_t chunk_bytes =
      static_cast<std::uint64_t>(tokens / n) * d_model * sizeof(float);

  SplitTimes out{};
  {
    sim::OpGraph g;
    for (int p = 0; p < n; ++p) {
      comm::alltoall_timed(
          g, world,
          chunk_bytes - chunk_bytes / static_cast<std::uint64_t>(P),
          "S" + std::to_string(p), {});
    }
    out.fused = cluster.time_only(g).makespan;
  }
  {
    sim::OpGraph g;
    const std::uint64_t per_pair =
        static_cast<std::uint64_t>(tokens) * d_model * sizeof(float) /
        static_cast<std::uint64_t>(P);
    for (int j = 0; j < P; ++j) {
      for (int src = 0; src < P; ++src) {
        if (src == j) continue;
        comm::send_recv_timed(g, world, src, j, per_pair,
                              "G" + std::to_string(j), {});
      }
    }
    out.p2p = cluster.time_only(g).makespan;
  }
  return out;
}

}  // namespace

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"network", "B", "split-by-B (ms)", "split-by-N (ms)",
                      "ratio"});
  CsvWriter csv("fig05_split_strategies.csv",
                {"network", "tokens", "fused_ms", "p2p_ms"});

  for (bool hetero : {false, true}) {
    for (std::int64_t b : {4096, 8192, 16384}) {
      sim::ClusterConfig cfg;
      cfg.topology.num_devices = 64;
      cfg.topology.devices_per_node = 8;
      if (hetero) {
        cfg.topology.device_bw_scale.assign(64, 1.0);
        cfg.topology.device_bw_scale[63] = 0.4;  // one slow worker
      }
      sim::Cluster cluster(cfg);
      const auto t = time_dispatch(cluster, b, 2048, 4);
      const std::string net = hetero ? "heterogeneous" : "homogeneous";
      table.add_row({net, std::to_string(b), fmt(to_ms(t.fused), 3),
                     fmt(to_ms(t.p2p), 3), fmt(t.p2p / t.fused, 2)});
      csv.row({net, std::to_string(b), CsvWriter::num(to_ms(t.fused)),
               CsvWriter::num(to_ms(t.p2p))});
    }
  }
  std::printf("Fig 5 ablation: dispatch cost under the two splitting "
              "fashions (64 GPUs)\n");
  std::printf("(paper §III-B: split-by-N loses to fused AllToAll, and "
              "loses more on heterogeneous links)\n\n");
  table.print();
  return 0;
}
