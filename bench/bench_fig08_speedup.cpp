/// Fig 8 — training-step speedup of FastMoE / FasterMoE / PipeMoE(n=1) /
/// PipeMoE across three models and B ∈ {4k, 8k, 16k} on 64 GPUs, all
/// normalised to FastMoE. Paper: PipeMoE averages 2.26× over FasterMoE
/// (up to 3.4×) and up to 3.7× over FastMoE; pipelining does not pay at
/// GPT-S with B = 4k.

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"config", "FastMoE", "FasterMoE", "PipeMoE(n=1)",
                      "PipeMoE"});
  CsvWriter csv("fig08_speedup.csv",
                {"model", "tokens", "fastmoe", "fastermoe", "pipemoe_n1",
                 "pipemoe"});

  std::vector<double> vs_fastermoe;
  for (const auto& spec : runtime::paper_models()) {
    for (std::int64_t b : {4096, 8192, 16384}) {
      sim::Cluster c1 = paper_pod(), c2 = paper_pod(), c3 = paper_pod(),
                   c4 = paper_pod();
      const double t_fast = fastmoe_step(c1, spec, b).step_seconds();
      const double t_faster = fastermoe_step(c2, spec, b).step_seconds();
      const double t_n1 =
          pipemoe_step(c3, spec, b, 1, false).step_seconds();
      const double t_pipe =
          pipemoe_step(c4, spec, b, 0, false).step_seconds();
      vs_fastermoe.push_back(t_faster / t_pipe);
      const std::string config =
          spec.name + "(" + std::to_string(b / 1024) + "k)";
      table.add_row({config, fmt(1.0), fmt(t_fast / t_faster),
                     fmt(t_fast / t_n1), fmt(t_fast / t_pipe)});
      csv.row({spec.name, std::to_string(b), CsvWriter::num(t_fast),
               CsvWriter::num(t_faster), CsvWriter::num(t_n1),
               CsvWriter::num(t_pipe)});
    }
  }
  std::printf("Fig 8: speedup over FastMoE (64 GPUs)\n\n");
  table.print();
  double mean = 0.0, best = 0.0;
  for (double s : vs_fastermoe) {
    mean += s;
    best = std::max(best, s);
  }
  mean /= static_cast<double>(vs_fastermoe.size());
  std::printf("\nPipeMoE vs FasterMoE: mean %.2fx, max %.2fx "
              "(paper: mean 2.26x, max 3.4x)\n", mean, best);
  return 0;
}
