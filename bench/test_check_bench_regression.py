#!/usr/bin/env python3
"""Self-test for check_bench_regression.py — exercises the exit-status
contract on synthetic google-benchmark JSON: pass on matched runs, fail on
a per-benchmark regression, fail loudly (not KeyError) when a baseline
benchmark is missing from the fresh run, fail on across-the-board
collapse, and stay informational for candidate-only benches. Invoked from
CTest via run_checker_selftest.sh."""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_regression.py")


def bench_doc(rates):
    """google-benchmark JSON with one iteration entry per (name, rate)."""
    return {
        "benchmarks": [
            {
                "name": name,
                "run_name": name,
                "run_type": "iteration",
                "items_per_second": rate,
                "real_time": 1.0,
                "cpu_time": 1.0,
            }
            for name, rate in rates.items()
        ]
    }


def run_checker(tmp, base_rates, cand_rates):
    base = os.path.join(tmp, "base.json")
    cand = os.path.join(tmp, "cand.json")
    with open(base, "w") as f:
        json.dump(bench_doc(base_rates), f)
    with open(cand, "w") as f:
        json.dump(bench_doc(cand_rates), f)
    proc = subprocess.run(
        [sys.executable, CHECKER, "--baseline", base, "--candidate", cand],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(cond, label, output):
    if not cond:
        print(f"SELF-TEST FAIL: {label}\n--- checker output ---\n{output}")
        sys.exit(1)
    print(f"ok: {label}")


def main():
    steady = {"BM_A": 100.0, "BM_B": 200.0, "BM_C": 300.0}
    with tempfile.TemporaryDirectory() as tmp:
        code, out = run_checker(tmp, steady, steady)
        expect(code == 0, "identical runs pass", out)

        regressed = dict(steady, BM_B=100.0)  # 0.5x against a 1.0 pack
        code, out = run_checker(tmp, steady, regressed)
        expect(code == 1 and "REGRESSED" in out,
               "per-benchmark regression fails", out)

        dropped = {k: v for k, v in steady.items() if k != "BM_B"}
        code, out = run_checker(tmp, steady, dropped)
        expect(code == 1 and "missing from" in out and "BM_B" in out,
               "baseline benchmark missing from fresh run fails loudly", out)

        code, out = run_checker(tmp, steady, {})
        expect(code == 1 and "nothing comparable" in out,
               "empty fresh run fails loudly", out)

        collapsed = {k: v * 0.5 for k, v in steady.items()}
        code, out = run_checker(tmp, steady, collapsed)
        expect(code == 1 and "collapsed" in out,
               "across-the-board collapse fails", out)

        uniform_drift = {k: v * 0.9 for k, v in steady.items()}
        code, out = run_checker(tmp, steady, uniform_drift)
        expect(code == 0, "uniform host drift within the floor passes", out)

        added = dict(steady, BM_NEW=50.0)
        code, out = run_checker(tmp, steady, added)
        expect(code == 0 and "new" in out,
               "candidate-only benchmark stays informational", out)

        code, out = run_checker(tmp, {}, steady)
        expect(code == 0 and "skipping" in out,
               "empty baseline skips (nothing committed yet)", out)
    print("all checker self-tests passed")


if __name__ == "__main__":
    main()
