#!/usr/bin/env bash
# CTest wrapper for the regression-checker self-test: exits 77 (CTest
# SKIP) when python3 is unavailable, mirroring bench_perf_regression.
set -euo pipefail
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
if ! command -v python3 >/dev/null 2>&1; then
  echo "skip: python3 not available for the checker self-test" >&2
  exit 77
fi
exec python3 "${SCRIPT_DIR}/test_check_bench_regression.py"
