/// Fig 13 — overhead of the memory-reusing strategies S1–S4 relative to
/// PipeMoE (no reuse), across cluster sizes N ∈ {8, 16, 32, 64} and
/// B ∈ {4k, 8k, 16k}, plus the Eq-10 adaptive choice. Paper: S1/S2 win on
/// small N, S3/S4 on large N (communication-bound), batch size barely
/// matters, and no single strategy wins everywhere. Also reports the
/// selector's regret vs the oracle (an ablation beyond the paper).

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  const auto spec = runtime::bert_l();
  TablePrinter table({"(N,B)", "S1%", "S2%", "S3%", "S4%", "MPipeMoE%",
                      "picked", "oracle"});
  CsvWriter csv("fig13_strategy_overhead.csv",
                {"gpus", "tokens", "s1", "s2", "s3", "s4", "adaptive",
                 "picked", "oracle"});

  int regret_points = 0, total_points = 0;
  for (int gpus : {8, 16, 32, 64}) {
    for (std::int64_t b : {4096, 8192, 16384}) {
      sim::Cluster base_cluster = pod_of(gpus);
      core::MoELayerOptions po = pipemoe_options(spec, 4, false);
      core::MoELayer pipe(base_cluster, po);
      const double t_base = pipe.step_timing(b).step_seconds();

      std::vector<double> overhead;
      for (auto s : {core::ReuseStrategy::kS1, core::ReuseStrategy::kS2,
                     core::ReuseStrategy::kS3, core::ReuseStrategy::kS4}) {
        sim::Cluster cluster = pod_of(gpus);
        core::MoELayerOptions o = pipemoe_options(spec, 4, true);
        o.strategy = s;
        core::MoELayer layer(cluster, o);
        overhead.push_back(
            (layer.step_timing(b).step_seconds() - t_base) / t_base);
      }
      sim::Cluster cluster = pod_of(gpus);
      core::MoELayerOptions o = pipemoe_options(spec, 4, true);
      core::MoELayer adaptive(cluster, o);
      const auto rep = adaptive.step_timing(b);
      const double adaptive_overhead =
          (rep.step_seconds() - t_base) / t_base;

      const double oracle =
          *std::min_element(overhead.begin(), overhead.end());
      const int oracle_index = static_cast<int>(
          std::min_element(overhead.begin(), overhead.end()) -
          overhead.begin());
      ++total_points;
      if (adaptive_overhead > oracle + 0.02) ++regret_points;

      const std::string key = "(" + std::to_string(gpus) + "," +
                              std::to_string(b / 1024) + "k)";
      table.add_row({key, fmt(100 * overhead[0], 1),
                     fmt(100 * overhead[1], 1), fmt(100 * overhead[2], 1),
                     fmt(100 * overhead[3], 1),
                     fmt(100 * adaptive_overhead, 1),
                     core::to_string(rep.strategy),
                     "S" + std::to_string(oracle_index + 1)});
      csv.row({std::to_string(gpus), std::to_string(b),
               CsvWriter::num(overhead[0]), CsvWriter::num(overhead[1]),
               CsvWriter::num(overhead[2]), CsvWriter::num(overhead[3]),
               CsvWriter::num(adaptive_overhead),
               core::to_string(rep.strategy),
               "S" + std::to_string(oracle_index + 1)});
    }
  }
  std::printf("Fig 13: memory-reuse overhead vs PipeMoE(n=4), BERT-L\n\n");
  table.print();
  std::printf("\nselector regret >2%% at %d/%d grid points\n",
              regret_points, total_points);
  return 0;
}
