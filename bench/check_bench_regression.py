#!/usr/bin/env python3
"""Compares a fresh google-benchmark JSON against the committed trajectory.

The bench host is a shared VM whose absolute speed drifts run to run, so
the contract is two-sided rather than a plain absolute bound:
  1. per-benchmark: fail (exit 1) when a benchmark's cpu-time-normalized
     throughput falls more than --threshold (default 15%) below the pack
     (the median new/base ratio) — catches kernels that individually got
     slower;
  2. global: fail when the median ratio itself drops below 0.80 — catches
     across-the-board regressions (dropped flags, shared-path
     pessimization) that per-benchmark normalization would hide. Uniform
     slowdowns inside (0.80, 1.0) are indistinguishable from host drift
     here and pass.
A benchmark present in the committed baseline but absent from the fresh
run fails the check with an explicit message (a silently dropped bench
would otherwise un-gate its kernel); retiring a bench means regenerating
the baseline in the same change. Candidate-only benchmarks are reported
as informational, so adding benches does not break the gate.

Usage:
  check_bench_regression.py --baseline BENCH_gemm.json \
      --candidate new/BENCH_gemm.json [--threshold 0.15]
"""

import argparse
import json
import statistics
import sys


def load_rates(path):
    """name -> cpu-time-normalized items/s (wall-clock rate scaled by
    real/cpu so background load on the bench host cancels out). With
    --benchmark_repetitions the best repetition wins: the check asks "can
    the machine still reach the committed rate", and the minimum-noise
    estimate of that is the fastest observed run."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        ips = b.get("items_per_second")
        real = b.get("real_time")
        cpu = b.get("cpu_time")
        if not ips or not real or not cpu or cpu <= 0:
            continue
        name = b.get("run_name", b["name"])
        rate = ips * real / cpu
        rates[name] = max(rates.get(name, 0.0), rate)
    return rates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--threshold", type=float, default=0.15)
    args = ap.parse_args()

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)
    if not base:
        print(f"note: no comparable entries in {args.baseline}; skipping")
        return 0

    missing = sorted(set(base) - set(cand))
    shared = sorted(set(base) & set(cand))
    if not shared:
        print(f"FAIL: no candidate results for any of the "
              f"{len(base)} baseline benchmarks in {args.baseline} — "
              f"the bench run produced nothing comparable.")
        return 1
    ratios = {n: cand[n] / base[n] for n in shared}
    # The bench host is a shared VM whose absolute speed drifts run to run;
    # the median ratio estimates that drift, and each benchmark is judged
    # against it. A genuine kernel regression shows up as one benchmark
    # falling below the pack; a collapse of the pack itself (e.g. dropped
    # optimization flags) trips the global floor.
    med = statistics.median(ratios.values())
    regressions = []
    print(f"host drift factor (median new/base ratio): {med:.3f}")
    print(f"{'benchmark':<40} {'base':>12} {'new':>12} {'ratio':>8}")
    for name in sorted(base):
        if name not in cand:
            print(f"{name:<40} {base[name]:>12.3e} {'MISSING':>12} {'-':>8}")
            continue
        ratio = ratios[name]
        flag = " REGRESSED" if ratio < (1.0 - args.threshold) * med else ""
        print(f"{name:<40} {base[name]:>12.3e} {cand[name]:>12.3e} "
              f"{ratio:>8.3f}{flag}")
        if flag:
            regressions.append((name, ratio))
    for name in sorted(set(cand) - set(base)):
        print(f"{name:<40} {'absent':>12} {cand[name]:>12.3e} {'new':>8}")

    if missing:
        print(f"\nFAIL: {len(missing)} baseline benchmark(s) missing from "
              f"the fresh run — a dropped bench would silently un-gate its "
              f"kernel. Regenerate the baseline if it was retired on "
              f"purpose:")
        for name in missing:
            print(f"  {name}")
        return 1
    if med < 0.8:
        print(f"\nFAIL: throughput collapsed across the board "
              f"(median ratio {med:.3f} < 0.80) — host drift cannot "
              f"explain this; suspect a build/flags regression.")
        return 1
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} below the pack (median {med:.3f}):")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.3f}x")
        return 1
    print(f"\nOK: no regression beyond {args.threshold:.0%} "
          f"({len(shared)} shared entries, median ratio {med:.3f}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
