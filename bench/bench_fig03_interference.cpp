/// Fig 3 — stream interference micro-benchmark. Runs pairs of long
/// operations on one simulated device and measures the relative speed of
/// each stream kind against every interference source (and all sources).
/// Verifies the simulator exposes the same matrix the paper measured.

#include "bench_common.h"

namespace {

using namespace mpipe;

/// Effective relative speed of `subject` while `others` run concurrently.
double relative_speed(sim::Cluster& cluster, sim::StreamKind subject,
                      std::vector<sim::StreamKind> others) {
  const double kWork = 1.0;  // 1 second of solo work per op
  sim::OpGraph g;
  g.add("subject", sim::OpCategory::kGemm, subject, {0}, kWork, {});
  for (std::size_t i = 0; i < others.size(); ++i) {
    // Long enough to cover the subject for its entire runtime.
    g.add("interference" + std::to_string(i), sim::OpCategory::kGemm,
          others[i], {0}, 10.0 * kWork, {});
  }
  const auto timing = cluster.time_only(g);
  const auto& t = timing.op_times[0];
  return kWork / (t.end - t.start);
}

}  // namespace

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;
  using sim::StreamKind;

  sim::Cluster cluster = paper_pod();
  TablePrinter table({"stream", "vs comm", "vs comp", "vs mem", "vs all"});
  CsvWriter csv("fig03_interference.csv",
                {"stream", "vs_comm", "vs_comp", "vs_mem", "vs_all"});

  const StreamKind kinds[] = {StreamKind::kComm, StreamKind::kCompute,
                              StreamKind::kMem};
  for (StreamKind subject : kinds) {
    std::vector<double> row;
    for (StreamKind source : kinds) {
      row.push_back(subject == source
                        ? 1.0
                        : relative_speed(cluster, subject, {source}));
    }
    std::vector<StreamKind> both;
    for (StreamKind source : kinds) {
      if (source != subject) both.push_back(source);
    }
    row.push_back(relative_speed(cluster, subject, both));
    table.add_row({sim::to_string(subject), fmt(row[0]), fmt(row[1]),
                   fmt(row[2]), fmt(row[3])});
    csv.row({sim::to_string(subject), CsvWriter::num(row[0]),
             CsvWriter::num(row[1]), CsvWriter::num(row[2]),
             CsvWriter::num(row[3])});
  }
  std::printf("Fig 3: measured relative stream speeds under interference\n");
  std::printf("(paper matrix: comm [1, .72, .78, .71]; comp [.96, 1, 1, "
              ".94]; mem [.80, .98, 1, .71])\n\n");
  table.print();
  return 0;
}
