/// Comm-side calibration harness, mirroring bench/calibrate_cost_model for
/// the AllToAll half of every pipeline-granularity decision: times real
/// comm::apply_segments exchanges (the functional AllToAll primitive —
/// block memcpy between device-resident matrices) across a busiest-sender
/// payload sweep, fits the piecewise-linear CommBandwidthCurve
/// (sim/calibration.h), persists it as CALIBRATION_alltoall.csv, then
/// reloads it into a CostModelConfig and reports how the calibrated model
/// tracks the measurements. Only the curve's *shape* (seconds vs payload,
/// normalized to the host's peak rate) enters the cost model — the
/// absolute bandwidth scale stays the simulated topology's.
///
/// Usage: calibrate_comm [out.csv] [cols] [devices]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/all_to_all.h"
#include "common/units.h"
#include "core/granularity_search.h"
#include "sim/calibration.h"

namespace {

using namespace mpipe;

/// Builds a balanced P-way exchange where every device sends `send_rows`
/// rows of `cols` floats, split as evenly as possible across its P-1
/// peers (AllToAll-v ragged chunks), and returns the tensors + segments.
struct Exchange {
  std::vector<Tensor> src;
  std::vector<Tensor> dst;
  std::vector<comm::RowSegment> segments;
};

Exchange build_exchange(int devices, std::int64_t send_rows,
                        std::int64_t cols) {
  Exchange ex;
  ex.src.reserve(static_cast<std::size_t>(devices));
  ex.dst.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    ex.src.emplace_back(Shape{send_rows, cols});
    ex.dst.emplace_back(Shape{send_rows, cols});
    ex.src.back().fill(static_cast<float>(d + 1));
  }
  std::vector<std::int64_t> write_cursor(static_cast<std::size_t>(devices), 0);
  for (int d = 0; d < devices; ++d) {
    std::int64_t src_row = 0;
    for (int j = 1; j < devices; ++j) {
      const int peer = (d + j) % devices;
      // Near-even split: the first (send_rows % (P-1)) peers get one extra.
      const std::int64_t chunk =
          send_rows / (devices - 1) + (j <= send_rows % (devices - 1) ? 1 : 0);
      if (chunk == 0) continue;
      comm::RowSegment seg;
      seg.src_device = d;
      seg.src = &ex.src[static_cast<std::size_t>(d)];
      seg.src_row = src_row;
      seg.dst_device = peer;
      seg.dst = &ex.dst[static_cast<std::size_t>(peer)];
      seg.dst_row = write_cursor[static_cast<std::size_t>(peer)];
      seg.rows = chunk;
      ex.segments.push_back(seg);
      src_row += chunk;
      write_cursor[static_cast<std::size_t>(peer)] += chunk;
    }
  }
  return ex;
}

double time_exchange_seconds(const std::vector<comm::RowSegment>& segments) {
  comm::apply_segments(segments);  // warm up: page in buffers
  return bench::time_best_seconds(0.02,
                                  [&] { comm::apply_segments(segments); });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "CALIBRATION_alltoall.csv";
  const std::int64_t cols = argc > 2 ? std::atoll(argv[2]) : 256;
  const int devices = argc > 3 ? std::atoi(argv[3]) : 4;
  if (cols < 1 || devices < 2) {
    std::fprintf(stderr, "usage: calibrate_comm [out.csv] [cols >= 1] "
                         "[devices >= 2]\n");
    return 2;
  }
  std::printf("== calibrate_comm: %d-way apply_segments exchange, %lld "
              "floats/row ==\n",
              devices, static_cast<long long>(cols));
  std::vector<sim::CommSample> samples;
  double prev_seconds = 0.0;
  // Busiest-sender payloads 256B..64MB in powers of two — spans the range
  // the granularity search presents to the comm model (asserted below)
  // *and* the serving tier's single-request dispatches (a 1-token row at
  // d_model 64 is 256 B; the SLO ladder's small rungs live well below the
  // old 4 KiB floor, where launch latency dominates and the curve must
  // say so).
  for (std::uint64_t payload = 256; payload <= 64 * MiB; payload *= 2) {
    // Below one full row the exchange narrows its rows instead (the curve
    // is fit in bytes; row width does not enter the model), so the small
    // sweep points measure genuinely small payloads. A sender always
    // ships at least one row (the fit keeps the fastest duplicate if two
    // sweep points collapse onto the same actual payload).
    const std::int64_t pcols = std::min<std::int64_t>(
        cols, std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(payload) /
                         static_cast<std::int64_t>(sizeof(float))));
    const std::int64_t prow_bytes =
        pcols * static_cast<std::int64_t>(sizeof(float));
    const std::int64_t send_rows = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(payload) / prow_bytes);
    Exchange ex = build_exchange(devices, send_rows, pcols);
    sim::CommSample s;
    s.bytes = comm::max_bytes_sent(ex.segments);
    s.seconds = time_exchange_seconds(ex.segments);
    // Condition out timer noise: a strictly larger exchange cannot
    // genuinely finish sooner, so an observed inversion is jitter.
    s.seconds = std::max(s.seconds, prev_seconds);
    prev_seconds = s.seconds;
    std::printf("  payload %10llu B: %10.1f us  %7.2f GB/s per sender\n",
                static_cast<unsigned long long>(s.bytes), s.seconds * 1e6,
                static_cast<double>(s.bytes) / s.seconds * 1e-9);
    samples.push_back(s);
  }

  sim::CommBandwidthCurve curve = sim::fit_comm_curve(samples);
  sim::save_comm_curve(out_path, curve);
  std::printf("wrote %s (%zu knots)\n", out_path.c_str(),
              curve.bytes.size());

  // Reload through the same path users take, with the coverage assert fed
  // by the granularity search's own payload-range computation for a
  // representative workload (d_model 256, batches 1K..16K tokens, the
  // paper's candidate granularities, one 8-GPU node).
  const std::vector<int> candidates = {1, 2, 4, 8};
  const auto payload_range = core::GranularitySearcher::alltoall_payload_range(
      1024, 16384, candidates, /*d_model=*/256, /*group_size=*/8);
  sim::CostModelConfig base;
  sim::CostModelConfig calibrated = sim::apply_comm_calibration(
      base, sim::load_comm_curve(out_path), payload_range.first,
      payload_range.second);
  sim::Topology topo(sim::TopologyConfig{});
  sim::CostModel model(calibrated, topo);
  sim::CostModel analytic(base, topo);
  const std::vector<int> pair = {0, 1};

  // Closed-loop check: predicted seconds vs the measurement, normalized so
  // the comparison is scale-free (the sim's bandwidth is an A100 node's;
  // this host's peak comes out of the fit — the best sample sits at
  // efficiency 1 by construction). Worst case must stay within 10%.
  // Group {0, 1} makes payload exactly bytes_per_device / 2.
  const double bw = topo.alltoall_bandwidth(pair);
  const double scale = curve.peak_rate() / bw;  // host-peak / sim-link
  std::printf("\n%12s %12s %12s %10s %8s\n", "payload_B", "meas_us",
              "pred_us", "rel_err", "eff_fit");
  double worst = 0.0;
  for (const auto& s : samples) {
    const double pred = (model.alltoall_seconds(2 * s.bytes, pair) -
                         calibrated.comm_launch_latency) /
                        scale;
    const double rel = std::abs(pred - s.seconds) / s.seconds;
    worst = std::max(worst, rel);
    std::printf("%12llu %12.1f %12.1f %9.1f%% %8.3f\n",
                static_cast<unsigned long long>(s.bytes), s.seconds * 1e6,
                pred * 1e6, rel * 100.0,
                calibrated.comm_curve.efficiency_at(s.bytes));
  }
  std::printf("worst relative error: %.1f%% (acceptance: <= 10%%)\n",
              worst * 100.0);

  // What the calibration changes: small exchanges no longer assumed to
  // saturate the link — the per-payload derating the granularity search
  // now sees when ranking pipeline depths.
  std::printf("\ncalibrated vs analytic AllToAll time (pairwise, per "
              "payload):\n");
  for (std::uint64_t payload = 16 * KiB; payload <= 16 * MiB; payload *= 8) {
    std::printf("  %8llu B: calibrated %9.1f us   analytic %9.1f us\n",
                static_cast<unsigned long long>(payload),
                model.alltoall_seconds(2 * payload, pair) * 1e6,
                analytic.alltoall_seconds(2 * payload, pair) * 1e6);
  }
  return worst <= 0.10 ? 0 : 1;
}
