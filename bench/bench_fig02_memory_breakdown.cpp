/// Fig 2 — memory-footprint breakdown (model states / activations /
/// temporary buffers) and GPU utilisation for three MoE layers with token
/// batch sizes 256 … 16k (×2 per step). Reproduces the paper's finding:
/// activations + temp buffers dominate as B grows, and small batches leave
/// the GPU under-utilised.

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"model", "B", "states%", "activations%", "temp%",
                      "gpu_util%"});
  CsvWriter csv("fig02_memory_breakdown.csv",
                {"model", "tokens", "model_states", "activations",
                 "temp_buffers", "gpu_util"});

  for (const auto& spec : runtime::paper_models()) {
    for (std::int64_t b = 256; b <= 16384; b *= 2) {
      sim::Cluster cluster = paper_pod();
      // The breakdown is measured on plain expert parallelism (the setting
      // of the paper's §II-B motivation study).
      auto report = fastmoe_step(cluster, spec, b);
      const double states =
          static_cast<double>(report.memory.model_states);
      const double act = static_cast<double>(report.memory.activations);
      const double tmp = static_cast<double>(report.memory.temp_buffers);
      const double total = states + act + tmp;
      table.add_row({spec.name, std::to_string(b),
                     fmt(100.0 * states / total, 1),
                     fmt(100.0 * act / total, 1),
                     fmt(100.0 * tmp / total, 1),
                     fmt(100.0 * report.mean_gpu_utilization, 1)});
      csv.row({spec.name, std::to_string(b), CsvWriter::num(states),
               CsvWriter::num(act), CsvWriter::num(tmp),
               CsvWriter::num(report.mean_gpu_utilization)});
    }
  }
  std::printf("Fig 2: memory breakdown and GPU utilisation\n");
  std::printf("(paper: activations+temp dominate at large B; GPU util low "
              "at small B, esp. GPT-S)\n\n");
  table.print();
  return 0;
}
