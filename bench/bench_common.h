#pragma once
/// Shared helpers for the figure-reproduction benches: system factories
/// matching the paper's testbed and per-system step timers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "baselines/fastermoe.h"
#include "baselines/fastmoe.h"
#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/moe_layer.h"
#include "core/theory.h"
#include "runtime/model_zoo.h"

namespace mpipe::bench {

/// Shared measurement policy for the calibration harnesses: repeat fn()
/// until a batch takes >= `target` seconds, then report best-of-3 batches
/// (the least-noise estimator — matching the fits' keep-fastest-duplicate
/// policy). One timing rule means the GEMM and comm curves are produced
/// under identical conditions.
template <typename F>
double time_best_seconds(double target, F&& fn) {
  int reps = 1;
  double best = 1e300;
  for (int batch = 0; batch < 3; ++batch) {
    for (;;) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) fn();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      if (dt.count() >= target || reps >= (1 << 24)) {
        best = std::min(best, dt.count() / reps);
        break;
      }
      reps = dt.count() <= 0.0
                 ? reps * 16
                 : static_cast<int>(reps * std::max(2.0, 1.3 * target /
                                                             dt.count()));
    }
  }
  return best;
}

/// The paper's testbed: 8 DGX A100 nodes, 64 GPUs.
inline sim::Cluster paper_pod() { return sim::Cluster::dgx_a100_pod(8, 8); }

/// Pod with the given total GPU count (8 GPUs per node).
inline sim::Cluster pod_of(int gpus) {
  return sim::Cluster::dgx_a100_pod(std::max(1, gpus / 8),
                                    std::min(8, gpus));
}

inline core::MoELayerOptions pipemoe_options(const runtime::ModelSpec& spec,
                                             int n_partitions,
                                             bool memory_reuse) {
  core::MoELayerOptions o = runtime::layer_options(spec);
  o.num_partitions = n_partitions;  // 0 = adaptive
  o.memory_reuse = memory_reuse;
  o.mode = core::ExecutionMode::kTimingOnly;
  return o;
}

/// One simulated training step of PipeMoE/MPipeMoE.
inline core::StepReport pipemoe_step(sim::Cluster& cluster,
                                     const runtime::ModelSpec& spec,
                                     std::int64_t tokens, int n_partitions,
                                     bool memory_reuse, double skew = 0.0) {
  core::MoELayer layer(cluster, pipemoe_options(spec, n_partitions,
                                                memory_reuse));
  return layer.step_timing(tokens, skew);
}

inline core::StepReport fastmoe_step(sim::Cluster& cluster,
                                     const runtime::ModelSpec& spec,
                                     std::int64_t tokens,
                                     double skew = 0.0) {
  baselines::FastMoEOptions o;
  o.d_model = spec.d_model;
  o.d_hidden = spec.d_hidden;
  o.num_experts = spec.num_experts;
  o.mode = core::ExecutionMode::kTimingOnly;
  baselines::FastMoELayer layer(cluster, o);
  return layer.step_timing(tokens, skew);
}

inline core::StepReport fastermoe_step(sim::Cluster& cluster,
                                       const runtime::ModelSpec& spec,
                                       std::int64_t tokens,
                                       double skew = 0.0) {
  baselines::FasterMoEOptions o;
  o.d_model = spec.d_model;
  o.d_hidden = spec.d_hidden;
  o.num_experts = spec.num_experts;
  o.mode = core::ExecutionMode::kTimingOnly;
  baselines::FasterMoELayer layer(cluster, o);
  return layer.step_timing(tokens, skew);
}

inline std::string fmt(double v, int precision = 2) {
  return TablePrinter::fmt(v, precision);
}

}  // namespace mpipe::bench
