/// Fig 10 — achieved memory-saving ratio vs the Eq-6 theoretical bound,
/// for three models over n ∈ {2, 4, 8} and B ∈ {4k … 32k}. Paper: the
/// implementation achieves ≈ 95 % of the bound (the gap is the routing
/// metadata and other small tensors the theory ignores).

#include "bench_common.h"

int main() {
  using namespace mpipe;
  using namespace mpipe::bench;

  TablePrinter table({"model", "n", "B", "theoretical", "achieved",
                      "achieved/theory"});
  CsvWriter csv("fig10_saving_ratio.csv",
                {"model", "n", "tokens", "theoretical", "achieved"});

  std::vector<double> fractions;
  for (const auto& spec : runtime::paper_models()) {
    for (int n : {2, 4, 8}) {
      for (std::int64_t b = 4096; b <= 32768; b *= 2) {
        sim::Cluster c1 = paper_pod(), c2 = paper_pod();
        const auto without = pipemoe_step(c1, spec, b, n, false);
        const auto with_reuse = pipemoe_step(c2, spec, b, n, true);

        core::MemoryTheoryParams p;
        p.d_model = spec.d_model;
        p.d_hidden = spec.d_hidden;
        p.num_experts = spec.num_experts;
        p.experts_per_device = spec.num_experts / c1.num_devices();
        p.tokens_per_device = b;
        p.n_partitions = n;
        const double theory = core::MemoryTheory(p).saving_ratio();
        const double achieved =
            1.0 - static_cast<double>(with_reuse.memory.total_peak) /
                      static_cast<double>(without.memory.total_peak);
        fractions.push_back(achieved / theory);
        table.add_row({spec.name, std::to_string(n), std::to_string(b),
                       fmt(theory, 3), fmt(achieved, 3),
                       fmt(achieved / theory, 3)});
        csv.row({spec.name, std::to_string(n), std::to_string(b),
                 CsvWriter::num(theory), CsvWriter::num(achieved)});
      }
    }
  }
  std::printf("Fig 10: theoretical (Eq 6) vs achieved memory-saving "
              "ratio\n\n");
  table.print();
  double mean = 0.0;
  for (double f : fractions) mean += f;
  mean /= static_cast<double>(fractions.size());
  std::printf("\nmean achieved/theoretical = %.2f (paper: ~0.95)\n", mean);
  return 0;
}
